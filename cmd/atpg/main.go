// Command atpg runs the crosstalk delay fault ATPG campaign of the paper's
// Section 7 on a benchmark circuit, with and without incremental timing
// refinement, and reports the resulting ATPG efficiencies.
//
// Usage:
//
//	atpg [-bench c432] [-faults 40] [-seed 42] [-skew 30ps] [-backtracks 48] [-jobs N] [-budget N] [-stats]
package main

import (
	"flag"
	"fmt"
	"os"

	"sstiming/internal/atpg"
	"sstiming/internal/benchgen"
	"sstiming/internal/engine"
	"sstiming/internal/prechar"
)

func main() {
	bench := flag.String("bench", "c432", "benchmark name")
	nFaults := flag.Int("faults", 40, "number of crosstalk fault sites")
	seed := flag.Int64("seed", 42, "fault-list seed")
	skewPS := flag.Float64("skew", 120, "alignment window scale in picoseconds")
	backtracks := flag.Int("backtracks", 48, "backtrack budget per fault")
	budget := flag.Int("budget", 0, "total campaign backtrack budget (0 = unbounded)")
	jobs := flag.Int("jobs", 0, "worker pool width (0 = all CPUs, 1 = serial)")
	stats := flag.Bool("stats", false, "print execution statistics to stderr")
	flag.Parse()

	var met *engine.Metrics
	if *stats {
		met = engine.NewMetrics()
		defer met.WriteText(os.Stderr)
	}

	lib, err := prechar.Library()
	if err != nil {
		fail(err)
	}
	c, err := benchgen.Load(*bench)
	if err != nil {
		fail(err)
	}
	faults := atpg.RandomFaults(c, *nFaults, *seed, *skewPS*1e-12)

	fmt.Printf("circuit %s: %d crosstalk faults, backtrack budget %d\n", *bench, len(faults), *backtracks)
	for _, useITR := range []bool{false, true} {
		s, err := atpg.RunCampaign(c, faults, atpg.Options{
			Lib:            lib,
			UseITR:         useITR,
			MaxBacktracks:  *backtracks,
			CampaignBudget: *budget,
			Jobs:           *jobs,
			Metrics:        met,
		})
		if err != nil {
			fail(err)
		}
		name := "without ITR"
		if useITR {
			name = "with ITR   "
		}
		fmt.Printf("%s efficiency %6.2f%%  (detected %d, untestable %d, aborted %d, backtracks %d)\n",
			name, s.Efficiency*100, s.Detected, s.Untestable, s.Aborted, s.TotalBacktracks)
	}
	fmt.Println("(the paper's Section 7 reports 39.63% -> 82.75% on its fault list)")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "atpg:", err)
	os.Exit(1)
}
