// Command figures regenerates every figure and table of the paper as
// plot-ready TSV data files (one per artefact), using the embedded
// characterised library and the transistor-level simulator for reference
// curves.
//
// Usage:
//
//	figures [-out figures/]
//
// Writing fig10.tsv characterises a NAND5 on the fly (~10 s); everything
// else runs in seconds.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"sstiming/internal/atpg"
	"sstiming/internal/baseline"
	"sstiming/internal/benchgen"
	"sstiming/internal/cells"
	"sstiming/internal/charlib"
	"sstiming/internal/core"
	"sstiming/internal/device"
	"sstiming/internal/prechar"
	"sstiming/internal/sta"
)

var (
	tech   = device.Default05um()
	outDir string
)

func main() {
	out := flag.String("out", "figures", "output directory for TSV files")
	flag.Parse()
	outDir = *out
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		fail(err)
	}
	lib, err := prechar.Library()
	if err != nil {
		fail(err)
	}

	writeFig1(lib)
	writeFig2(lib)
	writeFig5(lib)
	writeFig11(lib)
	writeFig12(lib)
	writeNCLambda(lib)
	writeTable2(lib)
	writeSection7(lib)
	writeFig10() // last: characterises NAND5 on the fly
	fmt.Println("wrote figure data to", outDir)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}

// tsv opens a TSV file and writes its header.
func tsv(name string, header string) *os.File {
	f, err := os.Create(filepath.Join(outDir, name))
	if err != nil {
		fail(err)
	}
	fmt.Fprintln(f, header)
	return f
}

// simNAND2 measures the NAND2 to-controlling delay for falling inputs at
// (tx, ty, skew); ty <= 0 leaves input 1 steady.
func simNAND2(tx, ty, skew float64) float64 {
	cfg := cells.Config{Kind: cells.NAND, N: 2, Tech: tech, LoadInverter: true}
	ax := 1.2e-9
	drives := []cells.Drive{cells.Falling(ax, tx), cells.SteadyHigh(tech)}
	earliest, latest := ax, ax
	if ty > 0 {
		ay := ax + skew
		drives[1] = cells.Falling(ay, ty)
		earliest = math.Min(ax, ay)
		latest = math.Max(ax, ay)
	}
	tr, err := cfg.MeasureResponse(drives, true, cells.SimOptions{TStop: latest + 3.5e-9})
	if err != nil {
		fail(err)
	}
	return tr.Arrival - earliest
}

func writeFig1(lib *core.Library) {
	nand2 := lib.MustCell("NAND2")
	const T = 0.5e-9
	f := tsv("fig1.tsv", "case\tspice_ns\tmodel_ns")
	defer f.Close()
	fmt.Fprintf(f, "single\t%.6f\t%.6f\n", simNAND2(T, 0, 0)*1e9, nand2.CtrlPins[0].DelayAt(T, 0)*1e9)
	fmt.Fprintf(f, "simultaneous\t%.6f\t%.6f\n", simNAND2(T, T, 0)*1e9, nand2.DelayCtrl2(0, 1, T, T, 0, 0)*1e9)
}

func writeFig2(lib *core.Library) {
	nand2 := lib.MustCell("NAND2")
	const T = 0.5e-9
	f := tsv("fig2.tsv", "skew_ns\tspice_ns\tmodel_ns")
	defer f.Close()
	for s := -1.0e-9; s <= 1.0e-9+1e-15; s += 0.1e-9 {
		fmt.Fprintf(f, "%.2f\t%.6f\t%.6f\n", s*1e9, simNAND2(T, T, s)*1e9,
			nand2.DelayCtrl2(0, 1, T, T, s, 0)*1e9)
	}
}

func writeFig5(lib *core.Library) {
	nand2 := lib.MustCell("NAND2")
	fa := tsv("fig5_vs_T.tsv", "T_ns\tdelay_ns\ttrans_ns")
	defer fa.Close()
	for _, T := range []float64{0.1e-9, 0.2e-9, 0.4e-9, 0.7e-9, 1.0e-9, 1.5e-9, 2.0e-9, 2.5e-9, 3.0e-9} {
		fmt.Fprintf(fa, "%.2f\t%.6f\t%.6f\n", T*1e9,
			nand2.CtrlPins[0].DelayAt(T, 0)*1e9, nand2.CtrlPins[0].TransAt(T, 0)*1e9)
	}
	fb := tsv("fig5_vs_skew.tsv", "skew_ns\tdelay_ns\ttrans_ns")
	defer fb.Close()
	for s := -0.6e-9; s <= 0.6e-9+1e-15; s += 0.05e-9 {
		fmt.Fprintf(fb, "%.2f\t%.6f\t%.6f\n", s*1e9,
			nand2.DelayCtrl2(0, 1, 0.5e-9, 0.5e-9, s, 0)*1e9,
			nand2.TransCtrl2(0, 1, 0.5e-9, 0.5e-9, s, 0)*1e9)
	}
}

func writeFig10() {
	lib5, err := charlib.Characterize(charlib.Options{
		Tech:      tech,
		Grid:      []float64{0.15e-9, 0.4e-9, 0.8e-9, 1.4e-9},
		Cells:     []cells.Config{{Kind: cells.NAND, N: 5, Tech: tech, LoadInverter: true}},
		SkipPairs: true,
	})
	if err != nil {
		fail(err)
	}
	n5 := lib5.MustCell("NAND5")
	cfg := cells.Config{Kind: cells.NAND, N: 5, Tech: tech, LoadInverter: true}
	f := tsv("fig10.tsv", "T_ns\tspice_ns\tproposed_ns\tposition_blind_ns")
	defer f.Close()
	for _, T := range []float64{0.2e-9, 0.35e-9, 0.5e-9, 0.7e-9, 0.9e-9, 1.1e-9, 1.3e-9} {
		drives := make([]cells.Drive, 5)
		for i := range drives {
			drives[i] = cells.SteadyHigh(tech)
		}
		drives[4] = cells.Falling(1.2e-9, T)
		tr, err := cfg.MeasureResponse(drives, true, cells.SimOptions{TStop: 1.2e-9 + 3.5e-9})
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(f, "%.2f\t%.6f\t%.6f\t%.6f\n", T*1e9,
			(tr.Arrival-1.2e-9)*1e9,
			n5.CtrlPins[4].DelayAt(T, 0)*1e9,
			(baseline.Nabavi{}).CtrlDelay1(n5, 4, T)*1e9)
	}
}

func writeFig11(lib *core.Library) {
	nand2 := lib.MustCell("NAND2")
	const tx = 0.5e-9
	f := tsv("fig11.tsv", "Ty_ns\tspice_ns\tproposed_ns\tnabavi_ns\tjun_ns")
	defer f.Close()
	for _, ty := range []float64{0.15e-9, 0.25e-9, 0.4e-9, 0.5e-9, 0.65e-9, 0.8e-9, 1.0e-9, 1.2e-9} {
		fmt.Fprintf(f, "%.2f\t%.6f\t%.6f\t%.6f\t%.6f\n", ty*1e9,
			simNAND2(tx, ty, 0)*1e9,
			(baseline.Proposed{}).CtrlDelay2(nand2, 0, 1, tx, ty, 0)*1e9,
			(baseline.Nabavi{}).CtrlDelay2(nand2, 0, 1, tx, ty, 0)*1e9,
			(baseline.Jun{}).CtrlDelay2(nand2, 0, 1, tx, ty, 0)*1e9)
	}
}

func writeFig12(lib *core.Library) {
	nand2 := lib.MustCell("NAND2")
	const tx, ty = 0.5e-9, 0.5e-9
	f := tsv("fig12.tsv", "skew_ns\tspice_ns\tproposed_ns\tnabavi_ns\tjun_ns")
	defer f.Close()
	for s := -0.8e-9; s <= 1.2e-9+1e-15; s += 0.1e-9 {
		fmt.Fprintf(f, "%.2f\t%.6f\t%.6f\t%.6f\t%.6f\n", s*1e9,
			simNAND2(tx, ty, s)*1e9,
			(baseline.Proposed{}).CtrlDelay2(nand2, 0, 1, tx, ty, s)*1e9,
			(baseline.Nabavi{}).CtrlDelay2(nand2, 0, 1, tx, ty, s)*1e9,
			(baseline.Jun{}).CtrlDelay2(nand2, 0, 1, tx, ty, s)*1e9)
	}
}

func writeNCLambda(lib *core.Library) {
	nand2 := lib.MustCell("NAND2")
	cfg := cells.Config{Kind: cells.NAND, N: 2, Tech: tech, LoadInverter: true}
	const tx, ty = 0.5e-9, 0.5e-9
	f := tsv("nc_lambda.tsv", "skew_ns\tspice_ns\tmodel_ns\tpin2pin_ns")
	defer f.Close()
	for s := -0.6e-9; s <= 0.6e-9+1e-15; s += 0.1e-9 {
		ax := 1.2e-9
		ay := ax + s
		tr, err := cfg.MeasureResponse([]cells.Drive{
			cells.Rising(ax, tx), cells.Rising(ay, ty),
		}, false, cells.SimOptions{TStop: math.Max(ax, ay) + 3e-9})
		if err != nil {
			fail(err)
		}
		p2p := nand2.NonCtrlPins[1].DelayAt(ty, 0)
		if s < 0 {
			p2p = nand2.NonCtrlPins[0].DelayAt(tx, 0)
		}
		fmt.Fprintf(f, "%.2f\t%.6f\t%.6f\t%.6f\n", s*1e9,
			(tr.Arrival-math.Max(ax, ay))*1e9,
			nand2.DelayNonCtrl2(0, 1, tx, ty, s, 0)*1e9,
			p2p*1e9)
	}
}

func writeTable2(lib *core.Library) {
	f := tsv("table2.tsv", "circuit\tgates\tpin2pin_ns\tproposed_ns\tratio")
	defer f.Close()
	for _, name := range []string{"c17", "c432", "c499", "c880", "c1355", "c1908", "c2670", "c3540", "c5315", "c7552"} {
		c, err := benchgen.Load(name)
		if err != nil {
			fail(err)
		}
		p2p, err := sta.Analyze(c, sta.Options{Lib: lib, Mode: sta.ModePinToPin})
		if err != nil {
			fail(err)
		}
		prop, err := sta.Analyze(c, sta.Options{Lib: lib, Mode: sta.ModeProposed})
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(f, "%s\t%d\t%.6f\t%.6f\t%.4f\n", name, c.NumGates(),
			p2p.MinPOArrival()*1e9, prop.MinPOArrival()*1e9,
			p2p.MinPOArrival()/prop.MinPOArrival())
	}
}

func writeSection7(lib *core.Library) {
	c, err := benchgen.Load("c432")
	if err != nil {
		fail(err)
	}
	faults := atpg.RandomFaults(c, 40, 42, 0.12e-9)
	f := tsv("section7.tsv", "mode\tefficiency\tdetected\tuntestable\taborted")
	defer f.Close()
	for _, useITR := range []bool{false, true} {
		s, err := atpg.RunCampaign(c, faults, atpg.Options{Lib: lib, UseITR: useITR, MaxBacktracks: 48})
		if err != nil {
			fail(err)
		}
		modeName := "logic-only"
		if useITR {
			modeName = "with-itr"
		}
		fmt.Fprintf(f, "%s\t%.4f\t%d\t%d\t%d\n", modeName, s.Efficiency, s.Detected, s.Untestable, s.Aborted)
	}
}
