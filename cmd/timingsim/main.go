// Command timingsim runs two-pattern timing simulation on a benchmark
// circuit (or .bench netlist) and prints every line's transition, optionally
// with a crosstalk fault injected.
//
// Vectors are given as comma-separated pi=value assignments, e.g.
//
//	timingsim -bench c17 -v1 1=1,2=1,3=1,6=1,7=1 -v2 1=0,2=1,3=0,6=1,7=1
//
// Unassigned inputs default to 0. With -fault, the named aggressor/victim
// pair is injected: -fault aggR:victimF:window_ps:delta_ps.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"sstiming/internal/benchgen"
	"sstiming/internal/engine"
	"sstiming/internal/logicsim"
	"sstiming/internal/netlist"
	"sstiming/internal/prechar"
)

func main() {
	bench := flag.String("bench", "c17", "benchmark name")
	netFile := flag.String("netlist", "", ".bench netlist file (overrides -bench)")
	v1Str := flag.String("v1", "", "first frame PI assignments (pi=val,...)")
	v2Str := flag.String("v2", "", "second frame PI assignments (pi=val,...)")
	pinToPin := flag.Bool("pin2pin", false, "use the pin-to-pin delay model")
	faultStr := flag.String("fault", "", "inject crosstalk fault: agg<R|F>:victim<R|F>:window_ps:delta_ps")
	jobs := flag.Int("jobs", 0, "worker pool width (0 = all CPUs, 1 = serial)")
	stats := flag.Bool("stats", false, "print execution statistics to stderr")
	flag.Parse()

	var met *engine.Metrics
	if *stats {
		met = engine.NewMetrics()
		defer met.WriteText(os.Stderr)
	}

	lib, err := prechar.Library()
	if err != nil {
		fail(err)
	}

	var c *netlist.Circuit
	if *netFile != "" {
		f, err := os.Open(*netFile)
		if err != nil {
			fail(err)
		}
		if strings.HasSuffix(*netFile, ".v") {
			c, err = netlist.ParseVerilog(*netFile, f)
		} else {
			c, err = netlist.Parse(*netFile, f)
		}
		f.Close()
		if err != nil {
			fail(err)
		}
	} else {
		c, err = benchgen.Load(*bench)
		if err != nil {
			fail(err)
		}
	}

	v1, err := parseVector(c, *v1Str)
	if err != nil {
		fail(err)
	}
	v2, err := parseVector(c, *v2Str)
	if err != nil {
		fail(err)
	}

	mode := logicsim.ModeProposed
	if *pinToPin {
		mode = logicsim.ModePinToPin
	}
	opts := logicsim.Options{Lib: lib, Mode: mode, Jobs: *jobs, Metrics: met}

	var res *logicsim.Result
	if *faultStr != "" {
		fi, err := parseFault(*faultStr)
		if err != nil {
			fail(err)
		}
		clean, faulty, excited, err := logicsim.SimulateFaulty(c, v1, v2, fi, opts)
		if err != nil {
			fail(err)
		}
		fmt.Printf("fault %s->%s excited: %v\n", fi.Aggressor, fi.Victim, excited)
		if excited {
			for _, po := range c.POs {
				fe, okF := faulty.Events[po]
				ce, okC := clean.Events[po]
				if okF && okC && fe.Arrival != ce.Arrival {
					fmt.Printf("  PO %s shifted by %.1f ps\n", po, (fe.Arrival-ce.Arrival)*1e12)
				}
			}
		}
		res = faulty
	} else {
		res, err = logicsim.Simulate(c, v1, v2, opts)
		if err != nil {
			fail(err)
		}
	}

	nets := make([]string, 0, len(res.V1))
	for net := range res.V1 {
		nets = append(nets, net)
	}
	sort.Strings(nets)
	fmt.Printf("%-14s %-4s %-10s %-10s\n", "net", "v1v2", "arrival", "trans")
	for _, net := range nets {
		ev, switched := res.Events[net]
		if switched {
			fmt.Printf("%-14s %d%d   %8.4fns %8.4fns\n",
				net, res.V1[net], res.V2[net], ev.Arrival*1e9, ev.Trans*1e9)
		} else {
			fmt.Printf("%-14s %d%d   %10s %10s\n", net, res.V1[net], res.V2[net], "-", "-")
		}
	}
}

func parseVector(c *netlist.Circuit, s string) (logicsim.Vector, error) {
	v := make(logicsim.Vector, len(c.PIs))
	for _, pi := range c.PIs {
		v[pi] = 0
	}
	if s == "" {
		return v, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("malformed assignment %q", part)
		}
		val, err := strconv.Atoi(kv[1])
		if err != nil || (val != 0 && val != 1) {
			return nil, fmt.Errorf("bad value in %q", part)
		}
		if _, ok := v[kv[0]]; !ok {
			return nil, fmt.Errorf("unknown primary input %q", kv[0])
		}
		v[kv[0]] = val
	}
	return v, nil
}

// parseFault parses "aggR:victimF:window_ps:delta_ps".
func parseFault(s string) (logicsim.FaultInjection, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 4 {
		return logicsim.FaultInjection{}, fmt.Errorf("fault spec needs agg<R|F>:victim<R|F>:window_ps:delta_ps")
	}
	net := func(p string) (string, bool, error) {
		if len(p) < 2 {
			return "", false, fmt.Errorf("bad fault endpoint %q", p)
		}
		dir := p[len(p)-1]
		if dir != 'R' && dir != 'F' {
			return "", false, fmt.Errorf("fault endpoint %q must end in R or F", p)
		}
		return p[:len(p)-1], dir == 'R', nil
	}
	agg, aggR, err := net(parts[0])
	if err != nil {
		return logicsim.FaultInjection{}, err
	}
	vic, vicR, err := net(parts[1])
	if err != nil {
		return logicsim.FaultInjection{}, err
	}
	win, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		return logicsim.FaultInjection{}, fmt.Errorf("bad window %q", parts[2])
	}
	delta, err := strconv.ParseFloat(parts[3], 64)
	if err != nil {
		return logicsim.FaultInjection{}, fmt.Errorf("bad delta %q", parts[3])
	}
	return logicsim.FaultInjection{
		Aggressor: agg, Victim: vic,
		AggRising: aggR, VicRising: vicR,
		Window: win * 1e-12, ExtraDelay: delta * 1e-12,
	}, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "timingsim:", err)
	os.Exit(1)
}
