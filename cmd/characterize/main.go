// Command characterize runs the one-time cell-library characterisation of
// the paper's Section 3.7: it sweeps the transistor-level simulator over
// grids of input transition times and skews for every library cell, fits the
// empirical K-coefficient formulas, and writes the resulting timing library
// as JSON.
//
// Usage:
//
//	characterize [-out lib05.json] [-fast] [-jobs N] [-stats] [-v]
//	             [-health] [-max-degraded F] [-retries N]
//	             [-resume] [-journal DIR] [-no-journal]
//	             [-inject kind] [-inject-rate F] [-inject-seed S] [-inject-persist]
//
// Campaigns are crash-safe by default: each completed cell is appended to a
// fsynced write-ahead journal (<out>.journal/), and -resume replays the
// journal so a killed campaign re-characterises at most the cell that was in
// flight. The output library and its integrity manifest are published
// atomically (temp file + fsync + rename); the journal is removed once the
// artefact is durable.
//
// The -inject* flags drive the deterministic fault-injection harness
// (internal/faultinject) for resilience testing: a seeded fraction of all
// solver time points is forced to fail, exercising the recovery, retry and
// graceful-degradation machinery end to end.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"

	"sstiming/internal/charlib"
	"sstiming/internal/core"
	"sstiming/internal/engine"
	"sstiming/internal/faultinject"
	"sstiming/internal/spice"
	"sstiming/internal/store"
)

func main() {
	out := flag.String("out", "lib05.json", "output library path")
	fast := flag.Bool("fast", false, "use the reduced characterisation grid")
	jobs := flag.Int("jobs", 0, "worker pool width (0 = all CPUs, 1 = serial)")
	stats := flag.Bool("stats", false, "print execution statistics to stderr")
	verbose := flag.Bool("v", false, "print progress")
	health := flag.Bool("health", false, "print the per-cell characterisation health summary to stderr")
	maxDegraded := flag.Float64("max-degraded", 0, "max tolerated fraction of degraded points per cell (0 = default 0.25, negative forbids)")
	retries := flag.Int("retries", 0, "per-point retry budget with tightened solver settings (0 = default 2, negative disables)")
	resume := flag.Bool("resume", false, "replay the campaign journal and characterise only the missing cells")
	journalDir := flag.String("journal", "", "campaign journal directory (default <out>.journal)")
	noJournal := flag.Bool("no-journal", false, "disable the write-ahead journal (campaign is not crash-safe)")
	injectKind := flag.String("inject", "", "fault kind to inject: noconv, nan or panic (empty disables)")
	injectRate := flag.Float64("inject-rate", 0.05, "fraction of solver time points faulted when -inject is set")
	injectSeed := flag.Int64("inject-seed", 1, "fault-injection plan seed")
	injectPersist := flag.Bool("inject-persist", false, "re-fire injected faults on recovery attempts too (defeats the solver ladder)")
	flag.Parse()

	var opts charlib.Options
	if *fast {
		opts = charlib.FastOptions()
	}
	// The shipped artefact carries the Section 3.6 extension surfaces;
	// consumers only use them behind their NCExtension flags.
	opts.NCPairs = true
	opts.Jobs = *jobs
	opts.Retries = *retries
	opts.MaxDegradedFrac = *maxDegraded
	if *stats {
		opts.Metrics = engine.NewMetrics()
	}
	if *verbose {
		opts.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	var plan *faultinject.Plan
	if *injectKind != "" {
		kind, err := spice.ParseFaultKind(*injectKind)
		if err != nil {
			fatal(err)
		}
		plan = faultinject.NewPlan(*injectSeed, *injectRate, kind, *injectPersist)
		opts.NewFaultHook = plan.NextHook
	}

	// The campaign fingerprint pins every option that shapes the library
	// bytes; a -resume against a journal from a different campaign is
	// refused (store.ErrStale) instead of splicing incompatible results.
	resolved := opts.Resolved()
	fp := fingerprint(resolved)

	var journal *store.Journal
	if !*noJournal {
		dir := *journalDir
		if dir == "" {
			dir = *out + ".journal"
		}
		var err error
		var replayed map[string]*core.CellModel
		if *resume {
			if _, statErr := os.Stat(dir); os.IsNotExist(statErr) {
				fmt.Fprintf(os.Stderr, "characterize: no journal at %s, starting a fresh campaign\n", dir)
				journal, err = store.CreateJournal(dir, fp)
			} else {
				journal, replayed, err = store.ResumeJournal(dir, fp)
				if err == nil {
					fmt.Fprintf(os.Stderr, "characterize: resuming campaign, %d cell(s) replayed from journal\n", len(replayed))
				}
			}
		} else {
			journal, err = store.CreateJournal(dir, fp)
		}
		if err != nil {
			if errors.Is(err, store.ErrStale) || errors.Is(err, store.ErrSchemaMismatch) {
				fmt.Fprintf(os.Stderr, "characterize: %v\n", err)
				fmt.Fprintln(os.Stderr, "characterize: rerun without -resume to discard the journal and start over")
				os.Exit(1)
			}
			fatal(err)
		}
		opts.Completed = replayed
		opts.Checkpoint = journal.Append
	}

	lib, err := charlib.Characterize(opts)
	if plan != nil {
		fmt.Fprintf(os.Stderr, "fault injection: %d faults across %d transients (kind %s, rate %g, seed %d)\n",
			plan.Injected(), plan.Transients(), *injectKind, *injectRate, *injectSeed)
	}
	if *health && lib != nil {
		if werr := lib.WriteHealth(os.Stderr); werr != nil {
			fmt.Fprintln(os.Stderr, "characterize:", werr)
		}
	}
	if *stats {
		opts.Metrics.WriteText(os.Stderr)
	}
	if err != nil {
		fatal(err)
	}
	// Re-enforce the degradation budget over every cell, including the ones
	// replayed from the journal: a cell that slid over the budget must fail
	// the campaign with a non-zero exit, not ship a degraded artefact.
	if err := checkDegradationBudget(lib, resolved.MaxDegradedFrac); err != nil {
		fatal(err)
	}

	if _, err := store.WriteLibrary(*out, lib, resolved.Grid, resolved.NCPairs); err != nil {
		fatal(err)
	}
	if journal != nil {
		// The artefact is durable; the checkpoints are spent.
		if err := journal.Remove(); err != nil {
			fmt.Fprintln(os.Stderr, "characterize: removing journal:", err)
		}
	}
	fmt.Printf("wrote %s (%d cells, tech %s, Vdd %.2f V) + manifest %s\n",
		*out, len(lib.Cells), lib.TechName, lib.Vdd, store.ManifestPath(*out))

	if *verbose {
		fmt.Println("\nfit quality (ns domain):")
		names := make([]string, 0, len(lib.Cells))
		for name := range lib.Cells {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			m := lib.Cells[name]
			keys := make([]string, 0, len(m.Quality))
			for k := range m.Quality {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				q := m.Quality[k]
				fmt.Printf("  %-8s %-22s rms %.4f  max %.4f  R2 %.4f\n", name, k, q.RMS, q.Max, q.R2)
			}
		}
	}
}

// fingerprint derives the campaign fingerprint from the resolved options.
func fingerprint(o charlib.Options) store.Fingerprint {
	names := make([]string, len(o.Cells))
	for i, cfg := range o.Cells {
		names[i] = cfg.Name()
	}
	return store.Fingerprint{
		Tech:         o.Tech.Name,
		Vdd:          o.Tech.Vdd,
		Grid:         o.Grid,
		Cells:        names,
		TStep:        o.TStep,
		SkewTol:      o.SkewTol,
		SkipPairs:    o.SkipPairs,
		PaperExactD0: o.PaperExactD0,
		NCPairs:      o.NCPairs,
	}
}

// checkDegradationBudget fails when any cell — freshly characterised or
// replayed from the journal — exceeds the per-cell degraded-point budget.
func checkDegradationBudget(lib *core.Library, budget float64) error {
	names := make([]string, 0, len(lib.Cells))
	for name := range lib.Cells {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := lib.Cells[name]
		if m.Health == nil {
			continue
		}
		if frac := m.Health.DegradedFrac(); frac > budget {
			return fmt.Errorf("%s: %.1f%% of points degraded, budget %.1f%% (-max-degraded)",
				name, 100*frac, 100*budget)
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "characterize:", err)
	os.Exit(1)
}
