// Command characterize runs the one-time cell-library characterisation of
// the paper's Section 3.7: it sweeps the transistor-level simulator over
// grids of input transition times and skews for every library cell, fits the
// empirical K-coefficient formulas, and writes the resulting timing library
// as JSON.
//
// Usage:
//
//	characterize [-out lib05.json] [-fast] [-jobs N] [-stats] [-v]
//	             [-health] [-max-degraded F] [-retries N]
//	             [-resume] [-journal DIR] [-no-journal]
//	             [-shard-cells N] [-shard-workers M] [-shard-lease D]
//	             [-shard-max-attempts K] [-shard-dir DIR]
//	             [-shard-plan] [-shard-run ID]
//	             [-shard-serve ADDR] [-shard-worker -coordinator URL [-worker-dir DIR]]
//	             [-inject kind] [-inject-rate F] [-inject-seed S] [-inject-persist]
//
// Campaigns are crash-safe by default: each completed cell is appended to a
// fsynced write-ahead journal (<out>.journal/), and -resume replays the
// journal so a killed campaign re-characterises at most the cell that was in
// flight. The output library and its integrity manifest are published
// atomically (temp file + fsync + rename); the journal is removed once the
// artefact is durable.
//
// -shard-cells enables the fault-tolerant sharded coordinator
// (internal/shard): the campaign splits into shards of that many cells,
// characterised by -shard-workers concurrent workers under -shard-lease
// leases; a worker that crashes or hangs loses its lease and the shard is
// retried (journals salvaged) up to -shard-max-attempts times before its
// cells fall back to the analytic model under the -max-degraded budget. The
// merged publish is byte-identical to an unsharded run, and -resume reuses
// every verified shard artefact in the campaign directory. For
// multi-process campaigns, -shard-plan writes the campaign plan and exits,
// -shard-run characterises a single named shard standalone, and a final
// -resume coordinator merges and publishes.
//
// For multi-machine campaigns, -shard-serve starts the campaign coordinator
// over HTTP (internal/shardnet) and -shard-worker runs a remote worker that
// pulls shards from -coordinator, characterises them locally under
// -worker-dir and streams verified artefacts back. Worker modes exit 0 when
// the campaign resolved, 2 when a lease was lost or reassigned (restart the
// worker), and 3 on fatal conditions retrying cannot fix (plan mismatch,
// unknown shard); see README "remote workers".
//
// The -inject* flags drive the deterministic fault-injection harness
// (internal/faultinject) for resilience testing: a seeded fraction of all
// solver time points is forced to fail, exercising the recovery, retry and
// graceful-degradation machinery end to end.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"time"

	"sstiming/internal/charlib"
	"sstiming/internal/core"
	"sstiming/internal/engine"
	"sstiming/internal/faultinject"
	"sstiming/internal/shard"
	"sstiming/internal/shardnet"
	"sstiming/internal/spice"
	"sstiming/internal/store"
)

func main() {
	out := flag.String("out", "lib05.json", "output library path")
	fast := flag.Bool("fast", false, "use the reduced characterisation grid")
	jobs := flag.Int("jobs", 0, "worker pool width (0 = all CPUs, 1 = serial)")
	stats := flag.Bool("stats", false, "print execution statistics to stderr")
	verbose := flag.Bool("v", false, "print progress")
	health := flag.Bool("health", false, "print the per-cell characterisation health summary to stderr")
	maxDegraded := flag.Float64("max-degraded", 0, "max tolerated fraction of degraded points per cell (0 = default 0.25, negative forbids)")
	retries := flag.Int("retries", 0, "per-point retry budget with tightened solver settings (0 = default 2, negative disables)")
	resume := flag.Bool("resume", false, "replay the campaign journal and characterise only the missing cells")
	journalDir := flag.String("journal", "", "campaign journal directory (default <out>.journal)")
	noJournal := flag.Bool("no-journal", false, "disable the write-ahead journal (campaign is not crash-safe)")
	injectKind := flag.String("inject", "", "fault kind to inject: noconv, nan or panic (empty disables)")
	injectRate := flag.Float64("inject-rate", 0.05, "fraction of solver time points faulted when -inject is set")
	injectSeed := flag.Int64("inject-seed", 1, "fault-injection plan seed")
	injectPersist := flag.Bool("inject-persist", false, "re-fire injected faults on recovery attempts too (defeats the solver ladder)")
	shardCells := flag.Int("shard-cells", 0, "enable the sharded coordinator: cells per shard (0 disables sharding)")
	shardWorkers := flag.Int("shard-workers", 0, "concurrent campaign workers in coordinator mode (0 = 2)")
	shardLease := flag.Duration("shard-lease", 0, "worker lease TTL before an unresponsive shard is reassigned (0 = 2m)")
	shardAttempts := flag.Int("shard-max-attempts", 0, "per-shard lease budget before quarantine (0 = 3)")
	shardDir := flag.String("shard-dir", "", "campaign directory for sharded runs (default <out>.campaign)")
	shardPlanOnly := flag.Bool("shard-plan", false, "write the sharded campaign plan and exit (multi-process mode)")
	shardRunID := flag.String("shard-run", "", "standalone worker mode: characterise one shard of an existing campaign")
	shardServe := flag.String("shard-serve", "", "serve the campaign coordinator on this address (host:port) for remote workers")
	shardWorker := flag.Bool("shard-worker", false, "remote worker mode: pull shards from -coordinator until the campaign resolves")
	coordinator := flag.String("coordinator", "", "coordinator base URL for -shard-worker (e.g. http://host:7600)")
	workerDir := flag.String("worker-dir", "", "remote worker's private local work directory (default <out>.workdir)")
	flag.Parse()

	var opts charlib.Options
	if *fast {
		opts = charlib.FastOptions()
	}
	// The shipped artefact carries the Section 3.6 extension surfaces;
	// consumers only use them behind their NCExtension flags.
	opts.NCPairs = true
	opts.Jobs = *jobs
	opts.Retries = *retries
	opts.MaxDegradedFrac = *maxDegraded
	if *stats {
		opts.Metrics = engine.NewMetrics()
	}
	if *verbose {
		opts.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	var plan *faultinject.Plan
	if *injectKind != "" {
		kind, err := spice.ParseFaultKind(*injectKind)
		if err != nil {
			fatal(err)
		}
		plan = faultinject.NewPlan(*injectSeed, *injectRate, kind, *injectPersist)
		opts.NewFaultHook = plan.NextHook
	}

	if *shardCells > 0 || *shardPlanOnly || *shardRunID != "" || *shardServe != "" || *shardWorker {
		runSharded(opts, shardConfig{
			out:         *out,
			dir:         *shardDir,
			cells:       *shardCells,
			workers:     *shardWorkers,
			lease:       *shardLease,
			maxAttempts: *shardAttempts,
			maxDegraded: *maxDegraded,
			resume:      *resume,
			planOnly:    *shardPlanOnly,
			runID:       *shardRunID,
			serveAddr:   *shardServe,
			workerMode:  *shardWorker,
			coordinator: *coordinator,
			workerDir:   *workerDir,
			health:      *health,
			stats:       *stats,
		})
		return
	}

	// The campaign fingerprint pins every option that shapes the library
	// bytes; a -resume against a journal from a different campaign is
	// refused (store.ErrStale) instead of splicing incompatible results.
	resolved := opts.Resolved()
	fp := shard.Fingerprint(resolved)

	var journal *store.Journal
	if !*noJournal {
		dir := *journalDir
		if dir == "" {
			dir = *out + ".journal"
		}
		var err error
		var replayed map[string]*core.CellModel
		if *resume {
			if _, statErr := os.Stat(dir); os.IsNotExist(statErr) {
				fmt.Fprintf(os.Stderr, "characterize: no journal at %s, starting a fresh campaign\n", dir)
				journal, err = store.CreateJournal(dir, fp)
			} else {
				journal, replayed, err = store.ResumeJournal(dir, fp)
				if err == nil {
					fmt.Fprintf(os.Stderr, "characterize: resuming campaign, %d cell(s) replayed from journal\n", len(replayed))
				}
			}
		} else {
			journal, err = store.CreateJournal(dir, fp)
		}
		if err != nil {
			if errors.Is(err, store.ErrStale) || errors.Is(err, store.ErrSchemaMismatch) {
				fmt.Fprintf(os.Stderr, "characterize: %v\n", err)
				fmt.Fprintln(os.Stderr, "characterize: rerun without -resume to discard the journal and start over")
				os.Exit(1)
			}
			fatal(err)
		}
		opts.Completed = replayed
		opts.Checkpoint = journal.Append
	}

	lib, err := charlib.Characterize(opts)
	if plan != nil {
		fmt.Fprintf(os.Stderr, "fault injection: %d faults across %d transients (kind %s, rate %g, seed %d)\n",
			plan.Injected(), plan.Transients(), *injectKind, *injectRate, *injectSeed)
	}
	if *health && lib != nil {
		if werr := lib.WriteHealth(os.Stderr); werr != nil {
			fmt.Fprintln(os.Stderr, "characterize:", werr)
		}
	}
	if *stats {
		opts.Metrics.WriteText(os.Stderr)
	}
	if err != nil {
		fatal(err)
	}
	// Re-enforce the degradation budget over every cell, including the ones
	// replayed from the journal: a cell that slid over the budget must fail
	// the campaign with a non-zero exit, not ship a degraded artefact.
	if err := checkDegradationBudget(lib, resolved.MaxDegradedFrac); err != nil {
		fatal(err)
	}

	if _, err := store.WriteLibrary(*out, lib, resolved.Grid, resolved.NCPairs); err != nil {
		fatal(err)
	}
	if journal != nil {
		// The artefact is durable; the checkpoints are spent.
		if err := journal.Remove(); err != nil {
			fmt.Fprintln(os.Stderr, "characterize: removing journal:", err)
		}
	}
	fmt.Printf("wrote %s (%d cells, tech %s, Vdd %.2f V) + manifest %s\n",
		*out, len(lib.Cells), lib.TechName, lib.Vdd, store.ManifestPath(*out))

	if *verbose {
		fmt.Println("\nfit quality (ns domain):")
		names := make([]string, 0, len(lib.Cells))
		for name := range lib.Cells {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			m := lib.Cells[name]
			keys := make([]string, 0, len(m.Quality))
			for k := range m.Quality {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				q := m.Quality[k]
				fmt.Printf("  %-8s %-22s rms %.4f  max %.4f  R2 %.4f\n", name, k, q.RMS, q.Max, q.R2)
			}
		}
	}
}

// shardConfig carries the sharded-mode flag values.
type shardConfig struct {
	out         string
	dir         string
	cells       int
	workers     int
	lease       time.Duration
	maxAttempts int
	maxDegraded float64
	resume      bool
	planOnly    bool
	runID       string
	serveAddr   string
	workerMode  bool
	coordinator string
	workerDir   string
	health      bool
	stats       bool
}

// Worker-mode exit codes (-shard-run, -shard-worker). Supervisors restart
// on exitLeaseLost (transient: the coordinator reassigned work) and stop on
// exitFatal (plan mismatch, unknown shard — retrying cannot help).
const (
	exitOK        = 0
	exitError     = 1
	exitLeaseLost = 2
	exitFatal     = 3
)

// workerExitCode maps a worker-mode error to its contract exit code.
func workerExitCode(err error) int {
	switch {
	case err == nil:
		return exitOK
	case errors.Is(err, shardnet.ErrLeaseLost):
		return exitLeaseLost
	case errors.Is(err, shardnet.ErrFatal),
		errors.Is(err, shard.ErrUnknownShard),
		errors.Is(err, store.ErrStale),
		errors.Is(err, store.ErrSchemaMismatch):
		return exitFatal
	default:
		return exitError
	}
}

// runSharded dispatches the three sharded modes: plan-only, standalone
// worker, and the full coordinator (plan + workers + merge + publish).
func runSharded(opts charlib.Options, cfg shardConfig) {
	so := shard.Options{
		Charlib:            opts,
		Out:                cfg.out,
		Dir:                cfg.dir,
		Resume:             cfg.resume,
		ShardCells:         cfg.cells,
		Workers:            cfg.workers,
		LeaseTTL:           cfg.lease,
		MaxAttempts:        cfg.maxAttempts,
		MaxQuarantinedFrac: cfg.maxDegraded,
		Metrics:            opts.Metrics,
		Progress:           opts.Progress,
	}
	if cfg.planOnly {
		specs, err := shard.PlanCampaign(so)
		if err != nil {
			fatal(err)
		}
		dir := so.Dir
		if dir == "" {
			dir = cfg.out + ".campaign"
		}
		fmt.Printf("planned %d shard(s) in %s:\n", len(specs), dir)
		for _, s := range specs {
			fmt.Printf("  %s: %v\n", s.ID, s.Cells)
		}
		fmt.Println("run each with -shard-run <id>, then merge with -shard-cells ... -resume")
		return
	}
	if cfg.runID != "" {
		if err := shard.RunWorker(so, cfg.runID); err != nil {
			fmt.Fprintf(os.Stderr, "characterize: %v\n", err)
			if code := workerExitCode(err); code == exitFatal {
				fmt.Fprintln(os.Stderr, "characterize: the worker's options must match the planning run exactly")
				os.Exit(exitFatal)
			}
			os.Exit(exitError)
		}
		fmt.Printf("shard %s: artifact verified and promoted\n", cfg.runID)
		return
	}
	if cfg.serveAddr != "" {
		runServe(so, cfg)
		return
	}
	if cfg.workerMode {
		runRemoteWorker(so, cfg)
		return
	}

	lib, rep, err := shard.Run(so)
	if rep != nil {
		fmt.Fprintf(os.Stderr, "campaign: %d shard(s), %d completed (%d reused), %d lease(s), "+
			"%d expired, %d retries, %d corrupt, %d duplicate(s) discarded\n",
			rep.Shards, rep.Completed, rep.Reused, rep.Leases,
			rep.Expired, rep.Retries, rep.CorruptArtifacts, rep.DuplicatesDiscarded)
		for _, id := range rep.Quarantined {
			fmt.Fprintf(os.Stderr, "campaign: shard %s quarantined; cells served from the analytic fallback\n", id)
		}
	}
	if cfg.health && lib != nil {
		if werr := lib.WriteHealth(os.Stderr); werr != nil {
			fmt.Fprintln(os.Stderr, "characterize:", werr)
		}
	}
	if cfg.stats && opts.Metrics != nil {
		opts.Metrics.WriteText(os.Stderr)
	}
	if err != nil {
		if errors.Is(err, store.ErrStale) || errors.Is(err, store.ErrSchemaMismatch) {
			fmt.Fprintf(os.Stderr, "characterize: %v\n", err)
			fmt.Fprintln(os.Stderr, "characterize: rerun without -resume to discard the campaign directory and start over")
			os.Exit(1)
		}
		fatal(err)
	}
	if err := checkDegradationBudget(lib, opts.Resolved().MaxDegradedFrac); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d cells, tech %s, Vdd %.2f V) + manifest %s\n",
		cfg.out, len(lib.Cells), lib.TechName, lib.Vdd, store.ManifestPath(cfg.out))
}

// runServe is the networked coordinator mode: the campaign's lease state
// machine served over HTTP for remote -shard-worker processes, then the
// merged, byte-identical publish once every shard resolves.
func runServe(so shard.Options, cfg shardConfig) {
	srv, err := shardnet.NewServer(shardnet.ServerOptions{Shard: so})
	if err != nil {
		if errors.Is(err, store.ErrStale) || errors.Is(err, store.ErrSchemaMismatch) {
			fmt.Fprintf(os.Stderr, "characterize: %v\n", err)
			fmt.Fprintln(os.Stderr, "characterize: rerun without -resume to discard the campaign directory and start over")
			os.Exit(1)
		}
		fatal(err)
	}
	ln, err := net.Listen("tcp", cfg.serveAddr)
	if err != nil {
		fatal(err)
	}
	srv.Start(ln)
	fmt.Fprintf(os.Stderr, "characterize: coordinator serving on http://%s (point workers at it with -coordinator)\n",
		ln.Addr())
	if err := srv.WaitResolved(context.Background()); err != nil {
		fatal(err)
	}
	lib, err := srv.MergeAndPublish()
	rep := srv.Report()
	fmt.Fprintf(os.Stderr, "campaign: %d shard(s), %d completed (%d reused), %d lease(s), "+
		"%d expired, %d retries, %d corrupt, %d duplicate(s) discarded\n",
		rep.Shards, rep.Completed, rep.Reused, rep.Leases,
		rep.Expired, rep.Retries, rep.CorruptArtifacts, rep.DuplicatesDiscarded)
	for _, id := range rep.Quarantined {
		fmt.Fprintf(os.Stderr, "campaign: shard %s quarantined; cells served from the analytic fallback\n", id)
	}
	if cfg.stats {
		srv.WriteMetrics(os.Stderr)
	}
	if err != nil {
		fatal(err)
	}
	// Keep answering Done until every polling worker has heard it (bounded
	// by the lease TTL — a vanished worker must not wedge the exit), so
	// workers exit 0 instead of dying on connection-refused.
	dctx, cancel := context.WithTimeout(context.Background(), srv.Tracker().LeaseTTL())
	if derr := srv.DrainWorkers(dctx); derr != nil {
		fmt.Fprintln(os.Stderr, "characterize: coordinator exiting with workers still polling:", derr)
	}
	cancel()
	if serr := srv.Shutdown(context.Background()); serr != nil {
		fmt.Fprintln(os.Stderr, "characterize: coordinator shutdown:", serr)
	}
	if err := checkDegradationBudget(lib, so.Charlib.Resolved().MaxDegradedFrac); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d cells, tech %s, Vdd %.2f V) + manifest %s\n",
		cfg.out, len(lib.Cells), lib.TechName, lib.Vdd, store.ManifestPath(cfg.out))
}

// runRemoteWorker is the remote worker mode: pull shards from the
// coordinator, characterise them in a private local work directory, stream
// verified artefacts back, and exit with the worker exit-code contract.
func runRemoteWorker(so shard.Options, cfg shardConfig) {
	if cfg.coordinator == "" {
		fatal(errors.New("-shard-worker requires -coordinator URL"))
	}
	wdir := cfg.workerDir
	if wdir == "" {
		wdir = cfg.out + ".workdir"
	}
	so.Dir = wdir
	host, _ := os.Hostname()
	if host == "" {
		host = "worker"
	}
	progress := so.Progress
	if progress == nil {
		progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	rep, err := shardnet.RunWorker(context.Background(), shardnet.WorkerOptions{
		Client: shardnet.ClientOptions{
			Base:     cfg.coordinator,
			Metrics:  so.Metrics,
			Progress: so.Progress,
		},
		Shard:           so,
		Name:            fmt.Sprintf("%s-%d", host, os.Getpid()),
		ExitOnLeaseLost: true,
		Progress:        progress,
	})
	if rep != nil {
		fmt.Fprintf(os.Stderr, "worker: %d lease(s), %d completed, %d duplicate(s), "+
			"%d rejected, %d failed, %d lost\n",
			rep.Leases, rep.Completed, rep.Duplicates, rep.Rejected, rep.Failed, rep.LeaseLost)
	}
	if cfg.stats && so.Metrics != nil {
		so.Metrics.WriteText(os.Stderr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "characterize:", err)
	}
	os.Exit(workerExitCode(err))
}

// checkDegradationBudget fails when any cell — freshly characterised or
// replayed from the journal — exceeds the per-cell degraded-point budget.
func checkDegradationBudget(lib *core.Library, budget float64) error {
	names := make([]string, 0, len(lib.Cells))
	for name := range lib.Cells {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := lib.Cells[name]
		if m.Health == nil {
			continue
		}
		if frac := m.Health.DegradedFrac(); frac > budget {
			return fmt.Errorf("%s: %.1f%% of points degraded, budget %.1f%% (-max-degraded)",
				name, 100*frac, 100*budget)
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "characterize:", err)
	os.Exit(1)
}
