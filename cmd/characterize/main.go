// Command characterize runs the one-time cell-library characterisation of
// the paper's Section 3.7: it sweeps the transistor-level simulator over
// grids of input transition times and skews for every library cell, fits the
// empirical K-coefficient formulas, and writes the resulting timing library
// as JSON.
//
// Usage:
//
//	characterize [-out lib05.json] [-fast] [-jobs N] [-stats] [-v]
//	             [-health] [-max-degraded F] [-retries N]
//	             [-inject kind] [-inject-rate F] [-inject-seed S] [-inject-persist]
//
// The -inject* flags drive the deterministic fault-injection harness
// (internal/faultinject) for resilience testing: a seeded fraction of all
// solver time points is forced to fail, exercising the recovery, retry and
// graceful-degradation machinery end to end.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"sstiming/internal/charlib"
	"sstiming/internal/engine"
	"sstiming/internal/faultinject"
	"sstiming/internal/spice"
)

func main() {
	out := flag.String("out", "lib05.json", "output library path")
	fast := flag.Bool("fast", false, "use the reduced characterisation grid")
	jobs := flag.Int("jobs", 0, "worker pool width (0 = all CPUs, 1 = serial)")
	stats := flag.Bool("stats", false, "print execution statistics to stderr")
	verbose := flag.Bool("v", false, "print progress")
	health := flag.Bool("health", false, "print the per-cell characterisation health summary to stderr")
	maxDegraded := flag.Float64("max-degraded", 0, "max tolerated fraction of degraded points per cell (0 = default 0.25, negative forbids)")
	retries := flag.Int("retries", 0, "per-point retry budget with tightened solver settings (0 = default 2, negative disables)")
	injectKind := flag.String("inject", "", "fault kind to inject: noconv, nan or panic (empty disables)")
	injectRate := flag.Float64("inject-rate", 0.05, "fraction of solver time points faulted when -inject is set")
	injectSeed := flag.Int64("inject-seed", 1, "fault-injection plan seed")
	injectPersist := flag.Bool("inject-persist", false, "re-fire injected faults on recovery attempts too (defeats the solver ladder)")
	flag.Parse()

	var opts charlib.Options
	if *fast {
		opts = charlib.FastOptions()
	}
	// The shipped artefact carries the Section 3.6 extension surfaces;
	// consumers only use them behind their NCExtension flags.
	opts.NCPairs = true
	opts.Jobs = *jobs
	opts.Retries = *retries
	opts.MaxDegradedFrac = *maxDegraded
	if *stats {
		opts.Metrics = engine.NewMetrics()
	}
	if *verbose {
		opts.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	var plan *faultinject.Plan
	if *injectKind != "" {
		kind, err := spice.ParseFaultKind(*injectKind)
		if err != nil {
			fmt.Fprintln(os.Stderr, "characterize:", err)
			os.Exit(1)
		}
		plan = faultinject.NewPlan(*injectSeed, *injectRate, kind, *injectPersist)
		opts.NewFaultHook = plan.NextHook
	}

	lib, err := charlib.Characterize(opts)
	if plan != nil {
		fmt.Fprintf(os.Stderr, "fault injection: %d faults across %d transients (kind %s, rate %g, seed %d)\n",
			plan.Injected(), plan.Transients(), *injectKind, *injectRate, *injectSeed)
	}
	if *health && lib != nil {
		if werr := lib.WriteHealth(os.Stderr); werr != nil {
			fmt.Fprintln(os.Stderr, "characterize:", werr)
		}
	}
	if *stats {
		opts.Metrics.WriteText(os.Stderr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "characterize:", err)
		os.Exit(1)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "characterize:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := lib.WriteJSON(f); err != nil {
		fmt.Fprintln(os.Stderr, "characterize:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d cells, tech %s, Vdd %.2f V)\n", *out, len(lib.Cells), lib.TechName, lib.Vdd)

	if *verbose {
		fmt.Println("\nfit quality (ns domain):")
		names := make([]string, 0, len(lib.Cells))
		for name := range lib.Cells {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			m := lib.Cells[name]
			keys := make([]string, 0, len(m.Quality))
			for k := range m.Quality {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				q := m.Quality[k]
				fmt.Printf("  %-8s %-22s rms %.4f  max %.4f  R2 %.4f\n", name, k, q.RMS, q.Max, q.R2)
			}
		}
	}
}
