package main

import (
	"errors"
	"fmt"
	"testing"

	"sstiming/internal/shard"
	"sstiming/internal/shardnet"
	"sstiming/internal/store"
)

// TestWorkerExitCodes pins the worker-mode exit-code contract supervisors
// script against: 0 = campaign resolved / all leases done, 2 = a lease was
// lost or reassigned (restart the worker), 3 = fatal (plan mismatch,
// unknown shard — do not restart), 1 = anything else.
func TestWorkerExitCodes(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"all leases done", nil, exitOK},
		{"lease lost", shardnet.ErrLeaseLost, exitLeaseLost},
		{"lease lost wrapped", fmt.Errorf("%w: shard s01 attempt 2 reassigned", shardnet.ErrLeaseLost), exitLeaseLost},
		{"fatal", shardnet.ErrFatal, exitFatal},
		{"fatal wrapped", fmt.Errorf("%w: plan mismatch", shardnet.ErrFatal), exitFatal},
		{"plan mismatch", fmt.Errorf("%w: options differ", store.ErrStale), exitFatal},
		{"schema mismatch", store.ErrSchemaMismatch, exitFatal},
		{"unknown shard", fmt.Errorf("%w: %q", shard.ErrUnknownShard, "s99"), exitFatal},
		{"other error", errors.New("disk full"), exitError},
	}
	for _, c := range cases {
		if got := workerExitCode(c.err); got != c.want {
			t.Errorf("%s: exit %d, want %d", c.name, got, c.want)
		}
	}
}
