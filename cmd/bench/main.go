// Command bench records the reproduction's performance trajectory
// (ROADMAP item 5b) into a machine-readable JSON report:
//
//   - full-STA throughput (gates/sec) over the benchgen ISCAS85 stand-ins,
//   - incremental re-converge latency per single-gate edit on the largest
//     circuit, bucketed by dirty-cone size, with the speed-up against a
//     full from-scratch rebuild,
//   - ITR-in-ATPG campaign wall-clock, persistent-graph deltas vs. the
//     pre-refactor from-scratch refinement per decision step,
//   - timingd sustained throughput: QPS and p50/p99 latency under concurrent
//     HTTP load for cold vs hot content-addressed cache and unbatched vs
//     micro-batched tiny requests (see internal/reqcache, internal/batch),
//   - characterisation wall-clock and solver points/sec, single-process vs
//     the in-process sharded coordinator/worker campaign (internal/shard) vs
//     the networked campaign over loopback HTTP (internal/shardnet — remote
//     workers, chunked verified uploads), with bytes transferred and client
//     retries recorded, re-proving on every report that both campaign
//     publishes are byte-identical to the single-process one,
//   - durable delta-STA sessions: per-delta ack latency with and without the
//     write-ahead journal, and restart replay wall-clock vs edit-script
//     length with the snapshot compactor off (full-log replay) and on
//     (checkpoint restore + tail), re-proving recovered sessions answer
//     /windows byte-identically (see internal/sessionlog).
//
// Every report carries machine and commit metadata so successive BENCH_N.json
// files are comparable across the project's history. The emitted report is
// schema-validated before it is written — a full run additionally requires
// the hot cache to sustain at least 5x the cold throughput; -smoke runs a
// seconds-scale variant on tiny circuits and discards the file, existing so
// `make bench-smoke` can keep the harness honest in CI without paying for
// the full run.
//
// Usage:
//
//	bench [-out BENCH_4.json] [-jobs N] [-reps N] [-edits N] [-faults N] [-smoke]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"sstiming/internal/atpg"
	"sstiming/internal/benchgen"
	"sstiming/internal/core"
	"sstiming/internal/netlist"
	"sstiming/internal/prechar"
	"sstiming/internal/sta"
	"sstiming/internal/tgraph"
	"sstiming/internal/twindow"
)

// Schema is the report format identifier; bump on incompatible changes.
// v2 adds the `service` section (daemon sustained QPS / tail latency).
// v3 adds the `characterization` section (campaign wall-clock and solver
// points/sec, single-process vs sharded coordinator/worker, byte-identity
// re-proved per report).
// v4 adds the networked-campaign fields to `characterization`: wall-clock
// through the loopback HTTP coordinator/worker path (internal/shardnet),
// artefact bytes uploaded, client requests and retries observed, and the
// networked publish's byte-identity re-proved alongside the in-process one.
// v5 adds the `session` section (durable delta-STA sessions: journaled
// per-delta ack overhead, restart replay wall-clock vs edit-script length
// with/without snapshot compaction, byte-identity of recovered windows).
const Schema = "sstiming-bench/5"

// Report is the top-level BENCH_N.json document.
type Report struct {
	Schema      string           `json:"schema"`
	GeneratedAt string           `json:"generated_at"`
	Commit      string           `json:"commit"`
	Machine     Machine          `json:"machine"`
	FullSTA     []FullSTA        `json:"full_sta"`
	Incremental Incremental      `json:"incremental"`
	ATPGITR     ATPGITR          `json:"atpg_itr"`
	Service     ServiceBench     `json:"service"`
	Charlib     Characterization `json:"characterization"`
	Session     SessionBench     `json:"session"`
}

// Machine records where the numbers were taken.
type Machine struct {
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	CPUs      int    `json:"cpus"`
	GoVersion string `json:"go_version"`
	Hostname  string `json:"hostname"`
	Jobs      int    `json:"jobs"`
}

// FullSTA is one circuit's from-scratch analysis throughput.
type FullSTA struct {
	Circuit     string  `json:"circuit"`
	Gates       int     `json:"gates"`
	Reps        int     `json:"reps"`
	MeanMs      float64 `json:"mean_ms"`
	GatesPerSec float64 `json:"gates_per_sec"`
}

// ConeBucket aggregates edit latencies whose dirty-cone size (changed
// lines) falls in (prev bucket, MaxCone].
type ConeBucket struct {
	MaxCone int     `json:"max_cone"`
	Count   int     `json:"count"`
	MeanUs  float64 `json:"mean_us"`
}

// EditStats summarises a class of incremental edits. SpeedupVsFull is the
// geometric mean of the per-edit speedup ratios (full rebuild time / edit
// time) — the standard aggregate for normalized ratios, since the
// arithmetic mean of edit *times* is dominated by the rare near-full-cone
// edits the cone buckets break out explicitly. SpeedupMeanEdit is the
// arithmetic counterpart (mean rebuild time / mean edit time) for
// comparison.
type EditStats struct {
	Count           int     `json:"count"`
	MeanUs          float64 `json:"mean_us"`
	P50Us           float64 `json:"p50_us"`
	P95Us           float64 `json:"p95_us"`
	SpeedupVsFull   float64 `json:"speedup_vs_full"`
	SpeedupMeanEdit float64 `json:"speedup_mean_edit"`
}

// Incremental is the delta-STA latency section, taken on one circuit.
type Incremental struct {
	Circuit       string       `json:"circuit"`
	Gates         int          `json:"gates"`
	FullRebuildMs float64      `json:"full_rebuild_ms"`
	SingleGate    EditStats    `json:"single_gate_edits"`
	PIRetime      EditStats    `json:"pi_retime_edits"`
	ConeBuckets   []ConeBucket `json:"cone_buckets"`
}

// ATPGITR compares the ATPG campaign under from-scratch refinement per
// decision step against the persistent-graph incremental path.
type ATPGITR struct {
	Circuit          string  `json:"circuit"`
	Faults           int     `json:"faults"`
	FullRecomputeMs  float64 `json:"full_recompute_ms"`
	IncrementalMs    float64 `json:"incremental_ms"`
	Speedup          float64 `json:"speedup"`
	Detected         int     `json:"detected"`
	Untestable       int     `json:"untestable"`
	Aborted          int     `json:"aborted"`
	BacktracksTotal  int     `json:"backtracks_total"`
	ResultsIdentical bool    `json:"results_identical"`
}

func main() {
	out := flag.String("out", "BENCH_5.json", "output report path")
	jobs := flag.Int("jobs", 0, "engine worker pool width (0 = all CPUs)")
	reps := flag.Int("reps", 5, "full-STA repetitions per circuit")
	edits := flag.Int("edits", 200, "incremental edits measured on the target circuit")
	faults := flag.Int("faults", 12, "crosstalk faults in the ATPG comparison")
	smoke := flag.Bool("smoke", false, "seconds-scale run on tiny circuits; validate schema and discard")
	flag.Parse()

	lib := prechar.MustLibrary()

	staNames := []string{"c432", "c880", "c1908", "c3540", "c7552"}
	deltaName, atpgName := "c7552", "c432"
	if *smoke {
		staNames = []string{"c17"}
		deltaName, atpgName = "c17", "c17"
		*reps, *edits, *faults = 1, 8, 2
	}

	rep := Report{
		Schema:      Schema,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Commit:      gitCommit(),
		Machine: Machine{
			OS:        runtime.GOOS,
			Arch:      runtime.GOARCH,
			CPUs:      runtime.NumCPU(),
			GoVersion: runtime.Version(),
			Hostname:  hostname(),
			Jobs:      *jobs,
		},
	}

	for _, name := range staNames {
		c := mustCircuit(name)
		fs, err := benchFullSTA(c, lib, *jobs, *reps)
		if err != nil {
			fatal("full STA on %s: %v", name, err)
		}
		rep.FullSTA = append(rep.FullSTA, fs)
		fmt.Fprintf(os.Stderr, "full-sta  %-6s %5d gates  %8.2f ms  %10.0f gates/s\n",
			fs.Circuit, fs.Gates, fs.MeanMs, fs.GatesPerSec)
	}

	inc, err := benchIncremental(mustCircuit(deltaName), lib, *jobs, *edits)
	if err != nil {
		fatal("incremental on %s: %v", deltaName, err)
	}
	rep.Incremental = inc
	fmt.Fprintf(os.Stderr, "delta     %-6s swap %6.1f us/edit (p95 %6.1f)  rebuild %8.2f ms  speedup %.0fx\n",
		inc.Circuit, inc.SingleGate.MeanUs, inc.SingleGate.P95Us,
		inc.FullRebuildMs, inc.SingleGate.SpeedupVsFull)

	ai, err := benchATPG(mustCircuit(atpgName), lib, *jobs, *faults)
	if err != nil {
		fatal("atpg on %s: %v", atpgName, err)
	}
	rep.ATPGITR = ai
	fmt.Fprintf(os.Stderr, "atpg-itr  %-6s %d faults  full %8.2f ms  incremental %8.2f ms  speedup %.1fx\n",
		ai.Circuit, ai.Faults, ai.FullRecomputeMs, ai.IncrementalMs, ai.Speedup)

	sb, err := benchService(lib, *jobs, *smoke)
	if err != nil {
		fatal("service bench: %v", err)
	}
	rep.Service = sb
	fmt.Fprintf(os.Stderr, "service   cold %8.0f qps  hot %8.0f qps (%.1fx)  unbatched %8.0f qps  batched %8.0f qps (%.2fx)\n",
		sb.Scenarios[0].QPS, sb.Scenarios[1].QPS, sb.HotOverCold,
		sb.Scenarios[2].QPS, sb.Scenarios[3].QPS, sb.BatchedOverUnbatched)

	ch, err := benchCharacterization(*jobs, *smoke)
	if err != nil {
		fatal("characterisation bench: %v", err)
	}
	rep.Charlib = ch
	fmt.Fprintf(os.Stderr, "charlib   %d cells  single %8.0f ms (%5.0f pts/s)  sharded %8.0f ms (%5.0f pts/s, %d shards/%d workers)  identical=%v\n",
		ch.Cells, ch.SingleProcessMs, ch.PointsPerSec,
		ch.ShardedMs, ch.ShardedPointsPerSec, ch.Shards, ch.Workers, ch.BytesIdentical)
	fmt.Fprintf(os.Stderr, "charnet   %d workers  networked %8.0f ms (%5.0f pts/s)  %d bytes up  %d reqs  %d retries  identical=%v\n",
		ch.NetWorkers, ch.NetworkedMs, ch.NetworkedPointsPerSec,
		ch.NetBytesUploaded, ch.NetRequests, ch.NetRetries, ch.NetBytesIdentical)

	se, err := benchSession(lib, *jobs, *smoke)
	if err != nil {
		fatal("session bench: %v", err)
	}
	rep.Session = se
	for _, pt := range se.Recovery {
		fmt.Fprintf(os.Stderr, "session   %-6s %4d deltas  full replay %8.2f ms  snapshot %8.2f ms (%d snaps, %.1fx)  identical=%v\n",
			se.Circuit, pt.Deltas, pt.FullReplayMs, pt.SnapshotReplayMs, pt.Snapshots, pt.Speedup, pt.WindowsIdentical)
	}
	fmt.Fprintf(os.Stderr, "session   delta ack  in-memory %7.1f us  durable %7.1f us  overhead %+7.1f us\n",
		se.InMemoryDeltaUs, se.DurableDeltaUs, se.DurableOverheadUs)

	if err := validate(&rep, !*smoke); err != nil {
		fatal("report failed schema validation: %v", err)
	}
	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal("marshal: %v", err)
	}
	buf = append(buf, '\n')

	if *smoke {
		// Round-trip through a real file so the write path is exercised,
		// then discard: smoke validates the harness, not the numbers.
		path := filepath.Join(os.TempDir(), fmt.Sprintf("sstiming-bench-smoke-%d.json", os.Getpid()))
		if err := writeAndReparse(path, buf, false); err != nil {
			fatal("%v", err)
		}
		os.Remove(path)
		fmt.Fprintln(os.Stderr, "bench smoke OK: schema valid")
		return
	}
	if err := writeAndReparse(*out, buf, true); err != nil {
		fatal("%v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

func fatal(format string, a ...any) {
	fmt.Fprintf(os.Stderr, "bench: "+format+"\n", a...)
	os.Exit(1)
}

func hostname() string {
	h, err := os.Hostname()
	if err != nil {
		return "unknown"
	}
	return h
}

func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func mustCircuit(name string) *netlist.Circuit {
	c, err := benchgen.Load(name)
	if err != nil {
		fatal("load %s: %v", name, err)
	}
	return c
}

// benchFullSTA times repeated from-scratch analyses.
func benchFullSTA(c *netlist.Circuit, lib *core.Library, jobs, reps int) (FullSTA, error) {
	var total time.Duration
	for i := 0; i < reps; i++ {
		start := time.Now()
		if _, err := sta.Analyze(c, sta.Options{Lib: lib, Mode: sta.ModeProposed, Jobs: jobs}); err != nil {
			return FullSTA{}, err
		}
		total += time.Since(start)
	}
	mean := total / time.Duration(reps)
	return FullSTA{
		Circuit:     c.Name,
		Gates:       c.NumGates(),
		Reps:        reps,
		MeanMs:      float64(mean) / float64(time.Millisecond),
		GatesPerSec: float64(c.NumGates()) / mean.Seconds(),
	}, nil
}

// swappableGates lists gate indices whose same-arity dual cell is
// characterised (Inv/Buf share INV; NANDn needs a NORn and vice versa).
func swappableGates(c *netlist.Circuit, lib *core.Library) []int {
	var out []int
	for gi := range c.Gates {
		g := &c.Gates[gi]
		switch g.Kind {
		case netlist.Inv, netlist.Buf:
			out = append(out, gi)
		default:
			n := len(g.Inputs)
			_, nand := lib.Cells[fmt.Sprintf("NAND%d", n)]
			_, nor := lib.Cells[fmt.Sprintf("NOR%d", n)]
			if nand && nor {
				out = append(out, gi)
			}
		}
	}
	return out
}

func dual(k netlist.GateKind) netlist.GateKind {
	switch k {
	case netlist.Inv:
		return netlist.Buf
	case netlist.Buf:
		return netlist.Inv
	case netlist.Nand:
		return netlist.Nor
	default:
		return netlist.Nand
	}
}

type editSample struct {
	d    time.Duration
	cone int
}

func stats(samples []editSample, fullRebuild time.Duration) EditStats {
	if len(samples) == 0 {
		return EditStats{}
	}
	ds := make([]time.Duration, len(samples))
	var total time.Duration
	for i, s := range samples {
		ds[i] = s.d
		total += s.d
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	mean := total / time.Duration(len(samples))
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(ds)-1))
		return ds[i]
	}
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	es := EditStats{
		Count:  len(samples),
		MeanUs: us(mean),
		P50Us:  us(pct(0.50)),
		P95Us:  us(pct(0.95)),
	}
	if mean > 0 {
		es.SpeedupMeanEdit = float64(fullRebuild) / float64(mean)
	}
	var logSum float64
	n := 0
	for _, s := range samples {
		if s.d > 0 {
			logSum += math.Log(float64(fullRebuild) / float64(s.d))
			n++
		}
	}
	if n > 0 {
		es.SpeedupVsFull = math.Exp(logSum / float64(n))
	}
	return es
}

// benchIncremental measures per-edit re-converge latency on one persistent
// graph: single-gate swaps (each immediately swapped back so the circuit
// returns to its pristine shape) and PI stimulus retimes, against the cost
// of a full from-scratch rebuild.
func benchIncremental(c *netlist.Circuit, lib *core.Library, jobs, edits int) (Incremental, error) {
	opts := tgraph.Options{Lib: lib, Mode: sta.ModeProposed, Jobs: jobs}

	// Full-rebuild reference: mean over 3 fresh builds.
	var rebuild time.Duration
	const rebuildReps = 3
	for i := 0; i < rebuildReps; i++ {
		start := time.Now()
		if _, err := tgraph.New(c, opts); err != nil {
			return Incremental{}, err
		}
		rebuild += time.Since(start)
	}
	rebuild /= rebuildReps

	g, err := tgraph.New(c, opts)
	if err != nil {
		return Incremental{}, err
	}
	swappable := swappableGates(c, lib)
	if len(swappable) == 0 {
		return Incremental{}, fmt.Errorf("no swappable gates in %s", c.Name)
	}

	rng := rand.New(rand.NewSource(1))
	var swaps, retimes []editSample
	for len(swaps) < edits {
		gi := swappable[rng.Intn(len(swappable))]
		gate := &c.Gates[gi]
		for _, kind := range []netlist.GateKind{dual(gate.Kind), gate.Kind} {
			start := time.Now()
			if err := g.SwapGate(nil, gate.Output, kind); err != nil {
				return Incremental{}, err
			}
			swaps = append(swaps, editSample{d: time.Since(start), cone: g.NumChanged()})
		}
	}
	for len(retimes) < edits {
		pi := c.PIs[rng.Intn(len(c.PIs))]
		early := rng.Float64() * 0.2e-9
		p := twindow.PITiming{
			ArrivalEarly: early,
			ArrivalLate:  early + rng.Float64()*0.2e-9,
			TransShort:   0.1e-9 + rng.Float64()*0.1e-9,
			TransLong:    0.2e-9 + rng.Float64()*0.1e-9,
		}
		start := time.Now()
		if err := g.SetPI(nil, pi, p); err != nil {
			return Incremental{}, err
		}
		retimes = append(retimes, editSample{d: time.Since(start), cone: g.NumChanged()})
	}

	bounds := []int{10, 100, 1000, 1 << 30}
	buckets := make([]ConeBucket, len(bounds))
	sums := make([]time.Duration, len(bounds))
	for _, s := range append(append([]editSample{}, swaps...), retimes...) {
		for bi, max := range bounds {
			if s.cone <= max {
				buckets[bi].Count++
				sums[bi] += s.d
				break
			}
		}
	}
	var kept []ConeBucket
	for bi := range buckets {
		if buckets[bi].Count == 0 {
			continue
		}
		buckets[bi].MaxCone = bounds[bi]
		buckets[bi].MeanUs = float64(sums[bi]/time.Duration(buckets[bi].Count)) / float64(time.Microsecond)
		kept = append(kept, buckets[bi])
	}

	return Incremental{
		Circuit:       c.Name,
		Gates:         c.NumGates(),
		FullRebuildMs: float64(rebuild) / float64(time.Millisecond),
		SingleGate:    stats(swaps, rebuild),
		PIRetime:      stats(retimes, rebuild),
		ConeBuckets:   kept,
	}, nil
}

// benchATPG times the same fault campaign twice: once forcing from-scratch
// refinement per decision step (the pre-refactor reference) and once on the
// persistent incremental graph. Both searches are byte-identical by
// construction, so outcome counts must match.
func benchATPG(c *netlist.Circuit, lib *core.Library, jobs, n int) (ATPGITR, error) {
	faults := atpg.RandomFaults(c, n, 7, 1e-9)
	run := func(fullRecompute bool) (atpg.CampaignStats, time.Duration, error) {
		start := time.Now()
		s, err := atpg.RunCampaign(c, faults, atpg.Options{
			Lib:              lib,
			UseITR:           true,
			ITRFullRecompute: fullRecompute,
			Jobs:             jobs,
		})
		return s, time.Since(start), err
	}
	sFull, dFull, err := run(true)
	if err != nil {
		return ATPGITR{}, err
	}
	sInc, dInc, err := run(false)
	if err != nil {
		return ATPGITR{}, err
	}
	ai := ATPGITR{
		Circuit:          c.Name,
		Faults:           len(faults),
		FullRecomputeMs:  float64(dFull) / float64(time.Millisecond),
		IncrementalMs:    float64(dInc) / float64(time.Millisecond),
		Detected:         sInc.Detected,
		Untestable:       sInc.Untestable,
		Aborted:          sInc.Aborted,
		BacktracksTotal:  sInc.TotalBacktracks,
		ResultsIdentical: sFull == sInc,
	}
	if dInc > 0 {
		ai.Speedup = float64(dFull) / float64(dInc)
	}
	return ai, nil
}

// validate enforces the report invariants `make bench-smoke` guards: a
// report that fails here is never written. A full (non-smoke) report must
// additionally show the hot content-addressed cache sustaining at least 5x
// the cold throughput — the cache's reason to exist; smoke skips that gate
// because a 6-gate circuit's engine run is too cheap for caching to beat
// HTTP overhead by a fixed margin.
func validate(r *Report, full bool) error {
	switch {
	case r.Schema != Schema:
		return fmt.Errorf("schema %q, want %q", r.Schema, Schema)
	case r.GeneratedAt == "" || r.Commit == "":
		return fmt.Errorf("missing generated_at/commit metadata")
	case r.Machine.CPUs <= 0 || r.Machine.OS == "" || r.Machine.GoVersion == "":
		return fmt.Errorf("incomplete machine metadata %+v", r.Machine)
	case len(r.FullSTA) == 0:
		return fmt.Errorf("no full_sta entries")
	}
	for _, fs := range r.FullSTA {
		if fs.Gates <= 0 || fs.GatesPerSec <= 0 || fs.MeanMs <= 0 {
			return fmt.Errorf("degenerate full_sta entry %+v", fs)
		}
	}
	inc := &r.Incremental
	if inc.Circuit == "" || inc.FullRebuildMs <= 0 {
		return fmt.Errorf("degenerate incremental section %+v", inc)
	}
	if inc.SingleGate.Count == 0 || inc.SingleGate.SpeedupVsFull <= 0 {
		return fmt.Errorf("no single-gate edit samples: %+v", inc.SingleGate)
	}
	total := 0
	for _, b := range inc.ConeBuckets {
		if b.Count <= 0 || b.MeanUs < 0 {
			return fmt.Errorf("degenerate cone bucket %+v", b)
		}
		total += b.Count
	}
	if want := inc.SingleGate.Count + inc.PIRetime.Count; total != want {
		return fmt.Errorf("cone buckets cover %d edits, want %d", total, want)
	}
	ai := &r.ATPGITR
	if ai.Faults <= 0 || ai.FullRecomputeMs <= 0 || ai.IncrementalMs <= 0 {
		return fmt.Errorf("degenerate atpg_itr section %+v", ai)
	}
	if !ai.ResultsIdentical {
		return fmt.Errorf("incremental ATPG outcomes diverged from full recompute")
	}
	sb := &r.Service
	if len(sb.Scenarios) != 4 {
		return fmt.Errorf("service section has %d scenarios, want 4", len(sb.Scenarios))
	}
	for _, sc := range sb.Scenarios {
		if sc.Name == "" || sc.Requests <= 0 || sc.Clients <= 0 ||
			sc.QPS <= 0 || sc.P50Ms <= 0 || sc.P99Ms < sc.P50Ms {
			return fmt.Errorf("degenerate service scenario %+v", sc)
		}
	}
	if sb.HotOverCold <= 0 || sb.BatchedOverUnbatched <= 0 {
		return fmt.Errorf("degenerate service ratios %+v", sb)
	}
	if full && sb.HotOverCold < 5 {
		return fmt.Errorf("hot cache sustains only %.2fx cold throughput, want >= 5x", sb.HotOverCold)
	}
	ch := &r.Charlib
	if ch.Cells <= 0 || ch.GridPoints <= 0 || ch.SolverPoints <= 0 ||
		ch.SingleProcessMs <= 0 || ch.PointsPerSec <= 0 ||
		ch.Shards <= 0 || ch.Workers <= 0 ||
		ch.ShardedMs <= 0 || ch.ShardedPointsPerSec <= 0 {
		return fmt.Errorf("degenerate characterization section %+v", ch)
	}
	if !ch.BytesIdentical {
		return fmt.Errorf("sharded characterisation publish diverged from single-process bytes")
	}
	if ch.NetWorkers <= 0 || ch.NetworkedMs <= 0 || ch.NetworkedPointsPerSec <= 0 ||
		ch.NetBytesUploaded <= 0 || ch.NetRequests <= 0 || ch.NetRetries < 0 {
		return fmt.Errorf("degenerate networked-campaign fields %+v", ch)
	}
	if !ch.NetBytesIdentical {
		return fmt.Errorf("networked characterisation publish diverged from single-process bytes")
	}
	se := &r.Session
	if se.Circuit == "" || se.LatencyDeltas <= 0 ||
		se.InMemoryDeltaUs <= 0 || se.DurableDeltaUs <= 0 || len(se.Recovery) == 0 {
		return fmt.Errorf("degenerate session section %+v", se)
	}
	for _, pt := range se.Recovery {
		if pt.Deltas <= 0 || pt.FullReplayMs <= 0 || pt.SnapshotReplayMs <= 0 {
			return fmt.Errorf("degenerate session recovery point %+v", pt)
		}
		if !pt.WindowsIdentical {
			return fmt.Errorf("recovered session windows diverged at %d deltas", pt.Deltas)
		}
	}
	if full {
		// The longest point is the acceptance scenario: >= 500 deltas, with
		// the snapshot compactor recovering at least 5x faster than
		// replaying the whole log.
		last := se.Recovery[len(se.Recovery)-1]
		if last.Deltas < 500 {
			return fmt.Errorf("longest session recovery point is %d deltas, want >= 500", last.Deltas)
		}
		if last.Snapshots <= 0 {
			return fmt.Errorf("snapshot recovery at %d deltas took no snapshots", last.Deltas)
		}
		if last.Speedup < 5 {
			return fmt.Errorf("snapshot recovery is only %.2fx faster than full-log replay at %d deltas, want >= 5x",
				last.Speedup, last.Deltas)
		}
	}
	return nil
}

// writeAndReparse writes the report and re-reads it through the validator,
// so a corrupt file can never be left behind as a trajectory point.
func writeAndReparse(path string, buf []byte, full bool) error {
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reread %s: %w", path, err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		return fmt.Errorf("reparse %s: %w", path, err)
	}
	if err := validate(&back, full); err != nil {
		return fmt.Errorf("reparse %s: %w", path, err)
	}
	return nil
}
