package main

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"sstiming/internal/cells"
	"sstiming/internal/charlib"
	"sstiming/internal/device"
	"sstiming/internal/engine"
	"sstiming/internal/shard"
	"sstiming/internal/shardnet"
	"sstiming/internal/store"
)

// Characterization is the characterisation wall-clock section (schema v4):
// the same reduced campaign timed three times — single-process, through the
// in-process fault-tolerant coordinator/worker path (internal/shard), and
// through the networked coordinator with remote workers over loopback HTTP
// (internal/shardnet) — with both campaign publishes required byte-identical
// to the single-process one. Solver points are the simulations charlib
// issued (charlib/jobs), so points/sec is the solver's effective
// characterisation throughput; the net_* fields record what the wire added:
// artefact bytes uploaded, requests issued by the resilient client, and
// retries it observed.
type Characterization struct {
	Cells               int     `json:"cells"`
	GridPoints          int     `json:"grid_points"`
	SolverPoints        int64   `json:"solver_points"`
	SingleProcessMs     float64 `json:"single_process_ms"`
	PointsPerSec        float64 `json:"points_per_sec"`
	Shards              int     `json:"shards"`
	Workers             int     `json:"workers"`
	ShardedMs           float64 `json:"sharded_ms"`
	ShardedPointsPerSec float64 `json:"sharded_points_per_sec"`
	BytesIdentical      bool    `json:"bytes_identical"`

	NetWorkers            int     `json:"net_workers"`
	NetworkedMs           float64 `json:"networked_ms"`
	NetworkedPointsPerSec float64 `json:"networked_points_per_sec"`
	NetBytesUploaded      int64   `json:"net_bytes_uploaded"`
	NetRequests           int64   `json:"net_requests"`
	NetRetries            int64   `json:"net_retries"`
	NetBytesIdentical     bool    `json:"net_bytes_identical"`
}

// benchCharlib returns the campaign both paths characterise. The smoke
// variant mirrors the shard chaos suite's reduced campaign; the full one
// widens the grid and cell set so the wall-clock is a meaningful trajectory
// point rather than startup noise.
func benchCharlib(jobs int, smoke bool) charlib.Options {
	tech := device.Default05um()
	o := charlib.Options{
		Tech: tech,
		Grid: []float64{0.2e-9, 0.5e-9, 1.0e-9},
		Cells: []cells.Config{
			{Kind: cells.Inv, N: 1, Tech: tech, LoadInverter: true},
			{Kind: cells.NAND, N: 2, Tech: tech, LoadInverter: true},
			{Kind: cells.NOR, N: 2, Tech: tech, LoadInverter: true},
		},
		TStep: 3e-12,
		Jobs:  jobs,
	}
	if !smoke {
		o.Grid = []float64{0.1e-9, 0.2e-9, 0.5e-9, 1.0e-9, 2.0e-9}
		o.Cells = append(o.Cells,
			cells.Config{Kind: cells.NAND, N: 3, Tech: tech, LoadInverter: true},
			cells.Config{Kind: cells.NOR, N: 3, Tech: tech, LoadInverter: true},
		)
	}
	return o
}

// benchCharacterization runs the campaign single-process, then re-runs it
// sharded (one cell per shard, concurrent in-process workers under leases),
// and compares the two publishes byte for byte — the bench both measures the
// sharding overhead and re-proves the byte-identity contract on every
// trajectory point.
func benchCharacterization(jobs int, smoke bool) (Characterization, error) {
	dir, err := os.MkdirTemp("", "sstiming-bench-char-")
	if err != nil {
		return Characterization{}, err
	}
	defer os.RemoveAll(dir)

	o := benchCharlib(jobs, smoke)
	met := engine.NewMetrics()
	o.Metrics = met

	singleOut := filepath.Join(dir, "single.json")
	start := time.Now()
	lib, err := charlib.Characterize(o)
	if err != nil {
		return Characterization{}, fmt.Errorf("single-process characterise: %w", err)
	}
	ro := o.Resolved()
	if _, err := store.WriteLibrary(singleOut, lib, ro.Grid, ro.NCPairs); err != nil {
		return Characterization{}, fmt.Errorf("single-process publish: %w", err)
	}
	single := time.Since(start)
	points := met.Get(engine.CharJobs)

	// Sharded re-run of the identical campaign: one cell per shard so every
	// worker stays busy. Worker-level parallelism replaces charlib's
	// in-process fan-out (Jobs 1 inside each shard).
	workers := 3
	shardOpts := benchCharlib(1, smoke)
	shardedMet := engine.NewMetrics()
	shardedOut := filepath.Join(dir, "sharded.json")
	start = time.Now()
	_, rep, err := shard.Run(shard.Options{
		Charlib:    shardOpts,
		Out:        shardedOut,
		ShardCells: 1,
		Workers:    workers,
		Metrics:    shardedMet,
	})
	if err != nil {
		return Characterization{}, fmt.Errorf("sharded characterise: %w", err)
	}
	sharded := time.Since(start)
	shardedPoints := shardedMet.Get(engine.CharJobs)

	identical, err := publishesIdentical(singleOut, shardedOut)
	if err != nil {
		return Characterization{}, err
	}

	netStats, err := benchNetworked(dir, smoke, singleOut)
	if err != nil {
		return Characterization{}, err
	}

	ch := Characterization{
		Cells:           len(ro.Cells),
		GridPoints:      len(ro.Grid),
		SolverPoints:    points,
		SingleProcessMs: float64(single) / float64(time.Millisecond),
		Shards:          rep.Shards,
		Workers:         workers,
		ShardedMs:       float64(sharded) / float64(time.Millisecond),
		BytesIdentical:  identical,
	}
	if s := single.Seconds(); s > 0 {
		ch.PointsPerSec = float64(points) / s
	}
	if s := sharded.Seconds(); s > 0 {
		ch.ShardedPointsPerSec = float64(shardedPoints) / s
	}
	ch.NetWorkers = netStats.workers
	ch.NetworkedMs = float64(netStats.elapsed) / float64(time.Millisecond)
	ch.NetBytesUploaded = netStats.bytesUploaded
	ch.NetRequests = netStats.requests
	ch.NetRetries = netStats.retries
	ch.NetBytesIdentical = netStats.identical
	if s := netStats.elapsed.Seconds(); s > 0 {
		ch.NetworkedPointsPerSec = float64(netStats.points) / s
	}
	return ch, nil
}

// netCampaignStats is what the networked leg of the characterisation bench
// measures beyond the wall-clock: the transport counters and the re-proved
// byte-identity.
type netCampaignStats struct {
	workers       int
	elapsed       time.Duration
	points        int64
	bytesUploaded int64
	requests      int64
	retries       int64
	identical     bool
}

// benchNetworked re-runs the identical campaign once more through the real
// HTTP coordinator/worker path (internal/shardnet) over loopback sockets:
// remote workers lease shards from the coordinator, characterise locally,
// stream artefacts back in verified chunks, and the coordinator merges. One
// shared metrics sink accumulates the solver points alongside the wire
// counters (client requests and retries, server-side artefact bytes), and
// the merged publish is compared byte for byte against the single-process
// reference — the third corner of the byte-identity contract, re-proved on
// every trajectory point.
func benchNetworked(dir string, smoke bool, singleOut string) (netCampaignStats, error) {
	const workers = 3
	met := engine.NewMetrics()
	netOut := filepath.Join(dir, "networked.json")
	srv, err := shardnet.NewServer(shardnet.ServerOptions{
		Shard: shard.Options{
			Charlib:     benchCharlib(1, smoke),
			Out:         netOut,
			ShardCells:  1,
			LeaseTTL:    2 * time.Second,
			MaxAttempts: 8,
			Backoff:     25 * time.Millisecond,
			Metrics:     met,
		},
	})
	if err != nil {
		return netCampaignStats{}, fmt.Errorf("networked coordinator: %w", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return netCampaignStats{}, err
	}
	base := "http://" + ln.Addr().String()

	start := time.Now()
	srv.Start(ln)
	var wg sync.WaitGroup
	workerErrs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wdir := filepath.Join(dir, fmt.Sprintf("net-worker-%d", i))
		o := benchCharlib(1, smoke)
		o.Metrics = met
		wopts := shardnet.WorkerOptions{
			Client: shardnet.ClientOptions{
				Base:    base,
				Seed:    int64(i + 1),
				Metrics: met,
			},
			Shard: shard.Options{
				Charlib:    o,
				Out:        filepath.Join(wdir, "unused.json"),
				Dir:        filepath.Join(wdir, "work.campaign"),
				ShardCells: 1,
			},
			Name: fmt.Sprintf("bench-w%d", i),
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, workerErrs[i] = shardnet.RunWorker(context.Background(), wopts)
		}(i)
	}
	if err := srv.WaitResolved(context.Background()); err != nil {
		return netCampaignStats{}, fmt.Errorf("networked campaign: %w", err)
	}
	// The campaign ends at the merged publish; idle workers still sleeping
	// on a no-grant retry window drain afterwards, off the clock.
	if _, err := srv.MergeAndPublish(); err != nil {
		return netCampaignStats{}, fmt.Errorf("networked publish: %w", err)
	}
	elapsed := time.Since(start)
	wg.Wait()
	for i, werr := range workerErrs {
		if werr != nil {
			return netCampaignStats{}, fmt.Errorf("networked worker %d: %w", i, werr)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return netCampaignStats{}, fmt.Errorf("coordinator shutdown: %w", err)
	}

	identical, err := publishesIdentical(singleOut, netOut)
	if err != nil {
		return netCampaignStats{}, err
	}
	return netCampaignStats{
		workers:       workers,
		elapsed:       elapsed,
		points:        met.Get(engine.CharJobs),
		bytesUploaded: met.Get(engine.NetBytesUploaded),
		requests:      met.Get(engine.NetRequests),
		retries:       met.Get(engine.NetRetries),
		identical:     identical,
	}, nil
}

// publishesIdentical compares two published (library, manifest) pairs byte
// for byte.
func publishesIdentical(a, b string) (bool, error) {
	for _, pair := range [][2]string{
		{a, b},
		{store.ManifestPath(a), store.ManifestPath(b)},
	} {
		ab, err := os.ReadFile(pair[0])
		if err != nil {
			return false, err
		}
		bb, err := os.ReadFile(pair[1])
		if err != nil {
			return false, err
		}
		if !bytes.Equal(ab, bb) {
			return false, nil
		}
	}
	return true, nil
}
