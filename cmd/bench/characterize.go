package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"sstiming/internal/cells"
	"sstiming/internal/charlib"
	"sstiming/internal/device"
	"sstiming/internal/engine"
	"sstiming/internal/shard"
	"sstiming/internal/store"
)

// Characterization is the characterisation wall-clock section (schema v3):
// the same reduced campaign timed twice — once single-process, once through
// the fault-tolerant coordinator/worker path (internal/shard) — with the
// sharded publish required byte-identical to the single-process one. Solver
// points are the simulations charlib issued (charlib/jobs), so points/sec is
// the solver's effective characterisation throughput.
type Characterization struct {
	Cells               int     `json:"cells"`
	GridPoints          int     `json:"grid_points"`
	SolverPoints        int64   `json:"solver_points"`
	SingleProcessMs     float64 `json:"single_process_ms"`
	PointsPerSec        float64 `json:"points_per_sec"`
	Shards              int     `json:"shards"`
	Workers             int     `json:"workers"`
	ShardedMs           float64 `json:"sharded_ms"`
	ShardedPointsPerSec float64 `json:"sharded_points_per_sec"`
	BytesIdentical      bool    `json:"bytes_identical"`
}

// benchCharlib returns the campaign both paths characterise. The smoke
// variant mirrors the shard chaos suite's reduced campaign; the full one
// widens the grid and cell set so the wall-clock is a meaningful trajectory
// point rather than startup noise.
func benchCharlib(jobs int, smoke bool) charlib.Options {
	tech := device.Default05um()
	o := charlib.Options{
		Tech: tech,
		Grid: []float64{0.2e-9, 0.5e-9, 1.0e-9},
		Cells: []cells.Config{
			{Kind: cells.Inv, N: 1, Tech: tech, LoadInverter: true},
			{Kind: cells.NAND, N: 2, Tech: tech, LoadInverter: true},
			{Kind: cells.NOR, N: 2, Tech: tech, LoadInverter: true},
		},
		TStep: 3e-12,
		Jobs:  jobs,
	}
	if !smoke {
		o.Grid = []float64{0.1e-9, 0.2e-9, 0.5e-9, 1.0e-9, 2.0e-9}
		o.Cells = append(o.Cells,
			cells.Config{Kind: cells.NAND, N: 3, Tech: tech, LoadInverter: true},
			cells.Config{Kind: cells.NOR, N: 3, Tech: tech, LoadInverter: true},
		)
	}
	return o
}

// benchCharacterization runs the campaign single-process, then re-runs it
// sharded (one cell per shard, concurrent in-process workers under leases),
// and compares the two publishes byte for byte — the bench both measures the
// sharding overhead and re-proves the byte-identity contract on every
// trajectory point.
func benchCharacterization(jobs int, smoke bool) (Characterization, error) {
	dir, err := os.MkdirTemp("", "sstiming-bench-char-")
	if err != nil {
		return Characterization{}, err
	}
	defer os.RemoveAll(dir)

	o := benchCharlib(jobs, smoke)
	met := engine.NewMetrics()
	o.Metrics = met

	singleOut := filepath.Join(dir, "single.json")
	start := time.Now()
	lib, err := charlib.Characterize(o)
	if err != nil {
		return Characterization{}, fmt.Errorf("single-process characterise: %w", err)
	}
	ro := o.Resolved()
	if _, err := store.WriteLibrary(singleOut, lib, ro.Grid, ro.NCPairs); err != nil {
		return Characterization{}, fmt.Errorf("single-process publish: %w", err)
	}
	single := time.Since(start)
	points := met.Get(engine.CharJobs)

	// Sharded re-run of the identical campaign: one cell per shard so every
	// worker stays busy. Worker-level parallelism replaces charlib's
	// in-process fan-out (Jobs 1 inside each shard).
	workers := 3
	shardOpts := benchCharlib(1, smoke)
	shardedMet := engine.NewMetrics()
	shardedOut := filepath.Join(dir, "sharded.json")
	start = time.Now()
	_, rep, err := shard.Run(shard.Options{
		Charlib:    shardOpts,
		Out:        shardedOut,
		ShardCells: 1,
		Workers:    workers,
		Metrics:    shardedMet,
	})
	if err != nil {
		return Characterization{}, fmt.Errorf("sharded characterise: %w", err)
	}
	sharded := time.Since(start)
	shardedPoints := shardedMet.Get(engine.CharJobs)

	identical, err := publishesIdentical(singleOut, shardedOut)
	if err != nil {
		return Characterization{}, err
	}

	ch := Characterization{
		Cells:           len(ro.Cells),
		GridPoints:      len(ro.Grid),
		SolverPoints:    points,
		SingleProcessMs: float64(single) / float64(time.Millisecond),
		Shards:          rep.Shards,
		Workers:         workers,
		ShardedMs:       float64(sharded) / float64(time.Millisecond),
		BytesIdentical:  identical,
	}
	if s := single.Seconds(); s > 0 {
		ch.PointsPerSec = float64(points) / s
	}
	if s := sharded.Seconds(); s > 0 {
		ch.ShardedPointsPerSec = float64(shardedPoints) / s
	}
	return ch, nil
}

// publishesIdentical compares two published (library, manifest) pairs byte
// for byte.
func publishesIdentical(a, b string) (bool, error) {
	for _, pair := range [][2]string{
		{a, b},
		{store.ManifestPath(a), store.ManifestPath(b)},
	} {
		ab, err := os.ReadFile(pair[0])
		if err != nil {
			return false, err
		}
		bb, err := os.ReadFile(pair[1])
		if err != nil {
			return false, err
		}
		if !bytes.Equal(ab, bb) {
			return false, nil
		}
	}
	return true, nil
}
