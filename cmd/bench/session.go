// Session-recovery benchmark: drives the durable delta-STA session path
// (internal/sessionlog write-ahead journal + snapshot compaction) and
// measures what crash-safety costs and what snapshots buy back —
//
//   - durable-ack latency per delta (journal append + fsync before the
//     HTTP 200) against the same edit script on an in-memory session,
//   - restart replay wall-clock versus edit-script length, with the
//     snapshot compactor disabled (full-log replay: rebuild the graph
//     from the create frame, re-apply every delta) and enabled (restore
//     the last checkpoint, re-apply only the tail),
//
// re-proving on every report that each recovered session answers
// /windows byte-identically to the pre-restart one. Full runs gate the
// longest point (>= 500 deltas) on snapshots recovering at least 5x
// faster than full-log replay — the compactor's reason to exist.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"time"

	"sstiming/internal/core"
	"sstiming/internal/engine"
	"sstiming/internal/netlist"
	"sstiming/internal/service"
)

// SessionRecoveryPoint is one edit-script length measured both ways.
type SessionRecoveryPoint struct {
	Deltas           int     `json:"deltas"`
	FullReplayMs     float64 `json:"full_replay_ms"`
	SnapshotReplayMs float64 `json:"snapshot_replay_ms"`
	Snapshots        int64   `json:"snapshots"`
	Speedup          float64 `json:"speedup"`
	WindowsIdentical bool    `json:"windows_identical"`
}

// SessionBench is the durable-session section of the report.
type SessionBench struct {
	Circuit           string                 `json:"circuit"`
	Gates             int                    `json:"gates"`
	SnapshotEvery     int                    `json:"snapshot_every"`
	LatencyDeltas     int                    `json:"latency_deltas"`
	InMemoryDeltaUs   float64                `json:"in_memory_delta_us"`
	DurableDeltaUs    float64                `json:"durable_delta_us"`
	DurableOverheadUs float64                `json:"durable_overhead_us"`
	Recovery          []SessionRecoveryPoint `json:"recovery"`
}

// genSessionScript builds a seeded, always-valid delta script over the
// circuit: cube assigns and retracts on PIs, PI retimes, and same-arity
// gate swaps (tracked so each swap flips the gate's current kind).
func genSessionScript(rng *rand.Rand, c *netlist.Circuit, lib *core.Library, n int) []service.SessionDeltaRequest {
	vals := []string{"01", "10", "11", "00", "x1", "1x"}
	swappable := swappableGates(c, lib)
	kinds := make(map[int]netlist.GateKind, len(swappable))
	for _, gi := range swappable {
		kinds[gi] = c.Gates[gi].Kind
	}
	kindName := func(k netlist.GateKind) string {
		switch k {
		case netlist.Inv:
			return "not"
		case netlist.Buf:
			return "buff"
		case netlist.Nand:
			return "nand"
		default:
			return "nor"
		}
	}
	var assigned []string
	steps := make([]service.SessionDeltaRequest, 0, n)
	for len(steps) < n {
		var req service.SessionDeltaRequest
		switch r := rng.Intn(10); {
		case r < 4: // cube assign on 1-2 PIs
			req.Assign = map[string]string{}
			for i := 0; i <= rng.Intn(2); i++ {
				pi := c.PIs[rng.Intn(len(c.PIs))]
				if _, ok := req.Assign[pi]; !ok {
					req.Assign[pi] = vals[rng.Intn(len(vals))]
					assigned = append(assigned, pi)
				}
			}
		case r == 4 && len(assigned) > 0: // retract a previously assigned PI
			req.Retract = []string{assigned[rng.Intn(len(assigned))]}
		case r < 8: // PI retime, ordering kept valid by construction
			early := rng.Float64() * 0.2e-9
			req.SetPI = &service.SessionPIJSON{
				Net:          c.PIs[rng.Intn(len(c.PIs))],
				ArrivalEarly: early,
				ArrivalLate:  early + rng.Float64()*0.2e-9,
				TransShort:   0.1e-9 + rng.Float64()*0.1e-9,
				TransLong:    0.2e-9 + rng.Float64()*0.1e-9,
			}
		default: // swap a random swappable gate to its dual
			if len(swappable) == 0 {
				continue
			}
			gi := swappable[rng.Intn(len(swappable))]
			kinds[gi] = dual(kinds[gi])
			req.SwapGate = &service.SessionSwapJSON{
				Net:  c.Gates[gi].Output,
				Kind: kindName(kinds[gi]),
			}
		}
		if req.Assign == nil && req.Retract == nil && req.SetPI == nil && req.SwapGate == nil {
			continue
		}
		steps = append(steps, req)
	}
	return steps
}

// sessionHarness is one booted daemon plus the HTTP plumbing to drive
// its session API.
type sessionHarness struct {
	srv    *service.Server
	hs     *httptest.Server
	met    *engine.Metrics
	client *http.Client
}

func newSessionHarness(lib *core.Library, jobs int, opts service.Options) (*sessionHarness, error) {
	met := engine.NewMetrics()
	opts.Lib = lib
	opts.Workers = jobs
	opts.Metrics = met
	srv, err := service.New(opts)
	if err != nil {
		return nil, err
	}
	return &sessionHarness{
		srv:    srv,
		hs:     httptest.NewServer(srv.Handler()),
		met:    met,
		client: &http.Client{},
	}, nil
}

// close drains the daemon, closing every session journal cleanly; the
// journal directories stay behind as the restart's durable truth.
func (h *sessionHarness) close() {
	h.hs.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	h.srv.Drain(ctx)
	h.client.CloseIdleConnections()
}

func (h *sessionHarness) post(path string, req any, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	r, err := h.client.Post(h.hs.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		return err
	}
	if r.StatusCode != http.StatusOK && r.StatusCode != http.StatusCreated {
		return fmt.Errorf("POST %s answered %d: %s", path, r.StatusCode, raw)
	}
	return json.Unmarshal(raw, resp)
}

func (h *sessionHarness) createSession(c *netlist.Circuit) (string, error) {
	var w bytes.Buffer
	if err := c.Write(&w); err != nil {
		return "", err
	}
	var resp service.SessionCreateResponse
	if err := h.post("/session", service.SessionCreateRequest{Netlist: w.String()}, &resp); err != nil {
		return "", err
	}
	return resp.SessionID, nil
}

// applyScript posts every delta and returns the per-delta wall-clock
// latencies (client-observed, durable-ack included when journaling is on).
func (h *sessionHarness) applyScript(sid string, steps []service.SessionDeltaRequest) ([]time.Duration, error) {
	lat := make([]time.Duration, len(steps))
	for i, step := range steps {
		var resp service.SessionDeltaResponse
		start := time.Now()
		if err := h.post("/session/"+sid+"/delta", step, &resp); err != nil {
			return nil, fmt.Errorf("delta %d: %w", i, err)
		}
		lat[i] = time.Since(start)
	}
	return lat, nil
}

// windowsFingerprint fetches /windows and returns the comparison payload —
// the full response with the volatile request metadata (request id,
// elapsed) zeroed, so recovered sessions are compared on everything a
// client can key on: circuit identity, cube, and every window bit.
func (h *sessionHarness) windowsFingerprint(sid string) (*service.SessionWindowsResponse, error) {
	r, err := h.client.Get(h.hs.URL + "/session/" + sid + "/windows")
	if err != nil {
		return nil, err
	}
	defer r.Body.Close()
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		return nil, err
	}
	if r.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET windows answered %d: %s", r.StatusCode, raw)
	}
	var resp service.SessionWindowsResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, err
	}
	resp.RequestID, resp.ElapsedMs = "", 0
	return &resp, nil
}

func meanUs(lat []time.Duration) float64 {
	if len(lat) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range lat {
		total += d
	}
	return float64(total) / float64(len(lat)) / float64(time.Microsecond)
}

// runSessionRecovery applies the script to a journaled session, shuts the
// daemon down cleanly, then boots a fresh one against the same directory
// and times RecoverSessions — the restart's replay cost. It re-proves the
// recovered session answers /windows identically to the pre-restart one.
func runSessionRecovery(c *netlist.Circuit, lib *core.Library, jobs int,
	steps []service.SessionDeltaRequest, snapshotEvery int) (replayMs float64, snapshots int64, identical bool, err error) {
	dir, err := os.MkdirTemp("", "sstiming-bench-session-")
	if err != nil {
		return 0, 0, false, err
	}
	defer os.RemoveAll(dir)
	opts := service.Options{
		SessionDir:           dir,
		SessionSnapshotEvery: snapshotEvery,
		SessionSnapshotBytes: -1,
	}

	h, err := newSessionHarness(lib, jobs, opts)
	if err != nil {
		return 0, 0, false, err
	}
	sid, err := h.createSession(c)
	if err != nil {
		h.close()
		return 0, 0, false, err
	}
	if _, err := h.applyScript(sid, steps); err != nil {
		h.close()
		return 0, 0, false, err
	}
	ref, err := h.windowsFingerprint(sid)
	if err != nil {
		h.close()
		return 0, 0, false, err
	}
	snapshots = h.met.Get(engine.SvcSessionSnapshots)
	h.close()

	h2, err := newSessionHarness(lib, jobs, opts)
	if err != nil {
		return 0, 0, false, err
	}
	defer h2.close()
	start := time.Now()
	recovered, quarantined, err := h2.srv.RecoverSessions()
	replay := time.Since(start)
	if err != nil {
		return 0, 0, false, err
	}
	if recovered != 1 || quarantined != 0 {
		return 0, 0, false, fmt.Errorf("recovered %d sessions (%d quarantined), want exactly 1", recovered, quarantined)
	}
	got, err := h2.windowsFingerprint(sid)
	if err != nil {
		return 0, 0, false, err
	}
	identical = reflect.DeepEqual(got, ref)
	return float64(replay) / float64(time.Millisecond), snapshots, identical, nil
}

// benchSession measures the durable-session section: per-delta ack latency
// in-memory vs journaled, then restart replay at increasing script lengths
// with and without the snapshot compactor.
func benchSession(lib *core.Library, jobs int, smoke bool) (SessionBench, error) {
	name, snapshotEvery := "c432", 64
	lengths := []int{100, 250, 500}
	if smoke {
		name, snapshotEvery = "c17", 4
		lengths = []int{8}
	}
	c := mustCircuit(name)
	maxLen := lengths[len(lengths)-1]
	steps := genSessionScript(rand.New(rand.NewSource(11)), c, lib, maxLen)

	sb := SessionBench{
		Circuit:       c.Name,
		Gates:         c.NumGates(),
		SnapshotEvery: snapshotEvery,
		LatencyDeltas: maxLen,
	}

	// Durable-ack overhead: the same script on an in-memory session and on
	// a journaled one (compactor off, so the difference is purely the
	// fsynced append in the ack path).
	memLat, err := runSessionLatency(c, lib, jobs, steps, service.Options{})
	if err != nil {
		return SessionBench{}, fmt.Errorf("in-memory latency: %w", err)
	}
	dir, err := os.MkdirTemp("", "sstiming-bench-session-lat-")
	if err != nil {
		return SessionBench{}, err
	}
	durLat, err := runSessionLatency(c, lib, jobs, steps, service.Options{
		SessionDir:           dir,
		SessionSnapshotEvery: -1,
		SessionSnapshotBytes: -1,
	})
	os.RemoveAll(dir)
	if err != nil {
		return SessionBench{}, fmt.Errorf("durable latency: %w", err)
	}
	sb.InMemoryDeltaUs = meanUs(memLat)
	sb.DurableDeltaUs = meanUs(durLat)
	sb.DurableOverheadUs = sb.DurableDeltaUs - sb.InMemoryDeltaUs

	for _, n := range lengths {
		fullMs, _, fullSame, err := runSessionRecovery(c, lib, jobs, steps[:n], -1)
		if err != nil {
			return SessionBench{}, fmt.Errorf("full-replay recovery (%d deltas): %w", n, err)
		}
		snapMs, snaps, snapSame, err := runSessionRecovery(c, lib, jobs, steps[:n], snapshotEvery)
		if err != nil {
			return SessionBench{}, fmt.Errorf("snapshot recovery (%d deltas): %w", n, err)
		}
		pt := SessionRecoveryPoint{
			Deltas:           n,
			FullReplayMs:     fullMs,
			SnapshotReplayMs: snapMs,
			Snapshots:        snaps,
			WindowsIdentical: fullSame && snapSame,
		}
		if snapMs > 0 {
			pt.Speedup = fullMs / snapMs
		}
		sb.Recovery = append(sb.Recovery, pt)
	}
	return sb, nil
}

func runSessionLatency(c *netlist.Circuit, lib *core.Library, jobs int,
	steps []service.SessionDeltaRequest, opts service.Options) ([]time.Duration, error) {
	h, err := newSessionHarness(lib, jobs, opts)
	if err != nil {
		return nil, err
	}
	defer h.close()
	sid, err := h.createSession(c)
	if err != nil {
		return nil, err
	}
	return h.applyScript(sid, steps)
}
