// Service-layer sustained-load benchmark: boots an in-process timingd
// (internal/service) behind httptest, drives it with concurrent HTTP
// clients, and records sustained QPS and tail latency for four scenarios —
// cold cache vs hot cache on the same circuit, and unbatched vs
// micro-batched tiny requests. The hot/cold ratio is the content-addressed
// cache's headline number and is gated (>= 5x) in full runs by validate.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sstiming/internal/core"
	"sstiming/internal/engine"
	"sstiming/internal/netlist"
	"sstiming/internal/service"
)

// ServiceScenario is one sustained load point against an in-process timingd.
type ServiceScenario struct {
	Name       string  `json:"name"`
	Circuit    string  `json:"circuit"`
	Gates      int     `json:"gates"`
	Clients    int     `json:"clients"`
	Requests   int     `json:"requests"`
	DurationMs float64 `json:"duration_ms"`
	QPS        float64 `json:"qps"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
	CacheHits  int64   `json:"cache_hits"`
	Batches    int64   `json:"batches"`
}

// ServiceBench is the daemon throughput section of the report.
type ServiceBench struct {
	Scenarios            []ServiceScenario `json:"scenarios"`
	HotOverCold          float64           `json:"hot_over_cold"`
	BatchedOverUnbatched float64           `json:"batched_over_unbatched"`
}

// runServiceScenario boots a fresh daemon with the given options, posts the
// circuit `requests` times from `clients` concurrent connections (after
// `warmup` untimed requests that heat connections and, when caching is on,
// populate the cache), and returns the measured load point.
func runServiceScenario(name string, c *netlist.Circuit, lib *core.Library,
	opts service.Options, clients, requests, warmup int) (ServiceScenario, error) {
	met := engine.NewMetrics()
	opts.Lib = lib
	opts.Metrics = met
	srv, err := service.New(opts)
	if err != nil {
		return ServiceScenario{}, fmt.Errorf("%s: %w", name, err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Drain(ctx)
	}()

	var w strings.Builder
	if err := c.Write(&w); err != nil {
		return ServiceScenario{}, fmt.Errorf("%s: write %s: %w", name, c.Name, err)
	}
	body, err := json.Marshal(map[string]any{"netlist": w.String()})
	if err != nil {
		return ServiceScenario{}, err
	}

	// The default transport idles only 2 connections per host; sustained
	// many-client load through it measures dialer churn, not the daemon.
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        clients * 2,
		MaxIdleConnsPerHost: clients * 2,
	}}
	defer client.CloseIdleConnections()
	post := func() (time.Duration, error) {
		start := time.Now()
		resp, err := client.Post(hs.URL+"/analyze", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, fmt.Errorf("%s: %w", name, err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("%s: /analyze answered %d", name, resp.StatusCode)
		}
		return time.Since(start), nil
	}
	for i := 0; i < warmup; i++ {
		if _, err := post(); err != nil {
			return ServiceScenario{}, fmt.Errorf("warmup %w", err)
		}
	}

	lat := make([]time.Duration, requests)
	var next atomic.Int64
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	begin := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(requests) {
					return
				}
				d, err := post()
				if err != nil {
					errs <- err
					return
				}
				lat[i] = d
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(begin)
	close(errs)
	if err := <-errs; err != nil {
		return ServiceScenario{}, err
	}

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	pct := func(p float64) time.Duration { return lat[int(p*float64(len(lat)-1))] }
	return ServiceScenario{
		Name:       name,
		Circuit:    c.Name,
		Gates:      c.NumGates(),
		Clients:    clients,
		Requests:   requests,
		DurationMs: ms(elapsed),
		QPS:        float64(requests) / elapsed.Seconds(),
		P50Ms:      ms(pct(0.50)),
		P99Ms:      ms(pct(0.99)),
		CacheHits:  met.Get(engine.CacheHits),
		Batches:    met.Get(engine.SvcBatches),
	}, nil
}

// benchService measures the four daemon scenarios. The cache pair runs a
// mid-size circuit where an engine run costs real milliseconds; the batch
// pair runs a tiny circuit where per-request queue overhead dominates and
// coalescing can pay.
func benchService(lib *core.Library, jobs int, smoke bool) (ServiceBench, error) {
	cacheName, batchName := "c432", "c17"
	clients, coldReqs, hotReqs, batchReqs := 8, 64, 2000, 600
	if smoke {
		cacheName = "c17"
		clients, coldReqs, hotReqs, batchReqs = 4, 8, 32, 24
	}
	cacheCirc, batchCirc := mustCircuit(cacheName), mustCircuit(batchName)

	cold, err := runServiceScenario("cold-cache", cacheCirc, lib,
		service.Options{Workers: jobs}, clients, coldReqs, 1)
	if err != nil {
		return ServiceBench{}, err
	}
	hot, err := runServiceScenario("hot-cache", cacheCirc, lib,
		service.Options{Workers: jobs, CacheEntries: 512, CacheBytes: 64 << 20},
		clients, hotReqs, 1)
	if err != nil {
		return ServiceBench{}, err
	}
	unbatched, err := runServiceScenario("unbatched", batchCirc, lib,
		service.Options{Workers: jobs}, clients, batchReqs, 1)
	if err != nil {
		return ServiceBench{}, err
	}
	batched, err := runServiceScenario("batched", batchCirc, lib,
		service.Options{Workers: jobs, BatchSize: 8, BatchWait: 500 * time.Microsecond},
		clients, batchReqs, 1)
	if err != nil {
		return ServiceBench{}, err
	}

	sb := ServiceBench{Scenarios: []ServiceScenario{cold, hot, unbatched, batched}}
	if cold.QPS > 0 {
		sb.HotOverCold = hot.QPS / cold.QPS
	}
	if unbatched.QPS > 0 {
		sb.BatchedOverUnbatched = batched.QPS / unbatched.QPS
	}
	return sb, nil
}
