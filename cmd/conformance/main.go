// Command conformance runs the randomized differential verification campaign:
// per seed it generates a random circuit and stimulus, cross-checks the
// timing oracles against each other (flattened transistor-level simulation,
// gate-level timing simulation, STA windows, ITR refinement) and verifies the
// structural properties of the delay model itself. Any violation is shrunk to
// a minimal (circuit, vector pair) counterexample. A non-zero exit status
// means the campaign found violations (or could not run).
//
// Usage:
//
//	conformance [-lib lib.json] [-seeds N] [-seed-base B] [-jobs N]
//	            [-checks a,b,...] [-tol spec] [-flat-trials N]
//	            [-max-violations N] [-stats] [-json] [-list]
//	            [-health] [-max-degraded F]
//
// The -health flag prints the library's characterisation health record (per
// cell: attempted, retried and degraded point counts); -max-degraded refuses
// to campaign against a library whose worst cell exceeds the given degraded
// fraction — interpolated characterisation points weaken the oracle the
// campaign trusts.
//
// The -tol flag accepts comma-separated key=seconds pairs, e.g.
// "window=2e-12,flatabs=150e-12"; keys are window, flatabs, flatrel (ratio),
// flatwindow, flatperstage and model.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sstiming/internal/conformance"
	"sstiming/internal/core"
	"sstiming/internal/engine"
	"sstiming/internal/prechar"
	"sstiming/internal/store"
)

func main() {
	libPath := flag.String("lib", "", "characterised library JSON (default: embedded 0.5um library)")
	seeds := flag.Int("seeds", 25, "number of campaign seeds (one random circuit each)")
	seedBase := flag.Int64("seed-base", 1, "first seed of the campaign")
	jobs := flag.Int("jobs", 0, "worker pool width (0 = all CPUs, 1 = serial)")
	checksFlag := flag.String("checks", "", "comma-separated check names to run (default: all; see -list)")
	tolFlag := flag.String("tol", "", "tolerance overrides, e.g. window=2e-12,flatabs=150e-12")
	flatTrials := flag.Int("flat-trials", 0, "transistor-level trials per seed (0 = default 1, negative disables)")
	maxViolations := flag.Int("max-violations", 10, "counterexamples printed in full (0 = all)")
	stats := flag.Bool("stats", false, "print execution statistics to stderr")
	jsonOut := flag.Bool("json", false, "emit the report as JSON on stdout")
	list := flag.Bool("list", false, "list the available checks and exit")
	health := flag.Bool("health", false, "print the library's characterisation health summary to stderr")
	maxDegraded := flag.Float64("max-degraded", 0, "refuse libraries whose worst cell exceeds this degraded fraction (0 = default 0.25, negative forbids)")
	strictLib := flag.Bool("strict-lib", false, "refuse degraded or unverified libraries instead of using analytic fallbacks")
	flag.Parse()

	if *list {
		for _, ck := range conformance.AllChecks() {
			fmt.Printf("%-14s %s\n", ck.Name, ck.Desc)
		}
		return
	}

	var met *engine.Metrics
	if *stats {
		met = engine.NewMetrics()
		defer met.WriteText(os.Stderr)
	}

	lib, err := loadLibrary(*libPath, *strictLib, met)
	if err != nil {
		fail(err)
	}
	if *health {
		if err := lib.WriteHealth(os.Stderr); err != nil {
			fail(err)
		}
	}
	budget := *maxDegraded
	if budget == 0 {
		budget = 0.25
	} else if budget < 0 {
		budget = 0
	}
	if frac := lib.MaxDegradedFrac(); frac > budget {
		fail(fmt.Errorf("library health: worst cell has %.1f%% degraded characterisation points, budget is %.1f%% (see -max-degraded)",
			100*frac, 100*budget))
	}
	tol, err := parseTol(*tolFlag)
	if err != nil {
		fail(err)
	}

	var checks []string
	if *checksFlag != "" {
		checks = strings.Split(*checksFlag, ",")
	}

	rep, err := conformance.Run(conformance.Options{
		Lib:        lib,
		Seeds:      conformance.SeedRange(*seeds, *seedBase),
		Jobs:       *jobs,
		Tol:        tol,
		Checks:     checks,
		FlatTrials: *flatTrials,
		Metrics:    met,
	})
	if err != nil {
		fail(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fail(err)
		}
	} else if err := rep.WriteText(os.Stdout, *maxViolations); err != nil {
		fail(err)
	}
	if !rep.Passed() {
		os.Exit(1)
	}
}

// parseTol decodes the -tol flag's key=value list into a Tolerances value;
// unset keys keep their defaults.
func parseTol(spec string) (conformance.Tolerances, error) {
	var tol conformance.Tolerances
	if spec == "" {
		return tol, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return tol, fmt.Errorf("bad tolerance %q (want key=value)", kv)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return tol, fmt.Errorf("bad tolerance value %q: %v", kv, err)
		}
		switch strings.ToLower(strings.TrimSpace(key)) {
		case "window":
			tol.Window = f
		case "flatabs":
			tol.FlatAbs = f
		case "flatrel":
			tol.FlatRel = f
		case "flatwindow":
			tol.FlatWindow = f
		case "flatperstage":
			tol.FlatPerStage = f
		case "model":
			tol.Model = f
		default:
			return tol, fmt.Errorf("unknown tolerance key %q", key)
		}
	}
	return tol, nil
}

// loadLibrary loads the timing library through the verifying store; see
// cmd/ssta. Strict mode refuses degraded or unverified artefacts — the
// conformance campaign's oracle should normally rest on verified tables.
func loadLibrary(path string, strict bool, met *engine.Metrics) (*core.Library, error) {
	if path == "" {
		return prechar.Library()
	}
	lib, rep, err := store.LoadFile(path, store.LoadOptions{
		Strict:          strict,
		AllowUnverified: !strict,
		Metrics:         met,
	})
	if err != nil {
		return nil, err
	}
	if rep.Unverified {
		fmt.Fprintf(os.Stderr, "conformance: %s has no manifest; loaded unverified (use -strict-lib to refuse)\n", path)
	}
	for _, q := range rep.Quarantined {
		fmt.Fprintf(os.Stderr, "conformance: quarantined %s\n", q)
	}
	return lib, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "conformance:", err)
	os.Exit(1)
}
