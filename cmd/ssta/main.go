// Command ssta runs static timing analysis on a benchmark circuit (or a
// .bench netlist file) under both the pin-to-pin and the proposed
// simultaneous-switching delay models, and reports the per-model min/max
// delays at the primary outputs — the paper's Table 2 experiment for a
// single circuit.
//
// Usage:
//
//	ssta [-lib lib.json] [-bench c880 | -netlist file.bench] [-jobs N] [-stats] [-windows]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sstiming/internal/benchgen"
	"sstiming/internal/core"
	"sstiming/internal/engine"
	"sstiming/internal/netlist"
	"sstiming/internal/prechar"
	"sstiming/internal/sdf"
	"sstiming/internal/sta"
	"sstiming/internal/store"
)

func main() {
	libPath := flag.String("lib", "", "characterised library JSON (default: embedded 0.5um library)")
	strictLib := flag.Bool("strict-lib", false, "refuse degraded or unverified libraries instead of using analytic fallbacks")
	bench := flag.String("bench", "c17", "benchmark name (c17, c432, c880, ...)")
	netFile := flag.String("netlist", "", ".bench netlist file (overrides -bench)")
	jobs := flag.Int("jobs", 0, "worker pool width (0 = all CPUs, 1 = serial)")
	stats := flag.Bool("stats", false, "print execution statistics to stderr")
	windows := flag.Bool("windows", false, "print per-line timing windows")
	sdfOut := flag.String("sdf", "", "write the circuit's pin-to-pin delays to this SDF file")
	flag.Parse()

	var met *engine.Metrics
	if *stats {
		met = engine.NewMetrics()
		defer met.WriteText(os.Stderr)
	}

	lib, err := loadLibrary(*libPath, *strictLib, met)
	if err != nil {
		fail(err)
	}

	var c *netlist.Circuit
	if *netFile != "" {
		f, err := os.Open(*netFile)
		if err != nil {
			fail(err)
		}
		if strings.HasSuffix(*netFile, ".v") {
			c, err = netlist.ParseVerilog(*netFile, f)
		} else {
			c, err = netlist.Parse(*netFile, f)
		}
		f.Close()
		if err != nil {
			fail(err)
		}
	} else {
		c, err = benchgen.Load(*bench)
		if err != nil {
			fail(err)
		}
	}

	st := c.Stats()
	fmt.Printf("circuit %s: %d PIs, %d POs, %d gates, depth %d\n",
		st.Name, st.PIs, st.POs, st.Gates, st.Depth)

	results := map[sta.Mode]*sta.Result{}
	for _, mode := range []sta.Mode{sta.ModePinToPin, sta.ModeProposed} {
		res, err := sta.Analyze(c, sta.Options{Lib: lib, Mode: mode, Jobs: *jobs, Metrics: met})
		if err != nil {
			fail(err)
		}
		results[mode] = res
		fmt.Printf("%-11s min-delay %7.4f ns   max-delay %7.4f ns\n",
			mode, res.MinPOArrival()*1e9, res.MaxPOArrival()*1e9)
	}
	ratio := results[sta.ModePinToPin].MinPOArrival() / results[sta.ModeProposed].MinPOArrival()
	fmt.Printf("min-delay ratio (pin-to-pin / proposed): %.3f\n", ratio)

	if path, err := results[sta.ModeProposed].WorstPath(); err == nil {
		fmt.Printf("critical path: %s\n", sta.FormatPath(path))
	}

	if *sdfOut != "" {
		sf, err := sdf.FromLibrary(c, lib, sdf.Options{})
		if err != nil {
			fail(err)
		}
		out, err := os.Create(*sdfOut)
		if err != nil {
			fail(err)
		}
		if err := sf.Write(out); err != nil {
			out.Close()
			fail(err)
		}
		if err := out.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote pin-to-pin delays to %s (the SDF subset cannot carry the simultaneous-switching surfaces)\n", *sdfOut)
	}

	if *windows {
		res := results[sta.ModeProposed]
		fmt.Println("\nper-line windows (proposed model, ns):")
		for _, net := range c.Nets() {
			lt := res.Lines[net]
			if lt == nil {
				continue
			}
			fmt.Printf("  %-12s rise A[%7.4f %7.4f] T[%7.4f %7.4f]  fall A[%7.4f %7.4f] T[%7.4f %7.4f]\n",
				net,
				lt.Rise.AS*1e9, lt.Rise.AL*1e9, lt.Rise.TS*1e9, lt.Rise.TL*1e9,
				lt.Fall.AS*1e9, lt.Fall.AL*1e9, lt.Fall.TS*1e9, lt.Fall.TL*1e9)
		}
	}
}

// loadLibrary loads the timing library through the verifying store: the
// sidecar manifest is checked, corrupt cells are quarantined onto the
// analytic fallback (reported on stderr), and strict mode refuses any
// degraded or unverified artefact with a typed error.
func loadLibrary(path string, strict bool, met *engine.Metrics) (*core.Library, error) {
	if path == "" {
		return prechar.Library()
	}
	lib, rep, err := store.LoadFile(path, store.LoadOptions{
		Strict:          strict,
		AllowUnverified: !strict,
		Metrics:         met,
	})
	if err != nil {
		return nil, err
	}
	if rep.Unverified {
		fmt.Fprintf(os.Stderr, "ssta: %s has no manifest; loaded unverified (use -strict-lib to refuse)\n", path)
	}
	for _, q := range rep.Quarantined {
		fmt.Fprintf(os.Stderr, "ssta: quarantined %s\n", q)
	}
	return lib, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ssta:", err)
	os.Exit(1)
}
