// Command timingd is the timing-analysis service daemon: it loads a
// characterised cell library once and serves STA, ITR and conformance
// spot-check jobs over HTTP/JSON (see internal/service and DESIGN.md §10).
//
// Usage:
//
//	timingd [-addr :8080] [-lib lib.json] [-strict-lib] [-jobs N]
//	        [-queue-depth N] [-timeout 30s] [-drain 15s] [-max-gates N]
//	        [-cache-entries N] [-cache-bytes N] [-cache-max-entry-bytes N]
//	        [-batch-size N] [-batch-wait D]
//	        [-max-sessions N] [-session-ttl 15m]
//	        [-session-dir DIR] [-session-snapshot-every N]
//	        [-session-snapshot-bytes N] [-stats] [-selfcheck]
//
// Endpoints:
//
//	POST /analyze      run STA on a posted netlist
//	POST /refine       run ITR under a partial two-frame cube
//	POST /conformance  run a randomized differential spot check
//	POST /session      build a persistent timing graph (delta-STA session)
//	POST /session/{id}/delta    apply cube/PI/gate edits incrementally
//	GET  /session/{id}/windows  snapshot the session's current windows
//	DELETE /session/{id}        free the session
//	POST /reload       hot-swap the library (re-verified; old one keeps
//	                   serving on failure, 409 on tech-tag mismatch)
//	GET  /healthz      liveness
//	GET  /readyz       readiness (drain state; breaker state is informational)
//	GET  /metrics      engine counters + per-endpoint latency histograms
//
// A -lib file is loaded through the verifying store (internal/store): its
// sidecar manifest is checked, corrupt or missing cells are quarantined and
// served from the closed-form analytic fallback (counted under
// store/quarantined_cells in /metrics). -strict-lib refuses any degraded or
// unverified library instead. SIGHUP reloads the library in place, with the
// same refusal semantics as POST /reload.
//
// -session-dir makes delta-STA sessions durable: every session keeps a
// write-ahead journal under the directory (fsynced before a delta is
// acknowledged) and is rebuilt byte-identically at the next boot, with
// snapshot compaction every -session-snapshot-every deltas (or
// -session-snapshot-bytes journal bytes) bounding replay time. Journals
// that fail replay are quarantined aside with a reason, never wedging
// startup (DESIGN.md §16). Without -session-dir sessions are in-memory
// only and die with the process.
//
// On SIGTERM/SIGINT the daemon drains gracefully: readiness fails first,
// new jobs are refused, in-flight jobs get -drain to finish, then the
// listener closes.
//
// -selfcheck runs the service smoke test instead of serving: bind a random
// loopback port, POST an example netlist, require a 200 STA response and a
// clean drain, exit 0/1. `make service-smoke` uses it.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sstiming/internal/benchgen"
	"sstiming/internal/core"
	"sstiming/internal/engine"
	"sstiming/internal/prechar"
	"sstiming/internal/service"
	"sstiming/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	libPath := flag.String("lib", "", "characterised library JSON (default: embedded 0.5um library)")
	jobs := flag.Int("jobs", 0, "concurrent jobs (0 = all CPUs)")
	queueDepth := flag.Int("queue-depth", 0, "queued jobs beyond the running ones before shedding (0 = 2x jobs)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline (0 = none)")
	drain := flag.Duration("drain", 15*time.Second, "graceful drain deadline on SIGTERM")
	maxGates := flag.Int("max-gates", 0, "admission cap on posted netlist size (0 = default, -1 = unlimited)")
	cacheEntries := flag.Int("cache-entries", 512, "content-addressed analysis cache entry cap (0 = caching disabled)")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "analysis cache byte budget (0 = no byte bound)")
	cacheMaxEntryBytes := flag.Int64("cache-max-entry-bytes", 4<<20, "per-response cache admission cap: larger responses are served but never cached (0 = no per-entry bound)")
	batchSize := flag.Int("batch-size", 0, "micro-batch occupancy for small /analyze jobs (< 2 = batching disabled)")
	batchWait := flag.Duration("batch-wait", 0, "max time a non-full micro-batch collects (0 = default 2ms)")
	maxSessions := flag.Int("max-sessions", 0, "live delta-STA sessions before LRU eviction (0 = default 64, -1 = unlimited)")
	sessionTTL := flag.Duration("session-ttl", 0, "idle session expiry (0 = default 15m, negative = never)")
	sessionDir := flag.String("session-dir", "", "directory for durable session journals (empty = in-memory sessions)")
	sessionSnapshotEvery := flag.Int("session-snapshot-every", 0, "deltas between snapshot compactions (0 = default 64, negative = never)")
	sessionSnapshotBytes := flag.Int64("session-snapshot-bytes", 0, "journal bytes triggering snapshot compaction (0 = default 1MiB, negative = never)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "solver failures tripping the circuit breaker (0 = default 5, -1 = disabled)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "breaker open duration before a half-open probe (0 = default 10s)")
	strictLib := flag.Bool("strict-lib", false, "refuse degraded or unverified libraries instead of serving analytic fallbacks")
	stats := flag.Bool("stats", false, "dump engine metrics to stderr on exit")
	selfcheck := flag.Bool("selfcheck", false, "run the service smoke test and exit")
	flag.Parse()

	// Metrics exist before the first load so quarantined cells are counted
	// from boot.
	met := engine.NewMetrics()
	loader := libLoader(*libPath, *strictLib, met)
	lib, err := loader()
	if err != nil {
		fail(err)
	}
	srv, err := service.New(service.Options{
		Lib:                  lib,
		LibLoader:            loader,
		Workers:              *jobs,
		QueueDepth:           *queueDepth,
		DefaultTimeout:       *timeout,
		MaxGates:             *maxGates,
		CacheEntries:         *cacheEntries,
		CacheBytes:           *cacheBytes,
		CacheMaxEntryBytes:   *cacheMaxEntryBytes,
		BatchSize:            *batchSize,
		BatchWait:            *batchWait,
		MaxSessions:          *maxSessions,
		SessionIdleTTL:       *sessionTTL,
		SessionDir:           *sessionDir,
		SessionSnapshotEvery: *sessionSnapshotEvery,
		SessionSnapshotBytes: *sessionSnapshotBytes,
		Breaker: service.BreakerConfig{
			Threshold: *breakerThreshold,
			Cooldown:  *breakerCooldown,
		},
		Metrics: met,
	})
	if err != nil {
		fail(err)
	}
	if *stats {
		defer met.WriteText(os.Stderr)
	}

	if *selfcheck {
		if err := smoke(srv, *drain); err != nil {
			fail(fmt.Errorf("selfcheck: %w", err))
		}
		fmt.Println("timingd: selfcheck ok")
		return
	}

	// Recover durable sessions before the listener opens, so a client that
	// reconnects immediately after a crash finds its sessions live again.
	if *sessionDir != "" {
		recovered, quarantined, err := srv.RecoverSessions()
		if err != nil {
			fail(fmt.Errorf("session recovery: %w", err))
		}
		fmt.Printf("timingd: recovered %d durable session(s) from %s (%d quarantined)\n",
			recovered, *sessionDir, quarantined)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Printf("timingd: listening on http://%s (%d cells in library)\n",
		ln.Addr(), len(lib.Cells))

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT, syscall.SIGHUP)
	for {
		select {
		case s := <-sig:
			if s == syscall.SIGHUP {
				// Hot reload: re-verify and swap; on any failure the old
				// library keeps serving.
				if fresh, err := srv.Reload(); err != nil {
					fmt.Fprintf(os.Stderr, "timingd: reload: %v\n", err)
				} else {
					fmt.Fprintf(os.Stderr, "timingd: reloaded library (%d cells, tech %s)\n",
						len(fresh.Cells), fresh.TechName)
				}
				continue
			}
			fmt.Fprintf(os.Stderr, "timingd: %v — draining (deadline %s)\n", s, *drain)
			ctx, cancel := context.WithTimeout(context.Background(), *drain)
			defer cancel()
			// Readiness fails and new jobs are refused first; then wait for
			// in-flight jobs, then for in-flight HTTP exchanges.
			if err := srv.Drain(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "timingd: %v\n", err)
			}
			if err := hs.Shutdown(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "timingd: shutdown: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintln(os.Stderr, "timingd: drained cleanly")
			return
		case err := <-errc:
			fail(err)
		}
	}
}

// smoke is the in-process service smoke test behind -selfcheck: real HTTP
// over loopback, an example netlist, a 200 with sane timing numbers, and a
// clean drain.
func smoke(srv *service.Server, drain time.Duration) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 30 * time.Second}

	// Readiness must hold before traffic.
	if err := expectStatus(client, base+"/readyz", http.StatusOK); err != nil {
		return err
	}

	// POST the example netlist (the paper's c17) for STA.
	var bench bytes.Buffer
	if err := benchgen.C17().Write(&bench); err != nil {
		return err
	}
	body, _ := json.Marshal(map[string]any{"netlist": bench.String(), "format": "bench"})
	resp, err := client.Post(base+"/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/analyze returned %d: %s", resp.StatusCode, raw)
	}
	var ar service.AnalyzeResponse
	if err := json.Unmarshal(raw, &ar); err != nil {
		return fmt.Errorf("/analyze response is not valid JSON: %w", err)
	}
	if ar.Circuit.Gates == 0 || ar.MaxPOArrival <= 0 || ar.MinPOArrival > ar.MaxPOArrival {
		return fmt.Errorf("/analyze response is not sane: %s", raw)
	}
	fmt.Printf("timingd: /analyze %s: min %.4g s, max %.4g s (request %s)\n",
		ar.Circuit.Name, ar.MinPOArrival, ar.MaxPOArrival, ar.RequestID)

	// Clean drain: readiness fails, in-flight work finishes, listener closes.
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		return err
	}
	if err := expectStatus(client, base+"/readyz", http.StatusServiceUnavailable); err != nil {
		return fmt.Errorf("readiness did not fail after drain: %w", err)
	}
	return hs.Shutdown(ctx)
}

func expectStatus(client *http.Client, url string, want int) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != want {
		return fmt.Errorf("GET %s returned %d (want %d): %s", url, resp.StatusCode, want, raw)
	}
	return nil
}

// libLoader builds the verifying library loader used at boot and on every
// reload. An empty path serves the embedded pre-characterised library
// (already manifest-verified by internal/prechar); a file is loaded through
// the store, quarantining corrupt cells onto the analytic fallback unless
// strict mode refuses degraded libraries outright.
func libLoader(path string, strict bool, met *engine.Metrics) func() (*core.Library, error) {
	return func() (*core.Library, error) {
		if path == "" {
			return prechar.Library()
		}
		lib, rep, err := store.LoadFile(path, store.LoadOptions{
			Strict:          strict,
			AllowUnverified: !strict,
			Metrics:         met,
		})
		if err != nil {
			return nil, err
		}
		if rep.Unverified {
			fmt.Fprintf(os.Stderr, "timingd: %s has no manifest; serving unverified (use -strict-lib to refuse)\n", path)
		}
		for _, q := range rep.Quarantined {
			fmt.Fprintf(os.Stderr, "timingd: quarantined %s\n", q)
		}
		return lib, nil
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "timingd:", err)
	os.Exit(1)
}
