# Standard entry points for the sstiming reproduction. Everything is
# stdlib-only Go; no generated files, no external tools.

GO ?= go

.PHONY: build test race vet verify bench bench-parallel clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Tier-1 verification loop (see ROADMAP.md).
verify: build vet test race

# Regenerate every table & figure of the paper (slow).
bench:
	$(GO) test -bench=. -benchmem ./...

# Engine scaling: characterisation wall-clock vs worker count.
bench-parallel:
	$(GO) test -run '^$$' -bench=CharacterizeParallel -benchtime=3x .

clean:
	$(GO) clean ./...
