# Standard entry points for the sstiming reproduction. Everything is
# stdlib-only Go; no generated files, no external tools.

GO ?= go

# Total-coverage floor for `make cover`, in percent. Raise it when coverage
# genuinely improves; never lower it to make a PR pass.
COVER_FLOOR ?= 75.0

.PHONY: build test race vet verify conformance cache-conformance chaos store-chaos session-chaos shard-chaos net-chaos service-smoke cover bench bench-smoke bench-go bench-parallel clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Tier-1 verification loop (see ROADMAP.md). Runs every stage through a
# timing wrapper and prints a per-stage wall-clock summary at the end, so
# a slow stage is visible instead of buried in test output.
VERIFY_STAGES := build vet test race conformance cache-conformance chaos \
	store-chaos session-chaos shard-chaos net-chaos service-smoke

verify:
	@set -e; times=""; total_start=$$(date +%s); \
	for stage in $(VERIFY_STAGES); do \
		start=$$(date +%s); \
		$(MAKE) --no-print-directory $$stage; \
		times="$$times $$stage:$$(( $$(date +%s) - start ))"; \
	done; \
	echo ""; echo "verify stage wall-clock:"; \
	for t in $$times; do \
		printf '  %-20s %4ss\n' "$${t%%:*}" "$${t##*:}"; \
	done; \
	printf '  %-20s %4ss\n' total $$(( $$(date +%s) - total_start ))

# Short randomized differential campaign: cross-checks flatsim, logicsim,
# STA, ITR and the delay-model structure against each other on random
# circuits (see internal/conformance and DESIGN.md "Verification strategy").
conformance:
	$(GO) test -run TestConformance -race ./internal/conformance
	$(GO) run ./cmd/conformance -seeds 8 -jobs 4

# Cache-equivalence campaign: random circuits POSTed twice to /analyze and
# /refine (the repeat with shuffled gate statements); every repeat must be a
# cache hit with a body byte-identical to the cold run, and a concurrent
# identical burst must share exactly one engine run (see internal/reqcache
# and DESIGN.md §13). Runs under the race detector: the cache and batcher
# fan out on the shared engine pool.
cache-conformance:
	$(GO) test -race -run 'TestCacheEquivalenceTable|TestCacheConformance|TestSingleflight|TestCancelledLeader|TestAlias|TestBatchedEqualsUnbatched' \
		./internal/service ./internal/reqcache

# Fault-injection suite: deterministic chaos tests that force solver
# non-convergence, NaN poisoning and worker panics, then assert the
# recovery ladder, graceful degradation and error taxonomy hold — under
# the race detector, since recovery paths run on the parallel engine pool
# (see DESIGN.md "Robustness & failure handling").
chaos:
	$(GO) test -race -run 'Chaos' ./internal/spice ./internal/charlib \
		./internal/conformance ./internal/faultinject ./internal/engine \
		./internal/tgraph ./internal/service ./internal/shard

# Store crash-safety suite: kill a characterisation campaign mid-cell
# (deterministically, inside its own checkpoint), tear the journal tail,
# resume, and require the published library + manifest byte-identical to an
# uninterrupted run (see internal/store and DESIGN.md "Durable artifacts").
store-chaos:
	$(GO) test -race -run 'Chaos' ./internal/store

# Session crash-recovery chaos suite: durable delta-STA sessions killed
# deterministically mid-delta, mid-snapshot and mid-compaction (via
# internal/faultinject), restarted, and required to come back byte-identical
# to an uninterrupted run; journals that cannot replay must quarantine with
# a reasoned 404 instead of wedging startup (see internal/sessionlog and
# DESIGN.md §16).
session-chaos:
	$(GO) test -race -run 'TestSessionChaos|TestSessionRecover|TestSessionEviction' ./internal/service
	$(GO) test -race ./internal/sessionlog

# Sharded-campaign chaos suite: real coordinator/worker campaigns with
# seeded worker kills, hangs and artefact corruption mid-run — every one
# must converge to a publish byte-identical to an uninterrupted
# single-process run, and a persistently-failing shard must quarantine
# (degrade) instead of wedging the campaign (see internal/shard and
# DESIGN.md §14).
shard-chaos:
	$(GO) test -race -run 'TestShardChaos' ./internal/shard

# Networked-campaign chaos suite: a real HTTP coordinator and remote
# workers over loopback sockets with seeded network faults injected into
# the workers' transports — dropped requests and acknowledgements, delays,
# genuinely duplicated deliveries, truncated and corrupted response bodies,
# a partition window, vanished workers and a coordinator restart
# mid-campaign — every scenario must publish a library byte-identical to
# the single-process run (see internal/shardnet and DESIGN.md §15). All
# suites honour CHAOS_SEED=<n> to replay a specific schedule; failures
# print the seed.
net-chaos:
	$(GO) test -race -run 'TestNetChaos' ./internal/shardnet

# Service smoke test: start the timingd daemon on a random loopback port,
# POST an example netlist, require a 200 STA response and a clean graceful
# drain (see cmd/timingd -selfcheck and DESIGN.md "Serving architecture").
service-smoke:
	$(GO) run ./cmd/timingd -selfcheck

# Coverage gate: emits coverage.out and fails if the total drops below
# COVER_FLOOR.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	@$(GO) tool cover -func=coverage.out | awk -v floor=$(COVER_FLOOR) \
		'/^total:/ { sub(/%/, "", $$3); \
		  if ($$3 + 0 < floor + 0) { \
		    printf "FAIL: total coverage %.1f%% is below the %.1f%% floor\n", $$3, floor; exit 1 } \
		  printf "total coverage %.1f%% (floor %.1f%%)\n", $$3, floor }'

# Performance trajectory point (ROADMAP item 5b): full-STA throughput,
# incremental edit latency vs. cone size, ITR-in-ATPG wall-clock, the
# service sustained-QPS section (cold vs hot cache, batched vs unbatched),
# the characterisation section (single-process vs in-process sharded
# vs networked campaign over loopback HTTP — wall-clocks, bytes uploaded,
# retries observed, byte-identity re-proved for both) and the durable-
# session section (journaled delta ack overhead, restart replay vs script
# length with/without snapshots), with machine/commit metadata,
# schema-validated into BENCH_5.json.
bench:
	$(GO) run ./cmd/bench -out BENCH_5.json

# Harness-rot guard: the same harness on tiny circuits, schema-validated
# and discarded. Seconds-scale; safe for CI.
bench-smoke:
	$(GO) run ./cmd/bench -smoke

# The raw go test micro-benchmarks (slow).
bench-go:
	$(GO) test -bench=. -benchmem ./...

# Engine scaling: characterisation wall-clock vs worker count.
bench-parallel:
	$(GO) test -run '^$$' -bench=CharacterizeParallel -benchtime=3x .

clean:
	$(GO) clean ./...
