package waveform

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAtInterpolation(t *testing.T) {
	var w Waveform
	w.Append(0, 0)
	w.Append(1, 2)
	w.Append(3, 2)
	w.Append(4, 0)

	cases := []struct{ t, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 1}, {1, 2}, {2, 2}, {3.5, 1}, {4, 0}, {9, 0},
	}
	for _, c := range cases {
		if got := w.At(c.t); !almostEq(got, c.want, 1e-12) {
			t.Errorf("At(%g) = %g, want %g", c.t, got, c.want)
		}
	}
}

func TestFirstLastCross(t *testing.T) {
	var w Waveform
	// A pulse: rise at ~1, fall at ~3.
	w.Append(0, 0)
	w.Append(1, 0)
	w.Append(2, 1)
	w.Append(3, 1)
	w.Append(4, 0)

	tr, ok := w.FirstCross(0.5, true, 0)
	if !ok || !almostEq(tr, 1.5, 1e-12) {
		t.Errorf("FirstCross rising = %v,%v want 1.5,true", tr, ok)
	}
	tf, ok := w.LastCross(0.5, false)
	if !ok || !almostEq(tf, 3.5, 1e-12) {
		t.Errorf("LastCross falling = %v,%v want 3.5,true", tf, ok)
	}
	if _, ok := w.FirstCross(0.5, true, 2.0); ok {
		t.Errorf("FirstCross rising after t=2 should not exist")
	}
}

func TestMeasureTransitionRising(t *testing.T) {
	const vdd = 3.3
	var w Waveform
	// Linear ramp 0 -> vdd between t=10 and t=20.
	w.Append(0, 0)
	w.Append(10, 0)
	w.Append(20, vdd)
	w.Append(30, vdd)

	tr, err := w.MeasureTransition(vdd, true)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(tr.Arrival, 15, 1e-9) {
		t.Errorf("arrival = %g, want 15", tr.Arrival)
	}
	// 10%-90% of a 10-unit full ramp is 8 units.
	if !almostEq(tr.TransTime, 8, 1e-9) {
		t.Errorf("transTime = %g, want 8", tr.TransTime)
	}
}

func TestMeasureTransitionFalling(t *testing.T) {
	const vdd = 3.3
	var w Waveform
	w.Append(0, vdd)
	w.Append(5, vdd)
	w.Append(25, 0)
	w.Append(40, 0)

	tr, err := w.MeasureTransition(vdd, false)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(tr.Arrival, 15, 1e-9) {
		t.Errorf("arrival = %g, want 15", tr.Arrival)
	}
	if !almostEq(tr.TransTime, 16, 1e-9) {
		t.Errorf("transTime = %g, want 16", tr.TransTime)
	}
}

func TestMeasureTransitionMissing(t *testing.T) {
	const vdd = 3.3
	var w Waveform
	w.Append(0, 0)
	w.Append(10, 0)
	if _, err := w.MeasureTransition(vdd, true); err == nil {
		t.Error("expected error for waveform with no transition")
	}
}

func TestRampProperties(t *testing.T) {
	// Property: the Ramp stimulus crosses 50% at its arrival time and its
	// 10%-90% time equals the requested transition time.
	f := func(arrRaw, trRaw uint16) bool {
		arrival := 1e-9 + float64(arrRaw)*1e-13
		trans := 1e-11 + float64(trRaw)*1e-13
		r := Ramp(0, 3.3, arrival, trans)
		if !almostEq(r(arrival), 3.3/2, 1e-9) {
			return false
		}
		full := trans / 0.8
		start := arrival - full/2
		// 10% point and 90% point.
		t10 := start + 0.1*full
		t90 := start + 0.9*full
		return almostEq(r(t10), 0.33, 1e-9) && almostEq(r(t90), 2.97, 1e-9) && almostEq(t90-t10, trans, 1e-15)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRampMonotone(t *testing.T) {
	r := Ramp(3.3, 0, 1e-9, 0.4e-9)
	prev := math.Inf(1)
	for i := 0; i <= 100; i++ {
		v := r(float64(i) * 3e-11)
		if v > prev+1e-12 {
			t.Fatalf("falling ramp not monotone at step %d", i)
		}
		prev = v
	}
	if r(0) != 3.3 || r(1e-8) != 0 {
		t.Errorf("falling ramp endpoints wrong: %g, %g", r(0), r(1e-8))
	}
}
