// Package waveform provides sampled voltage waveforms and the timing
// measurements used throughout the reproduction: arrival times (50% Vdd
// crossings) and transition times (10%-90% Vdd), following the definitions
// in Section 3 of the DAC 2001 paper.
package waveform

import (
	"fmt"
	"math"
)

// Waveform is a piecewise-linear sampled waveform. Times must be appended in
// strictly increasing order.
type Waveform struct {
	T []float64
	V []float64
}

// Append adds one sample. Samples must arrive in increasing time order.
func (w *Waveform) Append(t, v float64) {
	w.T = append(w.T, t)
	w.V = append(w.V, v)
}

// Len returns the number of samples.
func (w *Waveform) Len() int { return len(w.T) }

// At returns the linearly interpolated value at time t, clamping to the end
// samples outside the recorded range.
func (w *Waveform) At(t float64) float64 {
	n := len(w.T)
	if n == 0 {
		return 0
	}
	if t <= w.T[0] {
		return w.V[0]
	}
	if t >= w.T[n-1] {
		return w.V[n-1]
	}
	// Binary search for the bracketing interval.
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if w.T[mid] <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	t0, t1 := w.T[lo], w.T[hi]
	v0, v1 := w.V[lo], w.V[hi]
	if t1 == t0 {
		return v0
	}
	return v0 + (v1-v0)*(t-t0)/(t1-t0)
}

// Final returns the last sampled value.
func (w *Waveform) Final() float64 {
	if len(w.V) == 0 {
		return 0
	}
	return w.V[len(w.V)-1]
}

// crossing finds threshold crossings by linear interpolation.
// rising selects upward crossings (V passes level from below).
func (w *Waveform) crossings(level float64, rising bool) []float64 {
	var out []float64
	for i := 1; i < len(w.T); i++ {
		v0, v1 := w.V[i-1], w.V[i]
		var hit bool
		if rising {
			hit = v0 < level && v1 >= level
		} else {
			hit = v0 > level && v1 <= level
		}
		if hit {
			t0, t1 := w.T[i-1], w.T[i]
			frac := (level - v0) / (v1 - v0)
			out = append(out, t0+frac*(t1-t0))
		}
	}
	return out
}

// FirstCross returns the first crossing of level in the given direction at or
// after time t0.
func (w *Waveform) FirstCross(level float64, rising bool, t0 float64) (float64, bool) {
	for _, t := range w.crossings(level, rising) {
		if t >= t0 {
			return t, true
		}
	}
	return 0, false
}

// LastCross returns the final crossing of level in the given direction.
func (w *Waveform) LastCross(level float64, rising bool) (float64, bool) {
	cs := w.crossings(level, rising)
	if len(cs) == 0 {
		return 0, false
	}
	return cs[len(cs)-1], true
}

// Transition describes a measured single transition on a waveform.
type Transition struct {
	// Rising is true for a rising transition.
	Rising bool
	// Arrival is the 50% Vdd crossing time.
	Arrival float64
	// TransTime is the 10%-90% Vdd transition time.
	TransTime float64
}

// MeasureTransition extracts the last full transition in the given direction
// from the waveform, using the paper's thresholds: the arrival time is the
// 0.5*Vdd crossing and the transition time spans 0.1*Vdd to 0.9*Vdd.
func (w *Waveform) MeasureTransition(vdd float64, rising bool) (Transition, error) {
	arr, ok := w.LastCross(0.5*vdd, rising)
	if !ok {
		dir := "rising"
		if !rising {
			dir = "falling"
		}
		return Transition{}, fmt.Errorf("waveform: no %s 50%% crossing found", dir)
	}
	lowLevel, highLevel := 0.1*vdd, 0.9*vdd
	var tStart, tEnd float64
	if rising {
		// The 10% crossing immediately preceding the arrival and the
		// 90% crossing following it.
		tStart = w.lastCrossBefore(lowLevel, true, arr)
		tEnd = w.firstCrossAfter(highLevel, true, arr)
	} else {
		tStart = w.lastCrossBefore(highLevel, false, arr)
		tEnd = w.firstCrossAfter(lowLevel, false, arr)
	}
	if math.IsNaN(tStart) || math.IsNaN(tEnd) {
		return Transition{}, fmt.Errorf("waveform: transition around t=%g does not span 10%%-90%%", arr)
	}
	return Transition{Rising: rising, Arrival: arr, TransTime: tEnd - tStart}, nil
}

func (w *Waveform) lastCrossBefore(level float64, rising bool, t float64) float64 {
	cs := w.crossings(level, rising)
	res := math.NaN()
	for _, c := range cs {
		if c <= t {
			res = c
		}
	}
	return res
}

func (w *Waveform) firstCrossAfter(level float64, rising bool, t float64) float64 {
	for _, c := range w.crossings(level, rising) {
		if c >= t {
			return c
		}
	}
	return math.NaN()
}

// Ramp returns a saturated-ramp stimulus function running from v0 to v1 with
// the 50% point at arrival and a 10%-90% transition time of transTime.
// For a linear ramp the full 0%-100% sweep lasts transTime/0.8 and is centred
// on the arrival time.
func Ramp(v0, v1, arrival, transTime float64) func(t float64) float64 {
	full := transTime / 0.8
	start := arrival - full/2
	return func(t float64) float64 {
		switch {
		case t <= start:
			return v0
		case t >= start+full:
			return v1
		default:
			return v0 + (v1-v0)*(t-start)/full
		}
	}
}

// Step returns a constant function (a "steady" input).
func Step(v float64) func(t float64) float64 {
	return func(float64) float64 { return v }
}
