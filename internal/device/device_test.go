package device

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultTechSanity(t *testing.T) {
	tech := Default05um()
	if tech.Vdd != 3.3 {
		t.Errorf("Vdd = %g, want 3.3", tech.Vdd)
	}
	if tech.NMOS.VT0 <= 0 || tech.PMOS.VT0 >= 0 {
		t.Error("threshold signs wrong")
	}
	if tech.NMOS.KP <= tech.PMOS.KP {
		t.Error("NMOS transconductance should exceed PMOS (mobility ratio)")
	}
	if tech.Lmin <= 0 || tech.WminN <= 0 || tech.WminP <= tech.WminN {
		t.Errorf("geometry defaults implausible: L=%g Wn=%g Wp=%g", tech.Lmin, tech.WminN, tech.WminP)
	}
}

func TestMOSTypeString(t *testing.T) {
	if NMOS.String() != "nmos" || PMOS.String() != "pmos" {
		t.Error("type strings wrong")
	}
	if MOSType(9).String() == "" {
		t.Error("unknown type should still stringify")
	}
}

func TestParamsAndMinGeom(t *testing.T) {
	tech := Default05um()
	if tech.Params(NMOS) != &tech.NMOS || tech.Params(PMOS) != &tech.PMOS {
		t.Error("Params returns wrong set")
	}
	gn := tech.MinGeom(NMOS)
	gp := tech.MinGeom(PMOS)
	if gn.W != tech.WminN || gp.W != tech.WminP || gn.L != tech.Lmin {
		t.Error("MinGeom wrong")
	}
}

func TestCutoffCurrentNegligible(t *testing.T) {
	tech := Default05um()
	g := tech.MinGeom(NMOS)
	ids, gm, _ := tech.NMOS.Ids(g, 0.0, 3.3)
	if math.Abs(ids) > 1e-9 {
		t.Errorf("cutoff current %g too large", ids)
	}
	if gm != 0 {
		t.Errorf("cutoff gm = %g, want 0", gm)
	}
}

func TestSaturationVsTriodeBoundaryContinuity(t *testing.T) {
	// The current must be continuous at vds = vov.
	tech := Default05um()
	g := tech.MinGeom(NMOS)
	const vgs = 2.0
	vov := vgs - tech.NMOS.VT0
	below, _, _ := tech.NMOS.Ids(g, vgs, vov-1e-9)
	above, _, _ := tech.NMOS.Ids(g, vgs, vov+1e-9)
	if math.Abs(below-above) > 1e-9*math.Abs(above)+1e-15 {
		t.Errorf("current discontinuous at saturation boundary: %g vs %g", below, above)
	}
}

func TestPMOSConductsWhenGateLow(t *testing.T) {
	tech := Default05um()
	g := tech.MinGeom(PMOS)
	// Source at Vdd, gate at 0, drain at Vdd/2: vgs = -3.3, vds = -1.65.
	ids, _, _ := tech.PMOS.Ids(g, -3.3, -1.65)
	if ids >= 0 {
		t.Errorf("PMOS current %g, want negative (source to drain)", ids)
	}
	// Gate at Vdd: off.
	off, _, _ := tech.PMOS.Ids(g, 0, -1.65)
	if math.Abs(off) > 1e-9 {
		t.Errorf("PMOS off current %g too large", off)
	}
}

func TestCurrentMonotoneInVgsProperty(t *testing.T) {
	tech := Default05um()
	g := tech.MinGeom(NMOS)
	f := func(a, b uint8) bool {
		v1 := float64(a) / 255 * 3.3
		v2 := float64(b) / 255 * 3.3
		if v1 > v2 {
			v1, v2 = v2, v1
		}
		i1, _, _ := tech.NMOS.Ids(g, v1, 2.0)
		i2, _, _ := tech.NMOS.Ids(g, v2, 2.0)
		return i2 >= i1-1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCapacitances(t *testing.T) {
	tech := Default05um()
	g := tech.MinGeom(NMOS)
	if tech.NMOS.GateCap(g) <= 0 || tech.NMOS.DiffCap(g) <= 0 || tech.NMOS.OverlapCap(g) <= 0 {
		t.Error("capacitances must be positive")
	}
	// Gate cap grows with area.
	big := Geometry{W: 2 * g.W, L: g.L}
	if tech.NMOS.GateCap(big) <= tech.NMOS.GateCap(g) {
		t.Error("gate cap should grow with width")
	}
	if c := tech.InverterInputCap(); c < 1e-15 || c > 1e-13 {
		t.Errorf("inverter input cap %g outside femtofarad range", c)
	}
}
