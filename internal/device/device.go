// Package device defines the MOSFET device models and process technology
// parameters used by the transistor-level simulator (package spice).
//
// The model is a long-channel square-law ("SPICE LEVEL 1/3 flavour") MOSFET
// with channel-length modulation and lumped parasitic capacitances. It is
// deliberately simple: the DAC 2001 paper uses HSPICE only as an empirical
// data source for curve fitting and as the accuracy reference, and every
// phenomenon the paper's delay model captures (parallel charge-path speed-up,
// position-dependent stack delay, bi-tonic pin-to-pin delay versus input
// transition time) is reproduced by a square-law device. The default
// technology is calibrated to 0.5 um-era numbers, matching the paper's setup.
package device

import "fmt"

// MOSType distinguishes n-channel from p-channel devices.
type MOSType int

const (
	// NMOS is an n-channel MOSFET.
	NMOS MOSType = iota
	// PMOS is a p-channel MOSFET.
	PMOS
)

// String returns "nmos" or "pmos".
func (t MOSType) String() string {
	switch t {
	case NMOS:
		return "nmos"
	case PMOS:
		return "pmos"
	default:
		return fmt.Sprintf("MOSType(%d)", int(t))
	}
}

// MOSParams holds the per-type process parameters of the square-law model.
// All values are in SI units (volts, A/V^2, F/m, F/m^2).
type MOSParams struct {
	Type MOSType
	// VT0 is the zero-bias threshold voltage. Positive for NMOS,
	// negative for PMOS.
	VT0 float64
	// KP is the process transconductance (mobility times oxide
	// capacitance), in A/V^2.
	KP float64
	// Lambda is the channel-length modulation coefficient, in 1/V.
	Lambda float64
	// CoxArea is the gate-oxide capacitance per unit area, in F/m^2.
	CoxArea float64
	// CjPerW is the junction (drain/source diffusion) capacitance per
	// unit transistor width, in F/m.
	CjPerW float64
	// CovPerW is the gate-drain/gate-source overlap capacitance per unit
	// width, in F/m. The gate-drain component is the Miller coupler.
	CovPerW float64
}

// Geometry is the width and length of one transistor, in metres.
type Geometry struct {
	W float64
	L float64
}

// Ids computes the drain current of a MOSFET and its partial derivatives
// with respect to the terminal voltages, in the device's local convention:
// for NMOS, vgs and vds are the usual gate-source and drain-source voltages
// and the returned current flows from drain to source; for PMOS the caller
// must pass vgs = Vg-Vs and vds = Vd-Vs as-is (both negative in normal
// operation) and the returned current is negative (flows source to drain).
//
// The returned derivatives are gm = dI/dVgs and gds = dI/dVds.
func (p *MOSParams) Ids(g Geometry, vgs, vds float64) (ids, gm, gds float64) {
	sign := 1.0
	if p.Type == PMOS {
		// Analyse the PMOS as a mirrored NMOS with all voltages and
		// currents negated.
		sign = -1.0
		vgs, vds = -vgs, -vds
	}
	vt := p.VT0
	if p.Type == PMOS {
		vt = -p.VT0 // p.VT0 is negative; mirrored threshold is positive
	}

	// The mirrored device now behaves like an NMOS with threshold vt.
	// Handle vds < 0 by exchanging drain and source (symmetric device).
	swapped := false
	if vds < 0 {
		swapped = true
		vgs -= vds // vgd of the original becomes vgs of the swapped device
		vds = -vds
	}

	beta := p.KP * g.W / g.L
	vov := vgs - vt
	switch {
	case vov <= 0:
		// Cut-off. A tiny conductance keeps the Newton matrix
		// well-conditioned without influencing the waveform.
		const gleak = 1e-12
		ids = gleak * vds
		gm = 0
		gds = gleak
	case vds < vov:
		// Triode region.
		clm := 1 + p.Lambda*vds
		ids = beta * (vov*vds - 0.5*vds*vds) * clm
		gm = beta * vds * clm
		gds = beta*(vov-vds)*clm + beta*(vov*vds-0.5*vds*vds)*p.Lambda
	default:
		// Saturation.
		clm := 1 + p.Lambda*vds
		ids = 0.5 * beta * vov * vov * clm
		gm = beta * vov * clm
		gds = 0.5 * beta * vov * vov * p.Lambda
	}

	if swapped {
		// Undo the drain/source exchange: current reverses, and the
		// roles of the controlling voltages change.
		//   I(vgs, vds) = -I'(vgs - vds, -vds)
		// dI/dvgs = -gm'
		// dI/dvds = gm' + gds'
		ids = -ids
		gm, gds = -gm, gm+gds
	}

	ids *= sign
	// Derivatives: with the PMOS mirroring, dI/dVgs = d(-I')/d(-vgs') = gm'.
	// Both gm and gds are invariant under the double negation.
	return ids, gm, gds
}

// GateCap returns the total lumped gate capacitance of a device: the channel
// (area) capacitance plus both overlap capacitances.
func (p *MOSParams) GateCap(g Geometry) float64 {
	return p.CoxArea*g.W*g.L + 2*p.CovPerW*g.W
}

// DiffCap returns the lumped diffusion capacitance attached to one
// source/drain terminal.
func (p *MOSParams) DiffCap(g Geometry) float64 {
	return p.CjPerW * g.W
}

// OverlapCap returns the gate-to-drain (or gate-to-source) overlap
// capacitance, the principal Miller coupling element.
func (p *MOSParams) OverlapCap(g Geometry) float64 {
	return p.CovPerW * g.W
}

// Tech bundles a full process technology: supply, both device types, and the
// reference geometries used for "minimum-size" cells.
type Tech struct {
	Name string
	// Vdd is the supply voltage.
	Vdd float64
	// NMOS and PMOS are the two device parameter sets.
	NMOS MOSParams
	PMOS MOSParams
	// Lmin is the minimum channel length.
	Lmin float64
	// WminN and WminP are the minimum-size widths used for library cells
	// (the PMOS is widened to roughly balance mobilities).
	WminN float64
	WminP float64
}

// Default05um returns the default 0.5 um technology used throughout the
// reproduction. Values are representative of a 1990s 0.5 um CMOS process:
// Vdd 3.3 V, tox ~ 10 nm, Vtn 0.7 V, Vtp -0.9 V.
func Default05um() *Tech {
	const (
		coxArea = 3.45e-3 // F/m^2 (tox ~= 10 nm)
		cjPerW  = 2.0e-9  // F/m of width (~2 fF/um, area + perimeter)
		covPerW = 0.3e-9  // F/m of width (~0.3 fF/um)
	)
	return &Tech{
		Name: "generic-0.5um",
		Vdd:  3.3,
		NMOS: MOSParams{
			Type:    NMOS,
			VT0:     0.70,
			KP:      110e-6,
			Lambda:  0.04,
			CoxArea: coxArea,
			CjPerW:  cjPerW,
			CovPerW: covPerW,
		},
		PMOS: MOSParams{
			Type:    PMOS,
			VT0:     -0.90,
			KP:      38e-6,
			Lambda:  0.05,
			CoxArea: coxArea,
			CjPerW:  cjPerW,
			CovPerW: covPerW,
		},
		Lmin:  0.5e-6,
		WminN: 1.5e-6,
		WminP: 3.0e-6,
	}
}

// Params returns the parameter set for the requested device type.
func (t *Tech) Params(typ MOSType) *MOSParams {
	if typ == NMOS {
		return &t.NMOS
	}
	return &t.PMOS
}

// MinGeom returns the minimum-size geometry for the given device type.
func (t *Tech) MinGeom(typ MOSType) Geometry {
	if typ == NMOS {
		return Geometry{W: t.WminN, L: t.Lmin}
	}
	return Geometry{W: t.WminP, L: t.Lmin}
}

// InverterInputCap returns the gate capacitance presented by a minimum-size
// inverter, the standard load used in the paper's experiments ("each gate
// drives a minimum-size inverter as a load").
func (t *Tech) InverterInputCap() float64 {
	return t.NMOS.GateCap(t.MinGeom(NMOS)) + t.PMOS.GateCap(t.MinGeom(PMOS))
}
