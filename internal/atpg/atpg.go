// Package atpg implements the timing-based ATPG framework of the paper's
// Section 7, targeting crosstalk delay faults.
//
// A crosstalk fault site couples an aggressor line to a victim line: the
// fault is excited when both lines carry transitions of the specified
// directions whose arrival times align within a coupling window (the
// "relative arrival time constraints" of Figure 13). A test must excite the
// fault and propagate the victim's (delayed) transition to a primary output.
//
// The generator contains the four components the paper prescribes:
//
//  1. a delay model able to deal with min-max ranges (package core via
//     packages sta/itr, with worst-case corner identification);
//  2. fault excitation conditions at the site and propagation conditions;
//  3. a PODEM-style search engine that implicitly enumerates the two-frame
//     logic search space over primary input assignments;
//  4. incremental timing refinement (package itr) that recomputes timing
//     windows as values are assigned; branches whose refined windows make
//     the required alignment impossible are pruned.
//
// The Section 7 experiment toggles component 4: with a bounded backtrack
// budget, ITR pruning sharply increases ATPG efficiency (the percentage of
// targeted faults either detected or proven untestable), reproducing the
// paper's 39.63% -> 82.75% result in shape.
package atpg

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync/atomic"

	"sstiming/internal/core"
	"sstiming/internal/engine"
	"sstiming/internal/itr"
	"sstiming/internal/logicsim"
	"sstiming/internal/netlist"
	"sstiming/internal/nineval"
	"sstiming/internal/sta"
	"sstiming/internal/tgraph"
)

var debugValidate = false

// Fault is one crosstalk delay fault site.
type Fault struct {
	// Aggressor and Victim are the coupled nets.
	Aggressor, Victim string
	// AggRising and VicRising are the transition directions required for
	// excitation (opposite-direction coupling slows the victim).
	AggRising, VicRising bool
	// MaxSkew is the alignment window: |A_agg - A_vic| must not exceed
	// it for the coupling to matter.
	MaxSkew float64
}

// String renders the fault site.
func (f Fault) String() string {
	dir := func(r bool) string {
		if r {
			return "R"
		}
		return "F"
	}
	return fmt.Sprintf("xtalk(%s%s->%s%s,±%.0fps)",
		f.Aggressor, dir(f.AggRising), f.Victim, dir(f.VicRising), f.MaxSkew*1e12)
}

// Outcome classifies one ATPG run.
type Outcome int

const (
	// Detected: a test was found.
	Detected Outcome = iota
	// Untestable: the search space was exhausted without a test.
	Untestable
	// Aborted: the backtrack budget ran out.
	Aborted
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Detected:
		return "detected"
	case Untestable:
		return "untestable"
	default:
		return "aborted"
	}
}

// TwoPattern is a generated two-vector test.
type TwoPattern struct {
	V1, V2 logicsim.Vector
}

// Options configures the generator.
type Options struct {
	// Lib is the characterised cell library (required).
	Lib *core.Library
	// UseITR enables incremental timing refinement pruning (component 4).
	// Each fault's search keeps one persistent timing graph alive and
	// applies the decision cubes to it as deltas: an implication step
	// re-converges only its changed cone, and backtracking is just the
	// sibling's cube applied as the next delta.
	UseITR bool
	// ITRFullRecompute forces the pre-refactor behaviour: a from-scratch
	// itr.Refine per decision step instead of the persistent graph. The
	// two paths produce byte-identical windows and therefore identical
	// searches (asserted by TestIncrementalITRMatchesFullRefine); this
	// knob exists as the cross-check reference and for the bench harness
	// to quantify the speed-up.
	ITRFullRecompute bool
	// MaxBacktracks bounds the search; zero selects 64.
	MaxBacktracks int
	// PI is the assumed primary input stimulus.
	PI sta.PITiming
	// FaultDelay is the slowdown the excited crosstalk fault adds to the
	// victim's transition; zero selects 150 ps.
	FaultDelay float64
	// DetectThreshold is the minimum primary-output arrival shift that
	// counts as detection; zero selects FaultDelay/2.
	DetectThreshold float64
	// Ctx, when non-nil, cancels the search; a cancelled fault reports
	// Aborted.
	Ctx context.Context
	// Jobs bounds the engine worker pool RunCampaign uses to target
	// faults concurrently; zero or one runs serially. Per-fault results
	// are independent of the worker count.
	Jobs int
	// CampaignBudget, when positive, bounds the total backtracks summed
	// over all faults of RunCampaign; once exhausted the remaining
	// faults are aborted (the paper's bounded-effort campaign setup).
	CampaignBudget int
	// Metrics, when non-nil, counts targeted faults, decisions and
	// backtracks.
	Metrics *engine.Metrics
}

// Result is the outcome of one fault's test generation.
type Result struct {
	Outcome    Outcome
	Test       *TwoPattern
	Backtracks int
	// Decisions counts PI value assignments explored.
	Decisions int
	// LeavesTried and LeavesExcited count fully specified candidates
	// validated and those that excited the fault (diagnostics).
	LeavesTried   int
	LeavesExcited int
}

type generator struct {
	c    *netlist.Circuit
	f    Fault
	opts Options

	// tg is the persistent timing graph carrying this fault's ITR state
	// across decision steps (lazily built on the first timingFeasible
	// call). It is private to the fault's search — RunCampaign workers
	// share the circuit but never a graph.
	tg *tgraph.Graph

	// cancelled flags that the search stopped early because opts.Ctx was
	// done; the fault then reports Aborted rather than Untestable.
	cancelled bool

	backtracks    int
	decisions     int
	leavesTried   int
	leavesExcited int
	// conePIs are the decision variables: primary inputs in the
	// transitive fanin cone of the fault site (PODEM-style backtrace
	// scope). Remaining PIs are filled heuristically at the leaves.
	conePIs []string
	restPIs []string
	// conePOs are the primary outputs reachable from the victim — the
	// candidate propagation targets.
	conePOs []string
}

// GenerateTest attempts to generate a two-pattern test for the fault.
func GenerateTest(c *netlist.Circuit, f Fault, opts Options) (Result, error) {
	if opts.Lib == nil {
		return Result{}, fmt.Errorf("atpg: Options.Lib is required")
	}
	if err := c.EnsureBuilt(); err != nil {
		return Result{}, fmt.Errorf("atpg: %w", err)
	}
	if opts.MaxBacktracks <= 0 {
		opts.MaxBacktracks = 64
	}
	if opts.FaultDelay <= 0 {
		opts.FaultDelay = 150e-12
	}
	if opts.DetectThreshold <= 0 {
		opts.DetectThreshold = opts.FaultDelay / 2
	}
	if _, okA := driverOrPI(c, f.Aggressor); !okA {
		return Result{}, fmt.Errorf("atpg: unknown aggressor net %q", f.Aggressor)
	}
	if _, okV := driverOrPI(c, f.Victim); !okV {
		return Result{}, fmt.Errorf("atpg: unknown victim net %q", f.Victim)
	}

	g := &generator{c: c, f: f, opts: opts}
	defer func() {
		opts.Metrics.Add(engine.ATPGFaults, 1)
		opts.Metrics.Add(engine.ATPGDecisions, int64(g.decisions))
		opts.Metrics.Add(engine.ATPGBacktracks, int64(g.backtracks))
	}()
	g.orderPIs()
	g.conePOs = nil
	cone := g.fanoutCone(f.Victim)
	for _, po := range c.POs {
		if cone[po] {
			g.conePOs = append(g.conePOs, po)
		}
	}
	if len(g.conePOs) == 0 {
		// The victim reaches no primary output: structurally untestable.
		return Result{Outcome: Untestable}, nil
	}

	// Objective cube: required transitions at the fault site.
	cube := nineval.Cube{
		f.Aggressor: transitionValue(f.AggRising),
		f.Victim:    transitionValue(f.VicRising),
	}
	implied, ok := nineval.Imply(c, cube)
	if !ok {
		return Result{Outcome: Untestable}, nil
	}

	// Propagation objectives: augment the excitation cube with the
	// side-input conditions of one sensitised victim->PO path (the
	// paper's "propagation conditions in the fault-free sites"). Paths
	// are grown incrementally, checking logical consistency at every
	// gate, so the builder routes around blocked branches. Each distinct
	// consistent path yields one root alternative; the bare excitation
	// cube is kept as the final fallback.
	var roots []nineval.Cube
	seenRoot := map[string]bool{}
	for seed := 0; seed < maxSensitizedPaths; seed++ {
		if pc, ok := g.sensitizedPathCube(implied, seed); ok {
			key := pc.String()
			if !seenRoot[key] {
				seenRoot[key] = true
				roots = append(roots, pc)
			}
		}
	}
	if debugValidate {
		fmt.Printf("DEBUG roots: %d sensitised\n", len(roots))
	}
	roots = append(roots, implied)

	// Budget slicing: each sensitised root gets an equal share of the
	// backtrack budget; the bare-excitation fallback may spend whatever
	// remains.
	var found bool
	var test *TwoPattern
	total := g.opts.MaxBacktracks
	share := total / len(roots)
	if share < 8 {
		share = 8
	}
	for i, root := range roots {
		if i == len(roots)-1 {
			g.opts.MaxBacktracks = total
		} else {
			cap := g.backtracks + share
			if cap > total {
				cap = total
			}
			g.opts.MaxBacktracks = cap
		}
		found, test = g.search(root, 0)
		if found || g.cancelled || g.backtracks >= total {
			break
		}
	}
	g.opts.MaxBacktracks = total
	res := Result{
		Backtracks:    g.backtracks,
		Decisions:     g.decisions,
		LeavesTried:   g.leavesTried,
		LeavesExcited: g.leavesExcited,
	}
	switch {
	case found:
		res.Outcome = Detected
		res.Test = test
	case g.cancelled || g.backtracks >= g.opts.MaxBacktracks:
		res.Outcome = Aborted
	default:
		res.Outcome = Untestable
	}
	return res, nil
}

func transitionValue(rising bool) nineval.Value {
	if rising {
		return nineval.V01
	}
	return nineval.V10
}

func driverOrPI(c *netlist.Circuit, net string) (int, bool) {
	if c.IsPI(net) {
		return -1, true
	}
	return c.Driver(net)
}

// orderPIs splits the primary inputs into the decision set (fanin cone of
// the fault site) and the heuristically-filled remainder.
func (g *generator) orderPIs() {
	cone := map[string]bool{}
	var walk func(net string)
	walk = func(net string) {
		if cone[net] {
			return
		}
		cone[net] = true
		if gi, ok := g.c.Driver(net); ok {
			for _, in := range g.c.Gates[gi].Inputs {
				walk(in)
			}
		}
	}
	walk(g.f.Aggressor)
	walk(g.f.Victim)

	for _, pi := range g.c.PIs {
		if cone[pi] {
			g.conePIs = append(g.conePIs, pi)
		} else {
			g.restPIs = append(g.restPIs, pi)
		}
	}
}

// search performs PODEM-style depth-first enumeration over PI two-frame
// values. Returns (true, test) on success. It stops expanding once the
// backtrack budget is exhausted.
func (g *generator) search(cube nineval.Cube, depth int) (bool, *TwoPattern) {
	if g.opts.Ctx != nil && g.opts.Ctx.Err() != nil {
		g.cancelled = true
		return false, nil
	}
	if g.backtracks >= g.opts.MaxBacktracks {
		return false, nil
	}

	// Objective check: the fault-site transitions must still be possible.
	if cube.Get(g.f.Aggressor).StateDir(g.f.AggRising) == nineval.SNo ||
		cube.Get(g.f.Victim).StateDir(g.f.VicRising) == nineval.SNo {
		return false, nil
	}
	// Propagation check: some PO in the victim's fanout cone must still
	// be able to switch.
	propagatable := false
	for _, po := range g.conePOs {
		v := cube.Get(po)
		if v.StateRise() != nineval.SNo || v.StateFall() != nineval.SNo {
			propagatable = true
			break
		}
	}
	if !propagatable {
		return false, nil
	}

	// ITR pruning at the root: recompute timing windows under the
	// initial objective cube and check that the alignment constraint is
	// satisfiable at all. (Deeper nodes are checked child-by-child
	// below, which also yields the alignment-guided value ordering.)
	if g.opts.UseITR && depth == 0 {
		if ok, _ := g.timingFeasible(cube); !ok {
			return false, nil
		}
	}

	pi := g.nextPI(cube)
	if pi == "" {
		return g.searchLeaf(cube)
	}

	// Expand the four candidate values. With ITR enabled, prune children
	// whose refined windows make the alignment impossible and order the
	// survivors by how closely the aggressor and victim windows align
	// (component 4 used as search guidance, not just as a filter).
	type child struct {
		cube  nineval.Cube
		score float64
	}
	var children []child
	for _, v := range g.valueOrder() {
		cur := cube.Get(pi)
		merged, ok := cur.Meet(v)
		if !ok {
			continue
		}
		next := cube.Clone()
		next[pi] = merged
		implied, ok := nineval.Imply(g.c, next)
		g.decisions++
		if !ok {
			g.backtracks++
			if g.backtracks >= g.opts.MaxBacktracks {
				return false, nil
			}
			continue
		}
		score := 0.0
		if g.opts.UseITR {
			feasible, s := g.timingFeasible(implied)
			if !feasible {
				g.backtracks++
				if g.backtracks >= g.opts.MaxBacktracks {
					return false, nil
				}
				continue
			}
			score = s
		}
		children = append(children, child{cube: implied, score: score})
	}
	if g.opts.UseITR {
		sort.SliceStable(children, func(i, j int) bool { return children[i].score < children[j].score })
	}

	for _, ch := range children {
		if found, test := g.search(ch.cube, depth+1); found {
			return true, test
		}
		g.backtracks++
		if g.backtracks >= g.opts.MaxBacktracks {
			return false, nil
		}
	}
	return false, nil
}

// searchLeaf handles a node where every cone PI is assigned: the fault-site
// excitation and (when the root carried path objectives) the propagation
// conditions are logically fixed. The remaining primary inputs are completed
// with a few fill patterns — quiet fills first, which preserve any path
// sensitisation — and each fully specified candidate is validated by faulty
// timing simulation. Each failed attempt costs a backtrack.
func (g *generator) searchLeaf(cube nineval.Cube) (bool, *TwoPattern) {
	attempt := func(candidate nineval.Cube, fill nineval.Value) (bool, *TwoPattern, bool) {
		filled := candidate.Clone()
		for _, pi := range g.c.PIs {
			cur := filled.Get(pi)
			if cur.V1 == nineval.FX || cur.V2 == nineval.FX {
				v := cur
				if v.V1 == nineval.FX {
					v.V1 = fill.V1
				}
				if v.V2 == nineval.FX {
					v.V2 = fill.V2
				}
				filled[pi] = v
			}
		}
		if implied, ok := nineval.Imply(g.c, filled); ok {
			if test := g.validate(implied); test != nil {
				return true, test, false
			}
		}
		g.backtracks++
		return false, nil, g.backtracks >= g.opts.MaxBacktracks
	}

	// Quiet fills first (they preserve path sensitisation), then
	// transition fills.
	for _, fill := range []nineval.Value{nineval.V11, nineval.V00, nineval.V01, nineval.V10} {
		found, test, out := attempt(cube, fill)
		if found {
			return true, test
		}
		if out {
			return false, nil
		}
	}
	return false, nil
}

// maxSensitizedPaths bounds the number of sensitised-path root alternatives
// tried per fault.
const maxSensitizedPaths = 4

// sensitizedPathCube grows a sensitised path from the victim to a primary
// output, one gate at a time: at each step it tries the fanout branches (in
// a seed-rotated order) and keeps the first one whose side-input conditions
// — every off-path input steady at the non-controlling value in both frames
// — are logically consistent with the cube so far. Returns false if the
// walk gets stuck before reaching a primary output.
func (g *generator) sensitizedPathCube(base nineval.Cube, seed int) (nineval.Cube, bool) {
	cube := base
	net := g.f.Victim
	visited := map[string]bool{net: true}

	isPO := map[string]bool{}
	for _, po := range g.c.POs {
		isPO[po] = true
	}

	for !isPO[net] {
		fos := g.c.Fanout(net)
		if len(fos) == 0 {
			return nil, false
		}
		progressed := false
		for k := 0; k < len(fos); k++ {
			gi := fos[(k+seed)%len(fos)]
			gate := &g.c.Gates[gi]
			if visited[gate.Output] {
				continue
			}
			cand, ok := g.applySideConditions(cube, gate, net)
			if !ok {
				continue
			}
			cube = cand
			net = gate.Output
			visited[net] = true
			progressed = true
			break
		}
		if !progressed {
			return nil, false
		}
	}
	return cube, true
}

// applySideConditions merges the sensitisation conditions of one gate into
// the cube: every input other than pathIn holds the gate's non-controlling
// value in both frames. Returns the implied cube, or false on conflict.
func (g *generator) applySideConditions(cube nineval.Cube, gate *netlist.Gate, pathIn string) (nineval.Cube, bool) {
	var steady nineval.Value
	switch gate.Kind {
	case netlist.Nand:
		steady = nineval.V11
	case netlist.Nor:
		steady = nineval.V00
	default:
		// INV/BUF have no side inputs; nothing to constrain.
		return cube, true
	}
	out := cube.Clone()
	changed := false
	for _, in := range gate.Inputs {
		if in == pathIn {
			continue
		}
		merged, ok := out.Get(in).Meet(steady)
		if !ok {
			return nil, false
		}
		if merged != out.Get(in) {
			out[in] = merged
			changed = true
		}
	}
	if !changed {
		return cube, true
	}
	implied, ok := nineval.Imply(g.c, out)
	if !ok {
		return nil, false
	}
	return implied, true
}

// nextPI returns the first cone PI whose two-frame value is not fully
// specified.
func (g *generator) nextPI(cube nineval.Cube) string {
	for _, pi := range g.conePIs {
		v := cube.Get(pi)
		if v.V1 == nineval.FX || v.V2 == nineval.FX {
			return pi
		}
	}
	return ""
}

// valueOrder lists the four fully specified two-frame PI values, transitions
// first (they are more likely to excite and propagate).
func (g *generator) valueOrder() []nineval.Value {
	return []nineval.Value{nineval.V01, nineval.V10, nineval.V11, nineval.V00}
}

// timingFeasible refines the windows under the partial assignment and
// checks the fault's alignment constraint. The returned score (valid when
// feasible) measures how far apart the aggressor and victim window centres
// sit — lower scores make better search candidates.
//
// The cube is always an implication fixpoint (the search implies every
// candidate before scoring it), so the default path applies it to the
// fault's persistent timing graph as a delta: only the cone the implication
// actually changed is re-converged, and stepping back to a sibling or an
// ancestor is the same delta mechanism in reverse. The graph and the
// from-scratch reference produce byte-identical windows, so pruning and
// candidate ordering are unchanged.
func (g *generator) timingFeasible(cube nineval.Cube) (bool, float64) {
	wa, wv, okA, okV, err := g.refineWindows(cube)
	if err != nil {
		return false, 0 // logically inconsistent
	}
	if !okA || !okV {
		return false, 0
	}
	// Alignment satisfiable iff the windows can come within MaxSkew.
	if wa.AS > wv.AL+g.f.MaxSkew {
		return false, 0
	}
	if wa.AL < wv.AS-g.f.MaxSkew {
		return false, 0
	}
	ca := (wa.AS + wa.AL) / 2
	cv := (wv.AS + wv.AL) / 2
	score := ca - cv
	if score < 0 {
		score = -score
	}
	return true, score
}

// refineWindows produces the aggressor and victim windows under the implied
// cube, via the persistent graph (default) or a from-scratch itr.Refine
// (ITRFullRecompute). A non-nil error means the timing state could not be
// established (inconsistent cube, cancellation, poisoned-graph heal failure).
func (g *generator) refineWindows(cube nineval.Cube) (wa, wv sta.Window, okA, okV bool, err error) {
	if g.opts.ITRFullRecompute {
		res, rerr := itr.Refine(g.c, cube, itr.Options{
			Lib:  g.opts.Lib,
			Mode: sta.ModeProposed,
			PI:   g.opts.PI,
		})
		if rerr != nil {
			return sta.Window{}, sta.Window{}, false, false, rerr
		}
		wa, okA = res.Window(g.f.Aggressor, g.f.AggRising)
		wv, okV = res.Window(g.f.Victim, g.f.VicRising)
		return wa, wv, okA, okV, nil
	}

	g.opts.Metrics.Add(engine.ITRRefines, 1)
	if g.tg == nil {
		tgr, berr := tgraph.NewWithCube(g.c, cube, tgraph.Options{
			Lib:     g.opts.Lib,
			Mode:    sta.ModeProposed,
			PI:      g.opts.PI,
			Ctx:     g.opts.Ctx,
			Metrics: g.opts.Metrics,
		})
		if berr != nil {
			return sta.Window{}, sta.Window{}, false, false, berr
		}
		g.tg = tgr
	} else if serr := g.tg.SetImpliedCube(g.opts.Ctx, cube); serr != nil {
		return sta.Window{}, sta.Window{}, false, false, serr
	} else {
		g.opts.Metrics.Add(engine.ITRImplications, int64(g.tg.NumChanged()))
	}
	wa, okA = g.tg.Window(g.f.Aggressor, g.f.AggRising)
	wv, okV = g.tg.Window(g.f.Victim, g.f.VicRising)
	return wa, wv, okA, okV, nil
}

// validate simulates the fully specified candidate with the crosstalk fault
// injected and accepts it as a test when the fault is excited (both
// transitions present, directions matching, aligned within the window) and
// its slowdown propagates to a primary output — i.e. some PO arrival shifts
// by at least the detection threshold.
func (g *generator) validate(cube nineval.Cube) *TwoPattern {
	v1 := make(logicsim.Vector, len(g.c.PIs))
	v2 := make(logicsim.Vector, len(g.c.PIs))
	for _, pi := range g.c.PIs {
		val := cube.Get(pi)
		if val.V1 == nineval.FX || val.V2 == nineval.FX {
			return nil
		}
		v1[pi] = int(val.V1)
		v2[pi] = int(val.V2)
	}
	clean, faulty, excited, err := logicsim.SimulateFaulty(g.c, v1, v2, logicsim.FaultInjection{
		Aggressor:  g.f.Aggressor,
		Victim:     g.f.Victim,
		AggRising:  g.f.AggRising,
		VicRising:  g.f.VicRising,
		Window:     g.f.MaxSkew,
		ExtraDelay: g.opts.FaultDelay,
	}, logicsim.Options{
		Lib:       g.opts.Lib,
		Mode:      logicsim.ModeProposed,
		PIArrival: g.opts.PI.ArrivalEarly,
		PITrans:   g.opts.PI.TransShort,
	})
	g.leavesTried++
	if err != nil || !excited {
		return nil
	}
	g.leavesExcited++
	if debugValidate {
		vic := clean.Events[g.f.Victim]
		fvic := faulty.Events[g.f.Victim]
		fmt.Printf("DEBUG excited: vic %s clean=%.1fps faulty=%.1fps\n", g.f.Victim, vic.Arrival*1e12, fvic.Arrival*1e12)
		diff := 0
		for net, fe := range faulty.Events {
			if ce, ok := clean.Events[net]; ok && fe.Arrival != ce.Arrival {
				diff++
			}
		}
		cone := g.fanoutCone(g.f.Victim)
		poCone, poDiff := 0, 0
		for _, po := range g.c.POs {
			if !cone[po] {
				continue
			}
			poCone++
			fe, okF := faulty.Events[po]
			ce, okC := clean.Events[po]
			if okF && okC {
				if fe.Arrival != ce.Arrival {
					poDiff++
				}
			} else {
				fmt.Printf("  conePO %s: okF=%v okC=%v\n", po, okF, okC)
			}
		}
		fmt.Printf("  shifted nets %d, cone POs %d, shifted POs %d\n", diff, poCone, poDiff)
	}

	// Detection: the injected slowdown must reach a primary output.
	for _, po := range g.c.POs {
		fe, okF := faulty.Events[po]
		ce, okC := clean.Events[po]
		if !okF || !okC {
			continue
		}
		if fe.Arrival-ce.Arrival >= g.opts.DetectThreshold {
			return &TwoPattern{V1: v1, V2: v2}
		}
	}
	return nil
}

// fanoutCone returns the transitive fanout cone of a net (including itself).
func (g *generator) fanoutCone(net string) map[string]bool {
	cone := map[string]bool{}
	var walk func(n string)
	walk = func(n string) {
		if cone[n] {
			return
		}
		cone[n] = true
		for _, gi := range g.c.Fanout(n) {
			walk(g.c.Gates[gi].Output)
		}
	}
	walk(net)
	return cone
}

// RandomFaults samples a deterministic crosstalk fault list over internal
// nets of the circuit: coupled pairs at nearby logic levels (routing
// neighbours in spirit), with random transition directions. The alignment
// window of each fault is drawn log-uniformly from [0.2, 6] x maxSkew,
// giving the campaign a realistic mix of easy, hard and
// alignment-infeasible sites.
func RandomFaults(c *netlist.Circuit, n int, seed int64, maxSkew float64) []Fault {
	rng := rand.New(rand.NewSource(seed))
	// Candidate nets: gate outputs (internal lines carry the coupling).
	type levNet struct {
		net string
		lvl int
	}
	var nets []levNet
	for _, gi := range c.TopoOrder() {
		nets = append(nets, levNet{net: c.Gates[gi].Output, lvl: c.Level(gi)})
	}
	sort.Slice(nets, func(i, j int) bool { return nets[i].net < nets[j].net })
	if len(nets) < 2 {
		return nil
	}

	var out []Fault
	for len(out) < n {
		a := nets[rng.Intn(len(nets))]
		b := nets[rng.Intn(len(nets))]
		// Log-uniform over [0.2, 6] x maxSkew.
		skew := maxSkew * 0.2 * math.Pow(30, rng.Float64())
		if a.net == b.net {
			continue
		}
		if d := a.lvl - b.lvl; d > 3 || d < -3 {
			continue
		}
		out = append(out, Fault{
			Aggressor: a.net,
			Victim:    b.net,
			AggRising: rng.Intn(2) == 1,
			VicRising: rng.Intn(2) == 1,
			MaxSkew:   skew,
		})
	}
	return out
}

// CampaignStats aggregates a fault-list run.
type CampaignStats struct {
	Detected   int
	Untestable int
	Aborted    int
	// Efficiency is the paper's metric: the fraction of targeted faults
	// that are detected or identified undetectable.
	Efficiency float64
	// TotalBacktracks sums backtracks across faults.
	TotalBacktracks int
}

// RunCampaign generates tests for every fault and aggregates the outcome.
// Faults are targeted concurrently on Options.Jobs workers; each fault's
// search is independent, so per-fault results match a serial run. When
// Options.CampaignBudget is positive, the campaign stops once the total
// backtracks across faults exhaust it and the remaining faults count as
// Aborted.
func RunCampaign(c *netlist.Circuit, faults []Fault, opts Options) (CampaignStats, error) {
	if err := c.EnsureBuilt(); err != nil {
		return CampaignStats{}, fmt.Errorf("atpg: %w", err)
	}
	stop := opts.Metrics.StartTimer("atpg/campaign")
	defer stop()

	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	budget := int64(opts.CampaignBudget)
	var spent atomic.Int64

	results := make([]Result, len(faults))
	ran := make([]bool, len(faults))
	jobOpts := opts
	jobOpts.Ctx = ctx
	runErr := engine.Run(ctx, opts.Jobs, len(faults), func(_ context.Context, i int) error {
		r, err := GenerateTest(c, faults[i], jobOpts)
		if err != nil {
			return fmt.Errorf("atpg: fault %s: %w", faults[i], err)
		}
		results[i] = r
		ran[i] = true
		if budget > 0 && spent.Add(int64(r.Backtracks)) >= budget {
			cancel() // budget exhausted: abort the remaining faults
		}
		return nil
	})
	if runErr != nil {
		// A budget-triggered cancellation is the expected end of a
		// bounded campaign, not a failure.
		budgetHit := budget > 0 && spent.Load() >= budget
		if !(budgetHit && errors.Is(runErr, context.Canceled)) {
			return CampaignStats{}, runErr
		}
	}

	var s CampaignStats
	for i := range faults {
		if !ran[i] {
			// Never targeted (dropped after cancellation): the search
			// effort ran out before this fault, so it is aborted.
			s.Aborted++
			continue
		}
		switch results[i].Outcome {
		case Detected:
			s.Detected++
		case Untestable:
			s.Untestable++
		default:
			s.Aborted++
		}
		s.TotalBacktracks += results[i].Backtracks
	}
	total := len(faults)
	if total > 0 {
		s.Efficiency = float64(s.Detected+s.Untestable) / float64(total)
	}
	return s, nil
}

// SetDebug toggles verbose leaf validation diagnostics (tests/probes only).
func SetDebug(v bool) { debugValidate = v }
