package atpg

import (
	"testing"

	"sstiming/internal/benchgen"
	"sstiming/internal/logicsim"
	"sstiming/internal/prechar"
)

func TestGenerateTestDetectsEasyFault(t *testing.T) {
	lib := prechar.MustLibrary()
	c := benchgen.C17()
	// Nets 10 and 11 are both level-1 NAND outputs: their windows align
	// trivially with a generous skew budget.
	f := Fault{Aggressor: "10", Victim: "11", AggRising: true, VicRising: true, MaxSkew: 1e-9}
	for _, useITR := range []bool{false, true} {
		r, err := GenerateTest(c, f, Options{Lib: lib, UseITR: useITR, MaxBacktracks: 256})
		if err != nil {
			t.Fatal(err)
		}
		if r.Outcome != Detected {
			t.Fatalf("useITR=%v: outcome %v, want detected (backtracks %d)", useITR, r.Outcome, r.Backtracks)
		}
		// Verify the returned test actually excites the fault.
		sim, err := logicsim.Simulate(c, r.Test.V1, r.Test.V2, logicsim.Options{Lib: lib})
		if err != nil {
			t.Fatal(err)
		}
		agg, okA := sim.Events["10"]
		vic, okV := sim.Events["11"]
		if !okA || !okV || !agg.Rising || !vic.Rising {
			t.Fatalf("useITR=%v: test does not create the required transitions", useITR)
		}
		if d := agg.Arrival - vic.Arrival; d > f.MaxSkew || d < -f.MaxSkew {
			t.Fatalf("useITR=%v: transitions misaligned by %g", useITR, d)
		}
	}
}

func TestITRProvesInfeasibleAlignmentUntestable(t *testing.T) {
	lib := prechar.MustLibrary()
	c := benchgen.C17()
	// Victim is a primary input (rising exactly at t = 0); aggressor is
	// the level-3 PO 23 falling, at least two gate delays later. The
	// windows cannot come within 1 ps: ITR proves this at the root; the
	// blind search has to enumerate.
	f := Fault{Aggressor: "23", Victim: "1", AggRising: false, VicRising: true, MaxSkew: 1e-12}

	rITR, err := GenerateTest(c, f, Options{Lib: lib, UseITR: true, MaxBacktracks: 64})
	if err != nil {
		t.Fatal(err)
	}
	if rITR.Outcome != Untestable {
		t.Errorf("with ITR: outcome %v, want untestable", rITR.Outcome)
	}
	if rITR.Backtracks != 0 {
		t.Errorf("with ITR: %d backtracks, want 0 (root pruning)", rITR.Backtracks)
	}

	rBlind, err := GenerateTest(c, f, Options{Lib: lib, UseITR: false, MaxBacktracks: 64})
	if err != nil {
		t.Fatal(err)
	}
	if rBlind.Outcome == Detected {
		t.Errorf("without ITR: impossible fault reported detected")
	}
	if rBlind.Backtracks == 0 {
		t.Errorf("without ITR the search should have to work for it")
	}
}

func TestLogicallyImpossibleFault(t *testing.T) {
	lib := prechar.MustLibrary()
	c := benchgen.C17()
	// Aggressor and victim on the same reconvergent pair with directions
	// that conflict logically: net 10 = NAND(1,3) and net 11 = NAND(3,6).
	// Requiring 10 to rise (1 or 3 falls, both start 1) and ... use a
	// self-coupling contradiction instead: victim must both rise and the
	// aggressor equals the victim - unrepresentable, so craft a cube
	// conflict via directions on an inverter chain.
	// Simplest deterministic case: aggressor = victim net is rejected at
	// fault construction time by the caller; here test unknown nets.
	if _, err := GenerateTest(c, Fault{Aggressor: "zz", Victim: "10"}, Options{Lib: lib}); err == nil {
		t.Error("expected error for unknown aggressor")
	}
	if _, err := GenerateTest(c, Fault{Aggressor: "10", Victim: "zz"}, Options{Lib: lib}); err == nil {
		t.Error("expected error for unknown victim")
	}
	if _, err := GenerateTest(c, Fault{Aggressor: "10", Victim: "11"}, Options{}); err == nil {
		t.Error("expected error for missing library")
	}
}

func TestRandomFaultsDeterministic(t *testing.T) {
	c, err := benchgen.Load("c432")
	if err != nil {
		t.Fatal(err)
	}
	a := RandomFaults(c, 20, 7, 0.1e-9)
	b := RandomFaults(c, 20, 7, 0.1e-9)
	if len(a) != 20 || len(b) != 20 {
		t.Fatalf("fault list sizes %d/%d, want 20", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("fault list not deterministic")
		}
	}
	for _, f := range a {
		if f.Aggressor == f.Victim {
			t.Error("self-coupled fault generated")
		}
	}
}

// TestSection7EfficiencyShape reproduces the Section 7 experiment's shape:
// with a bounded backtrack budget, enabling ITR pruning substantially
// increases ATPG efficiency (detected + proven-untestable) over the
// logic-only search. The paper reports 39.63% -> 82.75%.
func TestSection7EfficiencyShape(t *testing.T) {
	lib := prechar.MustLibrary()
	c, err := benchgen.Load("c432")
	if err != nil {
		t.Fatal(err)
	}
	faults := RandomFaults(c, 40, 42, 0.12e-9)

	blind, err := RunCampaign(c, faults, Options{Lib: lib, UseITR: false, MaxBacktracks: 48})
	if err != nil {
		t.Fatal(err)
	}
	withITR, err := RunCampaign(c, faults, Options{Lib: lib, UseITR: true, MaxBacktracks: 48})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("blind: eff %.1f%% (det %d, unt %d, abort %d, backtracks %d)",
		blind.Efficiency*100, blind.Detected, blind.Untestable, blind.Aborted, blind.TotalBacktracks)
	t.Logf("ITR:   eff %.1f%% (det %d, unt %d, abort %d, backtracks %d)",
		withITR.Efficiency*100, withITR.Detected, withITR.Untestable, withITR.Aborted, withITR.TotalBacktracks)

	if withITR.Efficiency < blind.Efficiency+0.15 {
		t.Errorf("ITR efficiency %.2f not clearly above blind %.2f (want >= +15 points)",
			withITR.Efficiency, blind.Efficiency)
	}
}

func TestOutcomeStrings(t *testing.T) {
	if Detected.String() != "detected" || Untestable.String() != "untestable" || Aborted.String() != "aborted" {
		t.Error("outcome strings wrong")
	}
	f := Fault{Aggressor: "a", Victim: "b", AggRising: true, MaxSkew: 5e-11}
	if s := f.String(); s == "" {
		t.Error("empty fault string")
	}
}
