package atpg

import (
	"testing"

	"sstiming/internal/benchgen"
	"sstiming/internal/prechar"
)

// TestIncrementalITRMatchesFullRefine is the contract of the incremental
// edit/undo wiring: because the persistent graph's windows are byte-identical
// to a from-scratch itr.Refine at every decision step, pruning verdicts and
// candidate-ordering scores are identical too — so the searches are the SAME
// search, producing identical test cubes, outcomes and effort counters on the
// seed circuits.
func TestIncrementalITRMatchesFullRefine(t *testing.T) {
	lib := prechar.MustLibrary()
	for _, bench := range []string{"c17", "c432"} {
		c, err := benchgen.Load(bench)
		if err != nil {
			t.Fatal(err)
		}
		faults := RandomFaults(c, 12, 23, 0.12e-9)
		if bench == "c17" {
			faults = []Fault{
				{Aggressor: "10", Victim: "11", AggRising: true, VicRising: true, MaxSkew: 1e-9},
				{Aggressor: "16", Victim: "11", AggRising: false, VicRising: true, MaxSkew: 0.05e-9},
				{Aggressor: "23", Victim: "1", AggRising: false, VicRising: true, MaxSkew: 1e-12},
			}
		}
		for i, f := range faults {
			inc, err := GenerateTest(c, f, Options{Lib: lib, UseITR: true, MaxBacktracks: 48})
			if err != nil {
				t.Fatalf("%s fault %d incremental: %v", bench, i, err)
			}
			ref, err := GenerateTest(c, f, Options{Lib: lib, UseITR: true, ITRFullRecompute: true, MaxBacktracks: 48})
			if err != nil {
				t.Fatalf("%s fault %d full-refine: %v", bench, i, err)
			}
			if inc.Outcome != ref.Outcome {
				t.Errorf("%s fault %d %s: outcome %v != reference %v", bench, i, f, inc.Outcome, ref.Outcome)
				continue
			}
			if inc.Decisions != ref.Decisions || inc.Backtracks != ref.Backtracks ||
				inc.LeavesTried != ref.LeavesTried || inc.LeavesExcited != ref.LeavesExcited {
				t.Errorf("%s fault %d %s: search effort diverged: incremental {dec %d bt %d leaves %d/%d} vs reference {dec %d bt %d leaves %d/%d}",
					bench, i, f,
					inc.Decisions, inc.Backtracks, inc.LeavesTried, inc.LeavesExcited,
					ref.Decisions, ref.Backtracks, ref.LeavesTried, ref.LeavesExcited)
			}
			switch {
			case (inc.Test == nil) != (ref.Test == nil):
				t.Errorf("%s fault %d %s: one path found a test, the other did not", bench, i, f)
			case inc.Test != nil:
				for _, pi := range c.PIs {
					if inc.Test.V1[pi] != ref.Test.V1[pi] || inc.Test.V2[pi] != ref.Test.V2[pi] {
						t.Errorf("%s fault %d %s: test cubes differ at PI %s: (%d,%d) vs (%d,%d)",
							bench, i, f, pi,
							inc.Test.V1[pi], inc.Test.V2[pi], ref.Test.V1[pi], ref.Test.V2[pi])
					}
				}
			}
		}
	}
}

// TestIncrementalITRCampaignMatches runs the two paths through RunCampaign
// (concurrent workers, shared circuit) and requires identical aggregates —
// the per-fault graphs must not leak state across workers.
func TestIncrementalITRCampaignMatches(t *testing.T) {
	lib := prechar.MustLibrary()
	c, err := benchgen.Load("c432")
	if err != nil {
		t.Fatal(err)
	}
	faults := RandomFaults(c, 16, 99, 0.12e-9)
	inc, err := RunCampaign(c, faults, Options{Lib: lib, UseITR: true, MaxBacktracks: 32, Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := RunCampaign(c, faults, Options{Lib: lib, UseITR: true, ITRFullRecompute: true, MaxBacktracks: 32})
	if err != nil {
		t.Fatal(err)
	}
	if inc != ref {
		t.Fatalf("campaign stats diverged:\nincremental %+v\nreference   %+v", inc, ref)
	}
}
