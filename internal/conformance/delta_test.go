package conformance

import (
	"strings"
	"testing"

	"sstiming/internal/netlist"
	"sstiming/internal/nineval"
	"sstiming/internal/prechar"
)

// TestDeltaFullCheck runs the incremental-vs-full cross-check alone over a
// spread of seeds: every step of every random edit script must stay
// byte-identical to from-scratch recomputation.
func TestDeltaFullCheck(t *testing.T) {
	rep, err := Run(Options{
		Lib:        prechar.MustLibrary(),
		Seeds:      SeedRange(12, 31),
		Jobs:       4,
		Checks:     []string{"delta-full"},
		FlatTrials: -1, // no transistor-level work needed
	})
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Stats["delta-full"]
	if st == nil || st.Checked == 0 {
		t.Fatal("delta-full compared nothing")
	}
	if !rep.Passed() {
		for _, v := range rep.Violations {
			t.Errorf("divergence:\n%s", v.String())
		}
	}
}

// TestReplayDivergesCleanScript pins the shrink predicate's baseline: a
// clean library and a consistent script must NOT reproduce a divergence
// (otherwise shrinking would run its whole budget on noise).
func TestReplayDivergesCleanScript(t *testing.T) {
	e := newSeedEnv(&Options{Lib: prechar.MustLibrary()}, 1)
	e.opts.fill()
	c, err := e.circuit()
	if err != nil {
		t.Fatal(err)
	}
	steps := []editStep{
		{kind: editAssign, net: c.PIs[0], val: nineval.V01},
		{kind: editRetract, net: c.PIs[0]},
		{kind: editAssign, net: c.PIs[1], val: nineval.V10},
	}
	if e.replayDiverges(c, steps) {
		t.Error("clean replay reported a divergence")
	}
}

// TestShrinkDelta drives the minimiser with a synthetic predicate and
// requires both axes to shrink: the circuit must collapse to the divergent
// net's fan-in cone and the script to the single load-bearing step.
func TestShrinkDelta(t *testing.T) {
	c := netlist.New("shrink")
	c.AddPI("a")
	c.AddPI("b")
	c.AddPI("c")
	c.AddGate(netlist.Nand, "u", "a", "b")
	c.AddGate(netlist.Inv, "v", "c")
	c.AddGate(netlist.Nand, "w", "u", "a")
	c.AddGate(netlist.Nand, "z", "u", "v")
	c.AddPO("w")
	c.AddPO("z")
	if err := c.Build(); err != nil {
		t.Fatal(err)
	}

	steps := []editStep{
		{kind: editAssign, net: "a", val: nineval.V01},
		{kind: editSwap, net: "u", gk: netlist.Nor}, // the load-bearing step
		{kind: editAssign, net: "c", val: nineval.V10},
		{kind: editRetract, net: "a"},
	}
	// "Reproduces" iff the candidate still contains gate u and the swap on
	// u — mimicking a divergence seated in w's fan-in cone.
	pred := func(cand *netlist.Circuit, s []editStep) bool {
		if _, ok := cand.Driver("u"); !ok {
			return false
		}
		for _, st := range s {
			if st.kind == editSwap && st.net == "u" {
				return true
			}
		}
		return false
	}

	e := newSeedEnv(&Options{Lib: prechar.MustLibrary()}, 1)
	e.opts.fill()
	minC, minScript := e.shrinkDelta(c, steps, "w", pred)

	if got := minC.NumGates(); got != 2 {
		t.Errorf("shrunk circuit has %d gates, want 2 (w's cone: u, w)", got)
	}
	if len(minScript) != 1 || minScript[0].kind != editSwap || minScript[0].net != "u" {
		t.Errorf("shrunk script = %q, want just the swap on u", formatScript(minScript))
	}
	if !pred(minC, minScript) {
		t.Error("shrunk counterexample no longer reproduces")
	}
	if s := formatScript(minScript); !strings.Contains(s, "swap u->NOR") {
		t.Errorf("script formatting %q does not name the swap", s)
	}
}

// TestShrinkDeltaBudgetExhausted: with a zero budget nothing may shrink —
// the original artefacts come back untouched.
func TestShrinkDeltaBudgetExhausted(t *testing.T) {
	e := newSeedEnv(&Options{Lib: prechar.MustLibrary(), MaxShrink: -1}, 1)
	c := netlist.New("nobudget")
	c.AddPI("a")
	c.AddGate(netlist.Inv, "y", "a")
	c.AddPO("y")
	if err := c.Build(); err != nil {
		t.Fatal(err)
	}
	steps := []editStep{{kind: editAssign, net: "a", val: nineval.V01}}
	minC, minScript := e.shrinkDelta(c, steps, "y", func(*netlist.Circuit, []editStep) bool {
		t.Error("predicate consulted despite an exhausted budget")
		return true
	})
	if minC != c || len(minScript) != 1 {
		t.Error("artefacts changed without any predicate evaluation")
	}
}
