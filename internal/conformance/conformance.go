// Package conformance is the repo's differential verification subsystem: it
// cross-checks every timing oracle the reproduction owns against the others
// on randomly generated circuits and stimulus, seed by seed.
//
// The oracle hierarchy (strongest to weakest, see DESIGN.md "Verification
// strategy") is
//
//	SPICE → flatsim → logicsim → STA → ITR
//
// and each boundary carries an explicit invariant:
//
//   - gate-level timing simulation must track the flattened
//     transistor-level simulation within a stated tolerance (the paper's
//     central ~4% accuracy claim, generalised from fixed benches to random
//     topologies);
//   - STA min-max windows must *contain* every event either simulator can
//     produce (window soundness, Section 4);
//   - ITR-refined windows must be subsets of the STA windows and still
//     contain every event consistent with the refining cube (refinement
//     soundness, Section 5);
//   - the delay model itself must keep the structural properties the paper
//     proves or assumes: dR(δ) is V-shaped piecewise-linear in skew with its
//     minimum at zero skew (Claim 1), every timing function is monotonic or
//     bi-tonic in each argument (the corner-identifiability precondition of
//     Section 4.2), and simultaneous switching never predicts a *slower*
//     to-controlling response than the pin-to-pin model.
//
// Each invariant is a Check value; a campaign fans the seeds out on the
// shared engine pool, and any violation is shrunk to a minimal (circuit,
// vector-pair) counterexample before being reported.
package conformance

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"

	"sstiming/internal/benchgen"
	"sstiming/internal/core"
	"sstiming/internal/engine"
	"sstiming/internal/flatsim"
	"sstiming/internal/logicsim"
	"sstiming/internal/netlist"
	"sstiming/internal/spice"
	"sstiming/internal/sta"
)

// Tolerances bounds the acceptable disagreement of each check family.
// Zero fields select the defaults.
type Tolerances struct {
	// Window is the slack (seconds) allowed on window containment and
	// subset comparisons; it absorbs float noise, not model error.
	// Default 2 ps.
	Window float64
	// FlatAbs and FlatRel bound the gate-level vs transistor-level
	// arrival disagreement: a comparison fails only when BOTH are
	// exceeded (small absolute errors on tiny delays produce huge
	// relative ones and vice versa). Defaults 120 ps and 0.45.
	FlatAbs float64
	FlatRel float64
	// FlatWindow is the extra slack (seconds) allowed when checking
	// transistor-level events against STA windows, which are computed
	// from the fitted model and so inherit its error. Default 120 ps.
	FlatWindow float64
	// FlatPerStage is additional flat-vs-STA slack per logic level of the
	// checked net: the fitted model's error accumulates along a path, and
	// the gate-level buffer approximation (one inverter delay for a
	// two-inverter structure) contributes up to one inverter delay per
	// stage. Default 70 ps.
	FlatPerStage float64
	// Model is the slack (seconds) for model-structure identities
	// (V-shape linearity, saturation, corner rules). Default 1 fs.
	Model float64
}

func (t *Tolerances) fill() {
	if t.Window <= 0 {
		t.Window = 2e-12
	}
	if t.FlatAbs <= 0 {
		t.FlatAbs = 120e-12
	}
	if t.FlatRel <= 0 {
		t.FlatRel = 0.45
	}
	if t.FlatWindow <= 0 {
		t.FlatWindow = 120e-12
	}
	if t.FlatPerStage <= 0 {
		t.FlatPerStage = 70e-12
	}
	if t.Model <= 0 {
		t.Model = 1e-15
	}
}

// Options configures a campaign.
type Options struct {
	// Lib is the characterised cell library (required).
	Lib *core.Library
	// Seeds lists the campaign seeds; each seed generates one random
	// circuit and stimulus set. See SeedRange.
	Seeds []int64
	// Jobs bounds the engine worker pool fanning out over seeds; zero
	// selects GOMAXPROCS, one runs serially. Results are independent of
	// the worker count.
	Jobs int
	// Tol bounds acceptable disagreement; zero fields take defaults.
	Tol Tolerances
	// Checks filters the checks run, by name; nil runs all of them.
	Checks []string
	// SimTrials is the number of random vector pairs simulated per seed
	// for the gate-level checks; zero selects 4.
	SimTrials int
	// FlatTrials is the number of vector pairs per seed additionally
	// simulated at transistor level (the expensive oracle); zero selects
	// 1. Negative disables flattened simulation entirely.
	FlatTrials int
	// NCExtension enables the Section 3.6 Λ-shape extension on both
	// sides of every gate-level comparison.
	NCExtension bool
	// MaxShrink bounds the number of re-simulations spent minimising one
	// counterexample; zero selects 48.
	MaxShrink int
	// Ctx, when non-nil, cancels the campaign between seeds.
	Ctx context.Context
	// NewFaultHook, when non-nil, supplies one solver fault-injection hook
	// per flattened transient (see internal/faultinject.Plan.NextHook).
	// Chaos testing only; production campaigns leave it nil.
	NewFaultHook func() spice.FaultHook
	// OnSolverError, when non-nil, observes every flattened trial the
	// solver gave up on (an error satisfying spice.IsRecoverable) before
	// the campaign absorbs it as a skip. The timing service's circuit
	// breaker feeds on these events; must be safe for concurrent use when
	// Jobs > 1.
	OnSolverError func(error)
	// Metrics, when non-nil, accumulates campaign counters.
	Metrics *engine.Metrics
}

func (o *Options) fill() {
	o.Tol.fill()
	if len(o.Seeds) == 0 {
		o.Seeds = SeedRange(10, 1)
	}
	if o.SimTrials <= 0 {
		o.SimTrials = 4
	}
	if o.FlatTrials == 0 {
		o.FlatTrials = 1
	}
	if o.MaxShrink <= 0 {
		o.MaxShrink = 48
	}
}

// SeedRange returns n consecutive seeds starting at base.
func SeedRange(n int, base int64) []int64 {
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = base + int64(i)
	}
	return seeds
}

// Violation is one invariant failure, shrunk to a minimal counterexample.
type Violation struct {
	// Check is the violated check's name.
	Check string
	// Seed is the campaign seed that produced the counterexample.
	Seed int64
	// Net is the line the violation was observed on (empty for
	// model-structure checks, which report a cell instead).
	Net string
	// Detail is the human-readable description of the disagreement.
	Detail string
	// Bench is the minimal circuit in .bench format (empty for
	// model-structure checks).
	Bench string
	// V1 and V2 are the minimal two-frame stimulus, formatted as
	// "pi:ab" pairs (empty when no stimulus is involved).
	V1, V2 string
}

// String formats the violation as a multi-line report block.
func (v Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (seed %d)", v.Check, v.Seed)
	if v.Net != "" {
		fmt.Fprintf(&b, " net %s", v.Net)
	}
	fmt.Fprintf(&b, ": %s", v.Detail)
	if v.V1 != "" {
		fmt.Fprintf(&b, "\n  vectors: v1 = %s\n           v2 = %s", v.V1, v.V2)
	}
	if v.Bench != "" {
		b.WriteString("\n  circuit:\n")
		for _, line := range strings.Split(strings.TrimRight(v.Bench, "\n"), "\n") {
			b.WriteString("    " + line + "\n")
		}
	}
	return b.String()
}

// CheckStat aggregates one check's campaign-wide effort.
type CheckStat struct {
	// Checked counts individual comparisons (events, windows or samples).
	Checked int
	// Violations counts failed comparisons (after deduplication per
	// seed/net).
	Violations int
	// Skipped counts comparisons abandoned for structural reasons, e.g.
	// a generated circuit too large for the flattened oracle.
	Skipped int
}

// Report is the outcome of a campaign.
type Report struct {
	// Seeds is the number of seeds executed.
	Seeds int
	// Checks lists the executed check names, in canonical order.
	Checks []string
	// Stats maps check name to its aggregate effort.
	Stats map[string]*CheckStat
	// Violations holds every shrunk counterexample, ordered by
	// (seed, check, net).
	Violations []Violation
}

// Passed reports whether the campaign found no violations.
func (r *Report) Passed() bool { return len(r.Violations) == 0 }

// WriteText renders the report; at most maxViolations counterexamples are
// printed in full (non-positive means all).
func (r *Report) WriteText(w io.Writer, maxViolations int) error {
	width := 0
	for _, name := range r.Checks {
		if len(name) > width {
			width = len(name)
		}
	}
	fmt.Fprintf(w, "conformance: %d seeds\n", r.Seeds)
	for _, name := range r.Checks {
		st := r.Stats[name]
		status := "ok"
		if st.Violations > 0 {
			status = "FAIL"
		}
		fmt.Fprintf(w, "  %-*s %-4s %7d checked", width, name, status, st.Checked)
		if st.Violations > 0 {
			fmt.Fprintf(w, ", %d violations", st.Violations)
		}
		if st.Skipped > 0 {
			fmt.Fprintf(w, ", %d skipped", st.Skipped)
		}
		fmt.Fprintln(w)
	}
	n := len(r.Violations)
	if maxViolations > 0 && n > maxViolations {
		n = maxViolations
	}
	for _, v := range r.Violations[:n] {
		fmt.Fprintf(w, "\n%s", v.String())
	}
	if n < len(r.Violations) {
		fmt.Fprintf(w, "\n... and %d more violations\n", len(r.Violations)-n)
	}
	return nil
}

// Run executes the campaign: every seed generates a random circuit and
// stimulus, runs the selected checks, and shrinks any failure. Seeds fan
// out on the engine pool; the assembled report is independent of Jobs.
func Run(opts Options) (*Report, error) {
	if opts.Lib == nil {
		return nil, fmt.Errorf("conformance: Options.Lib is required")
	}
	opts.fill()
	checks, err := selectChecks(opts.Checks)
	if err != nil {
		return nil, err
	}
	stop := opts.Metrics.StartTimer("conformance/run")
	defer stop()

	results := make([]*seedEnv, len(opts.Seeds))
	err = engine.Run(opts.Ctx, opts.Jobs, len(opts.Seeds), func(ctx context.Context, i int) error {
		e := newSeedEnv(&opts, opts.Seeds[i])
		e.ctx = ctx
		opts.Metrics.Add(engine.ConfSeeds, 1)
		for _, ck := range checks {
			opts.Metrics.Add(engine.ConfChecks, 1)
			if err := ck.run(e); err != nil {
				return fmt.Errorf("conformance: seed %d, check %s: %w", e.seed, ck.Name, err)
			}
		}
		results[i] = e
		return nil
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{Seeds: len(opts.Seeds), Stats: make(map[string]*CheckStat)}
	for _, ck := range checks {
		rep.Checks = append(rep.Checks, ck.Name)
		rep.Stats[ck.Name] = &CheckStat{}
	}
	for _, e := range results {
		for name, st := range e.stats {
			agg := rep.Stats[name]
			agg.Checked += st.Checked
			agg.Violations += st.Violations
			agg.Skipped += st.Skipped
		}
		rep.Violations = append(rep.Violations, e.violations...)
	}
	sort.SliceStable(rep.Violations, func(i, j int) bool {
		a, b := rep.Violations[i], rep.Violations[j]
		if a.Seed != b.Seed {
			return a.Seed < b.Seed
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Net < b.Net
	})
	opts.Metrics.Add(engine.ConfViolations, int64(len(rep.Violations)))
	return rep, nil
}

// seedEnv carries one seed's lazily computed artefacts and its share of the
// report. A seedEnv is confined to one campaign worker, so no locking.
type seedEnv struct {
	opts *Options
	seed int64
	lib  *core.Library
	tol  Tolerances
	// ctx is the campaign worker's context, threaded into the flattened
	// transistor-level simulations (the longest-running solver calls).
	ctx context.Context

	stats      map[string]*CheckStat
	violations []Violation

	c    *netlist.Circuit
	cErr error
	vecs [][2]logicsim.Vector
	sims map[logicsim.Mode][]*logicsim.Result
	stas map[sta.Mode]*sta.Result

	// Flattened transistor-level results (see seedEnv.flat in checks.go):
	// a nil entry with a nil error is a skipped oversized trial.
	flats    []*flatsim.Result
	flatErrs []error
	flatDone bool
}

func newSeedEnv(opts *Options, seed int64) *seedEnv {
	return &seedEnv{
		opts:  opts,
		seed:  seed,
		lib:   opts.Lib,
		tol:   opts.Tol,
		stats: make(map[string]*CheckStat),
		sims:  make(map[logicsim.Mode][]*logicsim.Result),
		stas:  make(map[sta.Mode]*sta.Result),
	}
}

// rng returns a fresh deterministic source for one purpose ("salt") of this
// seed, so adding a consumer never perturbs the streams of the others.
func (e *seedEnv) rng(salt int64) *rand.Rand {
	return rand.New(rand.NewSource(e.seed*1000003 + salt))
}

func (e *seedEnv) stat(check string) *CheckStat {
	st := e.stats[check]
	if st == nil {
		st = &CheckStat{}
		e.stats[check] = st
	}
	return st
}

func (e *seedEnv) skip(check string, n int) {
	e.stat(check).Skipped += n
	e.opts.Metrics.Add(engine.ConfSkipped, int64(n))
}

func (e *seedEnv) report(v Violation) {
	v.Seed = e.seed
	e.stat(v.Check).Violations++
	e.violations = append(e.violations, v)
}

// circuit generates (once) the seed's random circuit.
func (e *seedEnv) circuit() (*netlist.Circuit, error) {
	if e.c == nil && e.cErr == nil {
		rng := e.rng(1)
		p := benchgen.RandomProfile(fmt.Sprintf("conf%d", e.seed), rng)
		e.c, e.cErr = benchgen.GenerateRand(p, rng)
	}
	return e.c, e.cErr
}

// vectors draws (once) the seed's SimTrials random vector pairs.
func (e *seedEnv) vectors() ([][2]logicsim.Vector, error) {
	if e.vecs != nil {
		return e.vecs, nil
	}
	c, err := e.circuit()
	if err != nil {
		return nil, err
	}
	rng := e.rng(2)
	e.vecs = make([][2]logicsim.Vector, e.opts.SimTrials)
	for i := range e.vecs {
		e.vecs[i] = [2]logicsim.Vector{
			logicsim.RandomVector(c, rng.Intn),
			logicsim.RandomVector(c, rng.Intn),
		}
	}
	return e.vecs, nil
}

// sim runs (once per mode) the gate-level timing simulation of every trial.
func (e *seedEnv) sim(mode logicsim.Mode) ([]*logicsim.Result, error) {
	if rs, ok := e.sims[mode]; ok {
		return rs, nil
	}
	c, err := e.circuit()
	if err != nil {
		return nil, err
	}
	vecs, err := e.vectors()
	if err != nil {
		return nil, err
	}
	rs := make([]*logicsim.Result, len(vecs))
	for i, vp := range vecs {
		rs[i], err = logicsim.Simulate(c, vp[0], vp[1], logicsim.Options{
			Lib: e.lib, Mode: mode, NCExtension: e.opts.NCExtension,
		})
		if err != nil {
			return nil, err
		}
	}
	e.sims[mode] = rs
	return rs, nil
}

// staResult runs (once per mode) the window propagation.
func (e *seedEnv) staResult(mode sta.Mode) (*sta.Result, error) {
	if r, ok := e.stas[mode]; ok {
		return r, nil
	}
	c, err := e.circuit()
	if err != nil {
		return nil, err
	}
	r, err := sta.Analyze(c, sta.Options{Lib: e.lib, Mode: mode, NCExtension: e.opts.NCExtension})
	if err != nil {
		return nil, err
	}
	e.stas[mode] = r
	return r, nil
}

// formatVector renders a vector pair compactly in PI order.
func formatVectors(c *netlist.Circuit, v1, v2 logicsim.Vector) (string, string) {
	var a, b strings.Builder
	for i, pi := range c.PIs {
		if i > 0 {
			a.WriteByte(' ')
			b.WriteByte(' ')
		}
		fmt.Fprintf(&a, "%s:%d", pi, v1[pi])
		fmt.Fprintf(&b, "%s:%d", pi, v2[pi])
	}
	return a.String(), b.String()
}

// benchText renders a circuit as .bench source.
func benchText(c *netlist.Circuit) string {
	var b strings.Builder
	if err := c.Write(&b); err != nil {
		return fmt.Sprintf("# write failed: %v", err)
	}
	return b.String()
}
