package conformance

import (
	"sstiming/internal/logicsim"
	"sstiming/internal/netlist"
)

// failPred re-evaluates a violation on a candidate (circuit, vector pair):
// true means the counterexample still reproduces. Errors are treated as
// "does not reproduce" so shrinking never turns one failure into another.
type failPred func(c *netlist.Circuit, v1, v2 logicsim.Vector) (bool, error)

// shrink minimises a failing (circuit, vector pair) for the given net and
// returns the formatted counterexample. Two passes run under a shared budget
// of predicate evaluations (Options.MaxShrink):
//
//  1. structural: replace the circuit by the fan-in cone of the failing net.
//     The cone must re-verify — fan-out counts (and with them every gate's
//     extra load) change when sibling gates disappear, so the violation may
//     be load-dependent and survive only in the full circuit.
//  2. stimulus: for each primary input still transitioning, try pinning the
//     second frame to the first (undoing the transition) and keep every
//     change that still reproduces.
//
// If nothing smaller reproduces, the original artefacts are returned.
func (e *seedEnv) shrink(c *netlist.Circuit, v1, v2 logicsim.Vector, net string, pred failPred) (bench, sv1, sv2 string) {
	budget := e.opts.MaxShrink
	try := func(tc *netlist.Circuit, tv1, tv2 logicsim.Vector) bool {
		if budget <= 0 {
			return false
		}
		budget--
		ok, err := pred(tc, tv1, tv2)
		return err == nil && ok
	}

	if cone, ok := fanInCone(c, net); ok && cone.NumGates() < c.NumGates() {
		// The vectors keep their full key set: the simulators only read
		// the cone's own PIs, and restricting the maps would change
		// nothing they observe.
		if try(cone, v1, v2) {
			c = cone
		}
	}

	for _, pi := range c.PIs {
		if v1[pi] == v2[pi] {
			continue
		}
		tv2 := make(logicsim.Vector, len(v2))
		for k, v := range v2 {
			tv2[k] = v
		}
		tv2[pi] = v1[pi]
		if try(c, v1, tv2) {
			v2 = tv2
		}
	}

	sv1, sv2 = formatVectors(c, v1, v2)
	return benchText(c), sv1, sv2
}

// fanInCone extracts the transitive fan-in cone of net as a standalone
// circuit: the same gates and names, primary inputs restricted to those
// feeding the cone, and net as the only primary output. ok is false when net
// is a primary input (nothing to extract) or the cone fails to build.
func fanInCone(c *netlist.Circuit, net string) (*netlist.Circuit, bool) {
	root, ok := c.Driver(net)
	if !ok {
		return nil, false
	}
	include := map[int]bool{root: true}
	stack := []int{root}
	for len(stack) > 0 {
		gi := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, in := range c.Gates[gi].Inputs {
			if d, ok := c.Driver(in); ok && !include[d] {
				include[d] = true
				stack = append(stack, d)
			}
		}
	}

	piNeeded := make(map[string]bool)
	for gi := range include {
		for _, in := range c.Gates[gi].Inputs {
			if _, driven := c.Driver(in); !driven {
				piNeeded[in] = true
			}
		}
	}

	cone := netlist.New(c.Name + "_cone")
	for _, pi := range c.PIs {
		if piNeeded[pi] {
			cone.AddPI(pi)
		}
	}
	// Gates go in topologically (every cone gate's driver set is inside the
	// cone by construction, so inputs always precede outputs).
	for _, gi := range c.TopoOrder() {
		if include[gi] {
			g := &c.Gates[gi]
			cone.AddGate(g.Kind, g.Output, g.Inputs...)
		}
	}
	cone.AddPO(net)
	if err := cone.Build(); err != nil {
		return nil, false
	}
	return cone, true
}
