package conformance

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"sstiming/internal/core"
	"sstiming/internal/engine"
	"sstiming/internal/netlist"
	"sstiming/internal/prechar"
)

// freshLib returns a private deep copy of the embedded library (prechar
// memoizes a shared pointer, and some tests corrupt coefficients).
func freshLib(t *testing.T) *core.Library {
	t.Helper()
	var buf bytes.Buffer
	if err := prechar.MustLibrary().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lib, err := core.LoadLibrary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

// TestConformance is the tier-1 entry point (wired into make verify): a
// short randomized campaign over every check must pass on a clean library.
func TestConformance(t *testing.T) {
	seeds := 6
	if testing.Short() {
		seeds = 3
	}
	m := engine.NewMetrics()
	rep, err := Run(Options{
		Lib:     prechar.MustLibrary(),
		Seeds:   SeedRange(seeds, 1),
		Jobs:    4,
		Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		var buf bytes.Buffer
		rep.WriteText(&buf, 5)
		t.Fatalf("clean-library campaign failed:\n%s", buf.String())
	}
	if rep.Seeds != seeds {
		t.Errorf("Seeds = %d, want %d", rep.Seeds, seeds)
	}
	if len(rep.Checks) != len(AllChecks()) {
		t.Errorf("ran %d checks, want %d", len(rep.Checks), len(AllChecks()))
	}
	for _, name := range rep.Checks {
		if rep.Stats[name].Checked == 0 {
			t.Errorf("check %s compared nothing", name)
		}
	}
	if got := m.Get(engine.ConfSeeds); got != int64(seeds) {
		t.Errorf("ConfSeeds metric = %d, want %d", got, seeds)
	}
	if m.Get(engine.ConfChecks) == 0 {
		t.Error("ConfChecks metric not incremented")
	}
}

// TestConformanceDetectsCorruption pins the harness's sensitivity: shifting
// one characterised coefficient must produce violations against the
// transistor-level oracle, each carrying a minimal parseable counterexample.
func TestConformanceDetectsCorruption(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	lib := freshLib(t)
	// 300 ps on NAND2's pin-0 to-controlling delay: far outside the
	// fitted model's real error, invisible to the self-consistency checks
	// (STA and the simulator share the corrupted surface) but flagrant
	// against the flattened transistor-level simulation.
	lib.Cells["NAND2"].CtrlPins[0].Delay.K[2] += 0.3

	rep, err := Run(Options{Lib: lib, Seeds: SeedRange(2, 1), Jobs: 2, MaxShrink: 24})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed() {
		t.Fatal("corrupted library passed the campaign")
	}
	if rep.Stats["logic-flat"].Violations == 0 {
		t.Error("corruption not caught by the transistor-level cross-check")
	}
	for _, v := range rep.Violations {
		if v.Check != "logic-flat" {
			continue
		}
		if v.Bench == "" || v.V1 == "" || v.V2 == "" {
			t.Fatalf("violation lacks a counterexample: %+v", v)
		}
		c, err := netlist.Parse("ce", strings.NewReader(v.Bench))
		if err != nil {
			t.Fatalf("counterexample bench does not parse: %v\n%s", err, v.Bench)
		}
		if c.NumGates() == 0 {
			t.Fatalf("counterexample has no gates:\n%s", v.Bench)
		}
		return
	}
	t.Fatal("no logic-flat violation found")
}

// TestRunIndependentOfJobs pins the determinism contract: the report,
// including shrunk counterexamples, must not depend on the worker count.
func TestRunIndependentOfJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	lib := freshLib(t)
	lib.Cells["NAND2"].CtrlPins[0].Delay.K[2] += 0.3
	opts := Options{Lib: lib, Seeds: SeedRange(3, 1)}

	opts.Jobs = 1
	serial, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Jobs = 4
	parallel, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Violations, parallel.Violations) {
		t.Errorf("violations differ across Jobs: %d serial vs %d parallel",
			len(serial.Violations), len(parallel.Violations))
	}
	if !reflect.DeepEqual(serial.Stats, parallel.Stats) {
		t.Errorf("stats differ across Jobs: %+v vs %+v", serial.Stats, parallel.Stats)
	}
}

func TestSelectChecks(t *testing.T) {
	all, err := selectChecks(nil)
	if err != nil || len(all) != len(AllChecks()) {
		t.Fatalf("selectChecks(nil) = %d checks, err %v", len(all), err)
	}
	one, err := selectChecks([]string{"sta-sound"})
	if err != nil || len(one) != 1 || one[0].Name != "sta-sound" {
		t.Fatalf("selectChecks(sta-sound) = %v, err %v", one, err)
	}
	if _, err := selectChecks([]string{"no-such-check"}); err == nil {
		t.Error("unknown check name accepted")
	}
}

func TestSeedRange(t *testing.T) {
	got := SeedRange(3, 10)
	want := []int64{10, 11, 12}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SeedRange(3, 10) = %v, want %v", got, want)
	}
}

func TestFanInCone(t *testing.T) {
	c := netlist.New("cone")
	c.AddPI("a")
	c.AddPI("b")
	c.AddPI("c")
	c.AddGate(netlist.Nand, "u", "a", "b")
	c.AddGate(netlist.Inv, "v", "c")
	c.AddGate(netlist.Nand, "w", "u", "a")
	c.AddGate(netlist.Nand, "z", "u", "v")
	c.AddPO("w")
	c.AddPO("z")
	if err := c.Build(); err != nil {
		t.Fatal(err)
	}

	cone, ok := fanInCone(c, "w")
	if !ok {
		t.Fatal("no cone for w")
	}
	if got := cone.NumGates(); got != 2 {
		t.Errorf("cone of w has %d gates, want 2 (u, w)", got)
	}
	if !reflect.DeepEqual(cone.PIs, []string{"a", "b"}) {
		t.Errorf("cone PIs = %v, want [a b]", cone.PIs)
	}
	if !reflect.DeepEqual(cone.POs, []string{"w"}) {
		t.Errorf("cone POs = %v, want [w]", cone.POs)
	}

	if _, ok := fanInCone(c, "a"); ok {
		t.Error("primary input should have no cone")
	}
}

func TestReportWriteText(t *testing.T) {
	rep := &Report{
		Seeds:  2,
		Checks: []string{"sta-sound"},
		Stats:  map[string]*CheckStat{"sta-sound": {Checked: 5, Violations: 1}},
		Violations: []Violation{{
			Check: "sta-sound", Seed: 1, Net: "n1",
			Detail: "event outside window",
			Bench:  "INPUT(a)\nOUTPUT(n1)\nn1 = NOT(a)\n",
			V1:     "a:0", V2: "a:1",
		}},
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"sta-sound", "FAIL", "5 checked", "seed 1", "net n1", "NOT(a)", "a:0"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if rep.Passed() {
		t.Error("report with violations reports Passed")
	}
}
