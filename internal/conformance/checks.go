package conformance

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"sstiming/internal/baseline"
	"sstiming/internal/core"
	"sstiming/internal/flatsim"
	"sstiming/internal/itr"
	"sstiming/internal/logicsim"
	"sstiming/internal/netlist"
	"sstiming/internal/nineval"
	"sstiming/internal/spice"
	"sstiming/internal/sta"
)

// Check is one cross-model invariant: a name for selection and reporting, a
// description for the CLI listing, and a run function that examines one
// seed's artefacts, recording violations (shrunk to minimal counterexamples)
// on the seedEnv. The run function returns an error only for harness
// failures — an oracle that cannot run at all — never for disagreements.
type Check struct {
	Name string
	Desc string
	run  func(e *seedEnv) error
}

// AllChecks returns every check in canonical execution order.
func AllChecks() []Check {
	return []Check{
		{
			Name: "logic-flat",
			Desc: "gate-level event times track the flattened transistor-level simulation within tolerance",
			run:  checkLogicFlat,
		},
		{
			Name: "flat-sta",
			Desc: "STA windows contain every transistor-level event (with model-error slack)",
			run:  checkFlatSTA,
		},
		{
			Name: "sta-sound",
			Desc: "STA min-max windows are valid and contain every simulated event (both delay models)",
			run:  checkSTASound,
		},
		{
			Name: "itr-subset",
			Desc: "ITR windows equal STA for the empty cube and shrink to subsets under full cubes",
			run:  checkITRSubset,
		},
		{
			Name: "itr-sound",
			Desc: "ITR-refined windows still contain the simulated event of the refining vector pair",
			run:  checkITRSound,
		},
		{
			Name: "model-vshape",
			Desc: "dR(δ) is V-shaped piecewise-linear in skew: minimum at zero, linear arms, pin-to-pin saturation",
			run:  checkModelVShape,
		},
		{
			Name: "model-corners",
			Desc: "timing functions are monotonic or bi-tonic per argument and MinOver/MaxOver find the true extrema",
			run:  checkModelCorners,
		},
		{
			Name: "model-ss-min",
			Desc: "simultaneous switching never predicts slower than the pin-to-pin baseline (to-controlling)",
			run:  checkModelSSMin,
		},
		{
			Name: "delta-full",
			Desc: "incremental timing-graph edits stay byte-identical to from-scratch recomputation after every step of a random edit/retract script",
			run:  checkDeltaFull,
		},
	}
}

// selectChecks resolves a name filter against AllChecks.
func selectChecks(names []string) ([]Check, error) {
	all := AllChecks()
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]Check, len(all))
	for _, ck := range all {
		byName[ck.Name] = ck
	}
	var out []Check
	for _, n := range names {
		ck, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("conformance: unknown check %q", n)
		}
		out = append(out, ck)
	}
	return out, nil
}

// flatStimulus is the PI stimulus flatsim applies by default; the gate-level
// runs compared against it must match.
var flatStimulus = sta.PITiming{
	ArrivalEarly: 1e-9, ArrivalLate: 1e-9,
	TransShort: 0.2e-9, TransLong: 0.2e-9,
}

// flat runs (once) the flattened transistor-level oracle on the first
// FlatTrials vector pairs. A nil entry with a nil error marks a trial
// skipped because the circuit exceeds the dense-solver limit.
func (e *seedEnv) flat() ([]*flatsim.Result, []error, error) {
	if e.flatDone {
		return e.flats, e.flatErrs, nil
	}
	c, err := e.circuit()
	if err != nil {
		return nil, nil, err
	}
	vecs, err := e.vectors()
	if err != nil {
		return nil, nil, err
	}
	n := e.opts.FlatTrials
	if n > len(vecs) {
		n = len(vecs)
	}
	if n < 0 {
		n = 0
	}
	e.flats = make([]*flatsim.Result, n)
	e.flatErrs = make([]error, n)
	for i := 0; i < n; i++ {
		fo := flatsim.Options{Ctx: e.ctx, Metrics: e.opts.Metrics}
		if e.opts.NewFaultHook != nil {
			fo.FaultHook = e.opts.NewFaultHook()
		}
		res, err := flatsim.Simulate(c, vecs[i][0], vecs[i][1], fo)
		if errors.Is(err, spice.ErrCancelled) {
			return nil, nil, err
		}
		if err != nil && spice.IsRecoverable(err) {
			// The solver never converged even through its recovery
			// ladder: the trial yields no oracle data, so the checks
			// count a skip (nil result, nil error) instead of blaming
			// the timing model for a numerical failure. Supervisors
			// (the service breaker) still get to see the failure.
			if e.opts.OnSolverError != nil {
				e.opts.OnSolverError(err)
			}
			continue
		}
		if errors.Is(err, flatsim.ErrTooLarge) {
			// Oversized generated circuit: the campaign counts the
			// skip instead of failing (satellite of the MaxNodes
			// hard-error path).
			continue
		}
		e.flats[i], e.flatErrs[i] = res, err
	}
	e.flatDone = true
	return e.flats, e.flatErrs, nil
}

// gateLevelFlat runs the gate-level simulation under flatsim's stimulus.
func (e *seedEnv) gateLevelFlat(c *netlist.Circuit, v1, v2 logicsim.Vector) (*logicsim.Result, error) {
	return logicsim.Simulate(c, v1, v2, logicsim.Options{
		Lib:         e.lib,
		Mode:        logicsim.ModeProposed,
		PIArrival:   flatStimulus.ArrivalEarly,
		PITrans:     flatStimulus.TransShort,
		NCExtension: e.opts.NCExtension,
	})
}

// checkLogicFlat cross-checks the two simulators: every transistor-level
// event must exist at gate level with the same direction, and the arrival
// disagreement must stay inside the (abs, rel) tolerance pair — the paper's
// accuracy claim on random topologies instead of fixed benches.
func checkLogicFlat(e *seedEnv) error {
	st := e.stat("logic-flat")
	c, err := e.circuit()
	if err != nil {
		return err
	}
	vecs, err := e.vectors()
	if err != nil {
		return err
	}
	flats, flatErrs, err := e.flat()
	if err != nil {
		return err
	}
	for trial := range flats {
		v1, v2 := vecs[trial][0], vecs[trial][1]
		if flatErrs[trial] != nil {
			// The analogue simulation disagreed with the expected
			// logic (or a transition failed to complete): that is a
			// conformance violation, not a harness error.
			sv1, sv2 := formatVectors(c, v1, v2)
			e.report(Violation{
				Check:  "logic-flat",
				Detail: fmt.Sprintf("transistor-level simulation rejected the gate-level expectation: %v", flatErrs[trial]),
				Bench:  benchText(c),
				V1:     sv1,
				V2:     sv2,
			})
			st.Checked++
			continue
		}
		if flats[trial] == nil {
			e.skip("logic-flat", 1)
			continue
		}
		gate, err := e.gateLevelFlat(c, v1, v2)
		if err != nil {
			return err
		}
		for _, net := range sortedEventNets(flats[trial].Events) {
			fe := flats[trial].Events[net]
			st.Checked++
			ge, ok := gate.Events[net]
			detail := ""
			switch {
			case !ok:
				detail = "transistor level switches but the gate-level model does not"
			case fe.Rising != ge.Rising:
				detail = fmt.Sprintf("direction mismatch: flat %s, gate %s", dir(fe.Rising), dir(ge.Rising))
			default:
				abs := math.Abs(fe.Arrival - ge.Arrival)
				rel := abs / math.Max(fe.Arrival-flatStimulus.ArrivalEarly, 50e-12)
				if abs > e.tol.FlatAbs && rel > e.tol.FlatRel {
					detail = fmt.Sprintf("arrival flat %.4f ns vs gate %.4f ns (abs %.1f ps, rel %.0f%%)",
						fe.Arrival*1e9, ge.Arrival*1e9, abs*1e12, rel*100)
				}
			}
			if detail == "" {
				continue
			}
			net := net
			bench, sv1, sv2 := e.shrink(c, v1, v2, net, func(c *netlist.Circuit, v1, v2 logicsim.Vector) (bool, error) {
				flat, err := flatsim.Simulate(c, v1, v2, flatsim.Options{})
				if err != nil {
					return false, nil // smaller circuit no longer reproduces
				}
				fe, ok := flat.Events[net]
				if !ok {
					return false, nil
				}
				gate, err := e.gateLevelFlat(c, v1, v2)
				if err != nil {
					return false, nil
				}
				ge, ok := gate.Events[net]
				if !ok || fe.Rising != ge.Rising {
					return true, nil
				}
				abs := math.Abs(fe.Arrival - ge.Arrival)
				rel := abs / math.Max(fe.Arrival-flatStimulus.ArrivalEarly, 50e-12)
				return abs > e.tol.FlatAbs && rel > e.tol.FlatRel, nil
			})
			e.report(Violation{Check: "logic-flat", Net: net, Detail: detail, Bench: bench, V1: sv1, V2: sv2})
		}
	}
	return nil
}

// checkFlatSTA checks STA windows against transistor-level reality: the
// windows are computed from the fitted model, so containment holds only up
// to the model's accuracy — the FlatWindow slack.
func checkFlatSTA(e *seedEnv) error {
	st := e.stat("flat-sta")
	c, err := e.circuit()
	if err != nil {
		return err
	}
	vecs, err := e.vectors()
	if err != nil {
		return err
	}
	flats, flatErrs, err := e.flat()
	if err != nil {
		return err
	}
	res, err := sta.Analyze(c, sta.Options{
		Lib: e.lib, Mode: sta.ModeProposed, PI: flatStimulus, NCExtension: e.opts.NCExtension,
	})
	if err != nil {
		return err
	}
	// Slack grows with logic depth: fitted-model error accumulates along a
	// path, and the gate-level buffer approximation adds up to one inverter
	// delay per stage (see Tolerances.FlatPerStage).
	slackAt := func(c *netlist.Circuit, net string) float64 {
		s := e.tol.Window + e.tol.FlatWindow
		if gi, ok := c.Driver(net); ok {
			s += e.tol.FlatPerStage * float64(c.Level(gi))
		}
		return s
	}
	for trial := range flats {
		if flats[trial] == nil {
			if flatErrs[trial] == nil {
				e.skip("flat-sta", 1)
			}
			continue
		}
		v1, v2 := vecs[trial][0], vecs[trial][1]
		for _, net := range sortedEventNets(flats[trial].Events) {
			ev := flats[trial].Events[net]
			st.Checked++
			slack := slackAt(c, net)
			w, ok := res.Window(net, ev.Rising)
			if ok && ev.Arrival >= w.AS-slack && ev.Arrival <= w.AL+slack {
				continue
			}
			detail := fmt.Sprintf("transistor-level arrival %.4f ns outside STA window [%.4f, %.4f] ns (slack %.0f ps)",
				ev.Arrival*1e9, w.AS*1e9, w.AL*1e9, slack*1e12)
			if !ok {
				detail = "no STA window for a net that switches at transistor level"
			}
			net, rising := net, ev.Rising
			bench, sv1, sv2 := e.shrink(c, v1, v2, net, func(c *netlist.Circuit, v1, v2 logicsim.Vector) (bool, error) {
				flat, err := flatsim.Simulate(c, v1, v2, flatsim.Options{})
				if err != nil {
					return false, nil
				}
				ev, ok := flat.Events[net]
				if !ok || ev.Rising != rising {
					return false, nil
				}
				res, err := sta.Analyze(c, sta.Options{
					Lib: e.lib, Mode: sta.ModeProposed, PI: flatStimulus, NCExtension: e.opts.NCExtension,
				})
				if err != nil {
					return false, err
				}
				w, ok := res.Window(net, rising)
				s := slackAt(c, net)
				return !ok || ev.Arrival < w.AS-s || ev.Arrival > w.AL+s, nil
			})
			e.report(Violation{Check: "flat-sta", Net: net, Detail: detail, Bench: bench, V1: sv1, V2: sv2})
		}
	}
	return nil
}

// checkSTASound verifies window soundness: every line's windows are
// structurally valid, and every gate-level simulated event (arrival AND
// transition time) lies inside the matching-mode window.
func checkSTASound(e *seedEnv) error {
	st := e.stat("sta-sound")
	c, err := e.circuit()
	if err != nil {
		return err
	}
	vecs, err := e.vectors()
	if err != nil {
		return err
	}
	modes := []struct {
		sta sta.Mode
		sim logicsim.Mode
	}{
		{sta.ModeProposed, logicsim.ModeProposed},
		{sta.ModePinToPin, logicsim.ModePinToPin},
	}
	for _, m := range modes {
		res, err := e.staResult(m.sta)
		if err != nil {
			return err
		}
		for _, net := range c.Nets() {
			lt := res.Lines[net]
			if lt == nil {
				continue
			}
			st.Checked++
			if !lt.Rise.Valid() || !lt.Fall.Valid() {
				e.report(Violation{
					Check:  "sta-sound",
					Net:    net,
					Detail: fmt.Sprintf("%v: structurally invalid window rise=%+v fall=%+v", m.sta, lt.Rise, lt.Fall),
					Bench:  benchText(c),
				})
			}
		}
		sims, err := e.sim(m.sim)
		if err != nil {
			return err
		}
		for trial, sim := range sims {
			v1, v2 := vecs[trial][0], vecs[trial][1]
			for _, net := range sortedEventNets(sim.Events) {
				ev := sim.Events[net]
				st.Checked++
				w, ok := res.Window(net, ev.Rising)
				bad := !ok ||
					ev.Arrival < w.AS-e.tol.Window || ev.Arrival > w.AL+e.tol.Window ||
					ev.Trans < w.TS-e.tol.Window || ev.Trans > w.TL+e.tol.Window
				if !bad {
					continue
				}
				detail := fmt.Sprintf("%v: event A=%.4f T=%.4f ns outside window A[%.4f, %.4f] T[%.4f, %.4f] ns",
					m.sta, ev.Arrival*1e9, ev.Trans*1e9, w.AS*1e9, w.AL*1e9, w.TS*1e9, w.TL*1e9)
				if !ok {
					detail = fmt.Sprintf("%v: no window for a switching net", m.sta)
				}
				net, m := net, m
				bench, sv1, sv2 := e.shrink(c, v1, v2, net, func(c *netlist.Circuit, v1, v2 logicsim.Vector) (bool, error) {
					res, err := sta.Analyze(c, sta.Options{Lib: e.lib, Mode: m.sta, NCExtension: e.opts.NCExtension})
					if err != nil {
						return false, err
					}
					sim, err := logicsim.Simulate(c, v1, v2, logicsim.Options{Lib: e.lib, Mode: m.sim, NCExtension: e.opts.NCExtension})
					if err != nil {
						return false, err
					}
					ev, switched := sim.Events[net]
					if !switched {
						return false, nil
					}
					w, ok := res.Window(net, ev.Rising)
					return !ok ||
						ev.Arrival < w.AS-e.tol.Window || ev.Arrival > w.AL+e.tol.Window ||
						ev.Trans < w.TS-e.tol.Window || ev.Trans > w.TL+e.tol.Window, nil
				})
				e.report(Violation{Check: "sta-sound", Net: net, Detail: detail, Bench: bench, V1: sv1, V2: sv2})
			}
		}
	}
	return nil
}

// fullCube encodes a fully specified vector pair as a nineval cube.
func fullCube(c *netlist.Circuit, v1, v2 logicsim.Vector) nineval.Cube {
	cube := nineval.Cube{}
	for _, pi := range c.PIs {
		cube[pi] = nineval.Value{V1: nineval.Frame(v1[pi]), V2: nineval.Frame(v2[pi])}
	}
	return cube
}

// windowSubset reports whether inner ⊆ outer within tol.
func windowSubset(inner, outer sta.Window, tol float64) bool {
	return inner.AS >= outer.AS-tol && inner.AL <= outer.AL+tol &&
		inner.TS >= outer.TS-tol && inner.TL <= outer.TL+tol
}

// checkITRSubset verifies the two halves of the paper's "STA is a special
// case of ITR" statement: refining with the empty cube reproduces the STA
// windows exactly, and refining with a full vector-pair cube only ever
// shrinks them.
func checkITRSubset(e *seedEnv) error {
	st := e.stat("itr-subset")
	c, err := e.circuit()
	if err != nil {
		return err
	}
	vecs, err := e.vectors()
	if err != nil {
		return err
	}
	staRes, err := e.staResult(sta.ModeProposed)
	if err != nil {
		return err
	}

	iopts := itr.Options{Lib: e.lib, Mode: sta.ModeProposed, NCExtension: e.opts.NCExtension}

	// Empty cube: exact equality (float identity up to 1 fs).
	empty, err := itr.Refine(c, nineval.Cube{}, iopts)
	if err != nil {
		return err
	}
	for _, net := range c.Nets() {
		li, lt := empty.Lines[net], staRes.Lines[net]
		if li == nil || lt == nil {
			continue
		}
		st.Checked++
		if !windowSubset(li.Rise, lt.Rise, 1e-15) || !windowSubset(lt.Rise, li.Rise, 1e-15) ||
			!windowSubset(li.Fall, lt.Fall, 1e-15) || !windowSubset(lt.Fall, li.Fall, 1e-15) {
			e.report(Violation{
				Check:  "itr-subset",
				Net:    net,
				Detail: fmt.Sprintf("empty-cube ITR differs from STA: itr rise %+v fall %+v, sta rise %+v fall %+v", li.Rise, li.Fall, lt.Rise, lt.Fall),
				Bench:  benchText(c),
			})
		}
	}

	for trial, vp := range vecs {
		v1, v2 := vp[0], vp[1]
		ref, err := itr.Refine(c, fullCube(c, v1, v2), iopts)
		if err != nil {
			return fmt.Errorf("trial %d: %w", trial, err)
		}
		for _, net := range c.Nets() {
			li, lt := ref.Lines[net], staRes.Lines[net]
			if li == nil || lt == nil {
				continue
			}
			for _, d := range []struct {
				rising bool
				has    bool
				in     sta.Window
				out    sta.Window
			}{
				{true, li.HasRise(), li.Rise, lt.Rise},
				{false, li.HasFall(), li.Fall, lt.Fall},
			} {
				if !d.has {
					continue
				}
				st.Checked++
				if windowSubset(d.in, d.out, e.tol.Window) {
					continue
				}
				detail := fmt.Sprintf("%s: refined window %+v escapes STA window %+v", dir(d.rising), d.in, d.out)
				net, rising := net, d.rising
				bench, sv1, sv2 := e.shrink(c, v1, v2, net, func(c *netlist.Circuit, v1, v2 logicsim.Vector) (bool, error) {
					staR, err := sta.Analyze(c, sta.Options{Lib: e.lib, Mode: sta.ModeProposed, NCExtension: e.opts.NCExtension})
					if err != nil {
						return false, err
					}
					ref, err := itr.Refine(c, fullCube(c, v1, v2), iopts)
					if err != nil {
						return false, nil // shrunk cube may become inconsistent
					}
					in, ok := ref.Window(net, rising)
					if !ok {
						return false, nil
					}
					out, ok := staR.Window(net, rising)
					if !ok {
						return true, nil
					}
					return !windowSubset(in, out, e.tol.Window), nil
				})
				e.report(Violation{Check: "itr-subset", Net: net, Detail: detail, Bench: bench, V1: sv1, V2: sv2})
			}
		}
	}
	return nil
}

// checkITRSound verifies refinement soundness: with the cube fully
// specifying the vector pair, the refined windows must still contain the
// event the timing simulator produces for that exact pair, and a line the
// simulator switches must never carry state SNo.
func checkITRSound(e *seedEnv) error {
	st := e.stat("itr-sound")
	c, err := e.circuit()
	if err != nil {
		return err
	}
	vecs, err := e.vectors()
	if err != nil {
		return err
	}
	sims, err := e.sim(logicsim.ModeProposed)
	if err != nil {
		return err
	}
	iopts := itr.Options{Lib: e.lib, Mode: sta.ModeProposed, NCExtension: e.opts.NCExtension}
	for trial, sim := range sims {
		v1, v2 := vecs[trial][0], vecs[trial][1]
		ref, err := itr.Refine(c, fullCube(c, v1, v2), iopts)
		if err != nil {
			return fmt.Errorf("trial %d: %w", trial, err)
		}
		for _, net := range sortedEventNets(sim.Events) {
			ev := sim.Events[net]
			st.Checked++
			w, ok := ref.Window(net, ev.Rising)
			bad := !ok ||
				ev.Arrival < w.AS-e.tol.Window || ev.Arrival > w.AL+e.tol.Window ||
				ev.Trans < w.TS-e.tol.Window || ev.Trans > w.TL+e.tol.Window
			if !bad {
				continue
			}
			detail := fmt.Sprintf("event A=%.4f T=%.4f ns outside refined window A[%.4f, %.4f] T[%.4f, %.4f] ns",
				ev.Arrival*1e9, ev.Trans*1e9, w.AS*1e9, w.AL*1e9, w.TS*1e9, w.TL*1e9)
			if !ok {
				detail = "refinement excludes a transition the simulator produces (reachable event excluded)"
			}
			net := net
			bench, sv1, sv2 := e.shrink(c, v1, v2, net, func(c *netlist.Circuit, v1, v2 logicsim.Vector) (bool, error) {
				sim, err := logicsim.Simulate(c, v1, v2, logicsim.Options{Lib: e.lib, Mode: logicsim.ModeProposed, NCExtension: e.opts.NCExtension})
				if err != nil {
					return false, err
				}
				ev, switched := sim.Events[net]
				if !switched {
					return false, nil
				}
				ref, err := itr.Refine(c, fullCube(c, v1, v2), iopts)
				if err != nil {
					return false, nil
				}
				w, ok := ref.Window(net, ev.Rising)
				return !ok ||
					ev.Arrival < w.AS-e.tol.Window || ev.Arrival > w.AL+e.tol.Window ||
					ev.Trans < w.TS-e.tol.Window || ev.Trans > w.TL+e.tol.Window, nil
			})
			e.report(Violation{Check: "itr-sound", Net: net, Detail: detail, Bench: bench, V1: sv1, V2: sv2})
		}
	}
	return nil
}

// sortedCells returns the library's pair-characterised cells in name order.
func sortedCells(lib *core.Library, minInputs int) []*core.CellModel {
	var names []string
	for name, cell := range lib.Cells {
		if cell.N >= minInputs {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	cells := make([]*core.CellModel, len(names))
	for i, n := range names {
		cells[i] = lib.Cells[n]
	}
	return cells
}

// gridRange is the transition-time domain the model checks sample; it spans
// the characterisation grid.
const (
	gridLo = 0.1e-9
	gridHi = 1.5e-9
)

// checkModelVShape samples the paper's Figure 2 structure for random pairs
// and transition times: the delay-vs-skew curve must saturate exactly at the
// single-input pin-to-pin delays beyond the fitted thresholds, take its
// minimum at zero skew (Claim 1), and be linear on each arm; the output
// transition time must take its minimum at the (clamped) fitted SKmin.
func checkModelVShape(e *seedEnv) error {
	st := e.stat("model-vshape")
	rng := e.rng(3)
	tol := e.tol.Model
	for _, cell := range sortedCells(e.lib, 2) {
		if len(cell.Pairs) == 0 {
			e.skip("model-vshape", 1)
			continue
		}
		for sample := 0; sample < 4; sample++ {
			x := rng.Intn(cell.N)
			y := rng.Intn(cell.N - 1)
			if y >= x {
				y++
			}
			if cell.Pair(x, y) == nil || cell.Pair(y, x) == nil {
				e.skip("model-vshape", 1)
				continue
			}
			tx := gridLo + rng.Float64()*(gridHi-gridLo)
			ty := gridLo + rng.Float64()*(gridHi-gridLo)
			st.Checked++

			sx, sy := armThresholds(cell, x, y, tx, ty)
			dAt := func(skew float64) float64 { return cell.DelayCtrl2(x, y, tx, ty, skew, 0) }
			dx := cell.CtrlPins[x].DelayAt(tx, 0)
			dy := cell.CtrlPins[y].DelayAt(ty, 0)

			fail := func(format string, args ...any) {
				e.report(Violation{
					Check: "model-vshape",
					Net:   cell.Name,
					Detail: fmt.Sprintf("pair (%d,%d) tx=%.3f ns ty=%.3f ns: %s",
						x, y, tx*1e9, ty*1e9, fmt.Sprintf(format, args...)),
				})
			}

			// Saturation: beyond the fitted thresholds the lagging
			// input must not matter at all.
			if got := dAt(sx * 1.5); math.Abs(got-dx) > tol {
				fail("no saturation at skew %.3f ns: d=%.6f ns, pin-to-pin %.6f ns", sx*1.5e9, got*1e9, dx*1e9)
				continue
			}
			if got := dAt(sy * 1.5); math.Abs(got-dy) > tol {
				fail("no saturation at skew %.3f ns: d=%.6f ns, pin-to-pin %.6f ns", sy*1.5e9, got*1e9, dy*1e9)
				continue
			}

			// Claim 1: zero skew is the global minimum.
			d0 := dAt(0)
			bad := false
			for i := 0; i <= 8; i++ {
				s := sy + float64(i)/8*(sx-sy)
				if d := dAt(s); d < d0-tol {
					fail("minimum not at zero skew: d(%.3f ns)=%.6f ns < d(0)=%.6f ns", s*1e9, d*1e9, d0*1e9)
					bad = true
					break
				}
			}
			if bad {
				continue
			}

			// Piecewise linearity on each arm.
			if !linearOn(dAt, 0, sx, tol) {
				fail("positive arm [0, %.3f ns] is not linear", sx*1e9)
				continue
			}
			if !linearOn(dAt, sy, 0, tol) {
				fail("negative arm [%.3f ns, 0] is not linear", sy*1e9)
				continue
			}

			// Output transition time: minimum at the clamped SKmin.
			tAt := func(skew float64) float64 { return cell.TransCtrl2(x, y, tx, ty, skew, 0) }
			skm := clampSkew(cell.SKminAt(x, y, tx, ty), sy, sx)
			t0 := tAt(skm)
			for i := 0; i <= 8; i++ {
				s := sy + float64(i)/8*(sx-sy)
				if tv := tAt(s); tv < t0-tol {
					fail("transition-time minimum not at SKmin=%.3f ns: t(%.3f ns)=%.6f < %.6f ns", skm*1e9, s*1e9, tv*1e9, t0*1e9)
					break
				}
			}
		}
	}
	return nil
}

// armThresholds reproduces the model's clamped V-shape arm endpoints.
func armThresholds(cell *core.CellModel, x, y int, tx, ty float64) (sx, sy float64) {
	const minWidth = 1e-12
	sx = cell.Pair(x, y).SX.Eval(tx, ty)
	if sx < minWidth {
		sx = minWidth
	}
	sy = -cell.Pair(y, x).SX.Eval(ty, tx)
	if sy > -minWidth {
		sy = -minWidth
	}
	return sx, sy
}

// clampSkew clamps a skew strictly inside the arms (the model's convention).
func clampSkew(s, lo, hi float64) float64 {
	const minWidth = 1e-12
	if s > hi-minWidth {
		s = hi - minWidth
	}
	if s < lo+minWidth {
		s = lo + minWidth
	}
	return s
}

// linearOn checks collinearity of f at the quarter points of [lo, hi].
func linearOn(f func(float64) float64, lo, hi, tol float64) bool {
	a, m, b := f(lo+0.25*(hi-lo)), f(lo+0.5*(hi-lo)), f(lo+0.75*(hi-lo))
	return math.Abs(m-(a+b)/2) <= tol
}

// checkModelCorners verifies the corner-identification machinery of Section
// 4.2 / Figure 9: MinOver/MaxOver of every pin timing quadratic must match a
// dense sweep, and every pair surface must be monotonic or bi-tonic along
// each argument (at most one direction change) — the property STA's
// endpoint-or-peak rule depends on.
func checkModelCorners(e *seedEnv) error {
	st := e.stat("model-corners")
	rng := e.rng(4)
	tol := e.tol.Model
	for _, cell := range sortedCells(e.lib, 1) {
		for pin := 0; pin < cell.N; pin++ {
			for _, tbl := range []struct {
				name string
				pins []core.PinTiming
			}{{"ctrl", cell.CtrlPins}, {"nonctrl", cell.NonCtrlPins}} {
				for _, fn := range []struct {
					name string
					q    core.Quad
				}{{"delay", tbl.pins[pin].Delay}, {"trans", tbl.pins[pin].Trans}} {
					lo := gridLo + rng.Float64()*(gridHi-gridLo)*0.5
					hi := lo + (gridHi-lo)*rng.Float64()
					st.Checked++
					_, wantMax := fn.q.MaxOver(lo, hi)
					_, wantMin := fn.q.MinOver(lo, hi)
					denseMax, denseMin := math.Inf(-1), math.Inf(1)
					for i := 0; i <= 40; i++ {
						v := fn.q.Eval(lo + float64(i)/40*(hi-lo))
						denseMax = math.Max(denseMax, v)
						denseMin = math.Min(denseMin, v)
					}
					if denseMax > wantMax+tol || denseMin < wantMin-tol {
						e.report(Violation{
							Check: "model-corners",
							Net:   cell.Name,
							Detail: fmt.Sprintf("pin %d %s/%s over [%.3f, %.3f] ns: MinOver/MaxOver [%.6f, %.6f] misses dense extrema [%.6f, %.6f] ns",
								pin, tbl.name, fn.name, lo*1e9, hi*1e9, wantMin*1e9, wantMax*1e9, denseMin*1e9, denseMax*1e9),
						})
					}
				}
			}
		}
		for pi := range cell.Pairs {
			pe := &cell.Pairs[pi]
			other := gridLo + rng.Float64()*(gridHi-gridLo)
			for _, sf := range []struct {
				name string
				eval func(tx, ty float64) float64
			}{
				{"D0", pe.Timing.D0.Eval},
				{"T0", pe.Timing.T0.Eval},
				{"SX", pe.Timing.SX.Eval},
				{"SKmin", pe.Timing.SKmin.Eval},
			} {
				for axis := 0; axis < 2; axis++ {
					st.Checked++
					f := func(t float64) float64 {
						if axis == 0 {
							return sf.eval(t, other)
						}
						return sf.eval(other, t)
					}
					if n := directionChanges(f, gridLo, gridHi, 24); n > 1 {
						e.report(Violation{
							Check: "model-corners",
							Net:   cell.Name,
							Detail: fmt.Sprintf("pair (%d,%d) surface %s is neither monotonic nor bi-tonic along axis %d (%d direction changes)",
								pe.X, pe.Y, sf.name, axis, n),
						})
					}
				}
			}
		}
	}
	return nil
}

// directionChanges counts strict slope sign changes of f sampled at n+1
// points of [lo, hi], ignoring sub-noise differences.
func directionChanges(f func(float64) float64, lo, hi float64, n int) int {
	const noise = 1e-20
	changes, lastSign := 0, 0
	prev := f(lo)
	for i := 1; i <= n; i++ {
		v := f(lo + float64(i)/float64(n)*(hi-lo))
		d := v - prev
		prev = v
		sign := 0
		if d > noise {
			sign = 1
		} else if d < -noise {
			sign = -1
		}
		if sign != 0 {
			if lastSign != 0 && sign != lastSign {
				changes++
			}
			lastSign = sign
		}
	}
	return changes
}

// checkModelSSMin verifies the defining inequality of the proposed model
// against the pin-to-pin baseline: for any pair of simultaneous
// to-controlling transitions, the simultaneous-switching delay never
// exceeds the pin-to-pin prediction, and the k>=3 extended reduction never
// exceeds the best single-input candidate.
func checkModelSSMin(e *seedEnv) error {
	st := e.stat("model-ss-min")
	rng := e.rng(5)
	tol := e.tol.Model
	p2p := baseline.PinToPin{}
	for _, cell := range sortedCells(e.lib, 2) {
		for sample := 0; sample < 8; sample++ {
			x := rng.Intn(cell.N)
			y := rng.Intn(cell.N - 1)
			if y >= x {
				y++
			}
			tx := gridLo + rng.Float64()*(gridHi-gridLo)
			ty := gridLo + rng.Float64()*(gridHi-gridLo)
			skew := (rng.Float64()*2 - 1) * 2e-9
			st.Checked++
			ss := cell.DelayCtrl2(x, y, tx, ty, skew, 0)
			pp := p2p.CtrlDelay2(cell, x, y, tx, ty, skew)
			if ss > pp+tol {
				e.report(Violation{
					Check: "model-ss-min",
					Net:   cell.Name,
					Detail: fmt.Sprintf("pair (%d,%d) tx=%.3f ty=%.3f skew=%.3f ns: simultaneous delay %.6f ns exceeds pin-to-pin %.6f ns",
						x, y, tx*1e9, ty*1e9, skew*1e9, ss*1e9, pp*1e9),
				})
			}
		}

		// k-input reduction: the response computed from k >= 2 events must
		// not arrive later than the pin-to-pin answer — the earliest
		// event alone driving the output (the baseline's convention).
		for sample := 0; sample < 4; sample++ {
			k := 2 + rng.Intn(cell.N-1)
			pins := rng.Perm(cell.N)[:k]
			events := make([]core.InputEvent, k)
			first := core.InputEvent{Arrival: math.Inf(1)}
			for i, pin := range pins {
				ev := core.InputEvent{
					Pin:     pin,
					Arrival: rng.Float64() * 1e-9,
					Trans:   gridLo + rng.Float64()*(gridHi-gridLo),
				}
				events[i] = ev
				if ev.Arrival < first.Arrival {
					first = ev
				}
			}
			p2pArr := first.Arrival + cell.CtrlPins[first.Pin].DelayAt(first.Trans, 0)
			st.Checked++
			resp, err := cell.CtrlResponse(events, 0)
			if err != nil {
				return err
			}
			if resp.Arrival > p2pArr+tol {
				e.report(Violation{
					Check: "model-ss-min",
					Net:   cell.Name,
					Detail: fmt.Sprintf("%d-event response %.6f ns is slower than the pin-to-pin answer %.6f ns (events %+v)",
						k, resp.Arrival*1e9, p2pArr*1e9, events),
				})
			}
		}
	}
	return nil
}

// sortedEventNets returns the event map's keys in deterministic order.
func sortedEventNets[E any](events map[string]E) []string {
	nets := make([]string, 0, len(events))
	for net := range events {
		nets = append(nets, net)
	}
	sort.Strings(nets)
	return nets
}

func dir(rising bool) string {
	if rising {
		return "rise"
	}
	return "fall"
}
