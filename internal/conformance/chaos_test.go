package conformance

import (
	"context"
	"errors"
	"testing"

	"sstiming/internal/engine"
	"sstiming/internal/faultinject"
	"sstiming/internal/prechar"
	"sstiming/internal/spice"
)

// TestChaosCampaignSkipsUnconvergedFlatTrials drives persistent solver
// faults into every flattened transistor-level simulation: the campaign must
// complete without harness errors, count the lost trials as skips, and must
// NOT blame the timing model (no violations from the flat checks).
func TestChaosCampaignSkipsUnconvergedFlatTrials(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// Rate 0.01 with thousands of steps per flattened transient: every
	// trial faults early and persistently, so none can converge.
	plan := faultinject.NewPlan(11, 0.01, spice.FaultNoConverge, true)
	met := engine.NewMetrics()
	rep, err := Run(Options{
		Lib:          prechar.MustLibrary(),
		Seeds:        SeedRange(3, 1),
		Jobs:         1,
		Checks:       []string{"logic-flat", "flat-sta"},
		NewFaultHook: plan.NextHook,
		Metrics:      met,
	})
	if err != nil {
		t.Fatalf("campaign did not survive fault injection: %v", err)
	}
	if plan.Injected() == 0 {
		t.Fatal("plan injected no faults — vacuous test")
	}
	if !rep.Passed() {
		t.Errorf("injected solver failures were reported as model violations:\n%+v", rep.Violations)
	}
	skipped := 0
	for _, st := range rep.Stats {
		skipped += st.Skipped
	}
	if skipped == 0 {
		t.Error("no skips recorded although every flat trial was faulted")
	}
	if got := met.Get(engine.SpiceUnrecovered); got == 0 {
		t.Error("SpiceUnrecovered metric not fed by the campaign")
	}
}

// TestChaosCampaignMatchesCleanRunUnderRecoverableFaults injects one-shot
// faults (always recovered inside the solver) and checks the campaign
// reaches the same verdict as a clean run.
func TestChaosCampaignMatchesCleanRunUnderRecoverableFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	run := func(hook func() spice.FaultHook) *Report {
		t.Helper()
		rep, err := Run(Options{
			Lib:          prechar.MustLibrary(),
			Seeds:        SeedRange(2, 1),
			Jobs:         1,
			Checks:       []string{"logic-flat"},
			NewFaultHook: hook,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	clean := run(nil)
	plan := faultinject.NewPlan(5, 0.02, spice.FaultNoConverge, false)
	faulted := run(plan.NextHook)
	if plan.Injected() == 0 {
		t.Fatal("plan injected no faults — vacuous test")
	}
	if clean.Passed() != faulted.Passed() {
		t.Errorf("verdict changed under recoverable faults: clean %v, faulted %v",
			clean.Passed(), faulted.Passed())
	}
	cs, fs := clean.Stats["logic-flat"], faulted.Stats["logic-flat"]
	if cs.Checked != fs.Checked || cs.Skipped != fs.Skipped {
		t.Errorf("effort changed under recoverable faults: clean %+v, faulted %+v", cs, fs)
	}
}

// TestChaosCampaignCancellation cancels the campaign up front: the error
// must carry the cancellation taxonomy, not a model violation or a
// numerical-failure disguise.
func TestChaosCampaignCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(Options{
		Lib:   prechar.MustLibrary(),
		Seeds: SeedRange(2, 1),
		Jobs:  1,
		Ctx:   ctx,
	})
	if err == nil {
		t.Fatal("cancelled campaign returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false for %v", err)
	}
}
