package conformance

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"sstiming/internal/core"
	"sstiming/internal/netlist"
	"sstiming/internal/nineval"
	"sstiming/internal/sta"
	"sstiming/internal/tgraph"
	"sstiming/internal/twindow"
)

// The delta-full check cross-checks the incremental timing graph against
// from-scratch analysis: a random edit/retract script (cube assigns and
// retractions, PI-stimulus overrides, same-arity gate swaps) is applied
// step by step to one persistent tgraph.Graph, and after EVERY step each
// line's window state must be byte-identical (struct equality on the float
// fields, no tolerance) to a graph rebuilt from scratch under the same cube,
// stimulus and circuit. A divergence is shrunk on two axes before being
// reported: the circuit collapses to the divergent net's fan-in cone, and
// the edit script is greedily minimised to the steps that still reproduce.

// editKind enumerates the delta-script edit kinds.
type editKind int

const (
	editAssign editKind = iota
	editRetract
	editSwap
	editSetPI
)

// editStep is one step of a delta script.
type editStep struct {
	kind editKind
	net  string
	val  nineval.Value    // editAssign
	gk   netlist.GateKind // editSwap
	pi   twindow.PITiming // editSetPI
}

func (s editStep) String() string {
	switch s.kind {
	case editAssign:
		return fmt.Sprintf("assign %s=%d%d", s.net, s.val.V1, s.val.V2)
	case editRetract:
		return fmt.Sprintf("retract %s", s.net)
	case editSwap:
		return fmt.Sprintf("swap %s->%s", s.net, s.gk)
	case editSetPI:
		return fmt.Sprintf("pi %s=[%.3g,%.3g,%.3g,%.3g]",
			s.net, s.pi.ArrivalEarly, s.pi.ArrivalLate, s.pi.TransShort, s.pi.TransLong)
	default:
		return fmt.Sprintf("editStep(%d)", int(s.kind))
	}
}

func formatScript(steps []editStep) string {
	parts := make([]string, len(steps))
	for i, s := range steps {
		parts[i] = s.String()
	}
	return strings.Join(parts, "; ")
}

// copyCircuit deep-copies a circuit so gate swaps never disturb the
// seedEnv's cached instance shared with the other checks.
func copyCircuit(c *netlist.Circuit) (*netlist.Circuit, error) {
	cp := netlist.New(c.Name)
	for _, pi := range c.PIs {
		cp.AddPI(pi)
	}
	for _, gi := range c.TopoOrder() {
		g := &c.Gates[gi]
		cp.AddGate(g.Kind, g.Output, g.Inputs...)
	}
	for _, po := range c.POs {
		cp.AddPO(po)
	}
	if err := cp.Build(); err != nil {
		return nil, err
	}
	return cp, nil
}

// deltaGraphOptions is the graph configuration the check runs under.
func (e *seedEnv) deltaGraphOptions(perPI map[string]twindow.PITiming) tgraph.Options {
	return tgraph.Options{
		Lib:         e.lib,
		Mode:        sta.ModeProposed,
		PerPI:       perPI,
		NCExtension: e.opts.NCExtension,
	}
}

// applyEditStep applies one script step to the live graph, maintaining the
// shadow PI-stimulus map for from-scratch rebuilds. Steps only ever touch
// primary inputs (assign/retract/set_pi) or swap same-arity duals, so a
// failure is a harness bug, not a model disagreement.
func applyEditStep(g *tgraph.Graph, st editStep, perPI map[string]twindow.PITiming) error {
	switch st.kind {
	case editAssign:
		raw := g.RawCube().Clone()
		raw[st.net] = st.val
		return g.SetCube(nil, raw)
	case editRetract:
		raw := g.RawCube().Clone()
		delete(raw, st.net)
		return g.SetCube(nil, raw)
	case editSwap:
		return g.SwapGate(nil, st.net, st.gk)
	case editSetPI:
		if err := g.SetPI(nil, st.net, st.pi); err != nil {
			return err
		}
		perPI[st.net] = st.pi
		return nil
	default:
		return fmt.Errorf("unknown edit kind %d", st.kind)
	}
}

// swapCandidates lists the gates whose same-arity dual is characterised in
// the library (Inv/Buf share the INV cell; a NAND4 is swappable only when a
// NOR4 cell exists). Eligibility is symmetric, so the set is stable as the
// script swaps gates back and forth.
func swapCandidates(c *netlist.Circuit, lib *core.Library) []int {
	var out []int
	for gi := range c.Gates {
		g := &c.Gates[gi]
		switch g.Kind {
		case netlist.Inv, netlist.Buf:
			out = append(out, gi)
		default:
			n := len(g.Inputs)
			_, nand := lib.Cells[fmt.Sprintf("NAND%d", n)]
			_, nor := lib.Cells[fmt.Sprintf("NOR%d", n)]
			if nand && nor {
				out = append(out, gi)
			}
		}
	}
	return out
}

// randomEditStep draws the next script step. Assigns dominate (they are the
// ATPG workload); retractions exercise the undo path, swaps the ECO path,
// stimulus overrides the PI path.
func randomEditStep(rng *rand.Rand, c *netlist.Circuit, assigned []string, swappable []int) editStep {
	values := []nineval.Value{
		nineval.V00, nineval.V01, nineval.V0X,
		nineval.V10, nineval.V11, nineval.V1X,
		nineval.VX0, nineval.VX1, nineval.VXX,
	}
	duals := map[netlist.GateKind]netlist.GateKind{
		netlist.Inv: netlist.Buf, netlist.Buf: netlist.Inv,
		netlist.Nand: netlist.Nor, netlist.Nor: netlist.Nand,
	}
	switch r := rng.Float64(); {
	case r < 0.55 || (r < 0.75 && len(assigned) == 0):
		pi := c.PIs[rng.Intn(len(c.PIs))]
		return editStep{kind: editAssign, net: pi, val: values[rng.Intn(len(values))]}
	case r < 0.75:
		return editStep{kind: editRetract, net: assigned[rng.Intn(len(assigned))]}
	case r < 0.88 && len(swappable) > 0:
		g := &c.Gates[swappable[rng.Intn(len(swappable))]]
		return editStep{kind: editSwap, net: g.Output, gk: duals[g.Kind]}
	default:
		pi := c.PIs[rng.Intn(len(c.PIs))]
		early := rng.Float64() * 0.4e-9
		return editStep{kind: editSetPI, net: pi, pi: twindow.PITiming{
			ArrivalEarly: early,
			ArrivalLate:  early + rng.Float64()*0.3e-9,
			TransShort:   0.1e-9 + rng.Float64()*0.1e-9,
			TransLong:    0.2e-9 + rng.Float64()*0.15e-9,
		}}
	}
}

// divergentNet compares every line of the incremental graph against the
// from-scratch reference; the first differing net (in deterministic order)
// is returned, "" when byte-identical. The comparison is struct equality —
// both paths share twindow.PropagateGate, so even the float bits must agree.
func divergentNet(inc, ref *tgraph.Graph) string {
	if inc.NumLines() != ref.NumLines() {
		return "<line-count>"
	}
	worst := ""
	inc.Lines(func(net string, li twindow.LineInfo) {
		rli, ok := ref.Line(net)
		if !ok || rli != li {
			if worst == "" || net < worst {
				worst = net
			}
		}
	})
	return worst
}

// replayDiverges rebuilds the check from nothing on a private copy of the
// pristine circuit — replay the script incrementally, rebuild from scratch,
// compare — and reports whether any line diverges. Scripts referencing nets
// absent from the candidate circuit, or otherwise failing to apply, count
// as "does not reproduce" so shrinking never trades one failure for
// another.
func (e *seedEnv) replayDiverges(pristine *netlist.Circuit, steps []editStep) bool {
	cc, err := copyCircuit(pristine)
	if err != nil {
		return false
	}
	perPI := make(map[string]twindow.PITiming)
	g, err := tgraph.New(cc, e.deltaGraphOptions(nil))
	if err != nil {
		return false
	}
	for _, st := range steps {
		if err := applyEditStep(g, st, perPI); err != nil {
			return false
		}
	}
	ref, err := tgraph.NewWithCube(cc, g.RawCube().Clone(), e.deltaGraphOptions(perPI))
	if err != nil {
		return false
	}
	return divergentNet(g, ref) != ""
}

// stepTouches reports whether the step references a net present in the
// candidate circuit (used when projecting a script onto a fan-in cone).
func stepTouches(c *netlist.Circuit, st editStep) bool {
	switch st.kind {
	case editSwap:
		_, ok := c.Driver(st.net)
		return ok
	default:
		return c.IsPI(st.net)
	}
}

// shrinkDelta minimises a divergent (circuit, edit script) pair under the
// shared MaxShrink predicate budget: first the circuit collapses to the
// divergent net's fan-in cone (projecting the script onto it), then the
// script is greedily reduced step by step. pred is injected for testability;
// production passes e.replayDiverges.
func (e *seedEnv) shrinkDelta(pristine *netlist.Circuit, steps []editStep, net string,
	pred func(c *netlist.Circuit, steps []editStep) bool) (*netlist.Circuit, []editStep) {
	budget := e.opts.MaxShrink
	try := func(c *netlist.Circuit, s []editStep) bool {
		if budget <= 0 {
			return false
		}
		budget--
		return pred(c, s)
	}

	if cone, ok := fanInCone(pristine, net); ok && cone.NumGates() < pristine.NumGates() {
		projected := make([]editStep, 0, len(steps))
		for _, st := range steps {
			if stepTouches(cone, st) {
				projected = append(projected, st)
			}
		}
		if try(cone, projected) {
			pristine, steps = cone, projected
		}
	}

	for i := 0; i < len(steps); {
		candidate := make([]editStep, 0, len(steps)-1)
		candidate = append(candidate, steps[:i]...)
		candidate = append(candidate, steps[i+1:]...)
		if try(pristine, candidate) {
			steps = candidate
			continue // re-test the step now occupying slot i
		}
		i++
	}
	return pristine, steps
}

// checkDeltaFull is the incremental-vs-full cross-check (DESIGN.md §12): a
// random edit/retract script against one persistent graph, verified
// byte-identical to from-scratch recomputation after every step.
func checkDeltaFull(e *seedEnv) error {
	const name = "delta-full"
	const scriptLen = 12
	base, err := e.circuit()
	if err != nil {
		return err
	}
	if len(base.PIs) == 0 || base.NumGates() == 0 {
		e.skip(name, 1)
		return nil
	}
	// Pristine copy: gate swaps must never leak into the seedEnv's cached
	// circuit, which the other checks share.
	pristine, err := copyCircuit(base)
	if err != nil {
		return err
	}
	working, err := copyCircuit(pristine)
	if err != nil {
		return err
	}
	g, err := tgraph.New(working, e.deltaGraphOptions(nil))
	if err != nil {
		return err
	}

	rng := e.rng(9)
	perPI := make(map[string]twindow.PITiming)
	swappable := swapCandidates(working, e.lib)
	var steps []editStep
	for i := 0; i < scriptLen; i++ {
		var assigned []string
		for net := range g.RawCube() {
			assigned = append(assigned, net)
		}
		sort.Strings(assigned) // deterministic retract targets for a fixed seed
		st := randomEditStep(rng, working, assigned, swappable)
		if err := applyEditStep(g, st, perPI); err != nil {
			return fmt.Errorf("%s: step %d (%s): %w", name, i, st, err)
		}
		steps = append(steps, st)

		refPI := make(map[string]twindow.PITiming, len(perPI))
		for k, v := range perPI {
			refPI[k] = v
		}
		ref, err := tgraph.NewWithCube(working, g.RawCube().Clone(), e.deltaGraphOptions(refPI))
		if err != nil {
			return fmt.Errorf("%s: step %d (%s) reference rebuild: %w", name, i, st, err)
		}
		e.stat(name).Checked += g.NumLines()
		if net := divergentNet(g, ref); net != "" {
			li, _ := g.Line(net)
			rli, _ := ref.Line(net)
			minC, minScript := e.shrinkDelta(pristine, steps, net, e.replayDiverges)
			e.report(Violation{
				Check: name,
				Net:   net,
				Detail: fmt.Sprintf(
					"after step %d (%s) incremental diverged from from-scratch:\n  incremental %+v\n  reference   %+v\n  minimal script: %s",
					i, st, li, rli, formatScript(minScript)),
				Bench: benchText(minC),
			})
			return nil // one shrunk counterexample per seed is enough
		}
	}
	return nil
}
