// Package reqcache is the timing service's content-addressed analysis
// cache: deterministic analysis results (simultaneous-switching windows are
// pure functions of netlist × library × options) keyed on the SHA-256 of a
// canonical netlist encoding plus the serving library's fingerprint, bounded
// by an entry count and a byte budget with LRU eviction, and fronted by a
// singleflight layer so N concurrent identical requests share exactly one
// engine run.
//
// Exactness is the design point: because the delay model is deterministic,
// a cache hit is byte-identical to a cold run (modulo per-request identity
// fields the handlers re-stamp), never an approximation — so the cache needs
// no TTL and no staleness tolerance, only invalidation when the library
// fingerprint changes under a hot reload.
package reqcache

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"strings"

	"sstiming/internal/netlist"
)

// Key is a content-address: the SHA-256 of every response-relevant input
// (canonical netlist, library fingerprint, analysis options). Comparable,
// so it can key a map directly.
type Key [sha256.Size]byte

// String returns the short hex form (for logs and tests).
func (k Key) String() string { return fmt.Sprintf("%x", k[:8]) }

// KeyFrom hashes the given parts into a Key. Parts are length-framed, so
// ("ab","c") and ("a","bc") produce different keys.
func KeyFrom(parts ...string) Key {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%d:", len(p))
		h.Write([]byte(p))
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// CanonicalNetlist renders a circuit in a canonical text form: two parses of
// semantically identical netlists (same declarations, gate lines in any
// order) produce identical bytes.
//
// Canonicalization rules (DESIGN.md §13):
//
//   - one line per element, '\n'-terminated, no whitespace variance;
//   - PI and PO declarations keep their declaration order — primary-output
//     order is response-relevant (worst-path ties break in PO order), so it
//     is part of the address, not normalized away;
//   - gate lines are sorted by output net name — well-defined because a
//     built circuit has exactly one driver per net — so the textual order of
//     gate statements never splits the cache;
//   - gate input order is preserved exactly: input index is the cell pin
//     position (stack position in the paper's Figure 3), so reordering
//     inputs is a semantically different circuit;
//   - the circuit name is excluded: the service names every parsed request
//     identically, and a comment-level rename must not split the cache.
//
// The circuit must be structurally valid (Build/EnsureBuilt succeeded);
// CanonicalNetlist does not re-validate.
func CanonicalNetlist(c *netlist.Circuit) []byte {
	var b strings.Builder
	// Rough pre-size: ~16 bytes per declaration, ~32 per gate.
	b.Grow(16*(len(c.PIs)+len(c.POs)) + 32*len(c.Gates))
	for _, pi := range c.PIs {
		b.WriteString("i ")
		b.WriteString(pi)
		b.WriteByte('\n')
	}
	for _, po := range c.POs {
		b.WriteString("o ")
		b.WriteString(po)
		b.WriteByte('\n')
	}
	order := make([]int, len(c.Gates))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return c.Gates[order[a]].Output < c.Gates[order[b]].Output
	})
	for _, gi := range order {
		g := &c.Gates[gi]
		b.WriteString("g ")
		b.WriteString(g.Kind.String())
		b.WriteByte(' ')
		b.WriteString(g.Output)
		b.WriteString(" =")
		for _, in := range g.Inputs {
			b.WriteByte(' ')
			b.WriteString(in)
		}
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// CanonicalCube renders a net→two-frame-value cube map canonically: sorted
// "net=vv" pairs joined by ','. Used to address /refine requests.
func CanonicalCube(cube map[string]string) string {
	if len(cube) == 0 {
		return ""
	}
	pairs := make([]string, 0, len(cube))
	for net, v := range cube {
		pairs = append(pairs, net+"="+v)
	}
	sort.Strings(pairs)
	return strings.Join(pairs, ",")
}

// CanonicalNets renders a net-filter list canonically: sorted, deduplicated,
// comma-joined. Two requests filtering the same net set share an address.
func CanonicalNets(nets []string) string {
	if len(nets) == 0 {
		return ""
	}
	s := append([]string(nil), nets...)
	sort.Strings(s)
	out := s[:1]
	for _, n := range s[1:] {
		if n != out[len(out)-1] {
			out = append(out, n)
		}
	}
	return strings.Join(out, ",")
}
