package reqcache

import (
	"container/list"
	"context"
	"sync"

	"sstiming/internal/engine"
)

// Status reports how a Do call was satisfied.
type Status int

const (
	// Miss: this caller was the singleflight leader and ran compute.
	Miss Status = iota
	// Hit: the value was already resident.
	Hit
	// Coalesced: another caller's in-flight compute produced the value;
	// this caller only waited.
	Coalesced
)

// String returns the status label used in X-Cache headers and metrics.
func (s Status) String() string {
	switch s {
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	default:
		return "miss"
	}
}

// entry is one resident value.
type entry struct {
	key  Key
	fp   string // library fingerprint, for reload invalidation
	val  any
	size int64
}

// flight is one in-progress compute other callers may wait on. The leader
// fills val/err and closes done exactly once.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// Cache is a bounded content-addressed cache with singleflight semantics.
// Values are treated as immutable once inserted: callers must not mutate a
// returned value (handlers copy-and-restamp instead).
//
// Entries are addressed by their canonical key (hash of the canonicalized
// request semantics). On top of that sits the alias layer: a map from
// raw-request keys (hash of the request bytes as posted) to canonical keys.
// Canonicalizing costs a full netlist parse, which on small circuits rivals
// the engine run itself, so for the common hot pattern — a client re-posting
// byte-identical requests — GetVia answers from the raw hash alone and the
// parse never happens. Aliases are pure acceleration: a dangling or missing
// alias just drops the caller down to the canonical path.
type Cache struct {
	maxEntries    int
	maxBytes      int64
	maxEntryBytes int64
	aliasCap      int
	met           *engine.Metrics

	mu      sync.Mutex
	lru     *list.List // front = most recent; values are *entry
	byKey   map[Key]*list.Element
	bytes   int64
	flights map[Key]*flight
	aliases map[Key]Key // raw-bytes key -> canonical key
}

// New builds a cache holding at most maxEntries values and maxBytes total
// value bytes (either <= 0 means "no bound on that axis"; a cache with both
// bounds absent still works, it just never evicts). met may be nil.
func New(maxEntries int, maxBytes int64, met *engine.Metrics) *Cache {
	// Many raw spellings can share one canonical entry, so the alias map is
	// allowed a few times the entry budget; it holds two hashes per slot, so
	// even the fallback cap is tens of kilobytes, not a second cache.
	aliasCap := 4 * maxEntries
	if aliasCap <= 0 {
		aliasCap = 4096
	}
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		aliasCap:   aliasCap,
		met:        met,
		lru:        list.New(),
		byKey:      make(map[Key]*list.Element),
		flights:    make(map[Key]*flight),
		aliases:    make(map[Key]Key),
	}
}

// SetMaxEntryBytes installs a per-entry admission cap: a value whose size
// exceeds n bytes is still computed and returned to its caller, but never
// inserted — one pathological response (a windows dump for a huge netlist,
// say) must not evict the whole working set to cache something that will
// likely never repeat. n <= 0 (the default) means no per-entry bound.
// Refusals are counted under service/cache_oversized.
func (c *Cache) SetMaxEntryBytes(n int64) {
	c.mu.Lock()
	c.maxEntryBytes = n
	c.mu.Unlock()
}

// Do returns the value addressed by key, computing it at most once across
// concurrent callers:
//
//   - resident key: the value is returned immediately (Hit);
//   - in-flight key: the caller waits for the leader's result (Coalesced)
//     or for its own ctx — an expired waiter gets its ctx error, never a
//     partial result;
//   - otherwise the caller becomes the leader, runs compute under its own
//     ctx, and the successful result is inserted and shared (Miss).
//
// Failed computes are never cached, and a leader's error is never handed to
// its followers: a cancelled (or otherwise failed) leader must not poison
// the burst, so each follower retries — the first to re-arrive becomes the
// new leader and re-runs the engine. compute's (value, size) is the value to
// cache and its byte-accounting weight.
func (c *Cache) Do(ctx context.Context, key Key, fp string, compute func(ctx context.Context) (any, int64, error)) (any, Status, error) {
	for {
		c.mu.Lock()
		if el, ok := c.byKey[key]; ok {
			c.lru.MoveToFront(el)
			val := el.Value.(*entry).val
			c.mu.Unlock()
			c.met.Add(engine.CacheHits, 1)
			return val, Hit, nil
		}
		if f, ok := c.flights[key]; ok {
			c.mu.Unlock()
			select {
			case <-f.done:
				if f.err == nil {
					c.met.Add(engine.CacheCoalesced, 1)
					return f.val, Coalesced, nil
				}
				// Leader failed: its error (a context cancellation, a
				// deadline 504, a contained panic) belongs to the leader's
				// request alone. Loop and recompute.
				continue
			case <-ctx.Done():
				return nil, Coalesced, ctx.Err()
			}
		}
		f := &flight{done: make(chan struct{})}
		c.flights[key] = f
		c.mu.Unlock()

		val, size, err := compute(ctx)
		f.val, f.err = val, err
		c.mu.Lock()
		delete(c.flights, key)
		if err == nil {
			c.insertLocked(key, fp, val, size)
		}
		c.mu.Unlock()
		close(f.done)
		c.met.Add(engine.CacheMisses, 1)
		return val, Miss, err
	}
}

// GetVia returns the resident value behind an alias of raw, promoting it —
// the exact-bytes fast path (counted as a Hit). A dangling alias (its
// canonical entry was evicted or invalidated) is dropped and reported as a
// miss, sending the caller down the canonical parse-and-Do path.
func (c *Cache) GetVia(raw Key) (any, bool) {
	c.mu.Lock()
	ck, ok := c.aliases[raw]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	el, ok := c.byKey[ck]
	if !ok {
		delete(c.aliases, raw)
		c.mu.Unlock()
		return nil, false
	}
	c.lru.MoveToFront(el)
	val := el.Value.(*entry).val
	c.mu.Unlock()
	c.met.Add(engine.CacheHits, 1)
	return val, true
}

// SetAlias records raw -> canonical so the next byte-identical request skips
// canonicalization. Aliasing a key with no resident entry is refused (the
// value was never cached — e.g. it alone exceeded the byte budget). A full
// alias map is reset wholesale rather than evicted entry-wise: aliases carry
// no computation worth preserving, only a parse.
func (c *Cache) SetAlias(raw, canonical Key) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byKey[canonical]; !ok {
		return
	}
	if len(c.aliases) >= c.aliasCap {
		c.aliases = make(map[Key]Key, c.aliasCap)
	}
	c.aliases[raw] = canonical
}

// AliasLen returns the resident alias count.
func (c *Cache) AliasLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.aliases)
}

// Get returns the resident value for key, if any, promoting it. Lookup
// without compute — for tests and metrics probes.
func (c *Cache) Get(key Key) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// insertLocked adds the value and evicts from the LRU tail until both
// budgets hold. A value alone exceeding the byte budget — or the per-entry
// admission cap — is not cached at all (caching it would immediately evict
// everything including itself); the refusal is counted as oversized.
func (c *Cache) insertLocked(key Key, fp string, val any, size int64) {
	if size < 0 {
		size = 0
	}
	if (c.maxBytes > 0 && size > c.maxBytes) ||
		(c.maxEntryBytes > 0 && size > c.maxEntryBytes) {
		c.met.Add(engine.CacheOversized, 1)
		return
	}
	if el, ok := c.byKey[key]; ok {
		// Benign race: a previous flight for the same key already landed.
		old := el.Value.(*entry)
		c.bytes += size - old.size
		old.val, old.size, old.fp = val, size, fp
		c.lru.MoveToFront(el)
	} else {
		c.byKey[key] = c.lru.PushFront(&entry{key: key, fp: fp, val: val, size: size})
		c.bytes += size
	}
	for (c.maxEntries > 0 && c.lru.Len() > c.maxEntries) ||
		(c.maxBytes > 0 && c.bytes > c.maxBytes) {
		el := c.lru.Back()
		if el == nil {
			break
		}
		c.removeLocked(el)
		c.met.Add(engine.CacheEvictions, 1)
	}
}

func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.lru.Remove(el)
	delete(c.byKey, e.key)
	c.bytes -= e.size
}

// Invalidate drops every entry whose library fingerprint differs from
// keepFP and returns how many were dropped (also counted under
// service/cache_invalidations). Called after a successful hot reload:
// stale-fingerprint entries are unreachable anyway (the fingerprint is part
// of every key), but dropping them returns their memory immediately and
// makes staleness impossible by construction rather than by key hygiene.
func (c *Cache) Invalidate(keepFP string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		if el.Value.(*entry).fp != keepFP {
			c.removeLocked(el)
			n++
		}
		el = next
	}
	if n > 0 {
		// Raw keys embed the fingerprint too, so stale aliases could never
		// hit — but they would sit as dead weight until the cap reset, so
		// drop the whole layer now. Live aliases re-learn on first re-post.
		c.aliases = make(map[Key]Key, c.aliasCap)
	}
	c.met.Add(engine.CacheInvalidations, int64(n))
	return n
}

// Len returns the resident entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Bytes returns the resident value bytes.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
