package reqcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sstiming/internal/engine"
)

func bg() context.Context { return context.Background() }

func computeVal(v string, size int64, runs *atomic.Int64) func(context.Context) (any, int64, error) {
	return func(context.Context) (any, int64, error) {
		if runs != nil {
			runs.Add(1)
		}
		return v, size, nil
	}
}

func TestDoMissThenHit(t *testing.T) {
	met := engine.NewMetrics()
	c := New(8, 0, met)
	var runs atomic.Int64
	k := KeyFrom("a")

	v, st, err := c.Do(bg(), k, "fp1", computeVal("one", 3, &runs))
	if err != nil || v != "one" || st != Miss {
		t.Fatalf("first Do = (%v, %v, %v), want (one, Miss, nil)", v, st, err)
	}
	v, st, err = c.Do(bg(), k, "fp1", computeVal("two", 3, &runs))
	if err != nil || v != "one" || st != Hit {
		t.Fatalf("second Do = (%v, %v, %v), want cached (one, Hit, nil)", v, st, err)
	}
	if runs.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1", runs.Load())
	}
	if met.Get(engine.CacheHits) != 1 || met.Get(engine.CacheMisses) != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1",
			met.Get(engine.CacheHits), met.Get(engine.CacheMisses))
	}
	if c.Len() != 1 || c.Bytes() != 3 {
		t.Fatalf("Len/Bytes = %d/%d, want 1/3", c.Len(), c.Bytes())
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := New(8, 0, nil)
	k := KeyFrom("boom")
	var runs atomic.Int64
	fail := func(context.Context) (any, int64, error) {
		runs.Add(1)
		return nil, 0, errors.New("engine rejected it")
	}
	if _, _, err := c.Do(bg(), k, "fp", fail); err == nil {
		t.Fatal("error swallowed")
	}
	if _, _, err := c.Do(bg(), k, "fp", fail); err == nil {
		t.Fatal("error cached as success")
	}
	if runs.Load() != 2 {
		t.Fatalf("failed compute ran %d times, want 2 (errors never cached)", runs.Load())
	}
	if c.Len() != 0 {
		t.Fatalf("failed compute left %d entries resident", c.Len())
	}
}

func TestLRUEntryCap(t *testing.T) {
	met := engine.NewMetrics()
	c := New(2, 0, met)
	for i := 0; i < 3; i++ {
		k := KeyFrom(fmt.Sprintf("k%d", i))
		if _, _, err := c.Do(bg(), k, "fp", computeVal(fmt.Sprint(i), 1, nil)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d after inserting 3 into cap-2 cache, want 2", c.Len())
	}
	if _, ok := c.Get(KeyFrom("k0")); ok {
		t.Fatal("oldest entry survived past the entry cap")
	}
	if _, ok := c.Get(KeyFrom("k2")); !ok {
		t.Fatal("newest entry was evicted")
	}
	if met.Get(engine.CacheEvictions) != 1 {
		t.Fatalf("evictions = %d, want 1", met.Get(engine.CacheEvictions))
	}

	// Touching k1 promotes it; inserting k3 must now evict k2, not k1.
	c.Get(KeyFrom("k1"))
	if _, _, err := c.Do(bg(), KeyFrom("k3"), "fp", computeVal("3", 1, nil)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(KeyFrom("k1")); !ok {
		t.Fatal("recently-touched entry was evicted instead of the LRU one")
	}
	if _, ok := c.Get(KeyFrom("k2")); ok {
		t.Fatal("LRU entry survived")
	}
}

func TestByteBudget(t *testing.T) {
	met := engine.NewMetrics()
	c := New(0, 10, met)
	for i := 0; i < 3; i++ {
		k := KeyFrom(fmt.Sprintf("b%d", i))
		if _, _, err := c.Do(bg(), k, "fp", computeVal(fmt.Sprint(i), 4, nil)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Bytes() > 10 {
		t.Fatalf("resident bytes %d exceed the 10-byte budget", c.Bytes())
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (4+4 fits, 4+4+4 does not)", c.Len())
	}

	// A value alone above the budget is not cached at all — and evicts
	// nothing.
	before := c.Len()
	if _, st, err := c.Do(bg(), KeyFrom("huge"), "fp", computeVal("x", 100, nil)); err != nil || st != Miss {
		t.Fatalf("oversized Do = (%v, %v)", st, err)
	}
	if c.Len() != before {
		t.Fatalf("oversized value disturbed residency: %d -> %d", before, c.Len())
	}
	if _, ok := c.Get(KeyFrom("huge")); ok {
		t.Fatal("value above the whole byte budget was cached")
	}
}

// TestMaxEntryBytesAdmission: with a per-entry cap installed, an oversized
// value is computed and served every time — never cached, never disturbing
// resident entries — and each refusal is counted as oversized. Values at or
// under the cap cache normally.
func TestMaxEntryBytesAdmission(t *testing.T) {
	met := engine.NewMetrics()
	c := New(8, 0, met)
	c.SetMaxEntryBytes(10)

	// At the cap: cached normally.
	if _, st, err := c.Do(bg(), KeyFrom("small"), "fp", computeVal("s", 10, nil)); err != nil || st != Miss {
		t.Fatalf("small Do = (%v, %v)", st, err)
	}
	if _, ok := c.Get(KeyFrom("small")); !ok {
		t.Fatal("at-cap value was refused admission")
	}

	// Over the cap: served, not cached, recompute on every call.
	var runs atomic.Int64
	big := computeVal("B", 11, &runs)
	for i := 1; i <= 2; i++ {
		v, st, err := c.Do(bg(), KeyFrom("big"), "fp", big)
		if err != nil || v != "B" || st != Miss {
			t.Fatalf("big Do #%d = (%v, %v, %v), want (B, Miss, nil)", i, v, st, err)
		}
	}
	if runs.Load() != 2 {
		t.Fatalf("oversized compute ran %d times, want 2 (never cached)", runs.Load())
	}
	if _, ok := c.Get(KeyFrom("big")); ok {
		t.Fatal("over-cap value was cached")
	}
	if c.Len() != 1 || c.Bytes() != 10 {
		t.Fatalf("Len/Bytes = %d/%d, want 1/10 (oversized value must not disturb residency)",
			c.Len(), c.Bytes())
	}
	if met.Get(engine.CacheOversized) != 2 {
		t.Fatalf("oversized = %d, want 2", met.Get(engine.CacheOversized))
	}

	// The oversized value is also un-aliasable: there is no resident entry
	// to alias to.
	c.SetAlias(KeyFrom("raw-big"), KeyFrom("big"))
	if _, ok := c.GetVia(KeyFrom("raw-big")); ok {
		t.Fatal("alias to an uncached oversized value resolved")
	}
}

func TestInvalidateByFingerprint(t *testing.T) {
	met := engine.NewMetrics()
	c := New(0, 0, met)
	c.Do(bg(), KeyFrom("old1"), "fpA", computeVal("1", 1, nil))
	c.Do(bg(), KeyFrom("old2"), "fpA", computeVal("2", 1, nil))
	c.Do(bg(), KeyFrom("new1"), "fpB", computeVal("3", 1, nil))

	if n := c.Invalidate("fpB"); n != 2 {
		t.Fatalf("Invalidate dropped %d entries, want 2", n)
	}
	if _, ok := c.Get(KeyFrom("old1")); ok {
		t.Fatal("stale-fingerprint entry survived invalidation")
	}
	if _, ok := c.Get(KeyFrom("new1")); !ok {
		t.Fatal("current-fingerprint entry was dropped")
	}
	if met.Get(engine.CacheInvalidations) != 2 {
		t.Fatalf("invalidations = %d, want 2", met.Get(engine.CacheInvalidations))
	}
	if c.Len() != 1 || c.Bytes() != 1 {
		t.Fatalf("Len/Bytes = %d/%d after invalidation, want 1/1", c.Len(), c.Bytes())
	}
}

// TestSingleflightSharesOneCompute: N concurrent callers for the same key
// observe exactly one compute; everyone gets the same value.
func TestSingleflightSharesOneCompute(t *testing.T) {
	met := engine.NewMetrics()
	c := New(8, 0, met)
	k := KeyFrom("shared")
	var runs atomic.Int64
	gate := make(chan struct{})
	compute := func(context.Context) (any, int64, error) {
		runs.Add(1)
		<-gate // hold the flight open until every goroutine has joined
		return "val", 3, nil
	}

	const n = 16
	var started, done sync.WaitGroup
	results := make([]string, n)
	statuses := make([]Status, n)
	for i := 0; i < n; i++ {
		started.Add(1)
		done.Add(1)
		go func(i int) {
			defer done.Done()
			started.Done()
			v, st, err := c.Do(bg(), k, "fp", compute)
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			results[i] = v.(string)
			statuses[i] = st
		}(i)
	}
	started.Wait()
	time.Sleep(20 * time.Millisecond) // let followers reach the flight wait
	close(gate)
	done.Wait()

	if runs.Load() != 1 {
		t.Fatalf("compute ran %d times under %d concurrent callers, want 1", runs.Load(), n)
	}
	misses, coalesced, hits := 0, 0, 0
	for i := range results {
		if results[i] != "val" {
			t.Fatalf("goroutine %d got %q", i, results[i])
		}
		switch statuses[i] {
		case Miss:
			misses++
		case Coalesced:
			coalesced++
		case Hit:
			hits++
		}
	}
	if misses != 1 {
		t.Fatalf("%d leaders, want exactly 1 (coalesced %d, hits %d)", misses, coalesced, hits)
	}
	if coalesced+hits != n-1 {
		t.Fatalf("followers = %d coalesced + %d hits, want %d total", coalesced, hits, n-1)
	}
}

// TestCancelledLeaderDoesNotPoisonFollowers: the leader's context is
// cancelled mid-compute; followers must not receive the leader's context
// error — one of them re-runs the compute and succeeds.
func TestCancelledLeaderDoesNotPoisonFollowers(t *testing.T) {
	c := New(8, 0, nil)
	k := KeyFrom("poison")
	var runs atomic.Int64
	leaderIn := make(chan struct{})
	leaderCtx, cancelLeader := context.WithCancel(bg())

	compute := func(ctx context.Context) (any, int64, error) {
		n := runs.Add(1)
		if n == 1 {
			close(leaderIn)
			<-ctx.Done() // the leader dies with its own context error
			return nil, 0, ctx.Err()
		}
		return "recovered", 9, nil
	}

	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := c.Do(leaderCtx, k, "fp", compute)
		leaderErr <- err
	}()
	<-leaderIn

	const followers = 4
	var wg sync.WaitGroup
	errs := make([]error, followers)
	vals := make([]any, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], _, errs[i] = c.Do(bg(), k, "fp", compute)
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // followers join the leader's flight
	cancelLeader()
	wg.Wait()

	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader error = %v, want its own context.Canceled", err)
	}
	for i := 0; i < followers; i++ {
		if errs[i] != nil {
			t.Fatalf("follower %d inherited an error: %v (leader cancellation must not poison followers)", i, errs[i])
		}
		if vals[i] != "recovered" {
			t.Fatalf("follower %d value = %v, want recovered", i, vals[i])
		}
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("compute ran %d times, want 2 (dead leader + one recovery leader)", got)
	}
}

// TestFollowerDeadlineWhileWaiting: a follower whose own context expires
// while waiting on the leader gets its context error immediately, not the
// leader's eventual result.
func TestFollowerDeadlineWhileWaiting(t *testing.T) {
	c := New(8, 0, nil)
	k := KeyFrom("slow")
	started := make(chan struct{})
	release := make(chan struct{})
	go c.Do(bg(), k, "fp", func(context.Context) (any, int64, error) {
		close(started)
		<-release
		return "late", 4, nil
	})
	<-started

	ctx, cancel := context.WithTimeout(bg(), 10*time.Millisecond)
	defer cancel()
	_, _, err := c.Do(ctx, k, "fp", computeVal("never", 1, nil))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired follower got %v, want DeadlineExceeded", err)
	}
	close(release)
}

func TestKeyFromFraming(t *testing.T) {
	if KeyFrom("ab", "c") == KeyFrom("a", "bc") {
		t.Fatal("length framing broken: (ab,c) and (a,bc) collide")
	}
	if KeyFrom("x") != KeyFrom("x") {
		t.Fatal("KeyFrom is not deterministic")
	}
}

// TestAliasFastPath: the raw-bytes alias layer answers byte-identical
// re-posts without the canonical path, self-heals dangling aliases, refuses
// to alias a value that was never cached, and is dropped wholesale on
// invalidation and on cap overflow.
func TestAliasFastPath(t *testing.T) {
	met := engine.NewMetrics()
	c := New(2, 0, met)
	raw, canon := KeyFrom("raw-bytes"), KeyFrom("canonical")

	// An alias may only point at a resident entry.
	c.SetAlias(raw, canon)
	if c.AliasLen() != 0 {
		t.Fatal("alias to a non-resident key was recorded")
	}
	if _, ok := c.GetVia(raw); ok {
		t.Fatal("GetVia answered through a refused alias")
	}

	if _, _, err := c.Do(bg(), canon, "fp1", computeVal("v", 1, nil)); err != nil {
		t.Fatal(err)
	}
	c.SetAlias(raw, canon)
	hitsBefore := met.Get(engine.CacheHits)
	v, ok := c.GetVia(raw)
	if !ok || v != "v" {
		t.Fatalf("GetVia = (%v, %v), want (v, true)", v, ok)
	}
	if met.Get(engine.CacheHits) != hitsBefore+1 {
		t.Fatal("an alias hit was not counted as a cache hit")
	}

	// Evicting the canonical entry leaves the alias dangling: the next
	// GetVia misses AND removes it.
	for i := 0; i < 2; i++ {
		k := KeyFrom(fmt.Sprintf("fill-%d", i))
		if _, _, err := c.Do(bg(), k, "fp1", computeVal("f", 1, nil)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := c.Get(canon); ok {
		t.Fatal("canonical entry survived eviction; test setup broken")
	}
	if _, ok := c.GetVia(raw); ok {
		t.Fatal("GetVia answered through a dangling alias")
	}
	if c.AliasLen() != 0 {
		t.Fatal("dangling alias was not dropped on lookup")
	}

	// Invalidation drops the alias layer with the entries.
	k := KeyFrom("post-reload")
	if _, _, err := c.Do(bg(), k, "fp1", computeVal("v2", 1, nil)); err != nil {
		t.Fatal(err)
	}
	c.SetAlias(KeyFrom("raw2"), k)
	if c.Invalidate("fp2") == 0 {
		t.Fatal("nothing invalidated; test setup broken")
	}
	if c.AliasLen() != 0 {
		t.Fatal("aliases survived invalidation")
	}
}

// TestAliasCapResets: overflowing the alias budget resets the map instead of
// growing without bound.
func TestAliasCapResets(t *testing.T) {
	c := New(2, 0, engine.NewMetrics()) // alias cap = 8
	canon := KeyFrom("canonical")
	if _, _, err := c.Do(bg(), canon, "fp1", computeVal("v", 1, nil)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		c.SetAlias(KeyFrom(fmt.Sprintf("raw-%d", i)), canon)
		if n := c.AliasLen(); n > 8 {
			t.Fatalf("alias map grew to %d, above the cap of 8", n)
		}
	}
}

// TestSingleflightOversizedFollowers: a burst of concurrent callers lands
// on one key whose value exceeds the per-entry admission cap. The leader
// must still compute exactly once and hand the value to every follower
// (Coalesced), the value must never become resident, and the refusal is
// counted once per flight — oversized admission and singleflight must not
// interfere. Runs under -race in the cache-conformance suite.
func TestSingleflightOversizedFollowers(t *testing.T) {
	met := engine.NewMetrics()
	c := New(8, 0, met)
	c.SetMaxEntryBytes(10)
	k := KeyFrom("oversized-shared")
	var runs atomic.Int64
	gate := make(chan struct{})
	compute := func(context.Context) (any, int64, error) {
		runs.Add(1)
		<-gate // hold the flight open until every follower has joined
		return "huge", 100, nil
	}

	const n = 9 // 1 leader + 8 followers
	var started, done sync.WaitGroup
	statuses := make([]Status, n)
	for i := 0; i < n; i++ {
		started.Add(1)
		done.Add(1)
		go func(i int) {
			defer done.Done()
			started.Done()
			v, st, err := c.Do(bg(), k, "fp", compute)
			if err != nil || v != "huge" {
				t.Errorf("goroutine %d: (%v, %v)", i, v, err)
				return
			}
			statuses[i] = st
		}(i)
	}
	started.Wait()
	time.Sleep(20 * time.Millisecond) // let followers reach the flight wait
	close(gate)
	done.Wait()

	if runs.Load() != 1 {
		t.Fatalf("compute ran %d times under %d concurrent callers, want 1", runs.Load(), n)
	}
	misses, coalesced := 0, 0
	for i, st := range statuses {
		switch st {
		case Miss:
			misses++
		case Coalesced:
			coalesced++
		default:
			t.Fatalf("goroutine %d: status %v — an oversized value can never Hit", i, st)
		}
	}
	if misses != 1 || coalesced != n-1 {
		t.Fatalf("%d leaders + %d coalesced, want 1 + %d", misses, coalesced, n-1)
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("oversized value became resident: Len/Bytes = %d/%d", c.Len(), c.Bytes())
	}
	if got := met.Get(engine.CacheOversized); got != 1 {
		t.Fatalf("oversized refusals = %d, want 1 (one per flight, not per follower)", got)
	}

	// Never cached: the next caller recomputes, still uncached, counted again.
	v, st, err := c.Do(bg(), k, "fp", compute)
	if err != nil || v != "huge" || st != Miss {
		t.Fatalf("recompute = (%v, %v, %v), want (huge, Miss, nil)", v, st, err)
	}
	if runs.Load() != 2 || c.Len() != 0 {
		t.Fatalf("recompute: runs=%d Len=%d, want 2 and 0", runs.Load(), c.Len())
	}
	if got := met.Get(engine.CacheOversized); got != 2 {
		t.Fatalf("oversized refusals after recompute = %d, want 2", got)
	}
}
