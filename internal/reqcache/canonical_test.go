package reqcache

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"sstiming/internal/benchgen"
	"sstiming/internal/netlist"
)

func parse(t *testing.T, src string) *netlist.Circuit {
	t.Helper()
	c, err := netlist.Parse("test", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCanonicalGateOrderInvariance: reordering gate statements must not
// change the canonical bytes; changing connectivity must.
func TestCanonicalGateOrderInvariance(t *testing.T) {
	a := parse(t, "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nn1 = NAND(a, b)\nz = NOT(n1)\n")
	b := parse(t, "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = NOT(n1)\nn1 = NAND(a, b)\n")
	if !bytes.Equal(CanonicalNetlist(a), CanonicalNetlist(b)) {
		t.Fatalf("gate statement order split the canonical form:\n%s\nvs\n%s",
			CanonicalNetlist(a), CanonicalNetlist(b))
	}

	c := parse(t, "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nn1 = NOR(a, b)\nz = NOT(n1)\n")
	if bytes.Equal(CanonicalNetlist(a), CanonicalNetlist(c)) {
		t.Fatal("NAND and NOR circuits share a canonical form")
	}
}

// TestCanonicalPinOrderSignificant: gate input order is cell pin position,
// a semantic property — it must survive canonicalization.
func TestCanonicalPinOrderSignificant(t *testing.T) {
	a := parse(t, "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = NAND(a, b)\n")
	b := parse(t, "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = NAND(b, a)\n")
	if bytes.Equal(CanonicalNetlist(a), CanonicalNetlist(b)) {
		t.Fatal("swapped gate pins share a canonical form (pin position is timing-relevant)")
	}
}

// TestCanonicalNameExcluded: the circuit name is presentation, not content.
func TestCanonicalNameExcluded(t *testing.T) {
	a := parse(t, "INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n")
	b := parse(t, "INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n")
	b.Name = "renamed"
	if !bytes.Equal(CanonicalNetlist(a), CanonicalNetlist(b)) {
		t.Fatal("circuit name leaked into the canonical form")
	}
}

// TestCanonicalPOOrderSignificant: PO order is response-relevant (worst-path
// tie-breaking), so it is deliberately part of the address.
func TestCanonicalPOOrderSignificant(t *testing.T) {
	a := parse(t, "INPUT(a)\nOUTPUT(y)\nOUTPUT(z)\ny = NOT(a)\nz = NOT(y)\n")
	b := parse(t, "INPUT(a)\nOUTPUT(z)\nOUTPUT(y)\ny = NOT(a)\nz = NOT(y)\n")
	if bytes.Equal(CanonicalNetlist(a), CanonicalNetlist(b)) {
		t.Fatal("PO declaration order was normalized away")
	}
}

// TestCanonicalWriteRoundTrip: canonical form survives a .bench write/parse
// round trip, and random circuits canonicalize deterministically.
func TestCanonicalWriteRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for seed := 0; seed < 20; seed++ {
		c, err := benchgen.GenerateRand(benchgen.RandomProfile("rt", rng), rng)
		if err != nil {
			t.Fatal(err)
		}
		canon := CanonicalNetlist(c)
		if !bytes.Equal(canon, CanonicalNetlist(c)) {
			t.Fatal("canonicalization is not deterministic")
		}
		var buf bytes.Buffer
		if err := c.Write(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := netlist.Parse("roundtrip", strings.NewReader(buf.String()))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(canon, CanonicalNetlist(back)) {
			t.Fatalf("seed %d: canonical form did not survive a write/parse round trip", seed)
		}
	}
}

func TestCanonicalCube(t *testing.T) {
	a := CanonicalCube(map[string]string{"n2": "1x", "n1": "01"})
	if a != "n1=01,n2=1x" {
		t.Fatalf("CanonicalCube = %q", a)
	}
	if CanonicalCube(nil) != "" {
		t.Fatal("empty cube not canonicalized to empty string")
	}
}

func TestCanonicalNets(t *testing.T) {
	if got := CanonicalNets([]string{"z", "a", "z"}); got != "a,z" {
		t.Fatalf("CanonicalNets = %q, want \"a,z\"", got)
	}
	if CanonicalNets(nil) != "" {
		t.Fatal("empty filter not canonicalized to empty string")
	}
}
