package reqcache

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"sstiming/internal/netlist"
)

// FuzzCanonicalNetlist drives the canonicalizer with arbitrary .bench text.
// For every input the parser accepts, the canonical form must be (a)
// deterministic, (b) invariant under gate-slice permutation, and (c) stable
// across a Write/Parse round trip — the three properties the cache address
// depends on. The target must never panic, parser-rejected inputs included.
func FuzzCanonicalNetlist(f *testing.F) {
	f.Add("INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n")
	f.Add("INPUT(a)\nINPUT(b)\nOUTPUT(z)\nn = NAND(a, b)\nz = NOT(n)\n")
	f.Add("INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = AND(a, b)\n")
	f.Add("# comment only\n")
	f.Add("INPUT(a)\nOUTPUT(z)\nz = OR(a, a)\n")

	f.Fuzz(func(t *testing.T, src string) {
		c, err := netlist.Parse("fuzz", strings.NewReader(src))
		if err != nil {
			return
		}
		canon := CanonicalNetlist(c)
		if !bytes.Equal(canon, CanonicalNetlist(c)) {
			t.Fatal("canonicalization is not deterministic")
		}

		// Permute the gate slice in place; the canonical form must not move.
		perm := &netlist.Circuit{Name: c.Name, PIs: c.PIs, POs: c.POs}
		rng := rand.New(rand.NewSource(int64(len(src))))
		for _, gi := range rng.Perm(len(c.Gates)) {
			g := c.Gates[gi]
			perm.AddGate(g.Kind, g.Output, g.Inputs...)
		}
		if err := perm.Build(); err != nil {
			t.Fatalf("permuted copy of a valid circuit failed to build: %v", err)
		}
		if !bytes.Equal(canon, CanonicalNetlist(perm)) {
			t.Fatal("gate permutation changed the canonical form")
		}

		// Round trip through the writer.
		var buf bytes.Buffer
		if err := c.Write(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := netlist.Parse("fuzz-rt", strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("writer output rejected by the parser: %v", err)
		}
		if !bytes.Equal(canon, CanonicalNetlist(back)) {
			t.Fatal("canonical form did not survive a write/parse round trip")
		}
	})
}
