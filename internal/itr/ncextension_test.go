package itr

import (
	"math/rand"
	"testing"

	"sstiming/internal/benchgen"
	"sstiming/internal/logicsim"
	"sstiming/internal/nineval"
	"sstiming/internal/prechar"
	"sstiming/internal/sta"
)

// TestITRNCExtensionMatchesSTAOnEmptyCube: the special-case identity (empty
// cube = STA) must hold with the extension enabled on both sides.
func TestITRNCExtensionMatchesSTAOnEmptyCube(t *testing.T) {
	lib := prechar.MustLibrary()
	c := benchgen.C17()
	staRes, err := sta.Analyze(c, sta.Options{Lib: lib, Mode: sta.ModeProposed, NCExtension: true})
	if err != nil {
		t.Fatal(err)
	}
	itrRes, err := Refine(c, nineval.Cube{}, Options{Lib: lib, Mode: sta.ModeProposed, NCExtension: true})
	if err != nil {
		t.Fatal(err)
	}
	for net, li := range itrRes.Lines {
		sw := staRes.Lines[net]
		if diffWindow(li.Rise, sw.Rise) > 1e-15 || diffWindow(li.Fall, sw.Fall) > 1e-15 {
			t.Errorf("%s: extended ITR != extended STA:\n  itr %+v/%+v\n  sta %+v/%+v",
				net, li.Rise, li.Fall, sw.Rise, sw.Fall)
		}
	}
}

// TestITRNCExtensionContainment: refined extended windows contain extended
// simulation events for consistent full assignments.
func TestITRNCExtensionContainment(t *testing.T) {
	lib := prechar.MustLibrary()
	c := benchgen.C17()
	const tol = 2e-12
	rng := rand.New(rand.NewSource(71))

	for trial := 0; trial < 16; trial++ {
		v1 := logicsim.RandomVector(c, rng.Intn)
		v2 := logicsim.RandomVector(c, rng.Intn)
		sim, err := logicsim.Simulate(c, v1, v2, logicsim.Options{Lib: lib, NCExtension: true})
		if err != nil {
			t.Fatal(err)
		}
		cube := nineval.Cube{}
		for _, pi := range c.PIs {
			cube[pi] = nineval.Value{V1: nineval.Frame(v1[pi]), V2: nineval.Frame(v2[pi])}
		}
		res, err := Refine(c, cube, Options{Lib: lib, Mode: sta.ModeProposed, NCExtension: true})
		if err != nil {
			t.Fatal(err)
		}
		for net, ev := range sim.Events {
			w, ok := res.Window(net, ev.Rising)
			if !ok {
				t.Fatalf("trial %d: %s switched but window undefined", trial, net)
			}
			if ev.Arrival < w.AS-tol || ev.Arrival > w.AL+tol {
				t.Errorf("trial %d: %s arrival %.4e outside extended ITR window [%.4e, %.4e]",
					trial, net, ev.Arrival, w.AS, w.AL)
			}
		}
	}
}
