// Package itr implements Incremental Timing Refinement (the paper's
// Section 5): recomputation of min-max timing windows under a partially
// specified two-frame vector.
//
// STA assumes every line may carry either transition; during test
// generation, logic implications progressively decide which transitions are
// definite (S = 1), potential (S = 0) or impossible (S = -1), and the timing
// windows shrink accordingly:
//
//   - a line with S = -1 for a direction has no window for it (its timing
//     fields are undefined, per Section 5.1);
//   - the earliest to-controlling arrival may only exploit simultaneous
//     switching between inputs that still *can* transition;
//   - the latest to-controlling arrival tightens to the earliest worst-case
//     corner among inputs that *must* transition (a definite faller bounds
//     how late a NAND output can rise);
//   - the earliest to-non-controlling arrival rises to the slowest
//     definite riser (they all must complete before the output can fall).
//
// STA is the special case of ITR in which every line has S = 0 (asserted by
// this package's tests).
//
// Since the incremental-timing refactor, Refine is "build a persistent
// timing graph under the cube" (internal/tgraph): one implication plus one
// full convergence. Callers that refine many related cubes — the ATPG
// search refines one cube per decision — keep a single graph alive and
// apply cube deltas to it instead, paying only for the changed cone; Refine
// remains the from-scratch reference those incremental results are
// cross-checked against. The per-gate window arithmetic is shared with sta
// and tgraph via internal/twindow, so all three produce byte-identical
// floats for the same line states.
package itr

import (
	"context"
	"errors"
	"fmt"

	"sstiming/internal/core"
	"sstiming/internal/engine"
	"sstiming/internal/netlist"
	"sstiming/internal/nineval"
	"sstiming/internal/spice"
	"sstiming/internal/sta"
	"sstiming/internal/tgraph"
	"sstiming/internal/twindow"
)

// Options configures a refinement.
type Options struct {
	// Lib is the characterised cell library (required).
	Lib *core.Library
	// Mode selects the delay model (ModeProposed exploits simultaneous
	// switching).
	Mode sta.Mode
	// PI is the stimulus assumed at primary inputs; zero value selects
	// sta.DefaultPITiming.
	PI sta.PITiming
	// PerPI overrides specific inputs.
	PerPI map[string]sta.PITiming
	// NCExtension enables the simultaneous to-non-controlling Λ-shape
	// model (Section 3.6 future work) in the latest corners, mirroring
	// sta.Options.NCExtension.
	NCExtension bool
	// Ctx, when non-nil, cancels the refinement between gates. A cancelled
	// refinement returns an error wrapping spice.ErrCancelled and the
	// context's own error — never a partial result.
	Ctx context.Context
	// Metrics, when non-nil, counts refinement passes and per-line
	// implications.
	Metrics *engine.Metrics
}

// LineInfo is the refined timing of one line: the implied nine-valued
// value, the transition states, and the directional windows (valid only
// when the corresponding state is not SNo — HasRise/HasFall).
type LineInfo = twindow.LineInfo

// Result is the outcome of a refinement.
type Result struct {
	Circuit *netlist.Circuit
	// Cube is the implied two-frame assignment.
	Cube nineval.Cube
	// Lines holds refined timing per net.
	Lines map[string]*LineInfo
}

// Window returns the directional window of a net and whether it is defined.
func (r *Result) Window(net string, rising bool) (sta.Window, bool) {
	li, ok := r.Lines[net]
	if !ok {
		return sta.Window{}, false
	}
	if rising {
		if !li.HasRise() {
			return sta.Window{}, false
		}
		return li.Rise, true
	}
	if !li.HasFall() {
		return sta.Window{}, false
	}
	return li.Fall, true
}

// Refine implies the cube over the circuit and recomputes every line's
// timing windows under the resulting transition states. It returns an error
// if the cube is logically inconsistent.
func Refine(c *netlist.Circuit, cube nineval.Cube, opts Options) (*Result, error) {
	if opts.Lib == nil {
		return nil, fmt.Errorf("itr: Options.Lib is required")
	}
	if err := ctxErr(opts.Ctx); err != nil {
		return nil, err
	}
	opts.Metrics.Add(engine.ITRRefines, 1)
	g, err := tgraph.NewWithCube(c, cube, tgraph.Options{
		Lib:         opts.Lib,
		Mode:        opts.Mode,
		PI:          opts.PI,
		PerPI:       opts.PerPI,
		NCExtension: opts.NCExtension,
		Ctx:         opts.Ctx,
		Metrics:     opts.Metrics,
	})
	if err != nil {
		if errors.Is(err, tgraph.ErrInconsistent) {
			return nil, fmt.Errorf("itr: cube is logically inconsistent: %s", cube.String())
		}
		return nil, fmt.Errorf("itr: %w", err)
	}
	opts.Metrics.Add(engine.ITRImplications, int64(c.NumGates()))
	return FromGraph(g), nil
}

// FromGraph snapshots a persistent timing graph's current line states as a
// refinement Result. The snapshot is a copy: later graph edits do not
// disturb it.
func FromGraph(g *tgraph.Graph) *Result {
	res := &Result{
		Circuit: g.Circuit(),
		Cube:    g.ImpliedCube().Clone(),
		Lines:   make(map[string]*LineInfo, g.NumLines()),
	}
	g.Lines(func(net string, li twindow.LineInfo) {
		cp := li
		res.Lines[net] = &cp
	})
	return res
}

// ctxErr folds a fired context into the solver error taxonomy.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("itr: %w", spice.Cancelled(err))
	}
	return nil
}
