// Package itr implements Incremental Timing Refinement (the paper's
// Section 5): recomputation of min-max timing windows under a partially
// specified two-frame vector.
//
// STA assumes every line may carry either transition; during test
// generation, logic implications progressively decide which transitions are
// definite (S = 1), potential (S = 0) or impossible (S = -1), and the timing
// windows shrink accordingly:
//
//   - a line with S = -1 for a direction has no window for it (its timing
//     fields are undefined, per Section 5.1);
//   - the earliest to-controlling arrival may only exploit simultaneous
//     switching between inputs that still *can* transition;
//   - the latest to-controlling arrival tightens to the earliest worst-case
//     corner among inputs that *must* transition (a definite faller bounds
//     how late a NAND output can rise);
//   - the earliest to-non-controlling arrival rises to the slowest
//     definite riser (they all must complete before the output can fall).
//
// STA is the special case of ITR in which every line has S = 0 (asserted by
// this package's tests).
package itr

import (
	"context"
	"fmt"
	"math"

	"sstiming/internal/core"
	"sstiming/internal/engine"
	"sstiming/internal/netlist"
	"sstiming/internal/nineval"
	"sstiming/internal/spice"
	"sstiming/internal/sta"
)

// Options configures a refinement.
type Options struct {
	// Lib is the characterised cell library (required).
	Lib *core.Library
	// Mode selects the delay model (ModeProposed exploits simultaneous
	// switching).
	Mode sta.Mode
	// PI is the stimulus assumed at primary inputs; zero value selects
	// sta.DefaultPITiming.
	PI sta.PITiming
	// PerPI overrides specific inputs.
	PerPI map[string]sta.PITiming
	// NCExtension enables the simultaneous to-non-controlling Λ-shape
	// model (Section 3.6 future work) in the latest corners, mirroring
	// sta.Options.NCExtension.
	NCExtension bool
	// Ctx, when non-nil, cancels the refinement between gates. A cancelled
	// refinement returns an error wrapping spice.ErrCancelled and the
	// context's own error — never a partial result.
	Ctx context.Context
	// Metrics, when non-nil, counts refinement passes and per-line
	// implications.
	Metrics *engine.Metrics
}

// LineInfo is the refined timing of one line.
type LineInfo struct {
	// Value is the implied nine-valued logic value.
	Value nineval.Value
	// SRise and SFall are the transition states.
	SRise, SFall nineval.State
	// Rise and Fall are the refined windows; valid only when the
	// corresponding state is not SNo (HasRise/HasFall).
	Rise, Fall sta.Window
}

// HasRise reports whether the rise window is defined.
func (li *LineInfo) HasRise() bool { return li.SRise != nineval.SNo }

// HasFall reports whether the fall window is defined.
func (li *LineInfo) HasFall() bool { return li.SFall != nineval.SNo }

// Result is the outcome of a refinement.
type Result struct {
	Circuit *netlist.Circuit
	// Cube is the implied two-frame assignment.
	Cube nineval.Cube
	// Lines holds refined timing per net.
	Lines map[string]*LineInfo
}

// Window returns the directional window of a net and whether it is defined.
func (r *Result) Window(net string, rising bool) (sta.Window, bool) {
	li, ok := r.Lines[net]
	if !ok {
		return sta.Window{}, false
	}
	if rising {
		if !li.HasRise() {
			return sta.Window{}, false
		}
		return li.Rise, true
	}
	if !li.HasFall() {
		return sta.Window{}, false
	}
	return li.Fall, true
}

// Refine implies the cube over the circuit and recomputes every line's
// timing windows under the resulting transition states. It returns an error
// if the cube is logically inconsistent.
func Refine(c *netlist.Circuit, cube nineval.Cube, opts Options) (*Result, error) {
	if opts.Lib == nil {
		return nil, fmt.Errorf("itr: Options.Lib is required")
	}
	if err := c.EnsureBuilt(); err != nil {
		return nil, fmt.Errorf("itr: %w", err)
	}
	if err := ctxErr(opts.Ctx); err != nil {
		return nil, err
	}
	opts.Metrics.Add(engine.ITRRefines, 1)
	implied, ok := nineval.Imply(c, cube)
	if !ok {
		return nil, fmt.Errorf("itr: cube is logically inconsistent: %s", cube.String())
	}
	pi := opts.PI
	if pi == (sta.PITiming{}) {
		pi = sta.DefaultPITiming()
	}

	res := &Result{Circuit: c, Cube: implied, Lines: make(map[string]*LineInfo)}
	for _, name := range c.PIs {
		p := pi
		if o, ok := opts.PerPI[name]; ok {
			p = o
		}
		v := implied.Get(name)
		w := sta.Window{AS: p.ArrivalEarly, AL: p.ArrivalLate, TS: p.TransShort, TL: p.TransLong}
		res.Lines[name] = &LineInfo{
			Value: v, SRise: v.StateRise(), SFall: v.StateFall(),
			Rise: w, Fall: w,
		}
	}

	for _, gi := range c.TopoOrder() {
		if err := ctxErr(opts.Ctx); err != nil {
			return nil, err
		}
		g := &c.Gates[gi]
		cell, ok := opts.Lib.Cell(g.CellName())
		if !ok {
			return nil, fmt.Errorf("itr: no library cell %q for gate %q", g.CellName(), g.Output)
		}
		ins := make([]*LineInfo, len(g.Inputs))
		for i, in := range g.Inputs {
			ins[i] = res.Lines[in]
		}
		extraLoad := float64(c.FanoutCount(g.Output)-1) * cell.RefLoad

		v := implied.Get(g.Output)
		li := &LineInfo{Value: v, SRise: v.StateRise(), SFall: v.StateFall()}

		var err error
		switch g.Kind {
		case netlist.Inv:
			if li.HasRise() {
				li.Rise, err = refineSingle(cell, ins[0], false, true, extraLoad, li.SRise)
			}
			if err == nil && li.HasFall() {
				li.Fall, err = refineSingle(cell, ins[0], true, false, extraLoad, li.SFall)
			}
		case netlist.Buf:
			if li.HasRise() {
				li.Rise, err = refineSingle(cell, ins[0], true, true, extraLoad, li.SRise)
			}
			if err == nil && li.HasFall() {
				li.Fall, err = refineSingle(cell, ins[0], false, false, extraLoad, li.SFall)
			}
		case netlist.Nand:
			if li.HasRise() {
				li.Rise, err = refineCtrl(cell, g, ins, false, extraLoad, opts.Mode)
			}
			if err == nil && li.HasFall() {
				li.Fall, err = refineNonCtrl(cell, g, ins, true, extraLoad, opts.Mode, opts.NCExtension)
			}
		case netlist.Nor:
			if li.HasFall() {
				li.Fall, err = refineCtrl(cell, g, ins, true, extraLoad, opts.Mode)
			}
			if err == nil && li.HasRise() {
				li.Rise, err = refineNonCtrl(cell, g, ins, false, extraLoad, opts.Mode, opts.NCExtension)
			}
		default:
			err = fmt.Errorf("unsupported gate kind %v", g.Kind)
		}
		if err != nil {
			return nil, fmt.Errorf("itr: gate %q: %w", g.Output, err)
		}
		opts.Metrics.Add(engine.ITRImplications, 1)
		res.Lines[g.Output] = li
	}
	if err := ctxErr(opts.Ctx); err != nil {
		return nil, err
	}
	return res, nil
}

// ctxErr folds a fired context into the solver error taxonomy.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("itr: %w", spice.Cancelled(err))
	}
	return nil
}

// refineSingle handles one-input cells. inRising selects which input
// direction drives this output direction; ctrl is true when the arc uses the
// cell's CtrlPins table.
func refineSingle(cell *core.CellModel, in *LineInfo, inRising, ctrl bool, extraLoad float64, outState nineval.State) (sta.Window, error) {
	var w sta.Window
	var inState nineval.State
	if inRising {
		inState = in.SRise
		w = in.Rise
	} else {
		inState = in.SFall
		w = in.Fall
	}
	if inState == nineval.SNo {
		return sta.Window{}, fmt.Errorf("output may transition but input cannot (state inconsistency)")
	}
	pins := cell.NonCtrlPins
	if ctrl {
		pins = cell.CtrlPins
	}
	p := &pins[0]
	loadD := p.DelayLoadSlope * extraLoad
	loadT := p.TransLoadSlope * extraLoad
	_, dMin := p.Delay.MinOver(w.TS, w.TL)
	_, dMax := p.Delay.MaxOver(w.TS, w.TL)
	_, tMin := p.Trans.MinOver(w.TS, w.TL)
	_, tMax := p.Trans.MaxOver(w.TS, w.TL)
	return sta.Window{
		AS: w.AS + dMin + loadD,
		AL: w.AL + dMax + loadD,
		TS: tMin + loadT,
		TL: tMax + loadT,
	}, nil
}

// ctrlInput captures one input that can make a to-controlling transition.
type ctrlInput struct {
	pin      int
	w        sta.Window
	definite bool
}

// collect returns the inputs whose transition in the given direction is not
// ruled out, with their windows.
func collect(ins []*LineInfo, rising bool) []ctrlInput {
	var out []ctrlInput
	for i, li := range ins {
		var s nineval.State
		var w sta.Window
		if rising {
			s, w = li.SRise, li.Rise
		} else {
			s, w = li.SFall, li.Fall
		}
		if s == nineval.SNo {
			continue
		}
		out = append(out, ctrlInput{pin: i, w: w, definite: s == nineval.SYes})
	}
	return out
}

// refineCtrl computes the to-controlling output window under transition
// states. ctrlRising is the direction of the input transitions (falling for
// NAND, rising for NOR).
func refineCtrl(cell *core.CellModel, g *netlist.Gate, ins []*LineInfo, ctrlRising bool, extraLoad float64, mode sta.Mode) (sta.Window, error) {
	allowed := collect(ins, ctrlRising)
	if len(allowed) == 0 {
		return sta.Window{}, fmt.Errorf("to-controlling response possible but no input can transition")
	}

	var out sta.Window
	out.AS = math.Inf(1)
	out.TS = math.Inf(1)
	out.TL = math.Inf(-1)

	single := func(a ctrlInput) (dMin, dMax, tMin, tMax float64) {
		p := &cell.CtrlPins[a.pin]
		loadD := p.DelayLoadSlope * extraLoad
		loadT := p.TransLoadSlope * extraLoad
		_, dMin = p.Delay.MinOver(a.w.TS, a.w.TL)
		_, dMax = p.Delay.MaxOver(a.w.TS, a.w.TL)
		_, tMin = p.Trans.MinOver(a.w.TS, a.w.TL)
		_, tMax = p.Trans.MaxOver(a.w.TS, a.w.TL)
		return dMin + loadD, dMax + loadD, tMin + loadT, tMax + loadT
	}

	// Latest arrival (Table 1's A..L rules): definite switchers bound how
	// late the output can switch — take the min over their worst-case
	// corners; with no definite switcher, the slowest potential single
	// switcher is the bound.
	var definite []ctrlInput
	for _, a := range allowed {
		if a.definite {
			definite = append(definite, a)
		}
	}
	if len(definite) > 0 {
		out.AL = math.Inf(1)
		for _, a := range definite {
			_, dMax, _, _ := single(a)
			if v := a.w.AL + dMax; v < out.AL {
				out.AL = v
			}
		}
	} else {
		out.AL = math.Inf(-1)
		for _, a := range allowed {
			_, dMax, _, _ := single(a)
			if v := a.w.AL + dMax; v > out.AL {
				out.AL = v
			}
		}
	}

	// Earliest arrival and transition bounds over the allowed set.
	for _, a := range allowed {
		dMin, _, tMin, tMax := single(a)
		if v := a.w.AS + dMin; v < out.AS {
			out.AS = v
		}
		if tMin < out.TS {
			out.TS = tMin
		}
		if tMax > out.TL {
			out.TL = tMax
		}
	}

	if mode == sta.ModeProposed && len(allowed) >= 2 {
		multi := 1.0
		if k := len(allowed); k >= 3 && len(cell.MultiFactor) >= k-2 {
			if f := cell.MultiFactor[k-3]; f > 0 && f < 1 {
				multi = f
			}
		}
		for _, ax := range allowed {
			for _, ay := range allowed {
				if ax.pin == ay.pin {
					continue
				}
				skew := ay.w.AS - ax.w.AS
				base := math.Min(ax.w.AS, ay.w.AS)
				for _, tx := range []float64{ax.w.TS, ax.w.TL} {
					for _, ty := range []float64{ay.w.TS, ay.w.TL} {
						d := cell.DelayCtrl2(ax.pin, ay.pin, tx, ty, skew, extraLoad)
						if v := base + d*multi; v < out.AS {
							out.AS = v
						}
					}
				}
				lo := ay.w.AS - ax.w.AL
				hi := ay.w.AL - ax.w.AS
				skm := cell.SKminAt(ax.pin, ay.pin, ax.w.TS, ay.w.TS)
				if skm < lo {
					skm = lo
				}
				if skm > hi {
					skm = hi
				}
				if tv := cell.TransCtrl2(ax.pin, ay.pin, ax.w.TS, ay.w.TS, skm, extraLoad); tv < out.TS {
					out.TS = tv
				}
			}
		}
	}
	_ = g
	return out, nil
}

// refineNonCtrl computes the to-non-controlling output window under
// transition states. ncRising is the direction of the input transitions
// (rising for NAND, falling for NOR). With the NC extension, pairs of
// inputs that can both transition widen the latest corners through the
// Λ-shape surfaces.
func refineNonCtrl(cell *core.CellModel, g *netlist.Gate, ins []*LineInfo, ncRising bool, extraLoad float64, mode sta.Mode, ncExt bool) (sta.Window, error) {
	allowed := collect(ins, ncRising)
	if len(allowed) == 0 {
		return sta.Window{}, fmt.Errorf("to-non-controlling response possible but no input can transition")
	}

	var out sta.Window
	out.AL = math.Inf(-1)
	out.TS = math.Inf(1)
	out.TL = math.Inf(-1)

	single := func(a ctrlInput) (dMin, dMax, tMin, tMax float64) {
		p := &cell.NonCtrlPins[a.pin]
		loadD := p.DelayLoadSlope * extraLoad
		loadT := p.TransLoadSlope * extraLoad
		_, dMin = p.Delay.MinOver(a.w.TS, a.w.TL)
		_, dMax = p.Delay.MaxOver(a.w.TS, a.w.TL)
		_, tMin = p.Trans.MinOver(a.w.TS, a.w.TL)
		_, tMax = p.Trans.MaxOver(a.w.TS, a.w.TL)
		return dMin + loadD, dMax + loadD, tMin + loadT, tMax + loadT
	}

	// Earliest arrival: every definite switcher must complete (max over
	// them at their earliest corners); with no definite switcher, the
	// fastest single suffices.
	var definite []ctrlInput
	for _, a := range allowed {
		if a.definite {
			definite = append(definite, a)
		}
	}
	if len(definite) > 0 {
		out.AS = math.Inf(-1)
		for _, a := range definite {
			dMin, _, _, _ := single(a)
			if v := a.w.AS + dMin; v > out.AS {
				out.AS = v
			}
		}
	} else {
		out.AS = math.Inf(1)
		for _, a := range allowed {
			dMin, _, _, _ := single(a)
			if v := a.w.AS + dMin; v < out.AS {
				out.AS = v
			}
		}
	}

	for _, a := range allowed {
		_, dMax, tMin, tMax := single(a)
		if v := a.w.AL + dMax; v > out.AL {
			out.AL = v
		}
		if tMin < out.TS {
			out.TS = tMin
		}
		if tMax > out.TL {
			out.TL = tMax
		}
	}

	if ncExt && mode == sta.ModeProposed && len(allowed) >= 2 && len(cell.NCPairs) > 0 {
		for _, ax := range allowed {
			for _, ay := range allowed {
				if ax.pin == ay.pin {
					continue
				}
				lo := ay.w.AS - ax.w.AL
				hi := ay.w.AL - ax.w.AS
				skew := 0.0
				if skew < lo {
					skew = lo
				}
				if skew > hi {
					skew = hi
				}
				base := math.Max(ax.w.AL, ay.w.AL)
				for _, tx := range []float64{ax.w.TS, ax.w.TL} {
					for _, ty := range []float64{ay.w.TS, ay.w.TL} {
						d := cell.DelayNonCtrl2(ax.pin, ay.pin, tx, ty, skew, extraLoad)
						if v := base + d; v > out.AL {
							out.AL = v
						}
						if tv := cell.TransNonCtrl2(ax.pin, ay.pin, tx, ty, skew, extraLoad); tv > out.TL {
							out.TL = tv
						}
					}
				}
			}
		}
	}
	_ = g
	return out, nil
}
