package itr

import (
	"fmt"
	"strings"

	"sstiming/internal/nineval"
)

// Target identifies an ITR optimization target (OPT^Z_tr,extreme in
// Section 5.2): an extreme value of the arrival time or transition time of
// one transition direction at a line Z.
type Target struct {
	// Trans selects the transition-time target T (false selects the
	// arrival-time target A).
	Trans bool
	// Rising selects the transition direction at Z.
	Rising bool
	// Largest selects the L extreme (false selects S, the smallest).
	Largest bool
}

// String renders the target in the paper's notation, e.g. "A_R,S".
func (t Target) String() string {
	opt := "A"
	if t.Trans {
		opt = "T"
	}
	dir := "F"
	if t.Rising {
		dir = "R"
	}
	ext := "S"
	if t.Largest {
		ext = "L"
	}
	return fmt.Sprintf("%s_%s,%s", opt, dir, ext)
}

// AllTargets lists the eight optimization targets in Table 1's column order.
func AllTargets() []Target {
	return []Target{
		{Trans: false, Rising: false, Largest: false}, // A_F,S
		{Trans: false, Rising: false, Largest: true},  // A_F,L
		{Trans: false, Rising: true, Largest: false},  // A_R,S
		{Trans: false, Rising: true, Largest: true},   // A_R,L
		{Trans: true, Rising: false, Largest: false},  // T_F,S
		{Trans: true, Rising: false, Largest: true},   // T_F,L
		{Trans: true, Rising: true, Largest: false},   // T_R,S
		{Trans: true, Rising: true, Largest: true},    // T_R,L
	}
}

// Setting is one implied assignment of the transition states (Sx, Sy) of the
// two inputs of a NAND gate.
type Setting struct {
	SX, SY nineval.State
}

// ImpliedSettings reproduces Table 1 for a two-input NAND gate: given an
// optimization target at the output Z and the current state sy of input Y's
// relevant transition, it returns the candidate resolutions of input X's
// zero (potential) state, derived from the five rules of Section 5.2 and
// their maximisation duals:
//
//  1. S_Y = -1: X must transition to create a transition at Z.
//  2. S_Y = 1 with a to-controlling transition at Y: a simultaneous
//     transition at X speeds the output up — include it when minimising,
//     exclude it when maximising.
//  3. S_Y = 1 with a to-non-controlling transition at Y: an additional
//     transition at X can only slow the output down (max combine) —
//     exclude it when minimising, include it when maximising.
//  4. S_Y = 0 with a possible to-controlling transition: resolve (1, 1)
//     when minimising; try both single-switcher cases when maximising.
//  5. S_Y = 0 with a possible to-non-controlling transition: try both
//     single-switcher cases when minimising; resolve (1, 1) when
//     maximising.
//
// For a NAND gate the to-controlling response is a rising output (falling
// inputs), so targets with Rising=true are the to-controlling cases.
// Transition-time targets follow the same pattern as the corresponding
// arrival-time targets.
func ImpliedSettings(tgt Target, sy nineval.State) []Setting {
	toCtrl := tgt.Rising // NAND: rising output = to-controlling response

	if sy == nineval.SNo {
		// Rule 1.
		return []Setting{{SX: nineval.SYes, SY: nineval.SNo}}
	}

	type k struct{ ctrl, largest, syDefinite bool }
	switch (k{toCtrl, tgt.Largest, sy == nineval.SYes}) {
	case k{true, false, true}: // rule 2, minimising
		return []Setting{{nineval.SYes, nineval.SYes}}
	case k{true, false, false}: // rule 4, minimising
		return []Setting{{nineval.SYes, nineval.SYes}}
	case k{true, true, true}: // rule 2 dual: avoid the speed-up
		return []Setting{{nineval.SNo, nineval.SYes}}
	case k{true, true, false}: // rule 4 dual: single switcher, either one
		return []Setting{{nineval.SYes, nineval.SNo}, {nineval.SNo, nineval.SYes}}
	case k{false, false, true}: // rule 3: extra riser only delays
		return []Setting{{nineval.SNo, nineval.SYes}}
	case k{false, false, false}: // rule 5: try both single switchers
		return []Setting{{nineval.SYes, nineval.SNo}, {nineval.SNo, nineval.SYes}}
	case k{false, true, true}: // rule 3 dual: more risers, later fall
		return []Setting{{nineval.SYes, nineval.SYes}}
	case k{false, true, false}: // rule 5 dual
		return []Setting{{nineval.SYes, nineval.SYes}}
	}
	return nil
}

// Table1 renders the full derived table (all eight targets against the
// three possible states of Y) in the layout of the paper's Table 1.
func Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s", "S_Y")
	for _, tgt := range AllTargets() {
		fmt.Fprintf(&b, "%-16s", tgt)
	}
	b.WriteByte('\n')
	for _, sy := range []nineval.State{nineval.SNo, nineval.SMaybe, nineval.SYes} {
		fmt.Fprintf(&b, "%-8s", sy)
		for _, tgt := range AllTargets() {
			var cells []string
			for _, s := range ImpliedSettings(tgt, sy) {
				cells = append(cells, fmt.Sprintf("(%s,%s)", s.SX, s.SY))
			}
			fmt.Fprintf(&b, "%-16s", strings.Join(cells, " "))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
