package itr

import (
	"math"
	"testing"

	"sstiming/internal/benchgen"
	"sstiming/internal/nineval"
	"sstiming/internal/prechar"
	"sstiming/internal/sta"
)

func TestRequiredEmptyCubeMatchesSTA(t *testing.T) {
	lib := prechar.MustLibrary()
	c := benchgen.C17()
	cons := sta.Constraint{MinTime: 0, MaxTime: 5e-9}

	staRes, err := sta.Analyze(c, sta.Options{Lib: lib, Mode: sta.ModeProposed})
	if err != nil {
		t.Fatal(err)
	}
	staReq := staRes.RequiredTimes(cons)

	itrRes, err := Refine(c, nineval.Cube{}, Options{Lib: lib, Mode: sta.ModeProposed})
	if err != nil {
		t.Fatal(err)
	}
	itrReq := itrRes.RequiredTimes(cons, lib)

	for net, sr := range staReq {
		ir, ok := itrReq[net]
		if !ok {
			t.Fatalf("ITR required missing net %s", net)
		}
		if math.Abs(sr.Rise.QL-ir.Rise.QL) > 1e-15 || math.Abs(sr.Fall.QL-ir.Fall.QL) > 1e-15 {
			t.Errorf("%s: QL differ: sta (%g,%g) itr (%g,%g)",
				net, sr.Rise.QL, sr.Fall.QL, ir.Rise.QL, ir.Fall.QL)
		}
		if math.Abs(sr.Rise.QS-ir.Rise.QS) > 1e-15 || math.Abs(sr.Fall.QS-ir.Fall.QS) > 1e-15 {
			t.Errorf("%s: QS differ: sta (%g,%g) itr (%g,%g)",
				net, sr.Rise.QS, sr.Fall.QS, ir.Rise.QS, ir.Fall.QS)
		}
	}
}

func TestRequiredDropsImpossibleDirections(t *testing.T) {
	lib := prechar.MustLibrary()
	c := benchgen.C17()
	// Hold PI 1 steady high in both frames: its falling transition is
	// impossible, so it must get no falling required window.
	cube := nineval.Cube{"1": nineval.V11}
	res, err := Refine(c, cube, Options{Lib: lib, Mode: sta.ModeProposed})
	if err != nil {
		t.Fatal(err)
	}
	req := res.RequiredTimes(sta.Constraint{MinTime: 0, MaxTime: 5e-9}, lib)
	lr, ok := req["1"]
	if !ok {
		t.Fatal("missing required for PI 1")
	}
	if !math.IsInf(lr.Fall.QL, 1) || !math.IsInf(lr.Fall.QS, -1) {
		t.Errorf("falling required window should be undefined: %+v", lr.Fall)
	}
}

func TestRequiredViolationsUnderRefinement(t *testing.T) {
	lib := prechar.MustLibrary()
	c := benchgen.C17()
	res, err := Refine(c, nineval.Cube{}, Options{Lib: lib, Mode: sta.ModeProposed})
	if err != nil {
		t.Fatal(err)
	}
	// Loose constraint: clean.
	if v := res.CheckViolations(sta.Constraint{MinTime: 0, MaxTime: 1e-6}, lib); len(v) != 0 {
		t.Errorf("loose constraint should pass, got %d violations", len(v))
	}
	// Impossible setup constraint: violations.
	if v := res.CheckViolations(sta.Constraint{MinTime: 0, MaxTime: 1e-12}, lib); len(v) == 0 {
		t.Error("tight constraint should fail")
	}
}

func TestRequiredTightensWithStates(t *testing.T) {
	// With a vector partially specified, surviving required windows never
	// get *looser* than STA's (the arcs can only disappear or keep their
	// bounds; dMin can only shrink toward pair corners that STA also
	// considers).
	lib := prechar.MustLibrary()
	c := benchgen.C17()
	cons := sta.Constraint{MinTime: 0.1e-9, MaxTime: 3e-9}

	staRes, err := sta.Analyze(c, sta.Options{Lib: lib, Mode: sta.ModeProposed})
	if err != nil {
		t.Fatal(err)
	}
	staReq := staRes.RequiredTimes(cons)

	cube := nineval.Cube{"1": nineval.V10, "2": nineval.V11}
	res, err := Refine(c, cube, Options{Lib: lib, Mode: sta.ModeProposed})
	if err != nil {
		t.Fatal(err)
	}
	itrReq := res.RequiredTimes(cons, lib)

	for net, ir := range itrReq {
		sr, ok := staReq[net]
		if !ok {
			continue
		}
		li := res.Lines[net]
		if li == nil {
			continue
		}
		// For surviving directions, ITR's QL must be >= STA's QL
		// (fewer constraining arcs -> less tight from above) and QS
		// <= ... actually both can only relax or stay; check the
		// setup bound direction.
		if li.HasRise() && !math.IsInf(sr.Rise.QL, 1) && !math.IsInf(ir.Rise.QL, 1) {
			if ir.Rise.QL < sr.Rise.QL-1e-15 {
				t.Errorf("%s rise QL tightened below STA: %g vs %g", net, ir.Rise.QL, sr.Rise.QL)
			}
		}
	}
}
