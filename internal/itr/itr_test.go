package itr

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"sstiming/internal/benchgen"
	"sstiming/internal/logicsim"
	"sstiming/internal/nineval"
	"sstiming/internal/prechar"
	"sstiming/internal/sta"
)

// TestEmptyCubeEqualsSTA checks the paper's statement that "STA is a special
// case of ITR where S_tr = 0 for every line": refining with an empty cube
// must reproduce the STA windows exactly.
func TestEmptyCubeEqualsSTA(t *testing.T) {
	lib := prechar.MustLibrary()
	for _, mode := range []sta.Mode{sta.ModeProposed, sta.ModePinToPin} {
		c := benchgen.C17()
		staRes, err := sta.Analyze(c, sta.Options{Lib: lib, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		itrRes, err := Refine(c, nineval.Cube{}, Options{Lib: lib, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		for net, li := range itrRes.Lines {
			if li.SRise != nineval.SMaybe || li.SFall != nineval.SMaybe {
				t.Errorf("mode %v: %s: states (%v,%v), want (0,0)", mode, net, li.SRise, li.SFall)
			}
			sw := staRes.Lines[net]
			if diffWindow(li.Rise, sw.Rise) > 1e-15 || diffWindow(li.Fall, sw.Fall) > 1e-15 {
				t.Errorf("mode %v: %s: ITR window differs from STA:\n  itr  %+v / %+v\n  sta  %+v / %+v",
					mode, net, li.Rise, li.Fall, sw.Rise, sw.Fall)
			}
		}
	}
}

func diffWindow(a, b sta.Window) float64 {
	return math.Max(math.Max(math.Abs(a.AS-b.AS), math.Abs(a.AL-b.AL)),
		math.Max(math.Abs(a.TS-b.TS), math.Abs(a.TL-b.TL)))
}

// TestRefinementTightensAndStaysSound is the core ITR property (Section 5):
// as values are specified, windows only shrink, and they always contain the
// timing-simulation result of any consistent full assignment.
func TestRefinementTightensAndStaysSound(t *testing.T) {
	lib := prechar.MustLibrary()
	c := benchgen.C17()
	const tol = 2e-12

	staRes, err := sta.Analyze(c, sta.Options{Lib: lib, Mode: sta.ModeProposed})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		v1 := logicsim.RandomVector(c, rng.Intn)
		v2 := logicsim.RandomVector(c, rng.Intn)
		sim, err := logicsim.Simulate(c, v1, v2, logicsim.Options{Lib: lib, Mode: logicsim.ModeProposed})
		if err != nil {
			t.Fatal(err)
		}

		// Full cube from the vector pair.
		cube := nineval.Cube{}
		for _, pi := range c.PIs {
			cube[pi] = nineval.Value{V1: nineval.Frame(v1[pi]), V2: nineval.Frame(v2[pi])}
		}
		res, err := Refine(c, cube, Options{Lib: lib, Mode: sta.ModeProposed})
		if err != nil {
			t.Fatal(err)
		}

		for net, ev := range sim.Events {
			w, ok := res.Window(net, ev.Rising)
			if !ok {
				t.Fatalf("trial %d: %s switched (%v) but ITR window undefined", trial, net, ev.Rising)
			}
			// Soundness: simulated event inside the refined window.
			if ev.Arrival < w.AS-tol || ev.Arrival > w.AL+tol {
				t.Errorf("trial %d: %s arrival %.4e outside ITR window [%.4e, %.4e]",
					trial, net, ev.Arrival, w.AS, w.AL)
			}
			if ev.Trans < w.TS-tol || ev.Trans > w.TL+tol {
				t.Errorf("trial %d: %s trans %.4e outside ITR window [%.4e, %.4e]",
					trial, net, ev.Trans, w.TS, w.TL)
			}
			// Refinement: the ITR window is inside the STA window.
			sw, _ := staRes.Window(net, ev.Rising)
			if w.AS < sw.AS-tol || w.AL > sw.AL+tol {
				t.Errorf("trial %d: %s ITR arrival window [%.4e,%.4e] not inside STA [%.4e,%.4e]",
					trial, net, w.AS, w.AL, sw.AS, sw.AL)
			}
		}

		// Non-switching directions must have no window (S = -1 ->
		// timing fields undefined).
		for net := range res.Lines {
			if sim.V1[net] == sim.V2[net] {
				if _, ok := res.Window(net, true); ok {
					if res.Lines[net].SRise == nineval.SNo {
						t.Errorf("trial %d: %s rise window defined despite S = -1", trial, net)
					}
				}
			}
		}
	}
}

func TestRefineWindowsShrinkMonotonically(t *testing.T) {
	// Assigning more PI values never widens a surviving window.
	lib := prechar.MustLibrary()
	c := benchgen.C17()
	rng := rand.New(rand.NewSource(33))
	const tol = 1e-12

	for trial := 0; trial < 10; trial++ {
		v1 := logicsim.RandomVector(c, rng.Intn)
		v2 := logicsim.RandomVector(c, rng.Intn)

		prev, err := Refine(c, nineval.Cube{}, Options{Lib: lib, Mode: sta.ModeProposed})
		if err != nil {
			t.Fatal(err)
		}
		cube := nineval.Cube{}
		for _, pi := range c.PIs {
			cube[pi] = nineval.Value{V1: nineval.Frame(v1[pi]), V2: nineval.Frame(v2[pi])}
			cur, err := Refine(c, cube, Options{Lib: lib, Mode: sta.ModeProposed})
			if err != nil {
				t.Fatal(err)
			}
			for net, li := range cur.Lines {
				pli := prev.Lines[net]
				for _, rising := range []bool{true, false} {
					w, ok := cur.windowOf(li, rising)
					if !ok {
						continue
					}
					pw, pok := prev.windowOf(pli, rising)
					if !pok {
						t.Errorf("trial %d: %s window reappeared after being ruled out", trial, net)
						continue
					}
					if w.AS < pw.AS-tol || w.AL > pw.AL+tol {
						t.Errorf("trial %d: %s %v window widened: [%.4e,%.4e] vs [%.4e,%.4e]",
							trial, net, rising, w.AS, w.AL, pw.AS, pw.AL)
					}
				}
			}
			prev = cur
		}
	}
}

func (r *Result) windowOf(li *LineInfo, rising bool) (sta.Window, bool) {
	if li == nil {
		return sta.Window{}, false
	}
	if rising {
		if !li.HasRise() {
			return sta.Window{}, false
		}
		return li.Rise, true
	}
	if !li.HasFall() {
		return sta.Window{}, false
	}
	return li.Fall, true
}

func TestRefineRejectsInconsistentCube(t *testing.T) {
	lib := prechar.MustLibrary()
	c := benchgen.C17()
	cube := nineval.Cube{"1": nineval.V00, "10": nineval.V00} // forces a conflict
	if _, err := Refine(c, cube, Options{Lib: lib}); err == nil {
		t.Error("expected error for inconsistent cube")
	}
	if _, err := Refine(c, nineval.Cube{}, Options{}); err == nil {
		t.Error("expected error for missing library")
	}
}

func TestDefiniteFallerTightensLatestArrival(t *testing.T) {
	// With input 1 of gate 10 = NAND(1,3) definitely falling, the latest
	// rise of net 10 is bounded by input 1's worst case, which is at
	// most the STA bound (max over both inputs).
	lib := prechar.MustLibrary()
	c := benchgen.C17()
	staRes, err := sta.Analyze(c, sta.Options{Lib: lib, Mode: sta.ModeProposed})
	if err != nil {
		t.Fatal(err)
	}
	cube := nineval.Cube{"1": nineval.V10} // PI 1 definitely falls
	res, err := Refine(c, cube, Options{Lib: lib, Mode: sta.ModeProposed})
	if err != nil {
		t.Fatal(err)
	}
	w, ok := res.Window("10", true)
	if !ok {
		t.Fatal("net 10 rise window undefined")
	}
	sw, _ := staRes.Window("10", true)
	if w.AL > sw.AL+1e-15 {
		t.Errorf("refined AL %g exceeds STA AL %g", w.AL, sw.AL)
	}
}

func TestTable1Rules(t *testing.T) {
	// Rule 1: Y cannot transition -> X must.
	for _, tgt := range AllTargets() {
		s := ImpliedSettings(tgt, nineval.SNo)
		if len(s) != 1 || s[0].SX != nineval.SYes || s[0].SY != nineval.SNo {
			t.Errorf("%v with S_Y=-1: %v, want [(1,-1)]", tgt, s)
		}
	}
	// Rule 2: minimising a to-controlling (rising) target with Y
	// definitely switching -> X joins (speed-up).
	aRS := Target{Rising: true}
	if s := ImpliedSettings(aRS, nineval.SYes); len(s) != 1 || s[0] != (Setting{nineval.SYes, nineval.SYes}) {
		t.Errorf("A_R,S with S_Y=1: %v, want [(1,1)]", s)
	}
	// Rule 3: minimising a to-non-controlling (falling) target with Y
	// definite -> X stays quiet.
	aFS := Target{Rising: false}
	if s := ImpliedSettings(aFS, nineval.SYes); len(s) != 1 || s[0] != (Setting{nineval.SNo, nineval.SYes}) {
		t.Errorf("A_F,S with S_Y=1: %v, want [(-1,1)]", s)
	}
	// Rule 4: minimising to-controlling with potential Y -> both switch.
	if s := ImpliedSettings(aRS, nineval.SMaybe); len(s) != 1 || s[0] != (Setting{nineval.SYes, nineval.SYes}) {
		t.Errorf("A_R,S with S_Y=0: %v, want [(1,1)]", s)
	}
	// Rule 5: minimising to-non-controlling with potential Y -> two cases.
	if s := ImpliedSettings(aFS, nineval.SMaybe); len(s) != 2 {
		t.Errorf("A_F,S with S_Y=0: %v, want two candidate settings", s)
	}
	// Dual of rule 2: maximising to-controlling with definite Y -> X quiet.
	aRL := Target{Rising: true, Largest: true}
	if s := ImpliedSettings(aRL, nineval.SYes); len(s) != 1 || s[0] != (Setting{nineval.SNo, nineval.SYes}) {
		t.Errorf("A_R,L with S_Y=1: %v, want [(-1,1)]", s)
	}
	// Dual of rule 3: maximising to-non-controlling -> both switch.
	aFL := Target{Rising: false, Largest: true}
	if s := ImpliedSettings(aFL, nineval.SYes); len(s) != 1 || s[0] != (Setting{nineval.SYes, nineval.SYes}) {
		t.Errorf("A_F,L with S_Y=1: %v, want [(1,1)]", s)
	}
}

func TestTable1Rendering(t *testing.T) {
	tbl := Table1()
	if len(tbl) == 0 {
		t.Fatal("empty table")
	}
	for _, want := range []string{"A_R,S", "T_F,L", "(1,1)", "(-1,1)"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
}

func TestTargetString(t *testing.T) {
	if (Target{Rising: true}).String() != "A_R,S" {
		t.Error("target string wrong")
	}
	if (Target{Trans: true, Largest: true}).String() != "T_F,L" {
		t.Error("target string wrong")
	}
	if n := len(AllTargets()); n != 8 {
		t.Errorf("%d targets, want 8", n)
	}
}
