package itr

import (
	"context"
	"errors"
	"testing"

	"sstiming/internal/benchgen"
	"sstiming/internal/nineval"
	"sstiming/internal/prechar"
	"sstiming/internal/spice"
)

// TestRefineCancelled: a cancelled context must abort the refinement with a
// spice.ErrCancelled-wrapped error and no partial result — the request-level
// counterpart of the solver's own cancellation path.
func TestRefineCancelled(t *testing.T) {
	lib := prechar.MustLibrary()
	c := benchgen.C17()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	res, err := Refine(c, nineval.Cube{}, Options{Lib: lib, Ctx: ctx})
	if res != nil {
		t.Fatal("cancelled refinement returned a partial result")
	}
	if !errors.Is(err, spice.ErrCancelled) {
		t.Fatalf("error does not wrap spice.ErrCancelled: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}

	// Without a context the same refinement succeeds — cancellation is a
	// property of the request, not the circuit.
	if _, err := Refine(c, nineval.Cube{}, Options{Lib: lib}); err != nil {
		t.Fatalf("clean refinement failed: %v", err)
	}
}
