package itr

import (
	"math"

	"sstiming/internal/core"
	"sstiming/internal/netlist"
	"sstiming/internal/nineval"
	"sstiming/internal/sta"
)

// RequiredTimes performs the state-aware backward traversal (the ITR
// counterpart of the STA required-time computation; the paper defers the
// details to its technical report [9], so this follows the same worst-case
// corner rules as the forward pass):
//
//   - required windows are only propagated along arcs whose input
//     transition is still possible (state != -1);
//   - the minimum arc delay exploits simultaneous switching only with
//     partners that can still transition;
//   - a line direction with state -1 receives no required window (its
//     timing fields are undefined).
func (r *Result) RequiredTimes(cons sta.Constraint, lib *core.Library) map[string]*sta.LineRequired {
	c := r.Circuit
	req := make(map[string]*sta.LineRequired, len(r.Lines))
	get := func(net string) *sta.LineRequired {
		lr, ok := req[net]
		if !ok {
			lr = &sta.LineRequired{
				Rise: sta.Required{QS: math.Inf(-1), QL: math.Inf(1)},
				Fall: sta.Required{QS: math.Inf(-1), QL: math.Inf(1)},
			}
			req[net] = lr
		}
		return lr
	}
	tighten := func(q *sta.Required, qs, ql float64) {
		if qs > q.QS {
			q.QS = qs
		}
		if ql < q.QL {
			q.QL = ql
		}
	}

	for _, po := range c.POs {
		li := r.Lines[po]
		if li == nil {
			continue
		}
		lr := get(po)
		if li.HasRise() {
			tighten(&lr.Rise, cons.MinTime, cons.MaxTime)
		}
		if li.HasFall() {
			tighten(&lr.Fall, cons.MinTime, cons.MaxTime)
		}
	}

	order := c.TopoOrder()
	for i := len(order) - 1; i >= 0; i-- {
		g := &c.Gates[order[i]]
		cell, ok := lib.Cell(g.CellName())
		if !ok {
			continue
		}
		extraLoad := float64(c.FanoutCount(g.Output)-1) * cell.RefLoad
		zReq := get(g.Output)
		zLine := r.Lines[g.Output]
		if zLine == nil {
			continue
		}

		for x, in := range g.Inputs {
			inLine := r.Lines[in]
			if inLine == nil {
				continue
			}
			xReq := get(in)

			type arc struct {
				inRise bool
				outReq *sta.Required
				outOK  bool
				ctrl   bool
			}
			var arcs []arc
			switch g.Kind {
			case netlist.Inv:
				arcs = []arc{
					{false, &zReq.Rise, zLine.HasRise(), true},
					{true, &zReq.Fall, zLine.HasFall(), false},
				}
			case netlist.Buf:
				arcs = []arc{
					{true, &zReq.Rise, zLine.HasRise(), true},
					{false, &zReq.Fall, zLine.HasFall(), false},
				}
			case netlist.Nand:
				arcs = []arc{
					{false, &zReq.Rise, zLine.HasRise(), true},
					{true, &zReq.Fall, zLine.HasFall(), false},
				}
			case netlist.Nor:
				arcs = []arc{
					{true, &zReq.Fall, zLine.HasFall(), true},
					{false, &zReq.Rise, zLine.HasRise(), false},
				}
			}

			for _, a := range arcs {
				if !a.outOK {
					continue
				}
				// The arc only constrains the input if the
				// input transition is still possible.
				var inState nineval.State
				var inWin sta.Window
				if a.inRise {
					inState, inWin = inLine.SRise, inLine.Rise
				} else {
					inState, inWin = inLine.SFall, inLine.Fall
				}
				if inState == nineval.SNo {
					continue
				}
				dMin, dMax := r.arcBounds(cell, g, x, a.ctrl, a.inRise, inWin, extraLoad)
				var tgt *sta.Required
				if a.inRise {
					tgt = &xReq.Rise
				} else {
					tgt = &xReq.Fall
				}
				tighten(tgt, a.outReq.QS-dMin, a.outReq.QL-dMax)
			}
		}
	}

	// Drop required windows for impossible transitions.
	for net, li := range r.Lines {
		lr, ok := req[net]
		if !ok {
			continue
		}
		if !li.HasRise() {
			lr.Rise = sta.Required{QS: math.Inf(-1), QL: math.Inf(1)}
		}
		if !li.HasFall() {
			lr.Fall = sta.Required{QS: math.Inf(-1), QL: math.Inf(1)}
		}
	}
	return req
}

// arcBounds returns the state-aware [dMin, dMax] of the input-to-output
// delay for one arc.
func (r *Result) arcBounds(cell *core.CellModel, g *netlist.Gate, x int, ctrl, inRise bool, inWin sta.Window, extraLoad float64) (dMin, dMax float64) {
	pins := cell.NonCtrlPins
	if ctrl {
		pins = cell.CtrlPins
	}
	p := &pins[x]
	loadD := p.DelayLoadSlope * extraLoad
	_, dMin = p.Delay.MinOver(inWin.TS, inWin.TL)
	_, dMax = p.Delay.MaxOver(inWin.TS, inWin.TL)
	dMin += loadD
	dMax += loadD

	if ctrl && cell.N >= 2 {
		for y := 0; y < cell.N; y++ {
			if y == x {
				continue
			}
			yLine := r.Lines[g.Inputs[y]]
			if yLine == nil {
				continue
			}
			var yState nineval.State
			var yWin sta.Window
			if inRise {
				yState, yWin = yLine.SRise, yLine.Rise
			} else {
				yState, yWin = yLine.SFall, yLine.Fall
			}
			if yState == nineval.SNo {
				continue
			}
			if d := cell.DelayCtrl2(x, y, inWin.TS, yWin.TS, 0, extraLoad); d < dMin {
				dMin = d
			}
		}
	}
	return dMin, dMax
}

// CheckViolations compares the refined arrival windows against the required
// windows under the PO constraint. Only defined (state != -1) directions
// are checked.
func (r *Result) CheckViolations(cons sta.Constraint, lib *core.Library) []sta.Violation {
	req := r.RequiredTimes(cons, lib)
	var out []sta.Violation
	for net, li := range r.Lines {
		lr, ok := req[net]
		if !ok {
			continue
		}
		check := func(w sta.Window, q sta.Required, rising bool) {
			if math.IsInf(q.QL, 1) && math.IsInf(q.QS, -1) {
				return
			}
			if s := q.QL - w.AL; s < 0 {
				out = append(out, sta.Violation{Net: net, Rising: rising, Setup: true, Slack: s})
			}
			if s := w.AS - q.QS; s < 0 {
				out = append(out, sta.Violation{Net: net, Rising: rising, Setup: false, Slack: s})
			}
		}
		if li.HasRise() {
			check(li.Rise, lr.Rise, true)
		}
		if li.HasFall() {
			check(li.Fall, lr.Fall, false)
		}
	}
	return out
}
