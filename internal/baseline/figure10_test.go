package baseline

import (
	"math"
	"testing"

	"sstiming/internal/core"
	"sstiming/internal/prechar"
)

// TestFigure10Regimes pins the paper's Figure 10 comparison on the real
// characterised library: each baseline model is accurate in its home regime
// and fails by a predictable margin outside it, across the NAND stack
// heights. The proposed model serves as the reference (it is the one fitted
// to the transistor-level data; the conformance harness ties it to the
// flattened simulation independently).
//
//   - Zero skew: the collapsing models (Jun, Nabavi) are near-exact, while
//     pin-to-pin misses the whole simultaneous-switching speed-up.
//   - Large skew: pin-to-pin is exact (the earliest input alone decides);
//     Jun's merged arrival keeps growing with |skew|/2 and overshoots
//     wildly; Nabavi additionally loses the stack position of the earliest
//     input when that input is deep.
//   - Deep stack, single input: the position-blind collapsing models quote
//     input 0's curve for every position and miss the deep-position
//     slow-down that pin-to-pin (and the proposed model) resolve.
func TestFigure10Regimes(t *testing.T) {
	lib, err := prechar.Library()
	if err != nil {
		t.Fatal(err)
	}
	const T = 0.4e-9 // input transition time for every probe

	type probe func(cell *core.CellModel, deep int, m Model) float64
	regimes := []struct {
		name     string
		eval     probe
		accurate []Model // within accTol of the proposed reference
		accTol   float64
		errs     []Model // off by at least errMin
		errMin   float64
	}{
		{
			name: "zero skew, pair (0, deep)",
			eval: func(cell *core.CellModel, deep int, m Model) float64 {
				return m.CtrlDelay2(cell, 0, deep, T, T, 0)
			},
			accurate: []Model{Jun{}, Nabavi{}},
			accTol:   1e-12,
			errs:     []Model{PinToPin{}},
			errMin:   50e-12, // the ignored speed-up is >= 57 ps on every NAND
		},
		{
			name: "large skew, pair (0, deep)",
			eval: func(cell *core.CellModel, deep int, m Model) float64 {
				return m.CtrlDelay2(cell, 0, deep, T, T, 2e-9)
			},
			accurate: []Model{PinToPin{}, Nabavi{}},
			accTol:   1e-12,
			errs:     []Model{Jun{}},
			errMin:   0.8e-9, // |skew|/2 = 1 ns of spurious delay
		},
		{
			name: "large skew, pair (deep, 0)",
			eval: func(cell *core.CellModel, deep int, m Model) float64 {
				return m.CtrlDelay2(cell, deep, 0, T, T, 2e-9)
			},
			accurate: []Model{PinToPin{}},
			accTol:   1e-12,
			errs:     []Model{Jun{}, Nabavi{}}, // Nabavi quotes pin 0 for a deep input
			errMin:   10e-12,
		},
		{
			name: "single input at the deep stack position",
			eval: func(cell *core.CellModel, deep int, m Model) float64 {
				return m.CtrlDelay1(cell, deep, T)
			},
			accurate: []Model{PinToPin{}},
			accTol:   0,
			errs:     []Model{Jun{}, Nabavi{}},
			errMin:   10e-12, // position spread is 18-35 ps across the stacks
		},
	}

	for _, cellName := range []string{"NAND2", "NAND3", "NAND4"} {
		cell, ok := lib.Cell(cellName)
		if !ok {
			t.Fatalf("library has no %s", cellName)
		}
		deep := cell.N - 1
		for _, rg := range regimes {
			truth := rg.eval(cell, deep, Proposed{})
			for _, m := range rg.accurate {
				got := rg.eval(cell, deep, m)
				if e := math.Abs(got - truth); e > rg.accTol {
					t.Errorf("%s, %s: %s = %.4g, want %.4g +- %.2g (err %.2g)",
						cellName, rg.name, m.Name(), got, truth, rg.accTol, e)
				}
			}
			for _, m := range rg.errs {
				got := rg.eval(cell, deep, m)
				if e := math.Abs(got - truth); e < rg.errMin {
					t.Errorf("%s, %s: %s = %.4g unexpectedly close to reference %.4g (err %.2g < %.2g)",
						cellName, rg.name, m.Name(), got, truth, e, rg.errMin)
				}
			}
		}
	}
}
