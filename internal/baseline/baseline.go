// Package baseline reimplements the delay models the DAC 2001 paper compares
// against in Section 6.1:
//
//   - PinToPin — the SDF-style pin-to-pin model used by conventional STA,
//     which ignores simultaneous switching entirely.
//   - Jun — an inverter-collapsing model in the style of Jun, Jun & Park
//     (IEEE TCAD 1989): parallel transistors are collapsed into an
//     equivalent inverter and the multiple input transitions are merged
//     into a single equivalent transition. Accurate near zero skew but,
//     because the merged transition's arrival keeps tracking the average
//     of the two inputs, it "fails to capture the delay for large skew".
//   - Nabavi — an inverter model in the style of Nabavi-Lishi & Rumin
//     (IEEE TCAD 1994), which assumes the simultaneous transitions share
//     a start time; it is accurate only when the two transition times are
//     close to each other and it ignores skew almost completely.
//
// Both inverter-collapsing reimplementations are deliberately position-blind
// (they always use input 0's characterised curves), reproducing the paper's
// Figure 10 observation that such methods mispredict single transitions at
// deep stack positions.
//
// Each baseline is expressed on top of the characterised core.CellModel so
// the comparison isolates *model structure* rather than characterisation
// quality — the same substitution the paper makes by fitting all models to
// the same HSPICE data.
package baseline

import (
	"math"

	"sstiming/internal/core"
)

// Model is a gate delay model for to-controlling responses, sufficient for
// the paper's accuracy comparisons (Figures 10-12).
type Model interface {
	// Name identifies the model in reports.
	Name() string
	// CtrlDelay1 returns the single-input to-controlling gate delay for
	// a transition with transition time t (seconds) at the given pin.
	CtrlDelay1(cell *core.CellModel, pin int, t float64) float64
	// CtrlDelay2 returns the to-controlling gate delay (measured from
	// the earliest input arrival) when inputs x and y switch with
	// transition times tx, ty and skew = Ay - Ax.
	CtrlDelay2(cell *core.CellModel, x, y int, tx, ty, skew float64) float64
}

// PinToPin is the SDF-style pin-to-pin model: per-pin delays (position
// aware), no simultaneous-switching speed-up.
type PinToPin struct{}

// Name implements Model.
func (PinToPin) Name() string { return "pin-to-pin" }

// CtrlDelay1 implements Model.
func (PinToPin) CtrlDelay1(cell *core.CellModel, pin int, t float64) float64 {
	return cell.CtrlPins[pin].DelayAt(t, 0)
}

// CtrlDelay2 implements Model: the earliest controlling input alone
// determines the output; the other transition is ignored.
func (PinToPin) CtrlDelay2(cell *core.CellModel, x, y int, tx, ty, skew float64) float64 {
	if skew >= 0 {
		return cell.CtrlPins[x].DelayAt(tx, 0)
	}
	return cell.CtrlPins[y].DelayAt(ty, 0)
}

// Proposed adapts the paper's model (package core) to the Model interface so
// the figure benches can sweep all models uniformly.
type Proposed struct{}

// Name implements Model.
func (Proposed) Name() string { return "proposed" }

// CtrlDelay1 implements Model.
func (Proposed) CtrlDelay1(cell *core.CellModel, pin int, t float64) float64 {
	return cell.CtrlPins[pin].DelayAt(t, 0)
}

// CtrlDelay2 implements Model.
func (Proposed) CtrlDelay2(cell *core.CellModel, x, y int, tx, ty, skew float64) float64 {
	return cell.DelayCtrl2(x, y, tx, ty, skew, 0)
}

// referencePair returns the position-blind simultaneous-switching surfaces
// the inverter-collapsing baselines use: pair (0,1), or the first available.
func referencePair(cell *core.CellModel) *core.PairTiming {
	if p := cell.Pair(0, 1); p != nil {
		return p
	}
	if len(cell.Pairs) > 0 {
		return &cell.Pairs[0].Timing
	}
	return nil
}

// Jun is the inverter-collapsing baseline. The two transitions are merged
// into one equivalent transition whose arrival is the average of the input
// arrivals; the equivalent inverter's zero-skew delay is exact, but the
// merged arrival makes the predicted delay grow with |skew|/2 indefinitely
// instead of saturating at the pin-to-pin delay.
type Jun struct{}

// Name implements Model.
func (Jun) Name() string { return "jun" }

// CtrlDelay1 implements Model. Position-blind: always input 0's curve.
func (Jun) CtrlDelay1(cell *core.CellModel, pin int, t float64) float64 {
	return cell.CtrlPins[0].DelayAt(t, 0)
}

// CtrlDelay2 implements Model.
func (Jun) CtrlDelay2(cell *core.CellModel, x, y int, tx, ty, skew float64) float64 {
	p := referencePair(cell)
	if p == nil {
		return (Jun{}).CtrlDelay1(cell, 0, tx)
	}
	// Equivalent collapsed inverter: exact at zero skew...
	d0 := p.D0.Eval(tx, ty)
	// ...but the merged equivalent transition arrives at the average of
	// the two arrivals, so relative to the earliest input the predicted
	// delay keeps growing by |skew|/2.
	return d0 + math.Abs(skew)/2
}

// Nabavi is the same-start-time inverter baseline. It maps the pair to a
// single equivalent transition of the *average* transition time and assumes
// both inputs start together, so the prediction is insensitive to the true
// skew until the transitions stop overlapping entirely.
type Nabavi struct{}

// Name implements Model.
func (Nabavi) Name() string { return "nabavi" }

// CtrlDelay1 implements Model. Position-blind: always input 0's curve.
func (Nabavi) CtrlDelay1(cell *core.CellModel, pin int, t float64) float64 {
	return cell.CtrlPins[0].DelayAt(t, 0)
}

// CtrlDelay2 implements Model.
func (Nabavi) CtrlDelay2(cell *core.CellModel, x, y int, tx, ty, skew float64) float64 {
	p := referencePair(cell)
	if p == nil {
		return (Nabavi{}).CtrlDelay1(cell, 0, tx)
	}
	tm := (tx + ty) / 2
	// Same-start-time assumption: evaluate the equivalent inverter at the
	// averaged transition time, irrespective of the actual skew, while
	// the transitions overlap at all.
	if math.Abs(skew) <= tm {
		return p.D0.Eval(tm, tm)
	}
	// Non-overlapping: fall back to the (position-blind) single-input
	// delay of the earliest input.
	if skew >= 0 {
		return cell.CtrlPins[0].DelayAt(tx, 0)
	}
	return cell.CtrlPins[0].DelayAt(ty, 0)
}
