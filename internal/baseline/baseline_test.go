package baseline

import (
	"math"
	"testing"

	"sstiming/internal/core"
)

// model builds a small synthetic NAND2 model (same shape as core's tests).
func model() *core.CellModel {
	pin := func(c0 float64) core.PinTiming {
		return core.PinTiming{
			Delay: core.Quad{K: [3]float64{0, 0.1, c0}},
			Trans: core.Quad{K: [3]float64{0, 0.2, 0.3}},
		}
	}
	pairT := core.PairTiming{
		D0:    core.Cross{K1: 0.12},
		SX:    core.Quad2{K1: 0.5},
		T0:    core.Cross{K1: 0.25},
		SKmin: core.Quad2{K1: 0},
	}
	return &core.CellModel{
		Name: "NAND2", Kind: "NAND", N: 2, CtrlOutRising: true,
		CtrlPins:    []core.PinTiming{pin(0.2), pin(0.3)},
		NonCtrlPins: []core.PinTiming{pin(0.3), pin(0.35)},
		Pairs: []core.PairEntry{
			{X: 0, Y: 1, Timing: pairT},
			{X: 1, Y: 0, Timing: pairT},
		},
	}
}

func TestNames(t *testing.T) {
	for _, m := range []Model{PinToPin{}, Proposed{}, Jun{}, Nabavi{}} {
		if m.Name() == "" {
			t.Errorf("%T has empty name", m)
		}
	}
}

func TestPinToPinIgnoresSimultaneous(t *testing.T) {
	m := model()
	const T = 0.5e-9
	p := PinToPin{}
	if d := p.CtrlDelay2(m, 0, 1, T, T, 0); d != m.CtrlPins[0].DelayAt(T, 0) {
		t.Errorf("pin-to-pin at zero skew = %g, want single-input delay", d)
	}
	if d := p.CtrlDelay2(m, 0, 1, T, T, -1e-9); d != m.CtrlPins[1].DelayAt(T, 0) {
		t.Errorf("pin-to-pin negative skew should use pin 1")
	}
}

func TestProposedMatchesCore(t *testing.T) {
	m := model()
	const T = 0.5e-9
	p := Proposed{}
	for _, skew := range []float64{-0.8e-9, -0.2e-9, 0, 0.3e-9, 1e-9} {
		if got, want := p.CtrlDelay2(m, 0, 1, T, T, skew), m.DelayCtrl2(0, 1, T, T, skew, 0); got != want {
			t.Errorf("skew %g: proposed adapter %g != core %g", skew, got, want)
		}
	}
}

func TestJunAccurateAtZeroSkewFailsAtLargeSkew(t *testing.T) {
	m := model()
	const T = 0.5e-9
	j := Jun{}
	// Zero skew: matches the true minimal delay.
	if d := j.CtrlDelay2(m, 0, 1, T, T, 0); math.Abs(d-0.12e-9) > 1e-15 {
		t.Errorf("jun at zero skew = %g, want 0.12ns", d)
	}
	// Large skew: true delay saturates at pin-to-pin; Jun's keeps growing.
	truth := m.DelayCtrl2(0, 1, T, T, 2e-9, 0)
	jun := j.CtrlDelay2(m, 0, 1, T, T, 2e-9)
	if jun <= truth {
		t.Errorf("jun at large skew (%g) should overshoot the saturated delay (%g)", jun, truth)
	}
}

func TestNabaviIgnoresSkewWhileOverlapping(t *testing.T) {
	m := model()
	const T = 0.5e-9
	n := Nabavi{}
	d1 := n.CtrlDelay2(m, 0, 1, T, T, 0)
	d2 := n.CtrlDelay2(m, 0, 1, T, T, 0.3e-9)
	if d1 != d2 {
		t.Errorf("nabavi should be skew-insensitive while overlapping: %g vs %g", d1, d2)
	}
	// Beyond overlap it reverts to (position-blind) single-input delay.
	d3 := n.CtrlDelay2(m, 0, 1, T, T, 1e-9)
	if d3 != m.CtrlPins[0].DelayAt(T, 0) {
		t.Errorf("nabavi beyond overlap = %g, want pin-0 delay", d3)
	}
}

func TestNabaviErrsForUnequalTransitionTimes(t *testing.T) {
	// Build a model whose D0 surface is genuinely 2-D so averaging the
	// transition times loses information.
	m := model()
	for i := range m.Pairs {
		// Small enough that core's Claim-1 clamp never engages.
		m.Pairs[i].Timing.D0 = core.Cross{Kxy: 0.05, Kx: 0.02, Ky: 0.06, K1: 0.01}
	}
	n := Nabavi{}
	p := Proposed{}
	txEq, tyEq := 0.5e-9, 0.5e-9
	txNe, tyNe := 0.1e-9, 1.4e-9

	errEq := math.Abs(n.CtrlDelay2(m, 0, 1, txEq, tyEq, 0) - p.CtrlDelay2(m, 0, 1, txEq, tyEq, 0))
	errNe := math.Abs(n.CtrlDelay2(m, 0, 1, txNe, tyNe, 0) - p.CtrlDelay2(m, 0, 1, txNe, tyNe, 0))
	if errEq > 1e-15 {
		t.Errorf("nabavi should be exact for equal transition times, err = %g", errEq)
	}
	if errNe <= errEq {
		t.Errorf("nabavi error for unequal transition times (%g) should exceed equal case (%g)", errNe, errEq)
	}
}

func TestCollapsingModelsArePositionBlind(t *testing.T) {
	m := model()
	// Make pin 1's curve clearly different from pin 0's.
	const T = 0.5e-9
	for _, mdl := range []Model{Jun{}, Nabavi{}} {
		d0 := mdl.CtrlDelay1(m, 0, T)
		d1 := mdl.CtrlDelay1(m, 1, T)
		if d0 != d1 {
			t.Errorf("%s should be position-blind: %g vs %g", mdl.Name(), d0, d1)
		}
	}
	// The pin-to-pin and proposed models are position aware.
	if (PinToPin{}).CtrlDelay1(m, 0, T) == (PinToPin{}).CtrlDelay1(m, 1, T) {
		t.Error("pin-to-pin should distinguish pins")
	}
}

func TestFallbacksWithoutPairData(t *testing.T) {
	m := model()
	m.Pairs = nil
	const T = 0.5e-9
	if d := (Jun{}).CtrlDelay2(m, 0, 1, T, T, 0); d != m.CtrlPins[0].DelayAt(T, 0) {
		t.Errorf("jun fallback = %g", d)
	}
	if d := (Nabavi{}).CtrlDelay2(m, 0, 1, T, T, 0); d != m.CtrlPins[0].DelayAt(T, 0) {
		t.Errorf("nabavi fallback = %g", d)
	}
}
