// Package logicsim implements two-pattern timing simulation ("TS" in the
// paper's taxonomy): given a fully specified vector pair at the primary
// inputs, it computes for every line the settled logic values of both
// time-frames and — for lines that switch — the transition's arrival time
// and transition time under a chosen delay model.
//
// The simulator uses the static two-frame semantics of the paper's test
// generation framework: each line carries at most one transition (hazards
// and glitches are outside the model, as they are for the paper's delay
// definitions). To-controlling responses use the simultaneous-switching
// model of package core; to-non-controlling responses use pin-to-pin delays
// combined with max, exactly matching the paper's gate delay definitions in
// Section 3.
//
// Timing simulation is the reference against which the STA windows are
// validated: every simulated arrival/transition must fall inside the
// corresponding STA window (tested in this package).
package logicsim

import (
	"context"
	"fmt"

	"sstiming/internal/core"
	"sstiming/internal/engine"
	"sstiming/internal/netlist"
)

// Mode selects the delay model.
type Mode int

const (
	// ModeProposed uses the simultaneous-switching model.
	ModeProposed Mode = iota
	// ModePinToPin ignores simultaneous switching (earliest controlling
	// input wins alone).
	ModePinToPin
)

// Vector assigns a logic value (0 or 1) to every primary input.
type Vector map[string]int

// Event is the timed transition on one line.
type Event struct {
	// Rising is the transition direction.
	Rising bool
	// Arrival is the 50% crossing time in seconds.
	Arrival float64
	// Trans is the 10%-90% transition time in seconds.
	Trans float64
}

// Options configures a simulation.
type Options struct {
	// Lib is the characterised cell library (required).
	Lib *core.Library
	// Mode selects the delay model.
	Mode Mode
	// PIArrival is the transition arrival applied at switching primary
	// inputs (default 0).
	PIArrival float64
	// PITrans is the input transition time (default 0.2 ns).
	PITrans float64
	// NCExtension enables the simultaneous to-non-controlling Λ-shape
	// model (the paper's Section 3.6 future work) for multi-input
	// to-non-controlling responses. Requires a library characterised
	// with charlib.Options.NCPairs.
	NCExtension bool
	// Ctx, when non-nil, cancels the simulation between logic levels.
	Ctx context.Context
	// Jobs bounds the engine worker pool used to evaluate the gates of
	// one logic level concurrently; zero or one runs serially. Results
	// are independent of the worker count.
	Jobs int
	// Metrics, when non-nil, counts gate evaluations.
	Metrics *engine.Metrics
}

// Result holds the simulation outcome.
type Result struct {
	// V1 and V2 are the settled logic values of the two frames for every
	// net.
	V1, V2 map[string]int
	// Events maps each switching net to its transition.
	Events map[string]Event
}

// Simulate runs the two-pattern timing simulation.
func Simulate(c *netlist.Circuit, v1, v2 Vector, opts Options) (*Result, error) {
	if opts.Lib == nil {
		return nil, fmt.Errorf("logicsim: Options.Lib is required")
	}
	if err := c.EnsureBuilt(); err != nil {
		return nil, fmt.Errorf("logicsim: %w", err)
	}
	piTrans := opts.PITrans
	if piTrans <= 0 {
		piTrans = 0.2e-9
	}

	res := &Result{
		V1:     make(map[string]int),
		V2:     make(map[string]int),
		Events: make(map[string]Event),
	}

	for _, pi := range c.PIs {
		a, ok1 := v1[pi]
		b, ok2 := v2[pi]
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("logicsim: vector does not cover PI %q", pi)
		}
		if (a != 0 && a != 1) || (b != 0 && b != 1) {
			return nil, fmt.Errorf("logicsim: PI %q has non-binary value", pi)
		}
		res.V1[pi] = a
		res.V2[pi] = b
		if a != b {
			res.Events[pi] = Event{Rising: b == 1, Arrival: opts.PIArrival, Trans: piTrans}
		}
	}

	// gateOut is one gate's evaluation result, staged per level so gates
	// of the same logic level can run on the engine pool: within a level
	// every gate reads only earlier levels' maps, and the writes are
	// merged serially afterwards in topological order — identical to the
	// serial schedule.
	type gateOut struct {
		o1, o2   int
		ev       Event
		switched bool
	}
	evalGate := func(gi int) (gateOut, error) {
		g := &c.Gates[gi]
		cell, ok := opts.Lib.Cell(g.CellName())
		if !ok {
			return gateOut{}, fmt.Errorf("logicsim: no library cell %q for gate %q", g.CellName(), g.Output)
		}
		opts.Metrics.Add(engine.SimGateEvals, 1)

		in1 := make([]int, len(g.Inputs))
		in2 := make([]int, len(g.Inputs))
		for i, in := range g.Inputs {
			in1[i] = res.V1[in]
			in2[i] = res.V2[in]
		}
		o1, err := g.Kind.Eval(in1)
		if err != nil {
			return gateOut{}, fmt.Errorf("logicsim: gate %q: %w", g.Output, err)
		}
		o2, err := g.Kind.Eval(in2)
		if err != nil {
			return gateOut{}, fmt.Errorf("logicsim: gate %q: %w", g.Output, err)
		}
		out := gateOut{o1: o1, o2: o2}
		if o1 == o2 {
			return out, nil
		}

		extraLoad := float64(c.FanoutCount(g.Output)-1) * cell.RefLoad
		ev, err := gateEvent(c, g, cell, res, o2 == 1, extraLoad, opts.Mode, opts.NCExtension)
		if err != nil {
			return gateOut{}, err
		}
		out.ev, out.switched = ev, true
		return out, nil
	}

	for _, lv := range levelGroups(c) {
		if err := ctxErr(opts.Ctx); err != nil {
			return nil, fmt.Errorf("logicsim: %w", err)
		}
		outs := make([]gateOut, len(lv))
		if engine.Workers(opts.Jobs) == 1 || len(lv) == 1 {
			for i, gi := range lv {
				var err error
				if outs[i], err = evalGate(gi); err != nil {
					return nil, err
				}
			}
		} else {
			err := engine.Run(opts.Ctx, opts.Jobs, len(lv), func(_ context.Context, i int) error {
				var err error
				outs[i], err = evalGate(lv[i])
				return err
			})
			if err != nil {
				return nil, err
			}
		}
		for i, gi := range lv {
			g := &c.Gates[gi]
			res.V1[g.Output] = outs[i].o1
			res.V2[g.Output] = outs[i].o2
			if outs[i].switched {
				res.Events[g.Output] = outs[i].ev
			}
		}
	}
	return res, nil
}

// levelGroups buckets the topological order by logic level; gates within
// one bucket are mutually independent.
func levelGroups(c *netlist.Circuit) [][]int {
	var groups [][]int
	for _, gi := range c.TopoOrder() {
		lvl := c.Level(gi)
		for len(groups) <= lvl {
			groups = append(groups, nil)
		}
		groups[lvl] = append(groups[lvl], gi)
	}
	return groups
}

// ctxErr reports a nil-safe context error.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// gateEvent computes the output transition of a switching gate from its
// switching inputs' events.
func gateEvent(c *netlist.Circuit, g *netlist.Gate, cell *core.CellModel, res *Result, outRising bool, extraLoad float64, mode Mode, ncExt bool) (Event, error) {
	// Determine which response this is and collect the causal input
	// events.
	var ctrl bool
	switch g.Kind {
	case netlist.Inv:
		ctrl = outRising // falling input -> rising output is the "ctrl" table
	case netlist.Buf:
		ctrl = outRising
	case netlist.Nand:
		ctrl = outRising
	case netlist.Nor:
		ctrl = !outRising
	}

	var events []core.InputEvent
	for i, in := range g.Inputs {
		ev, switched := res.Events[in]
		if !switched {
			continue
		}
		if g.Kind == netlist.Nand || g.Kind == netlist.Nor {
			// Only transitions in the causal direction matter:
			// to-controlling for the ctrl response (falling for
			// NAND), to-non-controlling otherwise.
			cv := g.Kind.ControllingValue()
			toCtrl := (cv == 0 && !ev.Rising) || (cv == 1 && ev.Rising)
			if ctrl != toCtrl {
				continue
			}
		}
		events = append(events, core.InputEvent{Pin: i, Arrival: ev.Arrival, Trans: ev.Trans})
	}
	if len(events) == 0 {
		return Event{}, fmt.Errorf("logicsim: gate %q output switches with no causal input event", g.Output)
	}

	var resp core.Response
	var err error
	if ctrl {
		if mode == ModePinToPin {
			resp, err = pinToPinCtrl(cell, events, extraLoad)
		} else {
			resp, err = cell.CtrlResponse(events, extraLoad)
		}
	} else if ncExt && mode != ModePinToPin {
		resp, err = cell.NonCtrlResponseExt(events, extraLoad)
	} else {
		resp, err = cell.NonCtrlResponse(events, extraLoad)
	}
	if err != nil {
		return Event{}, fmt.Errorf("logicsim: gate %q: %w", g.Output, err)
	}
	return Event{Rising: outRising, Arrival: resp.Arrival, Trans: resp.Trans}, nil
}

// pinToPinCtrl is the pin-to-pin to-controlling response: the earliest
// single-input candidate wins; simultaneous switching is ignored.
func pinToPinCtrl(cell *core.CellModel, events []core.InputEvent, extraLoad float64) (core.Response, error) {
	var out core.Response
	first := true
	for _, e := range events {
		if e.Pin < 0 || e.Pin >= cell.N {
			return core.Response{}, fmt.Errorf("invalid pin %d", e.Pin)
		}
		arr := e.Arrival + cell.CtrlPins[e.Pin].DelayAt(e.Trans, extraLoad)
		tr := cell.CtrlPins[e.Pin].TransAt(e.Trans, extraLoad)
		if first || arr < out.Arrival {
			out.Arrival = arr
			out.Trans = tr
			first = false
		}
	}
	return out, nil
}

// RandomVector draws a uniformly random vector for the circuit's PIs using
// the given source function (e.g. rng.Intn).
func RandomVector(c *netlist.Circuit, intn func(int) int) Vector {
	v := make(Vector, len(c.PIs))
	for _, pi := range c.PIs {
		v[pi] = intn(2)
	}
	return v
}
