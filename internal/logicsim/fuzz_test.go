package logicsim

import (
	"math/rand"
	"testing"

	"sstiming/internal/benchgen"
	"sstiming/internal/prechar"
	"sstiming/internal/sta"
)

// TestContainmentOnRandomTopologies fuzzes circuit topology: many small
// random circuits are generated (different seeds, shapes and gate mixes)
// and the STA-contains-simulation property is checked on each. This guards
// the window propagation rules against topology corner cases (NOR-heavy
// fabrics, buffer chains, deep reconvergence) that the fixed benchmarks may
// not exercise.
func TestContainmentOnRandomTopologies(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing")
	}
	lib := prechar.MustLibrary()
	const tol = 2e-12

	for seed := int64(1); seed <= 12; seed++ {
		prof := benchgen.Profile{
			Name:  "fuzz",
			PIs:   4 + int(seed%5),
			POs:   2 + int(seed%3),
			Gates: 20 + int(seed*7)%40,
			Depth: 4 + int(seed)%6,
			Seed:  seed * 1013,
		}
		c, err := benchgen.Generate(prof)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		for _, mode := range []sta.Mode{sta.ModeProposed, sta.ModePinToPin} {
			staMode := mode
			simMode := ModeProposed
			if mode == sta.ModePinToPin {
				simMode = ModePinToPin
			}
			res, err := sta.Analyze(c, sta.Options{Lib: lib, Mode: staMode})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			rng := rand.New(rand.NewSource(seed))
			for trial := 0; trial < 6; trial++ {
				v1 := RandomVector(c, rng.Intn)
				v2 := RandomVector(c, rng.Intn)
				sim, err := Simulate(c, v1, v2, Options{Lib: lib, Mode: simMode})
				if err != nil {
					t.Fatalf("seed %d trial %d: %v", seed, trial, err)
				}
				for net, ev := range sim.Events {
					w, ok := res.Window(net, ev.Rising)
					if !ok {
						t.Fatalf("seed %d: no window for %s", seed, net)
					}
					if ev.Arrival < w.AS-tol || ev.Arrival > w.AL+tol {
						t.Errorf("seed %d/%v trial %d: %s arrival %.4e outside [%.4e, %.4e]",
							seed, mode, trial, net, ev.Arrival, w.AS, w.AL)
					}
					if ev.Trans < w.TS-tol || ev.Trans > w.TL+tol {
						t.Errorf("seed %d/%v trial %d: %s trans %.4e outside [%.4e, %.4e]",
							seed, mode, trial, net, ev.Trans, w.TS, w.TL)
					}
				}
			}
		}
	}
}

// TestNCExtensionContainmentOnRandomTopologies repeats the fuzz with the
// Section 3.6 extension enabled on both sides.
func TestNCExtensionContainmentOnRandomTopologies(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing")
	}
	lib := prechar.MustLibrary()
	const tol = 2e-12

	for seed := int64(1); seed <= 6; seed++ {
		prof := benchgen.Profile{
			Name:  "fuzznc",
			PIs:   5,
			POs:   3,
			Gates: 30 + int(seed*11)%30,
			Depth: 5,
			Seed:  seed * 977,
		}
		c, err := benchgen.Generate(prof)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sta.Analyze(c, sta.Options{Lib: lib, Mode: sta.ModeProposed, NCExtension: true})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 6; trial++ {
			v1 := RandomVector(c, rng.Intn)
			v2 := RandomVector(c, rng.Intn)
			sim, err := Simulate(c, v1, v2, Options{Lib: lib, NCExtension: true})
			if err != nil {
				t.Fatal(err)
			}
			for net, ev := range sim.Events {
				w, ok := res.Window(net, ev.Rising)
				if !ok {
					t.Fatalf("seed %d: no window for %s", seed, net)
				}
				if ev.Arrival < w.AS-tol || ev.Arrival > w.AL+tol {
					t.Errorf("seed %d trial %d: %s arrival %.4e outside [%.4e, %.4e]",
						seed, trial, net, ev.Arrival, w.AS, w.AL)
				}
			}
		}
	}
}
