package logicsim

import (
	"fmt"

	"sstiming/internal/netlist"
)

// FaultInjection models a crosstalk delay fault at simulation time (the
// paper's Section 7 fault model): when the aggressor line carries a
// transition whose arrival falls within Window of the victim's transition,
// the victim's transition is slowed by ExtraDelay and its transition time
// stretched by ExtraTrans. The slowdown then propagates downstream through
// the ordinary delay model.
type FaultInjection struct {
	// Aggressor and Victim are the coupled nets.
	Aggressor, Victim string
	// AggRising/VicRising select the transition directions that couple
	// (opposite directions slow the victim down).
	AggRising, VicRising bool
	// Window is the alignment window in seconds.
	Window float64
	// ExtraDelay is added to the victim's arrival when the fault is
	// excited.
	ExtraDelay float64
	// ExtraTrans is added to the victim's transition time when excited.
	ExtraTrans float64
}

// SimulateFaulty runs the two-pattern timing simulation with the crosstalk
// fault injected. It returns the fault-free result, the faulty result, and
// whether the fault was excited (transitions present, directions matching,
// and aligned within the window). When the fault is not excited the faulty
// result aliases the clean one.
//
// The implementation simulates fault-free first to obtain the victim and
// aggressor transitions, decides excitation, and then re-runs the forward
// pass with the victim's event displaced so that the slowdown propagates
// downstream through the ordinary delay model.
func SimulateFaulty(c *netlist.Circuit, v1, v2 Vector, f FaultInjection, opts Options) (clean, faulty *Result, excited bool, err error) {
	if f.Aggressor == f.Victim {
		return nil, nil, false, fmt.Errorf("logicsim: fault couples a net to itself: %q", f.Victim)
	}
	clean, err = Simulate(c, v1, v2, opts)
	if err != nil {
		return nil, nil, false, err
	}
	agg, okA := clean.Events[f.Aggressor]
	vic, okV := clean.Events[f.Victim]
	if !okA || !okV {
		return clean, clean, false, nil
	}
	if agg.Rising != f.AggRising || vic.Rising != f.VicRising {
		return clean, clean, false, nil
	}
	if d := agg.Arrival - vic.Arrival; d > f.Window || d < -f.Window {
		return clean, clean, false, nil
	}

	// Excited: re-run the forward pass, overriding the victim's event.
	faulty, err = simulateWithOverride(c, v1, v2, opts, f.Victim, Event{
		Rising:  vic.Rising,
		Arrival: vic.Arrival + f.ExtraDelay,
		Trans:   vic.Trans + f.ExtraTrans,
	})
	if err != nil {
		return nil, nil, false, err
	}
	return clean, faulty, true, nil
}

// simulateWithOverride repeats the timing pass, replacing the computed event
// of one net with the given event before its fanout is evaluated. Logic
// values are unchanged (a delay fault does not alter steady-state logic).
func simulateWithOverride(c *netlist.Circuit, v1, v2 Vector, opts Options, overrideNet string, ev Event) (*Result, error) {
	res := &Result{
		V1:     make(map[string]int),
		V2:     make(map[string]int),
		Events: make(map[string]Event),
	}
	piTrans := opts.PITrans
	if piTrans <= 0 {
		piTrans = 0.2e-9
	}
	for _, pi := range c.PIs {
		res.V1[pi] = v1[pi]
		res.V2[pi] = v2[pi]
		if v1[pi] != v2[pi] {
			e := Event{Rising: v2[pi] == 1, Arrival: opts.PIArrival, Trans: piTrans}
			if pi == overrideNet {
				e = ev
			}
			res.Events[pi] = e
		}
	}

	for _, gi := range c.TopoOrder() {
		g := &c.Gates[gi]
		cell, ok := opts.Lib.Cell(g.CellName())
		if !ok {
			return nil, fmt.Errorf("logicsim: no library cell %q for gate %q", g.CellName(), g.Output)
		}
		in1 := make([]int, len(g.Inputs))
		in2 := make([]int, len(g.Inputs))
		for i, in := range g.Inputs {
			in1[i] = res.V1[in]
			in2[i] = res.V2[in]
		}
		o1, err := g.Kind.Eval(in1)
		if err != nil {
			return nil, fmt.Errorf("logicsim: gate %q: %w", g.Output, err)
		}
		o2, err := g.Kind.Eval(in2)
		if err != nil {
			return nil, fmt.Errorf("logicsim: gate %q: %w", g.Output, err)
		}
		res.V1[g.Output] = o1
		res.V2[g.Output] = o2
		if o1 == o2 {
			continue
		}
		extraLoad := float64(c.FanoutCount(g.Output)-1) * cell.RefLoad
		e, err := gateEvent(c, g, cell, res, o2 == 1, extraLoad, opts.Mode, opts.NCExtension)
		if err != nil {
			return nil, err
		}
		if g.Output == overrideNet {
			e = ev
		}
		res.Events[g.Output] = e
	}
	return res, nil
}
