package logicsim

import (
	"math/rand"
	"testing"

	"sstiming/internal/benchgen"
	"sstiming/internal/netlist"
	"sstiming/internal/prechar"
	"sstiming/internal/sta"
)

func TestLogicValuesMatchDirectEvaluation(t *testing.T) {
	lib := prechar.MustLibrary()
	c := benchgen.C17()
	rng := rand.New(rand.NewSource(11))

	for trial := 0; trial < 32; trial++ {
		v1 := RandomVector(c, rng.Intn)
		v2 := RandomVector(c, rng.Intn)
		res, err := Simulate(c, v1, v2, Options{Lib: lib})
		if err != nil {
			t.Fatal(err)
		}
		// Re-evaluate frame 2 independently.
		vals := make(map[string]int)
		for _, pi := range c.PIs {
			vals[pi] = v2[pi]
		}
		for _, gi := range c.TopoOrder() {
			g := &c.Gates[gi]
			in := make([]int, len(g.Inputs))
			for i, n := range g.Inputs {
				in[i] = vals[n]
			}
			v, err := g.Kind.Eval(in)
			if err != nil {
				t.Fatal(err)
			}
			vals[g.Output] = v
		}
		for net, want := range vals {
			if res.V2[net] != want {
				t.Fatalf("trial %d: V2[%s] = %d, want %d", trial, net, res.V2[net], want)
			}
		}
		// Event consistency: a net has an event iff V1 != V2, and the
		// direction matches.
		for net := range res.V1 {
			ev, has := res.Events[net]
			switched := res.V1[net] != res.V2[net]
			if has != switched {
				t.Fatalf("trial %d: net %s event presence %v but switched %v", trial, net, has, switched)
			}
			if has && ev.Rising != (res.V2[net] == 1) {
				t.Fatalf("trial %d: net %s event direction wrong", trial, net)
			}
		}
	}
}

func TestEventsRespectCausality(t *testing.T) {
	lib := prechar.MustLibrary()
	c := benchgen.C17()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 16; trial++ {
		v1 := RandomVector(c, rng.Intn)
		v2 := RandomVector(c, rng.Intn)
		res, err := Simulate(c, v1, v2, Options{Lib: lib})
		if err != nil {
			t.Fatal(err)
		}
		for i := range c.Gates {
			g := &c.Gates[i]
			ev, has := res.Events[g.Output]
			if !has {
				continue
			}
			// The output must switch after at least one input event.
			earliest := -1.0
			for _, in := range g.Inputs {
				if ie, ok := res.Events[in]; ok {
					if earliest < 0 || ie.Arrival < earliest {
						earliest = ie.Arrival
					}
				}
			}
			if earliest < 0 {
				t.Fatalf("gate %s switched without input events", g.Output)
			}
			if ev.Arrival <= earliest {
				t.Errorf("gate %s arrival %g not after earliest cause %g", g.Output, ev.Arrival, earliest)
			}
			if ev.Trans <= 0 {
				t.Errorf("gate %s transition time %g, want > 0", g.Output, ev.Trans)
			}
		}
	}
}

// TestSTAWindowsContainSimulation is the key soundness property linking the
// two applications: for any fully specified vector pair, every simulated
// arrival and transition time must fall inside the STA min-max window of the
// same line and direction — for both delay models.
func TestSTAWindowsContainSimulation(t *testing.T) {
	lib := prechar.MustLibrary()
	const tol = 2e-12

	for _, benchName := range []string{"c17", "c432"} {
		c, err := benchgen.Load(benchName)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []Mode{ModeProposed, ModePinToPin} {
			staMode := sta.ModeProposed
			if mode == ModePinToPin {
				staMode = sta.ModePinToPin
			}
			staRes, err := sta.Analyze(c, sta.Options{Lib: lib, Mode: staMode})
			if err != nil {
				t.Fatal(err)
			}

			rng := rand.New(rand.NewSource(99))
			trials := 24
			if benchName == "c432" {
				trials = 8
			}
			for trial := 0; trial < trials; trial++ {
				v1 := RandomVector(c, rng.Intn)
				v2 := RandomVector(c, rng.Intn)
				simRes, err := Simulate(c, v1, v2, Options{Lib: lib, Mode: mode})
				if err != nil {
					t.Fatal(err)
				}
				for net, ev := range simRes.Events {
					w, ok := staRes.Window(net, ev.Rising)
					if !ok {
						t.Fatalf("%s: no STA window for %s", benchName, net)
					}
					if ev.Arrival < w.AS-tol || ev.Arrival > w.AL+tol {
						t.Errorf("%s/%v trial %d: %s arrival %.4e outside STA window [%.4e, %.4e]",
							benchName, mode, trial, net, ev.Arrival, w.AS, w.AL)
					}
					if ev.Trans < w.TS-tol || ev.Trans > w.TL+tol {
						t.Errorf("%s/%v trial %d: %s trans %.4e outside STA window [%.4e, %.4e]",
							benchName, mode, trial, net, ev.Trans, w.TS, w.TL)
					}
				}
			}
		}
	}
}

func TestProposedNeverSlowerThanPinToPin(t *testing.T) {
	// Simultaneous switching only speeds transitions up: for the same
	// vector pair, the proposed-model arrival of any event is <= the
	// pin-to-pin arrival.
	lib := prechar.MustLibrary()
	c := benchgen.C17()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 24; trial++ {
		v1 := RandomVector(c, rng.Intn)
		v2 := RandomVector(c, rng.Intn)
		prop, err := Simulate(c, v1, v2, Options{Lib: lib, Mode: ModeProposed})
		if err != nil {
			t.Fatal(err)
		}
		p2p, err := Simulate(c, v1, v2, Options{Lib: lib, Mode: ModePinToPin})
		if err != nil {
			t.Fatal(err)
		}
		for net, pe := range prop.Events {
			qe, ok := p2p.Events[net]
			if !ok {
				t.Fatalf("event sets differ at %s", net)
			}
			if pe.Arrival > qe.Arrival+1e-15 {
				t.Errorf("trial %d: %s proposed arrival %g after pin-to-pin %g",
					trial, net, pe.Arrival, qe.Arrival)
			}
		}
	}
}

func TestSimulateErrors(t *testing.T) {
	lib := prechar.MustLibrary()
	c := benchgen.C17()
	full := RandomVector(c, func(int) int { return 1 })
	if _, err := Simulate(c, full, full, Options{}); err == nil {
		t.Error("expected error for missing library")
	}
	partial := Vector{"1": 1}
	if _, err := Simulate(c, partial, full, Options{Lib: lib}); err == nil {
		t.Error("expected error for incomplete vector")
	}
	bad := RandomVector(c, func(int) int { return 1 })
	bad["1"] = 7
	if _, err := Simulate(c, bad, full, Options{Lib: lib}); err == nil {
		t.Error("expected error for non-binary value")
	}
}

func TestBufferTiming(t *testing.T) {
	lib := prechar.MustLibrary()
	c := netlist.New("buf")
	c.AddPI("a")
	c.AddGate(netlist.Buf, "z", "a")
	c.AddPO("z")
	if err := c.Build(); err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(c, Vector{"a": 0}, Vector{"a": 1}, Options{Lib: lib})
	if err != nil {
		t.Fatal(err)
	}
	ev, ok := res.Events["z"]
	if !ok || !ev.Rising {
		t.Fatalf("buffer output should rise: %+v", ev)
	}
	if ev.Arrival <= 0 {
		t.Errorf("buffer delay %g, want > 0", ev.Arrival)
	}
}
