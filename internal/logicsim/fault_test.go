package logicsim

import (
	"math"
	"testing"

	"sstiming/internal/benchgen"
	"sstiming/internal/netlist"
	"sstiming/internal/prechar"
)

// chainCircuit builds inverter-free NAND chain: a NAND2 whose output runs
// through a sensitised NAND2 chain to the PO, so an injected slowdown must
// propagate end to end.
func chainCircuit(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.New("chain")
	c.AddPI("a")
	c.AddPI("b")
	c.AddPI("en1")
	c.AddPI("en2")
	c.AddGate(netlist.Nand, "v", "a", "b")   // victim site
	c.AddGate(netlist.Nand, "m", "v", "en1") // sensitised by en1 = 1
	c.AddGate(netlist.Nand, "z", "m", "en2") // sensitised by en2 = 1
	c.AddPO("z")
	if err := c.Build(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFaultInjectionShiftsDownstream(t *testing.T) {
	lib := prechar.MustLibrary()
	c := chainCircuit(t)
	// a falls -> v rises; b is the aggressor path... use PI "b" as the
	// aggressor (it also transitions) and "v" as victim.
	v1 := Vector{"a": 1, "b": 1, "en1": 1, "en2": 1}
	v2 := Vector{"a": 0, "b": 0, "en1": 1, "en2": 1}

	const extra = 200e-12
	clean, faulty, excited, err := SimulateFaulty(c, v1, v2, FaultInjection{
		Aggressor:  "a",
		Victim:     "v",
		AggRising:  false,
		VicRising:  true,
		Window:     1e-9,
		ExtraDelay: extra,
	}, Options{Lib: lib})
	if err != nil {
		t.Fatal(err)
	}
	if !excited {
		t.Fatal("fault should be excited (both transitions, huge window)")
	}

	// The victim's event must be shifted by exactly the injected delay.
	shift := faulty.Events["v"].Arrival - clean.Events["v"].Arrival
	if math.Abs(shift-extra) > 1e-15 {
		t.Errorf("victim shift = %g, want %g", shift, extra)
	}
	// The shift propagates to the PO through the sensitised chain.
	poShift := faulty.Events["z"].Arrival - clean.Events["z"].Arrival
	if poShift < 0.9*extra {
		t.Errorf("PO shift = %g, want ~%g (sensitised chain)", poShift, extra)
	}
	// Logic values unchanged by a delay fault.
	for net := range clean.V2 {
		if clean.V2[net] != faulty.V2[net] {
			t.Errorf("delay fault changed logic at %s", net)
		}
	}
}

func TestFaultNotExcitedCases(t *testing.T) {
	lib := prechar.MustLibrary()
	c := chainCircuit(t)
	base := Options{Lib: lib}

	// Victim does not switch: en1 steady, v still switches... use a
	// vector where the victim is steady: a=b=1 both frames.
	v1 := Vector{"a": 1, "b": 1, "en1": 1, "en2": 1}
	_, _, excited, err := SimulateFaulty(c, v1, v1, FaultInjection{
		Aggressor: "a", Victim: "v", Window: 1e-9,
	}, base)
	if err != nil {
		t.Fatal(err)
	}
	if excited {
		t.Error("fault excited with no transitions")
	}

	// Wrong direction: victim rises but fault expects falling.
	v2 := Vector{"a": 0, "b": 0, "en1": 1, "en2": 1}
	_, _, excited, err = SimulateFaulty(c, v1, v2, FaultInjection{
		Aggressor: "a", Victim: "v",
		AggRising: false, VicRising: false, // victim actually rises
		Window: 1e-9,
	}, base)
	if err != nil {
		t.Fatal(err)
	}
	if excited {
		t.Error("fault excited with wrong victim direction")
	}

	// Misaligned: tiny window.
	_, _, excited, err = SimulateFaulty(c, v1, v2, FaultInjection{
		Aggressor: "a", Victim: "v",
		AggRising: false, VicRising: true,
		Window: 1e-15, // victim lags the PI by a full gate delay
	}, base)
	if err != nil {
		t.Fatal(err)
	}
	if excited {
		t.Error("fault excited outside the alignment window")
	}
}

func TestFaultSelfCouplingRejected(t *testing.T) {
	lib := prechar.MustLibrary()
	c := benchgen.C17()
	v := RandomVector(c, func(int) int { return 1 })
	if _, _, _, err := SimulateFaulty(c, v, v, FaultInjection{Aggressor: "10", Victim: "10"}, Options{Lib: lib}); err == nil {
		t.Error("expected error for self-coupled fault")
	}
}

func TestFaultAbsorbedByEarlierPath(t *testing.T) {
	// When the victim's slowed transition is not on the winning arm of a
	// downstream min-combine, the shift is absorbed — the effect the
	// ATPG's path sensitisation exists to avoid.
	lib := prechar.MustLibrary()
	c := netlist.New("absorb")
	c.AddPI("a")
	c.AddPI("b")
	c.AddGate(netlist.Inv, "v", "a")       // victim: slow path
	c.AddGate(netlist.Nand, "z", "v", "b") // b falls too: earliest wins
	c.AddPO("z")
	if err := c.Build(); err != nil {
		t.Fatal(err)
	}
	// Frame change: a rises (v falls), b falls directly. b's fall reaches
	// the NAND immediately and dominates the to-controlling min.
	v1 := Vector{"a": 0, "b": 1}
	v2 := Vector{"a": 1, "b": 0}
	clean, faulty, excited, err := SimulateFaulty(c, v1, v2, FaultInjection{
		Aggressor: "a", Victim: "v",
		AggRising: true, VicRising: false,
		Window: 1e-9, ExtraDelay: 300e-12,
	}, Options{Lib: lib})
	if err != nil {
		t.Fatal(err)
	}
	if !excited {
		t.Fatal("fault should be excited")
	}
	shift := faulty.Events["z"].Arrival - clean.Events["z"].Arrival
	if shift > 50e-12 {
		t.Errorf("PO shift %g should be (mostly) absorbed by the faster b path", shift)
	}
}
