package core

import (
	"math"
	"testing"
	"testing/quick"
)

// testModel builds a hand-crafted NAND2 model with easily checkable numbers:
//
//	pin delays:      d0(T) = 0.2 + 0.1·Tns (pin 0), d1(T) = 0.25 + 0.1·Tns
//	pin transitions: t(T)  = 0.3 + 0.2·Tns (both pins)
//	D0 = 0.12 (constant), SX = SY = 0.5 ns, SKmin = 0.1 ns, T0 = 0.25 ns
func testModel() *CellModel {
	pin := func(c0, c1 float64) PinTiming {
		return PinTiming{
			Delay:          Quad{K: [3]float64{0, c1, c0}},
			Trans:          Quad{K: [3]float64{0, 0.2, 0.3}},
			DelayLoadSlope: 1e-9 / 1e-12, // 1 ns per pF
			TransLoadSlope: 2e-9 / 1e-12,
		}
	}
	pairT := PairTiming{
		D0:    Cross{K1: 0.12},
		SX:    Quad2{K1: 0.5},
		T0:    Cross{K1: 0.25},
		SKmin: Quad2{K1: 0.1},
	}
	return &CellModel{
		Name:          "NAND2",
		Kind:          "NAND",
		N:             2,
		CtrlOutRising: true,
		RefLoad:       10e-15,
		CtrlPins:      []PinTiming{pin(0.2, 0.1), pin(0.25, 0.1)},
		NonCtrlPins:   []PinTiming{pin(0.3, 0.15), pin(0.35, 0.15)},
		Pairs: []PairEntry{
			{X: 0, Y: 1, Timing: pairT},
			{X: 1, Y: 0, Timing: pairT},
		},
	}
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestQuadEvalAndPeak(t *testing.T) {
	q := Quad{K: [3]float64{-1, 2, 0.5}} // peak at t = 1 ns, value 1.5 ns
	if got := q.Eval(1e-9); !approx(got, 1.5e-9, 1e-18) {
		t.Errorf("Eval(1ns) = %g, want 1.5ns", got)
	}
	p, ok := q.PeakT()
	if !ok || !approx(p, 1e-9, 1e-18) {
		t.Errorf("PeakT = %g,%v want 1ns,true", p, ok)
	}
	if _, ok := (Quad{K: [3]float64{1, 0, 0}}).PeakT(); ok {
		t.Error("convex quadratic should have no peak")
	}
}

func TestQuadMaxOverCasesOfFigure9(t *testing.T) {
	q := Quad{K: [3]float64{-1, 2, 0.5}} // peak at 1 ns

	// (a) Range left of the peak: max at the right endpoint.
	if arg, _ := q.MaxOver(0.1e-9, 0.5e-9); !approx(arg, 0.5e-9, 1e-18) {
		t.Errorf("case a: argmax = %g, want right endpoint", arg)
	}
	// (b) Range right of the peak: max at the left endpoint.
	if arg, _ := q.MaxOver(1.5e-9, 2.5e-9); !approx(arg, 1.5e-9, 1e-18) {
		t.Errorf("case b: argmax = %g, want left endpoint", arg)
	}
	// (c) Range straddles the peak: max at the interior peak.
	arg, val := q.MaxOver(0.5e-9, 1.5e-9)
	if !approx(arg, 1e-9, 1e-18) || !approx(val, 1.5e-9, 1e-18) {
		t.Errorf("case c: argmax = %g val %g, want peak 1ns/1.5ns", arg, val)
	}
}

func TestQuadMinOver(t *testing.T) {
	q := Quad{K: [3]float64{1, -2, 2}} // valley at 1 ns, value 1 ns
	arg, val := q.MinOver(0, 3e-9)
	if !approx(arg, 1e-9, 1e-18) || !approx(val, 1e-9, 1e-18) {
		t.Errorf("MinOver = %g,%g want valley 1ns,1ns", arg, val)
	}
	// Valley outside the range: endpoint wins.
	if arg, _ := q.MinOver(2e-9, 3e-9); !approx(arg, 2e-9, 1e-18) {
		t.Errorf("argmin = %g, want left endpoint", arg)
	}
}

func TestCrossMatchesFactoredForm(t *testing.T) {
	// (0.8x+0.1)(0.5y+0.3)+0.05 expanded.
	c := Cross{Kxy: 0.4, Kx: 0.24, Ky: 0.05, K1: 0.08}
	tx, ty := 0.6e-9, 1.2e-9
	x, y := math.Cbrt(0.6), math.Cbrt(1.2)
	want := ((0.8*x+0.1)*(0.5*y+0.3) + 0.05) * 1e-9
	if got := c.Eval(tx, ty); !approx(got, want, 1e-20) {
		t.Errorf("Cross.Eval = %g, want %g", got, want)
	}
}

func TestDelayCtrl2VShape(t *testing.T) {
	m := testModel()
	const T = 0.5e-9 // both transition times 0.5 ns

	d0 := m.DelayCtrl2(0, 1, T, T, 0, 0)
	if !approx(d0, 0.12e-9, 1e-15) {
		t.Errorf("delay at zero skew = %g, want 0.12ns", d0)
	}
	// Beyond +SX: single-input pin-to-pin delay of X.
	dx := m.CtrlPins[0].DelayAt(T, 0)
	if got := m.DelayCtrl2(0, 1, T, T, 1e-9, 0); !approx(got, dx, 1e-15) {
		t.Errorf("delay beyond SX = %g, want %g", got, dx)
	}
	// Beyond -SY: single-input delay of Y.
	dy := m.CtrlPins[1].DelayAt(T, 0)
	if got := m.DelayCtrl2(0, 1, T, T, -1e-9, 0); !approx(got, dy, 1e-15) {
		t.Errorf("delay beyond SY = %g, want %g", got, dy)
	}
	// Midpoint of the right arm: linear interpolation.
	want := 0.12e-9 + (dx-0.12e-9)*0.5
	if got := m.DelayCtrl2(0, 1, T, T, 0.25e-9, 0); !approx(got, want, 1e-15) {
		t.Errorf("delay mid-arm = %g, want %g", got, want)
	}
}

func TestDelayCtrl2MinimumAtZeroSkewProperty(t *testing.T) {
	// Claim 1: for any skew, delay(δ) >= delay(0).
	m := testModel()
	f := func(skewRaw int16, txRaw, tyRaw uint8) bool {
		skew := float64(skewRaw) * 1e-13 // up to ±3.3 ns
		tx := 0.1e-9 + float64(txRaw)*5e-12
		ty := 0.1e-9 + float64(tyRaw)*5e-12
		d := m.DelayCtrl2(0, 1, tx, ty, skew, 0)
		d0 := m.DelayCtrl2(0, 1, tx, ty, 0, 0)
		return d >= d0-1e-18
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDelayCtrl2MonotoneInSkewMagnitude(t *testing.T) {
	// On each arm the delay is monotone in |skew| (V-shape, Claim 2).
	m := testModel()
	const T = 0.5e-9
	prev := -1.0
	for s := 0.0; s <= 1.0e-9; s += 0.05e-9 {
		d := m.DelayCtrl2(0, 1, T, T, s, 0)
		if d < prev-1e-18 {
			t.Fatalf("delay decreased along positive arm at skew %g", s)
		}
		prev = d
	}
	prev = -1.0
	for s := 0.0; s >= -1.0e-9; s -= 0.05e-9 {
		d := m.DelayCtrl2(0, 1, T, T, s, 0)
		if d < prev-1e-18 {
			t.Fatalf("delay decreased along negative arm at skew %g", s)
		}
		prev = d
	}
}

func TestDelayCtrl2D0Clamped(t *testing.T) {
	// If the fitted D0 exceeds a pin delay, the evaluation must clamp it
	// so the zero-skew point stays the minimum.
	m := testModel()
	for i := range m.Pairs {
		m.Pairs[i].Timing.D0 = Cross{K1: 99}
	}
	const T = 0.5e-9
	d0 := m.DelayCtrl2(0, 1, T, T, 0, 0)
	dx := m.CtrlPins[0].DelayAt(T, 0)
	dy := m.CtrlPins[1].DelayAt(T, 0)
	if d0 > math.Min(dx, dy)+1e-18 {
		t.Errorf("clamp failed: d0 = %g > min(dx,dy) = %g", d0, math.Min(dx, dy))
	}
}

func TestDelayCtrl2FallbackWithoutPair(t *testing.T) {
	m := testModel()
	m.Pairs = nil
	const T = 0.5e-9
	if got := m.DelayCtrl2(0, 1, T, T, 0.2e-9, 0); !approx(got, m.CtrlPins[0].DelayAt(T, 0), 1e-18) {
		t.Errorf("fallback positive skew = %g, want pin 0 delay", got)
	}
	if got := m.DelayCtrl2(0, 1, T, T, -0.2e-9, 0); !approx(got, m.CtrlPins[1].DelayAt(T, 0), 1e-18) {
		t.Errorf("fallback negative skew = %g, want pin 1 delay", got)
	}
}

func TestTransCtrl2MinimumAtSKmin(t *testing.T) {
	m := testModel()
	const T = 0.5e-9
	tAtSKmin := m.TransCtrl2(0, 1, T, T, 0.1e-9, 0)
	if !approx(tAtSKmin, 0.25e-9, 1e-15) {
		t.Errorf("trans at SKmin = %g, want T0 = 0.25ns", tAtSKmin)
	}
	// Minimal transition time does NOT occur at zero skew here.
	tAt0 := m.TransCtrl2(0, 1, T, T, 0, 0)
	if tAt0 <= tAtSKmin {
		t.Errorf("trans at 0 (%g) should exceed trans at SKmin (%g)", tAt0, tAtSKmin)
	}
	// Far skew: single-pin transition time.
	tx := m.CtrlPins[0].TransAt(T, 0)
	if got := m.TransCtrl2(0, 1, T, T, 2e-9, 0); !approx(got, tx, 1e-15) {
		t.Errorf("trans beyond SX = %g, want %g", got, tx)
	}
}

func TestLoadSlopeShiftsDelays(t *testing.T) {
	m := testModel()
	const T = 0.5e-9
	base := m.DelayCtrl2(0, 1, T, T, 0, 0)
	loaded := m.DelayCtrl2(0, 1, T, T, 0, 0.1e-12) // +0.1 pF
	if !approx(loaded-base, 0.1e-9, 1e-15) {
		t.Errorf("load slope shift = %g, want 0.1ns", loaded-base)
	}
}

func TestCtrlResponseSingleAndPair(t *testing.T) {
	m := testModel()
	const T = 0.5e-9

	// Single event.
	r, err := m.CtrlResponse([]InputEvent{{Pin: 0, Arrival: 1e-9, Trans: T}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(r.Arrival, 1e-9+m.CtrlPins[0].DelayAt(T, 0), 1e-15) {
		t.Errorf("single arrival = %g", r.Arrival)
	}

	// Two simultaneous events: speed-up.
	r2, err := m.CtrlResponse([]InputEvent{
		{Pin: 0, Arrival: 1e-9, Trans: T},
		{Pin: 1, Arrival: 1e-9, Trans: T},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(r2.Arrival, 1e-9+0.12e-9, 1e-15) {
		t.Errorf("simultaneous arrival = %g, want 1.12ns", r2.Arrival)
	}
	if r2.Arrival >= r.Arrival {
		t.Error("simultaneous response should be faster than single")
	}
}

func TestCtrlResponseMultiFactor(t *testing.T) {
	m := testModel()
	m.N = 3
	m.CtrlPins = append(m.CtrlPins, m.CtrlPins[0])
	m.NonCtrlPins = append(m.NonCtrlPins, m.NonCtrlPins[0])
	// Give every ordered pair the same surfaces.
	pt := m.Pairs[0].Timing
	m.Pairs = nil
	for x := 0; x < 3; x++ {
		for y := 0; y < 3; y++ {
			if x != y {
				m.Pairs = append(m.Pairs, PairEntry{X: x, Y: y, Timing: pt})
			}
		}
	}
	m.MultiFactor = []float64{0.8} // 3-way switching: 20% faster than pairwise

	const T = 0.5e-9
	evs := []InputEvent{
		{Pin: 0, Arrival: 1e-9, Trans: T},
		{Pin: 1, Arrival: 1e-9, Trans: T},
		{Pin: 2, Arrival: 1e-9, Trans: T},
	}
	r, err := m.CtrlResponse(evs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(r.Arrival, 1e-9+0.8*0.12e-9, 1e-15) {
		t.Errorf("3-way arrival = %g, want 1.096ns", r.Arrival)
	}
}

func TestNonCtrlResponseMax(t *testing.T) {
	m := testModel()
	const T = 0.5e-9
	r, err := m.NonCtrlResponse([]InputEvent{
		{Pin: 0, Arrival: 1e-9, Trans: T},
		{Pin: 1, Arrival: 1.5e-9, Trans: T},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.5e-9 + m.NonCtrlPins[1].DelayAt(T, 0)
	if !approx(r.Arrival, want, 1e-15) {
		t.Errorf("non-ctrl arrival = %g, want %g (latest input wins)", r.Arrival, want)
	}
}

func TestResponseErrors(t *testing.T) {
	m := testModel()
	if _, err := m.CtrlResponse(nil, 0); err == nil {
		t.Error("expected error for empty events")
	}
	if _, err := m.CtrlResponse([]InputEvent{{Pin: 5}}, 0); err == nil {
		t.Error("expected error for invalid pin")
	}
	if _, err := m.NonCtrlResponse([]InputEvent{{Pin: -1}}, 0); err == nil {
		t.Error("expected error for invalid pin")
	}
	if _, err := m.NonCtrlResponse(nil, 0); err == nil {
		t.Error("expected error for empty events")
	}
}

func TestValidate(t *testing.T) {
	m := testModel()
	if err := m.Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	bad := testModel()
	bad.Pairs = append(bad.Pairs, PairEntry{X: 0, Y: 9})
	if err := bad.Validate(); err == nil {
		t.Error("expected error for out-of-range pair")
	}
	bad2 := testModel()
	bad2.CtrlPins = bad2.CtrlPins[:1]
	if err := bad2.Validate(); err == nil {
		t.Error("expected error for missing pins")
	}

	lib := &Library{Cells: map[string]*CellModel{"NAND2": testModel()}}
	if err := lib.Validate(); err != nil {
		t.Errorf("valid library rejected: %v", err)
	}
	lib.Cells["WRONG"] = testModel()
	if err := lib.Validate(); err == nil {
		t.Error("expected error for mismatched library key")
	}
}

func TestMustCellPanics(t *testing.T) {
	lib := &Library{Cells: map[string]*CellModel{}}
	defer func() {
		if recover() == nil {
			t.Error("MustCell should panic for missing cell")
		}
	}()
	lib.MustCell("NAND2")
}
