package core

import (
	"fmt"
	"math"
	"sort"
)

// This file implements the paper's announced future work (Section 3.6):
// "we are currently developing a delay model for simultaneous
// to-non-controlling transitions for STA and ITR". Simultaneous
// to-non-controlling transitions (both NAND inputs rising together) *slow*
// the gate down — the series stack turns on with both devices in partial
// conduction and the Miller coupling opposes the output — a second-order
// effect with the opposite sign of the to-controlling speed-up.
//
// The model mirrors the V-shape construction upside down: the gate delay,
// measured from the LATEST input arrival (the paper's to-non-controlling
// delay convention), is a Λ-shaped piecewise-linear function of the skew
// δ = Ay − Ax, peaking at zero skew:
//
//	(0,    NCD0(Tx,Ty))   — the maximal delay, at zero skew
//	(+SNC, dNCy(Ty))      — beyond +SNC the earlier input no longer matters
//	(−SNC', dNCx(Tx))     — symmetrically for negative skew
//
// The same fitted families are reused: NCD0 uses the Cross form and the
// skew thresholds the Quad2 form (stored in a PairTiming under
// CellModel.NCPairs). The model is characterised by charlib when
// Options.NCPairs is enabled and consumed by sta/logicsim behind their
// NCExtension flags, keeping the paper's published-scope results unchanged
// by default.

// NCPair returns the simultaneous to-non-controlling surfaces for ordered
// pair (x, y), or nil if not characterised.
func (m *CellModel) NCPair(x, y int) *PairTiming {
	for i := range m.NCPairs {
		if m.NCPairs[i].X == x && m.NCPairs[i].Y == y {
			return &m.NCPairs[i].Timing
		}
	}
	return nil
}

// DelayNonCtrl2 evaluates the Λ-shape model for ordered pair (x, y): the
// to-non-controlling gate delay measured from the LATEST input arrival,
// with skewSec = Ay − Ax. Falls back to the pin-to-pin delay of the later
// input when the pair was not characterised.
func (m *CellModel) DelayNonCtrl2(x, y int, txSec, tySec, skewSec, extraLoad float64) float64 {
	dx := m.NonCtrlPins[x].DelayAt(txSec, extraLoad)
	dy := m.NonCtrlPins[y].DelayAt(tySec, extraLoad)

	pXY := m.NCPair(x, y)
	pYX := m.NCPair(y, x)
	if pXY == nil || pYX == nil {
		if skewSec >= 0 {
			return dy // y arrives last and determines the output
		}
		return dx
	}

	sPos := pXY.SX.Eval(txSec, tySec)
	if sPos < minSkewWidth {
		sPos = minSkewWidth
	}
	sNeg := -pYX.SX.Eval(tySec, txSec)
	if sNeg > -minSkewWidth {
		sNeg = -minSkewWidth
	}
	d0 := pXY.D0.Eval(txSec, tySec) + m.NonCtrlPins[x].DelayLoadSlope*extraLoad
	// The zero-skew point is the peak: keep the fitted surface above the
	// arms.
	if d0 < dx {
		d0 = dx
	}
	if d0 < dy {
		d0 = dy
	}

	switch {
	case skewSec >= sPos:
		return dy
	case skewSec <= sNeg:
		return dx
	case skewSec >= 0:
		return d0 + (dy-d0)*skewSec/sPos
	default:
		return d0 + (dx-d0)*skewSec/sNeg
	}
}

// TransNonCtrl2 evaluates the output transition time of the
// to-non-controlling response under the same conventions (Λ-shaped, peak T0
// at zero skew).
func (m *CellModel) TransNonCtrl2(x, y int, txSec, tySec, skewSec, extraLoad float64) float64 {
	tx := m.NonCtrlPins[x].TransAt(txSec, extraLoad)
	ty := m.NonCtrlPins[y].TransAt(tySec, extraLoad)

	pXY := m.NCPair(x, y)
	pYX := m.NCPair(y, x)
	if pXY == nil || pYX == nil {
		if skewSec >= 0 {
			return ty
		}
		return tx
	}

	sPos := pXY.SX.Eval(txSec, tySec)
	if sPos < minSkewWidth {
		sPos = minSkewWidth
	}
	sNeg := -pYX.SX.Eval(tySec, txSec)
	if sNeg > -minSkewWidth {
		sNeg = -minSkewWidth
	}
	t0 := pXY.T0.Eval(txSec, tySec) + m.NonCtrlPins[x].TransLoadSlope*extraLoad
	if t0 < tx {
		t0 = tx
	}
	if t0 < ty {
		t0 = ty
	}

	switch {
	case skewSec >= sPos:
		return ty
	case skewSec <= sNeg:
		return tx
	case skewSec >= 0:
		return t0 + (ty-t0)*skewSec/sPos
	default:
		return t0 + (tx-t0)*skewSec/sNeg
	}
}

// NonCtrlResponseExt computes the output response for simultaneous
// to-non-controlling transitions using the Λ-shape extension: the two
// latest-arriving transitions are combined through the pair surfaces
// (earlier inputs have already settled their stack devices). With a single
// event, or without characterised NC pairs, it degrades to the pin-to-pin
// NonCtrlResponse.
func (m *CellModel) NonCtrlResponseExt(events []InputEvent, extraLoad float64) (Response, error) {
	if len(events) == 0 {
		return Response{}, fmt.Errorf("core: %s: NonCtrlResponseExt with no events", m.Name)
	}
	for _, e := range events {
		if e.Pin < 0 || e.Pin >= m.N {
			return Response{}, fmt.Errorf("core: %s: invalid pin %d", m.Name, e.Pin)
		}
	}
	if len(events) == 1 || len(m.NCPairs) == 0 {
		return m.NonCtrlResponse(events, extraLoad)
	}

	evs := append([]InputEvent(nil), events...)
	sort.Slice(evs, func(i, j int) bool { return evs[i].Arrival < evs[j].Arrival })
	x := evs[len(evs)-2] // second-latest
	y := evs[len(evs)-1] // latest
	skew := y.Arrival - x.Arrival
	latest := math.Max(x.Arrival, y.Arrival)
	d := m.DelayNonCtrl2(x.Pin, y.Pin, x.Trans, y.Trans, skew, extraLoad)
	tr := m.TransNonCtrl2(x.Pin, y.Pin, x.Trans, y.Trans, skew, extraLoad)

	// The pin-to-pin (max-combine) answer is a lower bound; the Λ model
	// can only add the simultaneous-switching penalty on top of it.
	base, err := m.NonCtrlResponse(events, extraLoad)
	if err != nil {
		return Response{}, err
	}
	arr := latest + d
	if arr < base.Arrival {
		arr = base.Arrival
	}
	if tr < base.Trans {
		tr = base.Trans
	}
	return Response{Arrival: arr, Trans: tr}, nil
}
