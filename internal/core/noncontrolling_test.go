package core

import (
	"math"
	"testing"
	"testing/quick"
)

// ncModel extends testModel with Λ-shaped to-non-controlling surfaces:
// peak delay 0.5 ns at zero skew (above the 0.3/0.35 ns pin values),
// thresholds at ±0.4 ns.
func ncModel() *CellModel {
	m := testModel()
	nc := PairTiming{
		D0: Cross{K1: 0.5},
		T0: Cross{K1: 0.6},
		SX: Quad2{K1: 0.4},
	}
	m.NCPairs = []PairEntry{
		{X: 0, Y: 1, Timing: nc},
		{X: 1, Y: 0, Timing: nc},
	}
	return m
}

func TestDelayNonCtrl2LambdaShape(t *testing.T) {
	m := ncModel()
	const T = 0.5e-9
	dx := m.NonCtrlPins[0].DelayAt(T, 0) // 0.3 + 0.1*0.5 = 0.35
	dy := m.NonCtrlPins[1].DelayAt(T, 0) // 0.35 + ... = 0.40

	// Peak at zero skew.
	d0 := m.DelayNonCtrl2(0, 1, T, T, 0, 0)
	if !approx(d0, 0.5e-9, 1e-15) {
		t.Errorf("peak = %g, want 0.5ns", d0)
	}
	// Arms: far positive skew -> later input y's pin delay.
	if got := m.DelayNonCtrl2(0, 1, T, T, 1e-9, 0); !approx(got, dy, 1e-15) {
		t.Errorf("far positive skew = %g, want %g", got, dy)
	}
	if got := m.DelayNonCtrl2(0, 1, T, T, -1e-9, 0); !approx(got, dx, 1e-15) {
		t.Errorf("far negative skew = %g, want %g", got, dx)
	}
	// Mid-arm interpolation.
	want := 0.5e-9 + (dy-0.5e-9)*0.5
	if got := m.DelayNonCtrl2(0, 1, T, T, 0.2e-9, 0); !approx(got, want, 1e-15) {
		t.Errorf("mid-arm = %g, want %g", got, want)
	}
}

func TestDelayNonCtrl2PeakIsMaximumProperty(t *testing.T) {
	m := ncModel()
	f := func(skewRaw int16, txRaw, tyRaw uint8) bool {
		skew := float64(skewRaw) * 1e-13
		tx := 0.1e-9 + float64(txRaw)*5e-12
		ty := 0.1e-9 + float64(tyRaw)*5e-12
		d := m.DelayNonCtrl2(0, 1, tx, ty, skew, 0)
		d0 := m.DelayNonCtrl2(0, 1, tx, ty, 0, 0)
		return d <= d0+1e-18
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDelayNonCtrl2PeakClamped(t *testing.T) {
	// A fitted peak below the arms is raised to them.
	m := ncModel()
	for i := range m.NCPairs {
		m.NCPairs[i].Timing.D0 = Cross{K1: 0.01}
	}
	const T = 0.5e-9
	d0 := m.DelayNonCtrl2(0, 1, T, T, 0, 0)
	dx := m.NonCtrlPins[0].DelayAt(T, 0)
	dy := m.NonCtrlPins[1].DelayAt(T, 0)
	if d0 < math.Max(dx, dy)-1e-18 {
		t.Errorf("peak clamp failed: %g < max(%g,%g)", d0, dx, dy)
	}
}

func TestDelayNonCtrl2Fallback(t *testing.T) {
	m := testModel() // no NC pairs
	const T = 0.5e-9
	if got := m.DelayNonCtrl2(0, 1, T, T, 0.3e-9, 0); !approx(got, m.NonCtrlPins[1].DelayAt(T, 0), 1e-18) {
		t.Errorf("fallback positive skew = %g, want later pin delay", got)
	}
	if got := m.DelayNonCtrl2(0, 1, T, T, -0.3e-9, 0); !approx(got, m.NonCtrlPins[0].DelayAt(T, 0), 1e-18) {
		t.Errorf("fallback negative skew = %g", got)
	}
}

func TestTransNonCtrl2(t *testing.T) {
	m := ncModel()
	const T = 0.5e-9
	t0 := m.TransNonCtrl2(0, 1, T, T, 0, 0)
	if !approx(t0, 0.6e-9, 1e-15) {
		t.Errorf("trans peak = %g, want 0.6ns", t0)
	}
	ty := m.NonCtrlPins[1].TransAt(T, 0)
	if got := m.TransNonCtrl2(0, 1, T, T, 1e-9, 0); !approx(got, ty, 1e-15) {
		t.Errorf("trans far skew = %g, want %g", got, ty)
	}
}

func TestNonCtrlResponseExt(t *testing.T) {
	m := ncModel()
	const T = 0.5e-9

	// Simultaneous events: the extension slows the response beyond the
	// legacy max-combine.
	evs := []InputEvent{
		{Pin: 0, Arrival: 1e-9, Trans: T},
		{Pin: 1, Arrival: 1e-9, Trans: T},
	}
	legacy, err := m.NonCtrlResponse(evs, 0)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := m.NonCtrlResponseExt(evs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ext.Arrival <= legacy.Arrival {
		t.Errorf("extension should slow the response: %g vs %g", ext.Arrival, legacy.Arrival)
	}
	if !approx(ext.Arrival, 1e-9+0.5e-9, 1e-15) {
		t.Errorf("ext arrival = %g, want 1.5ns", ext.Arrival)
	}

	// Single event: degrades to the legacy response.
	one := []InputEvent{{Pin: 0, Arrival: 1e-9, Trans: T}}
	l1, _ := m.NonCtrlResponse(one, 0)
	e1, err := m.NonCtrlResponseExt(one, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l1 != e1 {
		t.Errorf("single-event ext should equal legacy: %+v vs %+v", e1, l1)
	}

	// Without NC pairs: degrades to legacy.
	plain := testModel()
	lp, _ := plain.NonCtrlResponse(evs, 0)
	ep, err := plain.NonCtrlResponseExt(evs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lp != ep {
		t.Errorf("no-NC-pair ext should equal legacy")
	}

	// Errors.
	if _, err := m.NonCtrlResponseExt(nil, 0); err == nil {
		t.Error("expected error for no events")
	}
	if _, err := m.NonCtrlResponseExt([]InputEvent{{Pin: 7}}, 0); err == nil {
		t.Error("expected error for bad pin")
	}
}

func TestNonCtrlResponseExtNeverFasterThanLegacy(t *testing.T) {
	m := ncModel()
	f := func(d1Raw, d2Raw uint8) bool {
		a1 := 1e-9 + float64(d1Raw)*3e-12
		a2 := 1e-9 + float64(d2Raw)*3e-12
		evs := []InputEvent{
			{Pin: 0, Arrival: a1, Trans: 0.4e-9},
			{Pin: 1, Arrival: a2, Trans: 0.6e-9},
		}
		legacy, err1 := m.NonCtrlResponse(evs, 0)
		ext, err2 := m.NonCtrlResponseExt(evs, 0)
		if err1 != nil || err2 != nil {
			return false
		}
		return ext.Arrival >= legacy.Arrival-1e-18 && ext.Trans >= legacy.Trans-1e-18
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
