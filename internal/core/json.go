package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON serialises the library as indented JSON. The format is stable
// and intended for checked-in characterisation artefacts (the equivalent of
// a vendor's .lib timing file).
func (l *Library) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(l); err != nil {
		return fmt.Errorf("core: encoding library: %w", err)
	}
	return nil
}

// LoadLibrary reads a library previously written by WriteJSON and validates
// it.
func LoadLibrary(r io.Reader) (*Library, error) {
	var l Library
	dec := json.NewDecoder(r)
	if err := dec.Decode(&l); err != nil {
		return nil, fmt.Errorf("core: decoding library: %w", err)
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return &l, nil
}
