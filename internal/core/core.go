// Package core implements the paper's primary contribution: an empirical
// gate-delay model for simultaneous to-controlling transitions (Chen, Gupta,
// Breuer — DAC 2001, Section 3).
//
// # Model structure
//
// For a pair of gate inputs X and Y receiving to-controlling transitions with
// transition times Tx, Ty and skew δ = Ay − Ax, the to-controlling gate delay
// (measured from the earliest input arrival) is a V-shaped piecewise-linear
// function of δ anchored at three points (Figure 2):
//
//	(0,   D0R(Tx,Ty))   — the minimal delay, at zero skew (Claim 1)
//	(SXR, DXR(Tx))      — beyond skew SXR, Y no longer matters
//	(SYR, DYR(Ty))      — symmetrically for negative skew
//
// with the empirical coefficient formulas of Section 3.4:
//
//	DR(T)       = K10·T² + K11·T + K12
//	D0R(Tx,Ty)  = (K20·Tx^⅓ + K21)(K22·Ty^⅓ + K23) + K24
//	SR(Tx,Ty)   = K30·Tx² + K31·Ty² + K32·Tx·Ty + K33·Tx + K34·Ty + K35
//
// The output transition time uses the same construction, except that its
// minimum may occur at a non-zero skew SKmin (Section 3.4's note that "S0R
// for t may be non-zero").
//
// Every timing function of the model is monotonic or bi-tonic with respect to
// each input variable — the paper's sufficient condition for worst-case
// corner identification in STA and ITR — and the Quad type exposes the
// interior-extremum helpers STA needs (Figure 9).
//
// All public methods take and return SI seconds; coefficients are stored in
// nanosecond units for numerical conditioning of the fits.
package core

import (
	"fmt"
	"math"
	"sort"
)

const ns = 1e-9

// Quad is a single-variable quadratic timing function K0·t² + K1·t + K2 with
// t in nanoseconds; Eval converts from and to seconds.
type Quad struct {
	K [3]float64
}

// Eval evaluates the quadratic at tSec seconds and returns seconds.
func (q Quad) Eval(tSec float64) float64 {
	t := tSec / ns
	return (q.K[0]*t*t + q.K[1]*t + q.K[2]) * ns
}

// PeakT returns the location (in seconds) of the interior maximum of the
// quadratic, which exists when the curvature is negative (the bi-tonic case
// of Section 3.3). ok is false for convex or linear shapes.
func (q Quad) PeakT() (tSec float64, ok bool) {
	if q.K[0] >= 0 {
		return 0, false
	}
	return -q.K[1] / (2 * q.K[0]) * ns, true
}

// MaxOver returns the maximum of the quadratic over [loSec, hiSec] and the
// argument where it occurs. Per Figure 9 this is an endpoint or, for the
// bi-tonic case, the interior peak when it falls inside the range.
func (q Quad) MaxOver(loSec, hiSec float64) (argSec, valSec float64) {
	argSec, valSec = loSec, q.Eval(loSec)
	if v := q.Eval(hiSec); v > valSec {
		argSec, valSec = hiSec, v
	}
	if p, ok := q.PeakT(); ok && p > loSec && p < hiSec {
		if v := q.Eval(p); v > valSec {
			argSec, valSec = p, v
		}
	}
	return argSec, valSec
}

// MinOver returns the minimum of the quadratic over [loSec, hiSec] and the
// argument where it occurs (an endpoint, or the interior valley for convex
// shapes).
func (q Quad) MinOver(loSec, hiSec float64) (argSec, valSec float64) {
	argSec, valSec = loSec, q.Eval(loSec)
	if v := q.Eval(hiSec); v < valSec {
		argSec, valSec = hiSec, v
	}
	if q.K[0] > 0 {
		valley := -q.K[1] / (2 * q.K[0]) * ns
		if valley > loSec && valley < hiSec {
			if v := q.Eval(valley); v < valSec {
				argSec, valSec = valley, v
			}
		}
	}
	return argSec, valSec
}

// Cross is the D0R formula family: the paper's product form
// (K20·x+K21)(K22·y+K23)+K24 with x = Tx^⅓, y = Ty^⅓, stored expanded as
// Kxy·x·y + Kx·x + Ky·y + K1, plus optional quadratic correction terms in
// cube-root space (Kxx·x² + Kyy·y² + Kxxy·x²y + Kxyy·xy²) that this
// reproduction fits by default — the square-law simulator's zero-skew
// surface saturates in the weaker input in a way the pure product form
// cannot express. All correction coefficients zero recovers the paper's
// exact formula. Times are in nanoseconds.
type Cross struct {
	Kxy, Kx, Ky, K1 float64
	// Correction terms (zero in the paper's exact form).
	Kxx, Kyy, Kxxy, Kxyy float64
}

// Eval evaluates the surface at (txSec, tySec) and returns seconds.
func (c Cross) Eval(txSec, tySec float64) float64 {
	x := math.Cbrt(txSec / ns)
	y := math.Cbrt(tySec / ns)
	v := c.Kxy*x*y + c.Kx*x + c.Ky*y + c.K1
	v += c.Kxx*x*x + c.Kyy*y*y + c.Kxxy*x*x*y + c.Kxyy*x*y*y
	return v * ns
}

// Quad2 is the paper's SR formula family: a full two-variable quadratic
// K30·Tx² + K31·Ty² + K32·Tx·Ty + K33·Tx + K34·Ty + K35 (nanoseconds).
type Quad2 struct {
	Kxx, Kyy, Kxy, Kx, Ky, K1 float64
}

// Eval evaluates the surface at (txSec, tySec) and returns seconds.
func (s Quad2) Eval(txSec, tySec float64) float64 {
	x := txSec / ns
	y := tySec / ns
	return (s.Kxx*x*x + s.Kyy*y*y + s.Kxy*x*y + s.Kx*x + s.Ky*y + s.K1) * ns
}

// PinTiming holds the per-pin single-transition ("pin-to-pin") timing
// functions of one cell for one output response direction, plus the linear
// load-dependence slopes of Section 3.6.
type PinTiming struct {
	// Delay is the pin-to-pin delay versus input transition time.
	Delay Quad
	// Trans is the output transition time versus input transition time.
	Trans Quad
	// DelayLoadSlope and TransLoadSlope are the additional seconds of
	// delay / output transition per farad of load beyond the reference
	// load ("we treat the delay as increasing linearly as load
	// increases").
	DelayLoadSlope float64
	TransLoadSlope float64
}

// DelayAt evaluates the pin-to-pin delay at input transition time tSec with
// extraLoad farads beyond the characterisation reference load.
func (p *PinTiming) DelayAt(tSec, extraLoad float64) float64 {
	return p.Delay.Eval(tSec) + p.DelayLoadSlope*extraLoad
}

// TransAt evaluates the output transition time analogously.
func (p *PinTiming) TransAt(tSec, extraLoad float64) float64 {
	return p.Trans.Eval(tSec) + p.TransLoadSlope*extraLoad
}

// PairTiming holds the simultaneous-switching timing surfaces for one
// ordered input pair (X, Y) of a cell.
type PairTiming struct {
	// D0 is the minimal gate delay at zero skew.
	D0 Cross
	// SX is the skew threshold SR(Tx,Ty): the smallest δ = Ay−Ax beyond
	// which the transition on Y no longer affects the gate delay.
	SX Quad2
	// T0 is the minimal output transition time (attained at skew SKmin).
	T0 Cross
	// SKmin is the skew minimising the output transition time, which may
	// be non-zero (the paper's "S0R for t may be non-zero").
	SKmin Quad2
}

// PairEntry binds a PairTiming to its ordered pin pair for serialisation.
type PairEntry struct {
	X, Y   int
	Timing PairTiming
}

// CellModel is the complete characterised timing model of one library cell.
type CellModel struct {
	// Name is the cell name, e.g. "NAND2".
	Name string
	// Kind is "NAND", "NOR" or "INV".
	Kind string
	// N is the number of inputs.
	N int
	// CtrlOutRising reports whether the to-controlling response is a
	// rising output transition (true for NAND/INV, false for NOR).
	CtrlOutRising bool
	// RefLoad is the output load (farads) at characterisation.
	RefLoad float64
	// CtrlPins are the per-pin timing functions for the to-controlling
	// response (inputs transitioning to the controlling value).
	CtrlPins []PinTiming
	// NonCtrlPins are the per-pin timing functions for the
	// to-non-controlling response.
	NonCtrlPins []PinTiming
	// Pairs holds the simultaneous-switching surfaces for every ordered
	// input pair (to-controlling response, the paper's primary scope).
	Pairs []PairEntry
	// NCPairs holds the Λ-shaped simultaneous to-non-controlling surfaces
	// (the paper's Section 3.6 future work; see noncontrolling.go). Empty
	// unless characterised with charlib.Options.NCPairs.
	NCPairs []PairEntry
	// MultiFactor[k-3] scales the winning pairwise delay when k >= 3
	// inputs switch δ-simultaneously: the extended model's n-way
	// speed-up, characterised at equal transition times and zero skew.
	// Empty means no additional speed-up beyond pairwise.
	MultiFactor []float64
	// Quality records the goodness of fit of each characterised surface,
	// keyed e.g. "pin0/ctrl/delay" or "pair0:1/D0". Values are in the
	// nanosecond fitting domain. Optional characterisation metadata.
	Quality map[string]FitQuality `json:",omitempty"`
	// Health records the resilience outcome of characterisation (retries,
	// degraded points). Nil when characterisation was fully clean, so
	// healthy artefacts are unchanged byte for byte.
	Health *CellHealth `json:",omitempty"`
}

// FitQuality summarises one surface fit (nanosecond domain).
type FitQuality struct {
	// RMS is the root-mean-square residual.
	RMS float64
	// Max is the largest absolute residual.
	Max float64
	// R2 is the coefficient of determination.
	R2 float64
}

// Pair returns the timing surfaces for ordered pair (x, y), or nil if the
// pair was not characterised.
func (m *CellModel) Pair(x, y int) *PairTiming {
	for i := range m.Pairs {
		if m.Pairs[i].X == x && m.Pairs[i].Y == y {
			return &m.Pairs[i].Timing
		}
	}
	return nil
}

// Validate checks structural consistency of the model.
func (m *CellModel) Validate() error {
	if m.N < 1 {
		return fmt.Errorf("core: cell %q: invalid input count %d", m.Name, m.N)
	}
	if len(m.CtrlPins) != m.N {
		return fmt.Errorf("core: cell %q: %d ctrl pins, want %d", m.Name, len(m.CtrlPins), m.N)
	}
	if len(m.NonCtrlPins) != m.N {
		return fmt.Errorf("core: cell %q: %d non-ctrl pins, want %d", m.Name, len(m.NonCtrlPins), m.N)
	}
	for _, p := range m.Pairs {
		if p.X < 0 || p.X >= m.N || p.Y < 0 || p.Y >= m.N || p.X == p.Y {
			return fmt.Errorf("core: cell %q: invalid pair (%d,%d)", m.Name, p.X, p.Y)
		}
	}
	for _, p := range m.NCPairs {
		if p.X < 0 || p.X >= m.N || p.Y < 0 || p.Y >= m.N || p.X == p.Y {
			return fmt.Errorf("core: cell %q: invalid NC pair (%d,%d)", m.Name, p.X, p.Y)
		}
	}
	return nil
}

// minSkewWidth guards the V-shape arms against degenerate fitted thresholds.
const minSkewWidth = 1e-12 // 1 ps

// DelayCtrl2 evaluates the V-shape model for the ordered pair (x, y): the
// to-controlling gate delay, measured from the earliest input arrival, when
// input x has transition time txSec, input y has transition time tySec, and
// the skew is skewSec = Ay − Ax. extraLoad is additional output load beyond
// the reference (farads).
//
// If the pair was not characterised the result degrades to the pin-to-pin
// delay of the earlier input (the pin-to-pin model's answer).
func (m *CellModel) DelayCtrl2(x, y int, txSec, tySec, skewSec, extraLoad float64) float64 {
	dx := m.CtrlPins[x].DelayAt(txSec, extraLoad)
	dy := m.CtrlPins[y].DelayAt(tySec, extraLoad)

	pXY := m.Pair(x, y)
	pYX := m.Pair(y, x)
	if pXY == nil || pYX == nil {
		// Pin-to-pin fallback: the earliest controlling input sets the
		// output; the other is ignored.
		if skewSec >= 0 {
			return dx
		}
		return dy
	}

	sx := pXY.SX.Eval(txSec, tySec)
	if sx < minSkewWidth {
		sx = minSkewWidth
	}
	sy := -pYX.SX.Eval(tySec, txSec)
	if sy > -minSkewWidth {
		sy = -minSkewWidth
	}
	d0 := pXY.D0.Eval(txSec, tySec) + m.CtrlPins[x].DelayLoadSlope*extraLoad
	// Claim 1: the zero-skew point is the global minimum. Keep the fitted
	// surface consistent with it.
	if d0 > dx {
		d0 = dx
	}
	if d0 > dy {
		d0 = dy
	}

	switch {
	case skewSec >= sx:
		return dx
	case skewSec <= sy:
		return dy
	case skewSec >= 0:
		return d0 + (dx-d0)*skewSec/sx
	default:
		return d0 + (dy-d0)*skewSec/sy
	}
}

// TransCtrl2 evaluates the output transition time of the to-controlling
// response for the ordered pair (x, y) under the same conventions as
// DelayCtrl2. The V-shape minimum T0 sits at skew SKmin, which may be
// non-zero.
func (m *CellModel) TransCtrl2(x, y int, txSec, tySec, skewSec, extraLoad float64) float64 {
	tx := m.CtrlPins[x].TransAt(txSec, extraLoad)
	ty := m.CtrlPins[y].TransAt(tySec, extraLoad)

	pXY := m.Pair(x, y)
	pYX := m.Pair(y, x)
	if pXY == nil || pYX == nil {
		if skewSec >= 0 {
			return tx
		}
		return ty
	}

	sx := pXY.SX.Eval(txSec, tySec)
	if sx < minSkewWidth {
		sx = minSkewWidth
	}
	sy := -pYX.SX.Eval(tySec, txSec)
	if sy > -minSkewWidth {
		sy = -minSkewWidth
	}
	skmin := pXY.SKmin.Eval(txSec, tySec)
	// Keep the minimum strictly inside the arms.
	if skmin > sx-minSkewWidth {
		skmin = sx - minSkewWidth
	}
	if skmin < sy+minSkewWidth {
		skmin = sy + minSkewWidth
	}
	t0 := pXY.T0.Eval(txSec, tySec) + m.CtrlPins[x].TransLoadSlope*extraLoad
	if t0 > tx {
		t0 = tx
	}
	if t0 > ty {
		t0 = ty
	}
	if t0 <= 0 {
		t0 = minSkewWidth
	}

	switch {
	case skewSec >= sx:
		return tx
	case skewSec <= sy:
		return ty
	case skewSec >= skmin:
		return t0 + (tx-t0)*(skewSec-skmin)/(sx-skmin)
	default:
		return t0 + (ty-t0)*(skewSec-skmin)/(sy-skmin)
	}
}

// SKminAt returns the transition-time-minimising skew for pair (x, y),
// clamped inside the V-shape arms, as used by the STA corner rules
// (Section 4.2's SK_t,R,min).
func (m *CellModel) SKminAt(x, y int, txSec, tySec float64) float64 {
	pXY := m.Pair(x, y)
	if pXY == nil {
		return 0
	}
	return pXY.SKmin.Eval(txSec, tySec)
}

// InputEvent describes one switching input of a gate: which pin, when its
// transition arrives (50% crossing, seconds) and its transition time.
type InputEvent struct {
	Pin     int
	Arrival float64
	Trans   float64
}

// Response is the computed output transition of a gate.
type Response struct {
	// Arrival is the output 50% crossing time, seconds.
	Arrival float64
	// Trans is the output 10%-90% transition time, seconds.
	Trans float64
}

// CtrlResponse computes the output response when the given inputs all make
// to-controlling transitions (and all remaining inputs hold the
// non-controlling value). Implements the extended model's handling of more
// than two simultaneous transitions by pairwise reduction with the
// characterised multi-input speed-up factor.
func (m *CellModel) CtrlResponse(events []InputEvent, extraLoad float64) (Response, error) {
	if len(events) == 0 {
		return Response{}, fmt.Errorf("core: %s: CtrlResponse with no events", m.Name)
	}
	for _, e := range events {
		if e.Pin < 0 || e.Pin >= m.N {
			return Response{}, fmt.Errorf("core: %s: invalid pin %d", m.Name, e.Pin)
		}
	}
	if len(events) == 1 {
		e := events[0]
		return Response{
			Arrival: e.Arrival + m.CtrlPins[e.Pin].DelayAt(e.Trans, extraLoad),
			Trans:   m.CtrlPins[e.Pin].TransAt(e.Trans, extraLoad),
		}, nil
	}

	evs := append([]InputEvent(nil), events...)
	sort.Slice(evs, func(i, j int) bool { return evs[i].Arrival < evs[j].Arrival })

	// Pairwise minimum over all ordered pairs: each pair's candidate
	// output arrival is min(Ax,Ay) + dpair. Track the winning pair for
	// the output transition time.
	bestArr := math.Inf(1)
	bestTrans := 0.0
	var bestDelay float64
	var bestBase float64
	for i := 0; i < len(evs); i++ {
		for j := i + 1; j < len(evs); j++ {
			x, y := evs[i], evs[j]
			skew := y.Arrival - x.Arrival
			d := m.DelayCtrl2(x.Pin, y.Pin, x.Trans, y.Trans, skew, extraLoad)
			base := math.Min(x.Arrival, y.Arrival)
			if cand := base + d; cand < bestArr {
				bestArr = cand
				bestDelay = d
				bestBase = base
				bestTrans = m.TransCtrl2(x.Pin, y.Pin, x.Trans, y.Trans, skew, extraLoad)
			}
		}
	}

	// Extended model: k >= 3 δ-simultaneous controlling transitions open
	// additional charge paths beyond the best pair.
	if k := len(evs); k >= 3 && len(m.MultiFactor) >= k-2 {
		f := m.MultiFactor[k-3]
		if f > 0 && f < 1 {
			bestArr = bestBase + bestDelay*f
		}
	}
	return Response{Arrival: bestArr, Trans: bestTrans}, nil
}

// NonCtrlResponse computes the output response when the given inputs all
// make to-non-controlling transitions. Per Section 3 the paper keeps the
// pin-to-pin model here: the output switches only after the *last* input
// reaches the non-controlling value, so the arrival is the max over
// pin-to-pin candidates.
func (m *CellModel) NonCtrlResponse(events []InputEvent, extraLoad float64) (Response, error) {
	if len(events) == 0 {
		return Response{}, fmt.Errorf("core: %s: NonCtrlResponse with no events", m.Name)
	}
	var out Response
	first := true
	for _, e := range events {
		if e.Pin < 0 || e.Pin >= m.N {
			return Response{}, fmt.Errorf("core: %s: invalid pin %d", m.Name, e.Pin)
		}
		arr := e.Arrival + m.NonCtrlPins[e.Pin].DelayAt(e.Trans, extraLoad)
		tr := m.NonCtrlPins[e.Pin].TransAt(e.Trans, extraLoad)
		if first || arr > out.Arrival {
			out.Arrival = arr
			out.Trans = tr
			first = false
		}
	}
	return out, nil
}

// Library is a characterised cell library.
type Library struct {
	// TechName identifies the process technology.
	TechName string
	// Vdd is the supply voltage used during characterisation.
	Vdd float64
	// Cells maps cell name to model.
	Cells map[string]*CellModel
}

// Cell returns the named cell model.
func (l *Library) Cell(name string) (*CellModel, bool) {
	m, ok := l.Cells[name]
	return m, ok
}

// MustCell returns the named cell model or panics; for use in tests and
// examples where absence is a programming error.
func (l *Library) MustCell(name string) *CellModel {
	m, ok := l.Cells[name]
	if !ok {
		panic(fmt.Sprintf("core: library has no cell %q", name))
	}
	return m
}

// Validate checks every cell in the library.
func (l *Library) Validate() error {
	for name, m := range l.Cells {
		if name != m.Name {
			return fmt.Errorf("core: library key %q does not match cell name %q", name, m.Name)
		}
		if err := m.Validate(); err != nil {
			return err
		}
	}
	return nil
}
