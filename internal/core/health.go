package core

import (
	"fmt"
	"io"
	"sort"
)

// CellHealth records the resilience outcome of one cell's characterisation:
// how many points were attempted, how many simulations needed a retry with
// tightened solver settings, and which points never converged and were
// replaced by interpolation from neighbouring grid points (degraded). A
// fully clean characterisation attaches no health record at all, so library
// artefacts are byte-identical to pre-resilience output.
type CellHealth struct {
	// Points is the number of characterisation points attempted.
	Points int
	// Retried counts simulations that only converged after a retry with
	// tightened solver settings (smaller step, larger Newton budget).
	Retried int `json:",omitempty"`
	// Degraded lists points that never converged and were interpolated
	// from converged neighbours (or replaced by a conservative default).
	Degraded []DegradedPoint `json:",omitempty"`
}

// DegradedFrac returns the degraded fraction of attempted points.
func (h *CellHealth) DegradedFrac() float64 {
	if h == nil || h.Points == 0 {
		return 0
	}
	return float64(len(h.Degraded)) / float64(h.Points)
}

// DegradedPoint identifies one characterisation point that was degraded.
type DegradedPoint struct {
	// Surface names the fitted surface the point belongs to, using the
	// Quality-map key convention (e.g. "pair0:1", "pin2/ctrl", "multi3").
	Surface string
	// Tx and Ty are the grid transition times of the point in seconds
	// (Ty is zero for single-input surfaces).
	Tx float64
	Ty float64 `json:",omitempty"`
	// Reason summarises the solver failure that forced the degradation.
	Reason string
}

// DegradedPoints returns the total number of degraded characterisation
// points recorded across the library's cells.
func (l *Library) DegradedPoints() int {
	n := 0
	for _, m := range l.Cells {
		if m.Health != nil {
			n += len(m.Health.Degraded)
		}
	}
	return n
}

// MaxDegradedFrac returns the largest per-cell degraded fraction in the
// library (zero for a fully healthy library).
func (l *Library) MaxDegradedFrac() float64 {
	worst := 0.0
	for _, m := range l.Cells {
		if f := m.Health.DegradedFrac(); f > worst {
			worst = f
		}
	}
	return worst
}

// WriteHealth renders a per-cell characterisation health summary: one line
// per cell with attempted/retried/degraded counts, then the degraded points
// in detail. Cells are sorted by name for reproducible output.
func (l *Library) WriteHealth(w io.Writer) error {
	names := make([]string, 0, len(l.Cells))
	width := len("cell")
	for name := range l.Cells {
		names = append(names, name)
		if len(name) > width {
			width = len(name)
		}
	}
	sort.Strings(names)
	if _, err := fmt.Fprintf(w, "%-*s %8s %8s %9s\n", width, "cell", "points", "retried", "degraded"); err != nil {
		return err
	}
	for _, name := range names {
		h := l.Cells[name].Health
		if h == nil {
			if _, err := fmt.Fprintf(w, "%-*s %8s %8d %9d\n", width, name, "-", 0, 0); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%-*s %8d %8d %9d (%.1f%%)\n",
			width, name, h.Points, h.Retried, len(h.Degraded), 100*h.DegradedFrac()); err != nil {
			return err
		}
	}
	for _, name := range names {
		h := l.Cells[name].Health
		if h == nil {
			continue
		}
		for _, d := range h.Degraded {
			if _, err := fmt.Fprintf(w, "  %s %s Tx=%.3gns Ty=%.3gns: %s\n",
				name, d.Surface, d.Tx*1e9, d.Ty*1e9, d.Reason); err != nil {
				return err
			}
		}
	}
	return nil
}
