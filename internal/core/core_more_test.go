package core

import (
	"bytes"
	"math"
	"testing"
)

func TestTransCtrl2FallbackAndClamps(t *testing.T) {
	m := testModel()
	const T = 0.5e-9

	// Fallback without pair data: the earlier input's transition time.
	m2 := testModel()
	m2.Pairs = nil
	if got := m2.TransCtrl2(0, 1, T, T, 0.2e-9, 0); !approx(got, m2.CtrlPins[0].TransAt(T, 0), 1e-18) {
		t.Errorf("fallback positive skew trans = %g", got)
	}
	if got := m2.TransCtrl2(0, 1, T, T, -0.2e-9, 0); !approx(got, m2.CtrlPins[1].TransAt(T, 0), 1e-18) {
		t.Errorf("fallback negative skew trans = %g", got)
	}

	// SKmin beyond the arms gets clamped inside them.
	m3 := testModel()
	for i := range m3.Pairs {
		m3.Pairs[i].Timing.SKmin = Quad2{K1: 99} // way past SX = 0.5ns
	}
	v := m3.TransCtrl2(0, 1, T, T, 0.4e-9, 0)
	if math.IsNaN(v) || v <= 0 {
		t.Errorf("clamped SKmin produced invalid trans %g", v)
	}

	// Fitted T0 above the arms is clamped down.
	m4 := testModel()
	for i := range m4.Pairs {
		m4.Pairs[i].Timing.T0 = Cross{K1: 99}
	}
	tx := m4.CtrlPins[0].TransAt(T, 0)
	ty := m4.CtrlPins[1].TransAt(T, 0)
	if got := m4.TransCtrl2(0, 1, T, T, 0.05e-9, 0); got > math.Min(tx, ty)+1e-18 {
		t.Errorf("T0 clamp failed: %g > min arm %g", got, math.Min(tx, ty))
	}

	// Negative fitted T0 is floored to a positive value.
	m5 := testModel()
	for i := range m5.Pairs {
		m5.Pairs[i].Timing.T0 = Cross{K1: -5}
	}
	skm := m5.SKminAt(0, 1, T, T)
	if got := m5.TransCtrl2(0, 1, T, T, skm, 0); got <= 0 {
		t.Errorf("negative T0 not floored: %g", got)
	}

	// Far-skew arms return the single-pin transition times.
	if got := m.TransCtrl2(0, 1, T, T, -2e-9, 0); !approx(got, m.CtrlPins[1].TransAt(T, 0), 1e-15) {
		t.Errorf("far negative skew trans = %g", got)
	}
}

func TestSKminAt(t *testing.T) {
	m := testModel()
	if got := m.SKminAt(0, 1, 0.5e-9, 0.5e-9); !approx(got, 0.1e-9, 1e-18) {
		t.Errorf("SKminAt = %g, want 0.1ns", got)
	}
	m.Pairs = nil
	if got := m.SKminAt(0, 1, 0.5e-9, 0.5e-9); got != 0 {
		t.Errorf("SKminAt without pair = %g, want 0", got)
	}
}

func TestLibraryCellLookup(t *testing.T) {
	lib := &Library{Cells: map[string]*CellModel{"NAND2": testModel()}}
	if _, ok := lib.Cell("NAND2"); !ok {
		t.Error("Cell(NAND2) should succeed")
	}
	if _, ok := lib.Cell("NOPE"); ok {
		t.Error("Cell(NOPE) should fail")
	}
	if m := lib.MustCell("NAND2"); m == nil {
		t.Error("MustCell returned nil")
	}
}

func TestWriteLoadJSONInPackage(t *testing.T) {
	lib := &Library{
		TechName: "t",
		Vdd:      3.3,
		Cells:    map[string]*CellModel{"NAND2": testModel()},
	}
	var buf bytes.Buffer
	if err := lib.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLibrary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.TechName != "t" || got.Vdd != 3.3 {
		t.Errorf("header lost: %+v", got)
	}
	const T = 0.4e-9
	a := lib.MustCell("NAND2").DelayCtrl2(0, 1, T, T, 0.1e-9, 0)
	b := got.MustCell("NAND2").DelayCtrl2(0, 1, T, T, 0.1e-9, 0)
	if a != b {
		t.Errorf("model changed across JSON: %g vs %g", a, b)
	}
}

func TestCrossCorrectionTerms(t *testing.T) {
	// The extended terms contribute; zeroing them recovers the base form.
	base := Cross{Kxy: 0.1, Kx: 0.2, Ky: 0.3, K1: 0.4}
	ext := base
	ext.Kxx, ext.Kyy, ext.Kxxy, ext.Kxyy = 0.05, 0.06, 0.07, 0.08
	tx, ty := 0.6e-9, 0.9e-9
	if base.Eval(tx, ty) == ext.Eval(tx, ty) {
		t.Error("correction terms had no effect")
	}
	x, y := math.Cbrt(0.6), math.Cbrt(0.9)
	want := (0.1*x*y + 0.2*x + 0.3*y + 0.4 + 0.05*x*x + 0.06*y*y + 0.07*x*x*y + 0.08*x*y*y) * 1e-9
	if got := ext.Eval(tx, ty); !approx(got, want, 1e-22) {
		t.Errorf("extended Eval = %g, want %g", got, want)
	}
}

func TestCtrlResponsePairOrderIndependence(t *testing.T) {
	// The response must not depend on the order events are listed in.
	m := testModel()
	const T = 0.5e-9
	evs := []InputEvent{
		{Pin: 0, Arrival: 1.0e-9, Trans: T},
		{Pin: 1, Arrival: 1.2e-9, Trans: T},
	}
	rev := []InputEvent{evs[1], evs[0]}
	a, err := m.CtrlResponse(evs, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.CtrlResponse(rev, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("order dependence: %+v vs %+v", a, b)
	}
}
