// Package sdf implements a pragmatic subset of the IEEE Standard Delay
// Format (SDF), the vehicle the paper names for conventional pin-to-pin
// timing ("SDF [5], which is commonly used for STA, uses pin-to-pin delays
// and hence is not accurate for modeling simultaneous transitions").
//
// The package exports a characterised library's pin-to-pin arcs as
// IOPATH entries with (min:typ:max) rise/fall triples — exactly the
// information the pin-to-pin baseline model consumes — and parses the same
// subset back. Exporting a library to SDF and re-importing it demonstrates
// concretely what the standard format *cannot* carry: the simultaneous-
// switching surfaces (D0R, SR, SK_t,min) have no SDF representation, which
// is the paper's motivation for a new model.
package sdf

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"sstiming/internal/core"
	"sstiming/internal/netlist"
)

// Triple is an SDF (min:typ:max) delay value, in seconds.
type Triple struct {
	Min, Typ, Max float64
}

// String renders the triple in SDF syntax with the file's nanosecond
// timescale.
func (t Triple) String() string {
	return fmt.Sprintf("(%.6g:%.6g:%.6g)", t.Min*1e9, t.Typ*1e9, t.Max*1e9)
}

// IOPath is one input-to-output delay arc of a cell instance.
type IOPath struct {
	// From is the input port name ("in0", "in1", ...).
	From string
	// To is the output port name (always "out" for library cells).
	To string
	// Rise and Fall are the output rise/fall delay triples.
	Rise, Fall Triple
}

// Cell is one annotated instance.
type Cell struct {
	// CellType is the library cell name, e.g. "NAND2".
	CellType string
	// Instance is the instance name (the output net name).
	Instance string
	// Paths are the delay arcs.
	Paths []IOPath
}

// File is a parsed or generated SDF delay file.
type File struct {
	// Design is the circuit name.
	Design string
	// Cells are the annotated instances, in netlist order.
	Cells []Cell
}

// Options controls library-to-SDF export.
type Options struct {
	// TransMin and TransMax bound the input transition times over which
	// min/max delays are taken; zero selects [0.1 ns, 1.0 ns].
	TransMin, TransMax float64
	// TransTyp is the typical transition time; zero selects 0.2 ns.
	TransTyp float64
}

func (o *Options) fill() {
	if o.TransMin <= 0 {
		o.TransMin = 0.1e-9
	}
	if o.TransMax <= 0 {
		o.TransMax = 1.0e-9
	}
	if o.TransTyp <= 0 {
		o.TransTyp = 0.2e-9
	}
}

// FromLibrary builds the SDF annotation of a circuit from a characterised
// library: for every gate instance and input pin, the output rise and fall
// delays are the extrema of the pin-to-pin timing functions over the
// transition-time range (using the corner-aware MinOver/MaxOver, so bi-tonic
// interior peaks are honoured).
func FromLibrary(c *netlist.Circuit, lib *core.Library, opts Options) (*File, error) {
	if err := c.EnsureBuilt(); err != nil {
		return nil, fmt.Errorf("sdf: %w", err)
	}
	opts.fill()
	f := &File{Design: c.Name}
	for i := range c.Gates {
		g := &c.Gates[i]
		cell, ok := lib.Cell(g.CellName())
		if !ok {
			return nil, fmt.Errorf("sdf: no library cell %q for gate %q", g.CellName(), g.Output)
		}
		extraLoad := float64(c.FanoutCount(g.Output)-1) * cell.RefLoad

		inst := Cell{CellType: g.CellName(), Instance: g.Output}
		for pin := range g.Inputs {
			libPin := pin
			if g.Kind == netlist.Inv || g.Kind == netlist.Buf {
				libPin = 0
			}
			// Which pin table produces an output rise?
			// Inverting gates rise on the to-controlling response;
			// buffers rise on the "ctrl" table by this package's
			// convention (matching package sta).
			risePins := cell.CtrlPins
			fallPins := cell.NonCtrlPins
			if g.Kind == netlist.Nor {
				risePins, fallPins = cell.NonCtrlPins, cell.CtrlPins
			}

			rise := tripleOf(&risePins[libPin], opts, extraLoad)
			fall := tripleOf(&fallPins[libPin], opts, extraLoad)
			inst.Paths = append(inst.Paths, IOPath{
				From: fmt.Sprintf("in%d", pin),
				To:   "out",
				Rise: rise,
				Fall: fall,
			})
		}
		f.Cells = append(f.Cells, inst)
	}
	return f, nil
}

func tripleOf(p *core.PinTiming, opts Options, extraLoad float64) Triple {
	loadD := p.DelayLoadSlope * extraLoad
	_, dMin := p.Delay.MinOver(opts.TransMin, opts.TransMax)
	_, dMax := p.Delay.MaxOver(opts.TransMin, opts.TransMax)
	return Triple{
		Min: dMin + loadD,
		Typ: p.Delay.Eval(opts.TransTyp) + loadD,
		Max: dMax + loadD,
	}
}

// Write emits the file in SDF syntax (nanosecond timescale).
func (f *File) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "(DELAYFILE\n")
	fmt.Fprintf(bw, "  (SDFVERSION \"2.1\")\n")
	fmt.Fprintf(bw, "  (DESIGN \"%s\")\n", f.Design)
	fmt.Fprintf(bw, "  (TIMESCALE 1ns)\n")
	for _, cell := range f.Cells {
		fmt.Fprintf(bw, "  (CELL\n")
		fmt.Fprintf(bw, "    (CELLTYPE \"%s\")\n", cell.CellType)
		fmt.Fprintf(bw, "    (INSTANCE %s)\n", cell.Instance)
		fmt.Fprintf(bw, "    (DELAY (ABSOLUTE\n")
		for _, p := range cell.Paths {
			fmt.Fprintf(bw, "      (IOPATH %s %s %s %s)\n", p.From, p.To, p.Rise, p.Fall)
		}
		fmt.Fprintf(bw, "    ))\n")
		fmt.Fprintf(bw, "  )\n")
	}
	fmt.Fprintf(bw, ")\n")
	return bw.Flush()
}

// Arc returns the IOPath of an instance's input port.
func (f *File) Arc(instance, from string) (IOPath, bool) {
	for i := range f.Cells {
		if f.Cells[i].Instance != instance {
			continue
		}
		for _, p := range f.Cells[i].Paths {
			if p.From == from {
				return p, true
			}
		}
	}
	return IOPath{}, false
}

// Instances returns the annotated instance names, sorted.
func (f *File) Instances() []string {
	out := make([]string, 0, len(f.Cells))
	for i := range f.Cells {
		out = append(out, f.Cells[i].Instance)
	}
	sort.Strings(out)
	return out
}

// Parse reads the subset of SDF emitted by Write.
func Parse(r io.Reader) (*File, error) {
	toks, err := tokenize(r)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseFile()
}

// tokenize splits the input into parentheses, strings and atoms.
func tokenize(r io.Reader) ([]string, error) {
	br := bufio.NewReader(r)
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for {
		ch, _, err := br.ReadRune()
		if err == io.EOF {
			flush()
			return toks, nil
		}
		if err != nil {
			return nil, fmt.Errorf("sdf: %w", err)
		}
		switch {
		case ch == '(' || ch == ')':
			flush()
			toks = append(toks, string(ch))
		case ch == '"':
			flush()
			var s strings.Builder
			for {
				c2, _, err := br.ReadRune()
				if err != nil {
					return nil, fmt.Errorf("sdf: unterminated string")
				}
				if c2 == '"' {
					break
				}
				s.WriteRune(c2)
			}
			toks = append(toks, `"`+s.String()+`"`)
		case ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r':
			flush()
		default:
			cur.WriteRune(ch)
		}
	}
}

type parser struct {
	toks []string
	pos  int
}

func (p *parser) peek() string {
	if p.pos >= len(p.toks) {
		return ""
	}
	return p.toks[p.pos]
}

func (p *parser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) expect(tok string) error {
	if got := p.next(); got != tok {
		return fmt.Errorf("sdf: expected %q, got %q (token %d)", tok, got, p.pos-1)
	}
	return nil
}

// skipForm consumes a balanced parenthesised form; the opening '(' has
// already been consumed.
func (p *parser) skipForm() error {
	depth := 1
	for depth > 0 {
		switch t := p.next(); t {
		case "(":
			depth++
		case ")":
			depth--
		case "":
			return fmt.Errorf("sdf: unexpected EOF inside form")
		}
	}
	return nil
}

func unquote(s string) string {
	return strings.TrimSuffix(strings.TrimPrefix(s, `"`), `"`)
}

func (p *parser) parseFile() (*File, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	if err := p.expect("DELAYFILE"); err != nil {
		return nil, err
	}
	f := &File{}
	for {
		switch p.peek() {
		case ")":
			p.next()
			return f, nil
		case "(":
			p.next()
			keyword := p.next()
			switch keyword {
			case "DESIGN":
				f.Design = unquote(p.next())
				if err := p.expect(")"); err != nil {
					return nil, err
				}
			case "CELL":
				cell, err := p.parseCell()
				if err != nil {
					return nil, err
				}
				f.Cells = append(f.Cells, cell)
			default:
				// SDFVERSION, TIMESCALE, etc.
				if err := p.skipForm(); err != nil {
					return nil, err
				}
			}
		case "":
			return nil, fmt.Errorf("sdf: unexpected EOF")
		default:
			return nil, fmt.Errorf("sdf: unexpected token %q", p.peek())
		}
	}
}

func (p *parser) parseCell() (Cell, error) {
	var cell Cell
	for {
		switch p.peek() {
		case ")":
			p.next()
			return cell, nil
		case "(":
			p.next()
			switch keyword := p.next(); keyword {
			case "CELLTYPE":
				cell.CellType = unquote(p.next())
				if err := p.expect(")"); err != nil {
					return cell, err
				}
			case "INSTANCE":
				cell.Instance = p.next()
				if err := p.expect(")"); err != nil {
					return cell, err
				}
			case "DELAY":
				paths, err := p.parseDelay()
				if err != nil {
					return cell, err
				}
				cell.Paths = append(cell.Paths, paths...)
			default:
				if err := p.skipForm(); err != nil {
					return cell, err
				}
			}
		default:
			return cell, fmt.Errorf("sdf: unexpected token %q in CELL", p.peek())
		}
	}
}

func (p *parser) parseDelay() ([]IOPath, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	if err := p.expect("ABSOLUTE"); err != nil {
		return nil, err
	}
	var paths []IOPath
	for {
		switch p.peek() {
		case ")":
			p.next() // close ABSOLUTE
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return paths, nil
		case "(":
			p.next()
			if err := p.expect("IOPATH"); err != nil {
				return nil, err
			}
			var io IOPath
			io.From = p.next()
			io.To = p.next()
			var err error
			if io.Rise, err = p.parseTriple(); err != nil {
				return nil, err
			}
			if io.Fall, err = p.parseTriple(); err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			paths = append(paths, io)
		default:
			return nil, fmt.Errorf("sdf: unexpected token %q in ABSOLUTE", p.peek())
		}
	}
}

func (p *parser) parseTriple() (Triple, error) {
	if err := p.expect("("); err != nil {
		return Triple{}, err
	}
	body := p.next()
	if err := p.expect(")"); err != nil {
		return Triple{}, err
	}
	parts := strings.Split(body, ":")
	if len(parts) != 3 {
		return Triple{}, fmt.Errorf("sdf: malformed triple %q", body)
	}
	var vals [3]float64
	for i, s := range parts {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Triple{}, fmt.Errorf("sdf: bad number %q: %w", s, err)
		}
		vals[i] = v * 1e-9 // file timescale is 1ns
	}
	return Triple{Min: vals[0], Typ: vals[1], Max: vals[2]}, nil
}
