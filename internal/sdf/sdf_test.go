package sdf

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"sstiming/internal/benchgen"
	"sstiming/internal/netlist"
	"sstiming/internal/prechar"
)

func c17File(t *testing.T) *File {
	t.Helper()
	lib := prechar.MustLibrary()
	f, err := FromLibrary(benchgen.C17(), lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFromLibraryC17(t *testing.T) {
	f := c17File(t)
	if f.Design != "c17" {
		t.Errorf("design = %q", f.Design)
	}
	if len(f.Cells) != 6 {
		t.Fatalf("%d cells, want 6", len(f.Cells))
	}
	for _, cell := range f.Cells {
		if cell.CellType != "NAND2" {
			t.Errorf("cell type %q, want NAND2", cell.CellType)
		}
		if len(cell.Paths) != 2 {
			t.Errorf("instance %s has %d paths, want 2", cell.Instance, len(cell.Paths))
		}
		for _, p := range cell.Paths {
			for _, tr := range []Triple{p.Rise, p.Fall} {
				if !(tr.Min > 0 && tr.Min <= tr.Typ+1e-15 && tr.Typ <= tr.Max+1e-15) {
					t.Errorf("%s %s: implausible triple %+v", cell.Instance, p.From, tr)
				}
			}
		}
	}
}

func TestTriplesMatchLibraryEvaluation(t *testing.T) {
	lib := prechar.MustLibrary()
	f := c17File(t)
	nand2 := lib.MustCell("NAND2")

	// Gate 10 = NAND(1,3) drives two loads (gates 22... actually net 10
	// feeds gate 22 only). Instance 10, arc in0.
	arc, ok := f.Arc("10", "in0")
	if !ok {
		t.Fatal("missing arc 10/in0")
	}
	// Rise delay typ at 0.2 ns input transition, no extra load for
	// fanout 1.
	want := nand2.CtrlPins[0].Delay.Eval(0.2e-9)
	if math.Abs(arc.Rise.Typ-want) > 1e-15 {
		t.Errorf("rise typ = %g, want %g", arc.Rise.Typ, want)
	}
	// Net 11 feeds gates 16 and 19 -> one extra load.
	arc11, ok := f.Arc("11", "in0")
	if !ok {
		t.Fatal("missing arc 11/in0")
	}
	if arc11.Rise.Typ <= arc.Rise.Typ {
		t.Errorf("higher-fanout instance should be slower: %g vs %g", arc11.Rise.Typ, arc.Rise.Typ)
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	f := c17File(t)
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatalf("parse failed: %v", err)
	}
	if got.Design != f.Design || len(got.Cells) != len(f.Cells) {
		t.Fatalf("structure changed: %q %d cells", got.Design, len(got.Cells))
	}
	for i := range f.Cells {
		a, b := f.Cells[i], got.Cells[i]
		if a.Instance != b.Instance || a.CellType != b.CellType || len(a.Paths) != len(b.Paths) {
			t.Fatalf("cell %d differs: %+v vs %+v", i, a, b)
		}
		for j := range a.Paths {
			pa, pb := a.Paths[j], b.Paths[j]
			if pa.From != pb.From || pa.To != pb.To {
				t.Errorf("arc naming differs: %+v vs %+v", pa, pb)
			}
			// Values survive at the printed precision.
			if math.Abs(pa.Rise.Typ-pb.Rise.Typ) > 1e-13 || math.Abs(pa.Fall.Max-pb.Fall.Max) > 1e-13 {
				t.Errorf("arc values drifted: %+v vs %+v", pa, pb)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`(DELAYFILE`,
		`(DELAYFILE (CELL (CELLTYPE "X") (INSTANCE i) (DELAY (ABSOLUTE (IOPATH a b (1:2) (1:2:3)))))`,
		`(DELAYFILE (CELL (CELLTYPE "X") (INSTANCE i) (DELAY (ABSOLUTE (IOPATH a b (x:y:z) (1:2:3)))))`,
		`DELAYFILE`,
	}
	for _, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestParseSkipsUnknownForms(t *testing.T) {
	src := `(DELAYFILE
  (SDFVERSION "2.1")
  (DESIGN "d")
  (TIMESCALE 1ns)
  (VOLTAGE 3.3:3.3:3.3)
  (CELL (CELLTYPE "NAND2") (INSTANCE g1)
    (DELAY (ABSOLUTE (IOPATH in0 out (0.1:0.2:0.3) (0.2:0.3:0.4))))
  )
)`
	f, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if f.Design != "d" || len(f.Cells) != 1 {
		t.Fatalf("unexpected result: %+v", f)
	}
	arc, ok := f.Arc("g1", "in0")
	if !ok {
		t.Fatal("missing arc")
	}
	if math.Abs(arc.Rise.Typ-0.2e-9) > 1e-15 || math.Abs(arc.Fall.Max-0.4e-9) > 1e-15 {
		t.Errorf("triples parsed wrong: %+v", arc)
	}
}

func TestInstancesSorted(t *testing.T) {
	f := c17File(t)
	insts := f.Instances()
	if len(insts) != 6 {
		t.Fatalf("%d instances", len(insts))
	}
	for i := 1; i < len(insts); i++ {
		if insts[i] < insts[i-1] {
			t.Fatal("instances not sorted")
		}
	}
	if _, ok := f.Arc("nope", "in0"); ok {
		t.Error("Arc on unknown instance should fail")
	}
	if _, ok := f.Arc("10", "in9"); ok {
		t.Error("Arc on unknown port should fail")
	}
}

func TestFromLibraryUnknownCell(t *testing.T) {
	lib := prechar.MustLibrary()
	c := netlist.New("big")
	ins := make([]string, 8)
	for i := range ins {
		ins[i] = string(rune('a' + i))
		c.AddPI(ins[i])
	}
	c.AddGate(netlist.Nand, "z", ins...)
	c.AddPO("z")
	if err := c.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := FromLibrary(c, lib, Options{}); err == nil {
		t.Error("expected error for NAND8 (not in library)")
	}
}
