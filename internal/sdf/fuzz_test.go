package sdf

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzParseSDF hammers the SDF reader with arbitrary bytes. Parse must never
// panic; when it accepts an input whose names and delay values are
// representable by Write (plain atoms, moderate finite delays), a
// Write/Parse round trip must preserve the file's structure and values to
// the writer's printed precision.
func FuzzParseSDF(f *testing.F) {
	f.Add([]byte(`(DELAYFILE
  (SDFVERSION "2.1")
  (DESIGN "c17")
  (TIMESCALE 1ns)
  (CELL
    (CELLTYPE "NAND2")
    (INSTANCE n10)
    (DELAY (ABSOLUTE
      (IOPATH in0 out (0.061:0.0674:0.0885) (0.0571:0.0632:0.0843)
      )
    ))
  )
)
`))
	f.Add([]byte("(DELAYFILE (DESIGN \"x\") (UNKNOWN (NESTED forms) ignored))"))
	f.Add([]byte("(DELAYFILE"))
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := Parse(bytes.NewReader(data))
		if err != nil {
			return
		}
		if !writable(file) {
			return
		}
		var buf bytes.Buffer
		if err := file.Write(&buf); err != nil {
			t.Fatalf("write of accepted file failed: %v", err)
		}
		got, err := Parse(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("round trip does not parse: %v\n%s", err, buf.String())
		}
		if got.Design != file.Design || len(got.Cells) != len(file.Cells) {
			t.Fatalf("round trip changed file: design %q/%d cells -> %q/%d cells",
				file.Design, len(file.Cells), got.Design, len(got.Cells))
		}
		for i := range file.Cells {
			a, b := &file.Cells[i], &got.Cells[i]
			if a.CellType != b.CellType || a.Instance != b.Instance || len(a.Paths) != len(b.Paths) {
				t.Fatalf("round trip changed cell %d: %+v -> %+v", i, a, b)
			}
			for j := range a.Paths {
				pa, pb := a.Paths[j], b.Paths[j]
				if pa.From != pb.From || pa.To != pb.To {
					t.Fatalf("round trip changed path %d/%d ports: %+v -> %+v", i, j, pa, pb)
				}
				for _, v := range [][2]float64{
					{pa.Rise.Min, pb.Rise.Min}, {pa.Rise.Typ, pb.Rise.Typ}, {pa.Rise.Max, pb.Rise.Max},
					{pa.Fall.Min, pb.Fall.Min}, {pa.Fall.Typ, pb.Fall.Typ}, {pa.Fall.Max, pb.Fall.Max},
				} {
					if math.Abs(v[0]-v[1]) > 1e-5*math.Max(math.Abs(v[0]), math.Abs(v[1])) {
						t.Fatalf("round trip drifted value %g -> %g in cell %d path %d", v[0], v[1], i, j)
					}
				}
			}
		}
	})
}

// writable reports whether Write can represent the file faithfully: the
// writer emits instance and port names as bare atoms (so they must be plain
// tokens), quotes design and cell type (so they must not contain quotes),
// and prints delays with 6 significant digits on a nanosecond scale (so they
// must be finite and of sane magnitude).
func writable(f *File) bool {
	atom := func(s string) bool {
		return s != "" && !strings.ContainsAny(s, " \t\n\r()\"")
	}
	quoted := func(s string) bool {
		return !strings.ContainsAny(s, "\"\\")
	}
	val := func(v float64) bool {
		return !math.IsNaN(v) && math.Abs(v) < 1e6 // < 10^15 ns: prints without overflow
	}
	triple := func(tr Triple) bool { return val(tr.Min) && val(tr.Typ) && val(tr.Max) }
	if !quoted(f.Design) {
		return false
	}
	for i := range f.Cells {
		c := &f.Cells[i]
		if !quoted(c.CellType) || !atom(c.Instance) {
			return false
		}
		for _, p := range c.Paths {
			if !atom(p.From) || !atom(p.To) || !triple(p.Rise) || !triple(p.Fall) {
				return false
			}
		}
	}
	return true
}
