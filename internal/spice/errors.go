package spice

import (
	"errors"
	"fmt"
)

// The solver error taxonomy. Every failure Transient can return wraps one of
// these sentinels, so callers triage with errors.Is and never by string
// matching:
//
//   - ErrNoConvergence: the Newton iteration at some time point did not reach
//     the voltage tolerance within the iteration budget, and the recovery
//     ladder (step-halving retries, gmin stepping for the operating point)
//     could not rescue it either;
//   - ErrNumerical: the linear solve produced NaN/Inf (or a singular MNA
//     matrix) — a numerical blow-up rather than a slow-to-converge point;
//   - ErrCancelled: the caller's context was cancelled; the returned error
//     also wraps the context's own error, so errors.Is(err, context.Canceled)
//     keeps working.
//
// ErrNoConvergence and ErrNumerical failures additionally carry a *SolveError
// with point-level diagnostics, retrievable with errors.As.
var (
	ErrNoConvergence = errors.New("newton iteration did not converge")
	ErrNumerical     = errors.New("numerical error in linear solve")
	ErrCancelled     = errors.New("analysis cancelled")
)

// IsRecoverable reports whether err is a solver failure the resilience
// machinery may retry (non-convergence or a numerical blow-up). Cancellation
// and structural errors (bad options, unknown nodes) are not recoverable.
func IsRecoverable(err error) bool {
	return errors.Is(err, ErrNoConvergence) || errors.Is(err, ErrNumerical)
}

// SolveError is the diagnostic payload of a failed time-point solve. It
// wraps one of the taxonomy sentinels (Kind), so errors.Is sees through it.
type SolveError struct {
	// Kind is ErrNoConvergence or ErrNumerical.
	Kind error
	// Time is the simulated time of the failed point (seconds); zero for
	// the DC operating point.
	Time float64
	// Step is the transient step index (0 = DC operating point).
	Step int
	// Attempt is the recovery attempt at which the failure occurred
	// (0 = first try, k = k-th step-halving or gmin continuation).
	Attempt int
	// Iters is the number of Newton iterations spent before giving up.
	Iters int
	// Node names the worst-converging (or NaN/Inf-poisoned) unknown.
	Node string
	// Residual is the last Newton update magnitude max|ΔV| in volts
	// (meaningful for ErrNoConvergence).
	Residual float64
	// Injected marks failures forced by a FaultHook (chaos testing).
	Injected bool
	// Cause carries an underlying error (e.g. the singular-matrix detail),
	// when one exists.
	Cause error
}

// Error formats the diagnostics on one line.
func (e *SolveError) Error() string {
	msg := fmt.Sprintf("%v at step %d (t=%.4gs)", e.Kind, e.Step, e.Time)
	if e.Iters > 0 {
		msg += fmt.Sprintf(" after %d iterations", e.Iters)
	}
	if e.Node != "" {
		msg += fmt.Sprintf(", worst node %q", e.Node)
	}
	if e.Residual != 0 {
		msg += fmt.Sprintf(" (residual %.3g V)", e.Residual)
	}
	if e.Attempt > 0 {
		msg += fmt.Sprintf(", recovery attempt %d", e.Attempt)
	}
	if e.Injected {
		msg += " [injected]"
	}
	if e.Cause != nil {
		msg += ": " + e.Cause.Error()
	}
	return msg
}

// Unwrap exposes the taxonomy sentinel (and the cause, when present) to
// errors.Is/As.
func (e *SolveError) Unwrap() []error {
	if e.Cause != nil {
		return []error{e.Kind, e.Cause}
	}
	return []error{e.Kind}
}

// cancelError wraps a context error so that both errors.Is(err, ErrCancelled)
// and errors.Is(err, context.Canceled) hold.
type cancelError struct{ cause error }

func (e *cancelError) Error() string   { return ErrCancelled.Error() + ": " + e.cause.Error() }
func (e *cancelError) Unwrap() []error { return []error{ErrCancelled, e.cause} }

// Cancelled wraps a non-nil context error (context.Canceled or
// context.DeadlineExceeded) into the taxonomy, so that both
// errors.Is(err, ErrCancelled) and errors.Is(err, cause) hold. Layers above
// the solver (sta, itr, the service daemon) use it to report caller
// cancellation uniformly with the solver's own ErrCancelled path. If cause
// already carries ErrCancelled it is returned unchanged.
func Cancelled(cause error) error {
	if errors.Is(cause, ErrCancelled) {
		return cause
	}
	return &cancelError{cause: cause}
}
