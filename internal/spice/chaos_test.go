package spice

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"sstiming/internal/engine"
)

// chaosRC builds the RC step-response bench (R = 1k, C = 1pF, tau = 1ns)
// driven at chaosSteps points — small enough that every chaos scenario runs
// in microseconds, nonlinear enough (via the solver path) to be realistic.
func chaosRC() *Circuit {
	c := NewCircuit()
	vin := c.Node("vin")
	out := c.Node("out")
	c.AddVSource(vin, 0, func(t float64) float64 {
		if t <= 0 {
			return 0
		}
		return 1.0
	})
	c.AddRes(vin, out, 1000)
	c.AddCap(out, 0, 1e-12)
	return c
}

const chaosSteps = 100

func chaosOpts() TransientOpts {
	return TransientOpts{TStop: 5e-9, TStep: 5e-11, Record: []string{"out"}}
}

// at returns a hook faulting one (step, attempt) coordinate of the first
// solve attempt only — the recovery ladder sees a clean retry.
func at(step int, kind FaultKind) FaultHook {
	return func(s int, _ float64, attempt int) FaultKind {
		if s == step && attempt == 0 {
			return kind
		}
		return FaultNone
	}
}

// persistentAt returns a hook faulting one step on every attempt, defeating
// the recovery ladder.
func persistentAt(step int, kind FaultKind) FaultHook {
	return func(s int, _ float64, _ int) FaultKind {
		if s == step {
			return kind
		}
		return FaultNone
	}
}

func TestChaosStepHalvingRecoversInjectedNonConvergence(t *testing.T) {
	clean, err := chaosRC().Transient(chaosOpts())
	if err != nil {
		t.Fatal(err)
	}

	met := engine.NewMetrics()
	opts := chaosOpts()
	opts.FaultHook = at(25, FaultNoConverge)
	opts.Metrics = met
	res, err := chaosRC().Transient(opts)
	if err != nil {
		t.Fatalf("injected non-convergence was not recovered: %v", err)
	}
	// The recovered point was integrated with halved sub-steps, so it picks
	// up a (smaller) discretisation error of its own; the waveforms must
	// stay within millivolts.
	if got, want := res.Wave("out").Final(), clean.Wave("out").Final(); math.Abs(got-want) > 1e-3 {
		t.Errorf("recovered final = %g, clean = %g", got, want)
	}
	if diff := math.Abs(res.Wave("out").At(1.25e-9) - clean.Wave("out").At(1.25e-9)); diff > 1e-3 {
		t.Errorf("recovered point deviates from clean run by %g V", diff)
	}
	if got := met.Get(engine.FaultsInjected); got != 1 {
		t.Errorf("FaultsInjected = %d, want 1", got)
	}
	if got := met.Get(engine.SpiceStepRetries); got != 1 {
		t.Errorf("SpiceStepRetries = %d, want 1", got)
	}
	if got := met.Get(engine.SpiceRecovered); got != 1 {
		t.Errorf("SpiceRecovered = %d, want 1", got)
	}
	if got := met.Get(engine.SpiceStepHalvings); got < 1 {
		t.Errorf("SpiceStepHalvings = %d, want >= 1", got)
	}
	if got := met.Get(engine.SpiceUnrecovered); got != 0 {
		t.Errorf("SpiceUnrecovered = %d, want 0", got)
	}
}

func TestChaosPersistentFaultExhaustsLadder(t *testing.T) {
	met := engine.NewMetrics()
	opts := chaosOpts()
	opts.FaultHook = persistentAt(25, FaultNoConverge)
	opts.Metrics = met
	_, err := chaosRC().Transient(opts)
	if err == nil {
		t.Fatal("persistent fault unexpectedly recovered")
	}
	if !errors.Is(err, ErrNoConvergence) {
		t.Errorf("errors.Is(err, ErrNoConvergence) = false for %v", err)
	}
	var se *SolveError
	if !errors.As(err, &se) {
		t.Fatalf("no *SolveError in %v", err)
	}
	if se.Step != 25 || !se.Injected {
		t.Errorf("SolveError step=%d injected=%v, want 25/true", se.Step, se.Injected)
	}
	if !strings.Contains(err.Error(), "step-halving") {
		t.Errorf("error does not mention the exhausted ladder: %v", err)
	}
	if got := met.Get(engine.SpiceUnrecovered); got != 1 {
		t.Errorf("SpiceUnrecovered = %d, want 1", got)
	}
}

func TestChaosNaNGuardNamesNode(t *testing.T) {
	opts := chaosOpts()
	opts.FaultHook = persistentAt(25, FaultNaN)
	_, err := chaosRC().Transient(opts)
	if err == nil {
		t.Fatal("NaN poisoning unexpectedly survived")
	}
	if !errors.Is(err, ErrNumerical) {
		t.Errorf("errors.Is(err, ErrNumerical) = false for %v", err)
	}
	var se *SolveError
	if !errors.As(err, &se) {
		t.Fatalf("no *SolveError in %v", err)
	}
	if se.Node == "" {
		t.Errorf("SolveError does not name the poisoned unknown: %v", err)
	}
	if !se.Injected {
		t.Errorf("SolveError not marked injected: %v", err)
	}
}

func TestChaosRecoverableNaNIsRescued(t *testing.T) {
	opts := chaosOpts()
	opts.FaultHook = at(25, FaultNaN)
	opts.Metrics = engine.NewMetrics()
	if _, err := chaosRC().Transient(opts); err != nil {
		t.Fatalf("one-shot NaN fault was not recovered: %v", err)
	}
	if got := opts.Metrics.Get(engine.SpiceRecovered); got != 1 {
		t.Errorf("SpiceRecovered = %d, want 1", got)
	}
}

func TestChaosGminSteppingRecoversDC(t *testing.T) {
	clean, err := chaosRC().Transient(chaosOpts())
	if err != nil {
		t.Fatal(err)
	}
	met := engine.NewMetrics()
	opts := chaosOpts()
	opts.FaultHook = at(0, FaultNoConverge)
	opts.Metrics = met
	res, err := chaosRC().Transient(opts)
	if err != nil {
		t.Fatalf("DC fault was not rescued by gmin stepping: %v", err)
	}
	if got, want := res.Wave("out").Final(), clean.Wave("out").Final(); math.Abs(got-want) > 1e-6 {
		t.Errorf("final = %g, clean = %g", got, want)
	}
	if got := met.Get(engine.SpiceGminSteps); got < 2 {
		t.Errorf("SpiceGminSteps = %d, want >= 2 (a whole continuation ladder)", got)
	}
	if got := met.Get(engine.SpiceRecovered); got != 1 {
		t.Errorf("SpiceRecovered = %d, want 1", got)
	}
}

func TestChaosPersistentDCFaultFailsWithTaxonomy(t *testing.T) {
	opts := chaosOpts()
	opts.FaultHook = persistentAt(0, FaultNoConverge)
	_, err := chaosRC().Transient(opts)
	if err == nil {
		t.Fatal("persistent DC fault unexpectedly recovered")
	}
	if !errors.Is(err, ErrNoConvergence) {
		t.Errorf("errors.Is(err, ErrNoConvergence) = false for %v", err)
	}
	if !strings.Contains(err.Error(), "gmin") {
		t.Errorf("error does not mention the failed gmin ladder: %v", err)
	}
}

func TestChaosCancellationInsideNewtonLoop(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := chaosOpts()
	opts.Ctx = ctx
	_, err := chaosRC().Transient(opts)
	if err == nil {
		t.Fatal("cancelled analysis returned no error")
	}
	if !errors.Is(err, ErrCancelled) {
		t.Errorf("errors.Is(err, ErrCancelled) = false for %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false for %v", err)
	}
	if IsRecoverable(err) {
		t.Errorf("cancellation must not be recoverable: %v", err)
	}
}

func TestChaosPanicInjectionPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("injected panic did not propagate")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "faultinject: forced panic") {
			t.Errorf("unexpected panic payload %v", r)
		}
	}()
	opts := chaosOpts()
	opts.FaultHook = at(25, FaultPanic)
	_, _ = chaosRC().Transient(opts)
}

func TestChaosRecoverySettingNeutralOnCleanRun(t *testing.T) {
	a, err := chaosRC().Transient(chaosOpts())
	if err != nil {
		t.Fatal(err)
	}
	opts := chaosOpts()
	opts.MaxStepHalvings = 8
	b, err := chaosRC().Transient(opts)
	if err != nil {
		t.Fatal(err)
	}
	wa, wb := a.Wave("out"), b.Wave("out")
	if wa.Len() != wb.Len() {
		t.Fatalf("sample counts differ: %d vs %d", wa.Len(), wb.Len())
	}
	for i := range wa.V {
		if wa.V[i] != wb.V[i] || wa.T[i] != wb.T[i] {
			t.Fatalf("sample %d differs on a clean run: (%g,%g) vs (%g,%g)",
				i, wa.T[i], wa.V[i], wb.T[i], wb.V[i])
		}
	}
}
