// Package spice implements a small transistor-level transient circuit
// simulator — the reproduction's stand-in for HSPICE.
//
// It performs modified nodal analysis (MNA) with Newton-Raphson iteration at
// every time point and backward-Euler integration of capacitor currents.
// Supported elements are resistors, two-terminal capacitors, independent
// (time-varying) voltage sources, and square-law MOSFETs from package device.
//
// The simulator is sized for cell characterisation: circuits of a few dozen
// nodes, simulated for a few nanoseconds at picosecond resolution. Matrices
// are dense and solved by partial-pivot LU decomposition.
package spice

import (
	"context"
	"fmt"
	"math"

	"sstiming/internal/device"
	"sstiming/internal/engine"
	"sstiming/internal/waveform"
)

// Ground is the name of the reference node. It is always node index 0.
const Ground = "0"

// gmin is a small conductance from every node to ground that keeps the
// Jacobian non-singular when devices are cut off.
const gmin = 1e-12

// Circuit is a netlist under construction. Add elements, then call Transient.
type Circuit struct {
	nodeIndex map[string]int
	nodeNames []string

	mosfets []mosfet
	caps    []capacitor
	ress    []resistor
	vsrcs   []vsource
}

type mosfet struct {
	d, g, s int
	params  *device.MOSParams
	geom    device.Geometry
}

type capacitor struct {
	a, b int
	c    float64
}

type resistor struct {
	a, b int
	g    float64
}

// WaveFunc gives the value of an independent voltage source at time t.
type WaveFunc func(t float64) float64

type vsource struct {
	p, m int
	wave WaveFunc
}

// NewCircuit returns an empty circuit containing only the ground node.
func NewCircuit() *Circuit {
	c := &Circuit{nodeIndex: make(map[string]int)}
	c.nodeIndex[Ground] = 0
	c.nodeNames = append(c.nodeNames, Ground)
	return c
}

// Node returns the index of the named node, creating it if necessary.
// "0" and "gnd" both refer to ground.
func (c *Circuit) Node(name string) int {
	if name == "gnd" || name == "GND" {
		name = Ground
	}
	if idx, ok := c.nodeIndex[name]; ok {
		return idx
	}
	idx := len(c.nodeNames)
	c.nodeIndex[name] = idx
	c.nodeNames = append(c.nodeNames, name)
	return idx
}

// NumNodes returns the number of nodes including ground.
func (c *Circuit) NumNodes() int { return len(c.nodeNames) }

// AddMOSFET adds a MOSFET with the given drain, gate and source node indices.
// The bulk terminal is implicit (tied to the appropriate rail; body effect is
// not modelled).
func (c *Circuit) AddMOSFET(d, g, s int, params *device.MOSParams, geom device.Geometry) {
	c.mosfets = append(c.mosfets, mosfet{d: d, g: g, s: s, params: params, geom: geom})
}

// AddCap adds a linear capacitor of value farads between nodes a and b.
func (c *Circuit) AddCap(a, b int, farads float64) {
	if farads <= 0 {
		return
	}
	c.caps = append(c.caps, capacitor{a: a, b: b, c: farads})
}

// AddRes adds a linear resistor of value ohms between nodes a and b.
func (c *Circuit) AddRes(a, b int, ohms float64) {
	c.ress = append(c.ress, resistor{a: a, b: b, g: 1 / ohms})
}

// AddVSource adds an independent voltage source from node p (positive) to
// node m whose value is wave(t).
func (c *Circuit) AddVSource(p, m int, wave WaveFunc) {
	c.vsrcs = append(c.vsrcs, vsource{p: p, m: m, wave: wave})
}

// AddDC adds a constant voltage source of the given value from p to ground.
func (c *Circuit) AddDC(p int, volts float64) {
	c.AddVSource(p, 0, func(float64) float64 { return volts })
}

// Method selects the numerical integration scheme for capacitor currents.
type Method int

const (
	// BackwardEuler is the first-order implicit scheme: unconditionally
	// stable and non-ringing, the default.
	BackwardEuler Method = iota
	// Trapezoidal is the second-order implicit scheme: more accurate at
	// a given step size, at the cost of possible ringing on stiff
	// discontinuities.
	Trapezoidal
)

// String names the method.
func (m Method) String() string {
	if m == Trapezoidal {
		return "trapezoidal"
	}
	return "backward-euler"
}

// TransientOpts controls a transient analysis.
type TransientOpts struct {
	// TStop is the simulation end time in seconds.
	TStop float64
	// TStep is the fixed integration step in seconds. Zero selects 1 ps.
	TStep float64
	// MaxNewton bounds Newton iterations per time point. Zero selects 60.
	MaxNewton int
	// VTol is the Newton convergence tolerance in volts. Zero selects 1 uV.
	VTol float64
	// Method selects the integration scheme (default BackwardEuler).
	Method Method
	// Record lists node names to record. Nil records every node.
	Record []string
	// Ctx, when non-nil, cancels the analysis; it is observed inside the
	// Newton loop of every time point, so even a single large flattened
	// solve cancels promptly. Cancellation returns an error wrapping both
	// ErrCancelled and the context's own error.
	Ctx context.Context
	// MaxStepHalvings bounds the non-convergence recovery ladder: a time
	// point that fails to converge is retried with the step repeatedly
	// halved (sub-stepping to reach the same point) up to this many levels,
	// i.e. down to TStep/2^MaxStepHalvings. Zero selects 4; negative
	// disables recovery. Recovery only activates on failure, so a clean
	// analysis is bit-identical whatever the setting.
	MaxStepHalvings int
	// FaultHook, when non-nil, is consulted before each time-point solve
	// and can force a deterministic failure for chaos testing (see
	// internal/faultinject). Production runs leave it nil.
	FaultHook FaultHook
	// Metrics, when non-nil, receives the simulation effort counters
	// (transients, time steps, Newton iterations, recovery activity).
	Metrics *engine.Metrics
}

// Result holds the recorded waveforms of a transient analysis.
type Result struct {
	byName map[string]*waveform.Waveform
}

// Wave returns the waveform recorded for the named node, or nil if the node
// was not recorded.
func (r *Result) Wave(name string) *waveform.Waveform { return r.byName[name] }

// Transient runs a transient analysis and returns the recorded waveforms.
// The initial state is the DC operating point with all sources at their
// t = 0 values.
func (c *Circuit) Transient(opts TransientOpts) (*Result, error) {
	if opts.TStop <= 0 {
		return nil, fmt.Errorf("spice: TStop must be positive, got %g", opts.TStop)
	}
	h := opts.TStep
	if h <= 0 {
		h = 1e-12
	}
	maxNewton := opts.MaxNewton
	if maxNewton <= 0 {
		maxNewton = 60
	}
	vtol := opts.VTol
	if vtol <= 0 {
		vtol = 1e-6
	}

	nn := len(c.nodeNames) // includes ground
	nv := len(c.vsrcs)
	dim := (nn - 1) + nv // unknowns: node voltages 1..nn-1, then branch currents

	s := newSolver(dim)
	// x holds node voltages indexed by node (x[0] is ground, always 0)
	// followed by branch currents.
	volt := make([]float64, nn)
	voltPrev := make([]float64, nn)
	branch := make([]float64, nv)

	// Recording setup.
	record := opts.Record
	if record == nil {
		record = append([]string(nil), c.nodeNames...)
	}
	res := &Result{byName: make(map[string]*waveform.Waveform, len(record))}
	recIdx := make([]int, 0, len(record))
	recWaves := make([]*waveform.Waveform, 0, len(record))
	for _, name := range record {
		idx, ok := c.nodeIndex[name]
		if !ok {
			return nil, fmt.Errorf("spice: cannot record unknown node %q", name)
		}
		w := &waveform.Waveform{}
		res.byName[name] = w
		recIdx = append(recIdx, idx)
		recWaves = append(recWaves, w)
	}

	// Per-capacitor current state for the trapezoidal method.
	capCur := make([]float64, len(c.caps))

	maxHalvings := opts.MaxStepHalvings
	if maxHalvings == 0 {
		maxHalvings = 4
	}
	if maxHalvings < 0 {
		maxHalvings = 0
	}
	sc := &solveCtx{
		s:         s,
		maxNewton: maxNewton,
		vtol:      vtol,
		method:    opts.Method,
		ctx:       opts.Ctx,
		hook:      opts.FaultHook,
		gmin:      gmin,
	}

	// Effort accounting is batched into locals and flushed once per
	// analysis so the integration loop pays no atomic operations.
	var stepsDone, newtonIters int64
	var retries, halvings, recovered, unrecovered int64
	defer func() {
		opts.Metrics.Add(engine.SpiceTransients, 1)
		opts.Metrics.Add(engine.SpiceTransSteps, stepsDone)
		opts.Metrics.Add(engine.SpiceNewtonIters, newtonIters)
		opts.Metrics.Add(engine.SpiceStepRetries, retries)
		opts.Metrics.Add(engine.SpiceStepHalvings, halvings)
		opts.Metrics.Add(engine.SpiceGminSteps, sc.gminSteps)
		opts.Metrics.Add(engine.SpiceRecovered, recovered)
		opts.Metrics.Add(engine.SpiceUnrecovered, unrecovered)
		opts.Metrics.Add(engine.FaultsInjected, sc.injected)
	}()

	// DC operating point at t = 0 (capacitors open, currents zero).
	iters, err := c.solvePoint(sc, volt, branch, voltPrev, capCur, 0, 0, 0, 0)
	newtonIters += int64(iters)
	if err != nil {
		if !IsRecoverable(err) || maxHalvings == 0 {
			return nil, fmt.Errorf("spice: DC operating point: %w", err)
		}
		// Recovery: gmin stepping. Start from a heavily damped system and
		// relax the extra conductance decade by decade, warm-starting each
		// continuation solve from the previous solution.
		retries++
		gIters, gerr := c.solveDCGmin(sc, volt, branch, voltPrev, capCur)
		newtonIters += gIters
		if gerr != nil {
			unrecovered++
			return nil, fmt.Errorf("spice: DC operating point (gmin stepping failed too): %w", gerr)
		}
		recovered++
	}
	for i, w := range recWaves {
		w.Append(0, volt[recIdx[i]])
	}

	steps := int(math.Ceil(opts.TStop / h))
	for step := 1; step <= steps; step++ {
		t := float64(step) * h
		copy(voltPrev, volt)
		iters, err := c.solvePoint(sc, volt, branch, voltPrev, capCur, t, h, step, 0)
		newtonIters += int64(iters)
		switch {
		case err == nil:
			if opts.Method == Trapezoidal {
				c.updateCapCur(volt, voltPrev, capCur, h)
			}
		case !IsRecoverable(err) || maxHalvings == 0:
			return nil, fmt.Errorf("spice: t=%.4gs: %w", t, err)
		default:
			// Recovery: retry the step with the integration step
			// repeatedly halved, sub-stepping across the same interval.
			retries++
			rIters, used, rerr := c.recoverStep(sc, volt, branch, voltPrev, capCur, t-h, h, step, maxHalvings)
			newtonIters += rIters
			halvings += int64(used)
			if rerr != nil {
				unrecovered++
				return nil, fmt.Errorf("spice: t=%.4gs (after %d step-halving levels): %w", t, used, rerr)
			}
			recovered++
		}
		stepsDone++
		for i, w := range recWaves {
			w.Append(t, volt[recIdx[i]])
		}
	}
	return res, nil
}

// updateCapCur advances the stored trapezoidal capacitor currents after an
// accepted step of size h: i_{n+1} = (2C/h)(v_{n+1} − v_n) − i_n.
func (c *Circuit) updateCapCur(volt, voltPrev, capCur []float64, h float64) {
	for i := range c.caps {
		cp := &c.caps[i]
		dv := (volt[cp.a] - volt[cp.b]) - (voltPrev[cp.a] - voltPrev[cp.b])
		capCur[i] = (2*cp.c/h)*dv - capCur[i]
	}
}

// recoverStep rescues a non-convergent time point by sub-stepping: attempt k
// restarts from the last converged state and integrates the interval
// [tPrev, tPrev+h] in 2^k sub-steps of h/2^k. It returns the Newton
// iterations spent, the deepest halving level attempted, and nil on success
// (volt/branch/capCur then hold the state at tPrev+h).
func (c *Circuit) recoverStep(sc *solveCtx, volt, branch, voltPrev, capCur []float64, tPrev, h float64, step, maxHalvings int) (iters int64, level int, err error) {
	// voltPrev still holds the last converged voltages (the failed solve
	// mutated only volt), and capCur was last updated at tPrev.
	base := append([]float64(nil), voltPrev...)
	capBase := append([]float64(nil), capCur...)
	for k := 1; k <= maxHalvings; k++ {
		level = k
		nsub := 1 << uint(k)
		hs := h / float64(nsub)
		copy(volt, base)
		copy(capCur, capBase)
		ok := true
		for j := 1; j <= nsub; j++ {
			tj := tPrev + hs*float64(j)
			copy(voltPrev, volt)
			it, serr := c.solvePoint(sc, volt, branch, voltPrev, capCur, tj, hs, step, k)
			iters += int64(it)
			if serr != nil {
				if !IsRecoverable(serr) {
					return iters, k, serr
				}
				ok = false
				err = serr
				break
			}
			if sc.method == Trapezoidal {
				c.updateCapCur(volt, voltPrev, capCur, hs)
			}
		}
		if ok {
			return iters, k, nil
		}
	}
	// Leave the last converged state in place for the caller's diagnostics.
	copy(volt, base)
	copy(capCur, capBase)
	return iters, maxHalvings, err
}

// dcGminStart is the initial extra node-to-ground conductance of the gmin
// stepping ladder; it is relaxed one decade per continuation solve down to
// the nominal gmin.
const dcGminStart = 1e-3

// solveDCGmin rescues a non-convergent DC operating point by gmin stepping.
func (c *Circuit) solveDCGmin(sc *solveCtx, volt, branch, voltPrev, capCur []float64) (iters int64, err error) {
	// Restart from a clean state: the failed attempt may have left volt
	// poisoned (NaN) or far outside the basin of attraction.
	for i := range volt {
		volt[i] = 0
	}
	for i := range branch {
		branch[i] = 0
	}
	attempt := 0
	for g := dcGminStart; ; g /= 10 {
		if g < gmin {
			g = gmin
		}
		attempt++
		sc.gmin = g
		sc.gminSteps++
		it, serr := c.solvePoint(sc, volt, branch, voltPrev, capCur, 0, 0, 0, attempt)
		iters += int64(it)
		if serr != nil {
			sc.gmin = gmin
			return iters, serr
		}
		if g == gmin {
			sc.gmin = gmin
			return iters, nil
		}
	}
}

// solveCtx bundles the per-analysis solver configuration threaded through
// every time-point solve.
type solveCtx struct {
	s         *solver
	maxNewton int
	vtol      float64
	method    Method
	ctx       context.Context
	hook      FaultHook
	// gmin is the node-to-ground conductance stamped on every non-ground
	// node; the DC gmin-stepping ladder temporarily raises it.
	gmin float64
	// gminSteps and injected batch metrics locals for the deferred flush.
	gminSteps int64
	injected  int64
}

// unknownName names MNA unknown i (0-based solver row): a node voltage for
// the first nn-1 rows, a voltage-source branch current afterwards.
func (c *Circuit) unknownName(i int) string {
	if i < len(c.nodeNames)-1 {
		return c.nodeNames[i+1]
	}
	return fmt.Sprintf("vsource#%d", i-(len(c.nodeNames)-1))
}

// solvePoint performs Newton-Raphson iteration for one time point,
// returning the number of iterations spent. h == 0 means DC (capacitors
// are ignored). volt is used as the initial guess and receives the
// solution; voltPrev holds the previous time point's voltages (and capCur
// the previous capacitor currents) for the companion models. step and
// attempt identify the point for diagnostics and fault injection.
func (c *Circuit) solvePoint(sc *solveCtx, volt, branch, voltPrev, capCur []float64, t, h float64, step, attempt int) (int, error) {
	fault := FaultNone
	if sc.hook != nil {
		fault = sc.hook(step, t, attempt)
	}
	if fault != FaultNone {
		sc.injected++
	}
	switch fault {
	case FaultPanic:
		panic(fmt.Sprintf("faultinject: forced panic at step %d (t=%.4gs)", step, t))
	case FaultNoConverge:
		return 0, &SolveError{Kind: ErrNoConvergence, Time: t, Step: step, Attempt: attempt, Injected: true}
	}

	s := sc.s
	maxNewton, vtol, method := sc.maxNewton, sc.vtol, sc.method
	nn := len(c.nodeNames)
	worst := 0
	residual := 0.0
	for iter := 0; iter < maxNewton; iter++ {
		// Observe cancellation inside the Newton loop: each iteration is a
		// dense LU solve, so even one large flattened circuit reacts to
		// cancellation within a single iteration, not a whole transient.
		if sc.ctx != nil {
			if cerr := sc.ctx.Err(); cerr != nil {
				return iter, Cancelled(cerr)
			}
		}
		s.reset()

		// gmin to ground on every non-ground node.
		for i := 1; i < nn; i++ {
			s.addG(i, i, sc.gmin)
		}

		for i := range c.ress {
			r := &c.ress[i]
			s.addG(r.a, r.a, r.g)
			s.addG(r.b, r.b, r.g)
			s.addG(r.a, r.b, -r.g)
			s.addG(r.b, r.a, -r.g)
		}

		if h > 0 {
			for i := range c.caps {
				cp := &c.caps[i]
				var geq, ieq float64
				if method == Trapezoidal {
					// i_{n+1} = geq*v_{n+1} - (geq*v_n + i_n)
					geq = 2 * cp.c / h
					ieq = geq*(voltPrev[cp.a]-voltPrev[cp.b]) + capCur[i]
				} else {
					geq = cp.c / h
					ieq = geq * (voltPrev[cp.a] - voltPrev[cp.b])
				}
				s.addG(cp.a, cp.a, geq)
				s.addG(cp.b, cp.b, geq)
				s.addG(cp.a, cp.b, -geq)
				s.addG(cp.b, cp.a, -geq)
				s.addI(cp.a, ieq)
				s.addI(cp.b, -ieq)
			}
		}

		for i := range c.mosfets {
			m := &c.mosfets[i]
			vgs := volt[m.g] - volt[m.s]
			vds := volt[m.d] - volt[m.s]
			ids, gm, gds := m.params.Ids(m.geom, vgs, vds)
			ieq := ids - gm*vgs - gds*vds
			// Current ids flows drain -> source.
			s.addG(m.d, m.d, gds)
			s.addG(m.d, m.s, -gds-gm)
			s.addG(m.d, m.g, gm)
			s.addG(m.s, m.d, -gds)
			s.addG(m.s, m.s, gds+gm)
			s.addG(m.s, m.g, -gm)
			s.addI(m.d, -ieq)
			s.addI(m.s, ieq)
		}

		for i := range c.vsrcs {
			v := &c.vsrcs[i]
			s.stampVSource(nn, i, v.p, v.m, v.wave(t))
		}

		x, err := s.solve()
		if err != nil {
			return iter + 1, &SolveError{
				Kind: ErrNumerical, Time: t, Step: step, Attempt: attempt,
				Iters: iter + 1, Cause: err,
			}
		}
		if fault == FaultNaN && iter == 0 && len(x) > 0 {
			// Poison the solve output instead of returning an error
			// directly, so the injection exercises the real guard below.
			x[0] = math.NaN()
		}
		// Guard the linear-solve output: a NaN/Inf entry must surface as a
		// typed numerical error naming the offending unknown — without the
		// guard a NaN poisons every later comparison and the loop either
		// "converges" on garbage or spins to the iteration cap.
		for i := range x {
			if math.IsNaN(x[i]) || math.IsInf(x[i], 0) {
				return iter + 1, &SolveError{
					Kind: ErrNumerical, Time: t, Step: step, Attempt: attempt,
					Iters: iter + 1, Node: c.unknownName(i), Injected: fault == FaultNaN,
				}
			}
		}

		// Extract the solution and check convergence with damping.
		maxDelta := 0.0
		for i := 1; i < nn; i++ {
			newV := x[i-1]
			d := newV - volt[i]
			if math.Abs(d) > maxDelta {
				maxDelta = math.Abs(d)
				worst = i
			}
			// Damp large Newton steps to aid convergence on the
			// steep square-law characteristics.
			const maxStep = 1.0
			if d > maxStep {
				newV = volt[i] + maxStep
			} else if d < -maxStep {
				newV = volt[i] - maxStep
			}
			volt[i] = newV
		}
		for i := 0; i < len(c.vsrcs); i++ {
			branch[i] = x[nn-1+i]
		}
		if maxDelta < vtol {
			return iter + 1, nil
		}
		residual = maxDelta
	}
	return maxNewton, &SolveError{
		Kind: ErrNoConvergence, Time: t, Step: step, Attempt: attempt,
		Iters: maxNewton, Node: c.nodeNames[worst], Residual: residual,
	}
}

// solver is a dense MNA matrix with node-index based stamping. Row/column k
// corresponds to node k+1 for k < nn-1 and to voltage-source branch
// k-(nn-1) afterwards. Stamps referencing ground (node 0) are dropped.
type solver struct {
	dim int
	a   []float64 // dim x dim, row-major
	b   []float64
	x   []float64
	piv []int
}

func newSolver(dim int) *solver {
	return &solver{
		dim: dim,
		a:   make([]float64, dim*dim),
		b:   make([]float64, dim),
		x:   make([]float64, dim),
		piv: make([]int, dim),
	}
}

func (s *solver) reset() {
	for i := range s.a {
		s.a[i] = 0
	}
	for i := range s.b {
		s.b[i] = 0
	}
}

// addG stamps a conductance entry between node rows/cols (1-based node
// indices; ground entries are dropped).
func (s *solver) addG(row, col int, g float64) {
	if row == 0 || col == 0 {
		return
	}
	s.a[(row-1)*s.dim+(col-1)] += g
}

// addI stamps a current source injection into a node's RHS entry.
func (s *solver) addI(row int, i float64) {
	if row == 0 {
		return
	}
	s.b[row-1] += i
}

// stampVSource stamps the MNA rows of voltage source k with value e between
// nodes p and m. nn is the total node count including ground.
func (s *solver) stampVSource(nn, k, p, m int, e float64) {
	br := (nn - 1) + k
	if p != 0 {
		s.a[(p-1)*s.dim+br] += 1
		s.a[br*s.dim+(p-1)] += 1
	}
	if m != 0 {
		s.a[(m-1)*s.dim+br] -= 1
		s.a[br*s.dim+(m-1)] -= 1
	}
	s.b[br] = e
}

// solve performs an in-place partial-pivot LU solve of the stamped system.
// The returned slice is reused between calls.
func (s *solver) solve() ([]float64, error) {
	n := s.dim
	a := s.a
	b := s.b

	for col := 0; col < n; col++ {
		// Pivot selection.
		pivRow := col
		pivVal := math.Abs(a[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r*n+col]); v > pivVal {
				pivVal = v
				pivRow = r
			}
		}
		if pivVal == 0 {
			return nil, fmt.Errorf("singular MNA matrix at column %d", col)
		}
		if pivRow != col {
			for k := col; k < n; k++ {
				a[col*n+k], a[pivRow*n+k] = a[pivRow*n+k], a[col*n+k]
			}
			b[col], b[pivRow] = b[pivRow], b[col]
		}
		inv := 1 / a[col*n+col]
		for r := col + 1; r < n; r++ {
			f := a[r*n+col] * inv
			if f == 0 {
				continue
			}
			a[r*n+col] = 0
			for k := col + 1; k < n; k++ {
				a[r*n+k] -= f * a[col*n+k]
			}
			b[r] -= f * b[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for k := r + 1; k < n; k++ {
			sum -= a[r*n+k] * s.x[k]
		}
		s.x[r] = sum / a[r*n+r]
	}
	return s.x, nil
}
