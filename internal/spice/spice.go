// Package spice implements a small transistor-level transient circuit
// simulator — the reproduction's stand-in for HSPICE.
//
// It performs modified nodal analysis (MNA) with Newton-Raphson iteration at
// every time point and backward-Euler integration of capacitor currents.
// Supported elements are resistors, two-terminal capacitors, independent
// (time-varying) voltage sources, and square-law MOSFETs from package device.
//
// The simulator is sized for cell characterisation: circuits of a few dozen
// nodes, simulated for a few nanoseconds at picosecond resolution. Matrices
// are dense and solved by partial-pivot LU decomposition.
package spice

import (
	"context"
	"fmt"
	"math"

	"sstiming/internal/device"
	"sstiming/internal/engine"
	"sstiming/internal/waveform"
)

// Ground is the name of the reference node. It is always node index 0.
const Ground = "0"

// gmin is a small conductance from every node to ground that keeps the
// Jacobian non-singular when devices are cut off.
const gmin = 1e-12

// Circuit is a netlist under construction. Add elements, then call Transient.
type Circuit struct {
	nodeIndex map[string]int
	nodeNames []string

	mosfets []mosfet
	caps    []capacitor
	ress    []resistor
	vsrcs   []vsource
}

type mosfet struct {
	d, g, s int
	params  *device.MOSParams
	geom    device.Geometry
}

type capacitor struct {
	a, b int
	c    float64
}

type resistor struct {
	a, b int
	g    float64
}

// WaveFunc gives the value of an independent voltage source at time t.
type WaveFunc func(t float64) float64

type vsource struct {
	p, m int
	wave WaveFunc
}

// NewCircuit returns an empty circuit containing only the ground node.
func NewCircuit() *Circuit {
	c := &Circuit{nodeIndex: make(map[string]int)}
	c.nodeIndex[Ground] = 0
	c.nodeNames = append(c.nodeNames, Ground)
	return c
}

// Node returns the index of the named node, creating it if necessary.
// "0" and "gnd" both refer to ground.
func (c *Circuit) Node(name string) int {
	if name == "gnd" || name == "GND" {
		name = Ground
	}
	if idx, ok := c.nodeIndex[name]; ok {
		return idx
	}
	idx := len(c.nodeNames)
	c.nodeIndex[name] = idx
	c.nodeNames = append(c.nodeNames, name)
	return idx
}

// NumNodes returns the number of nodes including ground.
func (c *Circuit) NumNodes() int { return len(c.nodeNames) }

// AddMOSFET adds a MOSFET with the given drain, gate and source node indices.
// The bulk terminal is implicit (tied to the appropriate rail; body effect is
// not modelled).
func (c *Circuit) AddMOSFET(d, g, s int, params *device.MOSParams, geom device.Geometry) {
	c.mosfets = append(c.mosfets, mosfet{d: d, g: g, s: s, params: params, geom: geom})
}

// AddCap adds a linear capacitor of value farads between nodes a and b.
func (c *Circuit) AddCap(a, b int, farads float64) {
	if farads <= 0 {
		return
	}
	c.caps = append(c.caps, capacitor{a: a, b: b, c: farads})
}

// AddRes adds a linear resistor of value ohms between nodes a and b.
func (c *Circuit) AddRes(a, b int, ohms float64) {
	c.ress = append(c.ress, resistor{a: a, b: b, g: 1 / ohms})
}

// AddVSource adds an independent voltage source from node p (positive) to
// node m whose value is wave(t).
func (c *Circuit) AddVSource(p, m int, wave WaveFunc) {
	c.vsrcs = append(c.vsrcs, vsource{p: p, m: m, wave: wave})
}

// AddDC adds a constant voltage source of the given value from p to ground.
func (c *Circuit) AddDC(p int, volts float64) {
	c.AddVSource(p, 0, func(float64) float64 { return volts })
}

// Method selects the numerical integration scheme for capacitor currents.
type Method int

const (
	// BackwardEuler is the first-order implicit scheme: unconditionally
	// stable and non-ringing, the default.
	BackwardEuler Method = iota
	// Trapezoidal is the second-order implicit scheme: more accurate at
	// a given step size, at the cost of possible ringing on stiff
	// discontinuities.
	Trapezoidal
)

// String names the method.
func (m Method) String() string {
	if m == Trapezoidal {
		return "trapezoidal"
	}
	return "backward-euler"
}

// TransientOpts controls a transient analysis.
type TransientOpts struct {
	// TStop is the simulation end time in seconds.
	TStop float64
	// TStep is the fixed integration step in seconds. Zero selects 1 ps.
	TStep float64
	// MaxNewton bounds Newton iterations per time point. Zero selects 60.
	MaxNewton int
	// VTol is the Newton convergence tolerance in volts. Zero selects 1 uV.
	VTol float64
	// Method selects the integration scheme (default BackwardEuler).
	Method Method
	// Record lists node names to record. Nil records every node.
	Record []string
	// Ctx, when non-nil, cancels the analysis between time steps (the
	// characterisation harness threads its fan-out context through here).
	Ctx context.Context
	// Metrics, when non-nil, receives the simulation effort counters
	// (transients, time steps, Newton iterations).
	Metrics *engine.Metrics
}

// Result holds the recorded waveforms of a transient analysis.
type Result struct {
	byName map[string]*waveform.Waveform
}

// Wave returns the waveform recorded for the named node, or nil if the node
// was not recorded.
func (r *Result) Wave(name string) *waveform.Waveform { return r.byName[name] }

// Transient runs a transient analysis and returns the recorded waveforms.
// The initial state is the DC operating point with all sources at their
// t = 0 values.
func (c *Circuit) Transient(opts TransientOpts) (*Result, error) {
	if opts.TStop <= 0 {
		return nil, fmt.Errorf("spice: TStop must be positive, got %g", opts.TStop)
	}
	h := opts.TStep
	if h <= 0 {
		h = 1e-12
	}
	maxNewton := opts.MaxNewton
	if maxNewton <= 0 {
		maxNewton = 60
	}
	vtol := opts.VTol
	if vtol <= 0 {
		vtol = 1e-6
	}

	nn := len(c.nodeNames) // includes ground
	nv := len(c.vsrcs)
	dim := (nn - 1) + nv // unknowns: node voltages 1..nn-1, then branch currents

	s := newSolver(dim)
	// x holds node voltages indexed by node (x[0] is ground, always 0)
	// followed by branch currents.
	volt := make([]float64, nn)
	voltPrev := make([]float64, nn)
	branch := make([]float64, nv)

	// Recording setup.
	record := opts.Record
	if record == nil {
		record = append([]string(nil), c.nodeNames...)
	}
	res := &Result{byName: make(map[string]*waveform.Waveform, len(record))}
	recIdx := make([]int, 0, len(record))
	recWaves := make([]*waveform.Waveform, 0, len(record))
	for _, name := range record {
		idx, ok := c.nodeIndex[name]
		if !ok {
			return nil, fmt.Errorf("spice: cannot record unknown node %q", name)
		}
		w := &waveform.Waveform{}
		res.byName[name] = w
		recIdx = append(recIdx, idx)
		recWaves = append(recWaves, w)
	}

	// Per-capacitor current state for the trapezoidal method.
	capCur := make([]float64, len(c.caps))

	// Effort accounting is batched into locals and flushed once per
	// analysis so the integration loop pays no atomic operations.
	var stepsDone, newtonIters int64
	defer func() {
		opts.Metrics.Add(engine.SpiceTransients, 1)
		opts.Metrics.Add(engine.SpiceTransSteps, stepsDone)
		opts.Metrics.Add(engine.SpiceNewtonIters, newtonIters)
	}()

	// DC operating point at t = 0 (capacitors open, currents zero).
	iters, err := c.solvePoint(s, volt, branch, voltPrev, capCur, 0, 0, maxNewton, vtol, opts.Method)
	newtonIters += int64(iters)
	if err != nil {
		return nil, fmt.Errorf("spice: DC operating point: %w", err)
	}
	for i, w := range recWaves {
		w.Append(0, volt[recIdx[i]])
	}

	steps := int(math.Ceil(opts.TStop / h))
	for step := 1; step <= steps; step++ {
		// Cancellation check, amortised so the common (uncancelled)
		// path costs one branch per chunk of steps.
		if opts.Ctx != nil && step&0x3f == 0 {
			if err := opts.Ctx.Err(); err != nil {
				return nil, fmt.Errorf("spice: transient cancelled: %w", err)
			}
		}
		t := float64(step) * h
		copy(voltPrev, volt)
		iters, err := c.solvePoint(s, volt, branch, voltPrev, capCur, t, h, maxNewton, vtol, opts.Method)
		newtonIters += int64(iters)
		if err != nil {
			return nil, fmt.Errorf("spice: t=%.4gs: %w", t, err)
		}
		stepsDone++
		if opts.Method == Trapezoidal {
			// Update stored capacitor currents:
			// i_{n+1} = (2C/h)(v_{n+1} - v_n) - i_n.
			for i := range c.caps {
				cp := &c.caps[i]
				dv := (volt[cp.a] - volt[cp.b]) - (voltPrev[cp.a] - voltPrev[cp.b])
				capCur[i] = (2*cp.c/h)*dv - capCur[i]
			}
		}
		for i, w := range recWaves {
			w.Append(t, volt[recIdx[i]])
		}
	}
	return res, nil
}

// solvePoint performs Newton-Raphson iteration for one time point,
// returning the number of iterations spent. h == 0 means DC (capacitors
// are ignored). volt is used as the initial guess and receives the
// solution; voltPrev holds the previous time point's voltages (and capCur
// the previous capacitor currents) for the companion models.
func (c *Circuit) solvePoint(s *solver, volt, branch, voltPrev, capCur []float64, t, h float64, maxNewton int, vtol float64, method Method) (int, error) {
	nn := len(c.nodeNames)
	for iter := 0; iter < maxNewton; iter++ {
		s.reset()

		// gmin to ground on every non-ground node.
		for i := 1; i < nn; i++ {
			s.addG(i, i, gmin)
		}

		for i := range c.ress {
			r := &c.ress[i]
			s.addG(r.a, r.a, r.g)
			s.addG(r.b, r.b, r.g)
			s.addG(r.a, r.b, -r.g)
			s.addG(r.b, r.a, -r.g)
		}

		if h > 0 {
			for i := range c.caps {
				cp := &c.caps[i]
				var geq, ieq float64
				if method == Trapezoidal {
					// i_{n+1} = geq*v_{n+1} - (geq*v_n + i_n)
					geq = 2 * cp.c / h
					ieq = geq*(voltPrev[cp.a]-voltPrev[cp.b]) + capCur[i]
				} else {
					geq = cp.c / h
					ieq = geq * (voltPrev[cp.a] - voltPrev[cp.b])
				}
				s.addG(cp.a, cp.a, geq)
				s.addG(cp.b, cp.b, geq)
				s.addG(cp.a, cp.b, -geq)
				s.addG(cp.b, cp.a, -geq)
				s.addI(cp.a, ieq)
				s.addI(cp.b, -ieq)
			}
		}

		for i := range c.mosfets {
			m := &c.mosfets[i]
			vgs := volt[m.g] - volt[m.s]
			vds := volt[m.d] - volt[m.s]
			ids, gm, gds := m.params.Ids(m.geom, vgs, vds)
			ieq := ids - gm*vgs - gds*vds
			// Current ids flows drain -> source.
			s.addG(m.d, m.d, gds)
			s.addG(m.d, m.s, -gds-gm)
			s.addG(m.d, m.g, gm)
			s.addG(m.s, m.d, -gds)
			s.addG(m.s, m.s, gds+gm)
			s.addG(m.s, m.g, -gm)
			s.addI(m.d, -ieq)
			s.addI(m.s, ieq)
		}

		for i := range c.vsrcs {
			v := &c.vsrcs[i]
			s.stampVSource(nn, i, v.p, v.m, v.wave(t))
		}

		x, err := s.solve()
		if err != nil {
			return iter + 1, err
		}

		// Extract the solution and check convergence with damping.
		maxDelta := 0.0
		for i := 1; i < nn; i++ {
			newV := x[i-1]
			d := newV - volt[i]
			if math.Abs(d) > maxDelta {
				maxDelta = math.Abs(d)
			}
			// Damp large Newton steps to aid convergence on the
			// steep square-law characteristics.
			const maxStep = 1.0
			if d > maxStep {
				newV = volt[i] + maxStep
			} else if d < -maxStep {
				newV = volt[i] - maxStep
			}
			volt[i] = newV
		}
		for i := 0; i < len(c.vsrcs); i++ {
			branch[i] = x[nn-1+i]
		}
		if maxDelta < vtol {
			return iter + 1, nil
		}
	}
	return maxNewton, fmt.Errorf("newton iteration did not converge in %d iterations", maxNewton)
}

// solver is a dense MNA matrix with node-index based stamping. Row/column k
// corresponds to node k+1 for k < nn-1 and to voltage-source branch
// k-(nn-1) afterwards. Stamps referencing ground (node 0) are dropped.
type solver struct {
	dim int
	a   []float64 // dim x dim, row-major
	b   []float64
	x   []float64
	piv []int
}

func newSolver(dim int) *solver {
	return &solver{
		dim: dim,
		a:   make([]float64, dim*dim),
		b:   make([]float64, dim),
		x:   make([]float64, dim),
		piv: make([]int, dim),
	}
}

func (s *solver) reset() {
	for i := range s.a {
		s.a[i] = 0
	}
	for i := range s.b {
		s.b[i] = 0
	}
}

// addG stamps a conductance entry between node rows/cols (1-based node
// indices; ground entries are dropped).
func (s *solver) addG(row, col int, g float64) {
	if row == 0 || col == 0 {
		return
	}
	s.a[(row-1)*s.dim+(col-1)] += g
}

// addI stamps a current source injection into a node's RHS entry.
func (s *solver) addI(row int, i float64) {
	if row == 0 {
		return
	}
	s.b[row-1] += i
}

// stampVSource stamps the MNA rows of voltage source k with value e between
// nodes p and m. nn is the total node count including ground.
func (s *solver) stampVSource(nn, k, p, m int, e float64) {
	br := (nn - 1) + k
	if p != 0 {
		s.a[(p-1)*s.dim+br] += 1
		s.a[br*s.dim+(p-1)] += 1
	}
	if m != 0 {
		s.a[(m-1)*s.dim+br] -= 1
		s.a[br*s.dim+(m-1)] -= 1
	}
	s.b[br] = e
}

// solve performs an in-place partial-pivot LU solve of the stamped system.
// The returned slice is reused between calls.
func (s *solver) solve() ([]float64, error) {
	n := s.dim
	a := s.a
	b := s.b

	for col := 0; col < n; col++ {
		// Pivot selection.
		pivRow := col
		pivVal := math.Abs(a[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r*n+col]); v > pivVal {
				pivVal = v
				pivRow = r
			}
		}
		if pivVal == 0 {
			return nil, fmt.Errorf("singular MNA matrix at column %d", col)
		}
		if pivRow != col {
			for k := col; k < n; k++ {
				a[col*n+k], a[pivRow*n+k] = a[pivRow*n+k], a[col*n+k]
			}
			b[col], b[pivRow] = b[pivRow], b[col]
		}
		inv := 1 / a[col*n+col]
		for r := col + 1; r < n; r++ {
			f := a[r*n+col] * inv
			if f == 0 {
				continue
			}
			a[r*n+col] = 0
			for k := col + 1; k < n; k++ {
				a[r*n+k] -= f * a[col*n+k]
			}
			b[r] -= f * b[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for k := r + 1; k < n; k++ {
			sum -= a[r*n+k] * s.x[k]
		}
		s.x[r] = sum / a[r*n+r]
	}
	return s.x, nil
}
