package spice

import "fmt"

// FaultKind enumerates the failures a FaultHook can force into a transient
// analysis for chaos testing. The injection points are chosen so each kind
// exercises a distinct real failure path: FaultNoConverge takes the
// non-convergence exit of the Newton loop, FaultNaN poisons the linear-solve
// output so the NaN/Inf guard must catch it, and FaultPanic crashes the
// worker so the engine pool's panic recovery must contain it.
type FaultKind int

const (
	// FaultNone injects nothing.
	FaultNone FaultKind = iota
	// FaultNoConverge forces the time point to report non-convergence.
	FaultNoConverge
	// FaultNaN poisons the linear-solve output with NaN, exercising the
	// numerical guard.
	FaultNaN
	// FaultPanic panics inside the solve, exercising pool panic recovery.
	FaultPanic
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultNoConverge:
		return "noconv"
	case FaultNaN:
		return "nan"
	case FaultPanic:
		return "panic"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// ParseFaultKind resolves a fault kind name (as printed by String).
func ParseFaultKind(s string) (FaultKind, error) {
	switch s {
	case "", "none":
		return FaultNone, nil
	case "noconv":
		return FaultNoConverge, nil
	case "nan":
		return FaultNaN, nil
	case "panic":
		return FaultPanic, nil
	default:
		return FaultNone, fmt.Errorf("spice: unknown fault kind %q (want none, noconv, nan or panic)", s)
	}
}

// FaultHook is consulted once per attempted time-point solve with the
// transient step index (0 = the DC operating point), the simulated time, and
// the recovery attempt number (0 = first try; step-halving retries and gmin
// continuation steps pass attempt >= 1). Returning a kind other than
// FaultNone forces that fault deterministically — see internal/faultinject
// for seeded plan constructors.
//
// A hook instance serves exactly one transient analysis; stateful plans hand
// out a fresh hook per transient.
type FaultHook func(step int, t float64, attempt int) FaultKind
