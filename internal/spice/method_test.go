package spice

import (
	"math"
	"testing"
)

// rcError runs a 1k/1pF RC driven by a ramp (0 to 1 V over [1 ns, 2 ns],
// whose breakpoints land exactly on the step grid so the input is
// piecewise-linear within every step) and returns the max absolute error
// against the analytic solution over t ∈ [1.05 ns, 5 ns]. With a smooth,
// exactly-resolved input the integrator's own order dominates the error.
func rcError(t *testing.T, method Method, h float64) float64 {
	t.Helper()
	const (
		tau = 1e-9 // R*C
		t0  = 1e-9 // ramp start
		tr  = 1e-9 // ramp duration
	)
	c := NewCircuit()
	vin := c.Node("vin")
	out := c.Node("out")
	c.AddVSource(vin, 0, func(tt float64) float64 {
		switch {
		case tt <= t0:
			return 0
		case tt >= t0+tr:
			return 1
		default:
			return (tt - t0) / tr
		}
	})
	c.AddRes(vin, out, 1000)
	c.AddCap(out, 0, 1e-12)
	res, err := c.Transient(TransientOpts{TStop: 5e-9, TStep: h, Method: method})
	if err != nil {
		t.Fatal(err)
	}
	w := res.Wave("out")

	// Analytic RC response to the ramp.
	analytic := func(tt float64) float64 {
		switch {
		case tt <= t0:
			return 0
		case tt <= t0+tr:
			x := tt - t0
			return (x - tau + tau*math.Exp(-x/tau)) / tr
		default:
			vEnd := (tr - tau + tau*math.Exp(-tr/tau)) / tr
			return 1 + (vEnd-1)*math.Exp(-(tt-t0-tr)/tau)
		}
	}

	var worst float64
	for tt := 1.05e-9; tt <= 5e-9; tt += 0.05e-9 {
		if e := math.Abs(w.At(tt) - analytic(tt)); e > worst {
			worst = e
		}
	}
	return worst
}

func TestTrapezoidalMoreAccurateThanBE(t *testing.T) {
	const h = 20e-12
	be := rcError(t, BackwardEuler, h)
	tr := rcError(t, Trapezoidal, h)
	if tr >= be {
		t.Errorf("trapezoidal error %g not below backward-Euler %g at h=%g", tr, be, h)
	}
	// Second order vs first order: expect a substantial gap.
	if tr > be/3 {
		t.Errorf("trapezoidal advantage too small: %g vs %g", tr, be)
	}
}

func TestConvergenceOrders(t *testing.T) {
	// Halving the step should quarter the trapezoidal error (2nd order)
	// but only halve the backward-Euler error (1st order).
	beCoarse := rcError(t, BackwardEuler, 40e-12)
	beFine := rcError(t, BackwardEuler, 20e-12)
	trCoarse := rcError(t, Trapezoidal, 40e-12)
	trFine := rcError(t, Trapezoidal, 20e-12)

	beRatio := beCoarse / beFine
	trRatio := trCoarse / trFine
	if beRatio < 1.6 || beRatio > 2.6 {
		t.Errorf("backward-Euler convergence ratio %.2f, want ~2 (1st order)", beRatio)
	}
	if trRatio < 3.0 {
		t.Errorf("trapezoidal convergence ratio %.2f, want ~4 (2nd order)", trRatio)
	}
}

func TestMethodsAgreeAtFineStep(t *testing.T) {
	// A nonlinear circuit: both methods must converge to the same
	// waveform as h -> 0. Compare NAND-style inverter delays at 0.5 ps.
	delay := func(method Method) float64 {
		c := NewCircuit()
		// Simple RC low-pass of a ramp: delay = time shift at 50%.
		vin := c.Node("vin")
		out := c.Node("out")
		c.AddVSource(vin, 0, func(tt float64) float64 {
			switch {
			case tt < 0.5e-9:
				return 0
			case tt > 0.7e-9:
				return 1
			default:
				return (tt - 0.5e-9) / 0.2e-9
			}
		})
		c.AddRes(vin, out, 2000)
		c.AddCap(out, 0, 0.5e-12)
		res, err := c.Transient(TransientOpts{TStop: 5e-9, TStep: 0.5e-12, Method: method})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := res.Wave("out").MeasureTransition(1.0, true)
		if err != nil {
			t.Fatal(err)
		}
		return tr.Arrival
	}
	be := delay(BackwardEuler)
	tr := delay(Trapezoidal)
	if math.Abs(be-tr) > 2e-12 {
		t.Errorf("methods disagree at fine step: BE %g vs trap %g", be, tr)
	}
}

func TestMethodString(t *testing.T) {
	if BackwardEuler.String() != "backward-euler" || Trapezoidal.String() != "trapezoidal" {
		t.Error("method names wrong")
	}
}
