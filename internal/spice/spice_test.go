package spice

import (
	"math"
	"testing"

	"sstiming/internal/device"
	"sstiming/internal/waveform"
)

func TestResistorDividerDC(t *testing.T) {
	c := NewCircuit()
	vin := c.Node("vin")
	mid := c.Node("mid")
	c.AddDC(vin, 2.0)
	c.AddRes(vin, mid, 1000)
	c.AddRes(mid, 0, 1000)

	res, err := c.Transient(TransientOpts{TStop: 1e-9, TStep: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Wave("mid").Final()
	if math.Abs(got-1.0) > 1e-6 {
		t.Errorf("divider mid = %g, want 1.0", got)
	}
}

func TestRCStepResponse(t *testing.T) {
	// R = 1k, C = 1pF: tau = 1ns. Drive a step and check v(tau) ~ 63.2%.
	c := NewCircuit()
	vin := c.Node("vin")
	out := c.Node("out")
	c.AddVSource(vin, 0, func(tt float64) float64 {
		if tt <= 0 {
			return 0
		}
		return 1.0
	})
	c.AddRes(vin, out, 1000)
	c.AddCap(out, 0, 1e-12)

	res, err := c.Transient(TransientOpts{TStop: 10e-9, TStep: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	w := res.Wave("out")
	vTau := w.At(1e-9)
	want := 1 - math.Exp(-1)
	if math.Abs(vTau-want) > 0.02 {
		t.Errorf("v(tau) = %g, want ~%g", vTau, want)
	}
	if f := w.Final(); math.Abs(f-1.0) > 1e-3 {
		t.Errorf("final = %g, want ~1.0", f)
	}
}

func TestNMOSDCCharacteristic(t *testing.T) {
	tech := device.Default05um()
	g := tech.MinGeom(device.NMOS)
	p := &tech.NMOS

	// Cutoff.
	ids, _, _ := p.Ids(g, 0.3, 1.0)
	if math.Abs(ids) > 1e-9 {
		t.Errorf("cutoff current = %g, want ~0", ids)
	}
	// Saturation: Ids grows quadratically with overdrive.
	i1, _, _ := p.Ids(g, p.VT0+0.5, 3.3)
	i2, _, _ := p.Ids(g, p.VT0+1.0, 3.3)
	ratio := i2 / i1
	if ratio < 3.5 || ratio > 4.6 {
		t.Errorf("saturation current ratio = %g, want ~4 (square law)", ratio)
	}
	// Triode: current increases with Vds below saturation.
	ia, _, _ := p.Ids(g, p.VT0+1.0, 0.2)
	ib, _, _ := p.Ids(g, p.VT0+1.0, 0.5)
	if ib <= ia {
		t.Errorf("triode current not increasing: %g then %g", ia, ib)
	}
}

func TestMOSSymmetryUnderSwap(t *testing.T) {
	// The device is symmetric: I(vg, vd, vs) = -I with drain/source
	// exchanged. Check the model honours this.
	tech := device.Default05um()
	g := tech.MinGeom(device.NMOS)
	p := &tech.NMOS

	// Original: vg=2, vd=1, vs=0 -> vgs=2, vds=1.
	iFwd, _, _ := p.Ids(g, 2.0, 1.0)
	// Swapped terminals: vg=2, vd=0, vs=1 -> vgs=1, vds=-1.
	iRev, _, _ := p.Ids(g, 1.0, -1.0)
	if math.Abs(iFwd+iRev) > 1e-9*math.Abs(iFwd) {
		t.Errorf("swap symmetry violated: %g vs %g", iFwd, iRev)
	}
}

func TestPMOSDerivativesMatchFiniteDifference(t *testing.T) {
	tech := device.Default05um()
	for _, typ := range []device.MOSType{device.NMOS, device.PMOS} {
		p := tech.Params(typ)
		g := tech.MinGeom(typ)
		pts := []struct{ vgs, vds float64 }{
			{1.5, 2.0}, {1.5, 0.3}, {2.5, -1.0}, {0.2, 1.0},
			{-1.5, -2.0}, {-1.5, -0.3}, {-2.5, 1.0}, {-0.2, -1.0},
		}
		const h = 1e-7
		for _, pt := range pts {
			_, gm, gds := p.Ids(g, pt.vgs, pt.vds)
			ip, _, _ := p.Ids(g, pt.vgs+h, pt.vds)
			im, _, _ := p.Ids(g, pt.vgs-h, pt.vds)
			gmFD := (ip - im) / (2 * h)
			ip, _, _ = p.Ids(g, pt.vgs, pt.vds+h)
			im, _, _ = p.Ids(g, pt.vgs, pt.vds-h)
			gdsFD := (ip - im) / (2 * h)
			scale := math.Max(1e-6, math.Abs(gmFD))
			if math.Abs(gm-gmFD) > 1e-3*scale {
				t.Errorf("%v vgs=%g vds=%g: gm=%g fd=%g", typ, pt.vgs, pt.vds, gm, gmFD)
			}
			scale = math.Max(1e-6, math.Abs(gdsFD))
			if math.Abs(gds-gdsFD) > 1e-3*scale {
				t.Errorf("%v vgs=%g vds=%g: gds=%g fd=%g", typ, pt.vgs, pt.vds, gds, gdsFD)
			}
		}
	}
}

func TestInverterTransfersAndDelay(t *testing.T) {
	tech := device.Default05um()
	c := NewCircuit()
	vdd := c.Node("vdd")
	in := c.Node("in")
	out := c.Node("out")
	c.AddDC(vdd, tech.Vdd)
	c.AddVSource(in, 0, waveform.Ramp(0, tech.Vdd, 1e-9, 0.2e-9))
	c.AddMOSFET(out, in, vdd, &tech.PMOS, tech.MinGeom(device.PMOS))
	c.AddMOSFET(out, in, 0, &tech.NMOS, tech.MinGeom(device.NMOS))
	c.AddCap(out, 0, 10e-15)

	res, err := c.Transient(TransientOpts{TStop: 4e-9, TStep: 2e-12, Record: []string{"out"}})
	if err != nil {
		t.Fatal(err)
	}
	w := res.Wave("out")
	if v0 := w.At(0); math.Abs(v0-tech.Vdd) > 0.05 {
		t.Errorf("initial output = %g, want ~Vdd", v0)
	}
	tr, err := w.MeasureTransition(tech.Vdd, false)
	if err != nil {
		t.Fatal(err)
	}
	delay := tr.Arrival - 1e-9
	// Sanity: a min-size inverter driving 10 fF in 0.5 um should fall
	// within tens to hundreds of picoseconds.
	if delay < 10e-12 || delay > 1e-9 {
		t.Errorf("inverter fall delay = %g s, outside sane range", delay)
	}
	if f := w.Final(); f > 0.05 {
		t.Errorf("final output = %g, want ~0", f)
	}
}

func TestRecordUnknownNode(t *testing.T) {
	c := NewCircuit()
	n := c.Node("a")
	c.AddDC(n, 1)
	if _, err := c.Transient(TransientOpts{TStop: 1e-10, Record: []string{"nope"}}); err == nil {
		t.Error("expected error recording unknown node")
	}
}

func TestTransientRejectsBadTStop(t *testing.T) {
	c := NewCircuit()
	if _, err := c.Transient(TransientOpts{TStop: 0}); err == nil {
		t.Error("expected error for TStop = 0")
	}
}
