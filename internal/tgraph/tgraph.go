// Package tgraph is the persistent timing graph behind the incremental
// delta-STA engine: a levelized circuit with per-line timing windows that
// stay alive across calls, plus an edit API whose cost is proportional to
// the edited cone instead of the whole circuit.
//
// A Graph is built once (full window convergence, optionally level-parallel
// on the engine pool) and then mutated through small edits:
//
//   - SetCube / SetImpliedCube assign or relax the nine-valued state of
//     lines (the ITR workload: one implication step per ATPG decision);
//   - SetPI changes the stimulus of one primary input;
//   - SwapGate exchanges a gate's cell for its same-arity dual
//     (NAND↔NOR, INV↔BUF — the ECO workload).
//
// Every edit marks only the affected lines' output cones dirty and
// re-converges windows level by level from the dirty frontier, stopping as
// soon as no dirty gate remains — a gate is re-queued only when one of its
// inputs (or its own implied output value) actually changed, so convergence
// naturally stops at the level where windows stop moving.
//
// The load-bearing invariant (asserted by conformance check "incremental")
// is byte-identical equivalence: after any edit sequence, every line's
// LineInfo equals — bit for bit — what a from-scratch sta.Analyze/itr.Refine
// of the current state computes. It holds because per-gate windows are a
// pure function of the gate's inputs and implied output value
// (twindow.PropagateGate), evaluated by exactly the same code on both paths,
// and dirty propagation re-evaluates a gate whenever any of those arguments
// changed (induction over logic levels).
//
// Failure atomicity: an edit that fails (inconsistent cube, cancelled
// context, injected fault mid-convergence) rolls its state edits back and
// poisons the graph; the next operation — queries included, via Heal —
// re-converges everything from the retained pre-edit state, so a crashed
// delta can never leave partially-propagated windows observable.
package tgraph

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"sstiming/internal/core"
	"sstiming/internal/engine"
	"sstiming/internal/netlist"
	"sstiming/internal/nineval"
	"sstiming/internal/spice"
	"sstiming/internal/twindow"
)

// ErrInconsistent reports a cube edit that is logically inconsistent with
// the circuit; the graph is left unchanged.
var ErrInconsistent = errors.New("tgraph: cube is logically inconsistent")

// Options configures a Graph.
type Options struct {
	// Lib is the characterised cell library (required).
	Lib *core.Library
	// Mode selects the delay model.
	Mode twindow.Mode
	// PI is the stimulus applied to every primary input; the zero value
	// selects twindow.DefaultPITiming. SetPI overrides per input later.
	PI twindow.PITiming
	// PerPI optionally overrides the stimulus for specific inputs.
	PerPI map[string]twindow.PITiming
	// NCExtension enables the Λ-shape to-non-controlling extension.
	NCExtension bool
	// Ctx, when non-nil, cancels the initial full convergence between
	// logic levels; a cancelled build returns an error wrapping
	// spice.ErrCancelled and no graph.
	Ctx context.Context
	// Jobs bounds the engine worker pool used for the initial full
	// convergence (one logic level fans out at a time); zero or one runs
	// serially. Windows are independent of the worker count. Incremental
	// re-convergence is always serial: edited cones are small by design.
	Jobs int
	// Metrics, when non-nil, counts propagated gates, arcs and edits.
	Metrics *engine.Metrics
	// LevelHook, when non-nil, runs before each level of every
	// convergence pass; a non-nil error aborts the pass (fault injection
	// for chaos tests — see internal/faultinject).
	LevelHook func(level int) error
}

// Graph is a persistent timing graph. It is not safe for concurrent use;
// callers serialize access (the service layer holds a per-session lock, and
// each ATPG fault worker owns a private Graph).
type Graph struct {
	c    *netlist.Circuit
	opts Options

	cells     []*core.CellModel // per gate
	extraLoad []float64         // per gate
	levels    [][]int           // gate indices per logic level
	gateLevel []int

	raw     nineval.Cube // caller-supplied assignments
	implied nineval.Cube // implication fixpoint of raw
	perPI   map[string]twindow.PITiming

	lines map[string]*twindow.LineInfo

	dirty      []bool  // per gate
	dirtyAt    [][]int // per level
	dirtyCount int

	// poisoned marks a graph whose last edit failed mid-convergence:
	// window state may be partially propagated. Heal (run automatically
	// by the next edit) re-converges everything from the retained cube.
	poisoned bool

	// changed accumulates the nets whose LineInfo changed during the last
	// successful edit.
	changed map[string]bool
}

// New builds a Graph over the circuit and fully converges its windows under
// the empty cube (every line unspecified — pure STA).
func New(c *netlist.Circuit, opts Options) (*Graph, error) {
	return NewWithCube(c, nineval.Cube{}, opts)
}

// newSkeleton builds the structural half of a Graph — levelization, cell
// binding, fan-out loads — with no cube and no timing state. NewWithCube
// seeds and converges it; RestoreSnapshot installs checkpointed lines
// verbatim instead.
func newSkeleton(c *netlist.Circuit, opts Options) (*Graph, error) {
	if opts.Lib == nil {
		return nil, fmt.Errorf("tgraph: Options.Lib is required")
	}
	if err := c.EnsureBuilt(); err != nil {
		return nil, fmt.Errorf("tgraph: %w", err)
	}
	if opts.PI == (twindow.PITiming{}) {
		opts.PI = twindow.DefaultPITiming()
	}
	g := &Graph{
		c:         c,
		opts:      opts,
		cells:     make([]*core.CellModel, len(c.Gates)),
		extraLoad: make([]float64, len(c.Gates)),
		gateLevel: make([]int, len(c.Gates)),
		perPI:     make(map[string]twindow.PITiming, len(opts.PerPI)),
		lines:     make(map[string]*twindow.LineInfo, len(c.Gates)+len(c.PIs)),
		dirty:     make([]bool, len(c.Gates)),
		changed:   make(map[string]bool),
	}
	for name, p := range opts.PerPI {
		g.perPI[name] = p
	}
	for _, gi := range c.TopoOrder() {
		lvl := c.Level(gi)
		g.gateLevel[gi] = lvl
		for len(g.levels) <= lvl {
			g.levels = append(g.levels, nil)
		}
		g.levels[lvl] = append(g.levels[lvl], gi)
	}
	g.dirtyAt = make([][]int, len(g.levels))
	for i := range c.Gates {
		gate := &c.Gates[i]
		cell, ok := opts.Lib.Cell(gate.CellName())
		if !ok {
			return nil, fmt.Errorf("tgraph: no library cell %q for gate %q", gate.CellName(), gate.Output)
		}
		g.cells[i] = cell
		g.extraLoad[i] = float64(c.FanoutCount(gate.Output)-1) * cell.RefLoad
	}
	return g, nil
}

// NewWithCube builds a Graph and fully converges its windows under the
// given cube (one implication + one full window pass — the cost of a single
// from-scratch itr.Refine).
func NewWithCube(c *netlist.Circuit, cube nineval.Cube, opts Options) (*Graph, error) {
	g, err := newSkeleton(c, opts)
	if err != nil {
		return nil, err
	}
	opts = g.opts

	implied, ok := nineval.Imply(c, cube)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrInconsistent, cube.String())
	}
	g.raw = cube.Clone()
	g.implied = implied

	// Seed the PI lines and mark every gate dirty for the initial full
	// convergence.
	for _, pi := range c.PIs {
		li := twindow.PILine(g.implied.Get(pi), g.piTiming(pi))
		g.lines[pi] = &li
	}
	for _, lvlGates := range g.levels {
		for _, gi := range lvlGates {
			g.markDirty(gi)
		}
	}
	if err := g.converge(opts.Ctx, opts.Jobs); err != nil {
		return nil, err
	}
	g.changed = make(map[string]bool)
	return g, nil
}

// Circuit returns the underlying circuit. SwapGate mutates it; callers
// sharing one circuit across graphs must not use SwapGate.
func (g *Graph) Circuit() *netlist.Circuit { return g.c }

// Mode returns the delay model of the graph.
func (g *Graph) Mode() twindow.Mode { return g.opts.Mode }

// Lib returns the cell library the graph was built against.
func (g *Graph) Lib() *core.Library { return g.opts.Lib }

// piTiming returns the effective stimulus of one primary input.
func (g *Graph) piTiming(name string) twindow.PITiming {
	if p, ok := g.perPI[name]; ok {
		return p
	}
	return g.opts.PI
}

// markDirty queues a gate for re-convergence.
func (g *Graph) markDirty(gi int) {
	if g.dirty[gi] {
		return
	}
	g.dirty[gi] = true
	lvl := g.gateLevel[gi]
	g.dirtyAt[lvl] = append(g.dirtyAt[lvl], gi)
	g.dirtyCount++
}

// touchNet propagates a changed line: its consumers must re-evaluate.
func (g *Graph) touchNet(net string) {
	for _, gi := range g.c.Fanout(net) {
		g.markDirty(gi)
	}
}

// recomputeGate evaluates one gate's output LineInfo from current state.
func (g *Graph) recomputeGate(gi int) (twindow.LineInfo, error) {
	gate := &g.c.Gates[gi]
	ins := make([]*twindow.LineInfo, len(gate.Inputs))
	for i, in := range gate.Inputs {
		li, ok := g.lines[in]
		if !ok {
			return twindow.LineInfo{}, fmt.Errorf("tgraph: gate %q input %q has no timing (order bug)", gate.Output, in)
		}
		ins[i] = li
	}
	g.opts.Metrics.Add(engine.STAGates, 1)
	g.opts.Metrics.Add(engine.STAArcs, 2*int64(len(gate.Inputs)))
	out, err := twindow.PropagateGate(g.cells[gi], gate.Kind, ins, g.implied.Get(gate.Output),
		g.extraLoad[gi], g.opts.Mode, g.opts.NCExtension)
	if err != nil {
		return twindow.LineInfo{}, fmt.Errorf("tgraph: gate %q: %w", gate.Output, err)
	}
	return out, nil
}

// converge drains the dirty frontier level by level. Gates within one level
// are independent (they read only earlier levels), so the initial full pass
// may fan a level out on the engine pool; results are merged in slice order,
// making windows independent of the worker count. Convergence stops as soon
// as the frontier is empty: a gate is re-queued only when one of its inputs
// or its implied output value changed, so an edit whose effect dies out
// after k levels costs exactly those k frontier levels.
func (g *Graph) converge(ctx context.Context, jobs int) error {
	for lvl := 0; lvl < len(g.dirtyAt) && g.dirtyCount > 0; lvl++ {
		work := g.dirtyAt[lvl]
		if len(work) == 0 {
			continue
		}
		g.dirtyAt[lvl] = nil
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("tgraph: %w", spice.Cancelled(err))
			}
		}
		if g.opts.LevelHook != nil {
			if err := g.opts.LevelHook(lvl); err != nil {
				return fmt.Errorf("tgraph: level %d: %w", lvl, err)
			}
		}
		outs := make([]twindow.LineInfo, len(work))
		if engine.Workers(jobs) == 1 || len(work) == 1 {
			for i, gi := range work {
				var err error
				if outs[i], err = g.recomputeGate(gi); err != nil {
					return err
				}
			}
		} else {
			err := engine.Run(ctx, jobs, len(work), func(_ context.Context, i int) error {
				var err error
				outs[i], err = g.recomputeGate(work[i])
				return err
			})
			if err != nil {
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					return fmt.Errorf("tgraph: %w", spice.Cancelled(err))
				}
				return err
			}
		}
		for i, gi := range work {
			g.dirty[gi] = false
			g.dirtyCount--
			out := g.c.Gates[gi].Output
			old := g.lines[out]
			if old != nil && *old == outs[i] {
				continue // converged: the cone stops here
			}
			li := outs[i]
			g.lines[out] = &li
			g.changed[out] = true
			g.touchNet(out)
		}
	}
	// A deadline that fired after the last level still voids the pass:
	// callers must never observe windows computed past their cancellation.
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("tgraph: %w", spice.Cancelled(err))
		}
	}
	return nil
}

// poison rolls an edit back to the retained pre-edit cube/stimulus and marks
// every window suspect; the next operation re-converges from scratch.
func (g *Graph) poison() {
	g.poisoned = true
	g.dirty = make([]bool, len(g.c.Gates))
	g.dirtyAt = make([][]int, len(g.levels))
	g.dirtyCount = 0
}

// Poisoned reports whether the last edit failed mid-convergence and the
// graph is pending a Heal.
func (g *Graph) Poisoned() bool { return g.poisoned }

// Heal re-converges a poisoned graph from its retained state so that every
// line again equals a from-scratch recomputation. It is a no-op on a
// healthy graph. Edits call it implicitly; queries on a poisoned graph
// return ErrPoisoned-free data only after a successful Heal.
func (g *Graph) Heal(ctx context.Context) error {
	if !g.poisoned {
		return nil
	}
	for _, pi := range g.c.PIs {
		li := twindow.PILine(g.implied.Get(pi), g.piTiming(pi))
		g.lines[pi] = &li
	}
	for _, lvlGates := range g.levels {
		for _, gi := range lvlGates {
			g.markDirty(gi)
		}
	}
	if err := g.converge(ctx, 1); err != nil {
		g.poison()
		return err
	}
	g.poisoned = false
	return nil
}

// beginEdit heals a poisoned graph and resets the changed-net accumulator.
func (g *Graph) beginEdit(ctx context.Context) error {
	if err := g.Heal(ctx); err != nil {
		return err
	}
	g.changed = make(map[string]bool)
	g.opts.Metrics.Add(engine.TGraphEdits, 1)
	return nil
}

// applyImplied installs a new (raw, implied) cube pair: every line whose
// implied value changed is updated (primary inputs) or has its driver and
// consumers marked dirty, then the frontier re-converges. On failure the
// previous cubes are restored and the graph is poisoned.
func (g *Graph) applyImplied(ctx context.Context, raw, implied nineval.Cube) error {
	prevRaw, prevImplied := g.raw, g.implied
	g.raw, g.implied = raw, implied

	// Diff over the union of keys: values absent from a cube are xx.
	seen := make(map[string]bool, len(prevImplied)+len(implied))
	diffNet := func(net string) {
		if seen[net] {
			return
		}
		seen[net] = true
		if prevImplied.Get(net) == implied.Get(net) {
			return
		}
		if gi, ok := g.c.Driver(net); ok {
			// The driving gate re-derives the line's full LineInfo
			// (value, states and windows) during re-convergence.
			g.markDirty(gi)
			return
		}
		// Driverless lines are primary inputs: refresh in place.
		li := twindow.PILine(implied.Get(net), g.piTiming(net))
		if old := g.lines[net]; old == nil || *old != li {
			g.lines[net] = &li
			g.changed[net] = true
			g.touchNet(net)
		}
	}
	for net := range prevImplied {
		diffNet(net)
	}
	for net := range implied {
		diffNet(net)
	}

	if err := g.converge(ctx, 1); err != nil {
		g.raw, g.implied = prevRaw, prevImplied
		g.poison()
		return err
	}
	return nil
}

// SetCube replaces the graph's assignment cube: raw is implied from scratch
// and the difference against the current state re-converges incrementally.
// Relaxing a line is expressed by omitting it from the new cube (or mapping
// it to xx). A logically inconsistent cube returns ErrInconsistent and
// leaves the graph untouched.
func (g *Graph) SetCube(ctx context.Context, raw nineval.Cube) error {
	if err := g.beginEdit(ctx); err != nil {
		return err
	}
	implied, ok := nineval.Imply(g.c, raw)
	if !ok {
		return fmt.Errorf("%w: %s", ErrInconsistent, raw.String())
	}
	return g.applyImplied(ctx, raw.Clone(), implied)
}

// SetImpliedCube is SetCube for a cube the caller has already run through
// nineval.Imply (the ATPG search maintains implied cubes at every node).
// Passing a non-fixpoint cube voids the byte-identical guarantee.
func (g *Graph) SetImpliedCube(ctx context.Context, implied nineval.Cube) error {
	if err := g.beginEdit(ctx); err != nil {
		return err
	}
	return g.applyImplied(ctx, implied, implied)
}

// SetPI changes the stimulus of one primary input and re-converges its
// fan-out cone.
func (g *Graph) SetPI(ctx context.Context, name string, p twindow.PITiming) error {
	if !g.c.IsPI(name) {
		return fmt.Errorf("tgraph: %q is not a primary input", name)
	}
	if err := g.beginEdit(ctx); err != nil {
		return err
	}
	prev, hadPrev := g.perPI[name]
	g.perPI[name] = p
	li := twindow.PILine(g.implied.Get(name), p)
	if old := g.lines[name]; old == nil || *old != li {
		g.lines[name] = &li
		g.changed[name] = true
		g.touchNet(name)
	}
	if err := g.converge(ctx, 1); err != nil {
		if hadPrev {
			g.perPI[name] = prev
		} else {
			delete(g.perPI, name)
		}
		g.poison()
		return err
	}
	return nil
}

// SwapGate exchanges the gate driving net for its same-arity dual
// (NAND↔NOR, INV↔BUF), re-implies the raw cube under the new logic and
// re-converges the gate's cone. The underlying circuit is mutated in place
// (topology, fan-out and levels are unchanged by construction). An
// inconsistency under the new logic reverts the swap.
func (g *Graph) SwapGate(ctx context.Context, net string, kind netlist.GateKind) error {
	gi, ok := g.c.Driver(net)
	if !ok {
		return fmt.Errorf("tgraph: net %q has no driving gate", net)
	}
	gate := &g.c.Gates[gi]
	if gate.Kind == kind {
		return nil
	}
	if err := g.beginEdit(ctx); err != nil {
		return err
	}
	prevKind, err := g.c.SwapGateKind(net, kind)
	if err != nil {
		return fmt.Errorf("tgraph: %w", err)
	}
	cell, ok := g.opts.Lib.Cell(gate.CellName())
	if !ok {
		gate.Kind = prevKind
		return fmt.Errorf("tgraph: no library cell %q for swapped gate %q", gate.CellName(), net)
	}
	implied, okImply := nineval.Imply(g.c, g.raw)
	if !okImply {
		gate.Kind = prevKind
		return fmt.Errorf("%w under swapped gate %q: %s", ErrInconsistent, net, g.raw.String())
	}
	prevCell, prevLoad := g.cells[gi], g.extraLoad[gi]
	g.cells[gi] = cell
	g.extraLoad[gi] = float64(g.c.FanoutCount(net)-1) * cell.RefLoad
	g.markDirty(gi)
	if err := g.applyImplied(ctx, g.raw, implied); err != nil {
		gate.Kind = prevKind
		g.cells[gi], g.extraLoad[gi] = prevCell, prevLoad
		return err
	}
	return nil
}

// NumChanged returns the number of lines whose LineInfo changed during the
// last successful edit (the re-converged cone size), without allocating.
func (g *Graph) NumChanged() int { return len(g.changed) }

// Changed returns the nets whose LineInfo changed during the last
// successful edit, sorted.
func (g *Graph) Changed() []string {
	out := make([]string, 0, len(g.changed))
	for net := range g.changed {
		out = append(out, net)
	}
	sort.Strings(out)
	return out
}

// Line returns a copy of the net's timing state.
func (g *Graph) Line(net string) (twindow.LineInfo, bool) {
	li, ok := g.lines[net]
	if !ok {
		return twindow.LineInfo{}, false
	}
	return *li, true
}

// Window returns the directional window of a net and whether it is defined
// (the state is not SNo).
func (g *Graph) Window(net string, rising bool) (twindow.Window, bool) {
	li, ok := g.lines[net]
	if !ok {
		return twindow.Window{}, false
	}
	if rising {
		if !li.HasRise() {
			return twindow.Window{}, false
		}
		return li.Rise, true
	}
	if !li.HasFall() {
		return twindow.Window{}, false
	}
	return li.Fall, true
}

// Lines visits every line's timing state (iteration order unspecified).
func (g *Graph) Lines(visit func(net string, li twindow.LineInfo)) {
	for net, li := range g.lines {
		visit(net, *li)
	}
}

// NumLines returns the number of lines carrying timing state.
func (g *Graph) NumLines() int { return len(g.lines) }

// ImpliedCube returns the current implication fixpoint (shared; do not
// mutate).
func (g *Graph) ImpliedCube() nineval.Cube { return g.implied }

// RawCube returns the caller-supplied assignments (shared; do not mutate).
func (g *Graph) RawCube() nineval.Cube { return g.raw }

// FaultLevelHook adapts a spice.FaultHook (see internal/faultinject for
// seeded plan constructors) into a LevelHook: the hook is consulted once per
// convergence level with step = level, and any kind other than FaultNone
// becomes an injected solver error carrying the usual taxonomy sentinel —
// FaultNaN maps to spice.ErrNumerical, everything else to
// spice.ErrNoConvergence, and FaultPanic panics so the caller's containment
// is exercised. A nil hook yields a nil LevelHook.
func FaultLevelHook(hook spice.FaultHook) func(level int) error {
	if hook == nil {
		return nil
	}
	return func(level int) error {
		switch kind := hook(level, 0, 0); kind {
		case spice.FaultNone:
			return nil
		case spice.FaultPanic:
			panic(fmt.Sprintf("tgraph: injected panic at level %d", level))
		case spice.FaultNaN:
			return &spice.SolveError{Kind: spice.ErrNumerical, Step: level, Injected: true}
		default:
			return &spice.SolveError{Kind: spice.ErrNoConvergence, Step: level, Injected: true}
		}
	}
}
