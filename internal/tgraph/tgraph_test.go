package tgraph

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"sstiming/internal/benchgen"
	"sstiming/internal/engine"
	"sstiming/internal/faultinject"
	"sstiming/internal/netlist"
	"sstiming/internal/nineval"
	"sstiming/internal/prechar"
	"sstiming/internal/spice"
	"sstiming/internal/twindow"
)

// chaosSeed resolves the suite seed — overridable via the CHAOS_SEED env
// var — and prints it when the test fails, so any chaotic run is
// reproducible with CHAOS_SEED=<printed seed>.
func chaosSeed(t *testing.T, def int64) int64 {
	t.Helper()
	seed := faultinject.SeedFromEnv(def)
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("reproduce with CHAOS_SEED=%d", seed)
		}
	})
	return seed
}

// values are the nine two-frame values, for random cube generation.
var values = []nineval.Value{
	nineval.V00, nineval.V01, nineval.V0X,
	nineval.V10, nineval.V11, nineval.V1X,
	nineval.VX0, nineval.VX1, nineval.VXX,
}

// randomPICube assigns random values to a random subset of primary inputs.
// PI-only assignments imply forward without conflict, so the cube is always
// consistent.
func randomPICube(c *netlist.Circuit, rng *rand.Rand) nineval.Cube {
	cube := nineval.Cube{}
	for _, pi := range c.PIs {
		if rng.Intn(3) == 0 {
			cube[pi] = values[rng.Intn(len(values))]
		}
	}
	return cube
}

// requireLinesEqual asserts that every line of got is byte-identical
// (struct ==, i.e. bit-for-bit floats) to the corresponding line of want.
func requireLinesEqual(t *testing.T, label string, got, want *Graph) {
	t.Helper()
	if got.NumLines() != want.NumLines() {
		t.Fatalf("%s: line count %d != reference %d", label, got.NumLines(), want.NumLines())
	}
	want.Lines(func(net string, ref twindow.LineInfo) {
		li, ok := got.Line(net)
		if !ok {
			t.Fatalf("%s: net %q missing from incremental graph", label, net)
		}
		if li != ref {
			t.Fatalf("%s: net %q diverged:\nincremental %+v\nreference   %+v", label, net, li, ref)
		}
	})
}

func TestFullConvergeMatchesParallel(t *testing.T) {
	lib := prechar.MustLibrary()
	c, err := benchgen.Load("c432")
	if err != nil {
		t.Fatal(err)
	}
	serial, err := New(c, Options{Lib: lib})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := New(c, Options{Lib: lib, Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	requireLinesEqual(t, "jobs=4", parallel, serial)
}

func TestSetCubeMatchesFromScratch(t *testing.T) {
	lib := prechar.MustLibrary()
	c, err := benchgen.Load("c432")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Lib: lib, NCExtension: true}
	g, err := New(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for step := 0; step < 12; step++ {
		cube := randomPICube(c, rng)
		if err := g.SetCube(context.Background(), cube); err != nil {
			t.Fatalf("step %d: SetCube: %v", step, err)
		}
		ref, err := NewWithCube(c, cube, opts)
		if err != nil {
			t.Fatalf("step %d: reference build: %v", step, err)
		}
		requireLinesEqual(t, fmt.Sprintf("step %d (%s)", step, cube), g, ref)
	}
	// Retract everything: back to pure STA, byte-identical to a fresh
	// empty-cube graph.
	if err := g.SetCube(context.Background(), nineval.Cube{}); err != nil {
		t.Fatal(err)
	}
	ref, err := New(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireLinesEqual(t, "retract-all", g, ref)
}

func TestSetImpliedCubeMatchesSetCube(t *testing.T) {
	lib := prechar.MustLibrary()
	c := benchgen.C17()
	a, err := New(c, Options{Lib: lib})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(c, Options{Lib: lib})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 20; step++ {
		cube := randomPICube(c, rng)
		implied, ok := nineval.Imply(c, cube)
		if !ok {
			t.Fatalf("step %d: PI cube implied inconsistent", step)
		}
		if err := a.SetCube(context.Background(), cube); err != nil {
			t.Fatal(err)
		}
		if err := b.SetImpliedCube(context.Background(), implied); err != nil {
			t.Fatal(err)
		}
		requireLinesEqual(t, fmt.Sprintf("step %d", step), b, a)
	}
}

func TestSetPIMatchesFromScratch(t *testing.T) {
	lib := prechar.MustLibrary()
	c, err := benchgen.Load("c432")
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(c, Options{Lib: lib})
	if err != nil {
		t.Fatal(err)
	}
	perPI := map[string]twindow.PITiming{}
	rng := rand.New(rand.NewSource(3))
	for step := 0; step < 6; step++ {
		pi := c.PIs[rng.Intn(len(c.PIs))]
		p := twindow.PITiming{
			ArrivalEarly: float64(rng.Intn(5)) * 0.05e-9,
			ArrivalLate:  0.25e-9 + float64(rng.Intn(5))*0.05e-9,
			TransShort:   0.1e-9,
			TransLong:    0.3e-9,
		}
		perPI[pi] = p
		if err := g.SetPI(context.Background(), pi, p); err != nil {
			t.Fatalf("step %d: SetPI(%s): %v", step, pi, err)
		}
		ref, err := New(c, Options{Lib: lib, PerPI: perPI})
		if err != nil {
			t.Fatal(err)
		}
		requireLinesEqual(t, fmt.Sprintf("step %d pi %s", step, pi), g, ref)
	}
	if err := g.SetPI(context.Background(), "no-such-net", twindow.DefaultPITiming()); err == nil {
		t.Fatal("SetPI on a non-PI net must fail")
	}
}

func TestSwapGateMatchesFromScratch(t *testing.T) {
	lib := prechar.MustLibrary()
	c, err := benchgen.Load("c432")
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(c, Options{Lib: lib})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	dual := map[netlist.GateKind]netlist.GateKind{
		netlist.Nand: netlist.Nor, netlist.Nor: netlist.Nand,
		netlist.Inv: netlist.Buf, netlist.Buf: netlist.Inv,
	}
	for step := 0; step < 6; step++ {
		gi := rng.Intn(c.NumGates())
		net := c.Gates[gi].Output
		kind := dual[c.Gates[gi].Kind]
		if err := g.SwapGate(context.Background(), net, kind); err != nil {
			t.Fatalf("step %d: SwapGate(%s→%v): %v", step, net, kind, err)
		}
		if c.Gates[gi].Kind != kind {
			t.Fatalf("step %d: circuit not mutated", step)
		}
		// The reference sees the already-swapped circuit.
		ref, err := New(c, Options{Lib: lib})
		if err != nil {
			t.Fatal(err)
		}
		requireLinesEqual(t, fmt.Sprintf("step %d swap %s→%v", step, net, kind), g, ref)
	}
	// Cross-pair swaps are rejected without touching the graph.
	var nandNet string
	for i := range c.Gates {
		if c.Gates[i].Kind == netlist.Nand && len(c.Gates[i].Inputs) > 1 {
			nandNet = c.Gates[i].Output
			break
		}
	}
	if nandNet != "" {
		if err := g.SwapGate(context.Background(), nandNet, netlist.Inv); err == nil {
			t.Fatal("cross-pair swap must be rejected")
		}
	}
}

func TestInconsistentCubeLeavesGraphUntouched(t *testing.T) {
	lib := prechar.MustLibrary()
	c := benchgen.C17()
	g, err := New(c, Options{Lib: lib})
	if err != nil {
		t.Fatal(err)
	}
	before, err := New(c, Options{Lib: lib})
	if err != nil {
		t.Fatal(err)
	}
	bad := nineval.Cube{"1": nineval.V00, "10": nineval.V00} // forces a conflict
	err = g.SetCube(context.Background(), bad)
	if !errors.Is(err, ErrInconsistent) {
		t.Fatalf("want ErrInconsistent, got %v", err)
	}
	if g.Poisoned() {
		t.Fatal("rejected cube must not poison the graph")
	}
	requireLinesEqual(t, "after rejected cube", g, before)
}

func TestEditTouchesOnlyTheCone(t *testing.T) {
	lib := prechar.MustLibrary()
	c, err := benchgen.Load("c880")
	if err != nil {
		t.Fatal(err)
	}
	m := engine.NewMetrics()
	g, err := New(c, Options{Lib: lib, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	full := m.Get(engine.STAGates)
	if full != int64(c.NumGates()) {
		t.Fatalf("initial converge recomputed %d gates, want %d", full, c.NumGates())
	}
	// Assigning one PI re-converges only its fan-out cone, which in c880
	// is a strict subset of the circuit.
	if err := g.SetCube(context.Background(), nineval.Cube{c.PIs[0]: nineval.V01}); err != nil {
		t.Fatal(err)
	}
	cone := m.Get(engine.STAGates) - full
	if cone <= 0 {
		t.Fatal("edit recomputed no gates")
	}
	if cone >= int64(c.NumGates()) {
		t.Fatalf("single-PI edit recomputed the whole circuit (%d gates)", cone)
	}
	t.Logf("single-PI edit recomputed %d/%d gates", cone, c.NumGates())
	if m.Get(engine.TGraphEdits) != 1 {
		t.Fatalf("TGraphEdits = %d, want 1", m.Get(engine.TGraphEdits))
	}
}

func TestChangedReportsEditedCone(t *testing.T) {
	lib := prechar.MustLibrary()
	c := benchgen.C17()
	g, err := New(c, Options{Lib: lib})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetCube(context.Background(), nineval.Cube{"1": nineval.V01}); err != nil {
		t.Fatal(err)
	}
	changed := g.Changed()
	if len(changed) == 0 {
		t.Fatal("assigning a PI changed no lines")
	}
	seen := map[string]bool{}
	for _, net := range changed {
		seen[net] = true
	}
	if !seen["1"] {
		t.Fatalf("changed %v does not include the edited PI", changed)
	}
	// Nets outside the fan-out cone of "1" must be untouched: "2" is an
	// unrelated PI in c17.
	if seen["2"] {
		t.Fatalf("changed %v includes an unrelated PI", changed)
	}
}

func TestCancelledBuildAndEdit(t *testing.T) {
	lib := prechar.MustLibrary()
	c, err := benchgen.Load("c432")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	for _, jobs := range []int{1, 4} {
		g, err := New(c, Options{Lib: lib, Ctx: ctx, Jobs: jobs})
		if g != nil {
			t.Fatalf("jobs=%d: cancelled build returned a graph", jobs)
		}
		if !errors.Is(err, spice.ErrCancelled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("jobs=%d: error does not wrap the cancellation chain: %v", jobs, err)
		}
	}

	// A cancelled edit poisons the graph; Heal restores byte-identical
	// state.
	g, err := New(c, Options{Lib: lib})
	if err != nil {
		t.Fatal(err)
	}
	err = g.SetCube(ctx, nineval.Cube{c.PIs[0]: nineval.V01})
	if !errors.Is(err, spice.ErrCancelled) {
		t.Fatalf("cancelled edit: %v", err)
	}
	if !g.Poisoned() {
		t.Fatal("cancelled edit must poison the graph")
	}
	if err := g.Heal(context.Background()); err != nil {
		t.Fatalf("Heal: %v", err)
	}
	if g.Poisoned() {
		t.Fatal("healed graph still poisoned")
	}
	ref, err := New(c, Options{Lib: lib})
	if err != nil {
		t.Fatal(err)
	}
	requireLinesEqual(t, "after heal", g, ref)
}

// TestChaosInjectedFaultMidEdit drives the faultinject-style LevelHook: a
// solver error injected mid-convergence must roll the edit back, poison the
// graph, and the next operation must heal to a state byte-identical to a
// full recompute of the pre-edit cube.
func TestChaosInjectedFaultMidEdit(t *testing.T) {
	lib := prechar.MustLibrary()
	c, err := benchgen.Load("c432")
	if err != nil {
		t.Fatal(err)
	}
	armed := false
	// The kill level is part of the chaos schedule: CHAOS_SEED picks which
	// convergence level dies. Levels 2-4 are always visited by the edited
	// cones on c432, so every seed produces a real mid-edit fault.
	failLevel := 2 + int(chaosSeed(t, 1)%3)
	hook := FaultLevelHook(func(step int, _ float64, _ int) spice.FaultKind {
		if armed && step == failLevel {
			return spice.FaultNoConverge
		}
		return spice.FaultNone
	})
	g, err := New(c, Options{Lib: lib, LevelHook: hook})
	if err != nil {
		t.Fatal(err)
	}

	goodCube := nineval.Cube{c.PIs[0]: nineval.V01}
	if err := g.SetCube(context.Background(), goodCube); err != nil {
		t.Fatal(err)
	}

	// Inject: the next edit dies mid-convergence.
	armed = true
	badEdit := nineval.Cube{c.PIs[1]: nineval.V10, c.PIs[2]: nineval.V01}
	err = g.SetCube(context.Background(), badEdit)
	if err == nil {
		t.Fatal("injected fault did not surface")
	}
	if !errors.Is(err, spice.ErrNoConvergence) {
		t.Fatalf("injected fault lost its taxonomy sentinel: %v", err)
	}
	var se *spice.SolveError
	if !errors.As(err, &se) || !se.Injected {
		t.Fatalf("injected fault not marked Injected: %v", err)
	}
	if !g.Poisoned() {
		t.Fatal("failed edit must poison the graph")
	}

	// The failed edit rolled back to goodCube; once injection stops, the
	// next edit heals first and the graph equals a full recompute.
	armed = false
	if err := g.SetCube(context.Background(), goodCube); err != nil {
		t.Fatalf("healing edit: %v", err)
	}
	if g.Poisoned() {
		t.Fatal("graph still poisoned after successful edit")
	}
	ref, err := NewWithCube(c, goodCube, Options{Lib: lib})
	if err != nil {
		t.Fatal(err)
	}
	requireLinesEqual(t, "after chaos heal", g, ref)

	// Injection during Heal itself keeps the graph poisoned rather than
	// exposing partial state.
	armed = true
	if err := g.SetCube(context.Background(), badEdit); err == nil {
		t.Fatal("second injection did not surface")
	}
	if err := g.Heal(context.Background()); err == nil {
		t.Fatal("Heal under injection must fail")
	}
	if !g.Poisoned() {
		t.Fatal("failed Heal must leave the graph poisoned")
	}
	armed = false
	if err := g.Heal(context.Background()); err != nil {
		t.Fatalf("final Heal: %v", err)
	}
	requireLinesEqual(t, "after final heal", g, ref)
}

func TestEditRetractSequenceMatchesFromScratch(t *testing.T) {
	lib := prechar.MustLibrary()
	c, err := benchgen.Load("c499")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Lib: lib}
	g, err := New(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))

	// A stack-shaped edit/retract walk, the shape the ATPG search
	// produces: push an assignment, sometimes pop back to a previous
	// cube.
	var stack []nineval.Cube
	stack = append(stack, nineval.Cube{})
	for step := 0; step < 30; step++ {
		if len(stack) > 1 && rng.Intn(3) == 0 {
			stack = stack[:len(stack)-1] // backtrack
		} else {
			next := stack[len(stack)-1].Clone()
			pi := c.PIs[rng.Intn(len(c.PIs))]
			next[pi] = values[rng.Intn(len(values))]
			stack = append(stack, next)
		}
		cur := stack[len(stack)-1]
		if err := g.SetCube(context.Background(), cur); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		ref, err := NewWithCube(c, cur, opts)
		if err != nil {
			t.Fatal(err)
		}
		requireLinesEqual(t, fmt.Sprintf("step %d depth %d", step, len(stack)), g, ref)
	}
}
