package tgraph

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"sstiming/internal/benchgen"
	"sstiming/internal/netlist"
	"sstiming/internal/prechar"
	"sstiming/internal/twindow"
)

// editedGraph builds a c432 graph and walks it through a mixed edit script
// (cube edits, PI retimes, a gate swap when the library has the dual) so
// snapshots are exercised on a state that is not just the initial build.
func editedGraph(t *testing.T, seed int64) (*Graph, Options) {
	t.Helper()
	lib := prechar.MustLibrary()
	c, err := benchgen.Load("c432")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Lib: lib, NCExtension: true}
	g, err := New(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(seed))
	for step := 0; step < 6; step++ {
		if err := g.SetCube(ctx, randomPICube(c, rng)); err != nil {
			t.Fatalf("step %d: SetCube: %v", step, err)
		}
	}
	pi := c.PIs[rng.Intn(len(c.PIs))]
	if err := g.SetPI(ctx, pi, twindow.PITiming{ArrivalEarly: 0.1e-9, ArrivalLate: 0.35e-9, TransShort: 0.15e-9, TransLong: 0.4e-9}); err != nil {
		t.Fatalf("SetPI: %v", err)
	}
	for i := range c.Gates {
		gate := &c.Gates[i]
		var dual netlist.GateKind
		switch gate.Kind {
		case netlist.Nand:
			dual = netlist.Nor
		case netlist.Nor:
			dual = netlist.Nand
		default:
			continue
		}
		if err := g.SwapGate(ctx, gate.Output, dual); err == nil {
			break
		}
	}
	return g, opts
}

func TestSnapshotRoundTripByteIdentical(t *testing.T) {
	g, opts := editedGraph(t, 17)
	snap, err := g.EncodeSnapshot()
	if err != nil {
		t.Fatalf("EncodeSnapshot: %v", err)
	}
	got, err := RestoreSnapshot(snap, opts)
	if err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	// The .bench text carries no name, so the snapshot must — a restore
	// that renames the circuit is visible to every session client.
	if got.Circuit().Name != g.Circuit().Name {
		t.Errorf("restored circuit name %q, want %q", got.Circuit().Name, g.Circuit().Name)
	}
	requireLinesEqual(t, "restored", got, g)

	// The restored graph must remain a live, editable graph: identical
	// further edits on both must stay byte-identical.
	ctx := context.Background()
	rng := rand.New(rand.NewSource(99))
	for step := 0; step < 4; step++ {
		cube := randomPICube(g.Circuit(), rng)
		if err := g.SetCube(ctx, cube); err != nil {
			t.Fatalf("step %d: original SetCube: %v", step, err)
		}
		if err := got.SetCube(ctx, cube.Clone()); err != nil {
			t.Fatalf("step %d: restored SetCube: %v", step, err)
		}
		requireLinesEqual(t, "post-restore edit", got, g)
	}
}

func TestSnapshotRejectsMismatchedOptions(t *testing.T) {
	g, opts := editedGraph(t, 3)
	snap, err := g.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	wrongMode := opts
	wrongMode.Mode = twindow.ModePinToPin
	if _, err := RestoreSnapshot(snap, wrongMode); err == nil {
		t.Fatal("RestoreSnapshot accepted a mode mismatch")
	}
	wrongNC := opts
	wrongNC.NCExtension = false
	if _, err := RestoreSnapshot(snap, wrongNC); err == nil {
		t.Fatal("RestoreSnapshot accepted an nc_extension mismatch")
	}
}

func TestSnapshotDecodeNeverPanics(t *testing.T) {
	g, opts := editedGraph(t, 5)
	snap, err := g.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]byte{
		nil,
		[]byte("{"),
		[]byte("null"),
		[]byte(`{"version":99}`),
		[]byte(`{"version":1,"mode":"proposed","nc_extension":true,"netlist":"garbage"}`),
		[]byte(strings.Replace(string(snap), `"lines":{`, `"lines":{"no_such_net":{"r":{},"f":{}},`, 1)),
		[]byte(strings.Replace(string(snap), `"raw_cube":{`, `"raw_cube":{"bogus":"012",`, 1)),
	}
	for i, data := range cases {
		restored, err := RestoreSnapshot(data, opts)
		if err == nil {
			// The two surgical corruptions only bite when the substring
			// existed; a clean decode must at least be consistent.
			requireLinesEqual(t, "lenient case", restored, g)
			continue
		}
		if !strings.Contains(err.Error(), "bad snapshot") {
			t.Fatalf("case %d: error is not typed ErrBadSnapshot: %v", i, err)
		}
	}
}

func TestSnapshotRefusesPoisonedGraph(t *testing.T) {
	g, _ := editedGraph(t, 7)
	g.poison()
	if _, err := g.EncodeSnapshot(); err == nil {
		t.Fatal("EncodeSnapshot accepted a poisoned graph")
	}
}
