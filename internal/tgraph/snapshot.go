package tgraph

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"

	"sstiming/internal/netlist"
	"sstiming/internal/nineval"
	"sstiming/internal/twindow"
)

// A snapshot is the full converged state of a Graph, checkpointed so that a
// restart can rebuild the graph without replaying its edit history or
// re-converging a single gate. Windows are serialized as the raw IEEE-754
// bit patterns of their float64s (uint64s round-trip exactly through JSON,
// float text does not have to), so a restored graph is byte-identical to
// the one that was encoded — the invariant the session-recovery chaos suite
// asserts. Values and transition states are NOT stored: both are pure
// functions of the implied cube (twindow.PILine / PropagateGate derive them
// the same way), so they are re-derived on restore and cannot drift.
//
// The netlist is stored as .bench text written by netlist.Circuit.Write —
// it reflects in-place gate swaps (SwapGate mutates the circuit), and
// parsing it back reproduces gates in declaration order, which levelization
// and window convergence are deterministic over.

// ErrBadSnapshot reports a snapshot that cannot be decoded or fails
// validation against the circuit it claims to describe.
var ErrBadSnapshot = errors.New("tgraph: bad snapshot")

const snapshotVersion = 1

type snapshotWindow struct {
	AS, AL, TS, TL uint64 // math.Float64bits
}

type snapshotLine struct {
	Rise snapshotWindow `json:"r"`
	Fall snapshotWindow `json:"f"`
}

type snapshotPI struct {
	ArrivalEarly uint64 `json:"ae"`
	ArrivalLate  uint64 `json:"al"`
	TransShort   uint64 `json:"ts"`
	TransLong    uint64 `json:"tl"`
}

type snapshotJSON struct {
	Version     int                     `json:"version"`
	Name        string                  `json:"name"`
	Netlist     string                  `json:"netlist"`
	Mode        string                  `json:"mode"`
	NCExtension bool                    `json:"nc_extension"`
	PI          snapshotPI              `json:"pi"`
	PerPI       map[string]snapshotPI   `json:"per_pi,omitempty"`
	RawCube     map[string]string       `json:"raw_cube,omitempty"`
	Lines       map[string]snapshotLine `json:"lines"`
}

func encodeWindow(w twindow.Window) snapshotWindow {
	return snapshotWindow{
		AS: math.Float64bits(w.AS), AL: math.Float64bits(w.AL),
		TS: math.Float64bits(w.TS), TL: math.Float64bits(w.TL),
	}
}

func decodeWindow(w snapshotWindow) twindow.Window {
	return twindow.Window{
		AS: math.Float64frombits(w.AS), AL: math.Float64frombits(w.AL),
		TS: math.Float64frombits(w.TS), TL: math.Float64frombits(w.TL),
	}
}

func encodePI(p twindow.PITiming) snapshotPI {
	return snapshotPI{
		ArrivalEarly: math.Float64bits(p.ArrivalEarly),
		ArrivalLate:  math.Float64bits(p.ArrivalLate),
		TransShort:   math.Float64bits(p.TransShort),
		TransLong:    math.Float64bits(p.TransLong),
	}
}

func decodePI(p snapshotPI) twindow.PITiming {
	return twindow.PITiming{
		ArrivalEarly: math.Float64frombits(p.ArrivalEarly),
		ArrivalLate:  math.Float64frombits(p.ArrivalLate),
		TransShort:   math.Float64frombits(p.TransShort),
		TransLong:    math.Float64frombits(p.TransLong),
	}
}

// parseValue decodes the two-character form nineval.Value.String emits
// ("01", "x1", ...).
func parseValue(s string) (nineval.Value, error) {
	if len(s) != 2 {
		return nineval.Value{}, fmt.Errorf("value %q is not two frames of [01x]", s)
	}
	frame := func(ch byte) (nineval.Frame, error) {
		switch ch {
		case '0':
			return nineval.F0, nil
		case '1':
			return nineval.F1, nil
		case 'x', 'X':
			return nineval.FX, nil
		}
		return 0, fmt.Errorf("value %q is not two frames of [01x]", s)
	}
	v1, err := frame(s[0])
	if err != nil {
		return nineval.Value{}, err
	}
	v2, err := frame(s[1])
	if err != nil {
		return nineval.Value{}, err
	}
	return nineval.Value{V1: v1, V2: v2}, nil
}

// EncodeSnapshot serializes the graph's full converged state. A poisoned
// graph cannot be snapshotted (its windows are suspect); callers heal first.
func (g *Graph) EncodeSnapshot() ([]byte, error) {
	if g.poisoned {
		return nil, fmt.Errorf("tgraph: cannot snapshot a poisoned graph")
	}
	var nb bytes.Buffer
	if err := g.c.Write(&nb); err != nil {
		return nil, fmt.Errorf("tgraph: encoding snapshot netlist: %w", err)
	}
	s := snapshotJSON{
		Version:     snapshotVersion,
		Name:        g.c.Name,
		Netlist:     nb.String(),
		Mode:        g.opts.Mode.String(),
		NCExtension: g.opts.NCExtension,
		PI:          encodePI(g.opts.PI),
		Lines:       make(map[string]snapshotLine, len(g.lines)),
	}
	if len(g.perPI) > 0 {
		s.PerPI = make(map[string]snapshotPI, len(g.perPI))
		for name, p := range g.perPI {
			s.PerPI[name] = encodePI(p)
		}
	}
	if len(g.raw) > 0 {
		s.RawCube = make(map[string]string, len(g.raw))
		for net, v := range g.raw {
			s.RawCube[net] = v.String()
		}
	}
	for net, li := range g.lines {
		s.Lines[net] = snapshotLine{Rise: encodeWindow(li.Rise), Fall: encodeWindow(li.Fall)}
	}
	return json.Marshal(s)
}

// RestoreSnapshot rebuilds a Graph from EncodeSnapshot output without
// replaying edits or re-converging: the skeleton is rebuilt from the
// embedded netlist, the raw cube is re-implied, and every line's windows
// are installed verbatim (values and states re-derived from the implied
// cube). The restored graph is byte-identical to the encoded one.
//
// opts supplies the environment the snapshot cannot carry — the library,
// metrics sink, context and worker budget. Mode and NCExtension in opts
// must match the snapshot (an operator pointing a differently-configured
// daemon at old state should hear about it, not silently serve windows
// computed under another model); PI stimuli come from the snapshot and
// override opts. All failures are typed ErrBadSnapshot; malformed input
// never panics.
func RestoreSnapshot(data []byte, opts Options) (*Graph, error) {
	var s snapshotJSON
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if s.Version != snapshotVersion {
		return nil, fmt.Errorf("%w: snapshot version %d, this build reads %d", ErrBadSnapshot, s.Version, snapshotVersion)
	}
	if got, want := s.Mode, opts.Mode.String(); got != want {
		return nil, fmt.Errorf("%w: snapshot mode %q, graph options want %q", ErrBadSnapshot, got, want)
	}
	if s.NCExtension != opts.NCExtension {
		return nil, fmt.Errorf("%w: snapshot nc_extension=%v, graph options want %v", ErrBadSnapshot, s.NCExtension, opts.NCExtension)
	}
	// The .bench text carries no circuit name, so the snapshot stores it
	// separately — a restored session must answer with the name it was
	// created under, not a placeholder.
	name := s.Name
	if name == "" {
		name = "snapshot"
	}
	c, err := netlist.Parse(name, strings.NewReader(s.Netlist))
	if err != nil {
		return nil, fmt.Errorf("%w: embedded netlist: %v", ErrBadSnapshot, err)
	}
	opts.PI = decodePI(s.PI)
	opts.PerPI = nil
	g, err := newSkeleton(c, opts)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	for name, p := range s.PerPI {
		if !c.IsPI(name) {
			return nil, fmt.Errorf("%w: per-PI stimulus for %q, which is not a primary input", ErrBadSnapshot, name)
		}
		g.perPI[name] = decodePI(p)
	}

	raw := nineval.Cube{}
	for net, vs := range s.RawCube {
		v, err := parseValue(vs)
		if err != nil {
			return nil, fmt.Errorf("%w: raw cube net %q: %v", ErrBadSnapshot, net, err)
		}
		raw[net] = v
	}
	implied, ok := nineval.Imply(c, raw)
	if !ok {
		return nil, fmt.Errorf("%w: raw cube is inconsistent with the netlist", ErrBadSnapshot)
	}
	g.raw = raw
	g.implied = implied

	// Install the checkpointed windows over every line the graph owns —
	// each primary input and each gate output, no more, no fewer.
	install := func(net string) error {
		sl, ok := s.Lines[net]
		if !ok {
			return fmt.Errorf("%w: no line state for net %q", ErrBadSnapshot, net)
		}
		v := implied.Get(net)
		li := twindow.LineInfo{
			Value: v, SRise: v.StateRise(), SFall: v.StateFall(),
			Rise: decodeWindow(sl.Rise), Fall: decodeWindow(sl.Fall),
		}
		g.lines[net] = &li
		return nil
	}
	for _, pi := range c.PIs {
		if err := install(pi); err != nil {
			return nil, err
		}
	}
	for i := range c.Gates {
		if err := install(c.Gates[i].Output); err != nil {
			return nil, err
		}
	}
	if len(s.Lines) != len(g.lines) {
		return nil, fmt.Errorf("%w: %d line entries for a circuit with %d lines", ErrBadSnapshot, len(s.Lines), len(g.lines))
	}
	return g, nil
}
