package alphapower

import (
	"math"
	"testing"

	"sstiming/internal/cells"
	"sstiming/internal/device"
	"sstiming/internal/spice"
	"sstiming/internal/waveform"
)

// simInverterDelay measures the falling-output delay of a minimum-size
// inverter driving cl, with a rising input of transition time tt.
func simInverterDelay(t *testing.T, tech *device.Tech, cl, tt float64) float64 {
	t.Helper()
	c := spice.NewCircuit()
	vdd := c.Node("vdd")
	in := c.Node("in")
	out := c.Node("out")
	c.AddDC(vdd, tech.Vdd)
	const arr = 1.5e-9
	c.AddVSource(in, 0, waveform.Ramp(0, tech.Vdd, arr, tt))
	c.AddMOSFET(out, in, vdd, &tech.PMOS, tech.MinGeom(device.PMOS))
	c.AddMOSFET(out, in, 0, &tech.NMOS, tech.MinGeom(device.NMOS))
	c.AddCap(out, 0, cl)
	res, err := c.Transient(spice.TransientOpts{TStop: arr + 4e-9, TStep: 2e-12, Record: []string{"out"}})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := res.Wave("out").MeasureTransition(tech.Vdd, false)
	if err != nil {
		t.Fatal(err)
	}
	return tr.Arrival - arr
}

func TestFromDevice(t *testing.T) {
	tech := device.Default05um()
	pn := FromDevice(tech, device.NMOS, tech.MinGeom(device.NMOS))
	pp := FromDevice(tech, device.PMOS, tech.MinGeom(device.PMOS))
	if pn.Alpha != 2 || pp.Alpha != 2 {
		t.Error("square-law devices should map to alpha = 2")
	}
	if pn.ID0 <= 0 || pp.ID0 <= 0 {
		t.Error("ID0 must be positive")
	}
	if pn.VT <= 0 || pp.VT <= 0 {
		t.Error("threshold magnitudes must be positive")
	}
}

func TestInverterDelayTracksSimulator(t *testing.T) {
	// The NMOS pulls the output down when the input rises: compare the
	// analytical delay against the transistor-level simulation over a
	// range of loads and ramps.
	tech := device.Default05um()
	p := FromDevice(tech, device.NMOS, tech.MinGeom(device.NMOS))

	for _, tc := range []struct{ cl, tt float64 }{
		{20e-15, 0.2e-9},
		{50e-15, 0.2e-9},
		{50e-15, 0.6e-9},
		{100e-15, 0.4e-9},
	} {
		sim := simInverterDelay(t, tech, tc.cl, tc.tt)
		// Add the inverter's own drain diffusion to the analytical
		// load (the testbench has it implicitly... the simple bench
		// above has none beyond cl, so compare directly).
		ana, err := p.Delay(tc.cl, tc.tt)
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(ana-sim) / sim
		if rel > 0.35 {
			t.Errorf("cl=%g tt=%g: analytical %.4g vs sim %.4g (%.0f%% error)",
				tc.cl, tc.tt, ana, sim, rel*100)
		}
	}
}

func TestDelayMonotoneInLoadAndRamp(t *testing.T) {
	tech := device.Default05um()
	p := FromDevice(tech, device.NMOS, tech.MinGeom(device.NMOS))
	d1, _ := p.Delay(20e-15, 0.2e-9)
	d2, _ := p.Delay(60e-15, 0.2e-9)
	d3, _ := p.Delay(20e-15, 0.8e-9)
	if d2 <= d1 {
		t.Error("delay should grow with load")
	}
	if d3 <= d1 {
		t.Error("delay should grow with input ramp time")
	}
}

func TestScaleSpeedsUp(t *testing.T) {
	tech := device.Default05um()
	p := FromDevice(tech, device.PMOS, tech.MinGeom(device.PMOS))
	d1, _ := p.Delay(50e-15, 0.4e-9)
	d2, _ := p.Scale(2).Delay(50e-15, 0.4e-9)
	if d2 >= d1 {
		t.Error("doubling drive should reduce delay")
	}
}

// TestCollapsedNANDPredictsSpeedupDirection ties the analytical collapsing
// operation to the paper's phenomenon: two simultaneously-switching pull-up
// transistors (k=2) are predicted faster than one (k=1), and the predicted
// ratio roughly matches the transistor-level NAND2 simulation.
func TestCollapsedNANDPredictsSpeedupDirection(t *testing.T) {
	tech := device.Default05um()
	load := tech.InverterInputCap()

	d1, err := CollapsedNANDRiseDelay(tech, 2, 1, load, 0.5e-9)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := CollapsedNANDRiseDelay(tech, 2, 2, load, 0.5e-9)
	if err != nil {
		t.Fatal(err)
	}
	if d2 >= d1 {
		t.Fatal("k=2 should be faster than k=1")
	}

	// Simulated speed-up on the real NAND2 testbench.
	cfg := cells.Config{Kind: cells.NAND, N: 2, Tech: tech, LoadInverter: true}
	meas := func(both bool) float64 {
		drives := []cells.Drive{cells.Falling(1.2e-9, 0.5e-9), cells.SteadyHigh(tech)}
		if both {
			drives[1] = cells.Falling(1.2e-9, 0.5e-9)
		}
		tr, err := cfg.MeasureResponse(drives, true, cells.SimOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return tr.Arrival - 1.2e-9
	}
	simRatio := meas(true) / meas(false)
	anaRatio := d2 / d1
	if math.Abs(simRatio-anaRatio) > 0.3 {
		t.Errorf("speed-up ratio: analytical %.2f vs simulated %.2f", anaRatio, simRatio)
	}
}

func TestErrors(t *testing.T) {
	if _, err := (Params{}).Delay(1e-15, 1e-10); err == nil {
		t.Error("zero params should error")
	}
	tech := device.Default05um()
	if _, err := CollapsedNANDRiseDelay(tech, 2, 0, 1e-15, 1e-10); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := CollapsedNANDRiseDelay(tech, 2, 3, 1e-15, 1e-10); err == nil {
		t.Error("k>n should error")
	}
}
