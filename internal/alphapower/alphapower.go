// Package alphapower implements a Sakurai–Newton style alpha-power-law
// analytical delay calculator — the "analytical delay function system"
// class of the paper's Section 2 taxonomy (its reference [13]).
//
// The inverter propagation delay under a saturated input ramp is
//
//	td = tT · (1/2 − (1−vT)/(1+α)) + CL·VDD / (2·ID0)
//
// where tT is the input 0-100% ramp time, vT = VT/VDD, α is the velocity
// saturation index and ID0 the drain current at VGS = VDS = VDD. For the
// reproduction's long-channel square-law devices α = 2 and ID0 follows
// directly from the device parameters.
//
// The package exists for two reasons: (i) it grounds the inverter-collapsing
// baselines physically — collapsing k parallel transistors multiplies ID0 by
// k, which is exactly the mechanism behind the simultaneous-switching
// speed-up the paper models empirically; and (ii) it demonstrates why the
// paper moves beyond this class: the formula knows nothing about input skew,
// so it can only describe the zero-skew corner.
package alphapower

import (
	"fmt"

	"sstiming/internal/device"
)

// Params is one device's alpha-power-law parameter set.
type Params struct {
	// Alpha is the velocity-saturation index (2 for long-channel
	// square-law devices, approaching 1 when fully velocity saturated).
	Alpha float64
	// VT is the threshold voltage magnitude.
	VT float64
	// ID0 is the drain current at VGS = VDS = VDD.
	ID0 float64
	// Vdd is the supply voltage.
	Vdd float64
}

// FromDevice derives the alpha-power parameters of one device at the given
// geometry from the square-law model (α = 2).
func FromDevice(tech *device.Tech, typ device.MOSType, geom device.Geometry) Params {
	p := tech.Params(typ)
	vt := p.VT0
	if typ == device.PMOS {
		vt = -p.VT0
	}
	// Current at VGS = VDS = VDD (saturation for square-law devices).
	ov := tech.Vdd - vt
	id0 := 0.5 * p.KP * geom.W / geom.L * ov * ov * (1 + p.Lambda*tech.Vdd)
	return Params{Alpha: 2, VT: vt, ID0: id0, Vdd: tech.Vdd}
}

// Scale returns the parameters with the drive strength (ID0) multiplied by
// k — the transistor-collapsing operation: k identical devices in parallel.
func (p Params) Scale(k float64) Params {
	p.ID0 *= k
	return p
}

// Delay returns the propagation delay (input 50% to output 50%) for an
// output load cl (farads) and an input 10%-90% transition time tt10_90.
func (p Params) Delay(cl, tt1090 float64) (float64, error) {
	if p.ID0 <= 0 || p.Vdd <= 0 || p.Alpha <= 0 {
		return 0, fmt.Errorf("alphapower: invalid parameters %+v", p)
	}
	tT := tt1090 / 0.8 // full 0-100% ramp time
	vT := p.VT / p.Vdd
	ramp := tT * (0.5 - (1-vT)/(1+p.Alpha))
	drive := cl * p.Vdd / (2 * p.ID0)
	d := ramp + drive
	if d < 0 {
		// Very fast ramps with low thresholds can drive the ramp term
		// negative; the physical delay is dominated by the drive term.
		d = drive
	}
	return d, nil
}

// CollapsedNANDRiseDelay predicts the rising-output delay of an n-input NAND
// when k of its parallel PMOS pull-up transistors switch simultaneously,
// by collapsing them into one k-wide equivalent inverter (the Jun-style
// operation the paper's Section 2 describes). cl is the output load and
// tt1090 the input transition time.
func CollapsedNANDRiseDelay(tech *device.Tech, n, k int, cl, tt1090 float64) (float64, error) {
	if k < 1 || k > n {
		return 0, fmt.Errorf("alphapower: k = %d outside [1, %d]", k, n)
	}
	p := FromDevice(tech, device.PMOS, tech.MinGeom(device.PMOS)).Scale(float64(k))
	// The pull-up must also charge the internal diffusion nodes of the
	// (now off) NMOS stack; lump them into the load.
	stack := float64(n-1) * tech.NMOS.DiffCap(tech.MinGeom(device.NMOS)) * 2
	return p.Delay(cl+stack, tt1090)
}
