package fit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLeastSquaresExactQuadratic(t *testing.T) {
	// y = 2t^2 - 3t + 0.5 must be recovered exactly from >3 samples.
	ts := []float64{0.1, 0.4, 0.7, 1.0, 1.6, 2.2}
	ys := make([]float64, len(ts))
	for i, x := range ts {
		ys[i] = 2*x*x - 3*x + 0.5
	}
	k, st, err := FitQuad(ts, ys)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, -3, 0.5}
	for i := range want {
		if math.Abs(k[i]-want[i]) > 1e-9 {
			t.Errorf("k[%d] = %g, want %g", i, k[i], want[i])
		}
	}
	if st.RMS > 1e-9 {
		t.Errorf("RMS = %g, want ~0", st.RMS)
	}
	if st.R2 < 0.999999 {
		t.Errorf("R2 = %g, want ~1", st.R2)
	}
}

func TestLeastSquaresOverdeterminedNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var rows [][]float64
	var ys []float64
	for i := 0; i < 200; i++ {
		x := rng.Float64() * 3
		rows = append(rows, QuadBasis(x))
		ys = append(ys, 1.5*x*x+0.2*x+4+0.01*rng.NormFloat64())
	}
	k, err := LeastSquares(rows, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k[0]-1.5) > 0.05 || math.Abs(k[1]-0.2) > 0.05 || math.Abs(k[2]-4) > 0.05 {
		t.Errorf("noisy fit off: %v", k)
	}
}

func TestCrossBasisRecoversPaperForm(t *testing.T) {
	// Construct data from the paper's factored D0R form and verify the
	// expanded linear fit reproduces it.
	const (
		k20, k21, k22, k23, k24 = 0.8, 0.1, 0.5, 0.3, 0.05
	)
	f := func(tx, ty float64) float64 {
		return (k20*math.Cbrt(tx)+k21)*(k22*math.Cbrt(ty)+k23) + k24
	}
	var txs, tys, ys []float64
	for _, tx := range []float64{0.1, 0.3, 0.6, 1.0, 1.5} {
		for _, ty := range []float64{0.1, 0.3, 0.6, 1.0, 1.5} {
			txs = append(txs, tx)
			tys = append(tys, ty)
			ys = append(ys, f(tx, ty))
		}
	}
	k, st, err := FitCross(txs, tys, ys)
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxAbs > 1e-9 {
		t.Errorf("max residual = %g, want ~0 (form is exactly representable)", st.MaxAbs)
	}
	// Check a prediction at an off-grid point.
	pred := k[0]*math.Cbrt(0.45)*math.Cbrt(0.8) + k[1]*math.Cbrt(0.45) + k[2]*math.Cbrt(0.8) + k[3]
	if math.Abs(pred-f(0.45, 0.8)) > 1e-9 {
		t.Errorf("off-grid prediction = %g, want %g", pred, f(0.45, 0.8))
	}
}

func TestQuad2Exact(t *testing.T) {
	coef := []float64{0.3, -0.2, 0.7, 1.1, -0.4, 2.0}
	eval := func(tx, ty float64) float64 {
		b := Quad2Basis(tx, ty)
		var s float64
		for i := range b {
			s += b[i] * coef[i]
		}
		return s
	}
	var txs, tys, ys []float64
	for _, tx := range []float64{0.1, 0.5, 0.9, 1.3} {
		for _, ty := range []float64{0.2, 0.6, 1.0, 1.4} {
			txs = append(txs, tx)
			tys = append(tys, ty)
			ys = append(ys, eval(tx, ty))
		}
	}
	k, st, err := FitQuad2(txs, tys, ys)
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxAbs > 1e-9 {
		t.Errorf("max residual = %g, want ~0", st.MaxAbs)
	}
	for i := range coef {
		if math.Abs(k[i]-coef[i]) > 1e-8 {
			t.Errorf("k[%d] = %g, want %g", i, k[i], coef[i])
		}
	}
}

func TestErrorPaths(t *testing.T) {
	if _, err := LeastSquares(nil, nil); err == nil {
		t.Error("expected error for no samples")
	}
	if _, err := LeastSquares([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("expected error for underdetermined system")
	}
	if _, err := LeastSquares([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("expected error for ragged rows")
	}
	if _, err := LeastSquares([][]float64{{1}, {2}}, []float64{1}); err == nil {
		t.Error("expected error for mismatched target length")
	}
	// Degenerate: two identical columns.
	rows := [][]float64{{1, 1}, {2, 2}, {3, 3}}
	if _, err := LeastSquares(rows, []float64{1, 2, 3}); err == nil {
		t.Error("expected ErrSingular for rank-deficient system")
	}
}

func TestLeastSquaresInterpolatesExactlyProperty(t *testing.T) {
	// Property: for any quadratic with bounded coefficients, fitting on a
	// fixed sample grid recovers predictions at arbitrary points.
	f := func(a8, b8, c8 int8) bool {
		a := float64(a8) / 16
		b := float64(b8) / 16
		c := float64(c8) / 16
		ts := []float64{0.1, 0.5, 1.1, 1.7, 2.3}
		ys := make([]float64, len(ts))
		for i, x := range ts {
			ys[i] = a*x*x + b*x + c
		}
		k, _, err := FitQuad(ts, ys)
		if err != nil {
			return false
		}
		const x = 0.77
		pred := k[0]*x*x + k[1]*x + k[2]
		return math.Abs(pred-(a*x*x+b*x+c)) < 1e-7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResidualsEmptyAndPerfect(t *testing.T) {
	if s := Residuals(nil, nil, nil); s.RMS != 0 || s.MaxAbs != 0 {
		t.Errorf("empty residuals nonzero: %+v", s)
	}
	// Constant target: ssTot is zero, R2 should report 1 for perfect fit.
	rows := [][]float64{{1}, {1}, {1}}
	y := []float64{2, 2, 2}
	s := Residuals(rows, y, []float64{2})
	if s.R2 != 1 || s.RMS != 0 {
		t.Errorf("perfect constant fit: %+v", s)
	}
}
