// Package fit provides dense linear least-squares fitting used by the
// characterisation harness to determine the empirical K-coefficients of the
// paper's delay formulas (Section 3.4).
//
// All of the paper's formula families are linear in their unknowns once the
// right basis is chosen:
//
//   - DR(T)        = K10*T^2 + K11*T + K12                     (quadratic)
//   - D0R(Tx,Ty)   = (K20*Tx^(1/3)+K21)(K22*Ty^(1/3)+K23)+K24  (expands to
//     a*x*y + b*x + c*y + d with x = Tx^(1/3), y = Ty^(1/3))
//   - SR(Tx,Ty)    = full quadratic in (Tx, Ty)                (6 terms)
//
// so ordinary least squares over a characterisation grid recovers them.
package fit

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when the normal equations are (numerically)
// singular, usually because the sample set does not span the basis.
var ErrSingular = errors.New("fit: singular system (insufficient or degenerate samples)")

// LeastSquares solves min_k ||A k - y||_2 for the coefficient vector k,
// where A is given row-wise (one row per sample). It uses Householder QR for
// numerical robustness.
func LeastSquares(rows [][]float64, y []float64) ([]float64, error) {
	m := len(rows)
	if m == 0 {
		return nil, fmt.Errorf("fit: no samples")
	}
	n := len(rows[0])
	if n == 0 {
		return nil, fmt.Errorf("fit: empty basis")
	}
	if m < n {
		return nil, fmt.Errorf("fit: %d samples cannot determine %d coefficients", m, n)
	}
	if len(y) != m {
		return nil, fmt.Errorf("fit: %d rows but %d targets", m, len(y))
	}

	// Copy into a working matrix (m x n) and RHS.
	a := make([]float64, m*n)
	for i, r := range rows {
		if len(r) != n {
			return nil, fmt.Errorf("fit: row %d has %d entries, want %d", i, len(r), n)
		}
		copy(a[i*n:(i+1)*n], r)
	}
	b := make([]float64, m)
	copy(b, y)

	// Householder QR: for each column, form the reflector and apply it to
	// the remaining columns and to b.
	for col := 0; col < n; col++ {
		// Norm of the column below (and including) the diagonal.
		var norm float64
		for i := col; i < m; i++ {
			norm += a[i*n+col] * a[i*n+col]
		}
		norm = math.Sqrt(norm)
		if norm < 1e-300 {
			return nil, ErrSingular
		}
		alpha := -norm
		if a[col*n+col] < 0 {
			alpha = norm
		}
		// v = x - alpha*e1 (stored temporarily).
		v := make([]float64, m-col)
		v[0] = a[col*n+col] - alpha
		for i := col + 1; i < m; i++ {
			v[i-col] = a[i*n+col]
		}
		var vv float64
		for _, t := range v {
			vv += t * t
		}
		if vv < 1e-300 {
			// Column already triangular; nothing to do.
			continue
		}
		// Apply H = I - 2 v v^T / (v^T v) to A[:, col:] and b.
		for c := col; c < n; c++ {
			var dot float64
			for i := col; i < m; i++ {
				dot += v[i-col] * a[i*n+c]
			}
			f := 2 * dot / vv
			for i := col; i < m; i++ {
				a[i*n+c] -= f * v[i-col]
			}
		}
		var dot float64
		for i := col; i < m; i++ {
			dot += v[i-col] * b[i]
		}
		f := 2 * dot / vv
		for i := col; i < m; i++ {
			b[i] -= f * v[i-col]
		}
	}

	// Back substitution on the upper-triangular R (stored in a).
	k := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		diag := a[r*n+r]
		if math.Abs(diag) < 1e-12*float64(n) {
			return nil, ErrSingular
		}
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r*n+c] * k[c]
		}
		k[r] = sum / diag
	}
	return k, nil
}

// Stats summarises the quality of a fit.
type Stats struct {
	RMS    float64 // root mean square residual
	MaxAbs float64 // largest absolute residual
	R2     float64 // coefficient of determination
}

// Residuals computes fit-quality statistics for coefficients k over the
// given samples.
func Residuals(rows [][]float64, y []float64, k []float64) Stats {
	var s Stats
	if len(rows) == 0 {
		return s
	}
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))

	var ssRes, ssTot float64
	for i, r := range rows {
		var pred float64
		for j, c := range r {
			pred += c * k[j]
		}
		res := y[i] - pred
		ssRes += res * res
		ssTot += (y[i] - mean) * (y[i] - mean)
		if a := math.Abs(res); a > s.MaxAbs {
			s.MaxAbs = a
		}
	}
	s.RMS = math.Sqrt(ssRes / float64(len(rows)))
	if ssTot > 0 {
		s.R2 = 1 - ssRes/ssTot
	} else {
		s.R2 = 1
	}
	return s
}

// QuadBasis returns the quadratic single-variable basis row [t^2, t, 1].
func QuadBasis(t float64) []float64 { return []float64{t * t, t, 1} }

// CrossBasisPaper returns the paper's exact D0R basis row
// [x*y, x, y, 1] with x = tx^(1/3), y = ty^(1/3) — the expansion of
// (K20*x+K21)(K22*y+K23)+K24.
func CrossBasisPaper(tx, ty float64) []float64 {
	x := math.Cbrt(tx)
	y := math.Cbrt(ty)
	return []float64{x * y, x, y, 1}
}

// CrossBasis returns the extended D0R basis row used by default in this
// reproduction: the paper's four product-form terms plus quadratic
// correction terms in cube-root space,
// [x*y, x, y, 1, x^2, y^2, x^2*y, x*y^2]. The corrections capture the
// saturation of the zero-skew delay surface in the weaker input that the
// square-law simulator exhibits; zeroing them recovers the paper's exact
// form (see DESIGN.md and the D0-basis ablation bench).
func CrossBasis(tx, ty float64) []float64 {
	x := math.Cbrt(tx)
	y := math.Cbrt(ty)
	return []float64{x * y, x, y, 1, x * x, y * y, x * x * y, x * y * y}
}

// Quad2Basis returns the full two-variable quadratic basis row
// [tx^2, ty^2, tx*ty, tx, ty, 1] used for the SR skew-threshold formula.
func Quad2Basis(tx, ty float64) []float64 {
	return []float64{tx * tx, ty * ty, tx * ty, tx, ty, 1}
}

// FitQuad fits y = a*t^2 + b*t + c and returns (coefficients, stats).
func FitQuad(ts, ys []float64) ([]float64, Stats, error) {
	rows := make([][]float64, len(ts))
	for i, t := range ts {
		rows[i] = QuadBasis(t)
	}
	k, err := LeastSquares(rows, ys)
	if err != nil {
		return nil, Stats{}, err
	}
	return k, Residuals(rows, ys, k), nil
}

// FitCross fits the extended D0R form over (tx, ty) samples.
func FitCross(txs, tys, ys []float64) ([]float64, Stats, error) {
	rows := make([][]float64, len(txs))
	for i := range txs {
		rows[i] = CrossBasis(txs[i], tys[i])
	}
	k, err := LeastSquares(rows, ys)
	if err != nil {
		return nil, Stats{}, err
	}
	return k, Residuals(rows, ys, k), nil
}

// FitCrossPaper fits the paper's exact 4-term D0R form.
func FitCrossPaper(txs, tys, ys []float64) ([]float64, Stats, error) {
	rows := make([][]float64, len(txs))
	for i := range txs {
		rows[i] = CrossBasisPaper(txs[i], tys[i])
	}
	k, err := LeastSquares(rows, ys)
	if err != nil {
		return nil, Stats{}, err
	}
	return k, Residuals(rows, ys, k), nil
}

// FitQuad2 fits the full two-variable quadratic over (tx, ty) samples.
func FitQuad2(txs, tys, ys []float64) ([]float64, Stats, error) {
	rows := make([][]float64, len(txs))
	for i := range txs {
		rows[i] = Quad2Basis(txs[i], tys[i])
	}
	k, err := LeastSquares(rows, ys)
	if err != nil {
		return nil, Stats{}, err
	}
	return k, Residuals(rows, ys, k), nil
}
