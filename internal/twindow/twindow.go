// Package twindow holds the min-max timing-window types and the worst-case
// corner-identification arithmetic (the paper's Sections 4.2 and 5.2) shared
// by static timing analysis (package sta), incremental timing refinement
// (package itr) and the persistent timing graph (package tgraph).
//
// Historically sta and itr each carried a private copy of the per-gate
// propagation rules; the incremental-timing refactor moved the single source
// of truth here so that a full analysis, a from-scratch refinement and an
// incremental dirty-cone re-convergence all evaluate byte-identical
// floating-point expressions per gate. Any change to a corner rule now
// changes every consumer at once — there is no second copy to drift.
//
// The unit of work is PropagateGate: given the already-settled LineInfos of
// a gate's inputs, the gate's implied nine-valued output value and the cell
// model, it computes the output LineInfo. Pure STA is the special case in
// which every line carries the unspecified value xx (every transition state
// is SMaybe), exactly as the paper defines STA as the S_tr = 0 special case
// of ITR.
package twindow

import (
	"fmt"
	"math"

	"sstiming/internal/core"
	"sstiming/internal/netlist"
	"sstiming/internal/nineval"
)

// Mode selects the delay model used by window propagation.
type Mode int

const (
	// ModeProposed uses the paper's simultaneous-switching model.
	ModeProposed Mode = iota
	// ModePinToPin uses the conventional pin-to-pin model.
	ModePinToPin
)

// String names the mode.
func (m Mode) String() string {
	if m == ModePinToPin {
		return "pin-to-pin"
	}
	return "proposed"
}

// Window is the per-direction timing window of one line: earliest/latest
// arrival and shortest/longest transition time, in seconds (Figure 7).
type Window struct {
	AS, AL float64 // arrival: smallest, largest
	TS, TL float64 // transition time: smallest, largest
}

// Valid reports structural sanity (AS <= AL, TS <= TL).
func (w Window) Valid() bool {
	return w.AS <= w.AL+1e-15 && w.TS <= w.TL+1e-15 && w.TS >= 0
}

// PITiming describes the assumed stimulus at primary inputs.
type PITiming struct {
	ArrivalEarly, ArrivalLate float64
	TransShort, TransLong     float64
}

// DefaultPITiming is the default stimulus: transitions released at t = 0
// with a 0.2 ns input ramp.
func DefaultPITiming() PITiming {
	return PITiming{ArrivalEarly: 0, ArrivalLate: 0, TransShort: 0.2e-9, TransLong: 0.2e-9}
}

// Window returns the stimulus as a timing window.
func (p PITiming) Window() Window {
	return Window{AS: p.ArrivalEarly, AL: p.ArrivalLate, TS: p.TransShort, TL: p.TransLong}
}

// LineInfo is the full timing state of one line: the implied nine-valued
// value, the derived transition states, and the directional windows (valid
// only when the corresponding state is not SNo).
type LineInfo struct {
	// Value is the implied nine-valued logic value.
	Value nineval.Value
	// SRise and SFall are the transition states.
	SRise, SFall nineval.State
	// Rise and Fall are the windows; valid only when the corresponding
	// state is not SNo (HasRise/HasFall).
	Rise, Fall Window
}

// HasRise reports whether the rise window is defined.
func (li *LineInfo) HasRise() bool { return li.SRise != nineval.SNo }

// HasFall reports whether the fall window is defined.
func (li *LineInfo) HasFall() bool { return li.SFall != nineval.SNo }

// PILine builds the LineInfo of a primary input from its stimulus and
// implied value.
func PILine(v nineval.Value, p PITiming) LineInfo {
	w := p.Window()
	return LineInfo{Value: v, SRise: v.StateRise(), SFall: v.StateFall(), Rise: w, Fall: w}
}

// PropagateGate computes one gate's output LineInfo from the already-settled
// LineInfos of its inputs under the implied output value outV. It is a pure
// function of its arguments — the invariant the incremental timing graph's
// byte-identical-to-full-recompute guarantee rests on.
func PropagateGate(cell *core.CellModel, kind netlist.GateKind, ins []*LineInfo, outV nineval.Value, extraLoad float64, mode Mode, ncExt bool) (LineInfo, error) {
	li := LineInfo{Value: outV, SRise: outV.StateRise(), SFall: outV.StateFall()}
	var err error
	switch kind {
	case netlist.Inv:
		if li.HasRise() {
			li.Rise, err = propagateSingle(cell, ins[0], false, true, extraLoad)
		}
		if err == nil && li.HasFall() {
			li.Fall, err = propagateSingle(cell, ins[0], true, false, extraLoad)
		}
	case netlist.Buf:
		// Buffers borrow the inverter cell's timing with non-inverting
		// direction mapping (library approximation, see package sta doc).
		if li.HasRise() {
			li.Rise, err = propagateSingle(cell, ins[0], true, true, extraLoad)
		}
		if err == nil && li.HasFall() {
			li.Fall, err = propagateSingle(cell, ins[0], false, false, extraLoad)
		}
	case netlist.Nand:
		if li.HasRise() {
			li.Rise, err = propagateCtrl(cell, ins, false, extraLoad, mode)
		}
		if err == nil && li.HasFall() {
			li.Fall, err = propagateNonCtrl(cell, ins, true, extraLoad, mode, ncExt)
		}
	case netlist.Nor:
		if li.HasFall() {
			li.Fall, err = propagateCtrl(cell, ins, true, extraLoad, mode)
		}
		if err == nil && li.HasRise() {
			li.Rise, err = propagateNonCtrl(cell, ins, false, extraLoad, mode, ncExt)
		}
	default:
		err = fmt.Errorf("unsupported gate kind %v", kind)
	}
	if err != nil {
		return LineInfo{}, err
	}
	return li, nil
}

// propagateSingle handles one-input cells. inRising selects which input
// direction drives this output direction; ctrl is true when the arc uses the
// cell's CtrlPins table.
func propagateSingle(cell *core.CellModel, in *LineInfo, inRising, ctrl bool, extraLoad float64) (Window, error) {
	var w Window
	var inState nineval.State
	if inRising {
		inState = in.SRise
		w = in.Rise
	} else {
		inState = in.SFall
		w = in.Fall
	}
	if inState == nineval.SNo {
		return Window{}, fmt.Errorf("output may transition but input cannot (state inconsistency)")
	}
	pins := cell.NonCtrlPins
	if ctrl {
		pins = cell.CtrlPins
	}
	p := &pins[0]
	loadD := p.DelayLoadSlope * extraLoad
	loadT := p.TransLoadSlope * extraLoad
	_, dMin := p.Delay.MinOver(w.TS, w.TL)
	_, dMax := p.Delay.MaxOver(w.TS, w.TL)
	_, tMin := p.Trans.MinOver(w.TS, w.TL)
	_, tMax := p.Trans.MaxOver(w.TS, w.TL)
	return Window{
		AS: w.AS + dMin + loadD,
		AL: w.AL + dMax + loadD,
		TS: tMin + loadT,
		TL: tMax + loadT,
	}, nil
}

// ctrlInput captures one input that can make a transition in the direction
// under consideration.
type ctrlInput struct {
	pin      int
	w        Window
	definite bool
}

// collect returns the inputs whose transition in the given direction is not
// ruled out, with their windows.
func collect(ins []*LineInfo, rising bool) []ctrlInput {
	var out []ctrlInput
	for i, li := range ins {
		var s nineval.State
		var w Window
		if rising {
			s, w = li.SRise, li.Rise
		} else {
			s, w = li.SFall, li.Fall
		}
		if s == nineval.SNo {
			continue
		}
		out = append(out, ctrlInput{pin: i, w: w, definite: s == nineval.SYes})
	}
	return out
}

// propagateCtrl computes the to-controlling output window (rising for NAND,
// falling for NOR) under transition states, per Sections 4.2 and 5.2.
// ctrlRising is the direction of the input transitions (falling for NAND,
// rising for NOR). Pure STA is the all-SMaybe special case.
func propagateCtrl(cell *core.CellModel, ins []*LineInfo, ctrlRising bool, extraLoad float64, mode Mode) (Window, error) {
	allowed := collect(ins, ctrlRising)
	if len(allowed) == 0 {
		return Window{}, fmt.Errorf("to-controlling response possible but no input can transition")
	}

	var out Window
	out.AS = math.Inf(1)
	out.TS = math.Inf(1)
	out.TL = math.Inf(-1)

	single := func(a ctrlInput) (dMin, dMax, tMin, tMax float64) {
		p := &cell.CtrlPins[a.pin]
		loadD := p.DelayLoadSlope * extraLoad
		loadT := p.TransLoadSlope * extraLoad
		_, dMin = p.Delay.MinOver(a.w.TS, a.w.TL)
		_, dMax = p.Delay.MaxOver(a.w.TS, a.w.TL)
		_, tMin = p.Trans.MinOver(a.w.TS, a.w.TL)
		_, tMax = p.Trans.MaxOver(a.w.TS, a.w.TL)
		return dMin + loadD, dMax + loadD, tMin + loadT, tMax + loadT
	}

	// Latest arrival (Table 1's A..L rules): definite switchers bound how
	// late the output can switch — take the min over their worst-case
	// corners; with no definite switcher, the slowest potential single
	// switcher is the bound.
	var definite []ctrlInput
	for _, a := range allowed {
		if a.definite {
			definite = append(definite, a)
		}
	}
	if len(definite) > 0 {
		out.AL = math.Inf(1)
		for _, a := range definite {
			_, dMax, _, _ := single(a)
			if v := a.w.AL + dMax; v < out.AL {
				out.AL = v
			}
		}
	} else {
		out.AL = math.Inf(-1)
		for _, a := range allowed {
			_, dMax, _, _ := single(a)
			if v := a.w.AL + dMax; v > out.AL {
				out.AL = v
			}
		}
	}

	// Earliest arrival and transition bounds over the allowed set
	// (single-input candidates; what remains in pin-to-pin mode).
	for _, a := range allowed {
		dMin, _, tMin, tMax := single(a)
		if v := a.w.AS + dMin; v < out.AS {
			out.AS = v
		}
		if tMin < out.TS {
			out.TS = tMin
		}
		if tMax > out.TL {
			out.TL = tMax
		}
	}

	if mode == ModeProposed && len(allowed) >= 2 {
		// Earliest arrival: pairwise simultaneous switching at the
		// earliest-arrival skew, minimised over the four transition-time
		// corners (Fig. 8's A_R,S rule). With three or more inputs all
		// potentially switching δ-simultaneously, the extended model's
		// n-way speed-up factor lower-bounds the delay further.
		multi := 1.0
		if k := len(allowed); k >= 3 && len(cell.MultiFactor) >= k-2 {
			if f := cell.MultiFactor[k-3]; f > 0 && f < 1 {
				multi = f
			}
		}
		for _, ax := range allowed {
			for _, ay := range allowed {
				if ax.pin == ay.pin {
					continue
				}
				skew := ay.w.AS - ax.w.AS
				base := math.Min(ax.w.AS, ay.w.AS)
				for _, tx := range []float64{ax.w.TS, ax.w.TL} {
					for _, ty := range []float64{ay.w.TS, ay.w.TL} {
						d := cell.DelayCtrl2(ax.pin, ay.pin, tx, ty, skew, extraLoad)
						if v := base + d*multi; v < out.AS {
							out.AS = v
						}
					}
				}
				// Shortest transition: evaluate at the achievable skew
				// closest to SK_t,min (Fig. 8's T_R,S rule).
				lo := ay.w.AS - ax.w.AL
				hi := ay.w.AL - ax.w.AS
				skm := cell.SKminAt(ax.pin, ay.pin, ax.w.TS, ay.w.TS)
				if skm < lo {
					skm = lo
				}
				if skm > hi {
					skm = hi
				}
				if tv := cell.TransCtrl2(ax.pin, ay.pin, ax.w.TS, ay.w.TS, skm, extraLoad); tv < out.TS {
					out.TS = tv
				}
			}
		}
	}
	return out, nil
}

// propagateNonCtrl computes the to-non-controlling output window (falling
// for NAND, rising for NOR) under transition states. ncRising is the
// direction of the input transitions (rising for NAND, falling for NOR).
// The earliest arrival combines with max over definite switchers (they all
// must complete before the output can respond) and min otherwise; with the
// NC extension, pairs of inputs that can both transition widen the latest
// corners through the Λ-shape surfaces.
func propagateNonCtrl(cell *core.CellModel, ins []*LineInfo, ncRising bool, extraLoad float64, mode Mode, ncExt bool) (Window, error) {
	allowed := collect(ins, ncRising)
	if len(allowed) == 0 {
		return Window{}, fmt.Errorf("to-non-controlling response possible but no input can transition")
	}

	var out Window
	out.AL = math.Inf(-1)
	out.TS = math.Inf(1)
	out.TL = math.Inf(-1)

	single := func(a ctrlInput) (dMin, dMax, tMin, tMax float64) {
		p := &cell.NonCtrlPins[a.pin]
		loadD := p.DelayLoadSlope * extraLoad
		loadT := p.TransLoadSlope * extraLoad
		_, dMin = p.Delay.MinOver(a.w.TS, a.w.TL)
		_, dMax = p.Delay.MaxOver(a.w.TS, a.w.TL)
		_, tMin = p.Trans.MinOver(a.w.TS, a.w.TL)
		_, tMax = p.Trans.MaxOver(a.w.TS, a.w.TL)
		return dMin + loadD, dMax + loadD, tMin + loadT, tMax + loadT
	}

	// Earliest arrival: every definite switcher must complete (max over
	// them at their earliest corners); with no definite switcher, the
	// fastest single suffices.
	var definite []ctrlInput
	for _, a := range allowed {
		if a.definite {
			definite = append(definite, a)
		}
	}
	if len(definite) > 0 {
		out.AS = math.Inf(-1)
		for _, a := range definite {
			dMin, _, _, _ := single(a)
			if v := a.w.AS + dMin; v > out.AS {
				out.AS = v
			}
		}
	} else {
		out.AS = math.Inf(1)
		for _, a := range allowed {
			dMin, _, _, _ := single(a)
			if v := a.w.AS + dMin; v < out.AS {
				out.AS = v
			}
		}
	}

	for _, a := range allowed {
		_, dMax, tMin, tMax := single(a)
		if v := a.w.AL + dMax; v > out.AL {
			out.AL = v
		}
		if tMin < out.TS {
			out.TS = tMin
		}
		if tMax > out.TL {
			out.TL = tMax
		}
	}

	if ncExt && mode == ModeProposed && len(allowed) >= 2 && len(cell.NCPairs) > 0 {
		// Worst-case simultaneous to-non-controlling corner: both
		// transitions at their latest arrivals, skew as close to the Λ
		// peak (zero) as the windows allow, slowest transition times.
		for _, ax := range allowed {
			for _, ay := range allowed {
				if ax.pin == ay.pin {
					continue
				}
				lo := ay.w.AS - ax.w.AL
				hi := ay.w.AL - ax.w.AS
				skew := 0.0
				if skew < lo {
					skew = lo
				}
				if skew > hi {
					skew = hi
				}
				base := math.Max(ax.w.AL, ay.w.AL)
				for _, tx := range []float64{ax.w.TS, ax.w.TL} {
					for _, ty := range []float64{ay.w.TS, ay.w.TL} {
						d := cell.DelayNonCtrl2(ax.pin, ay.pin, tx, ty, skew, extraLoad)
						if v := base + d; v > out.AL {
							out.AL = v
						}
						if tv := cell.TransNonCtrl2(ax.pin, ay.pin, tx, ty, skew, extraLoad); tv > out.TL {
							out.TL = tv
						}
					}
				}
			}
		}
	}
	return out, nil
}
