package store

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"sstiming/internal/core"
)

// The journal is the campaign's write-ahead log: one fsynced, CRC-framed
// record per completed cell, appended as soon as the cell's characterisation
// finishes. A SIGKILL mid-campaign therefore costs at most the cell that was
// in flight; everything already journaled replays on -resume.
//
// On-disk layout (<out>.journal/):
//
//	meta.json    — campaign fingerprint (schema version + option hash);
//	               a resume whose options differ is refused with ErrStale.
//	cells.waj    — append-only records:
//	               "waj1 <payload-len> <crc32c-hex>\n" + payload + "\n"
//	               where payload is the compact JSON of one core.CellModel
//	               (health record included). The trailing record may be torn
//	               by a crash; replay verifies length and CRC, keeps the
//	               valid prefix and truncates the tail before new appends.

const (
	journalMetaName  = "meta.json"
	journalCellsName = "cells.waj"
	recordMagic      = "waj1"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Fingerprint pins the option set of one characterisation campaign. Two runs
// with equal fingerprints produce byte-identical libraries, so journal
// records are safe to splice between them; anything else is ErrStale.
type Fingerprint struct {
	SchemaVersion int
	Tech          string
	Vdd           float64
	Grid          []float64
	Cells         []string
	TStep         float64
	SkewTol       float64
	SkipPairs     bool
	PaperExactD0  bool
	NCPairs       bool
}

// Hash returns the canonical digest of the fingerprint.
func (fp Fingerprint) Hash() string {
	fp.SchemaVersion = SchemaVersion
	b, err := json.Marshal(fp)
	if err != nil {
		// Fingerprint is plain data; Marshal cannot fail. Keep the
		// signature clean for callers.
		panic("store: marshalling fingerprint: " + err.Error())
	}
	return hashBytes(b)
}

// Journal is an open campaign write-ahead log. Append is safe for concurrent
// use (cell characterisations finish on pool workers).
type Journal struct {
	dir string

	mu sync.Mutex
	f  *os.File
}

// CreateJournal starts a fresh campaign journal at dir, discarding any
// previous journal there (a new campaign invalidates old checkpoints).
func CreateJournal(dir string, fp Fingerprint) (*Journal, error) {
	if err := os.RemoveAll(dir); err != nil {
		return nil, fmt.Errorf("store: clearing journal %s: %w", dir, err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating journal %s: %w", dir, err)
	}
	meta, err := json.MarshalIndent(map[string]any{
		"SchemaVersion": SchemaVersion,
		"Fingerprint":   fp.Hash(),
	}, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("store: encoding journal meta: %w", err)
	}
	if err := writeFileSync(filepath.Join(dir, journalMetaName), append(meta, '\n')); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, journalCellsName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening journal records: %w", err)
	}
	syncDir(dir)
	return &Journal{dir: dir, f: f}, nil
}

// ResumeJournal reopens an existing campaign journal, verifies its
// fingerprint against the requested options, replays every valid record and
// truncates any torn tail so subsequent appends extend the valid prefix.
// The replayed models are keyed by cell name (later records win, though a
// campaign writes each cell at most once).
func ResumeJournal(dir string, fp Fingerprint) (*Journal, map[string]*core.CellModel, error) {
	metaBytes, err := os.ReadFile(filepath.Join(dir, journalMetaName))
	if err != nil {
		return nil, nil, fmt.Errorf("%w: journal %s has no readable meta: %v", ErrStale, dir, err)
	}
	var meta struct {
		SchemaVersion int
		Fingerprint   string
	}
	if err := json.Unmarshal(metaBytes, &meta); err != nil {
		return nil, nil, fmt.Errorf("%w: journal meta is not valid JSON: %v", ErrCorrupt, err)
	}
	if meta.SchemaVersion != SchemaVersion {
		return nil, nil, fmt.Errorf("%w: journal schema %d, this build reads %d",
			ErrSchemaMismatch, meta.SchemaVersion, SchemaVersion)
	}
	if meta.Fingerprint != fp.Hash() {
		return nil, nil, fmt.Errorf("%w: journal was written by a campaign with different options "+
			"(grid/cells/tech/solver settings changed); rerun without -resume", ErrStale)
	}

	path := filepath.Join(dir, journalCellsName)
	models, validLen, err := replayRecords(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: reopening journal records: %w", err)
	}
	// Drop the torn tail (if any) before appending new records after the
	// valid prefix.
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: truncating torn journal tail: %w", err)
	}
	if _, err := f.Seek(validLen, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: seeking journal: %w", err)
	}
	return &Journal{dir: dir, f: f}, models, nil
}

// ReplayJournal replays a campaign journal read-only: the meta is verified
// against the fingerprint and every valid record is returned, but the torn
// tail (if any) is left untouched and the journal stays appendable by its
// owner. This is the safe way to salvage the work of a journal another
// writer may still hold — a sharded campaign reassigning a shard whose
// previous worker is merely hung, not dead, must not truncate a file that
// worker could still be appending to.
func ReplayJournal(dir string, fp Fingerprint) (map[string]*core.CellModel, error) {
	metaBytes, err := os.ReadFile(filepath.Join(dir, journalMetaName))
	if err != nil {
		return nil, fmt.Errorf("%w: journal %s has no readable meta: %v", ErrStale, dir, err)
	}
	var meta struct {
		SchemaVersion int
		Fingerprint   string
	}
	if err := json.Unmarshal(metaBytes, &meta); err != nil {
		return nil, fmt.Errorf("%w: journal meta is not valid JSON: %v", ErrCorrupt, err)
	}
	if meta.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("%w: journal schema %d, this build reads %d",
			ErrSchemaMismatch, meta.SchemaVersion, SchemaVersion)
	}
	if meta.Fingerprint != fp.Hash() {
		return nil, fmt.Errorf("%w: journal was written by a campaign with different options", ErrStale)
	}
	models, _, err := replayRecords(filepath.Join(dir, journalCellsName))
	return models, err
}

// replayRecords scans the record file via ScanFrames, returning every model
// whose frame verifies (length and CRC) and the byte length of the valid
// prefix. A torn or corrupt frame ends the replay: by the append-then-fsync
// discipline only the final record can be torn, and anything after
// unreadable bytes is unattributable anyway.
func replayRecords(path string) (map[string]*core.CellModel, int64, error) {
	models := make(map[string]*core.CellModel)
	valid, err := ScanFrames(path, func(payload []byte) bool {
		var m core.CellModel
		if err := json.Unmarshal(payload, &m); err != nil || m.Name == "" {
			return false // CRC ok but payload undecodable: writer bug, stop trusting
		}
		if err := m.Validate(); err != nil {
			return false
		}
		models[m.Name] = &m
		return true
	})
	if err != nil {
		return nil, 0, err
	}
	return models, valid, nil
}

// Append journals one completed cell: compact JSON payload framed by a
// length + CRC header, flushed with fsync before returning. Once Append
// returns, the cell survives any crash.
func (j *Journal) Append(m *core.CellModel) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("store: encoding journal record for %q: %w", m.Name, err)
	}
	frame := EncodeFrame(payload)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("store: journal %s is closed", j.dir)
	}
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("store: appending journal record for %q: %w", m.Name, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("store: syncing journal record for %q: %w", m.Name, err)
	}
	return nil
}

// Close closes the record file (further Appends fail).
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// Remove closes the journal and deletes its directory — the campaign
// published its artefact, so the checkpoints are spent.
func (j *Journal) Remove() error {
	if err := j.Close(); err != nil {
		return err
	}
	return os.RemoveAll(j.dir)
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// writeFileSync writes bytes to path and fsyncs before closing.
func writeFileSync(path string, b []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating %s: %w", path, err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return fmt.Errorf("store: writing %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: syncing %s: %w", path, err)
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames and creates inside it are durable.
// Best effort: some filesystems refuse directory fsync; the data files
// themselves are already synced.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
