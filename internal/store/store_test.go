package store_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"sstiming/internal/core"
	"sstiming/internal/engine"
	"sstiming/internal/prechar"
	"sstiming/internal/store"
)

// publish writes the embedded pre-characterised library to a temp dir
// through the store and returns the artefact path.
func publish(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "lib.json")
	if _, err := store.WriteLibrary(path, prechar.MustLibrary(), nil, true); err != nil {
		t.Fatal(err)
	}
	return path
}

// corruptCell flips one mantissa digit inside the named cell's JSON span —
// still valid JSON, still a decodable model, just a silently different
// timing value. Exactly the corruption a checksum must catch.
func corruptCell(t *testing.T, b []byte, cell string) []byte {
	t.Helper()
	i := bytes.Index(b, []byte(`"`+cell+`": {`))
	if i < 0 {
		t.Fatalf("cell %s not found in library bytes", cell)
	}
	rel := bytes.IndexByte(b[i:], '.')
	if rel < 0 {
		t.Fatalf("no numeric literal after cell %s", cell)
	}
	j := i + rel + 1
	if b[j] < '0' || b[j] > '9' {
		t.Fatalf("byte after '.' is %q, not a digit", b[j])
	}
	nb := bytes.Clone(b)
	nb[j] = '0' + (nb[j]-'0'+1)%10
	return nb
}

func TestWriteLoadRoundTrip(t *testing.T) {
	path := publish(t)
	if _, err := os.Stat(store.ManifestPath(path)); err != nil {
		t.Fatalf("sidecar manifest missing: %v", err)
	}
	lib, rep, err := store.LoadFile(path, store.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := prechar.MustLibrary()
	if len(lib.Cells) != len(want.Cells) {
		t.Fatalf("loaded %d cells, want %d", len(lib.Cells), len(want.Cells))
	}
	if rep.Verified != len(want.Cells) || len(rep.Quarantined) != 0 || rep.Unverified || rep.Degraded() {
		t.Fatalf("round-trip report = %+v, want all verified", rep)
	}
	if lib.TechName != want.TechName || lib.Vdd != want.Vdd {
		t.Fatalf("header %q/%g, want %q/%g", lib.TechName, lib.Vdd, want.TechName, want.Vdd)
	}
}

func TestMissingManifestTaxonomy(t *testing.T) {
	path := publish(t)
	if err := os.Remove(store.ManifestPath(path)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.LoadFile(path, store.LoadOptions{}); !errors.Is(err, store.ErrNoManifest) {
		t.Fatalf("load without manifest = %v, want ErrNoManifest", err)
	}
	if _, _, err := store.LoadFile(path, store.LoadOptions{Strict: true, AllowUnverified: true}); !errors.Is(err, store.ErrNoManifest) {
		t.Fatalf("strict load without manifest = %v, want ErrNoManifest", err)
	}
	lib, rep, err := store.LoadFile(path, store.LoadOptions{AllowUnverified: true})
	if err != nil {
		t.Fatalf("legacy load = %v", err)
	}
	if !rep.Unverified || len(lib.Cells) == 0 {
		t.Fatalf("legacy load report %+v with %d cells, want Unverified", rep, len(lib.Cells))
	}
}

func TestSchemaMismatch(t *testing.T) {
	path := publish(t)
	manPath := store.ManifestPath(path)
	b, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	m["SchemaVersion"] = 99
	nb, _ := json.Marshal(m)
	if err := os.WriteFile(manPath, nb, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.LoadFile(path, store.LoadOptions{}); !errors.Is(err, store.ErrSchemaMismatch) {
		t.Fatalf("load with schema 99 = %v, want ErrSchemaMismatch", err)
	}
}

func TestCorruptManifestTaxonomy(t *testing.T) {
	path := publish(t)
	for name, man := range map[string]string{
		"garbage":  "not json at all",
		"empty":    `{"SchemaVersion":1,"LibrarySHA256":"ab","Cells":{}}`,
		"hashless": `{"SchemaVersion":1,"Cells":{"INV":"ab"}}`,
	} {
		if err := os.WriteFile(store.ManifestPath(path), []byte(man), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := store.LoadFile(path, store.LoadOptions{}); !errors.Is(err, store.ErrCorrupt) {
			t.Errorf("%s manifest: load = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestTruncatedLibraryIsCorrupt(t *testing.T) {
	path := publish(t)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.LoadFile(path, store.LoadOptions{}); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("truncated library load = %v, want ErrCorrupt", err)
	}
}

func TestSingleCellCorruptionQuarantinesWithFallback(t *testing.T) {
	path := publish(t)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, corruptCell(t, b, "NAND3"), 0o644); err != nil {
		t.Fatal(err)
	}

	met := engine.NewMetrics()
	lib, rep, err := store.LoadFile(path, store.LoadOptions{Metrics: met})
	if err != nil {
		t.Fatalf("degraded load failed outright: %v", err)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0].Cell != "NAND3" {
		t.Fatalf("quarantined = %+v, want exactly NAND3", rep.Quarantined)
	}
	if !rep.Quarantined[0].Fallback {
		t.Fatalf("NAND3 quarantined without analytic fallback: %s", rep.Quarantined[0])
	}
	if !rep.Degraded() {
		t.Fatal("Report.Degraded() = false after quarantine")
	}
	if rep.Verified != len(prechar.MustLibrary().Cells)-1 {
		t.Fatalf("Verified = %d, want all but one", rep.Verified)
	}
	if got := met.Get(engine.StoreQuarantined); got != 1 {
		t.Fatalf("store/quarantined_cells = %d, want 1", got)
	}
	m := lib.Cells["NAND3"]
	if m == nil || m.N != 3 || len(m.Pairs) != 6 {
		t.Fatalf("fallback NAND3 model malformed: %+v", m)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("fallback NAND3 does not validate: %v", err)
	}
	// The untouched cells are the characterised ones, bit for bit.
	wantHash, _ := json.Marshal(prechar.MustLibrary().Cells["INV"])
	gotHash, _ := json.Marshal(lib.Cells["INV"])
	if !bytes.Equal(wantHash, gotHash) {
		t.Fatal("verified cell INV drifted from the published model")
	}
}

func TestStrictRefusesCorruptCell(t *testing.T) {
	path := publish(t)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, corruptCell(t, b, "NOR2"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = store.LoadFile(path, store.LoadOptions{Strict: true})
	if !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("strict load of corrupt library = %v, want ErrCorrupt", err)
	}
}

func TestManifestFromDifferentRunIsStale(t *testing.T) {
	path := publish(t)
	// Re-manifest against a library whose every cell differs (RefLoad
	// nudged), as if a crash paired an old library with a new manifest.
	other := reencode(t, prechar.MustLibrary())
	for _, m := range other.Cells {
		m.RefLoad *= 1.5
	}
	otherBytes, err := store.EncodeLibrary(other)
	if err != nil {
		t.Fatal(err)
	}
	man, err := store.BuildManifest(other, otherBytes, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	manBytes, err := store.EncodeManifest(man)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(store.ManifestPath(path), manBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.LoadFile(path, store.LoadOptions{}); !errors.Is(err, store.ErrStale) {
		t.Fatalf("mismatched pair load = %v, want ErrStale", err)
	}
}

func TestUnmanifestedCellNeverServed(t *testing.T) {
	path := publish(t)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(b, &raw); err != nil {
		t.Fatal(err)
	}
	var cells map[string]json.RawMessage
	if err := json.Unmarshal(raw["Cells"], &cells); err != nil {
		t.Fatal(err)
	}
	cells["SMUGGLED"] = cells["INV"]
	raw["Cells"], _ = json.Marshal(cells)
	nb, _ := json.Marshal(raw)
	if err := os.WriteFile(path, nb, 0o644); err != nil {
		t.Fatal(err)
	}

	lib, rep, err := store.LoadFile(path, store.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := lib.Cells["SMUGGLED"]; ok {
		t.Fatal("unmanifested cell was served")
	}
	found := false
	for _, q := range rep.Quarantined {
		if q.Cell == "SMUGGLED" && !q.Fallback {
			found = true
		}
	}
	if !found {
		t.Fatalf("unmanifested cell not quarantined: %+v", rep.Quarantined)
	}
	if _, _, err := store.LoadFile(path, store.LoadOptions{Strict: true}); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("strict load with smuggled cell = %v, want ErrCorrupt", err)
	}
}

// reencode deep-copies a library through its JSON form.
func reencode(t *testing.T, lib *core.Library) *core.Library {
	t.Helper()
	b, err := store.EncodeLibrary(lib)
	if err != nil {
		t.Fatal(err)
	}
	out, err := core.LoadLibrary(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return out
}
