package store

import (
	"bufio"
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// The CRC frame format is shared by every append-only write-ahead log in
// the system: the characterisation journal (this package), the per-attempt
// shard journals (internal/shard), and the per-session delta logs
// (internal/sessionlog). One frame is
//
//	"waj1 <payload-len> <crc32c-hex>\n" + payload + "\n"
//
// appended and fsynced as a unit. A crash can tear at most the final frame;
// a scan verifies length and CRC and keeps the valid prefix.

// EncodeFrame frames one payload for an append-only CRC journal.
func EncodeFrame(payload []byte) []byte {
	frame := make([]byte, 0, len(payload)+48)
	frame = append(frame, fmt.Sprintf("%s %d %08x\n", recordMagic, len(payload), crc32.Checksum(payload, crcTable))...)
	frame = append(frame, payload...)
	frame = append(frame, '\n')
	return frame
}

// ScanFrames reads an append-only CRC-framed record file and calls visit for
// each frame whose length and checksum verify, in file order. visit returns
// false to reject a frame the caller cannot decode — the scan stops there
// and the frame does NOT count toward the valid prefix (CRC ok but payload
// undecodable means a writer bug; stop trusting the file). The returned
// length is the byte length of the trusted prefix, suitable for truncating a
// torn tail before new appends. A missing file scans as empty.
func ScanFrames(path string, visit func(payload []byte) bool) (int64, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: opening journal records: %w", err)
	}
	defer f.Close()

	r := bufio.NewReader(f)
	var valid int64
	for {
		header, err := r.ReadBytes('\n')
		if err == io.EOF && len(header) == 0 {
			break // clean end
		}
		if err != nil {
			break // torn header
		}
		var magic, crcHex string
		var plen int
		if n, _ := fmt.Sscanf(string(bytes.TrimSuffix(header, []byte("\n"))), "%s %d %s", &magic, &plen, &crcHex); n != 3 || magic != recordMagic || plen <= 0 {
			break // corrupt header
		}
		payload := make([]byte, plen+1) // + trailing newline
		if _, err := io.ReadFull(r, payload); err != nil {
			break // torn payload
		}
		if payload[plen] != '\n' {
			break // frame misaligned
		}
		payload = payload[:plen]
		if fmt.Sprintf("%08x", crc32.Checksum(payload, crcTable)) != crcHex {
			break // bit rot / torn overwrite
		}
		if !visit(payload) {
			break
		}
		valid += int64(len(header)) + int64(plen) + 1
	}
	return valid, nil
}

// WriteFileSync writes bytes to path and fsyncs before closing. Unlike
// AtomicWrite it creates the file in place — use it for files that are only
// ever written once (journal meta) where a torn write is detectable.
func WriteFileSync(path string, b []byte) error { return writeFileSync(path, b) }

// SyncDir fsyncs a directory so renames and creates inside it are durable.
// Best effort: some filesystems refuse directory fsync; the data files
// themselves are already synced.
func SyncDir(dir string) { syncDir(dir) }
