package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"sstiming/internal/core"
)

// EncodeLibrary returns the canonical published form of a library: exactly
// the bytes core.Library.WriteJSON emits, so store-published artefacts stay
// byte-identical to legacy ones (golden files, resume comparisons).
func EncodeLibrary(lib *core.Library) ([]byte, error) {
	var buf bytes.Buffer
	if err := lib.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteLibrary atomically publishes a library and its sidecar manifest:
// both are written to temp files in the destination directory, fsynced,
// then renamed into place (library first, manifest second), and the
// directory is fsynced. A crash at any point leaves either the old artefact
// pair, or a library whose stale manifest the verifying loader rejects —
// never a silently-torn file.
//
// grid and ncPairs are campaign metadata recorded in the manifest; pass
// zero values when unknown.
func WriteLibrary(path string, lib *core.Library, grid []float64, ncPairs bool) (*Manifest, error) {
	libBytes, err := EncodeLibrary(lib)
	if err != nil {
		return nil, err
	}
	man, err := BuildManifest(lib, libBytes, grid, ncPairs)
	if err != nil {
		return nil, err
	}
	manBytes, err := EncodeManifest(man)
	if err != nil {
		return nil, err
	}
	if err := atomicWrite(path, libBytes); err != nil {
		return nil, err
	}
	if err := atomicWrite(ManifestPath(path), manBytes); err != nil {
		return nil, err
	}
	return man, nil
}

// AtomicWrite publishes bytes via temp file + fsync + rename + directory
// fsync — the durability primitive behind every artefact this package (and
// the sharded campaign layer, internal/shard) writes. A crash at any point
// leaves the previous file or none, never a torn one.
func AtomicWrite(path string, b []byte) error { return atomicWrite(path, b) }

// atomicWrite writes bytes via temp file + fsync + rename + directory
// fsync.
func atomicWrite(path string, b []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: creating temp for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(b); err != nil {
		cleanup()
		return fmt.Errorf("store: writing %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("store: syncing %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: closing %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: publishing %s: %w", path, err)
	}
	syncDir(dir)
	return nil
}
