package store_test

import (
	"testing"

	"sstiming/internal/benchgen"
	"sstiming/internal/core"
	"sstiming/internal/device"
	"sstiming/internal/sta"
	"sstiming/internal/store"
)

func TestAnalyticModelValidates(t *testing.T) {
	tech := device.Default05um()
	for _, tc := range []struct {
		name string
		n    int
	}{
		{"INV", 1}, {"NAND2", 2}, {"NAND3", 3}, {"NAND4", 4}, {"NOR2", 2}, {"NOR3", 3},
	} {
		m, err := store.AnalyticModel(tc.name, tech)
		if err != nil {
			t.Fatalf("AnalyticModel(%s): %v", tc.name, err)
		}
		if m.Name != tc.name || m.N != tc.n {
			t.Fatalf("%s: got Name=%q N=%d", tc.name, m.Name, m.N)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: fallback model does not validate: %v", tc.name, err)
		}
		if tc.n >= 2 && len(m.Pairs) != tc.n*(tc.n-1) {
			t.Fatalf("%s: %d pair surfaces, want %d", tc.name, len(m.Pairs), tc.n*(tc.n-1))
		}
		// Sanity of the surfaces at a mid-grid transition time: positive,
		// sub-nanosecond-scale delays and slews for minimum-size 0.5 µm gates.
		const tin = 0.5e-9
		for i := 0; i < tc.n; i++ {
			for _, p := range []core.PinTiming{m.CtrlPins[i], m.NonCtrlPins[i]} {
				d, tr := p.Delay.Eval(tin), p.Trans.Eval(tin)
				if d <= 0 || d > 5e-9 || tr <= 0 || tr > 5e-9 {
					t.Fatalf("%s pin %d: delay %.4g s, trans %.4g s out of range", tc.name, i, d, tr)
				}
				if p.DelayLoadSlope <= 0 || p.TransLoadSlope <= 0 {
					t.Fatalf("%s pin %d: non-positive load slopes %.4g/%.4g", tc.name, i, p.DelayLoadSlope, p.TransLoadSlope)
				}
			}
		}
		for k, f := range m.MultiFactor {
			if f <= 0 || f > 1 {
				t.Fatalf("%s: MultiFactor[%d] = %g, want (0,1]", tc.name, k, f)
			}
			if k > 0 && f > m.MultiFactor[k-1] {
				t.Fatalf("%s: MultiFactor not non-increasing: %v", tc.name, m.MultiFactor)
			}
		}
	}
}

func TestAnalyticModelRejectsUnknownNames(t *testing.T) {
	tech := device.Default05um()
	for _, name := range []string{"XOR2", "NAND", "NAND1", "NAND9", "nor2", ""} {
		if _, err := store.AnalyticModel(name, tech); err == nil {
			t.Errorf("AnalyticModel(%q) accepted an unsupported cell", name)
		}
	}
}

func TestParseCellName(t *testing.T) {
	for _, tc := range []struct {
		in   string
		kind string
		n    int
	}{
		{"INV", "INV", 1}, {"NAND2", "NAND", 2}, {"NAND8", "NAND", 8}, {"NOR3", "NOR", 3},
	} {
		kind, n, err := store.ParseCellName(tc.in)
		if err != nil || kind != tc.kind || n != tc.n {
			t.Errorf("ParseCellName(%q) = %q,%d,%v, want %q,%d", tc.in, kind, n, err, tc.kind, tc.n)
		}
	}
	for _, bad := range []string{"NAND1", "NOR9", "AOI21", "INVX"} {
		if _, _, err := store.ParseCellName(bad); err == nil {
			t.Errorf("ParseCellName(%q) accepted an unsupported name", bad)
		}
	}
}

// TestAnalyticLibraryRunsSTA drives a full STA through a library built
// entirely from fallback models — the worst-case degradation (every table
// quarantined) must still produce a causal, positive timing answer.
func TestAnalyticLibraryRunsSTA(t *testing.T) {
	tech := device.Default05um()
	lib := &core.Library{TechName: tech.Name, Vdd: tech.Vdd, Cells: map[string]*core.CellModel{}}
	for _, name := range []string{"INV", "NAND2", "NAND3", "NAND4", "NOR2", "NOR3"} {
		m, err := store.AnalyticModel(name, tech)
		if err != nil {
			t.Fatal(err)
		}
		lib.Cells[name] = m
	}
	if err := lib.Validate(); err != nil {
		t.Fatalf("all-fallback library does not validate: %v", err)
	}
	for _, mode := range []sta.Mode{sta.ModePinToPin, sta.ModeProposed} {
		res, err := sta.Analyze(benchgen.C17(), sta.Options{Lib: lib, Mode: mode, Jobs: 1})
		if err != nil {
			t.Fatalf("STA over fallback library (%s): %v", mode, err)
		}
		min, max := res.MinPOArrival(), res.MaxPOArrival()
		if min <= 0 || max <= 0 || min > max {
			t.Fatalf("STA over fallback library (%s): min %.4g, max %.4g", mode, min, max)
		}
	}
}
