package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"sstiming/internal/core"
)

// Manifest is the sidecar integrity record published next to every library
// artefact. It is the source of truth at load time: header fields (tech tag,
// Vdd) are taken from the manifest, and every cell's bytes must hash to the
// recorded digest before the table is served.
type Manifest struct {
	// SchemaVersion is the manifest format version (see SchemaVersion).
	SchemaVersion int
	// Tech is the process-technology tag the library was characterised
	// for. timingd's hot-reload path refuses a manifest whose tag differs
	// from the running library's.
	Tech string
	// Vdd is the characterisation supply voltage.
	Vdd float64
	// Grid is the characterisation transition-time grid in seconds
	// (campaign metadata; informational).
	Grid []float64 `json:",omitempty"`
	// NCPairs records whether the Section 3.6 non-controlling surfaces
	// were characterised (campaign metadata; informational).
	NCPairs bool `json:",omitempty"`
	// LibrarySHA256 is the hex SHA-256 of the exact library file bytes —
	// the fast whole-file verification path.
	LibrarySHA256 string
	// Cells maps cell name to the hex SHA-256 of the cell model's
	// canonical (compact JSON) encoding — the per-cell quarantine path
	// taken when the whole-file hash no longer matches.
	Cells map[string]string
}

// ManifestPath returns the sidecar manifest path for a library path.
func ManifestPath(libPath string) string { return libPath + ".manifest.json" }

// cellHash returns the canonical digest of one cell model: the SHA-256 of
// its compact JSON encoding. Compact marshalling of the decoded model (not
// the raw file bytes) makes the digest independent of file-level whitespace
// and key order while still catching any value-level corruption.
func cellHash(m *core.CellModel) (string, error) {
	b, err := json.Marshal(m)
	if err != nil {
		return "", fmt.Errorf("store: encoding cell %q: %w", m.Name, err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// CellHash returns the canonical digest of one cell model — the hex SHA-256
// of its compact JSON encoding, the same digest manifests record. Exported
// for the sharded campaign layer, whose shard artefacts carry per-cell
// digests verified with the manifest rules.
func CellHash(m *core.CellModel) (string, error) { return cellHash(m) }

// hashBytes returns the hex SHA-256 of raw bytes.
func hashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// BuildManifest computes the manifest for a library and the exact bytes it
// was (or will be) published as. Campaign metadata (Grid, NCPairs) may be
// zero when unknown, e.g. when manifesting a pre-existing artefact.
func BuildManifest(lib *core.Library, libBytes []byte, grid []float64, ncPairs bool) (*Manifest, error) {
	man := &Manifest{
		SchemaVersion: SchemaVersion,
		Tech:          lib.TechName,
		Vdd:           lib.Vdd,
		Grid:          grid,
		NCPairs:       ncPairs,
		LibrarySHA256: hashBytes(libBytes),
		Cells:         make(map[string]string, len(lib.Cells)),
	}
	for name, m := range lib.Cells {
		h, err := cellHash(m)
		if err != nil {
			return nil, err
		}
		man.Cells[name] = h
	}
	return man, nil
}

// EncodeManifest serialises a manifest as indented JSON (stable formatting,
// map keys sorted by encoding/json).
func EncodeManifest(m *Manifest) ([]byte, error) {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("store: encoding manifest: %w", err)
	}
	return append(b, '\n'), nil
}

// decodeManifest parses and sanity-checks manifest bytes, classifying
// failures with the load taxonomy.
func decodeManifest(b []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("%w: manifest is not valid JSON: %v", ErrCorrupt, err)
	}
	if m.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("%w: manifest schema %d, this build reads %d",
			ErrSchemaMismatch, m.SchemaVersion, SchemaVersion)
	}
	if len(m.Cells) == 0 {
		return nil, fmt.Errorf("%w: manifest lists no cells", ErrCorrupt)
	}
	if m.LibrarySHA256 == "" {
		return nil, fmt.Errorf("%w: manifest has no library hash", ErrCorrupt)
	}
	return &m, nil
}
