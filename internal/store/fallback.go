package store

import (
	"fmt"
	"strconv"
	"strings"

	"sstiming/internal/alphapower"
	"sstiming/internal/core"
	"sstiming/internal/device"
	"sstiming/internal/fit"
)

// This file is the bottom rung of the load-time fallback ladder: when a
// characterised table is quarantined, the cell is served from a closed-form
// analytic model instead of failing the whole analysis.
//
// The model is built from the Sakurai–Newton alpha-power-law delay calculator
// (internal/alphapower) — the paper's Section 2 "analytical delay function"
// class — evaluated over the default characterisation grid and fitted with
// the same K-coefficient bases (internal/fit) the real characterisation
// uses, so consumers see an ordinary core.CellModel:
//
//   - per-pin delay DR(T): collapsed-inverter alpha-power delay, quadratic
//     fit (position-blind — all pins share one curve, the known limitation
//     of this model class the paper's Figure 10 quantifies);
//   - output transition: drive-limited slew 0.8·CL·Vdd/ID0;
//   - zero-skew pair delay D0R(Tx,Ty): two collapsed parallel devices
//     (ID0 doubled) at the mean transition time, cube-root product fit;
//   - skew threshold SR(Tx,Ty): the lagging input stops helping once the
//     single-input response (plus half the output slew) has completed;
//   - k-way speed-up factors: collapsed k-wide drive ratios.
//
// Accuracy is that of the analytic class (tens of percent), which is the
// point: a degraded-but-sane answer with explicit provenance beats both a
// crash and a silently-wrong table.

// analyticGrid is the transition-time grid the fallback formulas are fitted
// over (the default characterisation grid).
var analyticGrid = []float64{0.1e-9, 0.25e-9, 0.5e-9, 0.9e-9, 1.5e-9}

// ParseCellName splits a library cell name into kind ("INV", "NAND", "NOR")
// and input count.
func ParseCellName(name string) (kind string, n int, err error) {
	if name == "INV" {
		return "INV", 1, nil
	}
	for _, k := range []string{"NAND", "NOR"} {
		if strings.HasPrefix(name, k) {
			n, err := strconv.Atoi(name[len(k):])
			if err != nil || n < 2 || n > 8 {
				return "", 0, fmt.Errorf("store: unsupported cell name %q", name)
			}
			return k, n, nil
		}
	}
	return "", 0, fmt.Errorf("store: unsupported cell name %q", name)
}

// analyticCell carries the per-cell drive/load quantities of the fallback.
type analyticCell struct {
	tech *device.Tech
	kind string
	n    int
	// refLoad is the characterisation reference load (one inverter input).
	refLoad float64
	// outDiff is the gate's own output diffusion capacitance.
	outDiff float64
}

func newAnalyticCell(kind string, n int, tech *device.Tech) analyticCell {
	nDiff := tech.NMOS.DiffCap(tech.MinGeom(device.NMOS))
	pDiff := tech.PMOS.DiffCap(tech.MinGeom(device.PMOS))
	var outDiff float64
	switch kind {
	case "NAND":
		// n PMOS drains plus the top of the NMOS stack.
		outDiff = float64(n)*pDiff + nDiff
	case "NOR":
		outDiff = float64(n)*nDiff + pDiff
	default:
		outDiff = nDiff + pDiff
	}
	return analyticCell{tech: tech, kind: kind, n: n, refLoad: tech.InverterInputCap(), outDiff: outDiff}
}

// drive returns the alpha-power parameters and total switched load for k
// simultaneously switching inputs of the given response direction.
// ctrl selects the to-controlling response (parallel devices, drive ×k);
// the to-non-controlling response discharges through the series stack
// (drive ÷n) and k is ignored.
func (a analyticCell) drive(ctrl bool, k int) (alphapower.Params, float64) {
	nGeom := a.tech.MinGeom(device.NMOS)
	pGeom := a.tech.MinGeom(device.PMOS)
	load := a.refLoad + a.outDiff
	switch {
	case a.kind == "NAND" && ctrl, a.kind == "INV" && ctrl:
		// Falling inputs, rising output via parallel PMOS; the pull-up
		// also charges the internal nodes of the off NMOS stack.
		p := alphapower.FromDevice(a.tech, device.PMOS, pGeom).Scale(float64(k))
		stack := float64(a.n-1) * a.tech.NMOS.DiffCap(nGeom) * 2
		return p, load + stack
	case a.kind == "NOR" && ctrl:
		// Rising inputs, falling output via parallel NMOS.
		p := alphapower.FromDevice(a.tech, device.NMOS, nGeom).Scale(float64(k))
		stack := float64(a.n-1) * a.tech.PMOS.DiffCap(pGeom) * 2
		return p, load + stack
	case a.kind == "NOR":
		// Non-controlling: rising output through the series PMOS stack.
		p := alphapower.FromDevice(a.tech, device.PMOS, pGeom).Scale(1 / float64(a.n))
		return p, load
	default:
		// NAND/INV non-controlling: falling output through the series
		// NMOS stack.
		p := alphapower.FromDevice(a.tech, device.NMOS, nGeom).Scale(1 / float64(a.n))
		return p, load
	}
}

// delay is the analytic gate delay for k simultaneous inputs with
// transition time tt and extra load beyond the reference.
func (a analyticCell) delay(ctrl bool, k int, tt, extraLoad float64) (float64, error) {
	p, load := a.drive(ctrl, k)
	return p.Delay(load+extraLoad, tt)
}

// trans is the drive-limited 10-90% output slew for k simultaneous inputs.
func (a analyticCell) trans(ctrl bool, k int, extraLoad float64) float64 {
	p, load := a.drive(ctrl, k)
	return 0.8 * (load + extraLoad) * p.Vdd / p.ID0
}

// AnalyticModel builds the closed-form fallback core.CellModel for the
// named cell in the given technology. The returned model validates and is
// position-blind: every pin and ordered pair shares the collapsed-inverter
// curves.
func AnalyticModel(name string, tech *device.Tech) (*core.CellModel, error) {
	kind, n, err := ParseCellName(name)
	if err != nil {
		return nil, err
	}
	a := newAnalyticCell(kind, n, tech)

	model := &core.CellModel{
		Name:          name,
		Kind:          kind,
		N:             n,
		CtrlOutRising: kind != "NOR",
		RefLoad:       a.refLoad,
	}

	pinCtrl, err := a.fitPin(true)
	if err != nil {
		return nil, err
	}
	pinNC, err := a.fitPin(false)
	if err != nil {
		return nil, err
	}
	for pin := 0; pin < n; pin++ {
		model.CtrlPins = append(model.CtrlPins, pinCtrl)
		model.NonCtrlPins = append(model.NonCtrlPins, pinNC)
	}
	if n >= 2 {
		pt, err := a.fitPairTiming()
		if err != nil {
			return nil, err
		}
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				if x != y {
					model.Pairs = append(model.Pairs, core.PairEntry{X: x, Y: y, Timing: pt})
				}
			}
		}
	}
	// k-way speed-up: ratio of the collapsed k-wide to the collapsed
	// pairwise delay at the middle grid point, clamped and non-increasing
	// (the STA lower bound relies on monotonicity).
	if n >= 3 {
		ttMid := analyticGrid[len(analyticGrid)/2]
		d2, err := a.delay(true, 2, ttMid, 0)
		if err != nil {
			return nil, err
		}
		prev := 1.0
		for k := 3; k <= n; k++ {
			dk, err := a.delay(true, k, ttMid, 0)
			if err != nil {
				return nil, err
			}
			f := 1.0
			if d2 > 0 {
				f = dk / d2
			}
			if f > prev {
				f = prev
			}
			if f < 0.1 {
				f = 0.1
			}
			if f > 1 {
				f = 1
			}
			model.MultiFactor = append(model.MultiFactor, f)
			prev = f
		}
	}
	if err := model.Validate(); err != nil {
		return nil, fmt.Errorf("store: analytic fallback for %s invalid: %w", name, err)
	}
	return model, nil
}

// fitPin fits the single-input delay/transition quadratics from the
// analytic samples, plus the closed-form load slopes.
func (a analyticCell) fitPin(ctrl bool) (core.PinTiming, error) {
	var tsNs, dNs, trNs []float64
	for _, tt := range analyticGrid {
		d, err := a.delay(ctrl, 1, tt, 0)
		if err != nil {
			return core.PinTiming{}, fmt.Errorf("store: analytic delay: %w", err)
		}
		tsNs = append(tsNs, tt/1e-9)
		dNs = append(dNs, d/1e-9)
		trNs = append(trNs, a.trans(ctrl, 1, 0)/1e-9)
	}
	kd, _, err := fit.FitQuad(tsNs, dNs)
	if err != nil {
		return core.PinTiming{}, fmt.Errorf("store: analytic delay fit: %w", err)
	}
	kt, _, err := fit.FitQuad(tsNs, trNs)
	if err != nil {
		return core.PinTiming{}, fmt.Errorf("store: analytic transition fit: %w", err)
	}
	p, _ := a.drive(ctrl, 1)
	return core.PinTiming{
		Delay: core.Quad{K: [3]float64{kd[0], kd[1], kd[2]}},
		Trans: core.Quad{K: [3]float64{kt[0], kt[1], kt[2]}},
		// d(drive term)/d(CL) of the alpha-power delay and slew formulas.
		DelayLoadSlope: p.Vdd / (2 * p.ID0),
		TransLoadSlope: 0.8 * p.Vdd / p.ID0,
	}, nil
}

// fitPairTiming fits the simultaneous-switching surfaces from the
// closed-form samples: D0/T0 with doubled drive at the mean transition
// time, SR as the completed single-input response, SKmin at zero.
func (a analyticCell) fitPairTiming() (core.PairTiming, error) {
	var txNs, tyNs, d0Ns, t0Ns, srNs []float64
	for _, tx := range analyticGrid {
		for _, ty := range analyticGrid {
			teq := (tx + ty) / 2
			d0, err := a.delay(true, 2, teq, 0)
			if err != nil {
				return core.PairTiming{}, fmt.Errorf("store: analytic pair delay: %w", err)
			}
			d1, err := a.delay(true, 1, tx, 0)
			if err != nil {
				return core.PairTiming{}, fmt.Errorf("store: analytic pair delay: %w", err)
			}
			txNs = append(txNs, tx/1e-9)
			tyNs = append(tyNs, ty/1e-9)
			d0Ns = append(d0Ns, d0/1e-9)
			t0Ns = append(t0Ns, a.trans(true, 2, 0)/1e-9)
			srNs = append(srNs, (d1+0.5*a.trans(true, 1, 0))/1e-9)
		}
	}
	kd0, _, err := fit.FitCrossPaper(txNs, tyNs, d0Ns)
	if err != nil {
		return core.PairTiming{}, fmt.Errorf("store: analytic D0 fit: %w", err)
	}
	kt0, _, err := fit.FitCrossPaper(txNs, tyNs, t0Ns)
	if err != nil {
		return core.PairTiming{}, fmt.Errorf("store: analytic T0 fit: %w", err)
	}
	ksr, _, err := fit.FitQuad2(txNs, tyNs, srNs)
	if err != nil {
		return core.PairTiming{}, fmt.Errorf("store: analytic SR fit: %w", err)
	}
	return core.PairTiming{
		D0: core.Cross{Kxy: kd0[0], Kx: kd0[1], Ky: kd0[2], K1: kd0[3]},
		T0: core.Cross{Kxy: kt0[0], Kx: kt0[1], Ky: kt0[2], K1: kt0[3]},
		SX: core.Quad2{Kxx: ksr[0], Kyy: ksr[1], Kxy: ksr[2], Kx: ksr[3], Ky: ksr[4], K1: ksr[5]},
		// The analytic class has no skew structure for the transition
		// minimum; keep it at zero skew.
		SKmin: core.Quad2{},
	}, nil
}
