package store_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"sstiming/internal/cells"
	"sstiming/internal/charlib"
	"sstiming/internal/core"
	"sstiming/internal/device"
	"sstiming/internal/engine"
	"sstiming/internal/faultinject"
	"sstiming/internal/store"
)

// chaosSeed resolves the suite seed — overridable via the CHAOS_SEED env
// var — and prints it when the test fails, so any chaotic run is
// reproducible with CHAOS_SEED=<printed seed>.
func chaosSeed(t *testing.T, def int64) int64 {
	t.Helper()
	seed := faultinject.SeedFromEnv(def)
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("reproduce with CHAOS_SEED=%d", seed)
		}
	})
	return seed
}

// chaosOptions is the smallest deterministic campaign (the charlib golden
// configuration): INV + NAND2 on a 3-point grid, run serially so the kill
// point is exact.
func chaosOptions() charlib.Options {
	tech := device.Default05um()
	return charlib.Options{
		Tech: tech,
		Grid: []float64{0.2e-9, 0.5e-9, 1.0e-9},
		Cells: []cells.Config{
			{Kind: cells.Inv, N: 1, Tech: tech, LoadInverter: true},
			{Kind: cells.NAND, N: 2, Tech: tech, LoadInverter: true},
		},
		TStep: 3e-12,
		Jobs:  1,
	}
}

func chaosFingerprint(o charlib.Options) store.Fingerprint {
	names := make([]string, len(o.Cells))
	for i, cfg := range o.Cells {
		names[i] = cfg.Name()
	}
	return store.Fingerprint{
		Tech:  o.Tech.Name,
		Vdd:   o.Tech.Vdd,
		Grid:  o.Grid,
		Cells: names,
		TStep: o.TStep,
	}
}

// TestChaosKillResumeByteIdentical is the PR's crash-safety acceptance
// scenario: a campaign killed deterministically after its first durable cell
// (plus a torn record simulating the in-flight write) is resumed, only the
// missing cell is re-characterised, and the published artefact — library and
// manifest — is byte-identical to an uninterrupted run.
func TestChaosKillResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	dir := t.TempDir()

	// Reference: the uninterrupted campaign, published through the store.
	refLib, err := charlib.Characterize(chaosOptions())
	if err != nil {
		t.Fatal(err)
	}
	refPath := filepath.Join(dir, "ref.json")
	if _, err := store.WriteLibrary(refPath, refLib, chaosOptions().Grid, false); err != nil {
		t.Fatal(err)
	}

	// Interrupted campaign: the context is killed inside the checkpoint of
	// the first cell, after its journal record is already durable — the
	// instant a real SIGKILL costs the most.
	jdir := filepath.Join(dir, "lib.json.journal")
	fp := chaosFingerprint(chaosOptions())
	j, err := store.CreateJournal(jdir, fp)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := chaosOptions()
	opts.Ctx = ctx
	appended := 0
	opts.Checkpoint = func(m *core.CellModel) error {
		if err := j.Append(m); err != nil {
			return err
		}
		appended++
		cancel()
		return nil
	}
	if _, err := charlib.Characterize(opts); err == nil {
		t.Fatal("interrupted campaign reported success")
	}
	if appended != 1 {
		t.Fatalf("%d cells journaled before the kill, want 1", appended)
	}
	// The kill also tears a partial record for the in-flight cell: a
	// plausible frame header followed by a seeded-random truncated payload
	// (real kills tear at arbitrary offsets with arbitrary bytes, so the
	// junk shape is part of the chaos schedule).
	rng := rand.New(rand.NewSource(chaosSeed(t, 17)))
	junk := make([]byte, 1+rng.Intn(96))
	rng.Read(junk)
	f, err := os.OpenFile(filepath.Join(jdir, "cells.waj"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(fmt.Sprintf("waj1 %d 0badc0de\n", len(junk)+1+rng.Intn(4096))); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(junk); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Resume: replay the journal, re-characterise only what is missing.
	j2, replayed, err := store.ResumeJournal(jdir, fp)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 1 || replayed["INV"] == nil {
		t.Fatalf("replayed %v, want exactly the journaled INV", replayed)
	}
	met := engine.NewMetrics()
	opts = chaosOptions()
	opts.Completed = replayed
	opts.Checkpoint = j2.Append
	opts.Metrics = met
	resumedLib, err := charlib.Characterize(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := met.Get(engine.CharCellsReused); got != 1 {
		t.Fatalf("charlib/cells_reused = %d, want 1", got)
	}
	if got := met.Get(engine.CharCells); got != 1 {
		t.Fatalf("charlib/cells = %d, want 1 (only NAND2 re-characterised)", got)
	}

	resPath := filepath.Join(dir, "resumed.json")
	if _, err := store.WriteLibrary(resPath, resumedLib, opts.Grid, false); err != nil {
		t.Fatal(err)
	}
	if err := j2.Remove(); err != nil {
		t.Fatal(err)
	}

	for _, name := range []string{"", ".manifest.json"} {
		want, err := os.ReadFile(refPath + name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(resPath + name)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("resumed artefact %q differs from the uninterrupted run (%d vs %d bytes)",
				"lib"+name, len(got), len(want))
		}
	}

	// The resumed artefact also loads fully verified.
	_, rep, err := store.LoadFile(resPath, store.LoadOptions{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verified != 2 || rep.Degraded() {
		t.Fatalf("resumed artefact report %+v, want 2 verified", rep)
	}
}
