package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"sstiming/internal/core"
	"sstiming/internal/device"
	"sstiming/internal/engine"
)

// LoadOptions configures a verified load.
type LoadOptions struct {
	// Strict refuses any degraded outcome: the first quarantined cell (or
	// a missing manifest) fails the load with a typed error instead of
	// falling back.
	Strict bool
	// Tech supplies the device technology for the closed-form analytic
	// fallback. Nil selects the technology by the manifest's tech tag
	// (device.Default05um for its tag); an unknown tag quarantines
	// without fallback.
	Tech *device.Tech
	// AllowUnverified permits opening a library that has no sidecar
	// manifest at all (legacy artefacts); the Report marks the load
	// Unverified. Without it a missing manifest is ErrNoManifest.
	AllowUnverified bool
	// Metrics, when non-nil, counts quarantined cells
	// (store/quarantined_cells).
	Metrics *engine.Metrics
}

// techForTag maps a manifest technology tag to the device technology used
// for analytic fallbacks.
func techForTag(tag string) *device.Tech {
	if t := device.Default05um(); t.Name == tag {
		return t
	}
	return nil
}

// LoadFile opens a library artefact and its sidecar manifest from disk and
// verifies it; see Load.
func LoadFile(path string, opts LoadOptions) (*core.Library, *Report, error) {
	libBytes, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("store: reading library: %w", err)
	}
	manBytes, err := os.ReadFile(ManifestPath(path))
	if os.IsNotExist(err) {
		manBytes = nil
	} else if err != nil {
		return nil, nil, fmt.Errorf("store: reading manifest: %w", err)
	}
	return Load(libBytes, manBytes, opts)
}

// Load verifies library bytes against their manifest and assembles the
// served library. The fallback ladder per cell is:
//
//	verified table  → the characterised model, byte-checked
//	quarantined     → the closed-form analytic model (alpha-power law),
//	                  when a technology for the tag is available
//	otherwise       → the cell is absent (analysis touching it fails)
//
// Strict mode stops at the first rung: any quarantine returns the typed
// error instead of a degraded library. manifest == nil is a legacy load,
// refused unless AllowUnverified.
func Load(libBytes, manBytes []byte, opts LoadOptions) (*core.Library, *Report, error) {
	if manBytes == nil {
		if !opts.AllowUnverified || opts.Strict {
			return nil, nil, fmt.Errorf("%w: refusing unverified library (write it with the store, or allow legacy loads)", ErrNoManifest)
		}
		lib, err := core.LoadLibrary(bytes.NewReader(libBytes))
		if err != nil {
			return nil, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		return lib, &Report{Unverified: true, Verified: len(lib.Cells)}, nil
	}
	man, err := decodeManifest(manBytes)
	if err != nil {
		return nil, nil, err
	}

	// Fast path: the exact published bytes. One hash, one decode, done.
	if hashBytes(libBytes) == man.LibrarySHA256 {
		lib, err := core.LoadLibrary(bytes.NewReader(libBytes))
		if err != nil {
			// The hash matched, so these are the very bytes the writer
			// published: an undecodable artefact means it was corrupt at
			// publish time.
			return nil, nil, fmt.Errorf("%w: published artefact undecodable: %v", ErrCorrupt, err)
		}
		if err := checkCellSet(lib, man); err != nil {
			return nil, nil, err
		}
		return lib, &Report{Verified: len(lib.Cells)}, nil
	}

	// Slow path: the file drifted from its manifest. Verify cell by cell,
	// quarantining the entries that fail.
	var raw struct {
		TechName string
		Vdd      float64
		Cells    map[string]json.RawMessage
	}
	if err := json.Unmarshal(libBytes, &raw); err != nil {
		return nil, nil, fmt.Errorf("%w: library is not valid JSON: %v", ErrCorrupt, err)
	}

	// The manifest is the signed source of truth for the header.
	lib := &core.Library{
		TechName: man.Tech,
		Vdd:      man.Vdd,
		Cells:    make(map[string]*core.CellModel, len(man.Cells)),
	}
	tech := opts.Tech
	if tech == nil {
		tech = techForTag(man.Tech)
	}

	rep := &Report{}
	names := make([]string, 0, len(man.Cells))
	for name := range man.Cells {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		wantHash := man.Cells[name]
		reason := ""
		var model *core.CellModel
		switch rawCell, ok := raw.Cells[name]; {
		case !ok:
			reason = "cell missing from library file"
		default:
			var m core.CellModel
			if err := json.Unmarshal(rawCell, &m); err != nil {
				reason = fmt.Sprintf("cell entry undecodable: %v", err)
				break
			}
			gotHash, err := cellHash(&m)
			if err != nil {
				reason = err.Error()
				break
			}
			if gotHash != wantHash {
				reason = "cell bytes do not match the manifest digest"
				break
			}
			if m.Name != name {
				reason = fmt.Sprintf("cell key %q holds model %q", name, m.Name)
				break
			}
			if err := m.Validate(); err != nil {
				reason = fmt.Sprintf("cell model invalid: %v", err)
				break
			}
			model = &m
		}
		if reason == "" {
			lib.Cells[name] = model
			rep.Verified++
			continue
		}
		if opts.Strict {
			return nil, nil, fmt.Errorf("%w: cell %s: %s (strict mode refuses degraded libraries)", ErrCorrupt, name, reason)
		}
		q := QuarantinedCell{Cell: name, Reason: reason}
		if tech != nil {
			if fb, err := AnalyticModel(name, tech); err == nil {
				lib.Cells[name] = fb
				q.Fallback = true
			}
		}
		rep.Quarantined = append(rep.Quarantined, q)
		opts.Metrics.Add(engine.StoreQuarantined, 1)
	}

	if rep.Verified == 0 && len(rep.Quarantined) == len(man.Cells) {
		// Nothing at all verified: the file does not correspond to this
		// manifest (e.g. a crash between the two renames left an old
		// library next to a new manifest).
		return nil, nil, fmt.Errorf("%w: no cell matches the manifest (library and manifest are from different runs)", ErrStale)
	}
	for name := range raw.Cells {
		if _, ok := man.Cells[name]; !ok {
			// An unmanifested cell is unverifiable; never serve it.
			rep.Quarantined = append(rep.Quarantined, QuarantinedCell{
				Cell:   name,
				Reason: "cell present in library file but not in manifest",
			})
			opts.Metrics.Add(engine.StoreQuarantined, 1)
			if opts.Strict {
				return nil, nil, fmt.Errorf("%w: cell %s present in library file but not in manifest", ErrCorrupt, name)
			}
		}
	}
	if err := lib.Validate(); err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return lib, rep, nil
}

// checkCellSet confirms a fast-path library carries exactly the manifested
// cells (defence against a manifest/file pair from different runs that
// nevertheless hash-matched — impossible in practice, cheap to keep).
func checkCellSet(lib *core.Library, man *Manifest) error {
	for name := range man.Cells {
		if _, ok := lib.Cells[name]; !ok {
			return fmt.Errorf("%w: manifest cell %s missing from library", ErrStale, name)
		}
	}
	for name := range lib.Cells {
		if _, ok := man.Cells[name]; !ok {
			return fmt.Errorf("%w: library cell %s missing from manifest", ErrStale, name)
		}
	}
	return nil
}
