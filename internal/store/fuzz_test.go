package store_test

import (
	"bytes"
	"testing"

	"sstiming/internal/prechar"
	"sstiming/internal/store"
)

// FuzzLoadLibrary throws arbitrary library/manifest byte pairs at the
// verifying loader: whatever the bytes, it must return a typed error or a
// library that validates — never panic, and never serve a cell whose bytes
// do not match its manifest digest.
func FuzzLoadLibrary(f *testing.F) {
	libB, manB := prechar.Raw()
	f.Add(libB, manB)
	f.Add(libB, []byte(nil))
	f.Add([]byte(nil), manB)
	f.Add(libB[:len(libB)/2], manB)
	f.Add([]byte("{}"), []byte("{}"))
	f.Add([]byte(`{"TechName":"x","Vdd":1,"Cells":{}}`), manB)
	flip := bytes.Clone(libB)
	flip[len(flip)/3] ^= 0x40
	f.Add(flip, manB)
	manFlip := bytes.Clone(manB)
	manFlip[len(manFlip)/2] ^= 0x01
	f.Add(libB, manFlip)

	f.Fuzz(func(t *testing.T, lib, man []byte) {
		for _, opts := range []store.LoadOptions{
			{},
			{Strict: true},
			{AllowUnverified: true},
		} {
			l, rep, err := store.Load(lib, man, opts)
			if err != nil {
				if l != nil {
					t.Fatalf("Load returned both a library and error %v", err)
				}
				continue
			}
			if l == nil || rep == nil {
				t.Fatal("Load returned nil library and nil error")
			}
			if err := l.Validate(); err != nil {
				t.Fatalf("Load accepted a library that does not validate: %v", err)
			}
			if opts.Strict && (rep.Degraded() || rep.Unverified) {
				t.Fatalf("strict load returned a degraded/unverified library: %+v", rep)
			}
			// Every served-from-table cell must re-hash to its manifest
			// entry; fallback substitutes are flagged in the report.
			quarantined := map[string]bool{}
			for _, q := range rep.Quarantined {
				quarantined[q.Cell] = true
			}
			for name, m := range l.Cells {
				if m == nil {
					t.Fatalf("Load served nil cell %q", name)
				}
				if !rep.Unverified && !quarantined[name] && m.Name != name {
					t.Fatalf("verified cell %q carries name %q", name, m.Name)
				}
			}
		}
	})
}
