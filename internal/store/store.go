// Package store is the durable, versioned, integrity-checked timing-library
// store: the layer between the characterisation campaign (the repo's most
// expensive artifact-producing run) and every consumer that trusts its
// output (prechar, sta, itr, timingd).
//
// It provides three guarantees the bare JSON artefact cannot:
//
//   - Crash-safe campaigns: a write-ahead Journal checkpoints each completed
//     cell with a per-record CRC and an fsync, so a characterisation killed
//     with SIGKILL mid-run resumes at the cost of at most one cell (torn
//     tails are detected and truncated, never replayed).
//
//   - Atomic, verified artefacts: WriteLibrary publishes the library via
//     temp file + fsync + rename with a sidecar Manifest (schema version,
//     technology tag, per-cell SHA-256, whole-file SHA-256); Load verifies
//     the manifest on every open and classifies failures with the typed
//     ErrCorrupt / ErrSchemaMismatch / ErrStale taxonomy.
//
//   - Graceful degradation: a corrupt or missing cell entry is quarantined
//     (reported, counted in engine metrics) and served from the fitted
//     closed-form alpha-power analytic model instead of failing the whole
//     analysis — the fallback ladder is table-lookup → closed-form → error.
//     Strict mode refuses any degraded library outright.
package store

import (
	"errors"
	"fmt"
)

// SchemaVersion is the manifest schema this package writes and accepts.
const SchemaVersion = 1

// The load-failure taxonomy. Errors returned by Load/LoadFile/ResumeJournal
// wrap exactly one of these, so callers can branch with errors.Is.
var (
	// ErrCorrupt marks bytes that do not match their recorded hashes or
	// cannot be decoded at all: bit flips, truncation, torn writes.
	ErrCorrupt = errors.New("store: corrupt artefact")
	// ErrSchemaMismatch marks a manifest (or journal) written by an
	// incompatible schema version.
	ErrSchemaMismatch = errors.New("store: schema mismatch")
	// ErrStale marks an artefact pair that is internally consistent but
	// does not belong together: a manifest describing a different library
	// (cell set drift), or a journal whose campaign fingerprint does not
	// match the requested options.
	ErrStale = errors.New("store: stale artefact")
	// ErrNoManifest marks a library opened without its sidecar manifest;
	// LoadOptions.AllowUnverified downgrades this to an unverified load.
	ErrNoManifest = errors.New("store: missing manifest")
)

// QuarantinedCell records one library cell that failed verification.
type QuarantinedCell struct {
	// Cell is the cell name from the manifest.
	Cell string
	// Reason summarises why the entry was quarantined.
	Reason string
	// Fallback reports whether the closed-form analytic model was
	// substituted (false means the cell is simply absent from the loaded
	// library and any analysis touching it will fail).
	Fallback bool
}

func (q QuarantinedCell) String() string {
	mode := "no fallback"
	if q.Fallback {
		mode = "analytic fallback"
	}
	return fmt.Sprintf("%s: %s (%s)", q.Cell, q.Reason, mode)
}

// Report summarises one verified load.
type Report struct {
	// Verified counts cells whose bytes matched their manifest hash.
	Verified int
	// Quarantined lists cells that failed verification, in manifest
	// (sorted-name) order.
	Quarantined []QuarantinedCell
	// Unverified reports a legacy load with no manifest at all (allowed
	// only by LoadOptions.AllowUnverified).
	Unverified bool
}

// Degraded reports whether any cell was quarantined or the load skipped
// verification entirely.
func (r *Report) Degraded() bool {
	return r == nil || r.Unverified || len(r.Quarantined) > 0
}
