package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"sstiming/internal/core"
)

// LibraryFingerprint returns a stable hex digest of a library's timing
// content: the technology tag, supply voltage and every cell model's
// canonical digest (the same per-cell hash the manifest records), combined
// in sorted cell order. Two libraries with equal fingerprints produce
// identical analysis results, so the fingerprint is the reload-invalidation
// axis of the service's content-addressed cache: it changes exactly when a
// hot reload could change an answer, and never on a byte-identical reload.
func LibraryFingerprint(lib *core.Library) (string, error) {
	if lib == nil {
		return "", fmt.Errorf("store: fingerprinting a nil library")
	}
	h := sha256.New()
	fmt.Fprintf(h, "tech:%s\nvdd:%.17g\n", lib.TechName, lib.Vdd)
	names := make([]string, 0, len(lib.Cells))
	for name := range lib.Cells {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ch, err := cellHash(lib.Cells[name])
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "cell:%s:%s\n", name, ch)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
