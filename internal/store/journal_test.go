package store_test

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"sstiming/internal/core"
	"sstiming/internal/prechar"
	"sstiming/internal/store"
)

func testFingerprint() store.Fingerprint {
	return store.Fingerprint{
		Tech:  "generic-0.5um",
		Vdd:   3.3,
		Grid:  []float64{0.2e-9, 0.5e-9, 1.0e-9},
		Cells: []string{"INV", "NAND2"},
		TStep: 3e-12,
	}
}

func cellModels(t *testing.T, names ...string) []*core.CellModel {
	t.Helper()
	lib := prechar.MustLibrary()
	out := make([]*core.CellModel, 0, len(names))
	for _, n := range names {
		m := lib.Cells[n]
		if m == nil {
			t.Fatalf("prechar library has no cell %s", n)
		}
		out = append(out, m)
	}
	return out
}

func TestJournalAppendReplay(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "lib.json.journal")
	fp := testFingerprint()
	j, err := store.CreateJournal(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	models := cellModels(t, "INV", "NAND2")
	for _, m := range models {
		if err := j.Append(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, replayed, err := store.ResumeJournal(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(replayed) != 2 {
		t.Fatalf("replayed %d cells, want 2", len(replayed))
	}
	for _, m := range models {
		got := replayed[m.Name]
		if got == nil {
			t.Fatalf("cell %s not replayed", m.Name)
		}
		// Replay must be value-identical: the resumed campaign re-publishes
		// these bytes into the final artefact.
		wb, _ := json.Marshal(m)
		gb, _ := json.Marshal(got)
		if string(wb) != string(gb) {
			t.Fatalf("replayed %s differs from the appended model", m.Name)
		}
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "lib.json.journal")
	fp := testFingerprint()
	j, err := store.CreateJournal(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(cellModels(t, "INV")[0]); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a frame header promising more payload
	// than was ever written.
	cells := filepath.Join(dir, "cells.waj")
	f, err := os.OpenFile(cells, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("waj1 99999 deadbeef\n{\"Name\":\"NAND"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, replayed, err := store.ResumeJournal(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 1 || replayed["INV"] == nil {
		t.Fatalf("replayed %v, want the valid INV prefix only", replayed)
	}
	// Appends after resume must extend the valid prefix, not the torn tail.
	if err := j2.Append(cellModels(t, "NAND2")[0]); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	_, replayed, err = store.ResumeJournal(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 2 || replayed["NAND2"] == nil {
		t.Fatalf("after truncate+append replay = %v, want INV and NAND2", replayed)
	}
}

func TestJournalCRCCatchesBitRot(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "lib.json.journal")
	fp := testFingerprint()
	j, err := store.CreateJournal(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(cellModels(t, "INV")[0]); err != nil {
		t.Fatal(err)
	}
	j.Close()

	cells := filepath.Join(dir, "cells.waj")
	b, err := os.ReadFile(cells)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x01 // one flipped bit in the payload
	if err := os.WriteFile(cells, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, replayed, err := store.ResumeJournal(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 0 {
		t.Fatalf("bit-rotted record replayed: %v", replayed)
	}
}

func TestJournalFingerprintMismatchIsStale(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "lib.json.journal")
	j, err := store.CreateJournal(dir, testFingerprint())
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	other := testFingerprint()
	other.TStep = 1e-12 // a finer solver step changes every table
	if _, _, err := store.ResumeJournal(dir, other); !errors.Is(err, store.ErrStale) {
		t.Fatalf("resume with changed options = %v, want ErrStale", err)
	}
}

func TestJournalMetaTaxonomy(t *testing.T) {
	fp := testFingerprint()
	if _, _, err := store.ResumeJournal(filepath.Join(t.TempDir(), "missing"), fp); !errors.Is(err, store.ErrStale) {
		t.Fatalf("resume of missing journal = %v, want ErrStale", err)
	}

	dir := filepath.Join(t.TempDir(), "lib.json.journal")
	j, err := store.CreateJournal(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	meta := filepath.Join(dir, "meta.json")

	if err := os.WriteFile(meta, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.ResumeJournal(dir, fp); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("resume with garbage meta = %v, want ErrCorrupt", err)
	}

	if err := os.WriteFile(meta, []byte(`{"SchemaVersion":99,"Fingerprint":"x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.ResumeJournal(dir, fp); !errors.Is(err, store.ErrSchemaMismatch) {
		t.Fatalf("resume with future schema = %v, want ErrSchemaMismatch", err)
	}
}

func TestJournalRemove(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "lib.json.journal")
	j, err := store.CreateJournal(dir, testFingerprint())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Remove(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("journal dir still present after Remove: %v", err)
	}
}
