package store_test

import (
	"testing"

	"sstiming/internal/core"
	"sstiming/internal/prechar"
	"sstiming/internal/store"
)

// copyLib shallow-copies a library with its own cell map, so tests can swap
// cells without mutating the shared embedded singleton.
func copyLib(lib *core.Library) *core.Library {
	c := *lib
	c.Cells = make(map[string]*core.CellModel, len(lib.Cells))
	for name, m := range lib.Cells {
		c.Cells[name] = m
	}
	return &c
}

// TestLibraryFingerprint: the fingerprint is deterministic, insensitive to
// cell-map identity, and sensitive to exactly the inputs that can change an
// analysis answer — a cell's timing values, the tech tag, the supply.
func TestLibraryFingerprint(t *testing.T) {
	a := prechar.MustLibrary()
	fpA, err := store.LibraryFingerprint(a)
	if err != nil {
		t.Fatal(err)
	}
	if fpA == "" {
		t.Fatal("empty fingerprint")
	}
	// A copy with a distinct cell-map identity shares the fingerprint.
	b := copyLib(a)
	if fpB, _ := store.LibraryFingerprint(b); fpB != fpA {
		t.Fatalf("two views of the same library fingerprint differently:\n%s\n%s", fpA, fpB)
	}
	// Any timing-value change moves it.
	for name, m := range b.Cells {
		clone := *m
		clone.RefLoad *= 1.0000001
		b.Cells[name] = &clone
		break
	}
	if fpB, _ := store.LibraryFingerprint(b); fpB == fpA {
		t.Fatal("a changed cell model kept the fingerprint")
	}
	// So does the technology tag.
	c := copyLib(a)
	c.TechName = "other-tech"
	if fpC, _ := store.LibraryFingerprint(c); fpC == fpA {
		t.Fatal("a changed tech tag kept the fingerprint")
	}
	if _, err := store.LibraryFingerprint(nil); err == nil {
		t.Fatal("nil library fingerprinted without error")
	}
}
