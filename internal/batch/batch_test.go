package batch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sstiming/internal/engine"
)

// directSubmit runs the batch function inline — the simplest backend.
func directSubmit(ctx context.Context, fn func(ctx context.Context) error) error {
	return fn(ctx)
}

func newBatcher(t *testing.T, opts Options) *Batcher {
	t.Helper()
	if opts.Submit == nil {
		opts.Submit = directSubmit
	}
	b, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := b.Drain(ctx); err != nil {
			t.Errorf("cleanup drain: %v", err)
		}
	})
	return b
}

// TestSizeTrigger: a full batch dispatches immediately as one submission.
func TestSizeTrigger(t *testing.T) {
	var submissions, itemsRun atomic.Int64
	met := engine.NewMetrics()
	b := newBatcher(t, Options{
		Size:    4,
		MaxWait: time.Hour, // only the size trigger may fire
		Metrics: met,
		Submit: func(ctx context.Context, fn func(context.Context) error) error {
			submissions.Add(1)
			return fn(ctx)
		},
	})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := b.Do(context.Background(), func(context.Context) error {
				itemsRun.Add(1)
				return nil
			}); err != nil {
				t.Errorf("Do: %v", err)
			}
		}()
	}
	wg.Wait()
	if got := submissions.Load(); got != 1 {
		t.Fatalf("4 items under Size=4 took %d submissions, want 1", got)
	}
	if itemsRun.Load() != 4 {
		t.Fatalf("%d items ran, want 4", itemsRun.Load())
	}
	if met.Get(engine.SvcBatches) != 1 || met.Get(engine.SvcBatchItems) != 4 {
		t.Fatalf("batches/items = %d/%d, want 1/4",
			met.Get(engine.SvcBatches), met.Get(engine.SvcBatchItems))
	}
}

// TestMaxWaitTrigger: a lone item is dispatched once MaxWait elapses, not
// held hostage for a full batch.
func TestMaxWaitTrigger(t *testing.T) {
	b := newBatcher(t, Options{Size: 1000, MaxWait: 5 * time.Millisecond})
	start := time.Now()
	if err := b.Do(context.Background(), func(context.Context) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("lone item waited %v, the MaxWait timer did not fire", waited)
	}
}

// TestItemErrorsAreIsolated: one failing and one panicking item leave their
// siblings' results intact — a fault is never shared across the batch.
func TestItemErrorsAreIsolated(t *testing.T) {
	b := newBatcher(t, Options{Size: 3, MaxWait: time.Hour})
	boom := errors.New("this item is broken")
	errs := make([]error, 3)
	var wg sync.WaitGroup
	run := func(i int, fn func(context.Context) error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = b.Do(context.Background(), fn)
		}()
	}
	run(0, func(context.Context) error { return nil })
	run(1, func(context.Context) error { return boom })
	run(2, func(context.Context) error { panic("item detonated") })
	wg.Wait()

	if errs[0] != nil {
		t.Fatalf("healthy sibling got %v, want nil", errs[0])
	}
	if !errors.Is(errs[1], boom) {
		t.Fatalf("failing item got %v, want its own error", errs[1])
	}
	var pe *engine.PanicError
	if !errors.As(errs[2], &pe) {
		t.Fatalf("panicking item got %v, want a contained *engine.PanicError", errs[2])
	}
}

// TestExpiredItemSkipped: an item whose deadline fired while batched gets
// its own context error; siblings in the same batch still run.
func TestExpiredItemSkipped(t *testing.T) {
	release := make(chan struct{})
	b := newBatcher(t, Options{
		Size:    2,
		MaxWait: time.Hour,
		Submit: func(ctx context.Context, fn func(context.Context) error) error {
			<-release // hold the batch until the short deadline fired
			return fn(ctx)
		},
	})
	shortCtx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()

	var ran [2]atomic.Bool
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		errs[0] = b.Do(shortCtx, func(context.Context) error { ran[0].Store(true); return nil })
	}()
	go func() {
		defer wg.Done()
		errs[1] = b.Do(context.Background(), func(context.Context) error { ran[1].Store(true); return nil })
	}()
	time.Sleep(20 * time.Millisecond) // both batched; deadline 0 expired
	close(release)
	wg.Wait()

	if !errors.Is(errs[0], context.DeadlineExceeded) {
		t.Fatalf("expired item got %v, want DeadlineExceeded", errs[0])
	}
	if ran[0].Load() {
		t.Fatal("expired item's work ran anyway (partial-result hazard)")
	}
	if errs[1] != nil || !ran[1].Load() {
		t.Fatalf("sibling of the expired item: err=%v ran=%v, want nil/true", errs[1], ran[1].Load())
	}
}

// TestShedWhenFull: PendingCap bounds admitted-but-unanswered items; with
// the backend stalled and every slot held, Do refuses with ErrFull without
// blocking.
func TestShedWhenFull(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 4)
	b := newBatcher(t, Options{
		Size:       1, // every admitted item dispatches as its own batch
		PendingCap: 2,
		MaxWait:    time.Millisecond,
		Submit: func(ctx context.Context, fn func(context.Context) error) error {
			entered <- struct{}{}
			<-release
			return fn(ctx)
		},
	})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := b.Do(context.Background(), func(context.Context) error { return nil }); err != nil {
				t.Errorf("admitted item: %v", err)
			}
		}()
	}
	// Wait until both batches are provably inside the stalled backend: their
	// admission slots are held until each item is answered.
	for i := 0; i < 2; i++ {
		select {
		case <-entered:
		case <-time.After(5 * time.Second):
			t.Fatal("admitted items never reached the backend")
		}
	}
	if err := b.Do(context.Background(), func(context.Context) error { return nil }); !errors.Is(err, ErrFull) {
		t.Fatalf("Do with every slot held = %v, want ErrFull", err)
	}
	close(release)
	wg.Wait()
}

// TestCloseRefusesLateItems: after Close, Do refuses with
// engine.ErrPoolClosed; already-buffered items still complete.
func TestCloseRefusesLateItems(t *testing.T) {
	release := make(chan struct{})
	b, err := New(Options{
		Size:       4,
		MaxWait:    time.Hour,
		PendingCap: 8,
		Submit: func(ctx context.Context, fn func(context.Context) error) error {
			<-release
			return fn(ctx)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var admitted sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		admitted.Add(1)
		go func(i int) {
			defer admitted.Done()
			errs[i] = b.Do(context.Background(), func(context.Context) error { return nil })
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // both items buffered
	b.Close()

	if err := b.Do(context.Background(), func(context.Context) error { return nil }); !errors.Is(err, engine.ErrPoolClosed) {
		t.Fatalf("post-Close Do = %v, want engine.ErrPoolClosed", err)
	}

	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := b.Drain(ctx); err != nil {
		t.Fatalf("drain after close: %v", err)
	}
	admitted.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("admitted item %d was not completed across Close: %v", i, err)
		}
	}
}

// TestBackendRefusalSharedByBatch: when the backend sheds the whole batch,
// every item receives that admission error.
func TestBackendRefusalSharedByBatch(t *testing.T) {
	shed := errors.New("queue full")
	b := newBatcher(t, Options{
		Size:    2,
		MaxWait: time.Hour,
		Submit: func(context.Context, func(context.Context) error) error {
			return shed
		},
	})
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = b.Do(context.Background(), func(context.Context) error { return nil })
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, shed) {
			t.Fatalf("item %d got %v, want the backend refusal", i, err)
		}
	}
}

// TestObservePhases: the per-batch breakdown reports occupancy and
// non-negative phase durations.
func TestObservePhases(t *testing.T) {
	type obs struct {
		items        int
		collect, run time.Duration
	}
	ch := make(chan obs, 1)
	b := newBatcher(t, Options{
		Size:    2,
		MaxWait: time.Hour,
		Observe: func(items int, collect, run time.Duration) {
			ch <- obs{items, collect, run}
		},
	})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.Do(context.Background(), func(context.Context) error {
				time.Sleep(2 * time.Millisecond)
				return nil
			})
		}()
	}
	wg.Wait()
	select {
	case o := <-ch:
		if o.items != 2 || o.collect < 0 || o.run <= 0 {
			t.Fatalf("observation %+v not sane", o)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Observe was never called")
	}
}

// TestManyBatchesUnderLoad: sustained concurrent traffic is fully conserved
// — every item answered exactly once, occupancy never above Size.
func TestManyBatchesUnderLoad(t *testing.T) {
	met := engine.NewMetrics()
	var maxSeen atomic.Int64
	b := newBatcher(t, Options{
		Size:       8,
		MaxWait:    500 * time.Microsecond,
		PendingCap: 64,
		Metrics:    met,
		Observe: func(items int, _, _ time.Duration) {
			for {
				cur := maxSeen.Load()
				if int64(items) <= cur || maxSeen.CompareAndSwap(cur, int64(items)) {
					return
				}
			}
		},
	})
	const n = 200
	var done atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := b.Do(context.Background(), func(context.Context) error {
				done.Add(1)
				return nil
			})
			if err != nil && !errors.Is(err, ErrFull) {
				t.Errorf("Do: %v", err)
			}
		}()
	}
	wg.Wait()
	if maxSeen.Load() > 8 {
		t.Fatalf("a batch held %d items, above Size=8", maxSeen.Load())
	}
	if ran, batched := done.Load(), met.Get(engine.SvcBatchItems); ran > batched {
		t.Fatalf("conservation: %d items ran but only %d were counted batched", ran, batched)
	}
	if met.Get(engine.SvcBatches) == 0 {
		t.Fatal(fmt.Sprint("no batches dispatched under load"))
	}
}
