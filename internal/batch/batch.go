// Package batch is the timing service's request micro-batcher: it coalesces
// small analysis jobs arriving within a size-or-maxWait window into one
// engine-pool submission, amortizing queue admission and worker-scheduling
// overhead across the batch while preserving every per-request contract
// (ROADMAP item 1's MerkleBatcher shape — a timer loop with per-item
// response channels and a per-phase timing breakdown):
//
//   - each item carries its own context: a batched item whose deadline
//     expires before its turn gets its own context error (the service maps
//     it to a 504), never a partial result, and the batch proceeds with its
//     siblings;
//   - items run under per-item panic containment (engine.Safely), so one
//     faulting item yields its own typed error while siblings still get
//     correct results — a fault is never shared across a batch;
//   - the pending buffer is bounded: beyond it, Do refuses with ErrFull and
//     the service sheds the request with a 429 exactly like the job queue;
//   - Close/Drain refuse new items with engine.ErrPoolClosed while letting
//     already-admitted items run to completion — admission is a promise,
//     batched or not.
package batch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"sstiming/internal/engine"
)

// ErrFull reports a full pending buffer: the item was refused before
// consuming any engine resources (the service answers 429 + Retry-After).
var ErrFull = errors.New("batch: pending buffer full")

// Options configures a Batcher.
type Options struct {
	// Size dispatches a batch as soon as it holds this many items
	// (minimum 1; a Size of 1 degenerates to per-item dispatch).
	Size int
	// MaxWait dispatches a non-empty batch this long after its first item
	// arrived, bounding the latency cost of coalescing. <= 0 selects 2ms.
	MaxWait time.Duration
	// PendingCap bounds admitted-but-unanswered items (buffered, batched
	// and running included); beyond it Do sheds with ErrFull. <= 0
	// selects 4×Size.
	PendingCap int
	// Submit hands one batch function to the execution backend (the
	// service's admission-controlled job queue). Required. The submission
	// context is the batcher's own background context: per-item deadlines
	// are enforced inside the batch function, item by item.
	Submit func(ctx context.Context, fn func(ctx context.Context) error) error
	// Observe, when non-nil, receives each dispatched batch's phase
	// breakdown: occupancy, time the batch spent collecting (first-item
	// enqueue to dispatch) and time executing. Called from the dispatch
	// goroutine; must be safe for concurrent use.
	Observe func(items int, collect, run time.Duration)
	// Metrics counts batches and batched items; may be nil.
	Metrics *engine.Metrics
}

// item is one request riding in a batch.
type item struct {
	ctx context.Context
	fn  func(ctx context.Context) error
	res chan error
	enq time.Time
}

// Batcher coalesces items into batches. Construct with New; Stop or Drain
// on shutdown.
type Batcher struct {
	opts Options

	mu     sync.Mutex
	closed bool
	in     chan *item
	// slots is the admission semaphore: one token per admitted item, held
	// from Do's entry until the item's answer is delivered. It is what
	// makes PendingCap a real bound — the collector moves items out of the
	// channel immediately, so channel capacity alone bounds nothing.
	slots chan struct{}

	inflight sync.WaitGroup // dispatched, not yet completed batches
	loopDone chan struct{}
}

// New starts a batcher's collector loop.
func New(opts Options) (*Batcher, error) {
	if opts.Submit == nil {
		return nil, fmt.Errorf("batch: Options.Submit is required")
	}
	if opts.Size < 1 {
		opts.Size = 1
	}
	if opts.MaxWait <= 0 {
		opts.MaxWait = 2 * time.Millisecond
	}
	if opts.PendingCap <= 0 {
		opts.PendingCap = 4 * opts.Size
	}
	b := &Batcher{
		opts:     opts,
		in:       make(chan *item, opts.PendingCap),
		slots:    make(chan struct{}, opts.PendingCap),
		loopDone: make(chan struct{}),
	}
	go b.loop()
	return b, nil
}

// Do submits fn as one batch item and blocks until its result (or until
// ctx fires; the item itself is still run or deadline-refused by the batch,
// and its slot is reclaimed either way). Returns fn's error, the item's own
// context error for a deadline expiry, ErrFull when shed, or
// engine.ErrPoolClosed after Close/Drain.
func (b *Batcher) Do(ctx context.Context, fn func(ctx context.Context) error) error {
	select {
	case b.slots <- struct{}{}:
	default:
		return ErrFull
	}
	it := &item{ctx: ctx, fn: fn, res: make(chan error, 1), enq: time.Now()}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		<-b.slots
		return fmt.Errorf("%w: batcher closed", engine.ErrPoolClosed)
	}
	// Never blocks: the channel holds PendingCap items and each admitted
	// item holds a slot.
	b.in <- it
	b.mu.Unlock()
	select {
	case err := <-it.res:
		return err
	case <-ctx.Done():
		// The batch delivers the item's outcome into the buffered channel
		// regardless; nothing leaks. The caller just stops waiting.
		return ctx.Err()
	}
}

// loop collects items into batches and dispatches on size or timer.
func (b *Batcher) loop() {
	defer close(b.loopDone)
	var pending []*item
	var timer *time.Timer
	var timeC <-chan time.Time
	stopTimer := func() {
		if timer != nil {
			timer.Stop()
			timer, timeC = nil, nil
		}
	}
	flush := func() {
		stopTimer()
		if len(pending) > 0 {
			b.dispatch(pending)
			pending = nil
		}
	}
	for {
		select {
		case it, ok := <-b.in:
			if !ok {
				flush()
				return
			}
			pending = append(pending, it)
			if len(pending) >= b.opts.Size {
				flush()
			} else if timer == nil {
				timer = time.NewTimer(b.opts.MaxWait)
				timeC = timer.C
			}
		case <-timeC:
			flush()
		}
	}
}

// dispatch hands one collected batch to the backend. Runs the submission on
// its own goroutine so slow backends (queue full of earlier batches) never
// stall the collector loop.
func (b *Batcher) dispatch(items []*item) {
	collect := time.Since(items[0].enq)
	b.inflight.Add(1)
	b.opts.Metrics.Add(engine.SvcBatches, 1)
	b.opts.Metrics.Add(engine.SvcBatchItems, int64(len(items)))
	go func() {
		defer b.inflight.Done()
		start := time.Now()
		ran := false
		err := b.opts.Submit(context.Background(), func(context.Context) error {
			ran = true
			for _, it := range items {
				if cerr := it.ctx.Err(); cerr != nil {
					// The item's own deadline fired while batched: its typed
					// cancellation, never a partial result — and the batch
					// proceeds with its siblings.
					b.finish(it, cerr)
					continue
				}
				it := it
				// Per-item containment: a panic or error belongs to this
				// item alone, siblings still run.
				b.finish(it, engine.Safely(func() error { return it.fn(it.ctx) }))
			}
			return nil
		})
		if err != nil && !ran {
			// The batch function never ran (shed, pool closed): every item
			// shares the admission refusal.
			for _, it := range items {
				b.finish(it, err)
			}
		}
		if b.opts.Observe != nil {
			b.opts.Observe(len(items), collect, time.Since(start))
		}
	}()
}

// finish answers one item exactly once and returns its admission slot.
func (b *Batcher) finish(it *item, err error) {
	it.res <- err
	<-b.slots
}

// Close stops admitting items. Already-buffered items are still collected,
// dispatched and completed. Safe to call more than once.
func (b *Batcher) Close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		close(b.in)
	}
	b.mu.Unlock()
}

// Drain closes the batcher and waits until every admitted item's batch has
// completed, or until ctx fires. Call before draining the backend queue so
// the final partial batch can still be submitted.
func (b *Batcher) Drain(ctx context.Context) error {
	b.Close()
	select {
	case <-b.loopDone:
	case <-ctx.Done():
		return fmt.Errorf("batch: drain deadline exceeded while flushing: %w", ctx.Err())
	}
	done := make(chan struct{})
	go func() {
		b.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("batch: drain deadline exceeded with batches in flight: %w", ctx.Err())
	}
}
