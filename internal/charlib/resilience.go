package charlib

import (
	"fmt"
	"sort"

	"sstiming/internal/cells"
	"sstiming/internal/core"
	"sstiming/internal/engine"
	"sstiming/internal/spice"
	"sstiming/internal/waveform"
)

// This file holds the characterisation harness's resilience machinery: the
// per-simulation retry ladder with tightened solver settings, the health
// bookkeeping behind core.CellHealth, and the neighbour interpolation that
// gracefully degrades grid points whose simulations never converge.

// runSim runs one testbench simulation with the retry ladder: attempt 0 uses
// the unmodified settings (so a clean run is byte-identical to a harness
// without the ladder); each further attempt halves the integration step and
// doubles the Newton budget, retrying only recoverable solver failures
// (non-convergence, numerical blow-up). Every attempt gets a fresh fault
// hook, matching the one-hook-per-transient injection contract.
func (ch *characterizer) runSim(cfg cells.Config, all []cells.Drive, outRising bool, latest, maxTT float64) (waveform.Transition, error) {
	ch.opts.Metrics.Add(engine.CharJobs, 1)
	var lastErr error
	for attempt := 0; attempt <= ch.opts.Retries; attempt++ {
		so := cells.SimOptions{
			TStop:   latest + maxTT + 2.5e-9,
			TStep:   ch.opts.TStep,
			Method:  spice.Trapezoidal,
			Ctx:     ch.ctx,
			Metrics: ch.opts.Metrics,
		}
		if ch.opts.NewFaultHook != nil {
			so.FaultHook = ch.opts.NewFaultHook()
		}
		if attempt > 0 {
			so.TStep = ch.opts.TStep / float64(int(1)<<attempt)
			so.MaxNewton = 60 << attempt
			ch.opts.Metrics.Add(engine.CharRetries, 1)
		}
		tr, err := cfg.MeasureResponse(all, outRising, so)
		if err == nil {
			if attempt > 0 {
				ch.mu.Lock()
				ch.health.Retried++
				ch.mu.Unlock()
			}
			return tr, nil
		}
		lastErr = err
		if !spice.IsRecoverable(err) {
			return waveform.Transition{}, err
		}
	}
	return waveform.Transition{}, lastErr
}

// notePoints counts attempted characterisation points towards the health
// record (the denominator of the degradation budget).
func (ch *characterizer) notePoints(n int) {
	ch.mu.Lock()
	ch.health.Points += n
	ch.mu.Unlock()
}

// noteDegraded records one characterisation point that was replaced by an
// interpolated or conservative value after all retries failed.
func (ch *characterizer) noteDegraded(surface string, tx, ty float64, reason error) {
	ch.opts.Metrics.Add(engine.CharDegraded, 1)
	ch.mu.Lock()
	ch.health.Degraded = append(ch.health.Degraded, core.DegradedPoint{
		Surface: surface,
		Tx:      tx,
		Ty:      ty,
		Reason:  reason.Error(),
	})
	ch.mu.Unlock()
}

// finish attaches the quality and (when non-clean) health records to the
// model and enforces the degradation budget. The health record is attached
// only when something actually went wrong, so a clean characterisation
// serialises byte-identically to a harness without resilience.
func (ch *characterizer) finish(model *core.CellModel) error {
	model.Quality = ch.quality
	if ch.health.Retried == 0 && len(ch.health.Degraded) == 0 {
		return nil
	}
	h := ch.health
	// Concurrent pair jobs append degraded points in scheduling order;
	// sort for a deterministic artefact.
	sort.Slice(h.Degraded, func(i, j int) bool {
		a, b := h.Degraded[i], h.Degraded[j]
		if a.Surface != b.Surface {
			return a.Surface < b.Surface
		}
		if a.Tx != b.Tx {
			return a.Tx < b.Tx
		}
		return a.Ty < b.Ty
	})
	model.Health = &h
	if frac := h.DegradedFrac(); frac > ch.opts.MaxDegradedFrac {
		return fmt.Errorf("charlib: %d of %d characterisation points degraded (%.1f%%), budget is %.1f%%",
			len(h.Degraded), h.Points, 100*frac, 100*ch.opts.MaxDegradedFrac)
	}
	return nil
}

// interpolateGrid fills failed cells of the n×n characterisation lattice from
// the average of their converged 4-neighbours, in progressive passes so an
// isolated island of failures can still be filled from its rim. All value
// surfaces share the failure mask (row-major, like the fitPair rows). It
// returns an error when failures remain that no pass can reach — i.e. no
// converged point exists at all.
func interpolateGrid(n int, failed []bool, surfaces ...[]float64) error {
	ok := make([]bool, len(failed))
	for i, f := range failed {
		ok[i] = !f
	}
	remaining := 0
	for _, f := range failed {
		if f {
			remaining++
		}
	}
	for remaining > 0 {
		// Fill from a snapshot of the converged set so the result is
		// independent of cell visit order within a pass.
		snap := append([]bool(nil), ok...)
		progress := false
		for i := 0; i < n*n; i++ {
			if ok[i] {
				continue
			}
			r, c := i/n, i%n
			var neighbors []int
			if r > 0 && snap[i-n] {
				neighbors = append(neighbors, i-n)
			}
			if r < n-1 && snap[i+n] {
				neighbors = append(neighbors, i+n)
			}
			if c > 0 && snap[i-1] {
				neighbors = append(neighbors, i-1)
			}
			if c < n-1 && snap[i+1] {
				neighbors = append(neighbors, i+1)
			}
			if len(neighbors) == 0 {
				continue
			}
			for _, vals := range surfaces {
				sum := 0.0
				for _, j := range neighbors {
					sum += vals[j]
				}
				vals[i] = sum / float64(len(neighbors))
			}
			ok[i] = true
			remaining--
			progress = true
		}
		if !progress {
			return fmt.Errorf("charlib: %d grid points unconverged with no converged neighbours to interpolate from", remaining)
		}
	}
	return nil
}
