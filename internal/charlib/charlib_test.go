package charlib

import (
	"bytes"
	"math"
	"math/rand"
	"sync"
	"testing"

	"sstiming/internal/cells"
	"sstiming/internal/core"
	"sstiming/internal/device"
)

var (
	libOnce sync.Once
	libVal  *core.Library
	libErr  error
)

// testLibrary characterises a reduced library once and shares it across all
// tests in this package.
func testLibrary(t *testing.T) *core.Library {
	t.Helper()
	libOnce.Do(func() {
		libVal, libErr = Characterize(FastOptions())
	})
	if libErr != nil {
		t.Fatalf("characterisation failed: %v", libErr)
	}
	return libVal
}

func TestCharacterizeProducesValidLibrary(t *testing.T) {
	lib := testLibrary(t)
	if err := lib.Validate(); err != nil {
		t.Fatalf("library invalid: %v", err)
	}
	for _, name := range []string{"INV", "NAND2", "NOR2"} {
		if _, ok := lib.Cell(name); !ok {
			t.Errorf("library missing cell %s", name)
		}
	}
	n2 := lib.MustCell("NAND2")
	if !n2.CtrlOutRising {
		t.Error("NAND2 to-controlling response should be rising")
	}
	if nr2 := lib.MustCell("NOR2"); nr2.CtrlOutRising {
		t.Error("NOR2 to-controlling response should be falling")
	}
	if len(n2.Pairs) != 2 {
		t.Errorf("NAND2 has %d pair entries, want 2", len(n2.Pairs))
	}
}

func TestZeroSkewSpeedupCaptured(t *testing.T) {
	lib := testLibrary(t)
	n2 := lib.MustCell("NAND2")
	const T = 0.5e-9
	d0 := n2.DelayCtrl2(0, 1, T, T, 0, 0)
	dx := n2.CtrlPins[0].DelayAt(T, 0)
	dy := n2.CtrlPins[1].DelayAt(T, 0)
	if d0 >= dx || d0 >= dy {
		t.Errorf("zero-skew delay %g should be below single-input delays %g / %g", d0, dx, dy)
	}
	// The paper's Figure 1 flavour: a substantial (tens of percent)
	// speed-up.
	if d0 > 0.9*math.Min(dx, dy) {
		t.Errorf("speed-up too small: d0=%g, min single=%g", d0, math.Min(dx, dy))
	}
}

func TestSkewThresholdsPositive(t *testing.T) {
	lib := testLibrary(t)
	n2 := lib.MustCell("NAND2")
	for _, T := range []float64{0.2e-9, 0.5e-9, 1.0e-9} {
		p := n2.Pair(0, 1)
		if p == nil {
			t.Fatal("missing pair (0,1)")
		}
		if sx := p.SX.Eval(T, T); sx <= 0 {
			t.Errorf("SX(%g,%g) = %g, want > 0", T, T, sx)
		}
	}
}

// TestModelMatchesSimulatorOffGrid is the reproduction's core accuracy check
// (the role of Figures 10-12): at off-grid transition times and skews the
// fitted model must track the transistor-level simulator closely.
func TestModelMatchesSimulatorOffGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	lib := testLibrary(t)
	n2 := lib.MustCell("NAND2")
	tech := device.Default05um()
	cfg := cells.Config{Kind: cells.NAND, N: 2, Tech: tech, LoadInverter: true}

	rng := rand.New(rand.NewSource(7))
	var worst float64
	for trial := 0; trial < 8; trial++ {
		tx := (0.18 + rng.Float64()*0.9) * 1e-9
		ty := (0.18 + rng.Float64()*0.9) * 1e-9
		skew := (rng.Float64()*1.2 - 0.4) * 1e-9

		ax := 1e-9
		ay := ax + skew
		tr, err := cfg.MeasureResponse([]cells.Drive{
			cells.Falling(ax, tx),
			cells.Falling(ay, ty),
		}, true, cells.SimOptions{TStop: math.Max(ax, ay) + math.Max(tx, ty) + 2.5e-9, TStep: 3e-12})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		simDelay := tr.Arrival - math.Min(ax, ay)
		modelDelay := n2.DelayCtrl2(0, 1, tx, ty, skew, 0)
		err2 := math.Abs(simDelay - modelDelay)
		rel := err2 / math.Max(simDelay, 20e-12)
		if rel > worst {
			worst = rel
		}
		if rel > 0.25 {
			t.Errorf("trial %d: tx=%.3g ty=%.3g skew=%.3g: sim %.4g model %.4g (rel err %.1f%%)",
				trial, tx, ty, skew, simDelay, modelDelay, rel*100)
		}
	}
	t.Logf("worst relative delay error: %.1f%%", worst*100)
}

// TestClaim1MinimumDelayAtZeroSkew validates the paper's Claim 1 against the
// transistor-level simulator directly: the gate delay at zero skew is not
// exceeded by nearby skews.
func TestClaim1MinimumDelayAtZeroSkew(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	tech := device.Default05um()
	cfg := cells.Config{Kind: cells.NAND, N: 2, Tech: tech, LoadInverter: true}
	const tx, ty = 0.4e-9, 0.6e-9

	delayAt := func(skew float64) float64 {
		ax := 1e-9
		ay := ax + skew
		tr, err := cfg.MeasureResponse([]cells.Drive{
			cells.Falling(ax, tx), cells.Falling(ay, ty),
		}, true, cells.SimOptions{TStop: math.Max(ax, ay) + 3e-9, TStep: 3e-12})
		if err != nil {
			t.Fatal(err)
		}
		return tr.Arrival - math.Min(ax, ay)
	}

	d0 := delayAt(0)
	for _, s := range []float64{-0.4e-9, -0.2e-9, -0.1e-9, 0.1e-9, 0.2e-9, 0.4e-9} {
		if d := delayAt(s); d < d0-2e-12 {
			t.Errorf("delay at skew %g (%g) below zero-skew delay (%g); violates Claim 1", s, d, d0)
		}
	}
}

func TestLibraryJSONRoundTrip(t *testing.T) {
	lib := testLibrary(t)
	var buf bytes.Buffer
	if err := lib.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := core.LoadLibrary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Vdd != lib.Vdd || got.TechName != lib.TechName {
		t.Errorf("header mismatch: %v vs %v", got, lib)
	}
	n2a := lib.MustCell("NAND2")
	n2b := got.MustCell("NAND2")
	const T = 0.47e-9
	if a, b := n2a.DelayCtrl2(0, 1, T, T, 0.1e-9, 0), n2b.DelayCtrl2(0, 1, T, T, 0.1e-9, 0); a != b {
		t.Errorf("round-tripped model differs: %g vs %g", a, b)
	}
}

func TestLoadLibraryRejectsGarbage(t *testing.T) {
	if _, err := core.LoadLibrary(bytes.NewBufferString("{nope")); err == nil {
		t.Error("expected JSON error")
	}
	// Structurally valid JSON but invalid library.
	bad := `{"Cells":{"X":{"Name":"Y","N":1,"CtrlPins":[],"NonCtrlPins":[]}}}`
	if _, err := core.LoadLibrary(bytes.NewBufferString(bad)); err == nil {
		t.Error("expected validation error")
	}
}

func TestNonCtrlSlowerThanCtrlForNAND(t *testing.T) {
	// For these cells the to-non-controlling (falling for NAND) response
	// exists and is positive.
	lib := testLibrary(t)
	n2 := lib.MustCell("NAND2")
	const T = 0.5e-9
	for pin := 0; pin < 2; pin++ {
		if d := n2.NonCtrlPins[pin].DelayAt(T, 0); d <= 0 {
			t.Errorf("non-ctrl delay pin %d = %g, want > 0", pin, d)
		}
	}
}

func TestLoadSlopesPositive(t *testing.T) {
	lib := testLibrary(t)
	for _, name := range []string{"INV", "NAND2", "NOR2"} {
		m := lib.MustCell(name)
		for pin := 0; pin < m.N; pin++ {
			if m.CtrlPins[pin].DelayLoadSlope <= 0 {
				t.Errorf("%s pin %d ctrl delay load slope = %g, want > 0",
					name, pin, m.CtrlPins[pin].DelayLoadSlope)
			}
		}
	}
}
