package charlib

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"sstiming/internal/cells"
	"sstiming/internal/core"
	"sstiming/internal/device"
)

var update = flag.Bool("update", false, "rewrite the charlib golden file")

// goldenOptions is the minimal deterministic characterisation the golden
// file pins: INV + NAND2 on a 3-point grid (the smallest grid the quadratic
// fits accept). Characterize is deterministic for fixed options, so any
// change to the simulator, the measurement pipeline or the fitting basis
// shows up as a coefficient drift against the golden file.
func goldenOptions() Options {
	tech := device.Default05um()
	return Options{
		Tech: tech,
		Grid: []float64{0.2e-9, 0.5e-9, 1.0e-9},
		Cells: []cells.Config{
			{Kind: cells.Inv, N: 1, Tech: tech, LoadInverter: true},
			{Kind: cells.NAND, N: 2, Tech: tech, LoadInverter: true},
		},
		TStep: 3e-12,
	}
}

// TestCharlibGolden is the characterisation regression gate: the freshly
// characterised minimal library must match testdata/charlib_golden.json
// coefficient by coefficient. Regenerate with
//
//	go test ./internal/charlib -run TestCharlibGolden -update
func TestCharlibGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	lib, err := Characterize(goldenOptions())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "charlib_golden.json")

	if *update {
		var buf bytes.Buffer
		if err := lib.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update to create): %v", err)
	}
	defer f.Close()
	want, err := core.LoadLibrary(f)
	if err != nil {
		t.Fatalf("golden file corrupt: %v", err)
	}

	// Semantic comparison through the JSON trees: numeric leaves must
	// agree to a tight relative tolerance (bit-exactness modulo encoding),
	// everything else exactly. Field additions fail loudly so the golden
	// file is regenerated deliberately.
	diffs := diffJSON("", toTree(t, lib), toTree(t, want), nil)
	const maxShow = 12
	for i, d := range diffs {
		if i >= maxShow {
			t.Errorf("... and %d more differences", len(diffs)-maxShow)
			break
		}
		t.Errorf("golden mismatch at %s", d)
	}
}

// toTree marshals a library into a generic JSON tree.
func toTree(t *testing.T, lib *core.Library) any {
	t.Helper()
	var buf bytes.Buffer
	if err := lib.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var tree any
	if err := json.Unmarshal(buf.Bytes(), &tree); err != nil {
		t.Fatal(err)
	}
	return tree
}

// diffJSON walks two JSON trees and records every path where they disagree.
func diffJSON(path string, got, want any, diffs []string) []string {
	switch g := got.(type) {
	case map[string]any:
		w, ok := want.(map[string]any)
		if !ok {
			return append(diffs, fmt.Sprintf("%s: type mismatch", path))
		}
		for k := range g {
			if _, ok := w[k]; !ok {
				diffs = append(diffs, fmt.Sprintf("%s/%s: missing from golden", path, k))
			}
		}
		for k, wv := range w {
			gv, ok := g[k]
			if !ok {
				diffs = append(diffs, fmt.Sprintf("%s/%s: missing from fresh library", path, k))
				continue
			}
			diffs = diffJSON(path+"/"+k, gv, wv, diffs)
		}
		return diffs
	case []any:
		w, ok := want.([]any)
		if !ok || len(g) != len(w) {
			return append(diffs, fmt.Sprintf("%s: length/type mismatch", path))
		}
		for i := range g {
			diffs = diffJSON(fmt.Sprintf("%s[%d]", path, i), g[i], w[i], diffs)
		}
		return diffs
	case float64:
		w, ok := want.(float64)
		if !ok {
			return append(diffs, fmt.Sprintf("%s: type mismatch", path))
		}
		const relTol, absTol = 1e-9, 1e-15
		if math.Abs(g-w) > absTol+relTol*math.Max(math.Abs(g), math.Abs(w)) {
			diffs = append(diffs, fmt.Sprintf("%s: %.12g != golden %.12g", path, g, w))
		}
		return diffs
	default:
		if got != want {
			diffs = append(diffs, fmt.Sprintf("%s: %v != golden %v", path, got, want))
		}
		return diffs
	}
}
