// Package charlib is the characterisation harness: it drives the
// transistor-level simulator (the reproduction's HSPICE stand-in) over grids
// of input transition times and skews, and fits the paper's empirical
// K-coefficient formulas (Section 3.4) to produce a core.Library.
//
// This corresponds to the paper's Section 3.7 "Characterization Efforts":
// a one-time, per-cell pre-characterisation that yields the DR, D0R and SR
// formulas (and their transition-time analogues) for each NAND/NOR cell.
package charlib

import (
	"context"
	"fmt"
	"math"
	"sync"

	"sstiming/internal/cells"
	"sstiming/internal/core"
	"sstiming/internal/device"
	"sstiming/internal/engine"
	"sstiming/internal/fit"
	"sstiming/internal/spice"
)

// Options configures a characterisation run.
type Options struct {
	// Tech is the process technology; nil selects device.Default05um.
	Tech *device.Tech
	// Grid lists the input transition times (seconds) swept during
	// characterisation. Nil selects the default 5-point grid
	// {0.1, 0.25, 0.5, 0.9, 1.5} ns.
	Grid []float64
	// Cells lists the cells to characterise. Nil selects the default
	// library {INV, NAND2, NAND3, NAND4, NOR2, NOR3}.
	Cells []cells.Config
	// TStep is the simulator integration step; zero selects 2 ps.
	TStep float64
	// SkewTol is the bisection tolerance when locating the SR threshold;
	// zero selects 4 ps.
	SkewTol float64
	// SkipPairs skips the (expensive) pair-surface characterisation,
	// producing pin-to-pin-only models. Useful when only single-input
	// timing is needed (e.g. the Figure 10 position study).
	SkipPairs bool
	// PaperExactD0 restricts the D0R/T0 fits to the paper's exact
	// four-term product form instead of the default extended basis.
	// Used by the D0-basis ablation bench.
	PaperExactD0 bool
	// NCPairs additionally characterises the simultaneous
	// to-non-controlling surfaces (the paper's Section 3.6 future work;
	// roughly doubles the pair-characterisation cost).
	NCPairs bool
	// Retries bounds the per-point retry ladder: a simulation whose solver
	// fails recoverably (non-convergence, numerical blow-up) even after the
	// solver's own step-halving recovery is re-run with tightened settings
	// (halved step, doubled Newton budget) up to this many times. Zero
	// selects 2; negative disables retries. The first attempt always uses
	// the unmodified settings, so a clean run is byte-identical whatever
	// the value.
	Retries int
	// MaxDegradedFrac is the graceful-degradation budget: the largest
	// tolerated fraction of a cell's characterisation points that may be
	// interpolated from neighbours after all retries fail. Zero selects
	// 0.25; negative forbids degradation entirely. Beyond the budget the
	// cell's characterisation fails hard.
	MaxDegradedFrac float64
	// NewFaultHook, when non-nil, supplies one fault-injection hook per
	// transient analysis (see internal/faultinject.Plan.NextHook). Chaos
	// testing only; production runs leave it nil.
	NewFaultHook func() spice.FaultHook
	// Progress, when non-nil, receives one line per characterisation
	// stage (useful for the CLI).
	Progress func(format string, args ...any)
	// Ctx, when non-nil, cancels the characterisation (checked between
	// simulations and inside each transient analysis).
	Ctx context.Context
	// Jobs bounds the engine worker pool at each fan-out level (cells,
	// and input pairs within a cell); zero selects GOMAXPROCS. Jobs == 1
	// runs fully serially. Any value produces a byte-identical library:
	// job results are placed by index, and the underlying simulations
	// are deterministic.
	Jobs int
	// Checkpoint, when non-nil, receives each cell model the moment its
	// characterisation completes, before the campaign moves on — the hook
	// for write-ahead journaling (internal/store.Journal.Append). A
	// checkpoint error fails the cell: a result that cannot be made
	// durable is treated like a result that was never produced.
	Checkpoint func(*core.CellModel) error
	// Completed seeds the campaign with already-characterised cells (keyed
	// by cell name, e.g. journal replay on resume). A configured cell
	// found here is reused verbatim — no simulation, no Checkpoint call —
	// and counted under charlib/cells_reused.
	Completed map[string]*core.CellModel
	// Metrics, when non-nil, accumulates characterisation and simulator
	// effort counters across all workers.
	Metrics *engine.Metrics
}

func (o *Options) fill() {
	if o.Tech == nil {
		o.Tech = device.Default05um()
	}
	if o.Grid == nil {
		o.Grid = []float64{0.1e-9, 0.25e-9, 0.5e-9, 0.9e-9, 1.5e-9}
	}
	if o.Cells == nil {
		o.Cells = DefaultCells(o.Tech)
	}
	if o.TStep <= 0 {
		o.TStep = 2e-12
	}
	if o.SkewTol <= 0 {
		o.SkewTol = 4e-12
	}
	if o.Retries == 0 {
		o.Retries = 2
	} else if o.Retries < 0 {
		o.Retries = 0
	}
	if o.MaxDegradedFrac == 0 {
		o.MaxDegradedFrac = 0.25
	} else if o.MaxDegradedFrac < 0 {
		o.MaxDegradedFrac = 0
	}
	if o.Progress == nil {
		o.Progress = func(string, ...any) {}
	}
	if o.Ctx == nil {
		o.Ctx = context.Background()
	}
}

// Resolved returns a copy of the options with every default filled in, so
// callers (e.g. the CLI's campaign fingerprint) can observe the effective
// grid, cell set and solver settings of the run Characterize would perform.
func (o Options) Resolved() Options {
	o.fill()
	return o
}

// DefaultCells returns the default library cell set.
func DefaultCells(tech *device.Tech) []cells.Config {
	return []cells.Config{
		{Kind: cells.Inv, N: 1, Tech: tech, LoadInverter: true},
		{Kind: cells.NAND, N: 2, Tech: tech, LoadInverter: true},
		{Kind: cells.NAND, N: 3, Tech: tech, LoadInverter: true},
		{Kind: cells.NAND, N: 4, Tech: tech, LoadInverter: true},
		{Kind: cells.NOR, N: 2, Tech: tech, LoadInverter: true},
		{Kind: cells.NOR, N: 3, Tech: tech, LoadInverter: true},
	}
}

// FastOptions returns reduced-grid options suitable for tests: a 3-point
// grid and a minimal cell set.
func FastOptions() Options {
	tech := device.Default05um()
	return Options{
		Tech: tech,
		Grid: []float64{0.15e-9, 0.4e-9, 0.8e-9, 1.3e-9},
		Cells: []cells.Config{
			{Kind: cells.Inv, N: 1, Tech: tech, LoadInverter: true},
			{Kind: cells.NAND, N: 2, Tech: tech, LoadInverter: true},
			{Kind: cells.NOR, N: 2, Tech: tech, LoadInverter: true},
		},
		TStep: 3e-12,
	}
}

// measurement is one simulated (delay, output transition) sample.
type measurement struct {
	delay float64 // relative to the earliest switching input arrival
	trans float64
}

// characterizer carries shared state for one cell. The memo maps are
// guarded by mu: pair characterisation runs concurrently across ordered
// pairs, and simulations are deterministic, so racing goroutines that miss
// the cache at the same key simply recompute the identical value.
type characterizer struct {
	opts Options
	cfg  cells.Config
	// ctx is the cell's fan-out context, threaded into every simulation.
	ctx context.Context

	mu sync.Mutex
	// memoPair caches two-input simultaneous to-controlling simulations.
	memoPair map[pairKey]measurement
	// memoNCPair caches the to-non-controlling counterparts.
	memoNCPair map[pairKey]measurement
	// singleCtrl caches single-input to-controlling measurements per
	// (pin, grid index); singleNC the to-non-controlling ones.
	singleCtrl map[[2]int]measurement
	singleNC   map[[2]int]measurement
	// quality accumulates per-surface fit statistics (ns domain).
	quality map[string]core.FitQuality
	// health accumulates resilience bookkeeping: attempted points, retried
	// simulations and degraded (interpolated) points.
	health core.CellHealth
}

type pairKey struct {
	x, y   int
	tx, ty int // grid indices
	dps    int // skew in integer picoseconds
}

// Characterize runs the full characterisation and returns the fitted
// library.
func Characterize(opts Options) (*core.Library, error) {
	opts.fill()
	lib := &core.Library{
		TechName: opts.Tech.Name,
		Vdd:      opts.Tech.Vdd,
		Cells:    make(map[string]*core.CellModel),
	}
	// Characterise cells on the shared engine pool; each cell's harness
	// further fans out across its input pairs. Results land by index, so
	// any worker count yields an identical library.
	stop := opts.Metrics.StartTimer("characterize")
	defer stop()
	models := make([]*core.CellModel, len(opts.Cells))
	err := engine.Run(opts.Ctx, opts.Jobs, len(opts.Cells), func(ctx context.Context, i int) error {
		cfg := opts.Cells[i]
		if m, ok := opts.Completed[cfg.Name()]; ok && m != nil {
			// Journal replay: the cell already completed in a previous run
			// of this exact campaign. Reuse it verbatim; it was already
			// checkpointed when first characterised.
			models[i] = m
			opts.Metrics.Add(engine.CharCellsReused, 1)
			return nil
		}
		opts.Progress("characterizing %s", cfg.Name())
		// Safely labels a crash (e.g. an injected panic deep inside a
		// simulation) with the cell name; the bare pool-level recovery
		// would only report the goroutine.
		var m *core.CellModel
		if err := engine.Safely(func() error {
			var err error
			m, err = characterizeCell(ctx, opts, cfg)
			return err
		}); err != nil {
			return fmt.Errorf("%s: %w", cfg.Name(), err)
		}
		if opts.Checkpoint != nil {
			if err := opts.Checkpoint(m); err != nil {
				return fmt.Errorf("%s: checkpoint: %w", cfg.Name(), err)
			}
		}
		models[i] = m
		opts.Metrics.Add(engine.CharCells, 1)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("charlib: %w", err)
	}
	for _, m := range models {
		lib.Cells[m.Name] = m
	}
	if err := lib.Validate(); err != nil {
		return nil, err
	}
	return lib, nil
}

func characterizeCell(ctx context.Context, opts Options, cfg cells.Config) (*core.CellModel, error) {
	n := cfg.N
	if cfg.Kind == cells.Inv {
		n = 1
	}
	ch := &characterizer{
		opts:       opts,
		cfg:        cfg,
		ctx:        ctx,
		memoPair:   make(map[pairKey]measurement),
		memoNCPair: make(map[pairKey]measurement),
		singleCtrl: make(map[[2]int]measurement),
		singleNC:   make(map[[2]int]measurement),
		quality:    make(map[string]core.FitQuality),
	}

	model := &core.CellModel{
		Name:          cfg.Name(),
		Kind:          cfg.Kind.String(),
		N:             n,
		CtrlOutRising: cfg.OutputRisesOnControlling(),
		RefLoad:       opts.Tech.InverterInputCap(),
	}

	// Per-pin single-transition fits, both response directions.
	for pin := 0; pin < n; pin++ {
		pt, err := ch.fitPin(pin, true)
		if err != nil {
			return nil, fmt.Errorf("pin %d ctrl: %w", pin, err)
		}
		model.CtrlPins = append(model.CtrlPins, pt)

		ptn, err := ch.fitPin(pin, false)
		if err != nil {
			return nil, fmt.Errorf("pin %d non-ctrl: %w", pin, err)
		}
		model.NonCtrlPins = append(model.NonCtrlPins, ptn)
	}

	if opts.SkipPairs {
		if err := ch.finish(model); err != nil {
			return nil, err
		}
		return model, nil
	}

	// Ordered-pair simultaneous-switching surfaces, characterised on the
	// engine pool (the simulations dominate; entries land by index, so
	// the model is identical regardless of scheduling).
	type pairJob struct {
		x, y int
	}
	var jobs []pairJob
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			if x != y {
				jobs = append(jobs, pairJob{x, y})
			}
		}
	}
	entries := make([]core.PairEntry, len(jobs))
	err := engine.Run(ctx, opts.Jobs, len(jobs), func(_ context.Context, i int) error {
		job := jobs[i]
		opts.Progress("  pair (%d,%d)", job.x, job.y)
		e, err := ch.fitPair(job.x, job.y, model)
		if err != nil {
			return fmt.Errorf("pair (%d,%d): %w", job.x, job.y, err)
		}
		entries[i] = e
		return nil
	})
	if err != nil {
		return nil, err
	}
	model.Pairs = append(model.Pairs, entries...)

	if opts.NCPairs {
		ncEntries := make([]core.PairEntry, len(jobs))
		err := engine.Run(ctx, opts.Jobs, len(jobs), func(_ context.Context, i int) error {
			job := jobs[i]
			opts.Progress("  nc-pair (%d,%d)", job.x, job.y)
			e, err := ch.fitNCPair(job.x, job.y)
			if err != nil {
				return fmt.Errorf("nc-pair (%d,%d): %w", job.x, job.y, err)
			}
			ncEntries[i] = e
			return nil
		})
		if err != nil {
			return nil, err
		}
		model.NCPairs = append(model.NCPairs, ncEntries...)
	}

	// Multi-input speed-up factors for k = 3..n simultaneous inputs.
	if n >= 3 {
		if err := ch.fitMultiFactors(model); err != nil {
			return nil, fmt.Errorf("multi-input factors: %w", err)
		}
	}
	if err := ch.finish(model); err != nil {
		return nil, err
	}
	return model, nil
}

// record stores fit statistics for one characterised surface.
func (ch *characterizer) record(key string, st fit.Stats) {
	ch.mu.Lock()
	ch.quality[key] = core.FitQuality{RMS: st.RMS, Max: st.MaxAbs, R2: st.R2}
	ch.mu.Unlock()
}

// stimulusArrival is the fixed 50% arrival time of the reference input. It
// leaves room for the slowest characterised ramp (1.5 ns, spanning ~1.9 ns
// end to end) to start after t = 0.
const stimulusArrival = 1.2e-9

// ctrlDrive returns the drive for an input making a to-controlling
// transition (falling for NAND/INV, rising for NOR).
func (ch *characterizer) ctrlDrive(arr, tt float64) cells.Drive {
	if ch.cfg.ControllingValue() == 0 {
		return cells.Falling(arr, tt)
	}
	return cells.Rising(arr, tt)
}

// nonCtrlDrive returns the drive for a to-non-controlling transition.
func (ch *characterizer) nonCtrlDrive(arr, tt float64) cells.Drive {
	if ch.cfg.ControllingValue() == 0 {
		return cells.Rising(arr, tt)
	}
	return cells.Falling(arr, tt)
}

// steadyNonCtrl returns the steady drive at the non-controlling value.
func (ch *characterizer) steadyNonCtrl() cells.Drive {
	if ch.cfg.ControllingValue() == 0 {
		return cells.SteadyHigh(ch.opts.Tech)
	}
	return cells.SteadyLow()
}

func (ch *characterizer) numInputs() int {
	if ch.cfg.Kind == cells.Inv {
		return 1
	}
	return ch.cfg.N
}

// simulate runs one testbench with the given switching-pin drives (all other
// pins held at the non-controlling value) and measures the output response.
// outRising selects the measured output direction; extraLoad adds farads;
// latest is the latest input arrival (for windowing).
func (ch *characterizer) simulate(drives map[int]cells.Drive, outRising bool, extraLoad, latest, maxTT float64) (measurement, error) {
	n := ch.numInputs()
	all := make([]cells.Drive, n)
	earliest := math.Inf(1)
	for i := 0; i < n; i++ {
		if d, ok := drives[i]; ok {
			all[i] = d
			if d.Arrival < earliest {
				earliest = d.Arrival
			}
		} else {
			all[i] = ch.steadyNonCtrl()
		}
	}
	cfg := ch.cfg
	cfg.ExtraLoadCap += extraLoad
	tr, err := ch.runSim(cfg, all, outRising, latest, maxTT)
	if err != nil {
		return measurement{}, err
	}
	return measurement{delay: tr.Arrival - earliest, trans: tr.TransTime}, nil
}

// measureSingleCtrl measures (and memoises) the single-input to-controlling
// response for a grid transition time.
func (ch *characterizer) measureSingleCtrl(pin, gridIdx int) (measurement, error) {
	key := [2]int{pin, gridIdx}
	ch.mu.Lock()
	m, ok := ch.singleCtrl[key]
	ch.mu.Unlock()
	if ok {
		return m, nil
	}
	tt := ch.opts.Grid[gridIdx]
	m, err := ch.simulate(
		map[int]cells.Drive{pin: ch.ctrlDrive(stimulusArrival, tt)},
		ch.cfg.OutputRisesOnControlling(), 0, stimulusArrival, tt)
	if err != nil {
		return measurement{}, err
	}
	ch.mu.Lock()
	ch.singleCtrl[key] = m
	ch.mu.Unlock()
	return m, nil
}

// measurePair measures (and memoises) the two-input simultaneous response:
// pin x switching at the reference arrival, pin y at skew later (skew may be
// negative).
func (ch *characterizer) measurePair(x, y, txIdx, tyIdx int, skew float64) (measurement, error) {
	// Canonical key: order by pin index.
	dps := int(math.Round(skew / 1e-12))
	key := pairKey{x: x, y: y, tx: txIdx, ty: tyIdx, dps: dps}
	if x > y {
		key = pairKey{x: y, y: x, tx: tyIdx, ty: txIdx, dps: -dps}
	}
	ch.mu.Lock()
	m0, ok := ch.memoPair[key]
	ch.mu.Unlock()
	if ok {
		return m0, nil
	}
	// Compute arrivals from the canonical key so both pin orders hit the
	// same simulation.
	axc := stimulusArrival
	ayc := stimulusArrival + float64(key.dps)*1e-12
	// Both ramps must start after t = 0 with margin, or the DC operating
	// point would begin mid-transition. A ramp's 0%-100% sweep spans
	// T/0.8 centred on its arrival.
	txc := ch.opts.Grid[key.tx]
	tyc := ch.opts.Grid[key.ty]
	minStart := math.Min(axc-txc/0.8/2, ayc-tyc/0.8/2)
	if minStart < 0.1e-9 {
		shift := 0.1e-9 - minStart
		axc += shift
		ayc += shift
	}
	drives := map[int]cells.Drive{
		key.x: ch.ctrlDrive(axc, ch.opts.Grid[key.tx]),
		key.y: ch.ctrlDrive(ayc, ch.opts.Grid[key.ty]),
	}
	latest := math.Max(axc, ayc)
	maxTT := math.Max(ch.opts.Grid[key.tx], ch.opts.Grid[key.ty])
	m, err := ch.simulate(drives, ch.cfg.OutputRisesOnControlling(), 0, latest, maxTT)
	if err != nil {
		return measurement{}, err
	}
	ch.mu.Lock()
	ch.memoPair[key] = m
	ch.mu.Unlock()
	return m, nil
}

// fitPin characterises one pin's single-transition timing functions.
//
// A grid sample whose simulation fails recoverably even after the retry
// ladder is dropped from the fit and recorded as degraded; at least three
// samples must survive for the quadratic fit to stay determined.
func (ch *characterizer) fitPin(pin int, ctrl bool) (core.PinTiming, error) {
	grid := ch.opts.Grid
	var tsNs, delaysNs, transNs []float64
	outRising := ch.cfg.OutputRisesOnControlling()
	if !ctrl {
		outRising = !outRising
	}
	dir := "nc"
	if ctrl {
		dir = "ctrl"
	}
	surface := fmt.Sprintf("pin%d/%s", pin, dir)
	ch.notePoints(len(grid) + 1) // grid samples + the load-slope point

	for gi, tt := range grid {
		var m measurement
		var err error
		if ctrl {
			m, err = ch.measureSingleCtrl(pin, gi)
		} else {
			m, err = ch.simulate(
				map[int]cells.Drive{pin: ch.nonCtrlDrive(stimulusArrival, tt)},
				outRising, 0, stimulusArrival, tt)
		}
		if err != nil {
			if !spice.IsRecoverable(err) {
				return core.PinTiming{}, err
			}
			ch.noteDegraded(surface, tt, 0, err)
			continue
		}
		tsNs = append(tsNs, tt/1e-9)
		delaysNs = append(delaysNs, m.delay/1e-9)
		transNs = append(transNs, m.trans/1e-9)
	}
	if len(tsNs) < 3 {
		return core.PinTiming{}, fmt.Errorf("only %d of %d grid samples converged, quadratic fit needs 3", len(tsNs), len(grid))
	}

	kd, kdSt, err := fit.FitQuad(tsNs, delaysNs)
	if err != nil {
		return core.PinTiming{}, fmt.Errorf("delay fit: %w", err)
	}
	ch.record(fmt.Sprintf("pin%d/%s/delay", pin, dir), kdSt)
	kt, ktSt, err := fit.FitQuad(tsNs, transNs)
	if err != nil {
		return core.PinTiming{}, fmt.Errorf("transition fit: %w", err)
	}
	ch.record(fmt.Sprintf("pin%d/%s/trans", pin, dir), ktSt)

	pt := core.PinTiming{
		Delay: core.Quad{K: [3]float64{kd[0], kd[1], kd[2]}},
		Trans: core.Quad{K: [3]float64{kt[0], kt[1], kt[2]}},
	}

	// Load slope (Section 3.6: delay increases linearly with load):
	// remeasure the middle grid point with one extra inverter-load of
	// capacitance.
	midIdx := len(grid) / 2
	tt := grid[midIdx]
	extra := ch.opts.Tech.InverterInputCap()
	var base measurement
	if ctrl {
		base, err = ch.measureSingleCtrl(pin, midIdx)
	} else {
		base, err = ch.simulate(
			map[int]cells.Drive{pin: ch.nonCtrlDrive(stimulusArrival, tt)},
			outRising, 0, stimulusArrival, tt)
	}
	if err == nil {
		var drive cells.Drive
		if ctrl {
			drive = ch.ctrlDrive(stimulusArrival, tt)
		} else {
			drive = ch.nonCtrlDrive(stimulusArrival, tt)
		}
		var loaded measurement
		loaded, err = ch.simulate(map[int]cells.Drive{pin: drive}, outRising, extra, stimulusArrival, tt)
		if err == nil {
			pt.DelayLoadSlope = (loaded.delay - base.delay) / extra
			pt.TransLoadSlope = (loaded.trans - base.trans) / extra
			return pt, nil
		}
	}
	if !spice.IsRecoverable(err) {
		return core.PinTiming{}, err
	}
	// Degrade to a zero load slope (the reference-load delay stays exact);
	// conservative only for loads above the reference.
	ch.noteDegraded(surface+"/load", tt, 0, err)
	return pt, nil
}

// fitPair characterises the simultaneous-switching surfaces of ordered pair
// (x, y): D0/T0 at zero skew, the SR threshold by bisection, and SKmin from
// the sampled positive arm.
func (ch *characterizer) fitPair(x, y int, model *core.CellModel) (core.PairEntry, error) {
	grid := ch.opts.Grid

	// Each (Tx,Ty) grid cell needs an independent bisection of the skew
	// threshold — the deepest fan-out of the characterisation, run on the
	// engine pool. Rows land by index, so the fitted surfaces are
	// byte-identical to a serial sweep.
	pairKeyName := fmt.Sprintf("pair%d:%d", x, y)
	type pairRow struct {
		d0, t0, sx, skmin float64
	}
	rows := make([]pairRow, len(grid)*len(grid))
	ch.notePoints(len(rows))
	// failed marks grid cells whose simulations never converged; they are
	// interpolated from neighbours after the fan-out. rowErrs keeps the
	// failure causes for the health record.
	failed := make([]bool, len(rows))
	rowErrs := make([]error, len(rows))
	err := engine.Run(ch.ctx, ch.opts.Jobs, len(rows), func(_ context.Context, i int) error {
		txIdx, tyIdx := i/len(grid), i%len(grid)
		row, err := func() (pairRow, error) {
			dx, err := ch.measureSingleCtrl(x, txIdx)
			if err != nil {
				return pairRow{}, err
			}

			m0, err := ch.measurePair(x, y, txIdx, tyIdx, 0)
			if err != nil {
				return pairRow{}, err
			}

			sx, samples, err := ch.findSkewThreshold(x, y, txIdx, tyIdx, dx.delay)
			if err != nil {
				return pairRow{}, err
			}

			// Minimal output transition time over the sampled positive
			// arm (including zero skew).
			samples = append(samples, sample{skew: 0, trans: m0.trans})
			skMin, tMin := argminTrans(samples)
			return pairRow{d0: m0.delay, t0: tMin, sx: sx, skmin: skMin}, nil
		}()
		if err != nil {
			if !spice.IsRecoverable(err) {
				return err
			}
			failed[i] = true
			rowErrs[i] = err
			return nil
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return core.PairEntry{}, err
	}

	var txsNs, tysNs []float64
	var d0Ns, t0Ns, sxNs, skminNs []float64
	for i, row := range rows {
		txIdx, tyIdx := i/len(grid), i%len(grid)
		txsNs = append(txsNs, grid[txIdx]/1e-9)
		tysNs = append(tysNs, grid[tyIdx]/1e-9)
		d0Ns = append(d0Ns, row.d0/1e-9)
		t0Ns = append(t0Ns, row.t0/1e-9)
		sxNs = append(sxNs, row.sx/1e-9)
		skminNs = append(skminNs, row.skmin/1e-9)
	}
	if err := interpolateGrid(len(grid), failed, d0Ns, t0Ns, sxNs, skminNs); err != nil {
		return core.PairEntry{}, fmt.Errorf("%s: %w", pairKeyName, err)
	}
	for i, f := range failed {
		if f {
			ch.noteDegraded(pairKeyName, grid[i/len(grid)], grid[i%len(grid)], rowErrs[i])
		}
	}

	fitCross := func(key string, ys []float64) (core.Cross, error) {
		if ch.opts.PaperExactD0 {
			k, st, err := fit.FitCrossPaper(txsNs, tysNs, ys)
			if err != nil {
				return core.Cross{}, err
			}
			ch.record(key, st)
			return core.Cross{Kxy: k[0], Kx: k[1], Ky: k[2], K1: k[3]}, nil
		}
		k, st, err := fit.FitCross(txsNs, tysNs, ys)
		if err != nil {
			return core.Cross{}, err
		}
		ch.record(key, st)
		return core.Cross{
			Kxy: k[0], Kx: k[1], Ky: k[2], K1: k[3],
			Kxx: k[4], Kyy: k[5], Kxxy: k[6], Kxyy: k[7],
		}, nil
	}

	d0, err := fitCross(pairKeyName+"/D0", d0Ns)
	if err != nil {
		return core.PairEntry{}, fmt.Errorf("D0 fit: %w", err)
	}
	t0, err := fitCross(pairKeyName+"/T0", t0Ns)
	if err != nil {
		return core.PairEntry{}, fmt.Errorf("T0 fit: %w", err)
	}
	ksx, sxSt, err := fit.FitQuad2(txsNs, tysNs, sxNs)
	if err != nil {
		return core.PairEntry{}, fmt.Errorf("SR fit: %w", err)
	}
	ch.record(pairKeyName+"/SR", sxSt)
	kskm, skmSt, err := fit.FitQuad2(txsNs, tysNs, skminNs)
	if err != nil {
		return core.PairEntry{}, fmt.Errorf("SKmin fit: %w", err)
	}
	ch.record(pairKeyName+"/SKmin", skmSt)

	return core.PairEntry{
		X: x,
		Y: y,
		Timing: core.PairTiming{
			D0:    d0,
			T0:    t0,
			SX:    core.Quad2{Kxx: ksx[0], Kyy: ksx[1], Kxy: ksx[2], Kx: ksx[3], Ky: ksx[4], K1: ksx[5]},
			SKmin: core.Quad2{Kxx: kskm[0], Kyy: kskm[1], Kxy: kskm[2], Kx: kskm[3], Ky: kskm[4], K1: kskm[5]},
		},
	}, nil
}

type sample struct {
	skew  float64
	trans float64
}

// argminTrans returns the skew minimising the sampled output transition
// time, with parabolic refinement between the neighbouring samples.
func argminTrans(samples []sample) (skew, trans float64) {
	if len(samples) == 0 {
		return 0, 0
	}
	// Sort-free scan for the minimum.
	best := 0
	for i := range samples {
		if samples[i].trans < samples[best].trans {
			best = i
		}
	}
	return samples[best].skew, samples[best].trans
}

// findSkewThreshold locates SR(Tx,Ty): the smallest skew δ = Ay−Ax at which
// the lagging transition on y no longer reduces the gate delay below the
// single-input delay dxSingle. It returns the threshold and the (skew,
// transition-time) samples collected along the way.
func (ch *characterizer) findSkewThreshold(x, y, txIdx, tyIdx int, dxSingle float64) (float64, []sample, error) {
	eps := math.Max(0.02*math.Abs(dxSingle), 2e-12)
	var samples []sample

	probe := func(skew float64) (bool, error) {
		m, err := ch.measurePair(x, y, txIdx, tyIdx, skew)
		if err != nil {
			return false, err
		}
		samples = append(samples, sample{skew: skew, trans: m.trans})
		// Delay is measured from the earliest arrival = Ax for skew>=0.
		return m.delay >= dxSingle-eps, nil
	}

	// Exponentially grow the bracket until the lagging input no longer
	// helps.
	hi := 0.25e-9
	const hiLimit = 16e-9
	for {
		done, err := probe(hi)
		if err != nil {
			return 0, nil, err
		}
		if done {
			break
		}
		hi *= 2
		if hi > hiLimit {
			// The influence never dies out within a sane window;
			// record the cap.
			return hiLimit, samples, nil
		}
	}

	lo := 0.0
	for hi-lo > ch.opts.SkewTol {
		mid := (lo + hi) / 2
		done, err := probe(mid)
		if err != nil {
			return 0, nil, err
		}
		if done {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, samples, nil
}

// fitMultiFactors characterises the k-way simultaneous speed-up factors
// (extended model) for k = 3..N at the middle grid transition time.
func (ch *characterizer) fitMultiFactors(model *core.CellModel) error {
	grid := ch.opts.Grid
	midIdx := len(grid) / 2
	tt := grid[midIdx]

	for k := 3; k <= model.N; k++ {
		drives := make(map[int]cells.Drive, k)
		var events []core.InputEvent
		for pin := 0; pin < k; pin++ {
			drives[pin] = ch.ctrlDrive(stimulusArrival, tt)
			events = append(events, core.InputEvent{Pin: pin, Arrival: stimulusArrival, Trans: tt})
		}
		ch.notePoints(1)
		meas, err := ch.simulate(drives, ch.cfg.OutputRisesOnControlling(), 0, stimulusArrival, tt)
		if err != nil {
			if !spice.IsRecoverable(err) {
				return err
			}
			// Conservative fallback: carry the previous factor forward
			// (or no speed-up at all), preserving the non-increasing
			// sequence the STA bound relies on.
			factor := 1.0
			if ln := len(model.MultiFactor); ln > 0 {
				factor = model.MultiFactor[ln-1]
			}
			ch.noteDegraded(fmt.Sprintf("multi%d", k), tt, 0, err)
			model.MultiFactor = append(model.MultiFactor, factor)
			continue
		}
		// Pairwise model prediction without multi factors.
		saved := model.MultiFactor
		model.MultiFactor = nil
		pred, err := model.CtrlResponse(events, 0)
		model.MultiFactor = saved
		if err != nil {
			return err
		}
		predDelay := pred.Arrival - stimulusArrival
		factor := 1.0
		if predDelay > 0 {
			factor = meas.delay / predDelay
		}
		if factor > 1 {
			factor = 1
		}
		if factor < 0.1 {
			factor = 0.1
		}
		// More parallel charge paths can only speed the gate up:
		// keep the factor sequence non-increasing in k so the STA
		// lower bound at k = n covers every smaller k.
		if ln := len(model.MultiFactor); ln > 0 && factor > model.MultiFactor[ln-1] {
			factor = model.MultiFactor[ln-1]
		}
		model.MultiFactor = append(model.MultiFactor, factor)
	}
	return nil
}
