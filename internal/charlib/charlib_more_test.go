package charlib

import (
	"testing"

	"sstiming/internal/cells"
	"sstiming/internal/core"
	"sstiming/internal/device"
)

func TestDefaultCellsSet(t *testing.T) {
	tech := device.Default05um()
	set := DefaultCells(tech)
	want := map[string]bool{"INV": true, "NAND2": true, "NAND3": true, "NAND4": true, "NOR2": true, "NOR3": true}
	if len(set) != len(want) {
		t.Fatalf("%d default cells, want %d", len(set), len(want))
	}
	for _, cfg := range set {
		if !want[cfg.Name()] {
			t.Errorf("unexpected default cell %s", cfg.Name())
		}
		if !cfg.LoadInverter {
			t.Errorf("%s should carry the standard inverter load", cfg.Name())
		}
	}
}

func TestDefaultOptionsFill(t *testing.T) {
	var o Options
	o.fill()
	if o.Tech == nil || len(o.Grid) != 5 || len(o.Cells) != 6 || o.TStep <= 0 || o.SkewTol <= 0 {
		t.Errorf("fill() incomplete: %+v", o)
	}
	// Progress must be callable.
	o.Progress("test %d", 1)
}

func TestSkipPairsProducesPinOnlyModel(t *testing.T) {
	tech := device.Default05um()
	lib, err := Characterize(Options{
		Tech:      tech,
		Grid:      []float64{0.2e-9, 0.6e-9, 1.2e-9},
		Cells:     []cells.Config{{Kind: cells.NAND, N: 2, Tech: tech, LoadInverter: true}},
		SkipPairs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := lib.MustCell("NAND2")
	if len(m.Pairs) != 0 {
		t.Errorf("SkipPairs left %d pair entries", len(m.Pairs))
	}
	if len(m.CtrlPins) != 2 || len(m.NonCtrlPins) != 2 {
		t.Error("pin models missing")
	}
	// The model degrades to pin-to-pin: no zero-skew speed-up.
	const T = 0.5e-9
	if d := m.DelayCtrl2(0, 1, T, T, 0, 0); d != m.CtrlPins[0].DelayAt(T, 0) {
		t.Errorf("pin-only model should fall back to pin-to-pin, got %g", d)
	}
}

func TestPaperExactD0Option(t *testing.T) {
	tech := device.Default05um()
	lib, err := Characterize(Options{
		Tech:         tech,
		Grid:         []float64{0.2e-9, 0.6e-9, 1.2e-9},
		Cells:        []cells.Config{{Kind: cells.NAND, N: 2, Tech: tech, LoadInverter: true}},
		PaperExactD0: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := lib.MustCell("NAND2").Pair(0, 1)
	if p == nil {
		t.Fatal("missing pair")
	}
	if p.D0.Kxx != 0 || p.D0.Kyy != 0 || p.D0.Kxxy != 0 || p.D0.Kxyy != 0 {
		t.Errorf("paper-exact fit has correction terms: %+v", p.D0)
	}
	// The paper form still captures the headline speed-up.
	const T = 0.5e-9
	m := lib.MustCell("NAND2")
	if d0 := m.DelayCtrl2(0, 1, T, T, 0, 0); d0 >= m.CtrlPins[0].DelayAt(T, 0) {
		t.Errorf("paper-exact D0 lost the speed-up: %g", d0)
	}
}

func TestMultiFactorsForNAND3(t *testing.T) {
	tech := device.Default05um()
	lib, err := Characterize(Options{
		Tech:  tech,
		Grid:  []float64{0.2e-9, 0.6e-9, 1.2e-9},
		Cells: []cells.Config{{Kind: cells.NAND, N: 3, Tech: tech, LoadInverter: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := lib.MustCell("NAND3")
	if len(m.MultiFactor) != 1 {
		t.Fatalf("NAND3 multi factors = %v, want one entry", m.MultiFactor)
	}
	if f := m.MultiFactor[0]; f <= 0 || f > 1 {
		t.Errorf("factor %g outside (0,1]", f)
	}
	// Three simultaneous inputs beat the best pairwise prediction.
	const T = 0.5e-9
	evs := []core.InputEvent{
		{Pin: 0, Arrival: 1e-9, Trans: T},
		{Pin: 1, Arrival: 1e-9, Trans: T},
		{Pin: 2, Arrival: 1e-9, Trans: T},
	}
	r3, err := m.CtrlResponse(evs, 0)
	if err != nil {
		t.Fatal(err)
	}
	saved := m.MultiFactor
	m.MultiFactor = nil
	r2, err := m.CtrlResponse(evs, 0)
	m.MultiFactor = saved
	if err != nil {
		t.Fatal(err)
	}
	if r3.Arrival > r2.Arrival+1e-18 {
		t.Errorf("3-way factor slowed the response: %g vs %g", r3.Arrival, r2.Arrival)
	}
}
