package charlib

import (
	"context"
	"fmt"
	"math"

	"sstiming/internal/cells"
	"sstiming/internal/core"
	"sstiming/internal/engine"
	"sstiming/internal/fit"
	"sstiming/internal/spice"
)

// This file characterises the simultaneous to-non-controlling surfaces (the
// paper's Section 3.6 future work, implemented in core/noncontrolling.go):
// both inputs of a pair transition towards the non-controlling value with a
// swept skew, and the gate delay — measured from the LATEST arrival —
// exhibits a Λ-shaped peak at zero skew.

// measureNCPair measures (and memoises) the two-input to-non-controlling
// response: pin x switching at the reference arrival, pin y at skew later.
// The returned delay is relative to the LATEST switching input arrival.
func (ch *characterizer) measureNCPair(x, y, txIdx, tyIdx int, skew float64) (measurement, error) {
	dps := int(math.Round(skew / 1e-12))
	key := pairKey{x: x, y: y, tx: txIdx, ty: tyIdx, dps: dps}
	if x > y {
		key = pairKey{x: y, y: x, tx: tyIdx, ty: txIdx, dps: -dps}
	}
	ch.mu.Lock()
	m0, ok := ch.memoNCPair[key]
	ch.mu.Unlock()
	if ok {
		return m0, nil
	}

	axc := stimulusArrival
	ayc := stimulusArrival + float64(key.dps)*1e-12
	txc := ch.opts.Grid[key.tx]
	tyc := ch.opts.Grid[key.ty]
	minStart := math.Min(axc-txc/0.8/2, ayc-tyc/0.8/2)
	if minStart < 0.1e-9 {
		shift := 0.1e-9 - minStart
		axc += shift
		ayc += shift
	}
	drives := map[int]cells.Drive{
		key.x: ch.nonCtrlDrive(axc, txc),
		key.y: ch.nonCtrlDrive(ayc, tyc),
	}
	latest := math.Max(axc, ayc)
	maxTT := math.Max(txc, tyc)
	// For the to-non-controlling response the remaining inputs must hold
	// the NON-controlling value so the output switches when the pair
	// completes; simulate() holds them there by default — but its delay
	// is measured from the earliest arrival. Re-derive against latest.
	outRising := !ch.cfg.OutputRisesOnControlling()
	m, err := ch.simulateNC(drives, outRising, latest, maxTT)
	if err != nil {
		return measurement{}, err
	}
	ch.mu.Lock()
	ch.memoNCPair[key] = m
	ch.mu.Unlock()
	return m, nil
}

// simulateNC runs a to-non-controlling testbench with the switching pins'
// drives given and every other pin steady at the non-controlling value; the
// measured delay is relative to the LATEST switching arrival.
func (ch *characterizer) simulateNC(drives map[int]cells.Drive, outRising bool, latest, maxTT float64) (measurement, error) {
	n := ch.numInputs()
	all := make([]cells.Drive, n)
	for i := 0; i < n; i++ {
		if d, ok := drives[i]; ok {
			all[i] = d
		} else {
			all[i] = ch.steadyNonCtrl()
		}
	}
	tr, err := ch.runSim(ch.cfg, all, outRising, latest, maxTT)
	if err != nil {
		return measurement{}, err
	}
	return measurement{delay: tr.Arrival - latest, trans: tr.TransTime}, nil
}

// measureSingleNC measures (and memoises) the single-input
// to-non-controlling response at a grid point.
func (ch *characterizer) measureSingleNC(pin, gridIdx int) (measurement, error) {
	key := [2]int{pin, gridIdx}
	ch.mu.Lock()
	m, ok := ch.singleNC[key]
	ch.mu.Unlock()
	if ok {
		return m, nil
	}
	tt := ch.opts.Grid[gridIdx]
	outRising := !ch.cfg.OutputRisesOnControlling()
	m, err := ch.simulateNC(
		map[int]cells.Drive{pin: ch.nonCtrlDrive(stimulusArrival, tt)},
		outRising, stimulusArrival, tt)
	if err != nil {
		return measurement{}, err
	}
	ch.mu.Lock()
	ch.singleNC[key] = m
	ch.mu.Unlock()
	return m, nil
}

// fitNCPair characterises the Λ-shaped to-non-controlling surfaces of
// ordered pair (x, y): the peak delay/transition at zero skew, and the skew
// threshold beyond which the EARLIER input stops mattering (the positive-
// side arm anchors at the later input's pin-to-pin delay).
func (ch *characterizer) fitNCPair(x, y int) (core.PairEntry, error) {
	grid := ch.opts.Grid

	// Grid cells fan out on the engine pool exactly like fitPair's; rows
	// land by index for a scheduling-independent fit.
	keyName := fmt.Sprintf("ncpair%d:%d", x, y)
	type ncRow struct {
		d0, t0, s float64
	}
	rows := make([]ncRow, len(grid)*len(grid))
	ch.notePoints(len(rows))
	// Grid cells that never converge are interpolated from neighbours after
	// the fan-out, mirroring fitPair's graceful degradation.
	failed := make([]bool, len(rows))
	rowErrs := make([]error, len(rows))
	err := engine.Run(ch.ctx, ch.opts.Jobs, len(rows), func(_ context.Context, i int) error {
		txIdx, tyIdx := i/len(grid), i%len(grid)
		row, err := func() (ncRow, error) {
			dy, err := ch.measureSingleNC(y, tyIdx)
			if err != nil {
				return ncRow{}, err
			}
			m0, err := ch.measureNCPair(x, y, txIdx, tyIdx, 0)
			if err != nil {
				return ncRow{}, err
			}
			s, err := ch.findNCSkewThreshold(x, y, txIdx, tyIdx, dy.delay)
			if err != nil {
				return ncRow{}, err
			}
			return ncRow{d0: m0.delay, t0: m0.trans, s: s}, nil
		}()
		if err != nil {
			if !spice.IsRecoverable(err) {
				return err
			}
			failed[i] = true
			rowErrs[i] = err
			return nil
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return core.PairEntry{}, err
	}

	var txsNs, tysNs []float64
	var d0Ns, t0Ns, sNs []float64
	for i, row := range rows {
		txIdx, tyIdx := i/len(grid), i%len(grid)
		txsNs = append(txsNs, grid[txIdx]/1e-9)
		tysNs = append(tysNs, grid[tyIdx]/1e-9)
		d0Ns = append(d0Ns, row.d0/1e-9)
		t0Ns = append(t0Ns, row.t0/1e-9)
		sNs = append(sNs, row.s/1e-9)
	}
	if err := interpolateGrid(len(grid), failed, d0Ns, t0Ns, sNs); err != nil {
		return core.PairEntry{}, fmt.Errorf("%s: %w", keyName, err)
	}
	for i, f := range failed {
		if f {
			ch.noteDegraded(keyName, grid[i/len(grid)], grid[i%len(grid)], rowErrs[i])
		}
	}

	fitCross := func(key string, ys []float64) (core.Cross, error) {
		if ch.opts.PaperExactD0 {
			k, st, err := fit.FitCrossPaper(txsNs, tysNs, ys)
			if err != nil {
				return core.Cross{}, err
			}
			ch.record(key, st)
			return core.Cross{Kxy: k[0], Kx: k[1], Ky: k[2], K1: k[3]}, nil
		}
		k, st, err := fit.FitCross(txsNs, tysNs, ys)
		if err != nil {
			return core.Cross{}, err
		}
		ch.record(key, st)
		return core.Cross{
			Kxy: k[0], Kx: k[1], Ky: k[2], K1: k[3],
			Kxx: k[4], Kyy: k[5], Kxxy: k[6], Kxyy: k[7],
		}, nil
	}
	d0, err := fitCross(keyName+"/D0", d0Ns)
	if err != nil {
		return core.PairEntry{}, fmt.Errorf("NC D0 fit: %w", err)
	}
	t0, err := fitCross(keyName+"/T0", t0Ns)
	if err != nil {
		return core.PairEntry{}, fmt.Errorf("NC T0 fit: %w", err)
	}
	ks, sSt, err := fit.FitQuad2(txsNs, tysNs, sNs)
	if err != nil {
		return core.PairEntry{}, fmt.Errorf("NC SR fit: %w", err)
	}
	ch.record(keyName+"/SR", sSt)

	return core.PairEntry{
		X: x,
		Y: y,
		Timing: core.PairTiming{
			D0: d0,
			T0: t0,
			SX: core.Quad2{Kxx: ks[0], Kyy: ks[1], Kxy: ks[2], Kx: ks[3], Ky: ks[4], K1: ks[5]},
		},
	}, nil
}

// findNCSkewThreshold locates the skew beyond which the earlier input x no
// longer slows the response to the later input y: the smallest δ = Ay−Ax
// with delay(δ) within tolerance of the single-input delay of y.
func (ch *characterizer) findNCSkewThreshold(x, y, txIdx, tyIdx int, dySingle float64) (float64, error) {
	eps := math.Max(0.04*math.Abs(dySingle), 3e-12)

	probe := func(skew float64) (bool, error) {
		m, err := ch.measureNCPair(x, y, txIdx, tyIdx, skew)
		if err != nil {
			return false, err
		}
		return math.Abs(m.delay-dySingle) <= eps, nil
	}

	hi := 0.25e-9
	const hiLimit = 8e-9
	for {
		done, err := probe(hi)
		if err != nil {
			return 0, err
		}
		if done {
			break
		}
		hi *= 2
		if hi > hiLimit {
			return hiLimit, nil
		}
	}
	lo := 0.0
	for hi-lo > ch.opts.SkewTol {
		mid := (lo + hi) / 2
		done, err := probe(mid)
		if err != nil {
			return 0, err
		}
		if done {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
