package charlib

import (
	"math"
	"sync"
	"testing"

	"sstiming/internal/cells"
	"sstiming/internal/core"
	"sstiming/internal/device"
)

var (
	ncLibOnce sync.Once
	ncLibVal  *core.Library
	ncLibErr  error
)

func ncTestLibrary(t *testing.T) *core.Library {
	t.Helper()
	ncLibOnce.Do(func() {
		opts := FastOptions()
		opts.Cells = []cells.Config{{Kind: cells.NAND, N: 2, Tech: opts.Tech, LoadInverter: true}}
		opts.NCPairs = true
		ncLibVal, ncLibErr = Characterize(opts)
	})
	if ncLibErr != nil {
		t.Fatalf("NC characterisation failed: %v", ncLibErr)
	}
	return ncLibVal
}

func TestNCPairsCharacterised(t *testing.T) {
	lib := ncTestLibrary(t)
	m := lib.MustCell("NAND2")
	if len(m.NCPairs) != 2 {
		t.Fatalf("%d NC pair entries, want 2", len(m.NCPairs))
	}
	if m.NCPair(0, 1) == nil || m.NCPair(1, 0) == nil {
		t.Fatal("NC pair lookup failed")
	}
}

// TestNCModelCapturesSlowdown verifies the Section 3.6 phenomenon end to
// end: the fitted Λ model reports a zero-skew to-non-controlling delay
// clearly above the single-input pin-to-pin delay, matching the simulator.
func TestNCModelCapturesSlowdown(t *testing.T) {
	lib := ncTestLibrary(t)
	m := lib.MustCell("NAND2")
	tech := device.Default05um()
	const T = 0.5e-9

	peak := m.DelayNonCtrl2(0, 1, T, T, 0, 0)
	single := m.NonCtrlPins[1].DelayAt(T, 0)
	if peak <= single*1.05 {
		t.Errorf("NC peak %g should clearly exceed single %g", peak, single)
	}

	// Against a fresh simulation at zero skew.
	cfg := cells.Config{Kind: cells.NAND, N: 2, Tech: tech, LoadInverter: true}
	ax := 1.2e-9
	tr, err := cfg.MeasureResponse([]cells.Drive{
		cells.Rising(ax, T), cells.Rising(ax, T),
	}, false, cells.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sim := tr.Arrival - ax
	if rel := math.Abs(peak-sim) / sim; rel > 0.15 {
		t.Errorf("NC peak %g vs simulated %g (%.0f%% error)", peak, sim, rel*100)
	}
}

func TestNCModelMatchesSimulatorOverSkew(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	lib := ncTestLibrary(t)
	m := lib.MustCell("NAND2")
	tech := device.Default05um()
	cfg := cells.Config{Kind: cells.NAND, N: 2, Tech: tech, LoadInverter: true}
	const T = 0.5e-9

	for _, skew := range []float64{-0.4e-9, -0.15e-9, 0, 0.15e-9, 0.4e-9} {
		ax := 1.2e-9
		ay := ax + skew
		tr, err := cfg.MeasureResponse([]cells.Drive{
			cells.Rising(ax, T), cells.Rising(ay, T),
		}, false, cells.SimOptions{TStop: math.Max(ax, ay) + 3e-9})
		if err != nil {
			t.Fatal(err)
		}
		sim := tr.Arrival - math.Max(ax, ay)
		mod := m.DelayNonCtrl2(0, 1, T, T, skew, 0)
		if rel := math.Abs(mod-sim) / math.Max(sim, 30e-12); rel > 0.30 {
			t.Errorf("skew %g: model %g vs sim %g (%.0f%%)", skew, mod, sim, rel*100)
		}
	}
}
