package charlib

import (
	"bytes"
	"context"
	"testing"

	"sstiming/internal/cells"
	"sstiming/internal/device"
	"sstiming/internal/engine"
)

// tinyOptions is a characterisation small enough to run twice in a test:
// a 3-point grid over INV and NAND2 only.
func tinyOptions() Options {
	tech := device.Default05um()
	return Options{
		Tech: tech,
		Grid: []float64{0.2e-9, 0.5e-9, 1.0e-9},
		Cells: []cells.Config{
			{Kind: cells.Inv, N: 1, Tech: tech, LoadInverter: true},
			{Kind: cells.NAND, N: 2, Tech: tech, LoadInverter: true},
		},
		TStep: 4e-12,
	}
}

// TestParallelCharacterizationDeterministic asserts the tentpole guarantee:
// a parallel characterisation produces a byte-identical library to a serial
// one, because engine.Run places every job's result by index and the
// underlying simulations are deterministic.
func TestParallelCharacterizationDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("characterises twice; skipped in -short")
	}
	serialize := func(jobs int, met *engine.Metrics) []byte {
		opts := tinyOptions()
		opts.Jobs = jobs
		opts.Metrics = met
		lib, err := Characterize(opts)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		var buf bytes.Buffer
		if err := lib.WriteJSON(&buf); err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return buf.Bytes()
	}

	met := engine.NewMetrics()
	serial := serialize(1, nil)
	parallel := serialize(4, met)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("parallel library differs from serial (serial %d bytes, parallel %d bytes)",
			len(serial), len(parallel))
	}

	// The metrics sink must have seen the simulator effort of the
	// parallel run.
	snap := met.Snapshot()
	for _, c := range []engine.Counter{
		engine.CharCells, engine.CharJobs,
		engine.SpiceTransients, engine.SpiceTransSteps, engine.SpiceNewtonIters,
	} {
		if snap.Counters[c.String()] <= 0 {
			t.Errorf("counter %s = %d, want > 0", c, snap.Counters[c.String()])
		}
	}
	if snap.Counters[engine.CharCells.String()] != 2 {
		t.Errorf("charlib/cells = %d, want 2", snap.Counters[engine.CharCells.String()])
	}
}

// TestCharacterizeCancelled asserts that a cancelled context aborts the run
// with a context error instead of finishing it.
func TestCharacterizeCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := tinyOptions()
	opts.Ctx = ctx
	opts.Jobs = 2
	if _, err := Characterize(opts); err == nil {
		t.Fatal("Characterize with a cancelled context should fail")
	}
}
