package charlib

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync/atomic"
	"testing"

	"sstiming/internal/cells"
	"sstiming/internal/core"
	"sstiming/internal/device"
	"sstiming/internal/engine"
	"sstiming/internal/faultinject"
	"sstiming/internal/spice"
)

// loadGolden reads the pinned golden library for tolerance comparisons.
func loadGolden(t *testing.T) *core.Library {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", "charlib_golden.json"))
	if err != nil {
		t.Fatalf("golden file missing: %v", err)
	}
	defer f.Close()
	lib, err := core.LoadLibrary(f)
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func evalQuad(q core.Quad, tNs float64) float64 {
	return q.K[0] + q.K[1]*tNs + q.K[2]*tNs*tNs
}

// TestChaosInjectionRecoveredBySolver is the acceptance scenario: one-shot
// non-convergence injected at 5% of all solver time points. The solver's
// step-halving ladder absorbs every fault, characterisation completes with
// no degradation, and the library stays within tolerance of the golden.
func TestChaosInjectionRecoveredBySolver(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	plan := faultinject.NewPlan(1, 0.05, spice.FaultNoConverge, false)
	opts := goldenOptions()
	opts.Jobs = 1
	opts.NewFaultHook = plan.NextHook
	opts.Metrics = engine.NewMetrics()

	lib, err := Characterize(opts)
	if err != nil {
		t.Fatalf("characterisation under 5%% fault injection failed: %v", err)
	}
	if plan.Injected() == 0 {
		t.Fatal("plan injected no faults — vacuous test")
	}
	if got := opts.Metrics.Get(engine.SpiceRecovered); got == 0 {
		t.Error("no solver-level recoveries recorded")
	}
	if got := opts.Metrics.Get(engine.SpiceUnrecovered); got != 0 {
		t.Errorf("SpiceUnrecovered = %d, want 0 (one-shot faults always recover)", got)
	}

	golden := loadGolden(t)
	for name, want := range golden.Cells {
		got := lib.Cells[name]
		if got == nil {
			t.Fatalf("cell %s missing", name)
		}
		if got.Health != nil && len(got.Health.Degraded) > 0 {
			t.Errorf("%s: unexpected degradation %v", name, got.Health.Degraded)
		}
		// Recovered points integrate with halved sub-steps, so fitted
		// delays may drift very slightly; 2% is far tighter than the
		// paper's own accuracy target.
		for pin := range want.CtrlPins {
			for _, tNs := range []float64{0.2, 0.5, 1.0} {
				g := evalQuad(got.CtrlPins[pin].Delay, tNs)
				w := evalQuad(want.CtrlPins[pin].Delay, tNs)
				if w != 0 && abs(g-w)/abs(w) > 0.02 {
					t.Errorf("%s pin %d delay(%.1fns) = %.6f, golden %.6f", name, pin, tNs, g, w)
				}
			}
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// ordinalWindowHook fails every solver point of transients whose issue
// ordinal falls in [lo, hi) — persistently, so the solver ladder cannot
// rescue them and the failure escalates to charlib.
func ordinalWindowHook(lo, hi int64) func() spice.FaultHook {
	var next atomic.Int64
	return func() spice.FaultHook {
		o := next.Add(1) - 1
		if o < lo || o >= hi {
			return nil
		}
		return func(int, float64, int) spice.FaultKind { return spice.FaultNoConverge }
	}
}

// nand2Options characterises NAND2 alone on the golden grid — the smallest
// configuration with pair surfaces (where graceful degradation interpolates).
func nand2Options() Options {
	tech := device.Default05um()
	return Options{
		Tech:  tech,
		Grid:  []float64{0.2e-9, 0.5e-9, 1.0e-9},
		Cells: []cells.Config{{Kind: cells.NAND, N: 2, Tech: tech, LoadInverter: true}},
		TStep: 3e-12,
		Jobs:  1,
	}
}

// TestChaosDegradationInterpolatesFailedGridPoints drives persistent faults
// into a window of pair-phase simulations with charlib retries disabled:
// the affected grid cells must be interpolated from neighbours, recorded in
// the health report, and the characterisation must still succeed.
func TestChaosDegradationInterpolatesFailedGridPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	opts := nand2Options()
	// Pin fits issue the first ~18 transients for this configuration; the
	// window lands safely inside the pair-surface phase.
	opts.NewFaultHook = ordinalWindowHook(30, 34)
	opts.Retries = -1 // disable charlib retries so the faults surface as degradation

	lib, err := Characterize(opts)
	if err != nil {
		t.Fatalf("characterisation did not degrade gracefully: %v", err)
	}
	m := lib.Cells["NAND2"]
	if m.Health == nil || len(m.Health.Degraded) == 0 {
		t.Fatal("no degradation recorded — the fault window missed; adjust the ordinals")
	}
	if m.Health.Points == 0 {
		t.Error("health record has zero attempted points")
	}
	for _, d := range m.Health.Degraded {
		if !strings.HasPrefix(d.Surface, "pair") {
			t.Errorf("degraded surface %q, want pair phase only", d.Surface)
		}
		if d.Reason == "" || d.Tx == 0 {
			t.Errorf("degraded point lacks diagnostics: %+v", d)
		}
	}
	if frac := m.Health.DegradedFrac(); frac > 0.25 {
		t.Errorf("degraded fraction %.2f exceeded the default budget yet succeeded", frac)
	}
	if lib.DegradedPoints() != len(m.Health.Degraded) {
		t.Errorf("Library.DegradedPoints() = %d, want %d", lib.DegradedPoints(), len(m.Health.Degraded))
	}
}

// TestChaosDegradationBudgetEnforced re-runs the degradation scenario with a
// near-zero budget: the same faults must now fail the characterisation with
// an error naming the budget.
func TestChaosDegradationBudgetEnforced(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	opts := nand2Options()
	opts.NewFaultHook = ordinalWindowHook(30, 34)
	opts.Retries = -1
	opts.MaxDegradedFrac = 0.001

	_, err := Characterize(opts)
	if err == nil {
		t.Fatal("characterisation succeeded despite an exceeded degradation budget")
	}
	if !strings.Contains(err.Error(), "degraded") || !strings.Contains(err.Error(), "budget") {
		t.Errorf("error does not name the budget: %v", err)
	}
	if !strings.Contains(err.Error(), "NAND2") {
		t.Errorf("error does not name the failing cell: %v", err)
	}
}

// TestChaosRetryRescuesPersistentFault checks the charlib-level retry: a
// persistent fault defeats the solver ladder on the first attempt, but the
// retry re-runs the simulation as a fresh transient (new injection ordinal)
// and succeeds — recorded as Retried in the health report.
func TestChaosRetryRescuesPersistentFault(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	opts := nand2Options()
	opts.SkipPairs = true // pin fits only: fast, and a retried sample must not degrade
	opts.NewFaultHook = ordinalWindowHook(2, 3)
	opts.Metrics = engine.NewMetrics()

	lib, err := Characterize(opts)
	if err != nil {
		t.Fatalf("retry did not rescue the persistent fault: %v", err)
	}
	m := lib.Cells["NAND2"]
	if m.Health == nil || m.Health.Retried == 0 {
		t.Fatal("no retry recorded in the health report")
	}
	if len(m.Health.Degraded) != 0 {
		t.Errorf("unexpected degradation: %v", m.Health.Degraded)
	}
	if got := opts.Metrics.Get(engine.CharRetries); got == 0 {
		t.Error("CharRetries metric not incremented")
	}
}

// TestChaosPanicInParallelCharacterizationNamesCell injects a panic into the
// first simulation issued by the parallel cell fan-out: the engine pool must
// contain the crash, cancel the siblings, and the error must name the cell
// that blew up (satellite: pool-level recovery alone only knows the
// goroutine).
func TestChaosPanicInParallelCharacterizationNamesCell(t *testing.T) {
	opts := FastOptions()
	opts.Jobs = 3
	var next atomic.Int64
	opts.NewFaultHook = func() spice.FaultHook {
		if next.Add(1)-1 == 0 {
			return func(int, float64, int) spice.FaultKind { return spice.FaultPanic }
		}
		return nil
	}

	_, err := Characterize(opts)
	if err == nil {
		t.Fatal("injected panic did not fail the characterisation")
	}
	if !strings.Contains(err.Error(), "engine: worker panic") {
		t.Errorf("panic was not converted by the pool: %v", err)
	}
	if !strings.Contains(err.Error(), "faultinject: forced panic") {
		t.Errorf("panic payload lost: %v", err)
	}
	if !regexp.MustCompile(`(INV|NAND2|NOR2): engine: worker panic`).MatchString(err.Error()) {
		t.Errorf("error does not name the crashing cell: %v", err)
	}
}
