package sta

import (
	"fmt"
	"math"
	"strings"

	"sstiming/internal/netlist"
)

// PathStep is one node of an extracted worst path.
type PathStep struct {
	// Net is the line name.
	Net string
	// Rising is the transition direction at this line.
	Rising bool
	// Arrival is the latest arrival (AL) of this transition.
	Arrival float64
}

// CriticalPath extracts the latest-arrival path ending at the given net and
// direction by greedy backtrace: at every gate it follows the input whose
// worst-case candidate realises the output's latest arrival. The returned
// slice runs from a primary input to the requested endpoint.
func (r *Result) CriticalPath(net string, rising bool) ([]PathStep, error) {
	c := r.Circuit
	var path []PathStep
	curNet, curRising := net, rising

	for hop := 0; hop <= len(c.Gates)+1; hop++ {
		lt := r.Lines[curNet]
		if lt == nil {
			return nil, fmt.Errorf("sta: no timing for net %q", curNet)
		}
		w := lt.Rise
		if !curRising {
			w = lt.Fall
		}
		path = append(path, PathStep{Net: curNet, Rising: curRising, Arrival: w.AL})

		gi, driven := c.Driver(curNet)
		if !driven {
			// Reached a primary input; reverse into PI->PO order.
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
			}
			return path, nil
		}
		g := &c.Gates[gi]
		cell, ok := r.libCell(g)
		if !ok {
			return nil, fmt.Errorf("sta: no cell for gate %q", g.Output)
		}
		extraLoad := float64(c.FanoutCount(g.Output)-1) * cell.RefLoad

		// Which input direction and pin table feed this output
		// transition?
		var inRising, ctrl bool
		switch g.Kind {
		case netlist.Inv:
			inRising, ctrl = !curRising, curRising
		case netlist.Buf:
			inRising, ctrl = curRising, curRising
		case netlist.Nand:
			inRising, ctrl = !curRising, curRising
		case netlist.Nor:
			inRising, ctrl = !curRising, !curRising
		default:
			return nil, fmt.Errorf("sta: unsupported gate kind %v", g.Kind)
		}

		pins := cell.NonCtrlPins
		if ctrl {
			pins = cell.CtrlPins
		}

		// Find the input whose worst-case candidate realises (or comes
		// closest to) the output's latest arrival.
		bestPin := -1
		bestGap := math.Inf(1)
		var bestCand float64
		for x, in := range g.Inputs {
			inLT := r.Lines[in]
			if inLT == nil {
				continue
			}
			iw := inLT.Rise
			if !inRising {
				iw = inLT.Fall
			}
			libPin := x
			if g.Kind == netlist.Inv || g.Kind == netlist.Buf {
				libPin = 0
			}
			p := &pins[libPin]
			_, dMax := p.Delay.MaxOver(iw.TS, iw.TL)
			cand := iw.AL + dMax + p.DelayLoadSlope*extraLoad
			if gap := math.Abs(cand - w.AL); gap < bestGap {
				bestGap = gap
				bestPin = x
				bestCand = cand
			}
		}
		if bestPin < 0 {
			return nil, fmt.Errorf("sta: gate %q has no timed inputs", g.Output)
		}
		_ = bestCand
		curNet = g.Inputs[bestPin]
		curRising = inRising
	}
	return nil, fmt.Errorf("sta: path extraction did not terminate (cycle?)")
}

// WorstPath returns the critical path to the latest-arriving primary output
// transition.
func (r *Result) WorstPath() ([]PathStep, error) {
	var worstNet string
	worstRising := false
	worst := math.Inf(-1)
	for _, po := range r.Circuit.POs {
		lt := r.Lines[po]
		if lt == nil {
			continue
		}
		if lt.Rise.AL > worst {
			worst, worstNet, worstRising = lt.Rise.AL, po, true
		}
		if lt.Fall.AL > worst {
			worst, worstNet, worstRising = lt.Fall.AL, po, false
		}
	}
	if worstNet == "" {
		return nil, fmt.Errorf("sta: circuit has no timed primary outputs")
	}
	return r.CriticalPath(worstNet, worstRising)
}

// FormatPath renders a path as a one-line report, e.g.
// "1(R@0.00) -> 10(F@0.18) -> 22(R@0.51)".
func FormatPath(path []PathStep) string {
	parts := make([]string, len(path))
	for i, st := range path {
		dir := "F"
		if st.Rising {
			dir = "R"
		}
		parts[i] = fmt.Sprintf("%s(%s@%.3fns)", st.Net, dir, st.Arrival*1e9)
	}
	return strings.Join(parts, " -> ")
}
