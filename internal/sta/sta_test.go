package sta

import (
	"math"
	"testing"

	"sstiming/internal/benchgen"
	"sstiming/internal/netlist"
	"sstiming/internal/prechar"
)

func analyzeC17(t *testing.T, mode Mode) *Result {
	t.Helper()
	lib := prechar.MustLibrary()
	res, err := Analyze(benchgen.C17(), Options{Lib: lib, Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAnalyzeC17WindowsValid(t *testing.T) {
	for _, mode := range []Mode{ModeProposed, ModePinToPin} {
		res := analyzeC17(t, mode)
		for net, lt := range res.Lines {
			if !lt.Rise.Valid() || !lt.Fall.Valid() {
				t.Errorf("mode %v: invalid window at %s: %+v", mode, net, lt)
			}
		}
		if len(res.Lines) != 11 {
			t.Errorf("mode %v: %d lines, want 11", mode, len(res.Lines))
		}
	}
}

func TestProposedMinDelayNotWorse(t *testing.T) {
	// The paper's central STA claim (Table 2): the proposed model gives
	// the same max-delay but smaller-or-equal (more accurate) min-delay,
	// because pin-to-pin STA misses the simultaneous to-controlling
	// speed-up. (The paper itself reports three benchmarks where the
	// ranges tie; whether tiny c17 ties depends on the cell library.
	// The strict inequality is asserted on c880 in
	// TestTable2ShapeOnSyntheticBenchmark.)
	prop := analyzeC17(t, ModeProposed)
	p2p := analyzeC17(t, ModePinToPin)

	minProp := prop.MinPOArrival()
	minP2P := p2p.MinPOArrival()
	if minProp > minP2P+1e-15 {
		t.Errorf("proposed min-delay %g should not exceed pin-to-pin %g", minProp, minP2P)
	}

	maxProp := prop.MaxPOArrival()
	maxP2P := p2p.MaxPOArrival()
	if math.Abs(maxProp-maxP2P) > 1e-15 {
		t.Errorf("max-delays should agree: proposed %g vs pin-to-pin %g", maxProp, maxP2P)
	}
}

func TestPerLineContainment(t *testing.T) {
	// Proposed-model windows must be contained in pin-to-pin windows:
	// the only change is a smaller earliest arrival / shorter minimal
	// transition.
	prop := analyzeC17(t, ModeProposed)
	p2p := analyzeC17(t, ModePinToPin)
	for net, a := range prop.Lines {
		b := p2p.Lines[net]
		check := func(wa, wb Window, dir string) {
			if wa.AS > wb.AS+1e-15 {
				t.Errorf("%s %s: proposed AS %g above pin-to-pin %g", net, dir, wa.AS, wb.AS)
			}
			if math.Abs(wa.AL-wb.AL) > 1e-15 {
				t.Errorf("%s %s: AL should agree (%g vs %g)", net, dir, wa.AL, wb.AL)
			}
			if wa.TS > wb.TS+1e-15 {
				t.Errorf("%s %s: proposed TS %g above pin-to-pin %g", net, dir, wa.TS, wb.TS)
			}
			if math.Abs(wa.TL-wb.TL) > 1e-15 {
				t.Errorf("%s %s: TL should agree (%g vs %g)", net, dir, wa.TL, wb.TL)
			}
		}
		check(a.Rise, b.Rise, "rise")
		check(a.Fall, b.Fall, "fall")
	}
}

func TestInverterChainAccumulatesDelay(t *testing.T) {
	lib := prechar.MustLibrary()
	c := netlist.New("chain")
	c.AddPI("a")
	c.AddGate(netlist.Inv, "b", "a")
	c.AddGate(netlist.Inv, "z", "b")
	c.AddPO("z")
	if err := c.Build(); err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(c, Options{Lib: lib})
	if err != nil {
		t.Fatal(err)
	}
	wb, _ := res.Window("b", true)
	wz, _ := res.Window("z", true)
	if wb.AS <= 0 {
		t.Errorf("first stage arrival %g, want > 0", wb.AS)
	}
	if wz.AS <= wb.AS {
		t.Errorf("second stage arrival %g not after first %g", wz.AS, wb.AS)
	}
}

func TestFanoutLoadSlowsGate(t *testing.T) {
	lib := prechar.MustLibrary()
	build := func(extraFan int) float64 {
		c := netlist.New("fan")
		c.AddPI("a")
		c.AddGate(netlist.Inv, "b", "a")
		c.AddGate(netlist.Inv, "z0", "b")
		c.AddPO("z0")
		for i := 1; i <= extraFan; i++ {
			out := "z" + string(rune('0'+i))
			c.AddGate(netlist.Inv, out, "b")
			c.AddPO(out)
		}
		if err := c.Build(); err != nil {
			t.Fatal(err)
		}
		res, err := Analyze(c, Options{Lib: lib})
		if err != nil {
			t.Fatal(err)
		}
		w, _ := res.Window("b", true)
		return w.AL
	}
	if light, heavy := build(0), build(3); heavy <= light {
		t.Errorf("fanout-4 arrival %g should exceed fanout-1 arrival %g", heavy, light)
	}
}

func TestPerPIOverride(t *testing.T) {
	lib := prechar.MustLibrary()
	c := benchgen.C17()
	res, err := Analyze(c, Options{
		Lib:   lib,
		PerPI: map[string]PITiming{"1": {ArrivalEarly: 1e-9, ArrivalLate: 2e-9, TransShort: 0.1e-9, TransLong: 0.3e-9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := res.Window("1", true)
	if w.AS != 1e-9 || w.AL != 2e-9 {
		t.Errorf("PI override not applied: %+v", w)
	}
	w2, _ := res.Window("2", true)
	if w2.AS != 0 {
		t.Errorf("default PI timing clobbered: %+v", w2)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	c := benchgen.C17()
	if _, err := Analyze(c, Options{}); err == nil {
		t.Error("expected error for missing library")
	}
	lib := prechar.MustLibrary()
	// A circuit with an unsupported cell (NAND8).
	big := netlist.New("big")
	for i := 0; i < 8; i++ {
		big.AddPI(string(rune('a' + i)))
	}
	big.AddGate(netlist.Nand, "z", "a", "b", "c", "d", "e", "f", "g", "h")
	big.AddPO("z")
	if err := big.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(big, Options{Lib: lib}); err == nil {
		t.Error("expected error for missing NAND8 cell")
	}
}

func TestTable2ShapeOnSyntheticBenchmark(t *testing.T) {
	// Table 2's qualitative shape on a mid-size synthetic benchmark:
	// pin-to-pin min-delay / proposed min-delay > 1.
	lib := prechar.MustLibrary()
	c, err := benchgen.Load("c880")
	if err != nil {
		t.Fatal(err)
	}
	prop, err := Analyze(c, Options{Lib: lib, Mode: ModeProposed})
	if err != nil {
		t.Fatal(err)
	}
	p2p, err := Analyze(c, Options{Lib: lib, Mode: ModePinToPin})
	if err != nil {
		t.Fatal(err)
	}
	ratio := p2p.MinPOArrival() / prop.MinPOArrival()
	if ratio <= 1.01 {
		t.Errorf("min-delay ratio %g, want clearly above 1 (Table 2 shape)", ratio)
	}
	if ratio > 2.5 {
		t.Errorf("min-delay ratio %g implausibly large", ratio)
	}
	t.Logf("c880 min-delay ratio (pin-to-pin / proposed) = %.3f", ratio)
}

func TestRequiredTimesAndViolations(t *testing.T) {
	lib := prechar.MustLibrary()
	res := analyzeC17(t, ModeProposed)

	// Loose constraint: no violations.
	loose := Constraint{MinTime: 0, MaxTime: 1e-6}
	if v := res.CheckViolations(loose); len(v) != 0 {
		t.Errorf("loose constraint should pass, got %d violations: %+v", len(v), v[0])
	}

	// Impossible setup constraint: violations appear and are sorted by
	// slack.
	tight := Constraint{MinTime: 0, MaxTime: 10e-12}
	v := res.CheckViolations(tight)
	if len(v) == 0 {
		t.Fatal("tight constraint should produce violations")
	}
	for i := 1; i < len(v); i++ {
		if v[i].Slack < v[i-1].Slack {
			t.Error("violations not sorted by slack")
			break
		}
	}
	for _, vi := range v {
		if !vi.Setup {
			t.Errorf("expected only setup violations, got hold at %s", vi.Net)
		}
	}

	// Impossible hold constraint: the outputs arrive before MinTime.
	hold := Constraint{MinTime: 1e-6, MaxTime: 2e-6}
	vh := res.CheckViolations(hold)
	foundHold := false
	for _, vi := range vh {
		if !vi.Setup {
			foundHold = true
		}
	}
	if !foundHold {
		t.Error("expected hold violations for MinTime = 1us")
	}
	_ = lib
}

func TestRequiredTimesBackwardConsistency(t *testing.T) {
	res := analyzeC17(t, ModeProposed)
	req := res.RequiredTimes(Constraint{MinTime: 0, MaxTime: 5e-9})
	// PIs must have finite required windows (they reach POs).
	for _, pi := range res.Circuit.PIs {
		lr, ok := req[pi]
		if !ok {
			t.Fatalf("no required time at PI %s", pi)
		}
		if math.IsInf(lr.Rise.QL, 1) && math.IsInf(lr.Fall.QL, 1) {
			t.Errorf("PI %s required window never tightened", pi)
		}
		// Required-at-input must precede required-at-output.
		if lr.Rise.QL >= 5e-9 {
			t.Errorf("PI %s rise QL %g not tightened below PO constraint", pi, lr.Rise.QL)
		}
	}
}

func TestModeString(t *testing.T) {
	if ModeProposed.String() != "proposed" || ModePinToPin.String() != "pin-to-pin" {
		t.Error("mode names wrong")
	}
}
