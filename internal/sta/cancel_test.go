package sta

import (
	"context"
	"errors"
	"testing"

	"sstiming/internal/benchgen"
	"sstiming/internal/prechar"
	"sstiming/internal/spice"
)

// TestAnalyzeCancelled: a cancelled context must abort the analysis — on
// both the serial and the level-parallel path — with an error wrapping
// spice.ErrCancelled, never a partial window map.
func TestAnalyzeCancelled(t *testing.T) {
	lib := prechar.MustLibrary()
	c, err := benchgen.Load("c880")
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	for _, jobs := range []int{1, 4} {
		res, err := Analyze(c, Options{Lib: lib, Ctx: ctx, Jobs: jobs})
		if res != nil {
			t.Fatalf("jobs=%d: cancelled analysis returned a partial result", jobs)
		}
		if !errors.Is(err, spice.ErrCancelled) {
			t.Fatalf("jobs=%d: error does not wrap spice.ErrCancelled: %v", jobs, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("jobs=%d: error does not wrap context.Canceled: %v", jobs, err)
		}
	}

	// The same analysis without a context succeeds.
	if _, err := Analyze(c, Options{Lib: lib}); err != nil {
		t.Fatalf("clean analysis failed: %v", err)
	}
}
