// Package sta implements static timing analysis with min-max timing windows
// (the paper's Section 4).
//
// For every line and both transition directions the analysis maintains the
// earliest/latest arrival times and shortest/longest transition times
// (Figure 7). Forward propagation uses the worst-case corner identification
// rules of Section 4.2:
//
//   - earliest rising arrival (for NAND-class gates) exploits simultaneous
//     to-controlling switching: the minimum over input pairs of the
//     V-shape delay evaluated at the earliest-arrival skew, minimised over
//     the four transition-time corners {S,L}×{S,L};
//   - latest arrivals use only single-input pin-to-pin delays (a lagging
//     simultaneous transition can only speed the output up), with the
//     maximal delay taken at a range endpoint or at the interior peak of
//     the bi-tonic delay-vs-transition-time curve (Figure 9);
//   - shortest output transition times evaluate the pair transition
//     surface at the achievable skew closest to SK_t,min, which may be
//     non-zero.
//
// Backward propagation computes required-time windows and reports min
// (hold-style) and max (setup-style) violations.
//
// The same engine runs under the conventional pin-to-pin (SDF-style) model
// for the paper's Table 2 comparison.
package sta

import (
	"context"
	"errors"
	"fmt"
	"math"

	"sstiming/internal/core"
	"sstiming/internal/engine"
	"sstiming/internal/netlist"
	"sstiming/internal/spice"
)

// Mode selects the delay model used by the analysis.
type Mode int

const (
	// ModeProposed uses the paper's simultaneous-switching model.
	ModeProposed Mode = iota
	// ModePinToPin uses the conventional pin-to-pin model.
	ModePinToPin
)

// String names the mode.
func (m Mode) String() string {
	if m == ModePinToPin {
		return "pin-to-pin"
	}
	return "proposed"
}

// Window is the per-direction timing window of one line: earliest/latest
// arrival and shortest/longest transition time, in seconds (Figure 7).
type Window struct {
	AS, AL float64 // arrival: smallest, largest
	TS, TL float64 // transition time: smallest, largest
}

// Valid reports structural sanity (AS <= AL, TS <= TL).
func (w Window) Valid() bool {
	return w.AS <= w.AL+1e-15 && w.TS <= w.TL+1e-15 && w.TS >= 0
}

// LineTiming is the pair of directional windows of one line.
type LineTiming struct {
	Rise Window
	Fall Window
}

// PITiming describes the assumed stimulus at primary inputs.
type PITiming struct {
	ArrivalEarly, ArrivalLate float64
	TransShort, TransLong     float64
}

// DefaultPITiming is the default stimulus: transitions released at t = 0
// with a 0.2 ns input ramp.
func DefaultPITiming() PITiming {
	return PITiming{ArrivalEarly: 0, ArrivalLate: 0, TransShort: 0.2e-9, TransLong: 0.2e-9}
}

// Options configures an analysis.
type Options struct {
	// Lib is the characterised cell library (required).
	Lib *core.Library
	// Mode selects the delay model.
	Mode Mode
	// PI is the stimulus applied to every primary input; the zero value
	// selects DefaultPITiming.
	PI PITiming
	// PerPI optionally overrides the stimulus for specific inputs.
	PerPI map[string]PITiming
	// NCExtension enables the simultaneous to-non-controlling Λ-shape
	// model (the paper's Section 3.6 future work) in the latest-arrival
	// and longest-transition corners of to-non-controlling responses.
	// Requires a library characterised with charlib.Options.NCPairs.
	// Off by default: the paper's published scope keeps pin-to-pin
	// timing for these responses (and Table 2's max-delays identical
	// across models).
	NCExtension bool
	// Ctx, when non-nil, cancels the analysis between logic levels (and
	// inside the level-parallel fan-out). A cancelled analysis returns an
	// error wrapping spice.ErrCancelled and the context's own error —
	// never a partial result.
	Ctx context.Context
	// Jobs bounds the engine worker pool used to propagate the gates of
	// one logic level concurrently; zero or one runs serially. Windows
	// are independent of the worker count.
	Jobs int
	// Metrics, when non-nil, counts propagated gates and timing arcs.
	Metrics *engine.Metrics
}

// Result holds the computed windows for every line.
type Result struct {
	Circuit *netlist.Circuit
	Mode    Mode
	Lines   map[string]*LineTiming

	lib       *core.Library
	cellCache map[string]*core.CellModel
}

// Analyze runs forward window propagation over the circuit.
func Analyze(c *netlist.Circuit, opts Options) (*Result, error) {
	if opts.Lib == nil {
		return nil, fmt.Errorf("sta: Options.Lib is required")
	}
	if err := c.EnsureBuilt(); err != nil {
		return nil, fmt.Errorf("sta: %w", err)
	}
	pi := opts.PI
	if pi == (PITiming{}) {
		pi = DefaultPITiming()
	}
	stop := opts.Metrics.StartTimer("sta/analyze")
	defer stop()

	res := &Result{Circuit: c, Mode: opts.Mode, Lines: make(map[string]*LineTiming), lib: opts.Lib}
	for _, name := range c.PIs {
		p := pi
		if o, ok := opts.PerPI[name]; ok {
			p = o
		}
		w := Window{AS: p.ArrivalEarly, AL: p.ArrivalLate, TS: p.TransShort, TL: p.TransLong}
		res.Lines[name] = &LineTiming{Rise: w, Fall: w}
	}

	// propagateGate computes one gate's output windows from the already
	// settled windows of its inputs. Gates of the same logic level read
	// only earlier levels' lines, so one level can run on the engine pool
	// with the writes merged serially afterwards — identical to the serial
	// schedule.
	propagateGate := func(gi int) (*LineTiming, error) {
		g := &c.Gates[gi]
		cell, ok := opts.Lib.Cell(g.CellName())
		if !ok {
			return nil, fmt.Errorf("sta: no library cell %q for gate %q", g.CellName(), g.Output)
		}
		ins := make([]*LineTiming, len(g.Inputs))
		for i, in := range g.Inputs {
			lt, ok := res.Lines[in]
			if !ok {
				return nil, fmt.Errorf("sta: gate %q input %q has no timing (order bug)", g.Output, in)
			}
			ins[i] = lt
		}
		extraLoad := float64(c.FanoutCount(g.Output)-1) * cell.RefLoad
		opts.Metrics.Add(engine.STAGates, 1)
		opts.Metrics.Add(engine.STAArcs, 2*int64(len(g.Inputs)))

		out := &LineTiming{}
		switch g.Kind {
		case netlist.Inv:
			out.Rise = propagateSingle(cell, 0, true, ins[0].Fall, extraLoad)
			out.Fall = propagateSingle(cell, 0, false, ins[0].Rise, extraLoad)
		case netlist.Buf:
			// Buffers borrow the inverter cell's timing with
			// non-inverting direction mapping (library
			// approximation, see package doc).
			out.Rise = propagateSingle(cell, 0, true, ins[0].Rise, extraLoad)
			out.Fall = propagateSingle(cell, 0, false, ins[0].Fall, extraLoad)
		case netlist.Nand:
			inFall := windows(ins, false)
			inRise := windows(ins, true)
			out.Rise = propagateCtrl(cell, inFall, extraLoad, opts.Mode)
			out.Fall = propagateNonCtrl(cell, inRise, extraLoad, opts.Mode, opts.NCExtension)
		case netlist.Nor:
			inRise := windows(ins, true)
			inFall := windows(ins, false)
			out.Fall = propagateCtrl(cell, inRise, extraLoad, opts.Mode)
			out.Rise = propagateNonCtrl(cell, inFall, extraLoad, opts.Mode, opts.NCExtension)
		default:
			return nil, fmt.Errorf("sta: unsupported gate kind %v", g.Kind)
		}
		return out, nil
	}

	for _, lv := range levelGroups(c) {
		if opts.Ctx != nil {
			if err := opts.Ctx.Err(); err != nil {
				return nil, fmt.Errorf("sta: %w", spice.Cancelled(err))
			}
		}
		outs := make([]*LineTiming, len(lv))
		if engine.Workers(opts.Jobs) == 1 || len(lv) == 1 {
			for i, gi := range lv {
				var err error
				if outs[i], err = propagateGate(gi); err != nil {
					return nil, err
				}
			}
		} else {
			err := engine.Run(opts.Ctx, opts.Jobs, len(lv), func(_ context.Context, i int) error {
				var err error
				outs[i], err = propagateGate(lv[i])
				return err
			})
			if err != nil {
				// The fan-out surfaces the caller's cancellation as a raw
				// context error (or an ErrPoolClosed wrap); fold it into the
				// solver taxonomy so every cancelled analysis looks alike.
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					return nil, fmt.Errorf("sta: %w", spice.Cancelled(err))
				}
				return nil, err
			}
		}
		for i, gi := range lv {
			res.Lines[c.Gates[gi].Output] = outs[i]
		}
	}
	// A deadline that fired after the last level still voids the result:
	// callers must never observe windows computed past their cancellation.
	if opts.Ctx != nil {
		if err := opts.Ctx.Err(); err != nil {
			return nil, fmt.Errorf("sta: %w", spice.Cancelled(err))
		}
	}
	return res, nil
}

// levelGroups buckets the topological order by logic level; gates within
// one bucket are mutually independent.
func levelGroups(c *netlist.Circuit) [][]int {
	var groups [][]int
	for _, gi := range c.TopoOrder() {
		lvl := c.Level(gi)
		for len(groups) <= lvl {
			groups = append(groups, nil)
		}
		groups[lvl] = append(groups[lvl], gi)
	}
	return groups
}

func windows(ins []*LineTiming, rising bool) []Window {
	ws := make([]Window, len(ins))
	for i, lt := range ins {
		if rising {
			ws[i] = lt.Rise
		} else {
			ws[i] = lt.Fall
		}
	}
	return ws
}

// propagateSingle handles one-input cells: ctrl selects the CtrlPins
// (to-controlling response: INV falling-in/rising-out) versus NonCtrlPins.
func propagateSingle(cell *core.CellModel, pin int, ctrl bool, in Window, extraLoad float64) Window {
	pins := cell.NonCtrlPins
	if ctrl {
		pins = cell.CtrlPins
	}
	p := &pins[pin]
	loadD := p.DelayLoadSlope * extraLoad
	loadT := p.TransLoadSlope * extraLoad

	_, dMin := p.Delay.MinOver(in.TS, in.TL)
	_, dMax := p.Delay.MaxOver(in.TS, in.TL)
	_, tMin := p.Trans.MinOver(in.TS, in.TL)
	_, tMax := p.Trans.MaxOver(in.TS, in.TL)
	return Window{
		AS: in.AS + dMin + loadD,
		AL: in.AL + dMax + loadD,
		TS: tMin + loadT,
		TL: tMax + loadT,
	}
}

// propagateCtrl computes the to-controlling output window (rising for NAND,
// falling for NOR) from the input windows of the controlling-direction
// transitions, per Section 4.2.
func propagateCtrl(cell *core.CellModel, in []Window, extraLoad float64, mode Mode) Window {
	n := len(in)
	var out Window
	out.AS = math.Inf(1)
	out.AL = math.Inf(-1)
	out.TS = math.Inf(1)
	out.TL = math.Inf(-1)

	// Latest arrival and longest transition: single-input pin-to-pin
	// corners (a second simultaneous transition can only speed things
	// up; the lagging-input case reduces to single-input timing).
	for x := 0; x < n; x++ {
		p := &cell.CtrlPins[x]
		loadD := p.DelayLoadSlope * extraLoad
		loadT := p.TransLoadSlope * extraLoad
		_, dMax := p.Delay.MaxOver(in[x].TS, in[x].TL)
		if v := in[x].AL + dMax + loadD; v > out.AL {
			out.AL = v
		}
		_, tMax := p.Trans.MaxOver(in[x].TS, in[x].TL)
		if v := tMax + loadT; v > out.TL {
			out.TL = v
		}
		// Single-input candidates also bound the minimum corners
		// (they are what remains in pin-to-pin mode, for one-input
		// cells, and when pair data is missing).
		_, dMin := p.Delay.MinOver(in[x].TS, in[x].TL)
		if v := in[x].AS + dMin + loadD; v < out.AS {
			out.AS = v
		}
		_, tMin := p.Trans.MinOver(in[x].TS, in[x].TL)
		if v := tMin + loadT; v < out.TS {
			out.TS = v
		}
	}

	if mode == ModePinToPin || n < 2 {
		return out
	}

	// Earliest arrival: pairwise simultaneous switching at the
	// earliest-arrival skew, minimised over the four transition-time
	// corners (Fig. 8's A_R,S rule). With three or more inputs all
	// potentially switching δ-simultaneously, the extended model's n-way
	// speed-up factor lower-bounds the delay further.
	multi := 1.0
	if n >= 3 && len(cell.MultiFactor) >= n-2 {
		if f := cell.MultiFactor[n-3]; f > 0 && f < 1 {
			multi = f
		}
	}
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			if x == y {
				continue
			}
			skew := in[y].AS - in[x].AS
			base := math.Min(in[x].AS, in[y].AS)
			for _, tx := range []float64{in[x].TS, in[x].TL} {
				for _, ty := range []float64{in[y].TS, in[y].TL} {
					d := cell.DelayCtrl2(x, y, tx, ty, skew, extraLoad)
					if v := base + d*multi; v < out.AS {
						out.AS = v
					}
				}
			}

			// Shortest transition: evaluate at the achievable
			// skew closest to SK_t,min (Fig. 8's T_R,S rule).
			lo := in[y].AS - in[x].AL
			hi := in[y].AL - in[x].AS
			skm := cell.SKminAt(x, y, in[x].TS, in[y].TS)
			if skm < lo {
				skm = lo
			}
			if skm > hi {
				skm = hi
			}
			if t := cell.TransCtrl2(x, y, in[x].TS, in[y].TS, skm, extraLoad); t < out.TS {
				out.TS = t
			}
		}
	}
	return out
}

// propagateNonCtrl computes the to-non-controlling output window (falling
// for NAND, rising for NOR). The *latest* arrival combines with max over
// inputs (the output switches only after the last input reaches the
// non-controlling value). The *earliest* arrival, however, combines with
// min: with vectors unspecified, the fastest scenario has a single input
// switching while every other input already holds the non-controlling
// value. With the NC extension enabled (and the proposed model), the latest
// corner additionally considers the Λ-shaped simultaneous-switching penalty
// at the achievable skew closest to its zero-skew peak.
func propagateNonCtrl(cell *core.CellModel, in []Window, extraLoad float64, mode Mode, ncExt bool) Window {
	n := len(in)
	var out Window
	out.AS = math.Inf(1)
	out.AL = math.Inf(-1)
	out.TS = math.Inf(1)
	out.TL = math.Inf(-1)

	for x := 0; x < n; x++ {
		p := &cell.NonCtrlPins[x]
		loadD := p.DelayLoadSlope * extraLoad
		loadT := p.TransLoadSlope * extraLoad
		_, dMin := p.Delay.MinOver(in[x].TS, in[x].TL)
		_, dMax := p.Delay.MaxOver(in[x].TS, in[x].TL)
		if v := in[x].AS + dMin + loadD; v < out.AS {
			out.AS = v
		}
		if v := in[x].AL + dMax + loadD; v > out.AL {
			out.AL = v
		}
		_, tMin := p.Trans.MinOver(in[x].TS, in[x].TL)
		if v := tMin + loadT; v < out.TS {
			out.TS = v
		}
		_, tMax := p.Trans.MaxOver(in[x].TS, in[x].TL)
		if v := tMax + loadT; v > out.TL {
			out.TL = v
		}
	}

	if ncExt && mode == ModeProposed && n >= 2 && len(cell.NCPairs) > 0 {
		// Worst-case simultaneous to-non-controlling corner: both
		// transitions at their latest arrivals, skew as close to the Λ
		// peak (zero) as the windows allow, slowest transition times.
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				if x == y {
					continue
				}
				lo := in[y].AS - in[x].AL
				hi := in[y].AL - in[x].AS
				skew := 0.0
				if skew < lo {
					skew = lo
				}
				if skew > hi {
					skew = hi
				}
				base := math.Max(in[x].AL, in[y].AL)
				for _, tx := range []float64{in[x].TS, in[x].TL} {
					for _, ty := range []float64{in[y].TS, in[y].TL} {
						d := cell.DelayNonCtrl2(x, y, tx, ty, skew, extraLoad)
						if v := base + d; v > out.AL {
							out.AL = v
						}
						if tv := cell.TransNonCtrl2(x, y, tx, ty, skew, extraLoad); tv > out.TL {
							out.TL = tv
						}
					}
				}
			}
		}
	}
	return out
}

// Window returns the directional window of a net.
func (r *Result) Window(net string, rising bool) (Window, bool) {
	lt, ok := r.Lines[net]
	if !ok {
		return Window{}, false
	}
	if rising {
		return lt.Rise, true
	}
	return lt.Fall, true
}

// MinPOArrival returns the earliest arrival over all primary outputs and
// both directions — the paper's Table 2 "min-delay at outputs" metric (the
// lower edge of the union of the PO timing ranges).
func (r *Result) MinPOArrival() float64 {
	min := math.Inf(1)
	for _, po := range r.Circuit.POs {
		if lt, ok := r.Lines[po]; ok {
			if lt.Rise.AS < min {
				min = lt.Rise.AS
			}
			if lt.Fall.AS < min {
				min = lt.Fall.AS
			}
		}
	}
	return min
}

// MaxPOArrival returns the latest arrival over all primary outputs and both
// directions (the classical critical-path delay).
func (r *Result) MaxPOArrival() float64 {
	max := math.Inf(-1)
	for _, po := range r.Circuit.POs {
		if lt, ok := r.Lines[po]; ok {
			if lt.Rise.AL > max {
				max = lt.Rise.AL
			}
			if lt.Fall.AL > max {
				max = lt.Fall.AL
			}
		}
	}
	return max
}
