// Package sta implements static timing analysis with min-max timing windows
// (the paper's Section 4).
//
// For every line and both transition directions the analysis maintains the
// earliest/latest arrival times and shortest/longest transition times
// (Figure 7). Forward propagation uses the worst-case corner identification
// rules of Section 4.2:
//
//   - earliest rising arrival (for NAND-class gates) exploits simultaneous
//     to-controlling switching: the minimum over input pairs of the
//     V-shape delay evaluated at the earliest-arrival skew, minimised over
//     the four transition-time corners {S,L}×{S,L};
//   - latest arrivals use only single-input pin-to-pin delays (a lagging
//     simultaneous transition can only speed the output up), with the
//     maximal delay taken at a range endpoint or at the interior peak of
//     the bi-tonic delay-vs-transition-time curve (Figure 9);
//   - shortest output transition times evaluate the pair transition
//     surface at the achievable skew closest to SK_t,min, which may be
//     non-zero.
//
// Backward propagation computes required-time windows and reports min
// (hold-style) and max (setup-style) violations.
//
// The same engine runs under the conventional pin-to-pin (SDF-style) model
// for the paper's Table 2 comparison.
//
// Since the incremental-timing refactor, Analyze is a thin shell: it builds
// a persistent timing graph (internal/tgraph) and fully converges it once —
// "full analysis" is literally the everything-dirty special case of
// incremental re-convergence, so full and incremental results are
// byte-identical by construction. The window/corner arithmetic itself lives
// in internal/twindow, shared with itr and tgraph; the window types below
// are aliases of the twindow types.
package sta

import (
	"context"
	"fmt"
	"math"

	"sstiming/internal/core"
	"sstiming/internal/engine"
	"sstiming/internal/netlist"
	"sstiming/internal/tgraph"
	"sstiming/internal/twindow"
)

// Mode selects the delay model used by the analysis.
type Mode = twindow.Mode

const (
	// ModeProposed uses the paper's simultaneous-switching model.
	ModeProposed = twindow.ModeProposed
	// ModePinToPin uses the conventional pin-to-pin model.
	ModePinToPin = twindow.ModePinToPin
)

// Window is the per-direction timing window of one line: earliest/latest
// arrival and shortest/longest transition time, in seconds (Figure 7).
type Window = twindow.Window

// LineTiming is the pair of directional windows of one line.
type LineTiming struct {
	Rise Window
	Fall Window
}

// PITiming describes the assumed stimulus at primary inputs.
type PITiming = twindow.PITiming

// DefaultPITiming is the default stimulus: transitions released at t = 0
// with a 0.2 ns input ramp.
func DefaultPITiming() PITiming { return twindow.DefaultPITiming() }

// Options configures an analysis.
type Options struct {
	// Lib is the characterised cell library (required).
	Lib *core.Library
	// Mode selects the delay model.
	Mode Mode
	// PI is the stimulus applied to every primary input; the zero value
	// selects DefaultPITiming.
	PI PITiming
	// PerPI optionally overrides the stimulus for specific inputs.
	PerPI map[string]PITiming
	// NCExtension enables the simultaneous to-non-controlling Λ-shape
	// model (the paper's Section 3.6 future work) in the latest-arrival
	// and longest-transition corners of to-non-controlling responses.
	// Requires a library characterised with charlib.Options.NCPairs.
	// Off by default: the paper's published scope keeps pin-to-pin
	// timing for these responses (and Table 2's max-delays identical
	// across models).
	NCExtension bool
	// Ctx, when non-nil, cancels the analysis between logic levels (and
	// inside the level-parallel fan-out). A cancelled analysis returns an
	// error wrapping spice.ErrCancelled and the context's own error —
	// never a partial result.
	Ctx context.Context
	// Jobs bounds the engine worker pool used to propagate the gates of
	// one logic level concurrently; zero or one runs serially. Windows
	// are independent of the worker count.
	Jobs int
	// Metrics, when non-nil, counts propagated gates and timing arcs.
	Metrics *engine.Metrics
}

// Result holds the computed windows for every line.
type Result struct {
	Circuit *netlist.Circuit
	Mode    Mode
	Lines   map[string]*LineTiming

	lib       *core.Library
	cellCache map[string]*core.CellModel
}

// Analyze runs forward window propagation over the circuit: it builds a
// persistent timing graph and fully converges it (see package tgraph; the
// graph is discarded afterwards — callers wanting to keep it for
// incremental edits build one directly and convert with FromGraph).
func Analyze(c *netlist.Circuit, opts Options) (*Result, error) {
	if opts.Lib == nil {
		return nil, fmt.Errorf("sta: Options.Lib is required")
	}
	stop := opts.Metrics.StartTimer("sta/analyze")
	defer stop()

	g, err := tgraph.New(c, tgraph.Options{
		Lib:         opts.Lib,
		Mode:        opts.Mode,
		PI:          opts.PI,
		PerPI:       opts.PerPI,
		NCExtension: opts.NCExtension,
		Ctx:         opts.Ctx,
		Jobs:        opts.Jobs,
		Metrics:     opts.Metrics,
	})
	if err != nil {
		return nil, fmt.Errorf("sta: %w", err)
	}
	return FromGraph(g), nil
}

// FromGraph snapshots a persistent timing graph's current windows as an
// analysis Result, so graph holders get path extraction, required times and
// violation checks without a fresh full analysis. The snapshot is a copy:
// later graph edits do not disturb it.
func FromGraph(g *tgraph.Graph) *Result {
	res := &Result{
		Circuit: g.Circuit(),
		Mode:    g.Mode(),
		Lines:   make(map[string]*LineTiming, g.NumLines()),
		lib:     g.Lib(),
	}
	g.Lines(func(net string, li twindow.LineInfo) {
		res.Lines[net] = &LineTiming{Rise: li.Rise, Fall: li.Fall}
	})
	return res
}

// Window returns the directional window of a net.
func (r *Result) Window(net string, rising bool) (Window, bool) {
	lt, ok := r.Lines[net]
	if !ok {
		return Window{}, false
	}
	if rising {
		return lt.Rise, true
	}
	return lt.Fall, true
}

// MinPOArrival returns the earliest arrival over all primary outputs and
// both directions — the paper's Table 2 "min-delay at outputs" metric (the
// lower edge of the union of the PO timing ranges).
func (r *Result) MinPOArrival() float64 {
	min := math.Inf(1)
	for _, po := range r.Circuit.POs {
		if lt, ok := r.Lines[po]; ok {
			if lt.Rise.AS < min {
				min = lt.Rise.AS
			}
			if lt.Fall.AS < min {
				min = lt.Fall.AS
			}
		}
	}
	return min
}

// MaxPOArrival returns the latest arrival over all primary outputs and both
// directions (the classical critical-path delay).
func (r *Result) MaxPOArrival() float64 {
	max := math.Inf(-1)
	for _, po := range r.Circuit.POs {
		if lt, ok := r.Lines[po]; ok {
			if lt.Rise.AL > max {
				max = lt.Rise.AL
			}
			if lt.Fall.AL > max {
				max = lt.Fall.AL
			}
		}
	}
	return max
}
