package sta

import (
	"math"
	"strings"
	"testing"

	"sstiming/internal/benchgen"
	"sstiming/internal/prechar"
)

func TestWorstPathC17(t *testing.T) {
	lib := prechar.MustLibrary()
	res, err := Analyze(benchgen.C17(), Options{Lib: lib, Mode: ModeProposed})
	if err != nil {
		t.Fatal(err)
	}
	path, err := res.WorstPath()
	if err != nil {
		t.Fatal(err)
	}
	if len(path) < 2 {
		t.Fatalf("path too short: %v", path)
	}
	// Starts at a PI, ends at a PO, matches the max arrival.
	if !res.Circuit.IsPI(path[0].Net) {
		t.Errorf("path does not start at a PI: %s", path[0].Net)
	}
	last := path[len(path)-1]
	isPO := false
	for _, po := range res.Circuit.POs {
		if po == last.Net {
			isPO = true
		}
	}
	if !isPO {
		t.Errorf("path does not end at a PO: %s", last.Net)
	}
	if math.Abs(last.Arrival-res.MaxPOArrival()) > 1e-15 {
		t.Errorf("endpoint arrival %g != max PO arrival %g", last.Arrival, res.MaxPOArrival())
	}
	// Arrivals strictly increase along the path.
	for i := 1; i < len(path); i++ {
		if path[i].Arrival <= path[i-1].Arrival {
			t.Errorf("arrivals not increasing at step %d: %v", i, path)
			break
		}
	}
	// Directions alternate through the all-NAND c17.
	for i := 1; i < len(path); i++ {
		if path[i].Rising == path[i-1].Rising {
			t.Errorf("direction did not alternate through NAND at step %d", i)
		}
	}
	// c17's depth is 3, so the path has 4 nodes.
	if len(path) != 4 {
		t.Errorf("c17 worst path has %d nodes, want 4: %s", len(path), FormatPath(path))
	}
	t.Logf("worst path: %s", FormatPath(path))
}

func TestCriticalPathConsistentAcrossBenchmarks(t *testing.T) {
	lib := prechar.MustLibrary()
	for _, name := range []string{"c432", "c880"} {
		c, err := benchgen.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Analyze(c, Options{Lib: lib, Mode: ModeProposed})
		if err != nil {
			t.Fatal(err)
		}
		path, err := res.WorstPath()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Circuit.IsPI(path[0].Net) {
			t.Errorf("%s: path start %s not a PI", name, path[0].Net)
		}
		if got := path[len(path)-1].Arrival; math.Abs(got-res.MaxPOArrival()) > 1e-12 {
			t.Errorf("%s: endpoint %g vs max %g", name, got, res.MaxPOArrival())
		}
		for i := 1; i < len(path); i++ {
			if path[i].Arrival < path[i-1].Arrival {
				t.Errorf("%s: arrival decreased along path", name)
				break
			}
		}
	}
}

func TestCriticalPathErrors(t *testing.T) {
	lib := prechar.MustLibrary()
	res, err := Analyze(benchgen.C17(), Options{Lib: lib})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.CriticalPath("nope", true); err == nil {
		t.Error("expected error for unknown net")
	}
}

func TestFormatPath(t *testing.T) {
	s := FormatPath([]PathStep{
		{Net: "a", Rising: true, Arrival: 0},
		{Net: "z", Rising: false, Arrival: 0.5e-9},
	})
	if !strings.Contains(s, "a(R@0.000ns)") || !strings.Contains(s, "z(F@0.500ns)") || !strings.Contains(s, "->") {
		t.Errorf("format = %q", s)
	}
}
