package sta

import (
	"math"
	"math/rand"
	"testing"

	"sstiming/internal/benchgen"
	"sstiming/internal/logicsim"
	"sstiming/internal/prechar"
)

func TestNCExtensionWidensOnlyLatestCorners(t *testing.T) {
	lib := prechar.MustLibrary()
	c := benchgen.C17()

	base, err := Analyze(c, Options{Lib: lib, Mode: ModeProposed})
	if err != nil {
		t.Fatal(err)
	}
	ext, err := Analyze(c, Options{Lib: lib, Mode: ModeProposed, NCExtension: true})
	if err != nil {
		t.Fatal(err)
	}

	widened := false
	for net, be := range base.Lines {
		xe := ext.Lines[net]
		check := func(b, x Window, dir string) {
			// Latest corners may only grow; shortest transition may
			// only shrink (downstream effects of wider transition
			// windows). The earliest arrival AS is corner-evaluated
			// and may move slightly either way downstream, which
			// the containment test covers.
			if x.AL < b.AL-1e-15 || x.TL < b.TL-1e-15 {
				t.Errorf("%s %s: NC extension shrank a latest corner", net, dir)
			}
			if x.TS > b.TS+1e-15 {
				t.Errorf("%s %s: NC extension raised the shortest transition", net, dir)
			}
			if x.AL > b.AL+1e-15 {
				widened = true
			}
		}
		check(be.Rise, xe.Rise, "rise")
		check(be.Fall, xe.Fall, "fall")
	}
	if !widened {
		t.Error("NC extension never widened a latest arrival on c17")
	}
}

// TestNCExtensionContainment re-runs the simulation-containment property
// with the extension enabled on both sides: the widened windows must cover
// the Λ-model simulation events (which can arrive later than the pin-to-pin
// max-combine predicts).
func TestNCExtensionContainment(t *testing.T) {
	lib := prechar.MustLibrary()
	const tol = 2e-12
	c := benchgen.C17()

	staRes, err := Analyze(c, Options{Lib: lib, Mode: ModeProposed, NCExtension: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 32; trial++ {
		v1 := logicsim.RandomVector(c, rng.Intn)
		v2 := logicsim.RandomVector(c, rng.Intn)
		sim, err := logicsim.Simulate(c, v1, v2, logicsim.Options{
			Lib: lib, Mode: logicsim.ModeProposed, NCExtension: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for net, ev := range sim.Events {
			w, ok := staRes.Window(net, ev.Rising)
			if !ok {
				t.Fatalf("no window for %s", net)
			}
			if ev.Arrival < w.AS-tol || ev.Arrival > w.AL+tol {
				t.Errorf("trial %d: %s arrival %.4e outside extended window [%.4e, %.4e]",
					trial, net, ev.Arrival, w.AS, w.AL)
			}
			if ev.Trans < w.TS-tol || ev.Trans > w.TL+tol {
				t.Errorf("trial %d: %s trans %.4e outside extended window [%.4e, %.4e]",
					trial, net, ev.Trans, w.TS, w.TL)
			}
		}
	}
}

// TestNCExtensionSimSlower: for a vector pair with simultaneous rising NAND
// inputs, the extended simulation arrives later than the legacy one.
func TestNCExtensionSimSlower(t *testing.T) {
	lib := prechar.MustLibrary()
	c := benchgen.C17()
	// All PIs rise together: gate 10 = NAND(1,3) sees simultaneous
	// to-non-controlling transitions.
	v1 := logicsim.Vector{"1": 0, "2": 0, "3": 0, "6": 0, "7": 0}
	v2 := logicsim.Vector{"1": 1, "2": 1, "3": 1, "6": 1, "7": 1}

	legacy, err := logicsim.Simulate(c, v1, v2, logicsim.Options{Lib: lib})
	if err != nil {
		t.Fatal(err)
	}
	ext, err := logicsim.Simulate(c, v1, v2, logicsim.Options{Lib: lib, NCExtension: true})
	if err != nil {
		t.Fatal(err)
	}
	le := legacy.Events["10"]
	xe := ext.Events["10"]
	if xe.Arrival <= le.Arrival {
		t.Errorf("extension should slow gate 10: %g vs %g", xe.Arrival, le.Arrival)
	}
	// The slowdown is the Section 3.6 second-order effect: tens of
	// percent at zero skew.
	if xe.Arrival > 2*le.Arrival {
		t.Errorf("implausibly large NC slowdown: %g vs %g", xe.Arrival, le.Arrival)
	}
}

func TestNCExtensionDefaultOffPreservesPublishedResults(t *testing.T) {
	// The Table 2 property (identical max-delays between models) must
	// hold with the default options, NC surfaces in the library
	// notwithstanding.
	lib := prechar.MustLibrary()
	c, err := benchgen.Load("c880")
	if err != nil {
		t.Fatal(err)
	}
	p2p, err := Analyze(c, Options{Lib: lib, Mode: ModePinToPin})
	if err != nil {
		t.Fatal(err)
	}
	prop, err := Analyze(c, Options{Lib: lib, Mode: ModeProposed})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p2p.MaxPOArrival()-prop.MaxPOArrival()) > 1e-15 {
		t.Error("default-mode max-delays no longer agree")
	}
}
