package sta

import (
	"math"
	"sort"

	"sstiming/internal/core"
	"sstiming/internal/netlist"
)

// Required is the per-direction required-time window of a line: the output
// must not be reached before QS (hold-style lower bound) and must be reached
// by QL (setup-style upper bound).
type Required struct {
	QS, QL float64
}

// LineRequired pairs the directional required windows of one line.
type LineRequired struct {
	Rise Required
	Fall Required
}

// Constraint is the timing requirement applied at every primary output.
type Constraint struct {
	// MinTime is the earliest permitted PO arrival (hold check).
	MinTime float64
	// MaxTime is the latest permitted PO arrival (setup check).
	MaxTime float64
}

// RequiredTimes performs the backward traversal of Section 4 and returns
// the required-time windows for every line. It uses the arrival/transition
// windows already computed by Analyze to evaluate the delay bounds along
// each input-to-output arc.
func (r *Result) RequiredTimes(cons Constraint) map[string]*LineRequired {
	c := r.Circuit
	req := make(map[string]*LineRequired, len(r.Lines))
	get := func(net string) *LineRequired {
		lr, ok := req[net]
		if !ok {
			lr = &LineRequired{
				Rise: Required{QS: math.Inf(-1), QL: math.Inf(1)},
				Fall: Required{QS: math.Inf(-1), QL: math.Inf(1)},
			}
			req[net] = lr
		}
		return lr
	}

	for _, po := range c.POs {
		lr := get(po)
		tighten(&lr.Rise, cons.MinTime, cons.MaxTime)
		tighten(&lr.Fall, cons.MinTime, cons.MaxTime)
	}

	order := c.TopoOrder()
	for i := len(order) - 1; i >= 0; i-- {
		g := &c.Gates[order[i]]
		cell, ok := r.libCell(g)
		if !ok {
			continue
		}
		extraLoad := float64(c.FanoutCount(g.Output)-1) * cell.RefLoad
		zReq := get(g.Output)

		for x, in := range g.Inputs {
			inLT := r.Lines[in]
			if inLT == nil {
				continue
			}
			xReq := get(in)

			// Direction mapping: which input direction produces
			// which output direction.
			type arc struct {
				inRise bool
				outReq *Required
				ctrl   bool
				inWin  Window
			}
			var arcs []arc
			switch g.Kind {
			case netlist.Inv:
				arcs = []arc{
					{inRise: false, outReq: &zReq.Rise, ctrl: true, inWin: inLT.Fall},
					{inRise: true, outReq: &zReq.Fall, ctrl: false, inWin: inLT.Rise},
				}
			case netlist.Buf:
				arcs = []arc{
					{inRise: true, outReq: &zReq.Rise, ctrl: true, inWin: inLT.Rise},
					{inRise: false, outReq: &zReq.Fall, ctrl: false, inWin: inLT.Fall},
				}
			case netlist.Nand:
				arcs = []arc{
					{inRise: false, outReq: &zReq.Rise, ctrl: true, inWin: inLT.Fall},
					{inRise: true, outReq: &zReq.Fall, ctrl: false, inWin: inLT.Rise},
				}
			case netlist.Nor:
				arcs = []arc{
					{inRise: true, outReq: &zReq.Fall, ctrl: true, inWin: inLT.Rise},
					{inRise: false, outReq: &zReq.Rise, ctrl: false, inWin: inLT.Fall},
				}
			}

			for _, a := range arcs {
				dMin, dMax := r.arcDelayBounds(cell, g, x, a.ctrl, a.inWin, extraLoad)
				var tgt *Required
				if a.inRise {
					tgt = &xReq.Rise
				} else {
					tgt = &xReq.Fall
				}
				tighten(tgt, a.outReq.QS-dMin, a.outReq.QL-dMax)
			}
		}
	}
	return req
}

// arcDelayBounds returns [dMin, dMax] of the delay from input pin x to the
// gate output for the given response direction. In proposed mode the
// minimum additionally considers zero-skew simultaneous switching with each
// other input (the fastest achievable corner).
func (r *Result) arcDelayBounds(cell *core.CellModel, g *netlist.Gate, x int, ctrl bool, inWin Window, extraLoad float64) (dMin, dMax float64) {
	pins := cell.NonCtrlPins
	if ctrl {
		pins = cell.CtrlPins
	}
	p := &pins[x]
	loadD := p.DelayLoadSlope * extraLoad
	_, dMin = p.Delay.MinOver(inWin.TS, inWin.TL)
	_, dMax = p.Delay.MaxOver(inWin.TS, inWin.TL)
	dMin += loadD
	dMax += loadD

	if ctrl && r.Mode == ModeProposed && cell.N >= 2 {
		for y := 0; y < cell.N; y++ {
			if y == x {
				continue
			}
			// Fastest corner: the partner switches simultaneously
			// with the shortest transition times.
			yWin := r.partnerWindow(g, y, ctrl)
			if d := cell.DelayCtrl2(x, y, inWin.TS, yWin.TS, 0, extraLoad); d < dMin {
				dMin = d
			}
		}
	}
	return dMin, dMax
}

// partnerWindow returns the controlling-direction window of input pin y of
// gate g (falling for NAND, rising for NOR).
func (r *Result) partnerWindow(g *netlist.Gate, y int, ctrl bool) Window {
	lt := r.Lines[g.Inputs[y]]
	if lt == nil {
		return Window{TS: 0.2e-9, TL: 0.2e-9}
	}
	rising := false
	switch g.Kind {
	case netlist.Nor:
		rising = ctrl
	case netlist.Nand:
		rising = !ctrl
	}
	if rising {
		return lt.Rise
	}
	return lt.Fall
}

func (r *Result) libCell(g *netlist.Gate) (*core.CellModel, bool) {
	// The forward pass already resolved every cell; re-resolve from the
	// window data by name lookup through any line. Cells are stored per
	// analysis options, so keep a simple name->cell map on first use.
	if r.cellCache == nil {
		r.cellCache = map[string]*core.CellModel{}
	}
	name := g.CellName()
	if m, ok := r.cellCache[name]; ok {
		return m, m != nil
	}
	m := r.lib.Cells[name]
	r.cellCache[name] = m
	return m, m != nil
}

// tighten narrows a required window: QS may only grow, QL may only shrink.
func tighten(q *Required, qs, ql float64) {
	if qs > q.QS {
		q.QS = qs
	}
	if ql < q.QL {
		q.QL = ql
	}
}

// Violation reports one timing check failure.
type Violation struct {
	// Net is the failing line.
	Net string
	// Rising selects the failing direction.
	Rising bool
	// Setup is true for a setup-style (too late) failure, false for a
	// hold-style (too early) failure.
	Setup bool
	// Slack is the (negative) margin in seconds.
	Slack float64
}

// CheckViolations compares the arrival windows against the required windows
// derived from the PO constraint and returns every failing line, sorted by
// slack (most negative first).
func (r *Result) CheckViolations(cons Constraint) []Violation {
	req := r.RequiredTimes(cons)
	var out []Violation
	for net, lt := range r.Lines {
		lr, ok := req[net]
		if !ok {
			continue
		}
		check := func(w Window, q Required, rising bool) {
			if math.IsInf(q.QL, 1) && math.IsInf(q.QS, -1) {
				return
			}
			if s := q.QL - w.AL; s < 0 {
				out = append(out, Violation{Net: net, Rising: rising, Setup: true, Slack: s})
			}
			if s := w.AS - q.QS; s < 0 {
				out = append(out, Violation{Net: net, Rising: rising, Setup: false, Slack: s})
			}
		}
		check(lt.Rise, lr.Rise, true)
		check(lt.Fall, lr.Fall, false)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Slack < out[j].Slack })
	return out
}
