package sta

import (
	"math"
	"testing"

	"sstiming/internal/benchgen"
	"sstiming/internal/logicsim"
	"sstiming/internal/prechar"
)

// TestC17WindowsExhaustive enumerates ALL 32x32 vector pairs of c17 and
// checks two properties of the STA windows against the timing simulator:
//
//  1. soundness — every simulated event of every pair lies inside the
//     window (no sampling: this is the complete behaviour space);
//  2. tightness at the outputs — the minimum simulated PO arrival over all
//     pairs is close to the STA lower edge (the corner STA predicts is
//     actually achievable), and likewise for the maximum.
func TestC17WindowsExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive enumeration")
	}
	lib := prechar.MustLibrary()
	c := benchgen.C17()
	res, err := Analyze(c, Options{Lib: lib, Mode: ModeProposed})
	if err != nil {
		t.Fatal(err)
	}

	vec := func(bits int) logicsim.Vector {
		v := make(logicsim.Vector, len(c.PIs))
		for i, pi := range c.PIs {
			v[pi] = (bits >> i) & 1
		}
		return v
	}

	const tol = 2e-12
	bestMin := math.Inf(1)
	bestMax := math.Inf(-1)
	events := 0
	for a := 0; a < 32; a++ {
		for b := 0; b < 32; b++ {
			sim, err := logicsim.Simulate(c, vec(a), vec(b), logicsim.Options{Lib: lib})
			if err != nil {
				t.Fatal(err)
			}
			for net, ev := range sim.Events {
				events++
				w, ok := res.Window(net, ev.Rising)
				if !ok {
					t.Fatalf("no window for %s", net)
				}
				if ev.Arrival < w.AS-tol || ev.Arrival > w.AL+tol {
					t.Errorf("pair (%d,%d): %s arrival %.4e outside [%.4e, %.4e]",
						a, b, net, ev.Arrival, w.AS, w.AL)
				}
			}
			for _, po := range c.POs {
				if ev, ok := sim.Events[po]; ok {
					if ev.Arrival < bestMin {
						bestMin = ev.Arrival
					}
					if ev.Arrival > bestMax {
						bestMax = ev.Arrival
					}
				}
			}
		}
	}
	if events == 0 {
		t.Fatal("no events simulated")
	}

	staMin := res.MinPOArrival()
	staMax := res.MaxPOArrival()
	t.Logf("events checked: %d", events)
	t.Logf("PO min: STA %.4f ns, achieved %.4f ns (gap %.1f ps)",
		staMin*1e9, bestMin*1e9, (bestMin-staMin)*1e12)
	t.Logf("PO max: STA %.4f ns, achieved %.4f ns (gap %.1f ps)",
		staMax*1e9, bestMax*1e9, (staMax-bestMax)*1e12)

	// Soundness of the envelope.
	if bestMin < staMin-tol {
		t.Errorf("achieved min %.4e below STA bound %.4e", bestMin, staMin)
	}
	if bestMax > staMax+tol {
		t.Errorf("achieved max %.4e above STA bound %.4e", bestMax, staMax)
	}
	// Tightness: STA's corners should be nearly achievable on this tiny,
	// reconvergence-light circuit. Allow 60 ps of conservatism.
	if bestMin-staMin > 60e-12 {
		t.Errorf("STA min-delay overly conservative: gap %.1f ps", (bestMin-staMin)*1e12)
	}
	if staMax-bestMax > 60e-12 {
		t.Errorf("STA max-delay overly conservative: gap %.1f ps", (staMax-bestMax)*1e12)
	}
}
