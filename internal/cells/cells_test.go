package cells

import (
	"testing"

	"sstiming/internal/device"
)

// nandDrives builds a drive vector for an n-input NAND where the listed
// inputs fall (to-controlling) and the rest stay at Vdd (non-controlling).
func nandDrives(tech *device.Tech, n int, falling map[int]Drive) []Drive {
	ds := make([]Drive, n)
	for i := range ds {
		if d, ok := falling[i]; ok {
			ds[i] = d
		} else {
			ds[i] = SteadyHigh(tech)
		}
	}
	return ds
}

func TestNAND2SingleInputDelay(t *testing.T) {
	tech := device.Default05um()
	cfg := Config{Kind: NAND, N: 2, Tech: tech, LoadInverter: true}
	tr, err := cfg.MeasureResponse(
		nandDrives(tech, 2, map[int]Drive{0: Falling(1e-9, 0.5e-9)}),
		true, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	delay := tr.Arrival - 1e-9
	if delay < 5e-12 || delay > 2e-9 {
		t.Errorf("NAND2 single-input rise delay = %g s, outside sane range", delay)
	}
	if tr.TransTime <= 0 {
		t.Errorf("output transition time = %g, want > 0", tr.TransTime)
	}
}

// TestFig1SimultaneousFasterThanSingle reproduces the headline phenomenon of
// the paper's Figure 1: simultaneous to-controlling (falling) transitions at
// both NAND inputs produce a smaller gate delay than a single transition,
// because the output charges through two parallel PMOS devices.
func TestFig1SimultaneousFasterThanSingle(t *testing.T) {
	tech := device.Default05um()
	cfg := Config{Kind: NAND, N: 2, Tech: tech, LoadInverter: true}
	const (
		arr = 1e-9
		tt  = 0.5e-9
	)

	single, err := cfg.MeasureResponse(
		nandDrives(tech, 2, map[int]Drive{0: Falling(arr, tt)}),
		true, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	simul, err := cfg.MeasureResponse(
		nandDrives(tech, 2, map[int]Drive{0: Falling(arr, tt), 1: Falling(arr, tt)}),
		true, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}

	dSingle := single.Arrival - arr
	dSimul := simul.Arrival - arr
	if dSimul >= dSingle {
		t.Errorf("simultaneous delay %g >= single delay %g; expected speed-up", dSimul, dSingle)
	}
	// The paper reports roughly 0.28 ns vs 0.17 ns (a ~40%% reduction).
	// Accept any clear speed-up beyond 15%%.
	if dSimul > 0.85*dSingle {
		t.Errorf("speed-up too small: single %g, simultaneous %g", dSingle, dSimul)
	}
}

// TestPositionDependentDelay reproduces Section 3.1.2: the pin-to-pin delay
// from the input farthest from the output of a 5-input NAND is significantly
// larger than from the input closest to the output.
func TestPositionDependentDelay(t *testing.T) {
	tech := device.Default05um()
	cfg := Config{Kind: NAND, N: 5, Tech: tech, LoadInverter: true}
	const (
		arr = 1e-9
		tt  = 0.3e-9
	)

	measure := func(pos int) float64 {
		tr, err := cfg.MeasureResponse(
			nandDrives(tech, 5, map[int]Drive{pos: Falling(arr, tt)}),
			true, SimOptions{})
		if err != nil {
			t.Fatalf("position %d: %v", pos, err)
		}
		return tr.Arrival - arr
	}

	d0 := measure(0)
	d4 := measure(4)
	if d4 <= d0 {
		t.Errorf("delay from position 4 (%g) should exceed position 0 (%g)", d4, d0)
	}
	// The paper cites "may be 50% larger"; require a clear effect.
	if d4 < 1.15*d0 {
		t.Errorf("position effect too small: d0=%g d4=%g", d0, d4)
	}
}

func TestNORSimultaneousFasterThanSingle(t *testing.T) {
	tech := device.Default05um()
	cfg := Config{Kind: NOR, N: 2, Tech: tech, LoadInverter: true}
	const (
		arr = 1e-9
		tt  = 0.5e-9
	)
	// NOR: controlling value is 1, so rising inputs force a falling output.
	norDrives := func(rising map[int]Drive) []Drive {
		ds := make([]Drive, 2)
		for i := range ds {
			if d, ok := rising[i]; ok {
				ds[i] = d
			} else {
				ds[i] = SteadyLow()
			}
		}
		return ds
	}

	single, err := cfg.MeasureResponse(norDrives(map[int]Drive{0: Rising(arr, tt)}), false, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	simul, err := cfg.MeasureResponse(norDrives(map[int]Drive{0: Rising(arr, tt), 1: Rising(arr, tt)}), false, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if simul.Arrival >= single.Arrival {
		t.Errorf("NOR simultaneous arrival %g >= single %g; expected speed-up", simul.Arrival, single.Arrival)
	}
}

func TestSkewReducesSpeedup(t *testing.T) {
	// As |skew| grows the simultaneous-switching delay must approach the
	// single-input pin-to-pin delay (Figure 2's saturation arms).
	tech := device.Default05um()
	cfg := Config{Kind: NAND, N: 2, Tech: tech, LoadInverter: true}
	const (
		arr = 1e-9
		tt  = 0.4e-9
	)
	gateDelay := func(skew float64) float64 {
		drives := nandDrives(tech, 2, map[int]Drive{
			0: Falling(arr, tt),
			1: Falling(arr+skew, tt),
		})
		tr, err := cfg.MeasureResponse(drives, true, SimOptions{TStop: arr + skew + 4e-9})
		if err != nil {
			t.Fatal(err)
		}
		// Paper definition: delay relative to the earliest input arrival.
		earliest := arr
		if skew < 0 {
			earliest = arr + skew
		}
		return tr.Arrival - earliest
	}

	d0 := gateDelay(0)
	dHalf := gateDelay(0.4e-9)
	dBig := gateDelay(2.0e-9)

	single, err := cfg.MeasureResponse(
		nandDrives(tech, 2, map[int]Drive{0: Falling(arr, tt)}), true, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dSingle := single.Arrival - arr

	if !(d0 < dHalf) {
		t.Errorf("delay at skew 0 (%g) should be below delay at moderate skew (%g)", d0, dHalf)
	}
	if diff := dBig - dSingle; diff > 0.1*dSingle || diff < -0.1*dSingle {
		t.Errorf("large-skew delay %g should approach single-input delay %g", dBig, dSingle)
	}
}

func TestConfigValidation(t *testing.T) {
	tech := device.Default05um()
	cfg := Config{Kind: NAND, N: 2, Tech: tech}
	if _, err := cfg.Build([]Drive{SteadyHigh(tech)}); err == nil {
		t.Error("expected error for wrong drive count")
	}
	bad := Config{Kind: NAND, N: 0, Tech: tech}
	if _, err := bad.Build(nil); err == nil {
		t.Error("expected error for zero inputs")
	}
	deep := Config{Kind: NAND, N: 9, Tech: tech}
	if _, err := deep.Build(make([]Drive, 9)); err == nil {
		t.Error("expected error for stack depth > 8")
	}
}

func TestCellNames(t *testing.T) {
	if n := (Config{Kind: NAND, N: 3}).Name(); n != "NAND3" {
		t.Errorf("name = %q, want NAND3", n)
	}
	if n := (Config{Kind: Inv, N: 1}).Name(); n != "INV" {
		t.Errorf("name = %q, want INV", n)
	}
	if cv := (Config{Kind: NOR, N: 2}).ControllingValue(); cv != 1 {
		t.Errorf("NOR controlling value = %d, want 1", cv)
	}
	if cv := (Config{Kind: NAND, N: 2}).ControllingValue(); cv != 0 {
		t.Errorf("NAND controlling value = %d, want 0", cv)
	}
}
