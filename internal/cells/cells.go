// Package cells builds transistor-level testbenches for the primitive CMOS
// cells studied in the DAC 2001 paper: inverters and n-input NAND/NOR gates
// with minimum-size transistors, each optionally driving a minimum-size
// inverter as a load (the paper's experimental setup).
//
// Input positions follow the paper's Figure 3 convention: position 0 is the
// transistor of the series stack that is closest to the gate output.
package cells

import (
	"context"
	"fmt"

	"sstiming/internal/device"
	"sstiming/internal/engine"
	"sstiming/internal/spice"
	"sstiming/internal/waveform"
)

// Kind enumerates the supported primitive cell types.
type Kind int

const (
	// Inv is a static CMOS inverter.
	Inv Kind = iota
	// NAND is an n-input static CMOS NAND gate.
	NAND
	// NOR is an n-input static CMOS NOR gate.
	NOR
)

// String returns the conventional cell name ("INV", "NAND3", ...).
func (k Kind) String() string {
	switch k {
	case Inv:
		return "INV"
	case NAND:
		return "NAND"
	case NOR:
		return "NOR"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Config describes one cell instance and its load.
type Config struct {
	Kind Kind
	// N is the number of inputs (1 for Inv).
	N int
	// Tech is the process technology; nil selects device.Default05um.
	Tech *device.Tech
	// LoadInverter attaches a minimum-size inverter to the output, the
	// standard load of the paper's experiments.
	LoadInverter bool
	// ExtraLoadCap adds additional capacitance (farads) at the output.
	ExtraLoadCap float64
}

// Name returns the conventional instance name, e.g. "NAND2".
func (c Config) Name() string {
	if c.Kind == Inv {
		return "INV"
	}
	return fmt.Sprintf("%s%d", c.Kind, c.N)
}

// ControllingValue returns the controlling logic value of the cell: 0 for
// NAND/Inv (a low input forces the output), 1 for NOR.
func (c Config) ControllingValue() int {
	if c.Kind == NOR {
		return 1
	}
	return 0
}

// OutputRisesOnControlling reports whether a to-controlling response is a
// rising output transition (true for NAND and Inv, false for NOR).
func (c Config) OutputRisesOnControlling() bool { return c.Kind != NOR }

// Drive describes the stimulus applied to one input pin.
type Drive struct {
	// Steady, when true, holds the pin at Level for the whole simulation.
	Steady bool
	// Level is the steady voltage (used only when Steady).
	Level float64
	// Rising selects the transition direction (used when !Steady).
	Rising bool
	// Arrival is the 50% crossing time of the input ramp, in seconds.
	Arrival float64
	// Trans is the 10%-90% transition time of the input ramp, in seconds.
	Trans float64
}

// SteadyHigh returns a steady drive at Vdd.
func SteadyHigh(tech *device.Tech) Drive { return Drive{Steady: true, Level: tech.Vdd} }

// SteadyLow returns a steady drive at 0 V.
func SteadyLow() Drive { return Drive{Steady: true, Level: 0} }

// Falling returns a falling-ramp drive.
func Falling(arrival, trans float64) Drive {
	return Drive{Rising: false, Arrival: arrival, Trans: trans}
}

// Rising returns a rising-ramp drive.
func Rising(arrival, trans float64) Drive {
	return Drive{Rising: true, Arrival: arrival, Trans: trans}
}

func (c Config) tech() *device.Tech {
	if c.Tech != nil {
		return c.Tech
	}
	return device.Default05um()
}

func (c Config) validate(drives []Drive) error {
	n := c.N
	if c.Kind == Inv {
		n = 1
	}
	if n < 1 {
		return fmt.Errorf("cells: %s: invalid input count %d", c.Kind, c.N)
	}
	if c.Kind != Inv && n > 8 {
		return fmt.Errorf("cells: %s: input count %d exceeds supported stack depth 8", c.Kind, n)
	}
	if len(drives) != n {
		return fmt.Errorf("cells: %s expects %d drives, got %d", c.Name(), n, len(drives))
	}
	return nil
}

// Build constructs the transistor-level testbench circuit for this cell with
// the given per-input drives. The gate output is node "out"; input pins are
// nodes "in0".."in<n-1>" where the suffix is the input position.
func (c Config) Build(drives []Drive) (*spice.Circuit, error) {
	if err := c.validate(drives); err != nil {
		return nil, err
	}
	tech := c.tech()
	n := len(drives)

	ckt := spice.NewCircuit()
	vdd := ckt.Node("vdd")
	ckt.AddDC(vdd, tech.Vdd)
	out := ckt.Node("out")

	// Input sources.
	ins := make([]int, n)
	for i, d := range drives {
		ins[i] = ckt.Node(fmt.Sprintf("in%d", i))
		var wave spice.WaveFunc
		switch {
		case d.Steady:
			wave = waveform.Step(d.Level)
		case d.Rising:
			wave = waveform.Ramp(0, tech.Vdd, d.Arrival, d.Trans)
		default:
			wave = waveform.Ramp(tech.Vdd, 0, d.Arrival, d.Trans)
		}
		ckt.AddVSource(ins[i], 0, wave)
	}

	nmos := &tech.NMOS
	pmos := &tech.PMOS
	ngeo := tech.MinGeom(device.NMOS)
	pgeo := tech.MinGeom(device.PMOS)

	// addMOS adds a transistor plus its parasitics: diffusion capacitance
	// at the drain and source (skipped on rail nodes, where an ideal
	// source makes them irrelevant) and gate-drain / gate-source overlap
	// capacitances (the Miller couplers).
	addMOS := func(d, g, s int, p *device.MOSParams, geo device.Geometry) {
		ckt.AddMOSFET(d, g, s, p, geo)
		if d != vdd && d != 0 {
			ckt.AddCap(d, 0, p.DiffCap(geo))
			ckt.AddCap(g, d, p.OverlapCap(geo))
		}
		if s != vdd && s != 0 {
			ckt.AddCap(s, 0, p.DiffCap(geo))
			ckt.AddCap(g, s, p.OverlapCap(geo))
		}
	}

	switch c.Kind {
	case Inv:
		addMOS(out, ins[0], vdd, pmos, pgeo)
		addMOS(out, ins[0], 0, nmos, ngeo)
	case NAND:
		// Parallel PMOS pull-up.
		for i := 0; i < n; i++ {
			addMOS(out, ins[i], vdd, pmos, pgeo)
		}
		// Series NMOS pull-down: position 0 nearest the output.
		prev := out
		for i := 0; i < n; i++ {
			var next int
			if i == n-1 {
				next = 0 // ground
			} else {
				next = ckt.Node(fmt.Sprintf("nstack%d", i))
			}
			addMOS(prev, ins[i], next, nmos, ngeo)
			prev = next
		}
	case NOR:
		// Parallel NMOS pull-down.
		for i := 0; i < n; i++ {
			addMOS(out, ins[i], 0, nmos, ngeo)
		}
		// Series PMOS pull-up: position 0 nearest the output.
		prev := out
		for i := 0; i < n; i++ {
			var next int
			if i == n-1 {
				next = vdd
			} else {
				next = ckt.Node(fmt.Sprintf("pstack%d", i))
			}
			// For PMOS the stack's "drain" faces the output.
			addMOS(prev, ins[i], next, pmos, pgeo)
			prev = next
		}
	default:
		return nil, fmt.Errorf("cells: unsupported kind %v", c.Kind)
	}

	// Load: a minimum-size inverter (paper setup) and/or extra capacitance.
	if c.LoadInverter {
		lout := ckt.Node("loadout")
		addMOS(lout, out, vdd, pmos, pgeo)
		addMOS(lout, out, 0, nmos, ngeo)
		ckt.AddCap(lout, 0, 2e-15)
		// The load inverter's input (gate) capacitance at "out".
		ckt.AddCap(out, 0, pmos.CoxArea*pgeo.W*pgeo.L+nmos.CoxArea*ngeo.W*ngeo.L)
	}
	if c.ExtraLoadCap > 0 {
		ckt.AddCap(out, 0, c.ExtraLoadCap)
	}
	return ckt, nil
}

// SimOptions tunes a cell simulation.
type SimOptions struct {
	// TStop is the simulation end time; zero lets SimulateOutput choose a
	// window based on the drives.
	TStop float64
	// TStep is the integration step; zero selects 2 ps.
	TStep float64
	// Method selects the integration scheme (default spice.BackwardEuler;
	// the characterisation harness uses spice.Trapezoidal).
	Method spice.Method
	// MaxNewton bounds Newton iterations per time point; zero keeps the
	// solver default. The characterisation retry path raises it.
	MaxNewton int
	// VTol is the Newton convergence tolerance; zero keeps the default.
	VTol float64
	// MaxStepHalvings bounds the solver's non-convergence recovery ladder;
	// zero keeps the default, negative disables recovery.
	MaxStepHalvings int
	// FaultHook, when non-nil, injects deterministic solver faults for
	// chaos testing (see internal/faultinject).
	FaultHook spice.FaultHook
	// Ctx, when non-nil, cancels the underlying transient analysis.
	Ctx context.Context
	// Metrics, when non-nil, receives the simulator effort counters.
	Metrics *engine.Metrics
}

// SimulateOutput builds and simulates the testbench and returns the output
// waveform together with the technology Vdd (for measurements).
func (c Config) SimulateOutput(drives []Drive, opts SimOptions) (*waveform.Waveform, float64, error) {
	ckt, err := c.Build(drives)
	if err != nil {
		return nil, 0, err
	}
	tech := c.tech()

	tstop := opts.TStop
	if tstop <= 0 {
		latest := 0.0
		for _, d := range drives {
			if d.Steady {
				continue
			}
			end := d.Arrival + d.Trans
			if end > latest {
				latest = end
			}
		}
		// Leave generous room for the gate response.
		tstop = latest + 4e-9
	}
	tstep := opts.TStep
	if tstep <= 0 {
		tstep = 2e-12
	}

	res, err := ckt.Transient(spice.TransientOpts{
		TStop:           tstop,
		TStep:           tstep,
		MaxNewton:       opts.MaxNewton,
		VTol:            opts.VTol,
		Method:          opts.Method,
		Record:          []string{"out"},
		Ctx:             opts.Ctx,
		MaxStepHalvings: opts.MaxStepHalvings,
		FaultHook:       opts.FaultHook,
		Metrics:         opts.Metrics,
	})
	if err != nil {
		return nil, 0, fmt.Errorf("cells: %s simulation: %w", c.Name(), err)
	}
	return res.Wave("out"), tech.Vdd, nil
}

// MeasureResponse simulates the cell and measures the output transition in
// the direction implied by the drives: rising when the active transitions are
// to the controlling value of a NAND (falling inputs), and so on. The caller
// states the expected output direction explicitly.
func (c Config) MeasureResponse(drives []Drive, outRising bool, opts SimOptions) (waveform.Transition, error) {
	w, vdd, err := c.SimulateOutput(drives, opts)
	if err != nil {
		return waveform.Transition{}, err
	}
	return w.MeasureTransition(vdd, outRising)
}
