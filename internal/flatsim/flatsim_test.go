package flatsim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"sstiming/internal/benchgen"
	"sstiming/internal/logicsim"
	"sstiming/internal/netlist"
	"sstiming/internal/prechar"
	"sstiming/internal/sta"
)

func TestInverterChainFlat(t *testing.T) {
	c := netlist.New("chain3")
	c.AddPI("a")
	c.AddGate(netlist.Inv, "b", "a")
	c.AddGate(netlist.Inv, "d", "b")
	c.AddGate(netlist.Inv, "z", "d")
	c.AddPO("z")
	if err := c.Build(); err != nil {
		t.Fatal(err)
	}

	res, err := Simulate(c, logicsim.Vector{"a": 0}, logicsim.Vector{"a": 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// a rises; b falls, d rises, z falls; arrivals strictly ordered.
	eb, ed, ez := res.Events["b"], res.Events["d"], res.Events["z"]
	if eb.Rising || !ed.Rising || ez.Rising {
		t.Fatalf("directions wrong: %+v %+v %+v", eb, ed, ez)
	}
	if !(eb.Arrival < ed.Arrival && ed.Arrival < ez.Arrival) {
		t.Errorf("arrivals not ordered: %g %g %g", eb.Arrival, ed.Arrival, ez.Arrival)
	}
}

// TestC17FlatVsGateLevel is the reproduction's flagship integration test:
// the entire c17 circuit simulated at transistor level versus the
// gate-level event model built from the fitted library. Logic must agree
// exactly; arrivals within modelling tolerance.
func TestC17FlatVsGateLevel(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	lib := prechar.MustLibrary()
	c := benchgen.C17()
	rng := rand.New(rand.NewSource(2))

	var worstAbs, worstRel float64
	checked := 0
	for trial := 0; trial < 10; trial++ {
		v1 := logicsim.RandomVector(c, rng.Intn)
		v2 := logicsim.RandomVector(c, rng.Intn)

		flat, err := Simulate(c, v1, v2, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		gate, err := logicsim.Simulate(c, v1, v2, logicsim.Options{
			Lib:       lib,
			PIArrival: 1e-9, // match flatsim's default stimulus
			PITrans:   0.2e-9,
		})
		if err != nil {
			t.Fatal(err)
		}

		// Logic agreement.
		for net, want := range flat.V2 {
			if gate.V2[net] != want {
				t.Fatalf("trial %d: logic mismatch at %s", trial, net)
			}
		}
		// Event agreement: the flattened sim may legitimately lack an
		// event where the gate-level model has one (analogue glitches
		// that do not complete are not modelled), but for two-frame
		// static vectors both should agree on switching nets.
		for net, fe := range flat.Events {
			ge, ok := gate.Events[net]
			if !ok {
				t.Fatalf("trial %d: flat sim switches %s but gate model does not", trial, net)
			}
			if fe.Rising != ge.Rising {
				t.Fatalf("trial %d: direction mismatch at %s", trial, net)
			}
			abs := math.Abs(fe.Arrival - ge.Arrival)
			rel := abs / math.Max(fe.Arrival-1e-9, 50e-12)
			if abs > worstAbs {
				worstAbs = abs
			}
			if rel > worstRel {
				worstRel = rel
			}
			checked++
			// Tolerance: the gate-level model is a fitted
			// abstraction; tens of picoseconds of absolute error
			// are expected at c17 scale.
			if abs > 120e-12 && rel > 0.45 {
				t.Errorf("trial %d: %s arrival flat %.4gns vs gate %.4gns",
					trial, net, fe.Arrival*1e9, ge.Arrival*1e9)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no events compared")
	}
	t.Logf("compared %d events; worst abs err %.1f ps, worst rel err %.0f%%",
		checked, worstAbs*1e12, worstRel*100)
}

// TestSTAWindowsContainFlatSim checks the STA windows against transistor-
// level reality (not just against the gate-level model).
func TestSTAWindowsContainFlatSim(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	lib := prechar.MustLibrary()
	c := benchgen.C17()
	staRes, err := sta.Analyze(c, sta.Options{
		Lib:  lib,
		Mode: sta.ModeProposed,
		PI:   sta.PITiming{ArrivalEarly: 1e-9, ArrivalLate: 1e-9, TransShort: 0.2e-9, TransLong: 0.2e-9},
	})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(8))
	const margin = 60e-12 // modelling tolerance between fit and silicon
	for trial := 0; trial < 8; trial++ {
		v1 := logicsim.RandomVector(c, rng.Intn)
		v2 := logicsim.RandomVector(c, rng.Intn)
		flat, err := Simulate(c, v1, v2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for net, ev := range flat.Events {
			w, ok := staRes.Window(net, ev.Rising)
			if !ok {
				t.Fatalf("no STA window for %s", net)
			}
			if ev.Arrival < w.AS-margin || ev.Arrival > w.AL+margin {
				t.Errorf("trial %d: %s transistor-level arrival %.4f ns outside STA window [%.4f, %.4f] ns",
					trial, net, ev.Arrival*1e9, w.AS*1e9, w.AL*1e9)
			}
		}
	}
}

func TestFlatRejectsOversizedCircuit(t *testing.T) {
	c, err := benchgen.Load("c432")
	if err != nil {
		t.Fatal(err)
	}
	v := logicsim.RandomVector(c, func(int) int { return 1 })
	_, err = Simulate(c, v, v, Options{})
	if err == nil {
		t.Fatal("expected dense-solver size error for c432")
	}
	if !errors.Is(err, ErrTooLarge) {
		t.Errorf("error does not wrap ErrTooLarge: %v", err)
	}
}

// TestFlatTooLargeJustOverLimit pins the MaxNodes overflow path on the
// smallest circuit that exceeds it: an inverter chain flattens to one node
// per stage plus the input, vdd and ground, so MaxNodes-2 stages lands
// exactly one node over the limit. The error must be descriptive (wrap
// ErrTooLarge, name the circuit and report the counts) — never a panic.
func TestFlatTooLargeJustOverLimit(t *testing.T) {
	c := netlist.New("chainover")
	c.AddPI("a")
	prev := "a"
	for i := 0; i < MaxNodes-2; i++ {
		out := fmt.Sprintf("n%d", i)
		c.AddGate(netlist.Inv, out, prev)
		prev = out
	}
	c.AddPO(prev)
	if err := c.Build(); err != nil {
		t.Fatal(err)
	}

	v0 := logicsim.RandomVector(c, func(int) int { return 0 })
	v1 := logicsim.RandomVector(c, func(int) int { return 1 })
	_, err := Simulate(c, v0, v1, Options{})
	if err == nil {
		t.Fatal("expected node-limit error")
	}
	if !errors.Is(err, ErrTooLarge) {
		t.Errorf("error does not wrap ErrTooLarge: %v", err)
	}
	for _, want := range []string{"chainover", fmt.Sprint(MaxNodes + 1), fmt.Sprint(MaxNodes)} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

func TestFlatVectorValidation(t *testing.T) {
	c := benchgen.C17()
	full := logicsim.RandomVector(c, func(int) int { return 1 })
	partial := logicsim.Vector{"1": 1}
	if _, err := Simulate(c, partial, full, Options{}); err == nil {
		t.Error("expected error for incomplete vector")
	}
	bad := logicsim.RandomVector(c, func(int) int { return 1 })
	bad["1"] = 5
	if _, err := Simulate(c, bad, full, Options{}); err == nil {
		t.Error("expected error for non-binary vector")
	}
}
