// Package flatsim flattens a gate-level circuit into a single
// transistor-level netlist and simulates it end to end with the spice
// engine — the reproduction's strongest cross-validation: for small
// circuits (c17-scale) the entire design runs at transistor level, and the
// gate-level event model (package logicsim) and the STA windows are checked
// against it.
//
// The dense MNA solver limits the flattened size to a few dozen nodes;
// that is exactly the regime the paper's accuracy experiments operate in.
package flatsim

import (
	"context"
	"errors"
	"fmt"

	"sstiming/internal/device"
	"sstiming/internal/engine"
	"sstiming/internal/logicsim"
	"sstiming/internal/netlist"
	"sstiming/internal/spice"
	"sstiming/internal/waveform"
)

// MaxNodes bounds the flattened circuit size (dense-solver regime).
const MaxNodes = 120

// ErrTooLarge reports a circuit whose flattened transistor netlist exceeds
// MaxNodes. It is returned wrapped with the actual node count, so callers
// that fall back to gate-level-only verification (e.g. the conformance
// campaigns) test for it with errors.Is.
var ErrTooLarge = errors.New("flattened circuit exceeds the dense-solver node limit")

// Options configures a flattened simulation.
type Options struct {
	// Tech is the process technology; nil selects device.Default05um.
	Tech *device.Tech
	// PIArrival is the input transition arrival time; zero selects 1 ns.
	PIArrival float64
	// PITrans is the input 10%-90% transition time; zero selects 0.2 ns.
	PITrans float64
	// TStop is the simulation end; zero derives it from circuit depth.
	TStop float64
	// TStep is the integration step; zero selects 2 ps.
	TStep float64
	// Ctx, when non-nil, cancels the underlying transient analysis.
	Ctx context.Context
	// FaultHook, when non-nil, injects deterministic solver faults for
	// chaos testing (see internal/faultinject).
	FaultHook spice.FaultHook
	// Metrics, when non-nil, receives the simulator effort counters.
	Metrics *engine.Metrics
}

// Event is a measured transition on one net.
type Event struct {
	Rising  bool
	Arrival float64
	Trans   float64
}

// Result holds the flattened simulation outcome.
type Result struct {
	// V1 and V2 are the expected logic values (from gate-level
	// evaluation); the analogue simulation is checked against V2.
	V1, V2 map[string]int
	// Events holds the measured transition of every switching net.
	Events map[string]Event
}

// Simulate flattens the circuit and runs the transistor-level transient.
// A cancelled context returns an error wrapping spice.ErrCancelled — checked
// up front here and per time point inside the solver's Newton loop.
func Simulate(c *netlist.Circuit, v1, v2 logicsim.Vector, opts Options) (*Result, error) {
	if opts.Ctx != nil {
		if err := opts.Ctx.Err(); err != nil {
			return nil, fmt.Errorf("flatsim: %w", spice.Cancelled(err))
		}
	}
	tech := opts.Tech
	if tech == nil {
		tech = device.Default05um()
	}
	arrival := opts.PIArrival
	if arrival <= 0 {
		arrival = 1e-9
	}
	trans := opts.PITrans
	if trans <= 0 {
		trans = 0.2e-9
	}
	tstep := opts.TStep
	if tstep <= 0 {
		tstep = 2e-12
	}

	// Expected logic values per frame (gate-level golden reference).
	expV1, err := evalFrame(c, v1)
	if err != nil {
		return nil, err
	}
	expV2, err := evalFrame(c, v2)
	if err != nil {
		return nil, err
	}

	ckt := spice.NewCircuit()
	vdd := ckt.Node("vdd")
	ckt.AddDC(vdd, tech.Vdd)

	// Primary input sources.
	for _, pi := range c.PIs {
		n := ckt.Node(pi)
		a, b := v1[pi], v2[pi]
		switch {
		case a == b:
			ckt.AddVSource(n, 0, waveform.Step(float64(a)*tech.Vdd))
		case b == 1:
			ckt.AddVSource(n, 0, waveform.Ramp(0, tech.Vdd, arrival, trans))
		default:
			ckt.AddVSource(n, 0, waveform.Ramp(tech.Vdd, 0, arrival, trans))
		}
	}

	nmos := &tech.NMOS
	pmos := &tech.PMOS
	ngeo := tech.MinGeom(device.NMOS)
	pgeo := tech.MinGeom(device.PMOS)

	addMOS := func(d, g, s int, p *device.MOSParams, geo device.Geometry) {
		ckt.AddMOSFET(d, g, s, p, geo)
		if d != vdd && d != 0 {
			ckt.AddCap(d, 0, p.DiffCap(geo))
			ckt.AddCap(g, d, p.OverlapCap(geo))
		}
		if s != vdd && s != 0 {
			ckt.AddCap(s, 0, p.DiffCap(geo))
			ckt.AddCap(g, s, p.OverlapCap(geo))
		}
	}
	// Gate-input capacitance at each driven net (replaces the load
	// inverter of the characterisation testbench: here the real fanout
	// transistors provide it via their gate caps).
	addGateCap := func(n int, p *device.MOSParams, geo device.Geometry) {
		ckt.AddCap(n, 0, p.CoxArea*geo.W*geo.L)
	}

	for gi := range c.Gates {
		g := &c.Gates[gi]
		out := ckt.Node(g.Output)
		switch g.Kind {
		case netlist.Inv:
			in := ckt.Node(g.Inputs[0])
			addMOS(out, in, vdd, pmos, pgeo)
			addMOS(out, in, 0, nmos, ngeo)
			addGateCap(in, pmos, pgeo)
			addGateCap(in, nmos, ngeo)
		case netlist.Buf:
			in := ckt.Node(g.Inputs[0])
			mid := ckt.Node(g.Output + "~mid")
			addMOS(mid, in, vdd, pmos, pgeo)
			addMOS(mid, in, 0, nmos, ngeo)
			addMOS(out, mid, vdd, pmos, pgeo)
			addMOS(out, mid, 0, nmos, ngeo)
			addGateCap(in, pmos, pgeo)
			addGateCap(in, nmos, ngeo)
			addGateCap(mid, pmos, pgeo)
			addGateCap(mid, nmos, ngeo)
		case netlist.Nand:
			n := len(g.Inputs)
			for i := 0; i < n; i++ {
				in := ckt.Node(g.Inputs[i])
				addMOS(out, in, vdd, pmos, pgeo)
				addGateCap(in, pmos, pgeo)
				addGateCap(in, nmos, ngeo)
			}
			prev := out
			for i := 0; i < n; i++ {
				in := ckt.Node(g.Inputs[i])
				var next int
				if i == n-1 {
					next = 0
				} else {
					next = ckt.Node(fmt.Sprintf("%s~n%d", g.Output, i))
				}
				addMOS(prev, in, next, nmos, ngeo)
				prev = next
			}
		case netlist.Nor:
			n := len(g.Inputs)
			for i := 0; i < n; i++ {
				in := ckt.Node(g.Inputs[i])
				addMOS(out, in, 0, nmos, ngeo)
				addGateCap(in, pmos, pgeo)
				addGateCap(in, nmos, ngeo)
			}
			prev := out
			for i := 0; i < n; i++ {
				in := ckt.Node(g.Inputs[i])
				var next int
				if i == n-1 {
					next = vdd
				} else {
					next = ckt.Node(fmt.Sprintf("%s~p%d", g.Output, i))
				}
				addMOS(prev, in, next, pmos, pgeo)
				prev = next
			}
		default:
			return nil, fmt.Errorf("flatsim: unsupported gate kind %v", g.Kind)
		}
		// Wire/output load at each PO-ish dangling net.
		ckt.AddCap(out, 0, 2e-15)
	}

	if nn := ckt.NumNodes(); nn > MaxNodes {
		return nil, fmt.Errorf("flatsim: %s: flattened circuit has %d nodes, limit %d: %w", c.Name, nn, MaxNodes, ErrTooLarge)
	}

	tstop := opts.TStop
	if tstop <= 0 {
		tstop = arrival + trans + 1.5e-9*float64(c.Depth()+1)
	}
	record := make([]string, 0, len(c.PIs)+len(c.Gates))
	record = append(record, c.PIs...)
	for gi := range c.Gates {
		record = append(record, c.Gates[gi].Output)
	}
	res, err := ckt.Transient(spice.TransientOpts{
		TStop:     tstop,
		TStep:     tstep,
		Record:    record,
		Ctx:       opts.Ctx,
		FaultHook: opts.FaultHook,
		Metrics:   opts.Metrics,
	})
	if err != nil {
		return nil, fmt.Errorf("flatsim: %w", err)
	}

	out := &Result{V1: expV1, V2: expV2, Events: make(map[string]Event)}
	for _, net := range record {
		a, b := expV1[net], expV2[net]
		w := res.Wave(net)
		// Check the final analogue level against the expected frame-2
		// logic value.
		final := w.Final()
		if b == 1 && final < 0.9*tech.Vdd || b == 0 && final > 0.1*tech.Vdd {
			return nil, fmt.Errorf("flatsim: net %s settles at %.3f V, expected logic %d", net, final, b)
		}
		if a == b {
			continue
		}
		tr, err := w.MeasureTransition(tech.Vdd, b == 1)
		if err != nil {
			return nil, fmt.Errorf("flatsim: net %s: %w", net, err)
		}
		out.Events[net] = Event{Rising: b == 1, Arrival: tr.Arrival, Trans: tr.TransTime}
	}
	return out, nil
}

// evalFrame computes the gate-level logic values of one frame.
func evalFrame(c *netlist.Circuit, v logicsim.Vector) (map[string]int, error) {
	vals := make(map[string]int, len(c.PIs)+len(c.Gates))
	for _, pi := range c.PIs {
		val, ok := v[pi]
		if !ok {
			return nil, fmt.Errorf("flatsim: vector does not cover PI %q", pi)
		}
		if val != 0 && val != 1 {
			return nil, fmt.Errorf("flatsim: PI %q has non-binary value %d", pi, val)
		}
		vals[pi] = val
	}
	for _, gi := range c.TopoOrder() {
		g := &c.Gates[gi]
		in := make([]int, len(g.Inputs))
		for i, n := range g.Inputs {
			in[i] = vals[n]
		}
		v, err := g.Kind.Eval(in)
		if err != nil {
			return nil, fmt.Errorf("flatsim: gate %q: %w", g.Output, err)
		}
		vals[g.Output] = v
	}
	return vals, nil
}
