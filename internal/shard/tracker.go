package shard

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"sstiming/internal/core"
	"sstiming/internal/engine"
	"sstiming/internal/store"
)

// Status is a shard's position in the lease state machine.
type Status int

const (
	// StatusPending means the shard is waiting for a lease (possibly in
	// backoff after a failed attempt).
	StatusPending Status = iota
	// StatusLeased means a worker holds the shard under a live lease.
	StatusLeased
	// StatusCompleted means a verified artefact has been promoted.
	StatusCompleted
	// StatusQuarantined means the retry budget is exhausted; the shard's
	// cells publish from the analytic fallback.
	StatusQuarantined
)

// CompleteStatus reports how a completion claim was resolved.
type CompleteStatus int

const (
	// CompleteAccepted means the artefact verified and was promoted — this
	// completion won the shard.
	CompleteAccepted CompleteStatus = iota
	// CompleteDuplicate means the shard was already resolved; the (verified
	// or not) completion was discarded idempotently.
	CompleteDuplicate
	// CompleteRejected means the staged artefact failed verification; the
	// accompanying error carries the store taxonomy reason.
	CompleteRejected
)

// String returns the completion status label used on the wire.
func (s CompleteStatus) String() string {
	switch s {
	case CompleteAccepted:
		return "accepted"
	case CompleteDuplicate:
		return "duplicate"
	default:
		return "rejected"
	}
}

// shardState is the tracker's view of one shard. All fields are guarded by
// the tracker mutex.
type shardState struct {
	spec   Spec
	status Status
	// attempts counts leases granted; it doubles as the current attempt
	// generation (attempt g works in shards/<id>/a<g>/).
	attempts int
	// deadline is the lease expiry, pushed forward by heartbeats.
	deadline time.Time
	// availableAt gates re-leasing after a failure (exponential backoff).
	availableAt time.Time
	// lastErr records the most recent failure, for the quarantine report.
	lastErr error
}

// Grant is one lease: the shard spec, the attempt generation the lease was
// granted at, and the deadline by which the holder must heartbeat or
// complete.
type Grant struct {
	Spec     Spec
	Attempt  int
	Deadline time.Time
}

// Tracker is the campaign lease state machine: it owns the shard table,
// grants and expires leases, verifies and promotes artefacts, and merges the
// result. It is the single source of campaign truth shared by the in-process
// coordinator (Run) and the networked one (internal/shardnet) — both drive
// the identical verify-before-accept path, so the robustness contract does
// not depend on the transport.
type Tracker struct {
	opts  Options
	fp    store.Fingerprint
	specs []Spec

	mu     sync.Mutex
	cond   *sync.Cond
	shards []*shardState
	report Report
}

// NewTracker prepares a campaign: options are resolved, the plan derived,
// and the campaign directory created (or, with Resume, reloaded — completed
// shards whose promoted artefacts verify are kept).
func NewTracker(opts Options) (*Tracker, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	t := &Tracker{
		opts:  opts,
		fp:    Fingerprint(opts.Charlib),
		specs: Plan(opts.Charlib, opts.ShardCells),
	}
	t.cond = sync.NewCond(&t.mu)
	t.report.Shards = len(t.specs)
	if err := t.prepareDir(); err != nil {
		return nil, err
	}
	return t, nil
}

// prepareDir creates or resumes the campaign directory and seeds the shard
// table, reusing any shard whose promoted artefact verifies.
func (t *Tracker) prepareDir() error {
	o := &t.opts
	resuming := false
	if o.Resume {
		if _, err := os.Stat(o.Dir); err == nil {
			if err := loadCampaignMeta(o.Dir, t.fp, t.specs); err != nil {
				return err
			}
			resuming = true
		}
	}
	if !resuming {
		if err := os.RemoveAll(o.Dir); err != nil {
			return fmt.Errorf("shard: clearing campaign dir: %w", err)
		}
		if err := os.MkdirAll(o.Dir, 0o755); err != nil {
			return fmt.Errorf("shard: creating campaign dir: %w", err)
		}
		if err := writeCampaignMeta(o.Dir, t.fp, t.specs); err != nil {
			return err
		}
	}

	t.shards = make([]*shardState, len(t.specs))
	for i, spec := range t.specs {
		st := &shardState{spec: spec}
		if resuming {
			// A promoted artefact is the shard's commit record. Verify it
			// from scratch — promotion happened in a previous process, and
			// the bytes may have rotted since.
			if b, err := os.ReadFile(promotedPath(o.Dir, spec.ID)); err == nil {
				if _, err := decodeArtifact(b, t.fp, spec); err == nil {
					st.status = StatusCompleted
					t.report.Completed++
					t.report.Reused++
					o.Progress("shard %s: reusing completed artifact", spec.ID)
				} else {
					o.Progress("shard %s: discarding unverifiable artifact: %v", spec.ID, err)
					t.report.CorruptArtifacts++
					o.Metrics.Add(engine.ShardCorrupt, 1)
				}
			}
		}
		t.shards[i] = st
	}
	return nil
}

// SeedAttemptsFromDisk advances each unresolved shard's attempt generation
// past any attempt directory already on disk, so the next lease grant never
// collides with a generation a previous coordinator handed out. A restarted
// networked coordinator calls this: remote workers may still hold (and be
// uploading under) leases the old process granted, and attempt directories
// must stay private to their lease.
func (t *Tracker) SeedAttemptsFromDisk() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, st := range t.shards {
		if st.status == StatusCompleted || st.status == StatusQuarantined {
			continue
		}
		entries, err := os.ReadDir(shardDir(t.opts.Dir, st.spec.ID))
		if err != nil {
			continue
		}
		for _, e := range entries {
			var g int
			if n, _ := fmt.Sscanf(e.Name(), "a%d", &g); n == 1 && g > st.attempts {
				st.attempts = g
			}
		}
	}
}

// Specs returns the campaign's shard table, in campaign order.
func (t *Tracker) Specs() []Spec { return t.specs }

// FingerprintHash returns the campaign fingerprint hash that pins every
// artefact and journal of this campaign.
func (t *Tracker) FingerprintHash() string { return t.fp.Hash() }

// Dir returns the campaign directory holding all durable shard state.
func (t *Tracker) Dir() string { return t.opts.Dir }

// LeaseTTL returns the campaign lease TTL workers must heartbeat within.
func (t *Tracker) LeaseTTL() time.Duration { return t.opts.LeaseTTL }

// IndexOf resolves a shard ID to its campaign index.
func (t *Tracker) IndexOf(id string) (int, bool) {
	for i := range t.specs {
		if t.specs[i].ID == id {
			return i, true
		}
	}
	return 0, false
}

// StagedPath returns the staged-artefact path for one lease attempt
// (shards/<id>/a<attempt>/shard.json under the campaign directory).
func (t *Tracker) StagedPath(id string, attempt int) string {
	return filepath.Join(attemptDir(t.opts.Dir, id, attempt), artifactName)
}

// AttemptDir returns the per-lease-attempt directory for one shard.
func (t *Tracker) AttemptDir(id string, attempt int) string {
	return attemptDir(t.opts.Dir, id, attempt)
}

// Acquire blocks until a shard is grantable or the campaign is resolved
// (every shard completed or quarantined), returning nil in the latter case.
func (t *Tracker) Acquire(ctx context.Context) *Grant {
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		if ctx.Err() != nil {
			return nil
		}
		g, _, done := t.tryAcquireLocked()
		if g != nil {
			return g
		}
		if done {
			return nil
		}
		t.cond.Wait()
	}
}

// TryAcquire is the non-blocking grant path the networked coordinator
// serves: it returns a grant, or (nil, wait, false) with a backoff hint when
// nothing is currently grantable, or (nil, 0, true) once the campaign is
// resolved.
func (t *Tracker) TryAcquire() (*Grant, time.Duration, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tryAcquireLocked()
}

// tryAcquireLocked grants the first available pending shard. Caller holds
// the mutex.
func (t *Tracker) tryAcquireLocked() (*Grant, time.Duration, bool) {
	resolved := 0
	now := time.Now()
	var wait time.Duration = -1
	hint := func(d time.Duration) {
		if d < 0 {
			d = 0
		}
		if wait < 0 || d < wait {
			wait = d
		}
	}
	for _, st := range t.shards {
		switch st.status {
		case StatusCompleted, StatusQuarantined:
			resolved++
		case StatusLeased:
			// The soonest this shard can change hands is its lease expiry.
			hint(time.Until(st.deadline))
		case StatusPending:
			if now.Before(st.availableAt) {
				hint(st.availableAt.Sub(now))
				continue
			}
			st.status = StatusLeased
			st.attempts++
			st.deadline = now.Add(t.opts.LeaseTTL)
			t.report.Leases++
			t.opts.Metrics.Add(engine.ShardLeases, 1)
			if st.attempts > 1 {
				t.report.Retries++
				t.opts.Metrics.Add(engine.ShardRetries, 1)
			}
			t.opts.Progress("shard %s: lease granted (attempt %d)", st.spec.ID, st.attempts)
			return &Grant{Spec: st.spec, Attempt: st.attempts, Deadline: st.deadline}, 0, false
		}
	}
	if resolved == len(t.shards) {
		return nil, 0, true
	}
	if wait < 0 {
		wait = t.opts.LeaseTTL / 4
	}
	return nil, wait, false
}

// Sweep expires leases whose holders stopped heartbeating and wakes waiters
// whose shards left backoff. The campaign owner (in-process Run or the
// networked coordinator) calls it periodically; its period bounds how
// quickly vanished workers are noticed.
func (t *Tracker) Sweep() {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	wake := false
	for _, st := range t.shards {
		switch st.status {
		case StatusLeased:
			if now.After(st.deadline) {
				t.report.Expired++
				t.opts.Metrics.Add(engine.ShardExpired, 1)
				t.opts.Progress("shard %s: lease expired (attempt %d)", st.spec.ID, st.attempts)
				t.failLocked(st, fmt.Errorf("lease expired after %s", t.opts.LeaseTTL))
				wake = true
			}
		case StatusPending:
			if !now.Before(st.availableAt) {
				wake = true
			}
		}
	}
	if wake {
		t.cond.Broadcast()
	}
}

// Heartbeat extends the lease of one attempt. It reports whether the lease
// is still held at that generation — a false return tells the worker its
// work can at best become a late, idempotently-handled completion.
func (t *Tracker) Heartbeat(index, attempt int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if index < 0 || index >= len(t.shards) {
		return false
	}
	st := t.shards[index]
	if st.status != StatusLeased || st.attempts != attempt {
		return false
	}
	st.deadline = time.Now().Add(t.opts.LeaseTTL)
	return true
}

// LeaseHeld reports whether the lease at (index, attempt) is currently
// held, without renewing it — the check a coordinator uses to answer a
// replayed lease request with its original grant.
func (t *Tracker) LeaseHeld(index, attempt int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if index < 0 || index >= len(t.shards) {
		return false
	}
	st := t.shards[index]
	return st.status == StatusLeased && st.attempts == attempt
}

// Complete handles a completion claim for one attempt: the staged artefact
// is read and fully verified, and only then promoted. Correctness never
// trusts the lease — a verified artefact from an expired lease is accepted
// if the shard is still open, and any completion for an already-resolved
// shard is discarded idempotently (CompleteDuplicate), which is also what
// absorbs a retried completion whose first acknowledgement was lost on the
// network. A failed verification only penalises the shard's current lease
// when this claim IS that lease; a stale corrupt claim must not clobber a
// live reassignment.
func (t *Tracker) Complete(index, attempt int) (CompleteStatus, error) {
	if index < 0 || index >= len(t.shards) {
		return CompleteRejected, fmt.Errorf("%w: shard index %d", ErrUnknownShard, index)
	}
	st := t.shards[index]
	spec := st.spec
	staged := filepath.Join(attemptDir(t.opts.Dir, spec.ID, attempt), artifactName)
	b, err := os.ReadFile(staged)
	if err == nil {
		_, err = decodeArtifact(b, t.fp, spec)
	}

	t.mu.Lock()
	if st.status == StatusCompleted || st.status == StatusQuarantined {
		// Resurrected worker (expired lease, reassigned shard already done),
		// a double submit, or a retry after a lost acknowledgement: drop it,
		// the promoted artefact is immutable.
		t.report.DuplicatesDiscarded++
		t.opts.Metrics.Add(engine.ShardDuplicates, 1)
		t.opts.Progress("shard %s: duplicate completion discarded (attempt %d)", spec.ID, attempt)
		t.mu.Unlock()
		return CompleteDuplicate, nil
	}
	if err != nil {
		t.report.CorruptArtifacts++
		t.opts.Metrics.Add(engine.ShardCorrupt, 1)
		t.opts.Progress("shard %s: rejecting completion (attempt %d): %v", spec.ID, attempt, err)
		if st.status == StatusLeased && st.attempts == attempt {
			t.failLocked(st, err)
		}
		t.cond.Broadcast()
		t.mu.Unlock()
		return CompleteRejected, err
	}
	t.mu.Unlock()

	// Promote outside the lock (it fsyncs). At most one promotion can win:
	// every racing completion re-checks status under the lock below.
	if perr := store.AtomicWrite(promotedPath(t.opts.Dir, spec.ID), b); perr != nil {
		perr = fmt.Errorf("promoting artifact: %w", perr)
		t.mu.Lock()
		if st.status == StatusLeased && st.attempts == attempt {
			t.failLocked(st, perr)
		}
		t.cond.Broadcast()
		t.mu.Unlock()
		return CompleteRejected, perr
	}

	t.mu.Lock()
	if st.status == StatusCompleted || st.status == StatusQuarantined {
		t.report.DuplicatesDiscarded++
		t.opts.Metrics.Add(engine.ShardDuplicates, 1)
		t.mu.Unlock()
		return CompleteDuplicate, nil
	}
	st.status = StatusCompleted
	st.lastErr = nil
	t.report.Completed++
	t.opts.Progress("shard %s: completed (attempt %d)", spec.ID, attempt)
	t.cond.Broadcast()
	t.mu.Unlock()

	if t.opts.OnShardComplete != nil {
		t.opts.OnShardComplete(spec.ID)
	}
	return CompleteAccepted, nil
}

// Fail handles a worker-reported attempt failure (the worker is alive but
// its attempt produced no stageable artefact). Stale reports — the lease
// already expired or the shard resolved another way — are absorbed
// idempotently.
func (t *Tracker) Fail(index, attempt int, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if index < 0 || index >= len(t.shards) {
		return
	}
	st := t.shards[index]
	if st.status != StatusLeased || st.attempts != attempt {
		// The sweeper already expired this lease (or the shard resolved
		// some other way); nothing to do.
		return
	}
	t.opts.Progress("shard %s: attempt %d failed: %v", st.spec.ID, attempt, err)
	t.failLocked(st, err)
	t.cond.Broadcast()
}

// failLocked returns a shard to the pending pool with exponential backoff,
// or quarantines it once the retry budget is spent. Caller holds the mutex.
func (t *Tracker) failLocked(st *shardState, err error) {
	st.lastErr = err
	if st.attempts >= t.opts.MaxAttempts {
		st.status = StatusQuarantined
		t.report.Quarantined = append(t.report.Quarantined, st.spec.ID)
		t.opts.Metrics.Add(engine.ShardQuarantined, 1)
		t.opts.Progress("shard %s: quarantined after %d attempts: %v", st.spec.ID, st.attempts, err)
		return
	}
	st.status = StatusPending
	backoff := t.opts.Backoff << (st.attempts - 1)
	st.availableAt = time.Now().Add(backoff)
}

// resolvedLocked reports whether every shard completed or quarantined.
// Caller holds the mutex.
func (t *Tracker) resolvedLocked() bool {
	for _, st := range t.shards {
		if st.status != StatusCompleted && st.status != StatusQuarantined {
			return false
		}
	}
	return true
}

// Resolved reports whether the campaign is resolved (merge can run).
func (t *Tracker) Resolved() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.resolvedLocked()
}

// WaitResolved blocks until the campaign resolves or ctx fires. The caller
// must keep Sweep ticking — expiry is what resolves vanished workers.
func (t *Tracker) WaitResolved(ctx context.Context) error {
	stop := make(chan struct{})
	defer close(stop)
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				t.cond.Broadcast()
			case <-stop:
			}
		}()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for !t.resolvedLocked() {
		if err := ctx.Err(); err != nil {
			return err
		}
		t.cond.Wait()
	}
	return nil
}

// Snapshot copies the campaign report.
func (t *Tracker) Snapshot() *Report {
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.report
	r.Quarantined = append([]string(nil), t.report.Quarantined...)
	r.QuarantinedCells = append([]string(nil), t.report.QuarantinedCells...)
	return &r
}

// MergeAndPublish reads every promoted artefact, substitutes analytic
// fallbacks for quarantined shards under the campaign budget, and publishes
// the merged library atomically at the campaign's Out path. The campaign
// must be resolved.
func (t *Tracker) MergeAndPublish() (*core.Library, error) {
	t.mu.Lock()
	states := make([]Status, len(t.shards))
	for i, st := range t.shards {
		states[i] = st.status
	}
	t.mu.Unlock()

	arts := make(map[string][]byte, len(t.specs))
	for i, spec := range t.specs {
		switch states[i] {
		case StatusCompleted:
			b, err := os.ReadFile(promotedPath(t.opts.Dir, spec.ID))
			if err != nil {
				return nil, fmt.Errorf("%w: shard %s promoted artifact unreadable: %v",
					store.ErrCorrupt, spec.ID, err)
			}
			arts[spec.ID] = b
		case StatusQuarantined:
			// Absent from arts: merge substitutes the analytic fallback.
		default:
			return nil, fmt.Errorf("shard %s unresolved at merge (status %d)", spec.ID, states[i])
		}
	}

	lib, qcells, err := merge(t.fp, t.specs, arts, t.opts.Charlib.Tech, t.opts.MaxQuarantinedFrac)
	t.mu.Lock()
	t.report.QuarantinedCells = qcells
	t.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if _, err := store.WriteLibrary(t.opts.Out, lib, t.opts.Charlib.Grid, t.opts.Charlib.NCPairs); err != nil {
		return nil, err
	}
	return lib, nil
}

// RemoveDir removes the campaign directory (the publish is durable; the
// scaffolding is spent). Respects KeepDir.
func (t *Tracker) RemoveDir() error {
	if t.opts.KeepDir {
		return nil
	}
	if err := os.RemoveAll(t.opts.Dir); err != nil {
		return fmt.Errorf("shard: removing campaign dir: %w", err)
	}
	return nil
}

// contextSleep sleeps for d or until ctx is cancelled.
func contextSleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
