package shard

import (
	"bytes"
	"errors"
	"testing"

	"sstiming/internal/core"
	"sstiming/internal/device"
	"sstiming/internal/store"
)

// fuzzFixture builds a tiny two-shard campaign entirely from analytic
// models (no simulation): specs {INV} and {NAND2}, one known-good artefact
// for each.
func fuzzFixture(t testing.TB) (store.Fingerprint, []Spec, map[string][]byte, *device.Tech) {
	tech := device.Default05um()
	fp := store.Fingerprint{
		Tech:  tech.Name,
		Vdd:   tech.Vdd,
		Grid:  []float64{0.2e-9, 0.5e-9},
		Cells: []string{"INV", "NAND2"},
		TStep: 3e-12,
	}
	specs := []Spec{
		{ID: "s00", Index: 0, Cells: []string{"INV"}},
		{ID: "s01", Index: 1, Cells: []string{"NAND2"}},
	}
	arts := make(map[string][]byte, 2)
	for _, spec := range specs {
		models := make(map[string]*core.CellModel, 1)
		for _, name := range spec.Cells {
			m, err := store.AnalyticModel(name, tech)
			if err != nil {
				t.Fatalf("analytic %s: %v", name, err)
			}
			models[name] = m
		}
		b, err := encodeArtifact(fp, spec, models)
		if err != nil {
			t.Fatalf("encode %s: %v", spec.ID, err)
		}
		arts[spec.ID] = b
	}
	return fp, specs, arts, tech
}

// mergeErrOK reports whether a merge error is one of the typed failures the
// contract allows — anything else (or a panic, which the fuzzer catches
// itself) is a bug.
func mergeErrOK(err error) bool {
	return errors.Is(err, store.ErrCorrupt) ||
		errors.Is(err, store.ErrSchemaMismatch) ||
		errors.Is(err, store.ErrStale) ||
		errors.Is(err, ErrDuplicateCell) ||
		errors.Is(err, ErrQuarantineBudget)
}

// FuzzShardManifestMerge feeds arbitrary bytes as one shard's promoted
// artefact into the campaign merge. The contract under fuzz: merge never
// panics, never silently drops a cell (success implies the exact campaign
// cell set), and every rejection is a typed error from the store/shard
// taxonomy.
func FuzzShardManifestMerge(f *testing.F) {
	fp, specs, arts, _ := fuzzFixture(f)
	good := arts["s00"]
	f.Add(good)                                                    // the valid artefact itself
	f.Add(good[:len(good)/2])                                      // truncated
	f.Add([]byte("{}"))                                            // empty object
	f.Add([]byte(`{"SchemaVersion":999}`))                         // wrong schema
	f.Add(bytes.Replace(good, []byte("INV"), []byte("NAND2"), -1)) // cross-shard cells
	f.Add(bytes.Replace(good, []byte(`"Fingerprint"`), []byte(`"fingerprint"`), 1))
	f.Add([]byte(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		fp, specs, arts, tech := fp, specs, arts, device.Default05um()
		fuzzArts := map[string][]byte{"s00": data, "s01": arts["s01"]}
		lib, _, err := merge(fp, specs, fuzzArts, tech, 0)
		if err != nil {
			if !mergeErrOK(err) {
				t.Fatalf("untyped merge error: %v", err)
			}
			return
		}
		// Success: the library must cover the campaign cell set exactly —
		// no silently dropped or smuggled cells.
		if len(lib.Cells) != 2 {
			t.Fatalf("merged %d cells, want 2", len(lib.Cells))
		}
		for _, spec := range specs {
			for _, name := range spec.Cells {
				if _, ok := lib.Cells[name]; !ok {
					t.Fatalf("cell %q silently dropped", name)
				}
			}
		}
		// A successful merge of mutated bytes is only legitimate if the
		// bytes still verify as the exact artefact (e.g. the fuzzer
		// regenerated it verbatim).
		if _, err := decodeArtifact(data, fp, specs[0]); err != nil {
			t.Fatalf("merge accepted an artefact decodeArtifact rejects: %v", err)
		}
	})
}

// TestMergeDuplicateCellAcrossShards pins the duplicate-cell rejection: two
// shards claiming the same cell is ErrDuplicateCell even when both
// artefacts verify individually.
func TestMergeDuplicateCellAcrossShards(t *testing.T) {
	tech := device.Default05um()
	fp := store.Fingerprint{
		Tech: tech.Name, Vdd: tech.Vdd,
		Grid: []float64{0.2e-9}, Cells: []string{"INV", "INV"}, TStep: 3e-12,
	}
	m, err := store.AnalyticModel("INV", tech)
	if err != nil {
		t.Fatal(err)
	}
	specs := []Spec{
		{ID: "s00", Index: 0, Cells: []string{"INV"}},
		{ID: "s01", Index: 1, Cells: []string{"INV"}},
	}
	arts := make(map[string][]byte, 2)
	for _, spec := range specs {
		b, err := encodeArtifact(fp, spec, map[string]*core.CellModel{"INV": m})
		if err != nil {
			t.Fatal(err)
		}
		arts[spec.ID] = b
	}
	if _, _, err := merge(fp, specs, arts, tech, 0); !errors.Is(err, ErrDuplicateCell) {
		t.Fatalf("duplicate cell: got %v, want ErrDuplicateCell", err)
	}
	// The quarantine path must catch duplicates too.
	delete(arts, "s01")
	if _, _, err := merge(fp, specs, arts, tech, 1); !errors.Is(err, ErrDuplicateCell) {
		t.Fatalf("duplicate via quarantine: got %v, want ErrDuplicateCell", err)
	}
}

// TestFuzzSeedsDirect runs the seed corpus through the fuzz body so the
// invariants hold even when `go test` runs without fuzzing.
func TestFuzzSeedsDirect(t *testing.T) {
	fp, specs, arts, tech := fuzzFixture(t)
	good := arts["s00"]
	seeds := [][]byte{
		good,
		good[:len(good)/2],
		[]byte("{}"),
		[]byte(`{"SchemaVersion":999}`),
		bytes.Replace(good, []byte("INV"), []byte("NAND2"), -1),
		nil,
	}
	for i, data := range seeds {
		fuzzArts := map[string][]byte{"s00": data, "s01": arts["s01"]}
		lib, _, err := merge(fp, specs, fuzzArts, tech, 0)
		if err != nil {
			if !mergeErrOK(err) {
				t.Fatalf("seed %d: untyped merge error: %v", i, err)
			}
			continue
		}
		if len(lib.Cells) != 2 {
			t.Fatalf("seed %d: merged %d cells, want 2", i, len(lib.Cells))
		}
	}
}
