package shard

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"sstiming/internal/charlib"
	"sstiming/internal/core"
	"sstiming/internal/faultinject"
	"sstiming/internal/store"
)

// journalDirName is the per-attempt write-ahead journal directory.
const journalDirName = "journal"

// runLease executes one lease attempt on an in-process worker: heartbeat
// while working, stage the artefact, submit the completion. Injected faults
// reshape the attempt into the failure the chaos suite is proving against:
//
//	kill    — the worker dies after its first durable checkpoint: no
//	          completion, no failure report; only the expiring lease tells
//	          the coordinator anything.
//	hang    — heartbeats never start (the process stalled); the work still
//	          finishes, then the worker sleeps past its lease before
//	          submitting a late completion the coordinator must handle
//	          idempotently.
//	corrupt — the staged artefact bytes are damaged; verification must
//	          reject the completion and retry the shard.
func (t *Tracker) runLease(ctx context.Context, workerID int, spec Spec, attempt int, deadline time.Time) {
	fault := t.opts.Fault.Decide(spec.Index, attempt)
	if fault != faultinject.ShardFaultNone {
		t.opts.Progress("shard %s: injecting %s (attempt %d, worker %d)", spec.ID, fault, attempt, workerID)
	}

	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	if fault != faultinject.ShardFaultHang {
		hbWG.Add(1)
		go func() {
			defer hbWG.Done()
			tick := time.NewTicker(t.opts.HeartbeatEvery)
			defer tick.Stop()
			for {
				select {
				case <-hbStop:
					return
				case <-tick.C:
					if !t.Heartbeat(spec.Index, attempt) {
						return // lease lost; stop renewing
					}
				}
			}
		}()
	}

	err := runShardWork(ctx, t.opts, t.fp, spec, attempt, fault)
	close(hbStop)
	hbWG.Wait()

	if fault == faultinject.ShardFaultKill {
		return // dead workers don't report
	}
	if err != nil {
		t.Fail(spec.Index, attempt, err)
		return
	}
	if fault == faultinject.ShardFaultHang {
		// Wake up well after the lease expired (half a TTL past the
		// deadline, several sweeper passes) so the completion is genuinely
		// late and a reassigned attempt has had time to start.
		late := time.Until(deadline) + t.opts.LeaseTTL/2
		contextSleep(ctx, late)
	}
	t.Complete(spec.Index, attempt)
}

// runShardWork characterises one shard for one lease attempt and stages the
// artefact at shards/<id>/a<attempt>/shard.json. Every completed cell is
// write-ahead journaled (store.Journal) in the attempt's own directory, and
// the journals of all earlier attempts are replayed read-only first — a
// crashed or killed attempt costs at most the cell that was in flight, and
// a hung-but-alive previous attempt can keep appending to its own journal
// without corrupting this one.
func runShardWork(ctx context.Context, opts Options, fp store.Fingerprint, spec Spec, attempt int, fault faultinject.ShardFault) error {
	cfgs, err := configsFor(opts.Charlib, spec)
	if err != nil {
		return err
	}
	sfp := shardFingerprint(fp, spec)

	adir := attemptDir(opts.Dir, spec.ID, attempt)
	if err := os.MkdirAll(adir, 0o755); err != nil {
		return fmt.Errorf("shard: creating attempt dir: %w", err)
	}

	// Salvage prior attempts. Unreadable or stale journals are skipped, not
	// fatal: the worst case is recharacterising a cell.
	completed := make(map[string]*core.CellModel)
	for g := 1; g < attempt; g++ {
		models, err := store.ReplayJournal(filepath.Join(attemptDir(opts.Dir, spec.ID, g), journalDirName), sfp)
		if err != nil {
			continue
		}
		for name, m := range models {
			completed[name] = m
		}
	}

	j, err := store.CreateJournal(filepath.Join(adir, journalDirName), sfp)
	if err != nil {
		return err
	}
	defer j.Close()

	attemptCtx := ctx
	cancelAttempt := func() {}
	if fault == faultinject.ShardFaultKill {
		attemptCtx, cancelAttempt = context.WithCancel(ctx)
		defer cancelAttempt()
	}
	var killOnce sync.Once

	shardOpts := opts.Charlib
	shardOpts.Cells = cfgs
	shardOpts.Ctx = attemptCtx
	shardOpts.Completed = completed
	progress := opts.Progress
	shardOpts.Progress = func(format string, args ...any) {
		progress("["+spec.ID+"] "+format, args...)
	}
	shardOpts.Checkpoint = func(m *core.CellModel) error {
		if err := j.Append(m); err != nil {
			return err
		}
		// The injected crash lands after the first durable checkpoint, so
		// the retry provably salvages journaled work.
		if fault == faultinject.ShardFaultKill {
			killOnce.Do(cancelAttempt)
		}
		return nil
	}

	lib, err := charlib.Characterize(shardOpts)
	if fault == faultinject.ShardFaultKill {
		return fmt.Errorf("shard %s attempt %d: worker killed mid-shard (fault injection)", spec.ID, attempt)
	}
	if err != nil {
		return fmt.Errorf("shard %s attempt %d: %w", spec.ID, attempt, err)
	}

	b, err := encodeArtifact(fp, spec, lib.Cells)
	if err != nil {
		return err
	}
	if fault == faultinject.ShardFaultCorrupt {
		// Damage a run of bytes mid-file. Whatever they land on — structure,
		// a model value, a recorded digest — verification must notice.
		for i, off := 0, len(b)/3; i < 16 && off+i < len(b); i++ {
			b[off+i] ^= 0x5a
		}
	}
	return store.AtomicWrite(filepath.Join(adir, artifactName), b)
}

// RunAttempt characterises one shard for one lease attempt against a work
// directory laid out like a campaign directory (opts.Dir), stages the
// artefact there, verifies it, and returns the staged bytes. Remote workers
// run it against a private local work directory and stream the returned
// bytes to the coordinator; injected worker faults (opts.Fault) apply
// exactly as they do in-process, so the corrupt-artefact path is exercised
// end to end over the wire.
func RunAttempt(opts Options, spec Spec, attempt int) ([]byte, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	fp := Fingerprint(opts.Charlib)
	fault := opts.Fault.Decide(spec.Index, attempt)
	if fault != faultinject.ShardFaultNone {
		opts.Progress("shard %s: injecting %s (attempt %d)", spec.ID, fault, attempt)
	}
	if err := runShardWork(opts.Charlib.Ctx, opts, fp, spec, attempt, fault); err != nil {
		return nil, err
	}
	b, err := os.ReadFile(filepath.Join(attemptDir(opts.Dir, spec.ID, attempt), artifactName))
	if err != nil {
		return nil, fmt.Errorf("shard: reading staged artifact: %w", err)
	}
	if fault != faultinject.ShardFaultCorrupt {
		// An honest worker verifies before shipping; a corrupt-fault worker
		// ships the damage so the coordinator's verify-before-accept path is
		// the one that must catch it.
		if _, err := decodeArtifact(b, fp, spec); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// NextAttemptGen returns the next free attempt generation for a shard: one
// past the highest attempt directory any previous worker (finished or not)
// created under dir.
func NextAttemptGen(dir, shardID string) int {
	attempt := 1
	if entries, err := os.ReadDir(shardDir(dir, shardID)); err == nil {
		for _, e := range entries {
			var g int
			if n, _ := fmt.Sscanf(e.Name(), "a%d", &g); n == 1 && g >= attempt {
				attempt = g + 1
			}
		}
	}
	return attempt
}

// ComparePlan verifies a remotely-advertised campaign — its fingerprint
// hash and shard table — against the plan this process derives from its own
// options. A mismatch is store.ErrStale: the worker and coordinator were
// built or configured differently, and no work must happen.
func ComparePlan(opts Options, fpHash string, remote []Spec) error {
	if err := opts.fill(); err != nil {
		return err
	}
	fp := Fingerprint(opts.Charlib)
	if fp.Hash() != fpHash {
		return fmt.Errorf("%w: coordinator campaign was planned with different options "+
			"(grid/cells/tech/solver settings differ)", store.ErrStale)
	}
	specs := Plan(opts.Charlib, opts.ShardCells)
	if len(remote) != len(specs) {
		return fmt.Errorf("%w: coordinator plan has %d shards, this worker derives %d (shard size differs)",
			store.ErrStale, len(remote), len(specs))
	}
	for i, s := range remote {
		want := specs[i]
		if s.ID != want.ID || s.Index != want.Index || len(s.Cells) != len(want.Cells) {
			return fmt.Errorf("%w: coordinator shard %d differs from this worker's derived plan", store.ErrStale, i)
		}
		for j, c := range s.Cells {
			if c != want.Cells[j] {
				return fmt.Errorf("%w: coordinator shard %s cell list differs from this worker's derived plan",
					store.ErrStale, s.ID)
			}
		}
	}
	return nil
}

// PlanFor derives the campaign shard table from options without touching
// any directory (remote workers resolve lease grants against it).
func PlanFor(opts Options) ([]Spec, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	return Plan(opts.Charlib, opts.ShardCells), nil
}

// PlanCampaign prepares a campaign directory for multi-process operation:
// the directory and its campaign.json plan are created (discarding any
// previous campaign there) and the shard table is returned. Separate
// processes then run RunWorker per shard, and a final Run with Resume set
// merges and publishes.
func PlanCampaign(opts Options) ([]Spec, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	fp := Fingerprint(opts.Charlib)
	specs := Plan(opts.Charlib, opts.ShardCells)
	if err := os.RemoveAll(opts.Dir); err != nil {
		return nil, fmt.Errorf("shard: clearing campaign dir: %w", err)
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("shard: creating campaign dir: %w", err)
	}
	if err := writeCampaignMeta(opts.Dir, fp, specs); err != nil {
		return nil, err
	}
	return specs, nil
}

// RunWorker is the standalone worker mode: it characterises one shard of an
// existing campaign directory (verifying the plan matches this process's
// options first), stages the artefact under a fresh attempt generation,
// verifies it and promotes it to the shard's committed slot. The options
// must match the planning process's bit-for-bit — anything else is refused
// with store.ErrStale before any work happens.
func RunWorker(opts Options, shardID string) error {
	if err := opts.fill(); err != nil {
		return err
	}
	fp := Fingerprint(opts.Charlib)
	specs := Plan(opts.Charlib, opts.ShardCells)
	if err := loadCampaignMeta(opts.Dir, fp, specs); err != nil {
		return err
	}
	var spec *Spec
	for i := range specs {
		if specs[i].ID == shardID {
			spec = &specs[i]
			break
		}
	}
	if spec == nil {
		return fmt.Errorf("%w: %q", ErrUnknownShard, shardID)
	}

	attempt := NextAttemptGen(opts.Dir, spec.ID)

	ctx := opts.Charlib.Ctx
	if err := runShardWork(ctx, opts, fp, *spec, attempt, opts.Fault.Decide(spec.Index, attempt)); err != nil {
		return err
	}
	staged, err := os.ReadFile(filepath.Join(attemptDir(opts.Dir, spec.ID, attempt), artifactName))
	if err != nil {
		return fmt.Errorf("shard: reading staged artifact: %w", err)
	}
	if _, err := decodeArtifact(staged, fp, *spec); err != nil {
		return err
	}
	return store.AtomicWrite(promotedPath(opts.Dir, spec.ID), staged)
}
