package shard

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"sstiming/internal/core"
	"sstiming/internal/engine"
	"sstiming/internal/store"
)

// Status is a shard's position in the lease state machine.
type Status int

const (
	// StatusPending means the shard is waiting for a lease (possibly in
	// backoff after a failed attempt).
	StatusPending Status = iota
	// StatusLeased means a worker holds the shard under a live lease.
	StatusLeased
	// StatusCompleted means a verified artefact has been promoted.
	StatusCompleted
	// StatusQuarantined means the retry budget is exhausted; the shard's
	// cells publish from the analytic fallback.
	StatusQuarantined
)

// shardState is the coordinator's view of one shard. All fields are guarded
// by the coordinator mutex.
type shardState struct {
	spec   Spec
	status Status
	// attempts counts leases granted; it doubles as the current attempt
	// generation (attempt g works in shards/<id>/a<g>/).
	attempts int
	// deadline is the lease expiry, pushed forward by heartbeats.
	deadline time.Time
	// availableAt gates re-leasing after a failure (exponential backoff).
	availableAt time.Time
	// lastErr records the most recent failure, for the quarantine report.
	lastErr error
}

// coordinator runs one campaign: it owns the shard table, grants and
// expires leases, verifies and promotes artefacts, and merges the result.
type coordinator struct {
	opts  Options
	fp    store.Fingerprint
	specs []Spec

	mu     sync.Mutex
	cond   *sync.Cond
	shards []*shardState
	report Report
}

// Run executes a sharded campaign to a durable publish at opts.Out and
// returns the merged library. See the package comment for the fault-
// tolerance contract; the published bytes are identical to what an
// uninterrupted charlib.Characterize + store.WriteLibrary of the same
// options would produce (when nothing was quarantined).
func Run(opts Options) (*core.Library, *Report, error) {
	if err := opts.fill(); err != nil {
		return nil, nil, err
	}
	c := &coordinator{
		opts:  opts,
		fp:    Fingerprint(opts.Charlib),
		specs: Plan(opts.Charlib, opts.ShardCells),
	}
	c.cond = sync.NewCond(&c.mu)
	c.report.Shards = len(c.specs)

	if err := c.prepareDir(); err != nil {
		return nil, nil, err
	}

	ctx := opts.Charlib.Ctx

	// The sweeper expires dead leases and wakes workers whose backoff has
	// elapsed. Its tick bounds how quickly both are noticed.
	sweepEvery := opts.LeaseTTL / 8
	if sweepEvery > time.Second {
		sweepEvery = time.Second
	}
	if sweepEvery < time.Millisecond {
		sweepEvery = time.Millisecond
	}
	sweepDone := make(chan struct{})
	var sweepWG sync.WaitGroup
	// Cancellation watcher: workers blocked in acquire only re-check the
	// context when woken, so a cancel must broadcast.
	if ctx.Done() != nil {
		sweepWG.Add(1)
		go func() {
			defer sweepWG.Done()
			select {
			case <-ctx.Done():
				c.cond.Broadcast()
			case <-sweepDone:
			}
		}()
	}
	sweepWG.Add(1)
	go func() {
		defer sweepWG.Done()
		t := time.NewTicker(sweepEvery)
		defer t.Stop()
		for {
			select {
			case <-sweepDone:
				return
			case <-t.C:
				c.sweep()
			}
		}
	}()

	// Workers: each loops acquiring leases until the campaign is resolved.
	// Run waits for every worker — including hung ones submitting late,
	// discardable completions — so a campaign's counters are deterministic
	// and no goroutine outlives the call.
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for {
				st := c.acquire(ctx)
				if st == nil {
					return
				}
				c.runLease(ctx, id, st.spec, st.attempts, st.deadline)
			}
		}(w)
	}
	wg.Wait()
	close(sweepDone)
	sweepWG.Wait()
	c.cond.Broadcast()

	if err := ctx.Err(); err != nil {
		return nil, c.reportCopy(), fmt.Errorf("shard: campaign cancelled: %w", err)
	}

	lib, err := c.mergeAndPublish()
	if err != nil {
		return nil, c.reportCopy(), err
	}
	if !opts.KeepDir {
		// The publish is durable; the campaign scaffolding is spent
		// (exactly like a single-process run removing its journal).
		if err := os.RemoveAll(opts.Dir); err != nil {
			return nil, c.reportCopy(), fmt.Errorf("shard: removing campaign dir: %w", err)
		}
	}
	return lib, c.reportCopy(), nil
}

// prepareDir creates or resumes the campaign directory and seeds the shard
// table, reusing any shard whose promoted artefact verifies.
func (c *coordinator) prepareDir() error {
	o := &c.opts
	resuming := false
	if o.Resume {
		if _, err := os.Stat(o.Dir); err == nil {
			if err := loadCampaignMeta(o.Dir, c.fp, c.specs); err != nil {
				return err
			}
			resuming = true
		}
	}
	if !resuming {
		if err := os.RemoveAll(o.Dir); err != nil {
			return fmt.Errorf("shard: clearing campaign dir: %w", err)
		}
		if err := os.MkdirAll(o.Dir, 0o755); err != nil {
			return fmt.Errorf("shard: creating campaign dir: %w", err)
		}
		if err := writeCampaignMeta(o.Dir, c.fp, c.specs); err != nil {
			return err
		}
	}

	c.shards = make([]*shardState, len(c.specs))
	for i, spec := range c.specs {
		st := &shardState{spec: spec}
		if resuming {
			// A promoted artefact is the shard's commit record. Verify it
			// from scratch — promotion happened in a previous process, and
			// the bytes may have rotted since.
			if b, err := os.ReadFile(promotedPath(o.Dir, spec.ID)); err == nil {
				if _, err := decodeArtifact(b, c.fp, spec); err == nil {
					st.status = StatusCompleted
					c.report.Completed++
					c.report.Reused++
					o.Progress("shard %s: reusing completed artifact", spec.ID)
				} else {
					o.Progress("shard %s: discarding unverifiable artifact: %v", spec.ID, err)
					c.count(engine.ShardCorrupt, &c.report.CorruptArtifacts)
				}
			}
		}
		c.shards[i] = st
	}
	return nil
}

// acquire blocks until a shard is grantable or the campaign is resolved
// (every shard completed or quarantined), returning nil in the latter case.
// The returned snapshot carries the granted attempt generation and lease
// deadline.
func (c *coordinator) acquire(ctx context.Context) *shardState {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if ctx.Err() != nil {
			return nil
		}
		resolved := 0
		now := time.Now()
		for _, st := range c.shards {
			switch st.status {
			case StatusCompleted, StatusQuarantined:
				resolved++
			case StatusPending:
				if now.Before(st.availableAt) {
					continue
				}
				st.status = StatusLeased
				st.attempts++
				st.deadline = now.Add(c.opts.LeaseTTL)
				c.report.Leases++
				c.opts.Metrics.Add(engine.ShardLeases, 1)
				if st.attempts > 1 {
					c.report.Retries++
					c.opts.Metrics.Add(engine.ShardRetries, 1)
				}
				c.opts.Progress("shard %s: lease granted (attempt %d)", st.spec.ID, st.attempts)
				// Copy the grant so the caller reads it without the lock.
				snap := *st
				return &snap
			}
		}
		if resolved == len(c.shards) {
			return nil
		}
		c.cond.Wait()
	}
}

// sweep expires leases whose holders stopped heartbeating and wakes workers
// whose shards left backoff.
func (c *coordinator) sweep() {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	wake := false
	for _, st := range c.shards {
		switch st.status {
		case StatusLeased:
			if now.After(st.deadline) {
				c.report.Expired++
				c.opts.Metrics.Add(engine.ShardExpired, 1)
				c.opts.Progress("shard %s: lease expired (attempt %d)", st.spec.ID, st.attempts)
				c.failLocked(st, fmt.Errorf("lease expired after %s", c.opts.LeaseTTL))
				wake = true
			}
		case StatusPending:
			if !now.Before(st.availableAt) {
				wake = true
			}
		}
	}
	if wake {
		c.cond.Broadcast()
	}
}

// heartbeat extends the lease of one attempt. It reports whether the lease
// is still held at that generation — a false return tells the worker its
// work can at best become a late, idempotently-handled completion.
func (c *coordinator) heartbeat(index, attempt int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.shards[index]
	if st.status != StatusLeased || st.attempts != attempt {
		return false
	}
	st.deadline = time.Now().Add(c.opts.LeaseTTL)
	return true
}

// complete handles a worker's completion claim for one attempt: the staged
// artefact is read and fully verified, and only then promoted. Correctness
// never trusts the lease — a verified artefact from an expired lease is
// accepted if the shard is still open, and any completion for an
// already-complete shard is discarded idempotently.
func (c *coordinator) complete(index, attempt int) {
	st := c.shards[index]
	spec := st.spec
	staged := filepath.Join(attemptDir(c.opts.Dir, spec.ID, attempt), artifactName)
	b, err := os.ReadFile(staged)
	if err == nil {
		_, err = decodeArtifact(b, c.fp, spec)
	}

	c.mu.Lock()
	if st.status == StatusCompleted || st.status == StatusQuarantined {
		// Resurrected worker (expired lease, reassigned shard already done)
		// or a double submit: drop it, the promoted artefact is immutable.
		c.report.DuplicatesDiscarded++
		c.opts.Metrics.Add(engine.ShardDuplicates, 1)
		c.opts.Progress("shard %s: duplicate completion discarded (attempt %d)", spec.ID, attempt)
		c.mu.Unlock()
		return
	}
	if err != nil {
		c.report.CorruptArtifacts++
		c.opts.Metrics.Add(engine.ShardCorrupt, 1)
		c.opts.Progress("shard %s: rejecting completion (attempt %d): %v", spec.ID, attempt, err)
		c.failLocked(st, err)
		c.cond.Broadcast()
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()

	// Promote outside the lock (it fsyncs). At most one promotion can win:
	// every racing completion re-checks status under the lock below.
	if perr := store.AtomicWrite(promotedPath(c.opts.Dir, spec.ID), b); perr != nil {
		c.mu.Lock()
		c.failLocked(st, fmt.Errorf("promoting artifact: %w", perr))
		c.cond.Broadcast()
		c.mu.Unlock()
		return
	}

	c.mu.Lock()
	if st.status == StatusCompleted || st.status == StatusQuarantined {
		c.report.DuplicatesDiscarded++
		c.opts.Metrics.Add(engine.ShardDuplicates, 1)
		c.mu.Unlock()
		return
	}
	st.status = StatusCompleted
	st.lastErr = nil
	c.report.Completed++
	c.opts.Progress("shard %s: completed (attempt %d)", spec.ID, attempt)
	c.cond.Broadcast()
	c.mu.Unlock()

	if c.opts.OnShardComplete != nil {
		c.opts.OnShardComplete(spec.ID)
	}
}

// fail handles a worker-reported attempt failure (the worker is alive but
// its attempt produced no stageable artefact).
func (c *coordinator) fail(index, attempt int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.shards[index]
	if st.status != StatusLeased || st.attempts != attempt {
		// The sweeper already expired this lease (or the shard resolved
		// some other way); nothing to do.
		return
	}
	c.opts.Progress("shard %s: attempt %d failed: %v", st.spec.ID, attempt, err)
	c.failLocked(st, err)
	c.cond.Broadcast()
}

// failLocked returns a shard to the pending pool with exponential backoff,
// or quarantines it once the retry budget is spent. Caller holds the mutex.
func (c *coordinator) failLocked(st *shardState, err error) {
	st.lastErr = err
	if st.attempts >= c.opts.MaxAttempts {
		st.status = StatusQuarantined
		c.report.Quarantined = append(c.report.Quarantined, st.spec.ID)
		c.opts.Metrics.Add(engine.ShardQuarantined, 1)
		c.opts.Progress("shard %s: quarantined after %d attempts: %v", st.spec.ID, st.attempts, err)
		return
	}
	st.status = StatusPending
	backoff := c.opts.Backoff << (st.attempts - 1)
	st.availableAt = time.Now().Add(backoff)
}

// count bumps a metrics counter and its report twin under the mutex-free
// rules each needs (metrics are atomic; the report field must be guarded).
func (c *coordinator) count(counter engine.Counter, field *int) {
	c.opts.Metrics.Add(counter, 1)
	c.mu.Lock()
	*field++
	c.mu.Unlock()
}

// reportCopy snapshots the report.
func (c *coordinator) reportCopy() *Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := c.report
	r.Quarantined = append([]string(nil), c.report.Quarantined...)
	r.QuarantinedCells = append([]string(nil), c.report.QuarantinedCells...)
	return &r
}

// mergeAndPublish reads every promoted artefact, substitutes analytic
// fallbacks for quarantined shards under the campaign budget, and publishes
// the merged library atomically.
func (c *coordinator) mergeAndPublish() (*core.Library, error) {
	c.mu.Lock()
	states := make([]Status, len(c.shards))
	for i, st := range c.shards {
		states[i] = st.status
	}
	c.mu.Unlock()

	arts := make(map[string][]byte, len(c.specs))
	for i, spec := range c.specs {
		switch states[i] {
		case StatusCompleted:
			b, err := os.ReadFile(promotedPath(c.opts.Dir, spec.ID))
			if err != nil {
				return nil, fmt.Errorf("%w: shard %s promoted artifact unreadable: %v",
					store.ErrCorrupt, spec.ID, err)
			}
			arts[spec.ID] = b
		case StatusQuarantined:
			// Absent from arts: merge substitutes the analytic fallback.
		default:
			return nil, fmt.Errorf("shard %s unresolved at merge (status %d)", spec.ID, states[i])
		}
	}

	lib, qcells, err := merge(c.fp, c.specs, arts, c.opts.Charlib.Tech, c.opts.MaxQuarantinedFrac)
	c.mu.Lock()
	c.report.QuarantinedCells = qcells
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if _, err := store.WriteLibrary(c.opts.Out, lib, c.opts.Charlib.Grid, c.opts.Charlib.NCPairs); err != nil {
		return nil, err
	}
	return lib, nil
}

// contextSleep sleeps for d or until ctx is cancelled.
func contextSleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
