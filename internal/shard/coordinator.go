package shard

import (
	"fmt"
	"sync"
	"time"

	"sstiming/internal/core"
)

// Run executes a sharded campaign to a durable publish at opts.Out and
// returns the merged library. See the package comment for the fault-
// tolerance contract; the published bytes are identical to what an
// uninterrupted charlib.Characterize + store.WriteLibrary of the same
// options would produce (when nothing was quarantined).
func Run(opts Options) (*core.Library, *Report, error) {
	t, err := NewTracker(opts)
	if err != nil {
		return nil, nil, err
	}
	opts = t.opts // resolved defaults

	ctx := opts.Charlib.Ctx

	// The sweeper expires dead leases and wakes workers whose backoff has
	// elapsed. Its tick bounds how quickly both are noticed.
	sweepEvery := opts.LeaseTTL / 8
	if sweepEvery > time.Second {
		sweepEvery = time.Second
	}
	if sweepEvery < time.Millisecond {
		sweepEvery = time.Millisecond
	}
	sweepDone := make(chan struct{})
	var sweepWG sync.WaitGroup
	// Cancellation watcher: workers blocked in Acquire only re-check the
	// context when woken, so a cancel must broadcast.
	if ctx.Done() != nil {
		sweepWG.Add(1)
		go func() {
			defer sweepWG.Done()
			select {
			case <-ctx.Done():
				t.cond.Broadcast()
			case <-sweepDone:
			}
		}()
	}
	sweepWG.Add(1)
	go func() {
		defer sweepWG.Done()
		tick := time.NewTicker(sweepEvery)
		defer tick.Stop()
		for {
			select {
			case <-sweepDone:
				return
			case <-tick.C:
				t.Sweep()
			}
		}
	}()

	// Workers: each loops acquiring leases until the campaign is resolved.
	// Run waits for every worker — including hung ones submitting late,
	// discardable completions — so a campaign's counters are deterministic
	// and no goroutine outlives the call.
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for {
				g := t.Acquire(ctx)
				if g == nil {
					return
				}
				t.runLease(ctx, id, g.Spec, g.Attempt, g.Deadline)
			}
		}(w)
	}
	wg.Wait()
	close(sweepDone)
	sweepWG.Wait()
	t.cond.Broadcast()

	if err := ctx.Err(); err != nil {
		return nil, t.Snapshot(), fmt.Errorf("shard: campaign cancelled: %w", err)
	}

	lib, err := t.MergeAndPublish()
	if err != nil {
		return nil, t.Snapshot(), err
	}
	// The publish is durable; the campaign scaffolding is spent (exactly
	// like a single-process run removing its journal).
	if err := t.RemoveDir(); err != nil {
		return nil, t.Snapshot(), err
	}
	return lib, t.Snapshot(), nil
}
