package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"sstiming/internal/core"
	"sstiming/internal/device"
	"sstiming/internal/store"
)

// Campaign directory layout (<out>.campaign/):
//
//	campaign.json            — schema version, campaign fingerprint hash and
//	                           the shard table; a resume whose plan differs
//	                           is refused with store.ErrStale.
//	shards/<id>/a<gen>/      — one directory per lease attempt, holding the
//	                           attempt's write-ahead journal (store.Journal
//	                           layout) and, if the attempt finished, its
//	                           staged artefact shard.json. Attempts never
//	                           share files, so a hung worker of attempt g
//	                           cannot corrupt attempt g+1.
//	shards/<id>/shard.json   — the promoted artefact: the coordinator copies
//	                           a staged artefact here (atomically) only after
//	                           it verifies. Promotion is the shard's commit
//	                           point; merge reads promoted artefacts only.

const (
	campaignMetaName = "campaign.json"
	shardsDirName    = "shards"
	artifactName     = "shard.json"
)

// artifact is the durable result of one shard: the characterised cell
// models plus enough integrity metadata to verify them independently of the
// worker that produced them.
type artifact struct {
	SchemaVersion int
	// Fingerprint is the campaign fingerprint hash — a shard characterised
	// under different options must never merge into this campaign.
	Fingerprint string
	// ShardID names the shard within the campaign plan.
	ShardID string
	// Cells holds the shard's models keyed by cell name.
	Cells map[string]*core.CellModel
	// CellSHA256 maps each cell to the digest of its canonical encoding
	// (store.CellHash), verified before the artefact is accepted.
	CellSHA256 map[string]string
}

// encodeArtifact serialises a completed shard's models. The model set must
// cover the shard spec exactly.
func encodeArtifact(fp store.Fingerprint, spec Spec, models map[string]*core.CellModel) ([]byte, error) {
	if len(models) != len(spec.Cells) {
		return nil, fmt.Errorf("shard %s: %d models for %d cells", spec.ID, len(models), len(spec.Cells))
	}
	a := artifact{
		SchemaVersion: SchemaVersion,
		Fingerprint:   fp.Hash(),
		ShardID:       spec.ID,
		Cells:         models,
		CellSHA256:    make(map[string]string, len(models)),
	}
	for _, name := range spec.Cells {
		m, ok := models[name]
		if !ok || m == nil {
			return nil, fmt.Errorf("shard %s: missing model for cell %q", spec.ID, name)
		}
		h, err := store.CellHash(m)
		if err != nil {
			return nil, err
		}
		a.CellSHA256[name] = h
	}
	b, err := json.MarshalIndent(&a, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("shard: encoding artifact %s: %w", spec.ID, err)
	}
	return append(b, '\n'), nil
}

// decodeArtifact parses and fully verifies shard artefact bytes against the
// campaign fingerprint and the shard's spec. Every failure is typed with the
// store load taxonomy: undecodable or integrity-violating bytes are
// store.ErrCorrupt, a schema from another build is store.ErrSchemaMismatch,
// and a verifiably valid artefact for the wrong campaign or shard is
// store.ErrStale. No partially-verified model set is ever returned.
func decodeArtifact(b []byte, fp store.Fingerprint, spec Spec) (map[string]*core.CellModel, error) {
	var a artifact
	if err := json.Unmarshal(b, &a); err != nil {
		return nil, fmt.Errorf("%w: shard %s artifact is not valid JSON: %v", store.ErrCorrupt, spec.ID, err)
	}
	if a.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("%w: shard artifact schema %d, this build reads %d",
			store.ErrSchemaMismatch, a.SchemaVersion, SchemaVersion)
	}
	if a.Fingerprint != fp.Hash() {
		return nil, fmt.Errorf("%w: shard %s artifact was produced by a different campaign", store.ErrStale, spec.ID)
	}
	if a.ShardID != spec.ID {
		return nil, fmt.Errorf("%w: artifact names shard %q, expected %q", store.ErrStale, a.ShardID, spec.ID)
	}
	if len(a.Cells) != len(spec.Cells) {
		return nil, fmt.Errorf("%w: shard %s artifact holds %d cells, spec lists %d",
			store.ErrCorrupt, spec.ID, len(a.Cells), len(spec.Cells))
	}
	for _, name := range spec.Cells {
		m, ok := a.Cells[name]
		if !ok || m == nil {
			return nil, fmt.Errorf("%w: shard %s artifact is missing cell %q", store.ErrCorrupt, spec.ID, name)
		}
		if m.Name != name {
			return nil, fmt.Errorf("%w: shard %s artifact cell %q carries name %q",
				store.ErrCorrupt, spec.ID, name, m.Name)
		}
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("%w: shard %s cell %q: %v", store.ErrCorrupt, spec.ID, name, err)
		}
		h, err := store.CellHash(m)
		if err != nil {
			return nil, err
		}
		if want := a.CellSHA256[name]; want != h {
			return nil, fmt.Errorf("%w: shard %s cell %q hash mismatch", store.ErrCorrupt, spec.ID, name)
		}
	}
	return a.Cells, nil
}

// campaignMeta is the durable campaign plan: the shard table every restart
// and every standalone worker must agree on.
type campaignMeta struct {
	SchemaVersion int
	Fingerprint   string
	Shards        []Spec
}

// writeCampaignMeta publishes the plan into the campaign directory.
func writeCampaignMeta(dir string, fp store.Fingerprint, specs []Spec) error {
	b, err := json.MarshalIndent(&campaignMeta{
		SchemaVersion: SchemaVersion,
		Fingerprint:   fp.Hash(),
		Shards:        specs,
	}, "", "  ")
	if err != nil {
		return fmt.Errorf("shard: encoding campaign meta: %w", err)
	}
	return store.AtomicWrite(filepath.Join(dir, campaignMetaName), append(b, '\n'))
}

// loadCampaignMeta reads and verifies the plan against the resuming
// campaign's fingerprint and freshly-derived shard table.
func loadCampaignMeta(dir string, fp store.Fingerprint, specs []Spec) error {
	b, err := os.ReadFile(filepath.Join(dir, campaignMetaName))
	if err != nil {
		return fmt.Errorf("%w: campaign %s has no readable meta: %v", store.ErrStale, dir, err)
	}
	var meta campaignMeta
	if err := json.Unmarshal(b, &meta); err != nil {
		return fmt.Errorf("%w: campaign meta is not valid JSON: %v", store.ErrCorrupt, err)
	}
	if meta.SchemaVersion != SchemaVersion {
		return fmt.Errorf("%w: campaign schema %d, this build reads %d",
			store.ErrSchemaMismatch, meta.SchemaVersion, SchemaVersion)
	}
	if meta.Fingerprint != fp.Hash() {
		return fmt.Errorf("%w: campaign directory was written with different options "+
			"(grid/cells/tech/solver settings changed); rerun without -resume", store.ErrStale)
	}
	if len(meta.Shards) != len(specs) {
		return fmt.Errorf("%w: campaign plan has %d shards, this run derives %d "+
			"(shard size changed); rerun without -resume", store.ErrStale, len(meta.Shards), len(specs))
	}
	for i, s := range meta.Shards {
		want := specs[i]
		if s.ID != want.ID || s.Index != want.Index || len(s.Cells) != len(want.Cells) {
			return fmt.Errorf("%w: campaign shard %d differs from the derived plan; rerun without -resume",
				store.ErrStale, i)
		}
		for j, c := range s.Cells {
			if c != want.Cells[j] {
				return fmt.Errorf("%w: campaign shard %s cell list differs from the derived plan; "+
					"rerun without -resume", store.ErrStale, s.ID)
			}
		}
	}
	return nil
}

// shardDir returns shards/<id> under the campaign directory.
func shardDir(campaignDir, id string) string {
	return filepath.Join(campaignDir, shardsDirName, id)
}

// attemptDir returns the per-lease-attempt directory shards/<id>/a<gen>.
func attemptDir(campaignDir, id string, gen int) string {
	return filepath.Join(shardDir(campaignDir, id), fmt.Sprintf("a%d", gen))
}

// promotedPath returns the committed artefact path shards/<id>/shard.json.
func promotedPath(campaignDir, id string) string {
	return filepath.Join(shardDir(campaignDir, id), artifactName)
}

// merge assembles the campaign library from per-shard artefact bytes. It is
// a pure function of its inputs (no filesystem, no clock) so it can be
// exhaustively fuzzed: arts maps shard ID to promoted artefact bytes, and
// any shard absent from arts is treated as quarantined — its cells are
// substituted from the closed-form analytic fallback and counted against
// the budget (fraction of campaign cells; budget < 0 means no limit).
// Malformed, truncated, mis-fingerprinted or duplicate-cell
// inputs return typed errors; merge never panics and never silently drops a
// cell — the merged library covers the campaign cell set exactly or the
// merge fails.
func merge(fp store.Fingerprint, specs []Spec, arts map[string][]byte, tech *device.Tech, budget float64) (lib *core.Library, quarantinedCells []string, err error) {
	if tech == nil {
		return nil, nil, fmt.Errorf("shard: merge needs a technology for the analytic fallback")
	}
	total := 0
	for _, spec := range specs {
		total += len(spec.Cells)
	}
	if total == 0 {
		return nil, nil, fmt.Errorf("%w: campaign plan has no cells", store.ErrCorrupt)
	}
	cellsByName := make(map[string]*core.CellModel, total)
	owner := make(map[string]string, total)
	for _, spec := range specs {
		b, ok := arts[spec.ID]
		if !ok {
			for _, name := range spec.Cells {
				m, err := store.AnalyticModel(name, tech)
				if err != nil {
					return nil, nil, fmt.Errorf("shard %s quarantined and cell %q has no analytic fallback: %w",
						spec.ID, name, err)
				}
				if prev, dup := owner[name]; dup {
					return nil, nil, fmt.Errorf("%w: cell %q in shards %s and %s", ErrDuplicateCell, name, prev, spec.ID)
				}
				owner[name] = spec.ID
				cellsByName[name] = m
				quarantinedCells = append(quarantinedCells, name)
			}
			continue
		}
		models, err := decodeArtifact(b, fp, spec)
		if err != nil {
			return nil, nil, err
		}
		for _, name := range spec.Cells {
			if prev, dup := owner[name]; dup {
				return nil, nil, fmt.Errorf("%w: cell %q in shards %s and %s", ErrDuplicateCell, name, prev, spec.ID)
			}
			owner[name] = spec.ID
			cellsByName[name] = models[name]
		}
	}
	if len(cellsByName) != total {
		// Unreachable while owner[] guards duplicates, but the no-silent-drop
		// contract is cheap to enforce directly.
		return nil, nil, fmt.Errorf("%w: merged %d cells, campaign lists %d", store.ErrCorrupt, len(cellsByName), total)
	}
	if budget >= 0 && total > 0 {
		if frac := float64(len(quarantinedCells)) / float64(total); frac > budget {
			sort.Strings(quarantinedCells)
			return nil, quarantinedCells, fmt.Errorf("%w: %d of %d cells (%.0f%%) over budget %.0f%%",
				ErrQuarantineBudget, len(quarantinedCells), total, frac*100, budget*100)
		}
	}
	lib = &core.Library{
		TechName: fp.Tech,
		Vdd:      fp.Vdd,
		Cells:    cellsByName,
	}
	if err := lib.Validate(); err != nil {
		return nil, nil, fmt.Errorf("%w: merged library invalid: %v", store.ErrCorrupt, err)
	}
	return lib, quarantinedCells, nil
}
