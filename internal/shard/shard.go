// Package shard runs characterisation campaigns as fault-tolerant
// coordinator/worker jobs: the campaign is split into cell-range shards,
// workers characterise shards under time-bounded leases, and the coordinator
// merges verified shard artefacts into one atomic publish that is
// byte-identical to an uninterrupted single-process run.
//
// Robustness is the headline contract (DESIGN.md §14):
//
//   - workers heartbeat while they hold a shard; a lease that expires
//     (crash, hang, partition) is reassigned with exponential backoff under
//     a bounded per-shard retry budget;
//   - every shard completion is verified against its manifest (campaign
//     fingerprint, shard id, per-cell SHA-256) before it is accepted — the
//     lease protocol only prevents duplicate work, it is never trusted for
//     correctness, so a late completion from a resurrected worker is either
//     accepted (the shard was still open and the artefact verifies) or
//     discarded idempotently (already complete), and a corrupted artefact
//     is rejected and the shard retried;
//   - a shard that exhausts its retry budget is quarantined: its cells are
//     published from the closed-form analytic fallback (the PR 5
//     degraded-cell path) under a campaign-level budget, instead of
//     wedging the whole campaign;
//   - all durable state lives in the campaign directory (shard journals,
//     promoted shard artefacts, the campaign meta); the coordinator itself
//     is stateless across crashes — killing it at any point, including
//     mid-merge, and rerunning with Resume publishes the identical
//     artefact.
//
// Within a shard the PR 5 machinery is reused unchanged: each completed
// cell is appended to a per-attempt write-ahead journal, and a retried
// shard replays every earlier attempt's journal read-only, so worker
// crashes cost at most the cell in flight.
package shard

import (
	"errors"
	"fmt"
	"time"

	"sstiming/internal/cells"
	"sstiming/internal/charlib"
	"sstiming/internal/engine"
	"sstiming/internal/faultinject"
	"sstiming/internal/store"
)

// SchemaVersion is the campaign/shard artefact schema this package writes
// and accepts.
const SchemaVersion = 1

// Typed campaign errors. The store taxonomy (store.ErrCorrupt,
// store.ErrSchemaMismatch, store.ErrStale) is reused for artefact and meta
// verification failures, so callers branch on one error set across both
// layers.
var (
	// ErrDuplicateCell marks a merge whose shard artefacts claim the same
	// cell more than once — shards must partition the campaign.
	ErrDuplicateCell = errors.New("shard: duplicate cell across shards")
	// ErrQuarantineBudget marks a campaign whose quarantined-cell fraction
	// exceeded the configured budget.
	ErrQuarantineBudget = errors.New("shard: quarantined cells exceed budget")
	// ErrUnknownShard marks a worker asked to run a shard the campaign
	// meta does not list.
	ErrUnknownShard = errors.New("shard: unknown shard id")
)

// Spec identifies one shard: a contiguous cell range of the campaign.
type Spec struct {
	// ID is the shard's stable identifier ("s00", "s01", ...).
	ID string
	// Index is the shard's position in the campaign plan.
	Index int
	// Cells lists the cell names the shard characterises, in campaign
	// order.
	Cells []string
}

// Fingerprint derives the campaign fingerprint from resolved
// characterisation options — the same pinning cmd/characterize applies to
// single-process journals, so a sharded and an unsharded run of identical
// options carry identical fingerprints.
func Fingerprint(o charlib.Options) store.Fingerprint {
	names := make([]string, len(o.Cells))
	for i, cfg := range o.Cells {
		names[i] = cfg.Name()
	}
	return store.Fingerprint{
		Tech:         o.Tech.Name,
		Vdd:          o.Tech.Vdd,
		Grid:         o.Grid,
		Cells:        names,
		TStep:        o.TStep,
		SkewTol:      o.SkewTol,
		SkipPairs:    o.SkipPairs,
		PaperExactD0: o.PaperExactD0,
		NCPairs:      o.NCPairs,
	}
}

// shardFingerprint pins one shard's journal: the campaign fingerprint
// restricted to the shard's cell set. Journals from a different campaign —
// or a different shard of this one — are ErrStale on replay.
func shardFingerprint(campaign store.Fingerprint, spec Spec) store.Fingerprint {
	fp := campaign
	fp.Cells = spec.Cells
	return fp
}

// Plan splits resolved campaign options into shards of at most cellsPer
// cells each (cellsPer <= 0 selects 1). The plan is a pure function of the
// options, so every coordinator restart and every standalone worker derives
// the same shard table.
func Plan(o charlib.Options, cellsPer int) []Spec {
	if cellsPer <= 0 {
		cellsPer = 1
	}
	var specs []Spec
	for start := 0; start < len(o.Cells); start += cellsPer {
		end := start + cellsPer
		if end > len(o.Cells) {
			end = len(o.Cells)
		}
		names := make([]string, 0, end-start)
		for _, cfg := range o.Cells[start:end] {
			names = append(names, cfg.Name())
		}
		specs = append(specs, Spec{
			ID:    fmt.Sprintf("s%02d", len(specs)),
			Index: len(specs),
			Cells: names,
		})
	}
	return specs
}

// configsFor maps a shard's cell names back to their characterisation
// configs in the resolved campaign options.
func configsFor(o charlib.Options, spec Spec) ([]cells.Config, error) {
	byName := make(map[string]cells.Config, len(o.Cells))
	for _, cfg := range o.Cells {
		byName[cfg.Name()] = cfg
	}
	cfgs := make([]cells.Config, 0, len(spec.Cells))
	for _, name := range spec.Cells {
		cfg, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("%w: shard %s lists cell %q the campaign does not characterise",
				store.ErrStale, spec.ID, name)
		}
		cfgs = append(cfgs, cfg)
	}
	return cfgs, nil
}

// Options configures a sharded campaign run.
type Options struct {
	// Charlib is the campaign's characterisation configuration; it is
	// resolved (defaults filled) before planning, exactly as the
	// single-process path does, so the two publish identical bytes.
	Charlib charlib.Options
	// Out is the library path the merged campaign publishes to (with its
	// sidecar manifest).
	Out string
	// Dir is the campaign directory holding all durable shard state;
	// empty selects Out + ".campaign".
	Dir string
	// Resume reuses an existing campaign directory: completed shards are
	// verified and kept, everything else re-runs. A directory written by a
	// campaign with different options is refused with store.ErrStale.
	// Without Resume any existing directory is discarded.
	Resume bool
	// ShardCells is the number of cells per shard; <= 0 selects 1.
	ShardCells int
	// Workers is the number of concurrent in-process workers; <= 0
	// selects 2.
	Workers int
	// LeaseTTL bounds how long a worker may hold a shard without
	// heartbeating before the coordinator reassigns it; 0 selects 2m.
	LeaseTTL time.Duration
	// HeartbeatEvery is the worker heartbeat period; 0 selects LeaseTTL/4.
	HeartbeatEvery time.Duration
	// MaxAttempts is the per-shard lease budget (first attempt included);
	// 0 selects 3. A shard still incomplete after MaxAttempts leases is
	// quarantined.
	MaxAttempts int
	// Backoff is the base delay before a failed shard is re-leased,
	// doubling per attempt; 0 selects 250ms.
	Backoff time.Duration
	// MaxQuarantinedFrac is the campaign-level degradation budget: the
	// largest tolerated fraction of campaign cells published from the
	// analytic fallback because their shard was quarantined. Zero selects
	// the resolved charlib MaxDegradedFrac (the -max-degraded budget);
	// negative forbids quarantine entirely.
	MaxQuarantinedFrac float64
	// KeepDir leaves the campaign directory in place after a successful
	// publish (default: removed, like a spent journal).
	KeepDir bool
	// Fault, when non-nil, injects deterministic worker-level faults
	// (kill/hang/corrupt; see faultinject.ShardPlan). Chaos testing only.
	Fault *faultinject.ShardPlan
	// OnShardComplete, when non-nil, is called (unlocked) after each shard
	// first becomes complete — the deterministic hook chaos tests use to
	// kill the coordinator at exact points.
	OnShardComplete func(id string)
	// Progress, when non-nil, receives one line per campaign event.
	Progress func(format string, args ...any)
	// Metrics, when non-nil, accumulates campaign counters (shard/*).
	Metrics *engine.Metrics
}

func (o *Options) fill() error {
	if o.Out == "" {
		return fmt.Errorf("shard: Options.Out is required")
	}
	o.Charlib = o.Charlib.Resolved()
	if o.Charlib.Metrics == nil {
		// One campaign, one counter set: characterisation effort inside
		// shards lands next to the shard/* counters.
		o.Charlib.Metrics = o.Metrics
	}
	if o.Dir == "" {
		o.Dir = o.Out + ".campaign"
	}
	if o.ShardCells <= 0 {
		o.ShardCells = 1
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 2 * time.Minute
	}
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = o.LeaseTTL / 4
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.Backoff <= 0 {
		o.Backoff = 250 * time.Millisecond
	}
	if o.MaxQuarantinedFrac == 0 {
		o.MaxQuarantinedFrac = o.Charlib.MaxDegradedFrac
	} else if o.MaxQuarantinedFrac < 0 {
		o.MaxQuarantinedFrac = 0
	}
	if o.Progress == nil {
		o.Progress = func(string, ...any) {}
	}
	return nil
}

// Report summarises one campaign run.
type Report struct {
	// Shards is the campaign's shard count.
	Shards int
	// Completed counts shards that published a verified artefact.
	Completed int
	// Reused counts shards found already complete on resume (no lease was
	// ever granted for them this run).
	Reused int
	// Leases counts leases granted (retries included).
	Leases int
	// Expired counts leases the coordinator expired for missing
	// heartbeats.
	Expired int
	// Retries counts lease grants beyond each shard's first.
	Retries int
	// CorruptArtifacts counts completions rejected by manifest
	// verification.
	CorruptArtifacts int
	// DuplicatesDiscarded counts verified completions for shards that
	// were already complete.
	DuplicatesDiscarded int
	// Quarantined lists shards that exhausted their retry budget, in
	// campaign order.
	Quarantined []string
	// QuarantinedCells lists the cells published from the analytic
	// fallback, in campaign order.
	QuarantinedCells []string
}
