package shard

// The shard chaos suite: real end-to-end campaigns with seeded worker-level
// fault injection — kills, hangs and artefact corruption mid-campaign — that
// must still converge to a publish byte-identical to an uninterrupted
// single-process run. Named TestShardChaos* so `make shard-chaos` selects
// exactly these (the cheaper fault tests in shard_test.go run with the
// ordinary suite).

import (
	"context"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"sstiming/internal/engine"
	"sstiming/internal/faultinject"
	"sstiming/internal/store"
)

// chaosSeed resolves a suite seed — overridable via the CHAOS_SEED env var,
// printed on failure so any run is reproducible.
func chaosSeed(t *testing.T, def int64) int64 {
	t.Helper()
	seed := faultinject.SeedFromEnv(def)
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("reproduce with CHAOS_SEED=%d", seed)
		}
	})
	return seed
}

// chaosRun executes one faulted campaign with tight lease timing and
// verifies the publish against the baseline. Transient faults must never
// quarantine.
func chaosRun(t *testing.T, plan *faultinject.ShardPlan, shardCells, workers int, wantLib, wantMan []byte) *Report {
	t.Helper()
	dir := t.TempDir()
	out := filepath.Join(dir, "lib.json")
	met := engine.NewMetrics()
	_, rep, err := Run(Options{
		Charlib:     campaignCharlib(),
		Out:         out,
		ShardCells:  shardCells,
		Workers:     workers,
		LeaseTTL:    400 * time.Millisecond,
		Backoff:     10 * time.Millisecond,
		MaxAttempts: 8,
		Fault:       plan,
		Metrics:     met,
	})
	if err != nil {
		t.Fatalf("faulted campaign failed: %v (report %+v)", err, rep)
	}
	if len(rep.Quarantined) != 0 {
		t.Fatalf("transient faults must not quarantine: %+v", rep)
	}
	requireIdenticalPublish(t, out, wantLib, wantMan)
	return rep
}

// TestShardChaosKill: every first attempt crashes after its first durable
// checkpoint. The leases expire, the retries salvage the journals, and the
// publish is byte-identical.
func TestShardChaosKill(t *testing.T) {
	wantLib, wantMan := singleProcessBaseline(t)
	plan := faultinject.NewShardPlan(chaosSeed(t, 3), 0, 0, 0)
	for i := 0; i < 3; i++ {
		plan.Force(i, 1, faultinject.ShardFaultKill)
	}
	rep := chaosRun(t, plan, 1, 3, wantLib, wantMan)
	if rep.Expired != 3 {
		t.Fatalf("expired leases = %d, want 3 (every first attempt was killed)", rep.Expired)
	}
	if rep.Retries != 3 || rep.Completed != 3 {
		t.Fatalf("retries/completed = %d/%d, want 3/3 (report %+v)", rep.Retries, rep.Completed, rep)
	}
}

// TestShardChaosHang: the single shard's first attempt stalls past its
// lease (heartbeats stop), the shard is reassigned and the resurrected
// worker's extra completion is handled idempotently — one completion wins,
// the other is discarded, and the publish is byte-identical either way.
func TestShardChaosHang(t *testing.T) {
	wantLib, wantMan := singleProcessBaseline(t)
	plan := faultinject.NewShardPlan(chaosSeed(t, 5), 0, 0, 0)
	plan.Force(0, 1, faultinject.ShardFaultHang)
	// One 3-cell shard: the hang outlives the lease mid-work, so the
	// journal already holds the finished cells when the retry salvages it.
	rep := chaosRun(t, plan, 3, 2, wantLib, wantMan)
	if rep.Expired != 1 {
		t.Fatalf("expired leases = %d, want 1 (the hung attempt)", rep.Expired)
	}
	if rep.Completed != 1 || rep.DuplicatesDiscarded != 1 {
		t.Fatalf("completed/duplicates = %d/%d, want 1/1 (report %+v)",
			rep.Completed, rep.DuplicatesDiscarded, rep)
	}
	if rep.Retries != 1 {
		t.Fatalf("retries = %d, want 1", rep.Retries)
	}
}

// TestShardChaosCorrupt: every first attempt completes but its artefact
// bytes are damaged; verification rejects each one and the retries publish
// clean artefacts.
func TestShardChaosCorrupt(t *testing.T) {
	wantLib, wantMan := singleProcessBaseline(t)
	plan := faultinject.NewShardPlan(chaosSeed(t, 7), 0, 0, 0)
	for i := 0; i < 3; i++ {
		plan.Force(i, 1, faultinject.ShardFaultCorrupt)
	}
	rep := chaosRun(t, plan, 1, 3, wantLib, wantMan)
	if rep.CorruptArtifacts != 3 {
		t.Fatalf("corrupt artifacts = %d, want 3", rep.CorruptArtifacts)
	}
	if rep.Retries != 3 || rep.Expired != 0 {
		t.Fatalf("retries/expired = %d/%d, want 3/0 (corruption is detected at submission, "+
			"not by lease expiry); report %+v", rep.Retries, rep.Expired, rep)
	}
}

// TestShardChaosMixedStorm: all three fault kinds at high seeded rates
// under a generous attempt budget — the pressure test. Whatever the storm
// schedules, the campaign must converge to the byte-identical publish
// without quarantining.
func TestShardChaosMixedStorm(t *testing.T) {
	wantLib, wantMan := singleProcessBaseline(t)
	plan := faultinject.NewShardPlan(chaosSeed(t, 11), 0.3, 0.2, 0.2)
	rep := chaosRun(t, plan, 1, 3, wantLib, wantMan)
	if plan.Injected() == 0 {
		t.Fatal("storm injected nothing; raise the rates or change the seed")
	}
	t.Logf("storm report: %+v (decisions %d, injected %d)", rep, plan.Decisions(), plan.Injected())
}

// campaignKiller cancels a campaign context after the Nth shard completion
// — the deterministic stand-in for SIGKILLing the coordinator process.
type campaignKiller struct {
	ctx    context.Context
	cancel context.CancelFunc
	n      atomic.Int64
	after  int64
}

func newCampaignKiller(after int64) *campaignKiller {
	k := &campaignKiller{after: after}
	k.ctx, k.cancel = context.WithCancel(context.Background())
	return k
}

func (k *campaignKiller) onComplete(string) {
	if k.n.Add(1) == k.after {
		k.cancel()
	}
}

// TestShardChaosResumeAfterCoordinatorCrashMidCampaign kills the
// coordinator after the FIRST shard completes, then resumes: completed work
// is reused, only the remainder re-runs, and the publish is byte-identical.
func TestShardChaosResumeAfterCoordinatorCrashMidCampaign(t *testing.T) {
	wantLib, wantMan := singleProcessBaseline(t)
	dir := t.TempDir()
	out := filepath.Join(dir, "lib.json")

	kill := newCampaignKiller(1)
	o := campaignCharlib()
	o.Ctx = kill.ctx
	_, _, err := Run(Options{
		Charlib:         o,
		Out:             out,
		ShardCells:      1,
		Workers:         1, // serial: exactly one shard completes before the crash
		OnShardComplete: kill.onComplete,
	})
	if err == nil {
		t.Fatal("crashed coordinator reported success")
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Fatalf("crashed coordinator published anyway: %v", err)
	}

	met := engine.NewMetrics()
	_, rep, err := Run(Options{
		Charlib:    campaignCharlib(),
		Out:        out,
		ShardCells: 1,
		Workers:    2,
		Resume:     true,
		Metrics:    met,
	})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if rep.Reused != 1 {
		t.Fatalf("resume reused %d shards, want 1", rep.Reused)
	}
	if got := met.Get(engine.CharCells); got != 2 {
		t.Fatalf("resume recharacterised %d cells, want the remaining 2", got)
	}
	requireIdenticalPublish(t, out, wantLib, wantMan)
}

// TestShardChaosResumeDiscardsCorruptPromotedArtifact: bytes of an
// already-promoted shard artefact rot on disk between runs; resume must
// detect, discard and recharacterise that shard — never publish from it.
func TestShardChaosResumeDiscardsCorruptPromotedArtifact(t *testing.T) {
	wantLib, wantMan := singleProcessBaseline(t)
	dir := t.TempDir()
	out := filepath.Join(dir, "lib.json")
	opts := Options{Charlib: campaignCharlib(), Out: out, ShardCells: 1}
	if _, err := PlanCampaign(opts); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"s00", "s01", "s02"} {
		if err := RunWorker(opts, id); err != nil {
			t.Fatalf("worker %s: %v", id, err)
		}
	}
	// Rot the middle shard's committed artefact.
	p := promotedPath(out+".campaign", "s01")
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x01
	if err := os.WriteFile(p, b, 0o644); err != nil {
		t.Fatal(err)
	}

	met := engine.NewMetrics()
	opts.Resume = true
	opts.Metrics = met
	_, rep, err := Run(opts)
	if err != nil {
		t.Fatalf("resume over rot: %v", err)
	}
	if rep.Reused != 2 || rep.CorruptArtifacts != 1 {
		t.Fatalf("reused/corrupt = %d/%d, want 2/1 (report %+v)", rep.Reused, rep.CorruptArtifacts, rep)
	}
	if got := met.Get(engine.CharCells); got != 1 {
		t.Fatalf("recharacterised %d cells, want exactly the rotted shard's 1", got)
	}
	requireIdenticalPublish(t, out, wantLib, wantMan)
}

// TestShardChaosQuarantinePersistentFault drives one shard into quarantine
// under a persistent fault and proves the campaign degrades instead of
// wedging: the publish succeeds inside the budget with the analytic
// fallback substituted, and the degraded artefact still loads.
func TestShardChaosQuarantinePersistentFault(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "lib.json")
	plan := faultinject.NewShardPlan(chaosSeed(t, 13), 0, 0, 0)
	plan.Persist(2, faultinject.ShardFaultCorrupt) // NOR2's shard never verifies
	lib, rep, err := Run(Options{
		Charlib:            campaignCharlib(),
		Out:                out,
		ShardCells:         1,
		Workers:            2,
		MaxAttempts:        3,
		Backoff:            10 * time.Millisecond,
		MaxQuarantinedFrac: 0.5,
		Fault:              plan,
	})
	if err != nil {
		t.Fatalf("campaign wedged instead of degrading: %v", err)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0] != "s02" {
		t.Fatalf("quarantined = %v, want [s02]", rep.Quarantined)
	}
	if rep.CorruptArtifacts != 3 {
		t.Fatalf("corrupt artifacts = %d, want 3 (MaxAttempts)", rep.CorruptArtifacts)
	}
	if _, ok := lib.Cells["NOR2"]; !ok {
		t.Fatal("quarantined NOR2 missing from publish")
	}
	if _, _, err := store.LoadFile(out, store.LoadOptions{}); err != nil {
		t.Fatalf("degraded publish does not load: %v", err)
	}
}
