package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sstiming/internal/cells"
	"sstiming/internal/charlib"
	"sstiming/internal/core"
	"sstiming/internal/device"
	"sstiming/internal/engine"
	"sstiming/internal/faultinject"
	"sstiming/internal/store"
)

// campaignCharlib returns the reduced characterisation options every shard
// test campaigns over: three cells on a 3-point grid, cheap enough for the
// chaos suite to run real end-to-end campaigns.
func campaignCharlib() charlib.Options {
	tech := device.Default05um()
	return charlib.Options{
		Tech: tech,
		Grid: []float64{0.2e-9, 0.5e-9, 1.0e-9},
		Cells: []cells.Config{
			{Kind: cells.Inv, N: 1, Tech: tech, LoadInverter: true},
			{Kind: cells.NAND, N: 2, Tech: tech, LoadInverter: true},
			{Kind: cells.NOR, N: 2, Tech: tech, LoadInverter: true},
		},
		TStep: 3e-12,
		Jobs:  1,
	}
}

// singleProcessBaseline characterises the campaign without sharding and
// publishes it, returning the library and manifest bytes. Characterisation
// is deterministic, so the result is computed once and shared across every
// test that compares against it.
var baseline struct {
	once     sync.Once
	lib, man []byte
	err      error
}

func singleProcessBaseline(t *testing.T) ([]byte, []byte) {
	t.Helper()
	baseline.once.Do(func() {
		dir, err := os.MkdirTemp("", "shard-baseline-")
		if err != nil {
			baseline.err = err
			return
		}
		defer os.RemoveAll(dir)
		out := filepath.Join(dir, "lib.json")
		lib, err := charlib.Characterize(campaignCharlib())
		if err != nil {
			baseline.err = fmt.Errorf("baseline characterize: %w", err)
			return
		}
		o := campaignCharlib().Resolved()
		if _, err := store.WriteLibrary(out, lib, o.Grid, o.NCPairs); err != nil {
			baseline.err = fmt.Errorf("baseline publish: %w", err)
			return
		}
		if baseline.lib, err = os.ReadFile(out); err != nil {
			baseline.err = err
			return
		}
		baseline.man, baseline.err = os.ReadFile(store.ManifestPath(out))
	})
	if baseline.err != nil {
		t.Fatalf("baseline: %v", baseline.err)
	}
	return baseline.lib, baseline.man
}

// requireIdenticalPublish compares a campaign's published artefact pair
// against the single-process baseline byte for byte.
func requireIdenticalPublish(t *testing.T, out string, wantLib, wantMan []byte) {
	t.Helper()
	gotLib, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("reading published library: %v", err)
	}
	if !bytes.Equal(gotLib, wantLib) {
		t.Fatalf("published library differs from single-process baseline (%d vs %d bytes)",
			len(gotLib), len(wantLib))
	}
	gotMan, err := os.ReadFile(store.ManifestPath(out))
	if err != nil {
		t.Fatalf("reading published manifest: %v", err)
	}
	if !bytes.Equal(gotMan, wantMan) {
		t.Fatal("published manifest differs from single-process baseline")
	}
}

func TestPlanPartitionsCampaign(t *testing.T) {
	o := campaignCharlib().Resolved()
	for _, per := range []int{1, 2, 3, 5} {
		specs := Plan(o, per)
		var got []string
		for _, s := range specs {
			if len(s.Cells) > per {
				t.Fatalf("cellsPer=%d: shard %s has %d cells", per, s.ID, len(s.Cells))
			}
			got = append(got, s.Cells...)
		}
		if len(got) != len(o.Cells) {
			t.Fatalf("cellsPer=%d: plan covers %d of %d cells", per, len(got), len(o.Cells))
		}
		for i, cfg := range o.Cells {
			if got[i] != cfg.Name() {
				t.Fatalf("cellsPer=%d: cell %d is %s, want %s", per, i, got[i], cfg.Name())
			}
		}
	}
}

func TestFingerprintMatchesCampaignOrder(t *testing.T) {
	o := campaignCharlib().Resolved()
	if Fingerprint(o).Hash() != Fingerprint(o).Hash() {
		t.Fatal("fingerprint not deterministic")
	}
	o2 := o
	o2.Grid = []float64{0.2e-9, 0.5e-9}
	if Fingerprint(o).Hash() == Fingerprint(o2).Hash() {
		t.Fatal("different grids share a fingerprint")
	}
}

// TestShardedMatchesSingleProcess is the core merge contract: a clean
// sharded campaign publishes byte-identical artefacts to an uninterrupted
// single-process run.
func TestShardedMatchesSingleProcess(t *testing.T) {
	wantLib, wantMan := singleProcessBaseline(t)
	dir := t.TempDir()
	out := filepath.Join(dir, "lib.json")
	met := engine.NewMetrics()
	_, rep, err := Run(Options{
		Charlib:    campaignCharlib(),
		Out:        out,
		ShardCells: 1,
		Workers:    3,
		Metrics:    met,
	})
	if err != nil {
		t.Fatalf("sharded run: %v", err)
	}
	if rep.Shards != 3 || rep.Completed != 3 || rep.Leases != 3 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	requireIdenticalPublish(t, out, wantLib, wantMan)
	if _, err := os.Stat(out + ".campaign"); !os.IsNotExist(err) {
		t.Fatalf("campaign dir not cleaned up after publish: %v", err)
	}
	if got := met.Get(engine.ShardLeases); got != 3 {
		t.Fatalf("shard/leases_granted = %d, want 3", got)
	}
}

// TestStandaloneWorkersThenResume drives the multi-process protocol in one
// process: plan, run each shard via the standalone worker mode, then a
// resuming coordinator that only merges.
func TestStandaloneWorkersThenResume(t *testing.T) {
	wantLib, wantMan := singleProcessBaseline(t)
	dir := t.TempDir()
	out := filepath.Join(dir, "lib.json")
	opts := Options{Charlib: campaignCharlib(), Out: out, ShardCells: 2}
	specs, err := PlanCampaign(opts)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	if len(specs) != 2 {
		t.Fatalf("got %d shards, want 2", len(specs))
	}
	for _, s := range specs {
		if err := RunWorker(opts, s.ID); err != nil {
			t.Fatalf("worker %s: %v", s.ID, err)
		}
	}
	if err := RunWorker(opts, "s99"); !errors.Is(err, ErrUnknownShard) {
		t.Fatalf("unknown shard: got %v, want ErrUnknownShard", err)
	}
	met := engine.NewMetrics()
	opts.Resume = true
	opts.Metrics = met
	_, rep, err := Run(opts)
	if err != nil {
		t.Fatalf("merge run: %v", err)
	}
	if rep.Reused != 2 || rep.Leases != 0 {
		t.Fatalf("expected pure merge, got %+v", rep)
	}
	if got := met.Get(engine.CharCells); got != 0 {
		t.Fatalf("merge run characterised %d cells, want 0", got)
	}
	requireIdenticalPublish(t, out, wantLib, wantMan)
}

// TestResumeRefusesChangedOptions: a campaign directory written under
// different options must be ErrStale, not silently merged.
func TestResumeRefusesChangedOptions(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "lib.json")
	opts := Options{Charlib: campaignCharlib(), Out: out, ShardCells: 1}
	if _, err := PlanCampaign(opts); err != nil {
		t.Fatal(err)
	}
	changed := opts
	changed.Charlib.Grid = []float64{0.2e-9, 0.6e-9, 1.0e-9}
	changed.Resume = true
	if _, _, err := Run(changed); !errors.Is(err, store.ErrStale) {
		t.Fatalf("changed grid: got %v, want ErrStale", err)
	}
	// Same options but a different shard size changes the plan.
	resized := opts
	resized.ShardCells = 3
	resized.Resume = true
	if _, _, err := Run(resized); !errors.Is(err, store.ErrStale) {
		t.Fatalf("changed shard size: got %v, want ErrStale", err)
	}
}

// TestQuarantineBudget: a shard that exhausts its retry budget falls back
// to analytic cells inside the budget, and fails the campaign beyond it.
func TestQuarantineBudget(t *testing.T) {
	wantLibBytes, _ := singleProcessBaseline(t)
	dir := t.TempDir()
	out := filepath.Join(dir, "lib.json")
	plan := faultinject.NewShardPlan(1, 0, 0, 0)
	plan.Persist(1, faultinject.ShardFaultCorrupt) // NAND2's shard never verifies
	met := engine.NewMetrics()
	lib, rep, err := Run(Options{
		Charlib:            campaignCharlib(),
		Out:                out,
		ShardCells:         1,
		Workers:            2,
		MaxAttempts:        2,
		Backoff:            5 * time.Millisecond,
		MaxQuarantinedFrac: 0.5,
		Fault:              plan,
		Metrics:            met,
	})
	if err != nil {
		t.Fatalf("campaign should survive quarantine: %v", err)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0] != "s01" {
		t.Fatalf("quarantined = %v, want [s01]", rep.Quarantined)
	}
	if len(rep.QuarantinedCells) != 1 || rep.QuarantinedCells[0] != "NAND2" {
		t.Fatalf("quarantined cells = %v, want [NAND2]", rep.QuarantinedCells)
	}
	if rep.CorruptArtifacts != 2 {
		t.Fatalf("corrupt artifacts = %d, want 2 (one per attempt)", rep.CorruptArtifacts)
	}
	if got := met.Get(engine.ShardQuarantined); got != 1 {
		t.Fatalf("shard/quarantined_shards = %d, want 1", got)
	}
	// The degraded publish is NOT byte-identical (that is the point of the
	// fallback), but it must be loadable and cover the full cell set.
	if _, ok := lib.Cells["NAND2"]; !ok {
		t.Fatal("quarantined cell missing from merged library")
	}
	pubBytes, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(pubBytes, wantLibBytes) {
		t.Fatal("quarantined campaign published baseline bytes; fallback was not substituted")
	}
	if _, _, err := store.LoadFile(out, store.LoadOptions{}); err != nil {
		t.Fatalf("quarantined publish does not load: %v", err)
	}

	// Beyond the budget the campaign fails typed, not wedges.
	out2 := filepath.Join(dir, "lib2.json")
	plan2 := faultinject.NewShardPlan(1, 0, 0, 0)
	plan2.Persist(1, faultinject.ShardFaultCorrupt)
	_, _, err = Run(Options{
		Charlib:            campaignCharlib(),
		Out:                out2,
		ShardCells:         1,
		Workers:            2,
		MaxAttempts:        2,
		Backoff:            5 * time.Millisecond,
		MaxQuarantinedFrac: -1, // forbid quarantine entirely
		Fault:              plan2,
	})
	if !errors.Is(err, ErrQuarantineBudget) {
		t.Fatalf("over-budget campaign: got %v, want ErrQuarantineBudget", err)
	}
}

// TestCoordinatorKillResumeMidMerge kills the coordinator between the last
// shard completion and the publish, then resumes: the publish must be
// byte-identical and recompute nothing.
func TestCoordinatorKillResumeMidMerge(t *testing.T) {
	wantLib, wantMan := singleProcessBaseline(t)
	dir := t.TempDir()
	out := filepath.Join(dir, "lib.json")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var completions atomic.Int64
	o := campaignCharlib()
	o.Ctx = ctx
	_, _, err := Run(Options{
		Charlib:    o,
		Out:        out,
		ShardCells: 1,
		Workers:    2,
		OnShardComplete: func(string) {
			if completions.Add(1) == 3 {
				cancel() // SIGKILL stand-in: die after the last promotion
			}
		},
	})
	if err == nil {
		t.Fatal("killed coordinator reported success")
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Fatalf("killed coordinator published anyway: %v", err)
	}

	// Simulate a torn publish attempt racing the crash: garbage at the
	// output path must be replaced atomically on resume.
	if err := os.WriteFile(out, []byte("torn{"), 0o644); err != nil {
		t.Fatal(err)
	}

	met := engine.NewMetrics()
	_, rep, err := Run(Options{
		Charlib:    campaignCharlib(),
		Out:        out,
		ShardCells: 1,
		Workers:    2,
		Resume:     true,
		Metrics:    met,
	})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if rep.Reused != 3 {
		t.Fatalf("resume reused %d shards, want 3", rep.Reused)
	}
	if got := met.Get(engine.CharCells); got != 0 {
		t.Fatalf("resume recharacterised %d cells, want 0", got)
	}
	requireIdenticalPublish(t, out, wantLib, wantMan)
}

// TestArtifactVerificationTaxonomy pins the typed-error contract of
// decodeArtifact.
func TestArtifactVerificationTaxonomy(t *testing.T) {
	o := campaignCharlib().Resolved()
	fp := Fingerprint(o)
	specs := Plan(o, 1)
	tech := o.Tech
	m, err := store.AnalyticModel("INV", tech)
	if err != nil {
		t.Fatal(err)
	}
	good, err := encodeArtifact(fp, specs[0], map[string]*core.CellModel{"INV": m})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeArtifact(good, fp, specs[0]); err != nil {
		t.Fatalf("good artifact rejected: %v", err)
	}
	if _, err := decodeArtifact([]byte("{"), fp, specs[0]); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("truncated JSON: got %v, want ErrCorrupt", err)
	}
	if _, err := decodeArtifact(good, fp, specs[1]); !errors.Is(err, store.ErrStale) {
		t.Fatalf("wrong shard: got %v, want ErrStale", err)
	}
	otherFP := fp
	otherFP.TStep = 1e-12
	if _, err := decodeArtifact(good, otherFP, specs[0]); !errors.Is(err, store.ErrStale) {
		t.Fatalf("wrong campaign: got %v, want ErrStale", err)
	}
	flipped := bytes.Replace(good, []byte(`"Kind": "INV"`), []byte(`"Kind": "XNV"`), 1)
	if bytes.Equal(flipped, good) {
		t.Fatal("corruption no-op; fix the test")
	}
	if _, err := decodeArtifact(flipped, fp, specs[0]); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("hash mismatch: got %v, want ErrCorrupt", err)
	}
}
