// Package shardnet is the HTTP transport for sharded characterisation
// campaigns (internal/shard): a coordinator serves the campaign's lease
// state machine over a small JSON wire protocol, and remote workers pull
// shards, characterise them locally, and stream verified artefacts back.
//
// The transport adds no correctness of its own — it forwards everything
// through the shard.Tracker's verify-before-accept path — but it must stay
// trustworthy over a lossy network (DESIGN.md §15):
//
//   - every client call retries with jittered exponential backoff under a
//     per-attempt deadline and a bounded budget, classifying failures as
//     retryable (network errors, 5xx, 429, undecodable replies), fatal
//     (plan mismatch, other 4xx) or lease-lost;
//   - requests carry idempotency keys: a retried lease request re-receives
//     its original grant instead of burning a second lease, and a retried
//     completion whose first acknowledgement was lost is absorbed as a
//     duplicate by the coordinator;
//   - artefacts upload in resumable chunks: a chunk landing at the current
//     size appends, a replayed chunk inside the received prefix is
//     absorbed, and anything else answers 409 with the coordinator's
//     received size so the client resynchronises — then a completion claim
//     carrying the artefact's size and SHA-256 gates promotion;
//   - the coordinator sheds load with 429 + Retry-After (the shared
//     service.Gate) and expires vanished remote workers exactly as
//     in-process leases expire;
//   - a coordinator restart resumes from the campaign directory: promoted
//     artefacts are re-verified, attempt generations advance past anything
//     on disk, and still-live workers' in-flight leases simply expire and
//     re-grant.
//
// Everything on the wire decodes strictly (unknown fields rejected) into
// validated messages with the ErrBadMessage taxonomy — malformed peer bytes
// produce typed errors, never panics (FuzzShardWireDecode).
package shardnet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"sstiming/internal/shard"
)

// WireVersion is the wire-protocol schema version; every message embeds it
// implicitly through the /shard/v1/ path prefix.
const WireVersion = 1

// PathPrefix is the URL prefix all coordinator endpoints live under.
const PathPrefix = "/shard/v1"

// ErrBadMessage marks wire bytes that do not decode into a valid protocol
// message: malformed JSON, unknown fields, or field values violating the
// message's contract. It is the transport-level sibling of store.ErrCorrupt.
var ErrBadMessage = errors.New("shardnet: malformed wire message")

// CampaignInfo advertises the campaign: GET /shard/v1/campaign. Workers
// verify it against their own derived plan (shard.ComparePlan) before any
// work happens.
type CampaignInfo struct {
	SchemaVersion int          `json:"schema_version"`
	Fingerprint   string       `json:"fingerprint"`
	Shards        []shard.Spec `json:"shards"`
}

// Validate checks the message contract.
func (m *CampaignInfo) Validate() error {
	if m.SchemaVersion != WireVersion {
		return fmt.Errorf("%w: campaign schema %d, this build speaks %d", ErrBadMessage, m.SchemaVersion, WireVersion)
	}
	if m.Fingerprint == "" {
		return fmt.Errorf("%w: campaign info without fingerprint", ErrBadMessage)
	}
	if len(m.Shards) == 0 {
		return fmt.Errorf("%w: campaign info without shards", ErrBadMessage)
	}
	for i, s := range m.Shards {
		if s.ID == "" || s.Index != i || len(s.Cells) == 0 {
			return fmt.Errorf("%w: campaign shard %d is malformed", ErrBadMessage, i)
		}
	}
	return nil
}

// LeaseRequest asks for the next available shard: POST /shard/v1/lease.
// The idempotency key makes the request safe to retry or duplicate: the
// coordinator answers a replayed key with the original grant while that
// grant's lease is live, instead of burning a second lease.
type LeaseRequest struct {
	Worker         string `json:"worker"`
	IdempotencyKey string `json:"idempotency_key"`
}

// Validate checks the message contract.
func (m *LeaseRequest) Validate() error {
	if m.Worker == "" {
		return fmt.Errorf("%w: lease request without worker", ErrBadMessage)
	}
	if m.IdempotencyKey == "" {
		return fmt.Errorf("%w: lease request without idempotency key", ErrBadMessage)
	}
	return nil
}

// LeaseGrant is one granted lease inside a LeaseReply.
type LeaseGrant struct {
	ShardID    string `json:"shard_id"`
	Index      int    `json:"index"`
	Attempt    int    `json:"attempt"`
	LeaseTTLMs int64  `json:"lease_ttl_ms"`
}

// Validate checks the message contract.
func (m *LeaseGrant) Validate() error {
	if m.ShardID == "" || m.Index < 0 || m.Attempt < 1 || m.LeaseTTLMs <= 0 {
		return fmt.Errorf("%w: malformed lease grant %+v", ErrBadMessage, *m)
	}
	return nil
}

// LeaseReply answers a lease request: exactly one of Done (campaign
// resolved, stop asking), Grant (work), or neither (nothing grantable right
// now; retry after RetryAfterMs).
type LeaseReply struct {
	Done         bool        `json:"done,omitempty"`
	RetryAfterMs int64       `json:"retry_after_ms,omitempty"`
	Grant        *LeaseGrant `json:"grant,omitempty"`
}

// Validate checks the message contract.
func (m *LeaseReply) Validate() error {
	if m.Done && m.Grant != nil {
		return fmt.Errorf("%w: lease reply both done and granted", ErrBadMessage)
	}
	if m.Grant != nil {
		return m.Grant.Validate()
	}
	if !m.Done && m.RetryAfterMs < 0 {
		return fmt.Errorf("%w: lease reply with negative retry-after", ErrBadMessage)
	}
	return nil
}

// HeartbeatRequest renews one lease: POST /shard/v1/heartbeat. Naturally
// idempotent — renewing twice is renewing.
type HeartbeatRequest struct {
	ShardID string `json:"shard_id"`
	Attempt int    `json:"attempt"`
}

// Validate checks the message contract.
func (m *HeartbeatRequest) Validate() error {
	if m.ShardID == "" || m.Attempt < 1 {
		return fmt.Errorf("%w: malformed heartbeat %+v", ErrBadMessage, *m)
	}
	return nil
}

// HeartbeatReply reports whether the lease is still held at that attempt.
// Held=false is the lease-lost signal: the worker's result can at best
// become a late, idempotently-absorbed completion.
type HeartbeatReply struct {
	Held bool `json:"held"`
}

// Validate checks the message contract (any value is valid).
func (m *HeartbeatReply) Validate() error { return nil }

// ChunkReply acknowledges an artefact chunk upload
// (PUT /shard/v1/artifact?shard=&attempt=&offset=): Received is the
// coordinator's total received byte count for that attempt's upload. On a
// 409 (offset mismatch) the client resynchronises to Received and resumes.
type ChunkReply struct {
	Received int64 `json:"received"`
}

// Validate checks the message contract.
func (m *ChunkReply) Validate() error {
	if m.Received < 0 {
		return fmt.Errorf("%w: negative received size", ErrBadMessage)
	}
	return nil
}

// CompleteRequest claims completion of one attempt:
// POST /shard/v1/complete. Size and SHA256 describe the uploaded artefact;
// the coordinator verifies both before letting the artefact anywhere near
// the tracker's own verify-before-accept path. The idempotency key makes
// the claim safe to retry after a lost acknowledgement.
type CompleteRequest struct {
	ShardID        string `json:"shard_id"`
	Attempt        int    `json:"attempt"`
	Size           int64  `json:"size"`
	SHA256         string `json:"sha256"`
	IdempotencyKey string `json:"idempotency_key"`
}

// Validate checks the message contract.
func (m *CompleteRequest) Validate() error {
	if m.ShardID == "" || m.Attempt < 1 {
		return fmt.Errorf("%w: malformed completion claim %+v", ErrBadMessage, *m)
	}
	if m.Size <= 0 {
		return fmt.Errorf("%w: completion claim with size %d", ErrBadMessage, m.Size)
	}
	if len(m.SHA256) != 64 {
		return fmt.Errorf("%w: completion claim with %d-char sha256", ErrBadMessage, len(m.SHA256))
	}
	if m.IdempotencyKey == "" {
		return fmt.Errorf("%w: completion claim without idempotency key", ErrBadMessage)
	}
	return nil
}

// CompleteReply resolves a completion claim with the tracker's
// CompleteStatus taxonomy: "accepted" (this claim won the shard),
// "duplicate" (already resolved — success for a retrying client), or
// "rejected" (verification failed; Reason says why).
type CompleteReply struct {
	Status string `json:"status"`
	Reason string `json:"reason,omitempty"`
}

// Validate checks the message contract.
func (m *CompleteReply) Validate() error {
	switch m.Status {
	case "accepted", "duplicate", "rejected":
		return nil
	}
	return fmt.Errorf("%w: completion status %q", ErrBadMessage, m.Status)
}

// FailRequest reports a worker-side attempt failure (the worker is alive
// but produced no artefact): POST /shard/v1/fail. Idempotent: a stale or
// replayed report of an already-expired lease is absorbed.
type FailRequest struct {
	ShardID string `json:"shard_id"`
	Attempt int    `json:"attempt"`
	Reason  string `json:"reason"`
}

// Validate checks the message contract.
func (m *FailRequest) Validate() error {
	if m.ShardID == "" || m.Attempt < 1 {
		return fmt.Errorf("%w: malformed failure report %+v", ErrBadMessage, *m)
	}
	return nil
}

// OKReply is the generic success acknowledgement for requests with no
// richer answer (fail reports).
type OKReply struct {
	OK bool `json:"ok"`
}

// Validate checks the message contract (any value is valid).
func (m *OKReply) Validate() error { return nil }

// StatusReply summarises campaign progress: GET /shard/v1/status.
type StatusReply struct {
	Resolved bool          `json:"resolved"`
	Report   *shard.Report `json:"report"`
}

// Validate checks the message contract.
func (m *StatusReply) Validate() error {
	if m.Report == nil {
		return fmt.Errorf("%w: status reply without report", ErrBadMessage)
	}
	return nil
}

// ErrorReply is the error body every endpoint answers on non-2xx. Kind is
// a stable machine-readable label ("shed", "bad-message", "unknown-shard",
// "internal"); RetryAfterMs is set on 429.
type ErrorReply struct {
	Error        string `json:"error"`
	Kind         string `json:"kind"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
}

// Validate checks the message contract.
func (m *ErrorReply) Validate() error {
	if m.Error == "" {
		return fmt.Errorf("%w: error reply without message", ErrBadMessage)
	}
	return nil
}

// wireMessage is implemented by every protocol message, so decoding is one
// generic strict path.
type wireMessage interface{ Validate() error }

// DecodeMessage strictly decodes wire bytes into msg: JSON with unknown
// fields rejected, exactly one value, then the message's own Validate.
// Every failure is ErrBadMessage-typed; malformed peer bytes can never
// panic or produce a half-valid message.
func DecodeMessage(b []byte, msg wireMessage) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(msg); err != nil {
		return fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	// Trailing garbage after the value is a framing error, not a message.
	if dec.More() {
		return fmt.Errorf("%w: trailing bytes after message", ErrBadMessage)
	}
	if err := msg.Validate(); err != nil {
		return err
	}
	return nil
}

// EncodeMessage serialises a protocol message (one JSON value, newline
// terminated).
func EncodeMessage(msg wireMessage) ([]byte, error) {
	b, err := json.Marshal(msg)
	if err != nil {
		return nil, fmt.Errorf("shardnet: encoding %T: %w", msg, err)
	}
	return append(b, '\n'), nil
}
