package shardnet

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sstiming/internal/engine"
	"sstiming/internal/faultinject"
)

// The net-chaos suite (make net-chaos): every test runs a real coordinator
// and real remote workers over loopback sockets with seeded network faults
// injected into the workers' transports, and proves the published library
// byte-identical to the single-process run. CHAOS_SEED overrides every
// suite's seed; failures print it.

// TestNetChaosLossyNetwork: both workers behind a lossy network — dropped
// requests, dropped responses (lost ACKs), delays, and genuinely duplicated
// deliveries — must still converge on the byte-identical library.
func TestNetChaosLossyNetwork(t *testing.T) {
	wantLib, wantMan := singleProcessBaseline(t)
	seed := chaosSeed(t, 42)
	//                   dropReq dropResp delay  dup   trunc corrupt
	rates := [6]float64{0.06, 0.05, 0.06, 0.06, 0, 0}
	plans := []*faultinject.NetPlan{
		faultinject.NewNetPlan(seed, rates, 5*time.Millisecond),
		faultinject.NewNetPlan(seed+1, rates, 5*time.Millisecond),
	}
	out := filepath.Join(t.TempDir(), "lib.json")
	rep, _ := runNetCampaign(t, out, 2, plans, seed)
	requireIdenticalPublish(t, out, wantLib, wantMan)
	if len(rep.Quarantined) != 0 {
		t.Fatalf("lossy network quarantined shards: %+v", rep.Quarantined)
	}
	injected := plans[0].Injected() + plans[1].Injected()
	t.Logf("report: %+v, injected faults: %d", rep, injected)
	if injected == 0 {
		t.Fatal("chaos run injected no faults — rates or seed are wrong")
	}
}

// TestNetChaosDamagedResponses: truncated and corrupted response bodies are
// undecodable replies — retried until a clean exchange lands, with server
// idempotency absorbing the replays of requests that DID execute.
func TestNetChaosDamagedResponses(t *testing.T) {
	wantLib, wantMan := singleProcessBaseline(t)
	seed := chaosSeed(t, 43)
	rates := [6]float64{0.02, 0, 0, 0, 0.08, 0.08}
	plans := []*faultinject.NetPlan{
		faultinject.NewNetPlan(seed, rates, 5*time.Millisecond),
		faultinject.NewNetPlan(seed+1, rates, 5*time.Millisecond),
	}
	out := filepath.Join(t.TempDir(), "lib.json")
	rep, _ := runNetCampaign(t, out, 2, plans, seed)
	requireIdenticalPublish(t, out, wantLib, wantMan)
	if len(rep.Quarantined) != 0 {
		t.Fatalf("damaged responses quarantined shards: %+v", rep.Quarantined)
	}
	damaged := plans[0].InjectedKind(faultinject.NetFaultTruncateResponse) +
		plans[1].InjectedKind(faultinject.NetFaultTruncateResponse) +
		plans[0].InjectedKind(faultinject.NetFaultCorruptResponse) +
		plans[1].InjectedKind(faultinject.NetFaultCorruptResponse)
	t.Logf("report: %+v, damaged responses: %d", rep, damaged)
	if damaged == 0 {
		t.Fatal("no damaged responses were injected — rates or seed are wrong")
	}
}

// dropCompleteACKs drops the response of the first n successful
// /complete exchanges — the server resolves the claim, the worker never
// hears it. The retried claim (same idempotency key) must be answered from
// the completion cache, and the worker must count the shard exactly once.
type dropCompleteACKs struct {
	remaining atomic.Int32
	dropped   atomic.Int32
}

func (d *dropCompleteACKs) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil || !strings.HasSuffix(req.URL.Path, "/complete") {
		return resp, err
	}
	if d.remaining.Add(-1) < 0 {
		return resp, nil
	}
	d.dropped.Add(1)
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return nil, fmt.Errorf("faultinject: completion acknowledgement dropped")
}

// TestNetChaosLostCompletionACK: the canonical lost-ACK scenario, forced
// rather than sampled: every shard's first completion acknowledgement dies
// on the wire. Retries must be absorbed by the idempotency cache — each
// shard still completes exactly once, bytes identical.
func TestNetChaosLostCompletionACK(t *testing.T) {
	wantLib, wantMan := singleProcessBaseline(t)
	out := filepath.Join(t.TempDir(), "lib.json")
	srv, ln := startCoordinator(t, coordinatorOptions(t, out), "")
	base := "http://" + ln.Addr().String()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	faults := &dropCompleteACKs{}
	faults.remaining.Store(3) // one lost ACK per shard
	opts := workerOptions(t, base, "w0", 9, nil)
	opts.Client.Transport = faults
	rep, err := RunWorker(ctx, opts)
	if err != nil {
		t.Fatalf("worker: %v", err)
	}
	if err := srv.WaitResolved(ctx); err != nil {
		t.Fatalf("campaign did not resolve: %v", err)
	}
	if _, err := srv.MergeAndPublish(); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	requireIdenticalPublish(t, out, wantLib, wantMan)
	if got := faults.dropped.Load(); got != 3 {
		t.Fatalf("dropped %d completion ACKs, want 3", got)
	}
	// Every claim's retry replayed the cached resolution: the worker saw
	// each shard complete exactly once, nothing double-counted.
	if rep.Completed != 3 || rep.Rejected != 0 || rep.Failed != 0 {
		t.Fatalf("worker report after lost ACKs: %+v", rep)
	}
	srvRep := srv.Report()
	if srvRep.Completed != 3 || srvRep.DuplicatesDiscarded != 0 {
		t.Fatalf("coordinator report after lost ACKs: %+v", srvRep)
	}
}

// TestNetChaosPartition: one worker is partitioned from the coordinator for
// a window of exchanges mid-campaign. Its calls retry through the window
// (or its leases expire and re-grant, same as a vanished in-process
// worker); the campaign converges byte-identically.
func TestNetChaosPartition(t *testing.T) {
	wantLib, wantMan := singleProcessBaseline(t)
	seed := chaosSeed(t, 44)
	plan := faultinject.NewNetPlan(seed, [6]float64{}, 5*time.Millisecond)
	// Exchanges 4..15 are dropped. The window opens at ordinal 4 so even the
	// fastest campaign (campaign fetch, lease, two chunks, claim) is already
	// inside it, and retries burn through its far edge.
	plan.Partition(4, 12)

	out := filepath.Join(t.TempDir(), "lib.json")
	srv, ln := startCoordinator(t, coordinatorOptions(t, out), "")
	base := "http://" + ln.Addr().String()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		opts := workerOptions(t, base, fmt.Sprintf("w%d", i), seed+int64(i), nil)
		if i == 0 {
			// The partitioned worker gets a retry budget wider than the
			// partition window, so a single call can ride it out.
			opts.Client.Transport = &FaultTransport{Plan: plan, Progress: t.Logf}
			opts.Client.MaxAttempts = 20
		}
		wg.Add(1)
		go func(opts WorkerOptions, i int) {
			defer wg.Done()
			if _, err := RunWorker(ctx, opts); err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(opts, i)
	}

	if err := srv.WaitResolved(ctx); err != nil {
		t.Fatalf("campaign did not resolve: %v", err)
	}
	wg.Wait()
	if _, err := srv.MergeAndPublish(); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	requireIdenticalPublish(t, out, wantLib, wantMan)
	if plan.InjectedKind(faultinject.NetFaultDropRequest) == 0 {
		t.Fatal("partition window injected no drops")
	}
}

// TestNetChaosVanishedWorker: a worker leases a shard and vanishes — no
// heartbeat, no failure report, nothing. The sweeper must expire its lease
// exactly as it expires an in-process one, and a live worker finishes the
// campaign byte-identically.
func TestNetChaosVanishedWorker(t *testing.T) {
	wantLib, wantMan := singleProcessBaseline(t)
	out := filepath.Join(t.TempDir(), "lib.json")
	srv, ln := startCoordinator(t, coordinatorOptions(t, out), "")
	base := "http://" + ln.Addr().String()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// The ghost: leases a shard over the real wire and is never heard from
	// again.
	ghost := testClient(t, base, nil)
	gr, err := ghost.Lease(ctx, "ghost", "ghost-l000001")
	if err != nil || gr.Grant == nil {
		t.Fatalf("ghost lease: %+v, %v", gr, err)
	}

	rep, err := RunWorker(ctx, workerOptions(t, base, "w0", 5, nil))
	if err != nil {
		t.Fatalf("worker: %v", err)
	}
	if err := srv.WaitResolved(ctx); err != nil {
		t.Fatalf("campaign did not resolve: %v", err)
	}
	if _, err := srv.MergeAndPublish(); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	requireIdenticalPublish(t, out, wantLib, wantMan)

	srvRep := srv.Report()
	if srvRep.Expired == 0 {
		t.Fatalf("ghost's lease never expired: %+v", srvRep)
	}
	if rep.Completed != 3 {
		t.Fatalf("live worker completed %d shards, want all 3: %+v", rep.Completed, rep)
	}
}

// TestNetChaosCoordinatorRestart: the coordinator is killed mid-campaign —
// after the first shard completes, with remote workers live and leased —
// and a successor resumes the same campaign directory on the same address.
// Promoted artefacts are reused, orphaned leases expire, in-flight workers
// ride their retry budgets through the outage, and the final library is
// byte-identical.
func TestNetChaosCoordinatorRestart(t *testing.T) {
	wantLib, wantMan := singleProcessBaseline(t)
	seed := chaosSeed(t, 45)
	out := filepath.Join(t.TempDir(), "lib.json")

	firstDone := make(chan string, 4)
	opts1 := coordinatorOptions(t, out)
	opts1.OnShardComplete = func(id string) {
		select {
		case firstDone <- id:
		default:
		}
	}
	srv1, ln1 := startCoordinator(t, opts1, "")
	addr := ln1.Addr().String()
	base := "http://" + addr

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Light background chaos on both workers; their budgets must also carry
	// them across the restart outage.
	rates := [6]float64{0.03, 0.03, 0.03, 0.03, 0, 0}
	var wg sync.WaitGroup
	wreps := make([]*WorkerReport, 2)
	for i := 0; i < 2; i++ {
		opts := workerOptions(t, base, fmt.Sprintf("w%d", i),
			seed+int64(i), faultinject.NewNetPlan(seed+int64(i), rates, 5*time.Millisecond))
		opts.Client.MaxAttempts = 20
		wg.Add(1)
		go func(opts WorkerOptions, i int) {
			defer wg.Done()
			rep, err := RunWorker(ctx, opts)
			wreps[i] = rep
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(opts, i)
	}

	// Kill the coordinator the moment the first shard lands. The remaining
	// shards are mid-flight: their leases die with the coordinator.
	select {
	case id := <-firstDone:
		t.Logf("first shard %s complete; killing coordinator", id)
	case <-time.After(60 * time.Second):
		t.Fatal("no shard completed before the restart point")
	}
	if err := srv1.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown of first coordinator: %v", err)
	}

	// The successor resumes the same campaign directory on the same address.
	opts2 := coordinatorOptions(t, out)
	opts2.Resume = true
	opts2.Metrics = engine.NewMetrics()
	srv2, _ := startCoordinator(t, opts2, addr)

	if err := srv2.WaitResolved(ctx); err != nil {
		t.Fatalf("resumed campaign did not resolve: %v", err)
	}
	wg.Wait()
	if _, err := srv2.MergeAndPublish(); err != nil {
		t.Fatalf("merge after restart: %v", err)
	}
	if err := srv2.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown of second coordinator: %v", err)
	}

	requireIdenticalPublish(t, out, wantLib, wantMan)
	rep2 := srv2.Report()
	t.Logf("resumed report: %+v, workers: %+v %+v", rep2, wreps[0], wreps[1])
	if rep2.Reused == 0 {
		t.Fatal("successor reused no promoted artefacts — restart landed before any promote?")
	}
	if rep2.Completed != rep2.Shards {
		t.Fatalf("resumed campaign did not complete every shard: %+v", rep2)
	}
	if len(rep2.Quarantined) != 0 {
		t.Fatalf("restart quarantined shards: %+v", rep2.Quarantined)
	}
}
