package shardnet

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"sstiming/internal/core"
	"sstiming/internal/engine"
	"sstiming/internal/service"
	"sstiming/internal/shard"
	"sstiming/internal/store"
)

// uploadPartialName is the in-progress artefact upload file inside an
// attempt directory; a verified completion turns it into the staged
// shard.json.
const uploadPartialName = "upload.partial"

// serverEndpoints is the instrumented endpoint set (histogram render
// order), shared with the timingd middleware.
var serverEndpoints = []string{"campaign", "lease", "heartbeat", "artifact", "complete", "fail", "status"}

// ServerOptions configures a campaign coordinator server.
type ServerOptions struct {
	// Shard is the campaign configuration (exactly the in-process Run
	// options; Workers/HeartbeatEvery are unused — workers are remote).
	// Set Shard.Resume to resume a coordinator over an existing campaign
	// directory after a restart.
	Shard shard.Options
	// MaxInflight bounds concurrently-served requests before the
	// coordinator sheds with 429 + Retry-After; 0 selects 64, negative
	// disables shedding.
	MaxInflight int
	// MaxChunkBytes caps one artefact chunk upload; 0 selects 1 MiB.
	MaxChunkBytes int64
	// Metrics is the instrumentation sink; nil selects Shard.Metrics.
	Metrics *engine.Metrics
}

// grantEntry remembers a lease grant under its idempotency key so a
// retried or duplicated lease request re-receives it.
type grantEntry struct {
	grant LeaseGrant
}

// upload tracks one attempt's resumable artefact upload. size mirrors the
// partial file's length; it is rebuilt from disk lazily, so uploads survive
// a coordinator restart.
type upload struct {
	mu   sync.Mutex
	size int64
}

// Server is the networked campaign coordinator: the shard.Tracker lease
// state machine behind the wire protocol, with admission shedding and the
// shared service instrumentation. Construct with NewServer, attach a
// listener with Start, then WaitResolved + MergeAndPublish.
type Server struct {
	tr   *shard.Tracker
	met  *engine.Metrics
	inst *service.Instrumenter
	gate *service.Gate
	mux  *http.ServeMux
	opts ServerOptions
	info []byte // pre-encoded CampaignInfo

	mu        sync.Mutex
	grants    map[string]grantEntry    // lease idempotency key -> grant
	completes map[string]CompleteReply // completion idempotency key -> reply
	uploads   map[string]*upload       // shardID/attempt -> upload state
	workers   map[string]bool          // worker name -> last lease reply was Done

	sweepStop chan struct{}
	sweepWG   sync.WaitGroup
	httpSrv   *http.Server
	serveErr  chan error
}

// NewServer prepares a coordinator over a campaign directory. With
// Shard.Resume set, an existing campaign is resumed: verified promoted
// artefacts are kept, and attempt generations advance past everything on
// disk so grants from this coordinator never collide with attempts a
// previous incarnation handed out (remote workers may still be uploading
// under them).
func NewServer(opts ServerOptions) (*Server, error) {
	if opts.Metrics == nil {
		opts.Metrics = opts.Shard.Metrics
	}
	if opts.Metrics == nil {
		opts.Metrics = engine.NewMetrics()
	}
	opts.Shard.Metrics = opts.Metrics
	if opts.MaxInflight == 0 {
		opts.MaxInflight = 64
	}
	if opts.MaxChunkBytes <= 0 {
		opts.MaxChunkBytes = 1 << 20
	}
	tr, err := shard.NewTracker(opts.Shard)
	if err != nil {
		return nil, err
	}
	if opts.Shard.Resume {
		tr.SeedAttemptsFromDisk()
	}
	s := &Server{
		tr:        tr,
		met:       opts.Metrics,
		inst:      service.NewInstrumenter(opts.Metrics, serverEndpoints),
		gate:      service.NewGate(opts.MaxInflight, opts.Metrics),
		mux:       http.NewServeMux(),
		opts:      opts,
		grants:    make(map[string]grantEntry),
		completes: make(map[string]CompleteReply),
		uploads:   make(map[string]*upload),
		workers:   make(map[string]bool),
		sweepStop: make(chan struct{}),
		serveErr:  make(chan error, 1),
	}
	s.info, err = EncodeMessage(&CampaignInfo{
		SchemaVersion: WireVersion,
		Fingerprint:   tr.FingerprintHash(),
		Shards:        tr.Specs(),
	})
	if err != nil {
		return nil, err
	}
	s.mux.Handle("GET "+PathPrefix+"/campaign", s.inst.Wrap("campaign", s.handleCampaign))
	s.mux.Handle("POST "+PathPrefix+"/lease", s.inst.Wrap("lease", s.gated(s.handleLease)))
	s.mux.Handle("POST "+PathPrefix+"/heartbeat", s.inst.Wrap("heartbeat", s.gated(s.handleHeartbeat)))
	s.mux.Handle("PUT "+PathPrefix+"/artifact", s.inst.Wrap("artifact", s.gated(s.handleArtifact)))
	s.mux.Handle("POST "+PathPrefix+"/complete", s.inst.Wrap("complete", s.gated(s.handleComplete)))
	s.mux.Handle("POST "+PathPrefix+"/fail", s.inst.Wrap("fail", s.gated(s.handleFail)))
	s.mux.Handle("GET "+PathPrefix+"/status", s.inst.Wrap("status", s.handleStatus))
	return s, nil
}

// Tracker exposes the underlying lease state machine (tests, embedding).
func (s *Server) Tracker() *shard.Tracker { return s.tr }

// Handler returns the coordinator's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Start serves the coordinator on l and starts the lease sweeper. It
// returns immediately; Shutdown stops both.
func (s *Server) Start(l net.Listener) {
	s.httpSrv = &http.Server{Handler: s.mux}
	sweepEvery := s.tr.LeaseTTL() / 8
	if sweepEvery > time.Second {
		sweepEvery = time.Second
	}
	if sweepEvery < time.Millisecond {
		sweepEvery = time.Millisecond
	}
	s.sweepWG.Add(1)
	go func() {
		defer s.sweepWG.Done()
		t := time.NewTicker(sweepEvery)
		defer t.Stop()
		for {
			select {
			case <-s.sweepStop:
				return
			case <-t.C:
				s.tr.Sweep()
			}
		}
	}()
	go func() {
		if err := s.httpSrv.Serve(l); err != nil && !errors.Is(err, http.ErrServerClosed) {
			select {
			case s.serveErr <- err:
			default:
			}
		}
	}()
}

// Shutdown stops the HTTP server and the sweeper. The campaign directory
// is left untouched: a successor coordinator resumes from it.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	if s.httpSrv != nil {
		err = s.httpSrv.Shutdown(ctx)
	}
	close(s.sweepStop)
	s.sweepWG.Wait()
	select {
	case serr := <-s.serveErr:
		if err == nil {
			err = serr
		}
	default:
	}
	return err
}

// WaitResolved blocks until every shard completed or quarantined (or ctx
// fires). The sweeper started by Start keeps vanished workers expiring.
func (s *Server) WaitResolved(ctx context.Context) error { return s.tr.WaitResolved(ctx) }

// DrainWorkers blocks until every worker that ever requested a lease has
// had its latest lease request answered Done — i.e. it knows the campaign
// is over and exits 0 — or ctx fires. A resolved coordinator that closes
// its listener immediately races the final completer's next lease poll
// into connection-refused (exit 1 after a finished campaign), so callers
// drain between publish and Shutdown. Bound ctx by the lease TTL: an idle
// worker's no-grant sleep never outlives the expiry wait it was handed,
// and a worker that vanished for good must not wedge the exit.
func (s *Server) DrainWorkers(ctx context.Context) error {
	t := time.NewTicker(5 * time.Millisecond)
	defer t.Stop()
	for {
		s.mu.Lock()
		drained := true
		for _, done := range s.workers {
			if !done {
				drained = false
				break
			}
		}
		s.mu.Unlock()
		if drained {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
}

// MergeAndPublish publishes the resolved campaign (see
// shard.Tracker.MergeAndPublish) and removes the campaign scaffolding
// (unless KeepDir).
func (s *Server) MergeAndPublish() (*core.Library, error) {
	lib, err := s.tr.MergeAndPublish()
	if err != nil {
		return nil, err
	}
	if err := s.tr.RemoveDir(); err != nil {
		return nil, err
	}
	return lib, nil
}

// Report snapshots the campaign report.
func (s *Server) Report() *shard.Report { return s.tr.Snapshot() }

// gated wraps a handler with the admission gate: beyond MaxInflight
// concurrent requests the coordinator sheds with 429 + Retry-After instead
// of queueing unboundedly.
func (s *Server) gated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		release, ok := s.gate.TryAcquire()
		if !ok {
			s.writeErr(w, http.StatusTooManyRequests, "shed",
				fmt.Errorf("coordinator at capacity"), 50)
			return
		}
		defer release()
		h(w, r)
	}
}

// writeErr answers an ErrorReply (with Retry-After when retryAfterMs > 0).
func (s *Server) writeErr(w http.ResponseWriter, status int, kind string, err error, retryAfterMs int64) {
	if retryAfterMs > 0 {
		// Retry-After is whole seconds; round up so "soon" is never "now".
		w.Header().Set("Retry-After", strconv.FormatInt((retryAfterMs+999)/1000, 10))
	}
	writeReply(w, status, &ErrorReply{Error: err.Error(), Kind: kind, RetryAfterMs: retryAfterMs})
}

// writeReply serialises any wire message with its status code.
func writeReply(w http.ResponseWriter, status int, msg wireMessage) {
	b, err := EncodeMessage(msg)
	if err != nil {
		// Unreachable for our own types; fail closed as a plain 500.
		http.Error(w, "encoding reply", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(b)
}

// readMessage strictly decodes a bounded request body into msg.
func (s *Server) readMessage(w http.ResponseWriter, r *http.Request, msg wireMessage) bool {
	b, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err == nil {
		err = DecodeMessage(b, msg)
	}
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, "bad-message", err, 0)
		return false
	}
	return true
}

// handleCampaign serves the campaign advertisement (pre-encoded: it is
// immutable for the coordinator's lifetime).
func (s *Server) handleCampaign(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(s.info)
}

// handleLease grants the next available shard. A replayed idempotency key
// whose grant's lease is still held re-receives the original grant — a
// retried or network-duplicated lease request never burns a second lease.
func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !s.readMessage(w, r, &req) {
		return
	}
	s.mu.Lock()
	s.workers[req.Worker] = false
	if e, ok := s.grants[req.IdempotencyKey]; ok {
		if s.tr.LeaseHeld(e.grant.Index, e.grant.Attempt) {
			s.mu.Unlock()
			writeReply(w, http.StatusOK, &LeaseReply{Grant: &e.grant})
			return
		}
		// The remembered lease is gone (expired or resolved); this key's
		// answer can only be a fresh decision now.
		delete(s.grants, req.IdempotencyKey)
	}
	s.mu.Unlock()

	g, wait, done := s.tr.TryAcquire()
	if done {
		s.mu.Lock()
		s.workers[req.Worker] = true
		s.mu.Unlock()
		writeReply(w, http.StatusOK, &LeaseReply{Done: true})
		return
	}
	if g == nil {
		ms := wait.Milliseconds()
		if ms < 1 {
			ms = 1
		}
		writeReply(w, http.StatusOK, &LeaseReply{RetryAfterMs: ms})
		return
	}
	grant := LeaseGrant{
		ShardID:    g.Spec.ID,
		Index:      g.Spec.Index,
		Attempt:    g.Attempt,
		LeaseTTLMs: s.tr.LeaseTTL().Milliseconds(),
	}
	s.mu.Lock()
	s.grants[req.IdempotencyKey] = grantEntry{grant: grant}
	s.mu.Unlock()
	writeReply(w, http.StatusOK, &LeaseReply{Grant: &grant})
}

// handleHeartbeat renews a lease; Held=false tells the worker its lease is
// gone (the lease-lost signal).
func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !s.readMessage(w, r, &req) {
		return
	}
	idx, ok := s.tr.IndexOf(req.ShardID)
	if !ok {
		s.writeErr(w, http.StatusNotFound, "unknown-shard",
			fmt.Errorf("%w: %q", shard.ErrUnknownShard, req.ShardID), 0)
		return
	}
	writeReply(w, http.StatusOK, &HeartbeatReply{Held: s.tr.Heartbeat(idx, req.Attempt)})
}

// uploadFor returns the upload state for one attempt, rebuilding its size
// from the partial file if this coordinator has never seen it (resumed
// campaigns inherit in-flight uploads from their predecessor).
func (s *Server) uploadFor(shardID string, attempt int) *upload {
	key := fmt.Sprintf("%s/%d", shardID, attempt)
	s.mu.Lock()
	u, ok := s.uploads[key]
	if !ok {
		u = &upload{size: -1}
		s.uploads[key] = u
	}
	s.mu.Unlock()
	u.mu.Lock()
	if u.size < 0 {
		u.size = 0
		if fi, err := os.Stat(s.partialPath(shardID, attempt)); err == nil {
			u.size = fi.Size()
		}
	}
	u.mu.Unlock()
	return u
}

// partialPath is the attempt's in-progress upload file.
func (s *Server) partialPath(shardID string, attempt int) string {
	return filepath.Join(s.tr.AttemptDir(shardID, attempt), uploadPartialName)
}

// handleArtifact accepts one artefact chunk:
// PUT /shard/v1/artifact?shard=<id>&attempt=<n>&offset=<bytes>. A chunk at
// the current size appends; a chunk entirely inside the received prefix is
// an absorbed replay; anything else answers 409 with the authoritative
// received size so the client resynchronises. Chunks are accepted even for
// expired leases — correctness lives in the completion verification, and a
// late uploader's bytes can still win the shard if it is still open.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	shardID := q.Get("shard")
	attempt, err := strconv.Atoi(q.Get("attempt"))
	if err != nil || attempt < 1 || shardID == "" {
		s.writeErr(w, http.StatusBadRequest, "bad-message",
			fmt.Errorf("%w: artifact upload needs shard and attempt", ErrBadMessage), 0)
		return
	}
	offset, err := strconv.ParseInt(q.Get("offset"), 10, 64)
	if err != nil || offset < 0 {
		s.writeErr(w, http.StatusBadRequest, "bad-message",
			fmt.Errorf("%w: artifact upload needs a non-negative offset", ErrBadMessage), 0)
		return
	}
	if _, ok := s.tr.IndexOf(shardID); !ok {
		s.writeErr(w, http.StatusNotFound, "unknown-shard",
			fmt.Errorf("%w: %q", shard.ErrUnknownShard, shardID), 0)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.opts.MaxChunkBytes+1))
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, "bad-message",
			fmt.Errorf("%w: reading chunk: %v", ErrBadMessage, err), 0)
		return
	}
	if int64(len(body)) > s.opts.MaxChunkBytes {
		s.writeErr(w, http.StatusRequestEntityTooLarge, "bad-message",
			fmt.Errorf("%w: chunk exceeds %d bytes", ErrBadMessage, s.opts.MaxChunkBytes), 0)
		return
	}

	u := s.uploadFor(shardID, attempt)
	u.mu.Lock()
	defer u.mu.Unlock()
	switch {
	case offset == u.size:
		path := s.partialPath(shardID, attempt)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			s.writeErr(w, http.StatusInternalServerError, "internal", err, 0)
			return
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			s.writeErr(w, http.StatusInternalServerError, "internal", err, 0)
			return
		}
		_, werr := f.Write(body)
		cerr := f.Close()
		if werr == nil {
			werr = cerr
		}
		if werr != nil {
			// The file may hold a torn tail now; resync size from disk so
			// the client's retry lands at the truth.
			if fi, serr := os.Stat(path); serr == nil {
				u.size = fi.Size()
			}
			s.writeErr(w, http.StatusInternalServerError, "internal", werr, 0)
			return
		}
		u.size += int64(len(body))
		s.met.Add(engine.NetBytesUploaded, int64(len(body)))
		writeReply(w, http.StatusOK, &ChunkReply{Received: u.size})
	case offset+int64(len(body)) <= u.size:
		// A replayed chunk (duplicated request, or a retry whose first
		// acknowledgement was lost): already durable, absorb it.
		writeReply(w, http.StatusOK, &ChunkReply{Received: u.size})
	default:
		writeReply(w, http.StatusConflict, &ChunkReply{Received: u.size})
	}
}

// handleComplete resolves a completion claim: the uploaded bytes must match
// the claimed size and SHA-256, then they are staged and pushed through the
// tracker's verify-before-accept path. A replayed idempotency key
// re-receives the original resolution; a claim for an already-resolved
// shard resolves "duplicate" — both absorb retries after lost
// acknowledgements.
func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !s.readMessage(w, r, &req) {
		return
	}
	s.mu.Lock()
	if reply, ok := s.completes[req.IdempotencyKey]; ok {
		s.mu.Unlock()
		writeReply(w, http.StatusOK, &reply)
		return
	}
	s.mu.Unlock()
	idx, ok := s.tr.IndexOf(req.ShardID)
	if !ok {
		s.writeErr(w, http.StatusNotFound, "unknown-shard",
			fmt.Errorf("%w: %q", shard.ErrUnknownShard, req.ShardID), 0)
		return
	}

	// The upload must be byte-complete before the claim means anything. A
	// retried claim whose first processing already staged the artefact finds
	// the staged bytes instead.
	u := s.uploadFor(req.ShardID, req.Attempt)
	u.mu.Lock()
	b, err := os.ReadFile(s.partialPath(req.ShardID, req.Attempt))
	u.mu.Unlock()
	if err != nil {
		b, err = os.ReadFile(s.tr.StagedPath(req.ShardID, req.Attempt))
	}
	if err != nil {
		s.writeErr(w, http.StatusConflict, "upload-incomplete",
			fmt.Errorf("no uploaded artefact for %s attempt %d", req.ShardID, req.Attempt), 0)
		return
	}
	if int64(len(b)) != req.Size {
		s.writeErr(w, http.StatusConflict, "upload-incomplete",
			fmt.Errorf("uploaded %d bytes, claim says %d", len(b), req.Size), 0)
		return
	}
	sum := sha256.Sum256(b)
	if hex.EncodeToString(sum[:]) != req.SHA256 {
		// The artefact arrived whole but wrong (corrupt upload). Stage it
		// anyway? No: reject here, the claimed digest is the worker's own
		// word for what it sent, and a mismatch means the channel damaged
		// it. The worker re-uploads.
		s.writeErr(w, http.StatusConflict, "upload-incomplete",
			fmt.Errorf("uploaded artefact sha256 differs from claim"), 0)
		return
	}
	if err := store.AtomicWrite(s.tr.StagedPath(req.ShardID, req.Attempt), b); err != nil {
		s.writeErr(w, http.StatusInternalServerError, "internal", err, 0)
		return
	}

	status, cerr := s.tr.Complete(idx, req.Attempt)
	reply := CompleteReply{Status: status.String()}
	if cerr != nil && status == shard.CompleteRejected {
		reply.Reason = cerr.Error()
	}
	s.mu.Lock()
	s.completes[req.IdempotencyKey] = reply
	s.mu.Unlock()
	writeReply(w, http.StatusOK, &reply)
}

// handleFail records a worker-reported attempt failure; stale reports are
// absorbed by the tracker.
func (s *Server) handleFail(w http.ResponseWriter, r *http.Request) {
	var req FailRequest
	if !s.readMessage(w, r, &req) {
		return
	}
	idx, ok := s.tr.IndexOf(req.ShardID)
	if !ok {
		s.writeErr(w, http.StatusNotFound, "unknown-shard",
			fmt.Errorf("%w: %q", shard.ErrUnknownShard, req.ShardID), 0)
		return
	}
	reason := req.Reason
	if reason == "" {
		reason = "worker reported failure"
	}
	s.tr.Fail(idx, req.Attempt, errors.New(reason))
	writeReply(w, http.StatusOK, &OKReply{OK: true})
}

// handleStatus reports campaign progress.
func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	writeReply(w, http.StatusOK, &StatusReply{Resolved: s.tr.Resolved(), Report: s.tr.Snapshot()})
}

// WriteMetrics renders the coordinator's counters and latency histograms
// (operator dumps; the coordinator has no /metrics endpoint of its own).
func (s *Server) WriteMetrics(w io.Writer) {
	_ = s.met.WriteText(w)
	s.inst.WriteLatencies(w)
}
