package shardnet

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"time"

	"sstiming/internal/faultinject"
)

// FaultTransport is an http.RoundTripper that consults a deterministic
// faultinject.NetPlan before and after forwarding each exchange — the
// hostile network between an honest worker and an honest coordinator.
// Chaos testing only: production clients use the inner transport directly.
type FaultTransport struct {
	// Plan decides each exchange's fault; nil injects nothing.
	Plan *faultinject.NetPlan
	// Next is the real transport; nil selects http.DefaultTransport.
	Next http.RoundTripper
	// Progress, when non-nil, logs each injected fault.
	Progress func(format string, args ...any)
}

func (t *FaultTransport) next() http.RoundTripper {
	if t.Next != nil {
		return t.Next
	}
	return http.DefaultTransport
}

func (t *FaultTransport) logf(format string, args ...any) {
	if t.Progress != nil {
		t.Progress(format, args...)
	}
}

// RoundTrip forwards the exchange, reshaped by the plan's fault for its
// ordinal. Dropped requests and responses surface as transport errors (the
// retryable class); truncation and corruption damage the response body the
// client will fail to decode; duplication really delivers the request
// twice, so server-side idempotency is exercised for real.
func (t *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	ord, fault := t.Plan.Next()
	switch fault {
	case faultinject.NetFaultDropRequest:
		t.logf("netfault: dropping request #%d %s %s", ord, req.Method, req.URL.Path)
		drainRequest(req)
		return nil, fmt.Errorf("faultinject: request dropped (exchange %d)", ord)

	case faultinject.NetFaultDelay:
		t.logf("netfault: delaying request #%d %s %s", ord, req.Method, req.URL.Path)
		select {
		case <-req.Context().Done():
			drainRequest(req)
			return nil, req.Context().Err()
		case <-time.After(t.Plan.Delay()):
		}
		return t.next().RoundTrip(req)

	case faultinject.NetFaultDuplicate:
		t.logf("netfault: duplicating request #%d %s %s", ord, req.Method, req.URL.Path)
		// Deliver twice: the first response is thrown away (the "original"
		// the network raced), the retransmit's answer is what the client
		// sees. Requires a replayable body.
		if req.GetBody == nil && req.Body != nil {
			return t.next().RoundTrip(req) // not replayable; deliver once
		}
		first, err := t.next().RoundTrip(cloneRequest(req))
		if err == nil {
			_, _ = io.Copy(io.Discard, first.Body)
			first.Body.Close()
		}
		return t.next().RoundTrip(req)

	case faultinject.NetFaultDropResponse:
		t.logf("netfault: dropping response #%d %s %s", ord, req.Method, req.URL.Path)
		resp, err := t.next().RoundTrip(req)
		if err != nil {
			return nil, err
		}
		// The server processed the request; the answer dies on the wire.
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("faultinject: response dropped (exchange %d)", ord)

	case faultinject.NetFaultTruncateResponse:
		t.logf("netfault: truncating response #%d %s %s", ord, req.Method, req.URL.Path)
		resp, err := t.next().RoundTrip(req)
		if err != nil {
			return nil, err
		}
		b, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		resp.Body = io.NopCloser(bytes.NewReader(b[:len(b)/2]))
		resp.ContentLength = int64(len(b) / 2)
		return resp, nil

	case faultinject.NetFaultCorruptResponse:
		t.logf("netfault: corrupting response #%d %s %s", ord, req.Method, req.URL.Path)
		resp, err := t.next().RoundTrip(req)
		if err != nil {
			return nil, err
		}
		b, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		for i, off := 0, len(b)/3; i < 8 && off+i < len(b); i++ {
			b[off+i] ^= 0x5a
		}
		resp.Body = io.NopCloser(bytes.NewReader(b))
		resp.ContentLength = int64(len(b))
		return resp, nil

	default:
		return t.next().RoundTrip(req)
	}
}

// drainRequest closes an unsent request's body (the transport contract:
// RoundTrip owns the body even on error).
func drainRequest(req *http.Request) {
	if req.Body != nil {
		_, _ = io.Copy(io.Discard, req.Body)
		req.Body.Close()
	}
}

// cloneRequest copies a request with a fresh body from GetBody, for the
// duplicate fault's first delivery.
func cloneRequest(req *http.Request) *http.Request {
	c := req.Clone(req.Context())
	if req.GetBody != nil {
		if body, err := req.GetBody(); err == nil {
			c.Body = body
		}
	}
	return c
}
