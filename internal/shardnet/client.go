package shardnet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"sstiming/internal/engine"
)

// Client error taxonomy. Every call either succeeds, exhausts its retry
// budget on retryable failures (ErrRetryable in the chain — the network or
// the coordinator was unreachable/overloaded the whole budget), or stops
// immediately on a fatal condition (ErrFatal — retrying cannot help).
// ErrLeaseLost is the third class a worker sees: the coordinator reassigned
// its lease, which is not a transport failure at all.
var (
	// ErrRetryable marks transient call failures: network errors, 5xx/429
	// responses, undecodable reply bytes. The client retries these under
	// its backoff budget; seeing one in a returned error chain means the
	// budget is exhausted.
	ErrRetryable = errors.New("shardnet: retryable call failure")
	// ErrFatal marks failures retrying cannot fix: protocol-level 4xx
	// rejections, plan/fingerprint mismatches.
	ErrFatal = errors.New("shardnet: fatal call failure")
	// ErrLeaseLost marks a worker whose lease was reassigned (heartbeat
	// answered Held=false, or completion landed as a duplicate after its
	// lease expired).
	ErrLeaseLost = errors.New("shardnet: lease lost")
)

// ClientOptions configures the resilient coordinator client.
type ClientOptions struct {
	// Base is the coordinator base URL (e.g. "http://127.0.0.1:7600").
	Base string
	// MaxAttempts bounds attempts per call (first try included); 0
	// selects 8.
	MaxAttempts int
	// BaseBackoff is the first retry's delay, doubling per attempt with
	// ±50% jitter; 0 selects 50ms.
	BaseBackoff time.Duration
	// MaxBackoff caps one retry delay; 0 selects 2s.
	MaxBackoff time.Duration
	// PerTryTimeout bounds each attempt; 0 selects 10s.
	PerTryTimeout time.Duration
	// ChunkBytes is the artefact upload chunk size; 0 selects 256 KiB.
	ChunkBytes int
	// Seed seeds the backoff jitter (deterministic tests).
	Seed int64
	// Transport overrides the HTTP transport (fault injection); nil
	// selects http.DefaultTransport.
	Transport http.RoundTripper
	// Metrics, when non-nil, accumulates shardnet/* client counters.
	Metrics *engine.Metrics
	// Progress, when non-nil, receives one line per retry.
	Progress func(format string, args ...any)
}

// Client issues wire-protocol calls with jittered exponential backoff,
// per-attempt deadlines and the typed error taxonomy above. One Client is
// safe for concurrent use.
type Client struct {
	opts ClientOptions
	hc   *http.Client
	met  *engine.Metrics

	mu  sync.Mutex
	rng *rand.Rand
}

// NewClient builds a client for one coordinator.
func NewClient(opts ClientOptions) (*Client, error) {
	if opts.Base == "" {
		return nil, fmt.Errorf("shardnet: ClientOptions.Base is required")
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 8
	}
	if opts.BaseBackoff <= 0 {
		opts.BaseBackoff = 50 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 2 * time.Second
	}
	if opts.PerTryTimeout <= 0 {
		opts.PerTryTimeout = 10 * time.Second
	}
	if opts.ChunkBytes <= 0 {
		opts.ChunkBytes = 256 << 10
	}
	if opts.Progress == nil {
		opts.Progress = func(string, ...any) {}
	}
	tr := opts.Transport
	if tr == nil {
		tr = http.DefaultTransport
	}
	return &Client{
		opts: opts,
		hc:   &http.Client{Transport: tr},
		met:  opts.Metrics,
		rng:  rand.New(rand.NewSource(opts.Seed)),
	}, nil
}

// backoff computes the jittered delay before retry attempt (1-based).
func (c *Client) backoff(attempt int, retryAfterMs int64) time.Duration {
	d := c.opts.BaseBackoff << (attempt - 1)
	if d > c.opts.MaxBackoff {
		d = c.opts.MaxBackoff
	}
	c.mu.Lock()
	jitter := 0.5 + c.rng.Float64() // 0.5x .. 1.5x
	c.mu.Unlock()
	d = time.Duration(float64(d) * jitter)
	// A server-stated Retry-After is a floor, not a suggestion.
	if ra := time.Duration(retryAfterMs) * time.Millisecond; ra > d {
		d = ra
	}
	return d
}

// call issues one wire call with the full retry envelope: the request body
// is encoded once and replayed per attempt; each attempt runs under its own
// deadline; retryable failures back off and retry until the budget runs
// out. conflictOK lets callers opt into receiving 409 replies (the upload
// resync path) instead of treating them as fatal.
func (c *Client) call(ctx context.Context, method, path string, body []byte, out wireMessage, conflictOK bool) (status int, err error) {
	var lastErr error
	for attempt := 1; attempt <= c.opts.MaxAttempts; attempt++ {
		if attempt > 1 {
			c.met.Add(engine.NetRetries, 1)
			var retryAfterMs int64
			var re *replyError
			if errors.As(lastErr, &re) {
				retryAfterMs = re.retryAfterMs
			}
			d := c.backoff(attempt-1, retryAfterMs)
			c.opts.Progress("shardnet: retrying %s %s in %s (attempt %d/%d): %v",
				method, path, d, attempt, c.opts.MaxAttempts, lastErr)
			select {
			case <-ctx.Done():
				return 0, fmt.Errorf("%w: %v (last: %v)", ErrRetryable, ctx.Err(), lastErr)
			case <-time.After(d):
			}
		}
		status, err := c.attempt(ctx, method, path, body, out, conflictOK)
		if err == nil {
			return status, nil
		}
		if errors.Is(err, ErrFatal) {
			return status, err
		}
		if ctx.Err() != nil {
			return status, fmt.Errorf("%w: %v (last: %v)", ErrRetryable, ctx.Err(), err)
		}
		lastErr = err
	}
	return 0, fmt.Errorf("%w: %d attempts exhausted: %v", ErrRetryable, c.opts.MaxAttempts, lastErr)
}

// replyError carries a non-2xx reply through the retry loop.
type replyError struct {
	status       int
	kind         string
	msg          string
	retryAfterMs int64
}

func (e *replyError) Error() string {
	return fmt.Sprintf("HTTP %d (%s): %s", e.status, e.kind, e.msg)
}

// attempt issues one HTTP exchange.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, out wireMessage, conflictOK bool) (int, error) {
	c.met.Add(engine.NetRequests, 1)
	actx, cancel := context.WithTimeout(ctx, c.opts.PerTryTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, method, c.opts.Base+path, bytes.NewReader(body))
	if err != nil {
		return 0, fmt.Errorf("%w: building request: %v", ErrFatal, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		// Network-level failure (includes injected drops/partitions).
		return 0, fmt.Errorf("%w: %v", ErrRetryable, err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	rb, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		// Truncated/reset mid-body: the exchange's outcome is unknown —
		// retry and let server idempotency absorb the replay.
		return resp.StatusCode, fmt.Errorf("%w: reading reply: %v", ErrRetryable, err)
	}

	switch {
	case resp.StatusCode == http.StatusOK,
		conflictOK && resp.StatusCode == http.StatusConflict:
		if err := DecodeMessage(rb, out); err != nil {
			// Undecodable success bytes are indistinguishable from a
			// damaged wire: retry.
			return resp.StatusCode, fmt.Errorf("%w: %v", ErrRetryable, err)
		}
		return resp.StatusCode, nil
	default:
		re := &replyError{status: resp.StatusCode, kind: "unknown"}
		var er ErrorReply
		if derr := DecodeMessage(rb, &er); derr == nil {
			re.kind, re.msg, re.retryAfterMs = er.Kind, er.Error, er.RetryAfterMs
		} else {
			re.msg = fmt.Sprintf("undecodable error body (%d bytes)", len(rb))
		}
		if re.retryAfterMs == 0 {
			if ra, aerr := strconv.Atoi(resp.Header.Get("Retry-After")); aerr == nil && ra > 0 {
				re.retryAfterMs = int64(ra) * 1000
			}
		}
		if resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusRequestTimeout ||
			resp.StatusCode >= 500 {
			return resp.StatusCode, fmt.Errorf("%w: %w", ErrRetryable, re)
		}
		return resp.StatusCode, fmt.Errorf("%w: %w", ErrFatal, re)
	}
}

// Campaign fetches and validates the coordinator's campaign advertisement.
func (c *Client) Campaign(ctx context.Context) (*CampaignInfo, error) {
	var info CampaignInfo
	if _, err := c.call(ctx, http.MethodGet, PathPrefix+"/campaign", nil, &info, false); err != nil {
		return nil, err
	}
	return &info, nil
}

// Lease asks for the next shard under an idempotency key (retries and
// network duplicates of the same key re-receive the same grant).
func (c *Client) Lease(ctx context.Context, worker, idempotencyKey string) (*LeaseReply, error) {
	body, err := EncodeMessage(&LeaseRequest{Worker: worker, IdempotencyKey: idempotencyKey})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFatal, err)
	}
	var reply LeaseReply
	if _, err := c.call(ctx, http.MethodPost, PathPrefix+"/lease", body, &reply, false); err != nil {
		return nil, err
	}
	return &reply, nil
}

// Heartbeat renews a lease; held=false means the lease is gone.
func (c *Client) Heartbeat(ctx context.Context, shardID string, attempt int) (bool, error) {
	body, err := EncodeMessage(&HeartbeatRequest{ShardID: shardID, Attempt: attempt})
	if err != nil {
		return false, fmt.Errorf("%w: %v", ErrFatal, err)
	}
	var reply HeartbeatReply
	if _, err := c.call(ctx, http.MethodPost, PathPrefix+"/heartbeat", body, &reply, false); err != nil {
		return false, err
	}
	return reply.Held, nil
}

// UploadArtifact streams artefact bytes in resumable chunks. The
// coordinator's received size is authoritative: every acknowledgement (200
// or 409) resynchronises the next offset, so lost ACKs, duplicated chunks
// and coordinator restarts all converge on one durable byte sequence.
func (c *Client) UploadArtifact(ctx context.Context, shardID string, attempt int, data []byte) error {
	offset := int64(0)
	for offset < int64(len(data)) {
		end := offset + int64(c.opts.ChunkBytes)
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		path := fmt.Sprintf("%s/artifact?shard=%s&attempt=%d&offset=%d",
			PathPrefix, shardID, attempt, offset)
		var reply ChunkReply
		if _, err := c.call(ctx, http.MethodPut, path, data[offset:end], &reply, true); err != nil {
			return err
		}
		if reply.Received > int64(len(data)) {
			return fmt.Errorf("%w: coordinator reports %d bytes received for a %d-byte artefact",
				ErrFatal, reply.Received, len(data))
		}
		if reply.Received == offset {
			// Unreachable under the chunk protocol (an accepted or absorbed
			// chunk always advances past offset; a 409 resyncs to a
			// different size); fail closed instead of spinning.
			return fmt.Errorf("%w: upload made no progress at offset %d", ErrFatal, offset)
		}
		// Resynchronise to the coordinator's truth: forward past an
		// absorbed replay, or backward after a restart lost partial bytes.
		offset = reply.Received
	}
	return nil
}

// Complete claims completion of an uploaded artefact (size + SHA-256). The
// reply status follows the tracker taxonomy; "duplicate" is success for a
// retrying caller. A 409 "upload-incomplete" reply returns errUploadIncomplete
// so the worker re-uploads and claims again.
func (c *Client) Complete(ctx context.Context, req *CompleteRequest) (*CompleteReply, error) {
	body, err := EncodeMessage(req)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFatal, err)
	}
	var reply CompleteReply
	status, err := c.call(ctx, http.MethodPost, PathPrefix+"/complete", body, &reply, false)
	if err != nil {
		if status == http.StatusConflict {
			return nil, fmt.Errorf("%w: %v", errUploadIncomplete, err)
		}
		return nil, err
	}
	return &reply, nil
}

// errUploadIncomplete marks a completion claim the coordinator refused
// because the uploaded bytes do not (yet) match it; re-upload and re-claim.
var errUploadIncomplete = errors.New("shardnet: upload incomplete")

// Fail reports a worker-side attempt failure.
func (c *Client) Fail(ctx context.Context, shardID string, attempt int, reason string) error {
	body, err := EncodeMessage(&FailRequest{ShardID: shardID, Attempt: attempt, Reason: reason})
	if err != nil {
		return fmt.Errorf("%w: %v", ErrFatal, err)
	}
	var reply OKReply
	_, err = c.call(ctx, http.MethodPost, PathPrefix+"/fail", body, &reply, false)
	return err
}

// Status fetches campaign progress.
func (c *Client) Status(ctx context.Context) (*StatusReply, error) {
	var reply StatusReply
	if _, err := c.call(ctx, http.MethodGet, PathPrefix+"/status", nil, &reply, false); err != nil {
		return nil, err
	}
	return &reply, nil
}
