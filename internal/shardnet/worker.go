package shardnet

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sstiming/internal/shard"
)

// WorkerOptions configures one remote campaign worker.
type WorkerOptions struct {
	// Client configures the resilient coordinator client (Base required).
	Client ClientOptions
	// Shard carries the worker's own campaign configuration: Charlib,
	// ShardCells and friends must match the coordinator's bit-for-bit
	// (verified against the advertised plan before any work), and Dir is
	// the worker's private local work directory (journals, staged
	// artefacts). Out is unused for publishing — the coordinator merges —
	// but still required to derive defaults.
	Shard shard.Options
	// Name identifies this worker in lease requests and logs; "" selects
	// "worker".
	Name string
	// ExitOnLeaseLost makes the worker return ErrLeaseLost as soon as one
	// of its leases is reassigned, instead of continuing with the next
	// lease — the mode a supervisor uses to restart workers intelligently
	// (exit code 2 in cmd/characterize).
	ExitOnLeaseLost bool
	// Progress, when non-nil, receives one line per worker event.
	Progress func(format string, args ...any)
}

// WorkerReport summarises one worker's campaign participation.
type WorkerReport struct {
	// Completed counts completion claims the coordinator accepted.
	Completed int
	// Duplicates counts claims resolved as duplicates (another attempt
	// won, or a retried claim whose first acknowledgement was lost).
	Duplicates int
	// Rejected counts claims the coordinator rejected at verification.
	Rejected int
	// Failed counts attempts that failed worker-side and were reported.
	Failed int
	// LeaseLost counts leases reassigned under this worker.
	LeaseLost int
	// Leases counts lease grants this worker received.
	Leases int
}

// RunWorker participates in a networked campaign until the campaign
// resolves (returns nil), the context fires, a lease is lost under
// ExitOnLeaseLost (ErrLeaseLost), or a fatal condition stops it (plan
// mismatch, coordinator unreachable past every retry budget). The worker
// is stateless towards the coordinator: everything it claims is re-verified
// server-side, so crashing it at any point never corrupts the campaign.
func RunWorker(ctx context.Context, opts WorkerOptions) (*WorkerReport, error) {
	if opts.Name == "" {
		opts.Name = "worker"
	}
	if opts.Progress == nil {
		opts.Progress = func(string, ...any) {}
	}
	if opts.Shard.Progress == nil {
		opts.Shard.Progress = opts.Progress
	}
	client, err := NewClient(opts.Client)
	if err != nil {
		return nil, err
	}

	rep := &WorkerReport{}
	info, err := client.Campaign(ctx)
	if err != nil {
		return rep, err
	}
	if err := shard.ComparePlan(opts.Shard, info.Fingerprint, info.Shards); err != nil {
		return rep, fmt.Errorf("%w: %v", ErrFatal, err)
	}

	leaseSeq := 0
	for {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		leaseSeq++
		key := fmt.Sprintf("%s-l%06d", opts.Name, leaseSeq)
		reply, err := client.Lease(ctx, opts.Name, key)
		if err != nil {
			return rep, err
		}
		if reply.Done {
			opts.Progress("%s: campaign resolved, exiting", opts.Name)
			return rep, nil
		}
		if reply.Grant == nil {
			wait := time.Duration(reply.RetryAfterMs) * time.Millisecond
			if wait <= 0 {
				wait = 50 * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return rep, ctx.Err()
			case <-time.After(wait):
			}
			continue
		}

		rep.Leases++
		lost, err := runOneLease(ctx, client, opts, rep, reply.Grant)
		if err != nil {
			return rep, err
		}
		if lost && opts.ExitOnLeaseLost {
			return rep, fmt.Errorf("%w: shard %s attempt %d reassigned",
				ErrLeaseLost, reply.Grant.ShardID, reply.Grant.Attempt)
		}
	}
}

// runOneLease executes one granted lease end to end: heartbeat in the
// background, characterise locally, upload, claim completion. It reports
// whether the lease was lost; only transport-fatal conditions return an
// error.
func runOneLease(ctx context.Context, client *Client, opts WorkerOptions, rep *WorkerReport, grant *LeaseGrant) (lost bool, err error) {
	opts.Progress("%s: leased shard %s (attempt %d)", opts.Name, grant.ShardID, grant.Attempt)
	spec, ok := specFor(opts.Shard, grant)
	if !ok {
		// ComparePlan already pinned the table; an unknown grant means a
		// confused coordinator.
		return false, fmt.Errorf("%w: grant names unknown shard %q", ErrFatal, grant.ShardID)
	}

	// Heartbeat for as long as the attempt runs. Held=false — or a
	// heartbeat that cannot reach the coordinator past its whole retry
	// budget — cancels the attempt: its lease will be (or already was)
	// reassigned, and finishing the characterisation would only produce a
	// late duplicate.
	attemptCtx, cancelAttempt := context.WithCancel(ctx)
	defer cancelAttempt()
	var leaseLost atomic.Bool
	hbEvery := time.Duration(grant.LeaseTTLMs) * time.Millisecond / 4
	if hbEvery < time.Millisecond {
		hbEvery = time.Millisecond
	}
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(hbEvery)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-t.C:
				held, herr := client.Heartbeat(attemptCtx, grant.ShardID, grant.Attempt)
				if herr != nil {
					if attemptCtx.Err() != nil {
						return
					}
					opts.Progress("%s: heartbeat for %s/%d undeliverable: %v",
						opts.Name, grant.ShardID, grant.Attempt, herr)
					leaseLost.Store(true)
					cancelAttempt()
					return
				}
				if !held {
					opts.Progress("%s: lease on %s/%d lost", opts.Name, grant.ShardID, grant.Attempt)
					leaseLost.Store(true)
					cancelAttempt()
					return
				}
			}
		}
	}()

	shardOpts := opts.Shard
	shardOpts.Charlib.Ctx = attemptCtx
	artefact, runErr := shard.RunAttempt(shardOpts, spec, grant.Attempt)
	close(hbStop)
	hbWG.Wait()

	if runErr != nil {
		if leaseLost.Load() {
			rep.LeaseLost++
			// No failure report: the coordinator already expired this
			// lease, and a stale report would be absorbed anyway.
			return true, nil
		}
		if ctx.Err() != nil {
			return false, ctx.Err()
		}
		rep.Failed++
		opts.Progress("%s: attempt %s/%d failed: %v", opts.Name, grant.ShardID, grant.Attempt, runErr)
		if ferr := client.Fail(ctx, grant.ShardID, grant.Attempt, runErr.Error()); ferr != nil {
			return false, ferr
		}
		return false, nil
	}

	// Upload + claim. A lease lost during upload is NOT a reason to stop:
	// the claim is still submitted, and the coordinator either accepts the
	// verified artefact (shard still open) or absorbs it as a duplicate —
	// the resurrected-worker path, exercised for real.
	sum := sha256.Sum256(artefact)
	claim := &CompleteRequest{
		ShardID:        grant.ShardID,
		Attempt:        grant.Attempt,
		Size:           int64(len(artefact)),
		SHA256:         hex.EncodeToString(sum[:]),
		IdempotencyKey: fmt.Sprintf("%s-c-%s-a%d", opts.Name, grant.ShardID, grant.Attempt),
	}
	// upload-incomplete claims re-upload and re-claim: bounded by the
	// artefact's chunk count plus slack, not unbounded.
	for round := 0; ; round++ {
		if err := client.UploadArtifact(ctx, grant.ShardID, grant.Attempt, artefact); err != nil {
			return leaseLost.Load(), err
		}
		reply, cerr := client.Complete(ctx, claim)
		if cerr != nil {
			if errors.Is(cerr, errUploadIncomplete) && round < 3 {
				opts.Progress("%s: claim for %s/%d needs re-upload: %v",
					opts.Name, grant.ShardID, grant.Attempt, cerr)
				continue
			}
			return leaseLost.Load(), cerr
		}
		switch reply.Status {
		case "accepted":
			rep.Completed++
			opts.Progress("%s: shard %s completed (attempt %d)", opts.Name, grant.ShardID, grant.Attempt)
		case "duplicate":
			rep.Duplicates++
			opts.Progress("%s: shard %s claim was a duplicate (attempt %d)", opts.Name, grant.ShardID, grant.Attempt)
		default:
			rep.Rejected++
			opts.Progress("%s: shard %s claim rejected (attempt %d): %s",
				opts.Name, grant.ShardID, grant.Attempt, reply.Reason)
		}
		return leaseLost.Load(), nil
	}
}

// specFor resolves a grant to the worker's locally-derived spec.
func specFor(opts shard.Options, grant *LeaseGrant) (shard.Spec, bool) {
	specs, err := shard.PlanFor(opts)
	if err != nil {
		return shard.Spec{}, false
	}
	for _, s := range specs {
		if s.ID == grant.ShardID && s.Index == grant.Index {
			return s, true
		}
	}
	return shard.Spec{}, false
}
